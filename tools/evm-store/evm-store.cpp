//===- tools/evm-store/evm-store.cpp - Knowledge-store toolbox ------------===//
//
// Offline inspection and maintenance of the cross-run knowledge store
// written by evm_cli --store= / ScenarioRunner::run*Launches:
//
//   evm-store inspect  STORE            human summary of every section
//   evm-store validate STORE            framing/CRC/canonical-form check
//   evm-store diff     STORE_A STORE_B  section-by-section comparison
//   evm-store merge    OUT IN1 [IN2...] fold inputs under the store's
//                                       newest-wins merge policy; a
//                                       directory input means "every
//                                       *.store inside it, sorted" (so a
//                                       fleet shard dir folds in one call)
//
// Exit codes:
//
//   0  success (validate: store clean and canonical; diff: stores equal)
//   1  finding (validate: damage or non-canonical form; diff: differences)
//   2  usage error
//   3  file I/O error
//
// Like the loader itself, damaged input is never fatal here: inspect and
// diff work on whatever survives, and validate's whole job is reporting
// the damage.
//
//===----------------------------------------------------------------------===//

#include "ml/ClassificationTree.h"
#include "ml/Dataset.h"
#include "store/KnowledgeStore.h"
#include "support/BuildInfo.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>

using namespace evm;

namespace {

void printUsage(const char *Argv0, std::FILE *To) {
  std::fprintf(
      To,
      "usage: %s inspect  STORE\n"
      "       %s validate STORE\n"
      "       %s diff     STORE_A STORE_B\n"
      "       %s merge    OUT IN1 [IN2...]\n"
      "Inspects/maintains a cross-run knowledge store (evm_cli --store=).\n"
      "merge inputs may be directories: every *.store inside (sorted by\n"
      "name) is folded, so `merge OUT SHARD_DIR` folds a whole fleet shard\n"
      "directory.  Newest-wins makes the fold order-insensitive whenever\n"
      "generations are distinct (fleet shards stripe them).\n"
      "--version prints build provenance JSON and exits.\n"
      "exit codes: 0 success/clean/equal; 1 damage, non-canonical form, or\n"
      "differences found; 2 usage error; 3 file I/O error\n",
      Argv0, Argv0, Argv0, Argv0);
}

/// Loads \p Path or exits the process with code 3; damage is fine (the
/// caller sees it through \p Stats).
store::KnowledgeStore loadOrDie(const std::string &Path,
                                store::StoreReadStats &Stats) {
  store::KnowledgeStore KS;
  store::LoadStatus St = store::loadStoreFile(Path, KS, Stats);
  if (St != store::LoadStatus::Loaded) {
    std::fprintf(stderr, "error: cannot read %s%s\n", Path.c_str(),
                 St == store::LoadStatus::NotFound ? " (no such file)" : "");
    std::exit(3);
  }
  return KS;
}

void printReadStats(const store::StoreReadStats &Stats) {
  if (Stats.clean())
    return;
  std::printf("damage: %s%s%u sections dropped, %u records dropped\n",
              Stats.VersionMismatch ? "version mismatch, " : "",
              Stats.Truncated ? "truncated, " : "", Stats.SectionsDropped,
              Stats.RecordsDropped);
}

int cmdInspect(const std::string &Path) {
  store::StoreReadStats Stats;
  store::KnowledgeStore KS = loadOrDie(Path, Stats);

  std::printf("%s: evmstore v%u, generation %llu, app \"%s\"\n", Path.c_str(),
              KS.Header.Version,
              static_cast<unsigned long long>(KS.Header.Generation),
              KS.Header.App.c_str());
  printReadStats(Stats);

  if (KS.HasConfidence)
    std::printf("confidence: conf=%.4f cv=%.4f runs_seen=%llu\n",
                KS.Confidence, KS.CvConfidence,
                static_cast<unsigned long long>(KS.RunsSeen));
  else
    std::printf("confidence: (absent)\n");

  std::printf("runs: %zu recorded\n", KS.Runs.size());
  if (!KS.Runs.empty()) {
    ml::Dataset D;
    KS.replayRunsInto(D);
    std::printf("schema: %zu features\n", D.numFeatures());
    for (const ml::FeatureDef &Def : D.schema())
      std::printf("  %-28s %s%s\n", Def.Name.c_str(),
                  Def.Categorical ? "categorical" : "numeric",
                  Def.Categorical
                      ? (" (" + std::to_string(Def.Dictionary.size()) +
                         " values)")
                            .c_str()
                      : "");
  }

  size_t Constants = 0, Trees = 0, Nodes = 0;
  for (const store::StoredMethodModel &M : KS.Models) {
    if (M.Constant) {
      ++Constants;
      continue;
    }
    ++Trees;
    if (auto T = ml::ClassificationTree::deserialize(M.Tree))
      Nodes += T->numNodes();
  }
  std::printf("models: %zu methods (%zu constant, %zu trees, %zu tree "
              "nodes)\n",
              KS.Models.size(), Constants, Trees, Nodes);
  std::printf("repository: %zu profile rows\n", KS.RepRuns.size());
  return 0;
}

int cmdValidate(const std::string &Path) {
  store::StoreReadStats Stats;
  store::KnowledgeStore KS = loadOrDie(Path, Stats);

  bool Clean = Stats.clean();
  printReadStats(Stats);

  // Canonical form: a clean store must re-serialize to the exact bytes on
  // disk (the save->load->save identity every writer maintains).
  bool Canonical = true;
  if (Clean) {
    std::string Disk;
    FILE *F = std::fopen(Path.c_str(), "rb");
    if (!F) {
      std::fprintf(stderr, "error: cannot re-read %s\n", Path.c_str());
      return 3;
    }
    char Buf[64 << 10];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      Disk.append(Buf, N);
    std::fclose(F);
    Canonical = KS.serialize() == Disk;
    if (!Canonical)
      std::printf("non-canonical: re-serialization differs from the file\n");
  }

  // Decodable trees (framing CRC cannot see inside the tree text).
  size_t BadTrees = 0;
  for (const store::StoredMethodModel &M : KS.Models)
    if (!M.Constant && !ml::ClassificationTree::deserialize(M.Tree))
      ++BadTrees;
  if (BadTrees)
    std::printf("damage: %zu undecodable tree(s)\n", BadTrees);

  if (Clean && Canonical && !BadTrees) {
    std::printf("%s: clean (v%u, generation %llu, %zu runs, %zu models)\n",
                Path.c_str(), KS.Header.Version,
                static_cast<unsigned long long>(KS.Header.Generation),
                KS.Runs.size(), KS.Models.size());
    return 0;
  }
  return 1;
}

int cmdDiff(const std::string &PathA, const std::string &PathB) {
  store::StoreReadStats StatsA, StatsB;
  store::KnowledgeStore A = loadOrDie(PathA, StatsA);
  store::KnowledgeStore B = loadOrDie(PathB, StatsB);

  int Diffs = 0;
  auto Note = [&](const char *Fmt, auto... Args) {
    std::printf(Fmt, Args...);
    ++Diffs;
  };

  if (A.Header.Generation != B.Header.Generation)
    Note("header: generation %llu vs %llu\n",
         static_cast<unsigned long long>(A.Header.Generation),
         static_cast<unsigned long long>(B.Header.Generation));
  if (A.Header.App != B.Header.App)
    Note("header: app \"%s\" vs \"%s\"\n", A.Header.App.c_str(),
         B.Header.App.c_str());

  if (A.HasConfidence != B.HasConfidence)
    Note("confidence: %s vs %s\n", A.HasConfidence ? "present" : "absent",
         B.HasConfidence ? "present" : "absent");
  else if (A.HasConfidence &&
           (A.Confidence != B.Confidence || A.CvConfidence != B.CvConfidence ||
            A.RunsSeen != B.RunsSeen))
    Note("confidence: conf=%.6f/cv=%.6f/runs=%llu vs "
         "conf=%.6f/cv=%.6f/runs=%llu\n",
         A.Confidence, A.CvConfidence,
         static_cast<unsigned long long>(A.RunsSeen), B.Confidence,
         B.CvConfidence, static_cast<unsigned long long>(B.RunsSeen));

  if (A.Runs.size() != B.Runs.size()) {
    Note("runs: %zu vs %zu\n", A.Runs.size(), B.Runs.size());
  } else {
    for (size_t I = 0; I != A.Runs.size(); ++I)
      if (A.Runs[I].Labels != B.Runs[I].Labels ||
          A.Runs[I].Features.str() != B.Runs[I].Features.str()) {
        Note("runs: row %zu differs\n", I);
        break;
      }
  }

  if (A.Models.size() != B.Models.size()) {
    Note("models: %zu vs %zu methods\n", A.Models.size(), B.Models.size());
  } else {
    for (size_t M = 0; M != A.Models.size(); ++M) {
      const store::StoredMethodModel &MA = A.Models[M];
      const store::StoredMethodModel &MB = B.Models[M];
      if (MA.Constant != MB.Constant || MA.ConstantLabel != MB.ConstantLabel ||
          MA.Tree != MB.Tree)
        Note("models: method %zu differs (%s gen %llu vs %s gen %llu)\n", M,
             MA.Constant ? "constant" : "tree",
             static_cast<unsigned long long>(MA.Gen),
             MB.Constant ? "constant" : "tree",
             static_cast<unsigned long long>(MB.Gen));
    }
  }

  if (A.RepRuns != B.RepRuns)
    Note("repository: %zu vs %zu rows%s\n", A.RepRuns.size(),
         B.RepRuns.size(),
         A.RepRuns.size() == B.RepRuns.size() ? " (contents differ)" : "");

  if (!Diffs) {
    std::printf("stores are equivalent\n");
    return 0;
  }
  return 1;
}

/// Expands merge inputs: a directory becomes every `*.store` inside it,
/// sorted by name; anything else passes through untouched.
std::vector<std::string> expandMergeInputs(
    const std::vector<std::string> &InPaths) {
  std::vector<std::string> Out;
  for (const std::string &Path : InPaths) {
    struct stat St;
    if (stat(Path.c_str(), &St) != 0 || !S_ISDIR(St.st_mode)) {
      Out.push_back(Path);
      continue;
    }
    std::vector<std::string> Found;
    if (DIR *D = opendir(Path.c_str())) {
      while (const dirent *E = readdir(D)) {
        std::string Name = E->d_name;
        if (Name.size() > 6 &&
            Name.compare(Name.size() - 6, 6, ".store") == 0)
          Found.push_back(Path + "/" + Name);
      }
      closedir(D);
    }
    std::sort(Found.begin(), Found.end());
    if (Found.empty())
      std::fprintf(stderr, "warning: directory %s has no *.store files\n",
                   Path.c_str());
    Out.insert(Out.end(), Found.begin(), Found.end());
  }
  return Out;
}

int cmdMerge(const std::string &OutPath,
             const std::vector<std::string> &RawPaths) {
  std::vector<std::string> InPaths = expandMergeInputs(RawPaths);
  if (InPaths.empty()) {
    std::fprintf(stderr, "error: nothing to merge\n");
    return 2;
  }
  store::KnowledgeStore Merged;
  for (const std::string &Path : InPaths) {
    store::StoreReadStats Stats;
    store::KnowledgeStore KS = loadOrDie(Path, Stats);
    if (!Stats.clean())
      std::fprintf(stderr, "warning: %s damaged; merging what survived\n",
                   Path.c_str());
    Merged = store::mergeStores(Merged, KS);
  }
  if (!store::saveStoreFile(OutPath, Merged)) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 3;
  }
  std::printf("merged %zu store(s) -> %s (generation %llu, %zu runs, %zu "
              "models)\n",
              InPaths.size(), OutPath.c_str(),
              static_cast<unsigned long long>(Merged.Header.Generation),
              Merged.Runs.size(), Merged.Models.size());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  if (!Args.empty() && (Args[0] == "-h" || Args[0] == "--help")) {
    printUsage(argv[0], stdout);
    return 0;
  }
  if (!Args.empty() && Args[0] == "--version") {
    std::printf("%s\n", evm::buildInfo().renderJson().c_str());
    return 0;
  }
  if (Args.empty()) {
    printUsage(argv[0], stderr);
    return 2;
  }

  const std::string &Cmd = Args[0];
  if (Cmd == "inspect" && Args.size() == 2)
    return cmdInspect(Args[1]);
  if (Cmd == "validate" && Args.size() == 2)
    return cmdValidate(Args[1]);
  if (Cmd == "diff" && Args.size() == 3)
    return cmdDiff(Args[1], Args[2]);
  if (Cmd == "merge" && Args.size() >= 3)
    return cmdMerge(Args[1],
                    std::vector<std::string>(Args.begin() + 2, Args.end()));

  printUsage(argv[0], stderr);
  return 2;
}
