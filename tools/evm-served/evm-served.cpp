//===- tools/evm-served.cpp - The online prediction daemon ----------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the PredictionServer as a foreground daemon: bind the Unix socket,
/// serve until SIGTERM/SIGINT, then drain gracefully — complete every
/// admitted request, publish final lane checkpoints, fold the global
/// stores — and exit with the drain status (0 ok, 3 when a final store
/// fold failed).  The socket file appearing is the readiness signal;
/// removing it on exit is part of the drain.
///
/// Clients: `evm_cli --connect=SOCKET` (serial request stream, table
/// output) or anything speaking server/Protocol.h frames.
///
//===----------------------------------------------------------------------===//

#include "server/PredictionServer.h"
#include "support/ArgParse.h"
#include "support/BuildInfo.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <thread>

#include <unistd.h>

using namespace evm;

namespace {

volatile std::sig_atomic_t StopRequested = 0;

void onSignal(int) { StopRequested = 1; }

bool writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Stream(Path, std::ios::binary);
  if (!Stream)
    return false;
  Stream << Text;
  return static_cast<bool>(Stream);
}

void printUsage(const char *Argv0, std::FILE *To) {
  std::fprintf(
      To,
      "usage: %s --socket=PATH [options]\n"
      "serve online prediction requests over a Unix-domain socket until\n"
      "SIGTERM/SIGINT, then drain: finish admitted requests, publish final\n"
      "lane checkpoints, fold global stores, remove the socket\n"
      "options (value options also accept the two-token form `--opt V`):\n"
      "  --socket=PATH         listening Unix socket (required; the file\n"
      "                        appearing signals readiness)\n"
      "  --store-dir=DIR       persist lane shard stores + per-app global\n"
      "                        stores here (fleet-compatible layout; omit\n"
      "                        for a memory-only service)\n"
      "  --lanes=N             max distinct app lanes (default 8)\n"
      "  --batch=N             flush batches at N requests (default 4)\n"
      "  --deadline-us=N       flush the oldest request after N\n"
      "                        microseconds even if the batch is short\n"
      "                        (default 1000)\n"
      "  --max-queue=N         admitted-but-unanswered bound; beyond it\n"
      "                        requests get explicit 'overload' rejections\n"
      "                        (default 256)\n"
      "  --max-inflight=N      per-client in-flight bound (default 64)\n"
      "  --checkpoint-every=N  publish lane checkpoints every N runs\n"
      "                        (default 0 = only at drain)\n"
      "  --seed=S              workload build seed (default 1)\n"
      "  --workers=N           background compile workers per lane VM\n"
      "                        (default: timing-model default)\n"
      "  --metrics-out=FILE    final server.* metrics snapshot JSON\n"
      "  --decisions-out=FILE  decision ledger JSONL (runs + rejected\n"
      "                        requests; input of tools/evm-explain)\n"
      "  --version             print build provenance JSON and exit\n"
      "exit codes: 0 clean drain; 2 usage error; 3 socket/store failure\n",
      Argv0);
}

} // namespace

int main(int argc, char **argv) {
  server::ServerConfig Config;
  std::string MetricsOut, DecisionsOut;
  int64_t Lanes = 8, Batch = 4, DeadlineUs = 1000, MaxQueue = 256;
  int64_t MaxInflight = 64, CheckpointEvery = 0, Workers = -1, Seed = 1;

  for (int I = 1; I != argc; ++I) {
    std::string Arg = argv[I];
    std::string Val;
    bool HasVal = false;
    if (Arg == "-h" || Arg == "--help") {
      printUsage(argv[0], stdout);
      return ExitSuccess;
    }
    if (Arg == "--version") {
      std::printf("%s\n", buildInfo().renderJson().c_str());
      return ExitSuccess;
    }
    if (matchValueFlag(Arg, "--socket", argc, argv, I, Val, HasVal)) {
      if (!parseStringOption("--socket", Val, HasVal, "a path",
                             Config.SocketPath))
        return ExitUsage;
    } else if (matchValueFlag(Arg, "--store-dir", argc, argv, I, Val,
                              HasVal)) {
      if (!parseStringOption("--store-dir", Val, HasVal, "a directory",
                             Config.StoreDir))
        return ExitUsage;
    } else if (matchValueFlag(Arg, "--lanes", argc, argv, I, Val, HasVal)) {
      if (!parseIntOption("--lanes", Val, HasVal, 1, Lanes))
        return ExitUsage;
    } else if (matchValueFlag(Arg, "--batch", argc, argv, I, Val, HasVal)) {
      if (!parseIntOption("--batch", Val, HasVal, 1, Batch))
        return ExitUsage;
    } else if (matchValueFlag(Arg, "--deadline-us", argc, argv, I, Val,
                              HasVal)) {
      if (!parseIntOption("--deadline-us", Val, HasVal, 0, DeadlineUs))
        return ExitUsage;
    } else if (matchValueFlag(Arg, "--max-queue", argc, argv, I, Val,
                              HasVal)) {
      if (!parseIntOption("--max-queue", Val, HasVal, 1, MaxQueue))
        return ExitUsage;
    } else if (matchValueFlag(Arg, "--max-inflight", argc, argv, I, Val,
                              HasVal)) {
      if (!parseIntOption("--max-inflight", Val, HasVal, 1, MaxInflight))
        return ExitUsage;
    } else if (matchValueFlag(Arg, "--checkpoint-every", argc, argv, I, Val,
                              HasVal)) {
      if (!parseIntOption("--checkpoint-every", Val, HasVal, 0,
                          CheckpointEvery))
        return ExitUsage;
    } else if (matchValueFlag(Arg, "--seed", argc, argv, I, Val, HasVal)) {
      if (!parseIntOption("--seed", Val, HasVal, 0, Seed))
        return ExitUsage;
    } else if (matchValueFlag(Arg, "--workers", argc, argv, I, Val,
                              HasVal)) {
      if (!parseIntOption("--workers", Val, HasVal, 0, Workers))
        return ExitUsage;
    } else if (matchValueFlag(Arg, "--metrics-out", argc, argv, I, Val,
                              HasVal)) {
      if (!parseStringOption("--metrics-out", Val, HasVal, "a file",
                             MetricsOut))
        return ExitUsage;
    } else if (matchValueFlag(Arg, "--decisions-out", argc, argv, I, Val,
                              HasVal)) {
      if (!parseStringOption("--decisions-out", Val, HasVal, "a file",
                             DecisionsOut))
        return ExitUsage;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage(argv[0], stderr);
      return ExitUsage;
    }
  }
  if (Config.SocketPath.empty()) {
    std::fprintf(stderr, "error: --socket=PATH is required\n");
    printUsage(argv[0], stderr);
    return ExitUsage;
  }

  Config.Seed = static_cast<uint64_t>(Seed);
  Config.MaxLanes = static_cast<size_t>(Lanes);
  Config.BatchSize = static_cast<size_t>(Batch);
  Config.BatchDeadlineMicros = static_cast<uint64_t>(DeadlineUs);
  Config.MaxQueue = static_cast<size_t>(MaxQueue);
  Config.MaxInflightPerClient = static_cast<size_t>(MaxInflight);
  Config.CheckpointEvery = static_cast<size_t>(CheckpointEvery);
  Config.CaptureDecisions = !DecisionsOut.empty();
  if (Workers >= 0)
    Config.Experiment.Timing.NumCompileWorkers =
        static_cast<uint64_t>(Workers);

  server::PredictionServer Server(Config);
  if (!Server.start()) {
    std::fprintf(stderr, "error: %s\n", Server.error().c_str());
    return ExitIo;
  }
  std::fprintf(stderr, "evm-served: listening on %s (pid %d)\n",
               Config.SocketPath.c_str(), static_cast<int>(getpid()));

  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN); // client hangups surface as write errors
  while (!StopRequested)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::fprintf(stderr, "evm-served: draining\n");
  Server.requestDrain();
  int Rc = Server.drainAndWait();

  if (!MetricsOut.empty() &&
      !writeFile(MetricsOut, Server.metricsSnapshot().renderJson() + "\n")) {
    std::fprintf(stderr, "error: cannot write '%s'\n", MetricsOut.c_str());
    Rc = ExitIo;
  }
  if (!DecisionsOut.empty()) {
    const BuildInfo &B = buildInfo();
    LedgerProvenance P;
    P.GitSha = B.GitSha;
    P.Compiler = B.Compiler;
    P.CompilerVersion = B.CompilerVersion;
    P.BuildType = B.BuildType;
    if (!writeFile(DecisionsOut,
                   renderJsonlDecisions(Server.decisions(), &P))) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   DecisionsOut.c_str());
      Rc = ExitIo;
    }
  }
  std::fprintf(stderr, "evm-served: drained (exit %d)\n", Rc);
  return Rc;
}
