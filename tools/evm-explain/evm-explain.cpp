//===- tools/evm-explain/evm-explain.cpp - Decision-ledger analytics ------==//
//
// Explains what the discriminative predictor actually did, from the
// prediction decision ledger alone (support/DecisionLedger.h JSONL, written
// by `evm_cli --decisions-out=` and the bench_openworld/bench_crossrun
// `_decisions.jsonl` siblings):
//
//   evm-explain [options] DECISIONS.jsonl...
//
// reports:
//   * per-app decision summary (runs, predictions offered/used, guard-open
//     fraction, mean accuracy);
//   * the aggregate pred-level x ideal-level confusion matrix over every
//     per-method decision (dense level indices: base O0 O1 O2);
//   * a confidence-calibration (reliability) table: runs bucketed by the
//     guard confidence they were predicted under, each bucket's mean
//     confidence vs mean realized accuracy, and the expected calibration
//     error (ECE);
//   * guard precision/recall against posterior agreement: a run is "good"
//     when its realized accuracy clears the guard threshold; precision =
//     good-and-open / open, recall = good-and-open / good;
//   * with --drift-run=N: drift analytics matching bench_openworld's gates
//     — per-app mispredict exposure (prediction-driven post-drift runs
//     whose baseline/cycles speedup lost to the default optimizer), the
//     guard-fallback fraction (apps with a post-drift run where a
//     prediction existed but the guard refused it), and the fallback
//     latency in runs from the drift point.
//
// options:
//   --per-app            also print one confusion matrix per app
//   --bins=N             calibration buckets (default 10)
//   --drift-run=N        post-drift = run ordinal > N (1-based)
//   --strict             exit 1 on bad ledger lines, or (with --drift-run)
//                        when exposure/fallback miss the bench gates
//   --max-exposure=X     --strict exposure ceiling (default 0.10)
//   --min-fallback=X     --strict fallback-fraction floor (default 0.5)
//   --diff OLD NEW       compare two ledgers' aggregate analytics
//   --self-test          render/parse round-trip + known-answer analytics
//
// exit codes: 0 ok; 1 gate failure under --strict (or self-test failure);
//             2 usage error; 3 cannot read an input
//
//===----------------------------------------------------------------------===//

#include "support/BuildInfo.h"
#include "support/DecisionLedger.h"
#include "support/Format.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace evm;

namespace {

bool readFileInto(const std::string &Path, std::string &Out) {
  std::ifstream Stream(Path, std::ios::binary);
  if (!Stream)
    return false;
  std::stringstream Buffer;
  Buffer << Stream.rdbuf();
  Out = Buffer.str();
  return true;
}

/// Dense level indices the ledger carries (vm::levelIndex encoding).
constexpr int NumLevels = 4;
const char *const LevelNames[NumLevels] = {"base", "O0", "O1", "O2"};

// --- Aggregate analytics -------------------------------------------------

/// Per-app run-level rollup, in first-seen (ledger) order.  Rejected
/// records (admission drops from a serving daemon, see evm-served
/// --decisions-out) count toward the drop rate only — they never ran.
struct AppSummary {
  std::string App;
  size_t Runs = 0;
  size_t Had = 0;
  size_t Used = 0;
  size_t Open = 0;
  size_t Rejected = 0; ///< admission-control drops (no run state)
  double AccSum = 0;   ///< over Had runs

  /// Fraction of this app's requests the daemon shed.
  double dropRate() const {
    return Runs + Rejected
               ? static_cast<double>(Rejected) /
                     static_cast<double>(Runs + Rejected)
               : 0.0;
  }
};

std::vector<AppSummary> summarizeApps(const std::vector<DecisionRecord> &Rs) {
  std::vector<AppSummary> Out;
  std::map<std::string, size_t> Index;
  for (const DecisionRecord &R : Rs) {
    auto It = Index.find(R.App);
    if (It == Index.end()) {
      It = Index.emplace(R.App, Out.size()).first;
      Out.push_back(AppSummary());
      Out.back().App = R.App;
    }
    AppSummary &A = Out[It->second];
    if (R.Rejected) {
      ++A.Rejected;
      continue;
    }
    ++A.Runs;
    if (R.Had) {
      ++A.Had;
      A.AccSum += R.Accuracy;
    }
    if (R.Used)
      ++A.Used;
    if (R.GuardOpen)
      ++A.Open;
  }
  return Out;
}

/// Pred-level x ideal-level counts over every per-method decision.
struct Confusion {
  size_t Cell[NumLevels][NumLevels] = {};
  size_t Total = 0;
  size_t Agree = 0;

  void add(const DecisionRecord &R) {
    for (const MethodDecision &M : R.Methods) {
      if (M.Pred < 0 || M.Pred >= NumLevels || M.Ideal < 0 ||
          M.Ideal >= NumLevels)
        continue;
      ++Cell[M.Pred][M.Ideal];
      ++Total;
      if (M.Pred == M.Ideal)
        ++Agree;
    }
  }
};

/// Reliability buckets over the confidence a prediction was made under.
struct CalibrationBin {
  size_t N = 0;
  double ConfSum = 0;
  double AccSum = 0;
};

struct Calibration {
  std::vector<CalibrationBin> Bins;
  size_t Total = 0;

  explicit Calibration(size_t NumBins) : Bins(NumBins) {}

  void add(const DecisionRecord &R) {
    if (!R.Had || Bins.empty())
      return;
    double C = R.ConfBefore;
    if (C < 0)
      C = 0;
    if (C > 1)
      C = 1;
    size_t B = static_cast<size_t>(C * static_cast<double>(Bins.size()));
    if (B >= Bins.size())
      B = Bins.size() - 1;
    ++Bins[B].N;
    Bins[B].ConfSum += C;
    Bins[B].AccSum += R.Accuracy;
    ++Total;
  }

  /// Expected calibration error: bucket-weighted |mean conf - mean acc|.
  double ece() const {
    if (!Total)
      return 0;
    double E = 0;
    for (const CalibrationBin &B : Bins)
      if (B.N)
        E += (static_cast<double>(B.N) / static_cast<double>(Total)) *
             std::fabs(B.ConfSum / static_cast<double>(B.N) -
                       B.AccSum / static_cast<double>(B.N));
    return E;
  }
};

/// Guard quality against posterior agreement: "good" = the run's realized
/// accuracy cleared the guard threshold, i.e. predicting was the right
/// call.  Precision: of the runs the guard opened for, how many were good.
/// Recall: of the good runs, how many the guard opened for.
struct GuardQuality {
  size_t Had = 0;
  size_t Open = 0;
  size_t Good = 0;
  size_t OpenGood = 0;

  void add(const DecisionRecord &R) {
    if (!R.Had)
      return;
    ++Had;
    bool IsGood = R.Accuracy >= R.Threshold;
    if (IsGood)
      ++Good;
    if (R.GuardOpen) {
      ++Open;
      if (IsGood)
        ++OpenGood;
    }
  }

  double precision() const {
    return Open ? static_cast<double>(OpenGood) / static_cast<double>(Open)
                : 0.0;
  }
  double recall() const {
    return Good ? static_cast<double>(OpenGood) / static_cast<double>(Good)
                : 0.0;
  }
};

// --- Drift analytics -----------------------------------------------------

/// Post-drift behaviour of one app (bench_openworld's DriftStats, re-derived
/// from records alone).
struct DriftApp {
  std::string App;
  size_t Post = 0;
  size_t Harmful = 0;   ///< used a prediction and lost to the baseline
  bool Fallback = false; ///< a post-drift run had a prediction refused
  uint64_t FallbackRun = 0; ///< first such run ordinal
};

struct DriftReport {
  std::vector<DriftApp> Apps;
  double MeanExposure = 0;
  double FallbackFrac = 0;
  double MeanLatency = 0; ///< runs from the drift point to first fallback
  uint64_t MaxLatency = 0;
};

DriftReport analyzeDriftRecords(const std::vector<DecisionRecord> &Rs,
                                uint64_t DriftRun) {
  DriftReport Rep;
  std::map<std::string, size_t> Index;
  for (const DecisionRecord &R : Rs) {
    if (R.Rejected) // admission drops never ran; no drift signal
      continue;
    auto It = Index.find(R.App);
    if (It == Index.end()) {
      It = Index.emplace(R.App, Rep.Apps.size()).first;
      Rep.Apps.push_back(DriftApp());
      Rep.Apps.back().App = R.App;
    }
    DriftApp &A = Rep.Apps[It->second];
    if (R.Run <= DriftRun) // Run is 1-based; post-drift is beyond DriftRun
      continue;
    ++A.Post;
    // Same arithmetic as the harness: speedup = baseline / cycles, harmful
    // when a prediction-driven run lost to the default optimizer.
    if (R.Used && R.BaselineCycles && R.Cycles &&
        static_cast<double>(R.BaselineCycles) /
                static_cast<double>(R.Cycles) <
            1.0 - 1e-9)
      ++A.Harmful;
    if (R.Had && !R.Used && !A.Fallback) {
      A.Fallback = true;
      A.FallbackRun = R.Run;
    }
  }

  std::vector<double> Exposure;
  size_t FellBack = 0;
  double LatencySum = 0;
  for (const DriftApp &A : Rep.Apps) {
    Exposure.push_back(A.Post ? static_cast<double>(A.Harmful) /
                                    static_cast<double>(A.Post)
                              : 0.0);
    if (A.Fallback) {
      ++FellBack;
      uint64_t Latency = A.FallbackRun - DriftRun;
      LatencySum += static_cast<double>(Latency);
      if (Latency > Rep.MaxLatency)
        Rep.MaxLatency = Latency;
    }
  }
  if (!Exposure.empty()) {
    double Sum = 0;
    for (double E : Exposure)
      Sum += E;
    Rep.MeanExposure = Sum / static_cast<double>(Exposure.size());
  }
  if (!Rep.Apps.empty())
    Rep.FallbackFrac =
        static_cast<double>(FellBack) / static_cast<double>(Rep.Apps.size());
  if (FellBack)
    Rep.MeanLatency = LatencySum / static_cast<double>(FellBack);
  return Rep;
}

// --- Rendering -----------------------------------------------------------

void printConfusion(const Confusion &C, const char *Title) {
  std::printf("%s (pred rows x ideal columns, %zu method decisions, "
              "%.1f%% agree)\n",
              Title, C.Total,
              C.Total ? 100.0 * static_cast<double>(C.Agree) /
                            static_cast<double>(C.Total)
                      : 0.0);
  TextTable Table({"pred\\ideal", LevelNames[0], LevelNames[1], LevelNames[2],
                   LevelNames[3]});
  for (int P = 0; P != NumLevels; ++P) {
    Table.beginRow();
    Table.addCell(LevelNames[P]);
    for (int I = 0; I != NumLevels; ++I)
      Table.addCell(static_cast<int64_t>(C.Cell[P][I]));
  }
  std::printf("%s\n", Table.render().c_str());
}

void printCalibration(const Calibration &Cal) {
  std::printf("Confidence calibration (%zu predicted runs, ECE %.4f)\n",
              Cal.Total, Cal.ece());
  TextTable Table({"conf bucket", "runs", "mean conf", "mean acc", "gap"});
  for (size_t B = 0; B != Cal.Bins.size(); ++B) {
    const CalibrationBin &Bin = Cal.Bins[B];
    Table.beginRow();
    Table.addCell(formatString(
        "[%.2f,%.2f)", static_cast<double>(B) /
                           static_cast<double>(Cal.Bins.size()),
        static_cast<double>(B + 1) / static_cast<double>(Cal.Bins.size())));
    Table.addCell(static_cast<int64_t>(Bin.N));
    if (Bin.N) {
      double MeanConf = Bin.ConfSum / static_cast<double>(Bin.N);
      double MeanAcc = Bin.AccSum / static_cast<double>(Bin.N);
      Table.addCell(MeanConf, 3);
      Table.addCell(MeanAcc, 3);
      Table.addCell(MeanAcc - MeanConf, 3);
    } else {
      Table.addCell("-");
      Table.addCell("-");
      Table.addCell("-");
    }
  }
  std::printf("%s\n", Table.render().c_str());
}

/// One ledger's aggregate numbers, for --diff.
struct Aggregate {
  size_t Records = 0;
  size_t Apps = 0;
  double HadFrac = 0;
  double UsedFrac = 0;
  double OpenFrac = 0;
  double MeanAccuracy = 0; ///< over Had runs
  double AgreeFrac = 0;    ///< over method decisions
  double Ece = 0;
  double Precision = 0;
  double Recall = 0;
};

Aggregate aggregate(const std::vector<DecisionRecord> &Rs, size_t Bins) {
  Aggregate A;
  A.Records = Rs.size();
  Confusion C;
  Calibration Cal(Bins);
  GuardQuality G;
  size_t Had = 0, Used = 0, Open = 0;
  double AccSum = 0;
  std::map<std::string, bool> Apps;
  for (const DecisionRecord &R : Rs) {
    Apps[R.App] = true;
    if (R.Had) {
      ++Had;
      AccSum += R.Accuracy;
    }
    if (R.Used)
      ++Used;
    if (R.GuardOpen)
      ++Open;
    C.add(R);
    Cal.add(R);
    G.add(R);
  }
  A.Apps = Apps.size();
  if (!Rs.empty()) {
    double N = static_cast<double>(Rs.size());
    A.HadFrac = static_cast<double>(Had) / N;
    A.UsedFrac = static_cast<double>(Used) / N;
    A.OpenFrac = static_cast<double>(Open) / N;
  }
  if (Had)
    A.MeanAccuracy = AccSum / static_cast<double>(Had);
  if (C.Total)
    A.AgreeFrac =
        static_cast<double>(C.Agree) / static_cast<double>(C.Total);
  A.Ece = Cal.ece();
  A.Precision = G.precision();
  A.Recall = G.recall();
  return A;
}

// --- Self-test -----------------------------------------------------------

std::vector<DecisionRecord> makeSelfTestRecords() {
  std::vector<DecisionRecord> Rs;
  auto Run = [](const char *App, uint64_t RunNo, bool Had, bool Open,
                bool Used, double ConfBefore, double Acc, uint64_t Cycles,
                uint64_t Baseline) {
    DecisionRecord R;
    R.App = App;
    R.Run = RunNo;
    R.Features = "size=3, mode=\"fast\"";
    R.FvHash = 0x1234abcdULL + RunNo;
    R.Guard = "decayed";
    R.GuardOpen = Open;
    R.Used = Used;
    R.Had = Had;
    R.ConfBefore = ConfBefore;
    R.ConfAfter = ConfBefore;
    R.CvConf = 0;
    R.Threshold = 0.7;
    R.Accuracy = Acc;
    R.Cycles = Cycles;
    R.BaselineCycles = Baseline;
    return R;
  };
  auto Method = [](uint32_t M, int Pred, int Ideal, bool Constant,
                   const char *Path) {
    MethodDecision D;
    D.Method = M;
    D.Pred = Pred;
    D.Ideal = Ideal;
    D.Agree = Pred == Ideal;
    D.Constant = Constant;
    D.Path = Path;
    return D;
  };

  Rs.push_back(Run("A", 1, false, false, false, 0.0, 0.0, 100, 100));
  Rs.push_back(Run("A", 2, true, true, true, 0.75, 0.8, 90, 100));
  Rs.back().Methods.push_back(Method(0, 1, 1, false, "N0:1.5:L|L1"));
  Rs.back().Methods.push_back(Method(1, 2, 0, false, "C1:3:R|L2"));
  Rs.push_back(Run("A", 3, true, true, true, 0.8, 0.2, 120, 100));
  Rs.back().Methods.push_back(Method(0, 2, 0, false, "N0:1.5:R|L2"));
  Rs.push_back(Run("A", 4, true, false, false, 0.4, 0.5, 100, 100));
  Rs.back().Methods.push_back(Method(0, 0, 0, true, ""));
  Rs.push_back(Run("B", 3, true, true, true, 0.95, 0.9, 80, 100));
  Rs.back().Methods.push_back(Method(0, 1, 1, false, "L1"));
  // Two admission drops from a serving daemon (evm-served): reason in
  // Guard, `rejected` verdict, no run state.  They feed the drop-rate
  // column and must stay invisible to every run-level analytic.
  for (const char *Reason : {"overload", "client_inflight"}) {
    DecisionRecord Rej;
    Rej.App = "A";
    Rej.Guard = Reason;
    Rej.Rejected = true;
    Rs.push_back(Rej);
  }
  return Rs;
}

int selfTest() {
  int Failures = 0;
  auto Check = [&](bool Ok, const char *What) {
    if (!Ok) {
      std::fprintf(stderr, "self-test FAILED: %s\n", What);
      ++Failures;
    }
  };
  auto Near = [](double A, double B) { return std::fabs(A - B) < 1e-12; };

  std::vector<DecisionRecord> Rs = makeSelfTestRecords();

  // Render -> parse -> render must be byte-identical (escaping included).
  LedgerProvenance Prov;
  Prov.GitSha = "deadbeef";
  Prov.Compiler = "GNU";
  Prov.CompilerVersion = "12.0";
  Prov.BuildType = "Release";
  std::string Text = renderJsonlDecisions(Rs, &Prov);
  LedgerReader Reader;
  Reader.addText(Text);
  Check(Reader.badLines() == 0, "round-trip: no bad lines");
  Check(Reader.hasProvenance() && Reader.provenance().GitSha == "deadbeef",
        "round-trip: provenance survives");
  Check(Reader.records().size() == Rs.size(),
        "round-trip: record count survives");
  std::string Again = renderJsonlDecisions(Reader.records(), &Prov);
  Check(Again == Text, "round-trip: render(parse(render)) is byte-identical");

  // Known-answer analytics over the synthetic ledger.
  Confusion C;
  Calibration Cal(10);
  GuardQuality G;
  for (const DecisionRecord &R : Reader.records()) {
    C.add(R);
    Cal.add(R);
    G.add(R);
  }
  Check(C.Total == 5 && C.Agree == 3, "confusion totals");
  Check(C.Cell[1][1] == 2 && C.Cell[2][0] == 2 && C.Cell[0][0] == 1,
        "confusion cells");
  Check(Cal.Total == 4, "calibration population");
  Check(Near(Cal.ece(), (0.05 + 0.6 + 0.1 + 0.05) / 4.0), "ECE");
  Check(G.Had == 4 && G.Open == 3 && G.Good == 2 && G.OpenGood == 2,
        "guard counts");
  Check(Near(G.precision(), 2.0 / 3.0) && Near(G.recall(), 1.0),
        "guard precision/recall");

  // Rejected records: the flag round-trips, the drop rate counts them,
  // and (asserted by the unchanged totals above) run-level analytics
  // never see them.
  Check(Reader.records()[5].Rejected &&
            Reader.records()[5].Guard == "overload" &&
            Reader.records()[6].Guard == "client_inflight",
        "rejected round-trips");
  std::vector<AppSummary> Apps = summarizeApps(Reader.records());
  Check(Apps.size() == 2 && Apps[0].Runs == 4 && Apps[0].Rejected == 2 &&
            Apps[1].Rejected == 0,
        "rejected feeds per-app drop counts");
  Check(Near(Apps[0].dropRate(), 2.0 / 6.0) && Near(Apps[1].dropRate(), 0.0),
        "drop rate");

  DriftReport D = analyzeDriftRecords(Reader.records(), 2);
  Check(D.Apps.size() == 2, "drift app count");
  Check(D.Apps[0].Post == 2 && D.Apps[0].Harmful == 1 &&
            D.Apps[0].Fallback && D.Apps[0].FallbackRun == 4,
        "drift app A");
  Check(D.Apps[1].Post == 1 && D.Apps[1].Harmful == 0 &&
            !D.Apps[1].Fallback,
        "drift app B");
  Check(Near(D.MeanExposure, 0.25) && Near(D.FallbackFrac, 0.5) &&
            Near(D.MeanLatency, 2.0) && D.MaxLatency == 2,
        "drift aggregates");

  // Ring-buffer bound: newest kept, shed counted.
  DecisionLedger Ring(2);
  Ring.setEnabled(true);
  if (Ring.enabled()) {
    for (const DecisionRecord &R : Rs)
      Ring.record(R);
    std::vector<DecisionRecord> Kept = Ring.exportOrder();
    Check(Kept.size() == 2 && Ring.droppedRecords() == Rs.size() - 2,
          "ring keeps newest");
    Check(Kept[0].Run == Rs[Rs.size() - 2].Run &&
              Kept[1].Run == Rs[Rs.size() - 1].Run,
          "ring export order");
  }

  if (!Failures)
    std::printf("evm-explain self-test: all checks passed\n");
  return Failures;
}

void printUsage(const char *Argv0, std::FILE *To) {
  std::fprintf(
      To,
      "usage: %s [options] DECISIONS.jsonl...\n"
      "       %s --diff OLD.jsonl NEW.jsonl\n"
      "explain prediction decisions from a decision ledger (see\n"
      "evm_cli --decisions-out and the bench _decisions.jsonl siblings).\n"
      "options:\n"
      "  --per-app        also print one confusion matrix per app\n"
      "  --bins=N         calibration buckets (default 10)\n"
      "  --drift-run=N    drift analytics: post-drift = run ordinal > N\n"
      "  --strict         exit 1 on bad lines or missed drift gates\n"
      "  --max-exposure=X strict exposure ceiling (default 0.10)\n"
      "  --min-fallback=X strict fallback-fraction floor (default 0.5)\n"
      "  --diff OLD NEW   compare two ledgers' aggregate analytics\n"
      "  --self-test      run the built-in regression check\n"
      "  --version        print build provenance JSON and exit\n",
      Argv0, Argv0);
}

} // namespace

int main(int argc, char **argv) {
  bool PerApp = false;
  bool Strict = false;
  bool Diff = false;
  int64_t Bins = 10;
  int64_t DriftRun = -1;
  double MaxExposure = 0.10;
  double MinFallback = 0.5;
  std::vector<std::string> Paths;

  for (int I = 1; I != argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-h" || Arg == "--help") {
      printUsage(argv[0], stdout);
      return 0;
    }
    if (Arg == "--version") {
      std::printf("%s\n", buildInfo().renderJson().c_str());
      return 0;
    }
    if (Arg == "--self-test")
      return selfTest();
    if (Arg == "--per-app") {
      PerApp = true;
    } else if (Arg == "--strict") {
      Strict = true;
    } else if (Arg == "--diff") {
      Diff = true;
    } else if (Arg.rfind("--bins=", 0) == 0) {
      auto N = parseInteger(Arg.substr(7));
      if (!N || *N < 1 || *N > 1000) {
        std::fprintf(stderr, "error: bad --bins value\n");
        return 2;
      }
      Bins = *N;
    } else if (Arg.rfind("--drift-run=", 0) == 0) {
      auto N = parseInteger(Arg.substr(12));
      if (!N || *N < 0) {
        std::fprintf(stderr, "error: bad --drift-run value\n");
        return 2;
      }
      DriftRun = *N;
    } else if (Arg.rfind("--max-exposure=", 0) == 0) {
      auto X = parseDouble(Arg.substr(15));
      if (!X || *X < 0) {
        std::fprintf(stderr, "error: bad --max-exposure value\n");
        return 2;
      }
      MaxExposure = *X;
    } else if (Arg.rfind("--min-fallback=", 0) == 0) {
      auto X = parseDouble(Arg.substr(15));
      if (!X || *X < 0 || *X > 1) {
        std::fprintf(stderr, "error: bad --min-fallback value\n");
        return 2;
      }
      MinFallback = *X;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage(argv[0], stderr);
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }

  if (Diff) {
    if (Paths.size() != 2) {
      std::fprintf(stderr, "error: --diff needs exactly OLD and NEW\n");
      return 2;
    }
    Aggregate Old, New;
    for (size_t Side = 0; Side != 2; ++Side) {
      std::string Text;
      if (!readFileInto(Paths[Side], Text)) {
        std::fprintf(stderr, "error: cannot read %s\n", Paths[Side].c_str());
        return 3;
      }
      LedgerReader Reader;
      Reader.addText(Text);
      (Side ? New : Old) =
          aggregate(Reader.records(), static_cast<size_t>(Bins));
    }
    TextTable Table({"metric", "old", "new", "delta"});
    auto Row = [&](const char *Name, double O, double N, int Prec) {
      Table.beginRow();
      Table.addCell(Name);
      Table.addCell(O, Prec);
      Table.addCell(N, Prec);
      Table.addCell(N - O, Prec);
    };
    Row("records", static_cast<double>(Old.Records),
        static_cast<double>(New.Records), 0);
    Row("apps", static_cast<double>(Old.Apps),
        static_cast<double>(New.Apps), 0);
    Row("had_frac", Old.HadFrac, New.HadFrac, 4);
    Row("used_frac", Old.UsedFrac, New.UsedFrac, 4);
    Row("open_frac", Old.OpenFrac, New.OpenFrac, 4);
    Row("mean_accuracy", Old.MeanAccuracy, New.MeanAccuracy, 4);
    Row("method_agree", Old.AgreeFrac, New.AgreeFrac, 4);
    Row("ece", Old.Ece, New.Ece, 4);
    Row("guard_precision", Old.Precision, New.Precision, 4);
    Row("guard_recall", Old.Recall, New.Recall, 4);
    std::printf("%s vs %s\n%s\n", Paths[0].c_str(), Paths[1].c_str(),
                Table.render().c_str());
    return 0;
  }

  if (Paths.empty()) {
    printUsage(argv[0], stderr);
    return 2;
  }

  LedgerReader Reader;
  for (const std::string &Path : Paths) {
    std::string Text;
    if (!readFileInto(Path, Text)) {
      std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
      return 3;
    }
    Reader.addText(Text);
  }
  const std::vector<DecisionRecord> &Records = Reader.records();
  if (Reader.badLines())
    std::fprintf(stderr, "warning: %llu unparseable ledger lines skipped\n",
                 static_cast<unsigned long long>(Reader.badLines()));
  if (Records.empty()) {
    std::printf("no decision records (ledger empty, or binary built with "
                "EVM_DECISIONS=0)\n");
    return Strict && Reader.badLines() ? 1 : 0;
  }

  if (Reader.hasProvenance()) {
    const LedgerProvenance &P = Reader.provenance();
    std::printf("ledger provenance: git %s, %s %s, %s build\n\n",
                P.GitSha.c_str(), P.Compiler.c_str(),
                P.CompilerVersion.c_str(), P.BuildType.c_str());
  }

  // Per-app decision summary.  Rejected records feed the drop% column
  // only; every run-level analytic below sees completed runs.
  std::vector<AppSummary> Apps = summarizeApps(Records);
  size_t TotalRejected = 0;
  for (const AppSummary &A : Apps)
    TotalRejected += A.Rejected;
  if (TotalRejected)
    std::printf("Decision summary: %zu records across %zu apps "
                "(%zu rejected by admission control)\n",
                Records.size(), Apps.size(), TotalRejected);
  else
    std::printf("Decision summary: %zu records across %zu apps\n",
                Records.size(), Apps.size());
  {
    TextTable Table(
        {"app", "runs", "had", "used", "open%", "drop%", "mean acc"});
    size_t Shown = 0;
    for (const AppSummary &A : Apps) {
      if (++Shown > 20 && Apps.size() > 24) {
        Table.beginRow();
        Table.addCell(formatString("... %zu more apps", Apps.size() - 20));
        for (int K = 0; K != 6; ++K)
          Table.addCell("");
        break;
      }
      Table.beginRow();
      Table.addCell(A.App);
      Table.addCell(static_cast<int64_t>(A.Runs));
      Table.addCell(static_cast<int64_t>(A.Had));
      Table.addCell(static_cast<int64_t>(A.Used));
      Table.addCell(A.Runs ? 100.0 * static_cast<double>(A.Open) /
                                 static_cast<double>(A.Runs)
                           : 0.0,
                    1);
      Table.addCell(100.0 * A.dropRate(), 1);
      Table.addCell(A.Had ? A.AccSum / static_cast<double>(A.Had) : 0.0, 3);
    }
    std::printf("%s\n", Table.render().c_str());
  }

  // Confusion matrices.
  Confusion Total;
  std::map<std::string, Confusion> ByApp;
  for (const DecisionRecord &R : Records) {
    if (R.Rejected)
      continue;
    Total.add(R);
    if (PerApp)
      ByApp[R.App].add(R);
  }
  printConfusion(Total, "Aggregate confusion");
  if (PerApp)
    for (const AppSummary &A : Apps)
      printConfusion(ByApp[A.App],
                     formatString("Confusion: %s", A.App.c_str()).c_str());

  // Calibration + guard quality.
  Calibration Cal(static_cast<size_t>(Bins));
  GuardQuality Guard;
  for (const DecisionRecord &R : Records) {
    if (R.Rejected)
      continue;
    Cal.add(R);
    Guard.add(R);
  }
  printCalibration(Cal);
  std::printf("Guard quality vs posterior (good = accuracy >= threshold): "
              "precision %.3f (%zu/%zu open), recall %.3f (%zu/%zu good)\n\n",
              Guard.precision(), Guard.OpenGood, Guard.Open, Guard.recall(),
              Guard.OpenGood, Guard.Good);

  // Drift analytics + strict gates.
  int Failures = Strict && Reader.badLines() ? 1 : 0;
  if (DriftRun >= 0) {
    DriftReport D =
        analyzeDriftRecords(Records, static_cast<uint64_t>(DriftRun));
    std::printf("Drift analytics (post-drift = run > %lld): mean mispredict "
                "exposure %.4f,\nguard fallback on %.1f%% of %zu apps, "
                "fallback latency mean %.1f / max %llu runs\n",
                static_cast<long long>(DriftRun), D.MeanExposure,
                100.0 * D.FallbackFrac, D.Apps.size(), D.MeanLatency,
                static_cast<unsigned long long>(D.MaxLatency));
    if (Strict) {
      if (D.MeanExposure > MaxExposure) {
        std::fprintf(stderr,
                     "GATE: mispredict exposure %.4f > %.4f\n",
                     D.MeanExposure, MaxExposure);
        ++Failures;
      }
      if (D.FallbackFrac < MinFallback) {
        std::fprintf(stderr,
                     "GATE: guard fallback fraction %.4f < %.4f\n",
                     D.FallbackFrac, MinFallback);
        ++Failures;
      }
    }
  }

  return Failures ? 1 : 0;
}
