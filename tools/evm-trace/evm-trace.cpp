//===- tools/evm-trace/evm-trace.cpp - Trace timeline analyser ------------==//
//
// Offline analysis over a JSONL trace produced with --trace-jsonl= (or by
// renderJsonlTrace):
//
//   evm-trace [REPORT...] TRACE.jsonl
//
// Reports (default: all three):
//
//   --timeline   per-run, per-method tier timeline (level transitions at
//                their virtual cycles, invocation/sample totals)
//   --compiles   compile-pipeline accounting (stalled vs overlapped cost,
//                drops, coalesces, per-worker busy cycles)
//   --evolve     Evolve-vs-reactive diff (predictions next to recompile
//                counts; recompilations avoided, cycles at optimized level
//                gained)
//
// The reports are plain text, deterministic for a deterministic trace, and
// covered by tests/test_trace.cpp.
//
//===----------------------------------------------------------------------===//

#include "support/BuildInfo.h"
#include "support/TraceAnalysis.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace evm;

namespace {

void printUsage(const char *Argv0, std::FILE *To) {
  std::fprintf(To,
               "usage: %s [--timeline] [--compiles] [--evolve] TRACE.jsonl\n"
               "Analyses a JSONL VM trace (evm_cli --trace-jsonl=FILE).\n"
               "With no report flags, prints all three reports.\n"
               "--version prints build provenance JSON and exits.\n",
               Argv0);
}

} // namespace

int main(int argc, char **argv) {
  bool Timeline = false, Compiles = false, Evolve = false;
  std::string Path;
  for (int I = 1; I != argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-h" || Arg == "--help") {
      printUsage(argv[0], stdout);
      return 0;
    }
    if (Arg == "--version") {
      std::printf("%s\n", buildInfo().renderJson().c_str());
      return 0;
    }
    if (Arg == "--timeline") {
      Timeline = true;
    } else if (Arg == "--compiles") {
      Compiles = true;
    } else if (Arg == "--evolve") {
      Evolve = true;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage(argv[0], stderr);
      return 2;
    } else if (Path.empty()) {
      Path = Arg;
    } else {
      std::fprintf(stderr, "error: more than one trace file\n");
      return 2;
    }
  }
  if (Path.empty()) {
    printUsage(argv[0], stderr);
    return 2;
  }
  if (!Timeline && !Compiles && !Evolve)
    Timeline = Compiles = Evolve = true;

  std::ifstream Stream(Path, std::ios::binary);
  if (!Stream) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << Stream.rdbuf();

  auto Trace = parseJsonlTrace(Buffer.str());
  if (!Trace) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                 Trace.getError().message().c_str());
    return 1;
  }
  ParsedTrace Parsed = Trace.takeValue();
  std::printf("%s: %zu events, %zu runs\n", Path.c_str(),
              Parsed.Events.size(), Parsed.Runs.size());

  if (Timeline)
    std::printf("\n%s", renderTierTimeline(Parsed).c_str());
  if (Compiles)
    std::printf("\n%s", renderCompileAccounting(Parsed).c_str());
  if (Evolve)
    std::printf("\n%s", renderEvolveDiff(Parsed).c_str());
  return 0;
}
