//===- tools/evm-prof/evm-prof.cpp - Phase-profile analyser ---------------==//
//
// Offline analysis over a phase-profile document produced with
// evm_cli --profile-out= or embedded in a bench --json document:
//
//   evm-prof [REPORT...] PROFILE.json [PROFILE2.json]
//
// Reports (default: --top):
//
//   --top=N          top-N phases by exclusive cycles, with %-of-total
//   --overhead[=PCT] the paper's self-overhead check: XICL characterization
//                    + prediction cycles as a percentage of the run total;
//                    exits 1 when the percentage is >= PCT (default 1.0)
//   --diff           phase-by-phase cycle diff of two profiles (reactive vs
//                    Evolve, sync vs async workers)
//   --flame          emit flamegraph.pl-compatible collapsed stacks
//   --speedscope     emit speedscope JSON (open at https://speedscope.app)
//   --latency        phase-latency percentiles (p50/p90/p99) from the
//                    histogram metrics embedded in the document
//
// Deterministic output for deterministic profiles; covered by
// tests/test_profiler.cpp and the perf-smoke ctest.
//
//===----------------------------------------------------------------------===//

#include "support/BuildInfo.h"
#include "support/Profiler.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace evm;

namespace {

void printUsage(const char *Argv0, std::FILE *To) {
  std::fprintf(
      To,
      "usage: %s [REPORT...] PROFILE.json [PROFILE2.json]\n"
      "Analyses a phase-profile document (evm_cli --profile-out=FILE or a\n"
      "bench --json document).  Reports (default: --top=20):\n"
      "  --top=N          top-N phases by exclusive cycles\n"
      "  --overhead[=PCT] xicl characterize + ml predict cycles as %% of the\n"
      "                   run total; exit 1 when >= PCT (default 1.0)\n"
      "  --diff           phase-by-phase diff (requires two profiles)\n"
      "  --flame          emit collapsed stacks (flamegraph.pl format)\n"
      "  --speedscope     emit speedscope JSON\n"
      "  --latency        p50/p90/p99 of embedded histogram metrics\n"
      "  --fusion         superinstruction coverage report from the\n"
      "                   dispatch.* gauges of a bench_dispatch document\n"
      "  --version        print build provenance JSON and exit\n",
      Argv0);
}

bool readFileInto(const std::string &Path, std::string &Out) {
  std::ifstream Stream(Path, std::ios::binary);
  if (!Stream)
    return false;
  std::stringstream Buffer;
  Buffer << Stream.rdbuf();
  Out = Buffer.str();
  return true;
}

/// One embedded histogram metric (see MetricsSnapshot::renderJson).
struct HistogramMetric {
  std::string Name;
  uint64_t Count = 0;
  double P50 = 0, P90 = 0, P99 = 0;
};

/// Pulls "kind":"histogram" entries out of an embedded metrics rendering.
/// Lenient by design (same spirit as parsePhaseTreeJson): objects missing
/// the expected keys are skipped, not errors.
std::vector<HistogramMetric> parseHistograms(const std::string &Text) {
  std::vector<HistogramMetric> Out;
  size_t At = 0;
  while ((At = Text.find("\"kind\":\"histogram\"", At)) != std::string::npos) {
    size_t Open = Text.rfind('{', At);
    size_t Close = Text.find('}', At);
    if (Open == std::string::npos || Close == std::string::npos)
      break;
    std::string Obj = Text.substr(Open, Close - Open + 1);
    HistogramMetric H;
    auto field = [&](const char *Key) -> std::string {
      std::string Needle = std::string("\"") + Key + "\":";
      size_t F = Obj.find(Needle);
      if (F == std::string::npos)
        return "";
      F += Needle.size();
      size_t End = Obj.find_first_of(",}", F);
      return Obj.substr(F, End - F);
    };
    std::string Name = field("name");
    if (Name.size() >= 2 && Name.front() == '"' && Name.back() == '"') {
      H.Name = Name.substr(1, Name.size() - 2);
      H.Count = static_cast<uint64_t>(std::strtoull(field("count").c_str(),
                                                    nullptr, 10));
      H.P50 = std::strtod(field("p50").c_str(), nullptr);
      H.P90 = std::strtod(field("p90").c_str(), nullptr);
      H.P99 = std::strtod(field("p99").c_str(), nullptr);
      Out.push_back(std::move(H));
    }
    At = Close;
  }
  return Out;
}

/// One embedded gauge metric.  Same lenient scan as parseHistograms.
struct GaugeMetric {
  std::string Name;
  double Value = 0;
};

std::vector<GaugeMetric> parseGauges(const std::string &Text) {
  std::vector<GaugeMetric> Out;
  size_t At = 0;
  while ((At = Text.find("\"kind\":\"gauge\"", At)) != std::string::npos) {
    size_t Open = Text.rfind('{', At);
    size_t Close = Text.find('}', At);
    if (Open == std::string::npos || Close == std::string::npos)
      break;
    std::string Obj = Text.substr(Open, Close - Open + 1);
    auto field = [&](const char *Key) -> std::string {
      std::string Needle = std::string("\"") + Key + "\":";
      size_t F = Obj.find(Needle);
      if (F == std::string::npos)
        return "";
      F += Needle.size();
      size_t End = Obj.find_first_of(",}", F);
      return Obj.substr(F, End - F);
    };
    std::string Name = field("name");
    if (Name.size() >= 2 && Name.front() == '"' && Name.back() == '"') {
      GaugeMetric G;
      G.Name = Name.substr(1, Name.size() - 2);
      G.Value = std::strtod(field("value").c_str(), nullptr);
      Out.push_back(std::move(G));
    }
    At = Close;
  }
  return Out;
}

uint64_t totalCycles(const PhaseTreeSnapshot &Snap) {
  uint64_t Total = 0;
  for (const PhaseTreeSnapshot::Entry &E : Snap.entries())
    Total += E.Cycles;
  return Total;
}

int reportTop(const PhaseTreeSnapshot &Snap, size_t N) {
  std::vector<PhaseTreeSnapshot::Entry> Sorted = Snap.entries();
  std::sort(Sorted.begin(), Sorted.end(),
            [](const PhaseTreeSnapshot::Entry &A,
               const PhaseTreeSnapshot::Entry &B) {
              if (A.Cycles != B.Cycles)
                return A.Cycles > B.Cycles;
              return A.Stack < B.Stack;
            });
  uint64_t Total = totalCycles(Snap);
  uint64_t RunTotal = Snap.totalUnder("run");
  TextTable Table({"phase", "cycles", "% total", "count"});
  size_t Shown = 0;
  for (const PhaseTreeSnapshot::Entry &E : Sorted) {
    if (E.Cycles == 0 || Shown == N)
      break;
    Table.beginRow();
    Table.addCell(E.Stack);
    Table.addCell(static_cast<int64_t>(E.Cycles));
    Table.addCell(Total ? 100.0 * static_cast<double>(E.Cycles) /
                              static_cast<double>(Total)
                        : 0.0,
                  2);
    Table.addCell(static_cast<int64_t>(E.Count));
    ++Shown;
  }
  std::printf("total attributed cycles: %llu (run subtree: %llu)\n\n",
              static_cast<unsigned long long>(Total),
              static_cast<unsigned long long>(RunTotal));
  std::printf("%s", Table.render().c_str());
  return 0;
}

int reportOverhead(const PhaseTreeSnapshot &Snap, double ThresholdPct) {
  uint64_t RunTotal = Snap.totalUnder("run");
  uint64_t Characterize = Snap.totalUnder("run;overhead;xicl/characterize");
  uint64_t Predict = Snap.totalUnder("run;overhead;ml/predict");
  uint64_t Residual = Snap.totalUnder("run;overhead") - Characterize - Predict;
  if (RunTotal == 0) {
    std::fprintf(stderr, "error: profile has no cycles under \"run\"\n");
    return 3;
  }
  double Pct = [&](uint64_t C) {
    return 100.0 * static_cast<double>(C) / static_cast<double>(RunTotal);
  }(Characterize + Predict);
  TextTable Table({"component", "cycles", "% of run"});
  auto row = [&](const char *Name, uint64_t C) {
    Table.beginRow();
    Table.addCell(std::string(Name));
    Table.addCell(static_cast<int64_t>(C));
    Table.addCell(100.0 * static_cast<double>(C) /
                      static_cast<double>(RunTotal),
                  4);
  };
  row("xicl/characterize", Characterize);
  row("ml/predict", Predict);
  row("other overhead", Residual);
  std::printf("%s\n", Table.render().c_str());
  std::printf("self-overhead (characterize + predict): %.4f%% of %llu run "
              "cycles (threshold %.2f%%): %s\n",
              Pct, static_cast<unsigned long long>(RunTotal), ThresholdPct,
              Pct < ThresholdPct ? "OK" : "EXCEEDED");
  return Pct < ThresholdPct ? 0 : 1;
}

int reportDiff(const PhaseTreeSnapshot &A, const PhaseTreeSnapshot &B,
               const std::string &NameA, const std::string &NameB) {
  std::map<std::string, std::pair<uint64_t, uint64_t>> Rows;
  for (const PhaseTreeSnapshot::Entry &E : A.entries())
    Rows[E.Stack].first = E.Cycles;
  for (const PhaseTreeSnapshot::Entry &E : B.entries())
    Rows[E.Stack].second = E.Cycles;
  TextTable Table({"phase", NameA, NameB, "delta"});
  for (const auto &[Stack, Cycles] : Rows) {
    if (Cycles.first == 0 && Cycles.second == 0)
      continue;
    Table.beginRow();
    Table.addCell(Stack);
    Table.addCell(static_cast<int64_t>(Cycles.first));
    Table.addCell(static_cast<int64_t>(Cycles.second));
    Table.addCell(static_cast<int64_t>(Cycles.second) -
                  static_cast<int64_t>(Cycles.first));
  }
  std::printf("%s", Table.render().c_str());
  std::printf("\ntotal: %llu -> %llu (run subtree: %llu -> %llu)\n",
              static_cast<unsigned long long>(totalCycles(A)),
              static_cast<unsigned long long>(totalCycles(B)),
              static_cast<unsigned long long>(A.totalUnder("run")),
              static_cast<unsigned long long>(B.totalUnder("run")));
  return 0;
}

int reportLatency(const std::string &Document) {
  std::vector<HistogramMetric> Hists = parseHistograms(Document);
  if (Hists.empty()) {
    std::printf("no histogram metrics embedded in the document\n");
    return 0;
  }
  TextTable Table({"histogram", "count", "p50", "p90", "p99"});
  for (const HistogramMetric &H : Hists) {
    Table.beginRow();
    Table.addCell(H.Name);
    Table.addCell(static_cast<int64_t>(H.Count));
    Table.addCell(H.P50, 1);
    Table.addCell(H.P90, 1);
    Table.addCell(H.P99, 1);
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}

int reportFusion(const std::string &Document) {
  std::vector<GaugeMetric> Gauges = parseGauges(Document);
  const std::string PairPrefix = "dispatch.fusion.pair.";
  auto gauge = [&](const char *Name) {
    for (const GaugeMetric &G : Gauges)
      if (G.Name == Name)
        return G.Value;
    return 0.0;
  };
  bool Any = false;
  for (const GaugeMetric &G : Gauges)
    if (G.Name.rfind("dispatch.", 0) == 0)
      Any = true;
  if (!Any) {
    std::printf("no dispatch.* gauges embedded in the document (run "
                "bench_dispatch --json=FILE)\n");
    return 0;
  }

  double Instrs = gauge("dispatch.instrs");
  double Execs = gauge("dispatch.fusion.execs");
  std::printf("identity gate: %s\n",
              gauge("dispatch.identity") == 1.0 ? "byte-equal" : "DIVERGED");
  std::printf("static: %.0f fused sites over %.0f decoded slots; dynamic: "
              "%.0f of %.0f instrs retired fused (%.1f%%)\n\n",
              gauge("dispatch.fusion.static_sites"),
              gauge("dispatch.fusion.decoded_slots"), 2 * Execs, Instrs,
              100.0 * gauge("dispatch.fusion.dynamic_fraction"));

  std::vector<GaugeMetric> Pairs;
  for (const GaugeMetric &G : Gauges)
    if (G.Name.rfind(PairPrefix, 0) == 0)
      Pairs.push_back({G.Name.substr(PairPrefix.size()), G.Value});
  std::sort(Pairs.begin(), Pairs.end(),
            [](const GaugeMetric &A, const GaugeMetric &B) {
              if (A.Value != B.Value)
                return A.Value > B.Value;
              return A.Name < B.Name;
            });
  TextTable Table({"pair", "execs", "% of fused"});
  for (const GaugeMetric &P : Pairs) {
    Table.beginRow();
    Table.addCell(P.Name);
    Table.addCell(static_cast<int64_t>(P.Value));
    Table.addCell(Execs ? 100.0 * P.Value / Execs : 0.0, 2);
  }
  std::printf("%s", Table.render().c_str());
  return gauge("dispatch.identity") == 1.0 ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  bool Top = false, Overhead = false, Diff = false, Flame = false;
  bool Speedscope = false, Latency = false, Fusion = false;
  size_t TopN = 20;
  double OverheadPct = 1.0;
  std::vector<std::string> Paths;

  for (int I = 1; I != argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-h" || Arg == "--help") {
      printUsage(argv[0], stdout);
      return 0;
    }
    if (Arg == "--version") {
      std::printf("%s\n", buildInfo().renderJson().c_str());
      return 0;
    }
    if (Arg == "--top" || startsWith(Arg, "--top=")) {
      Top = true;
      if (startsWith(Arg, "--top=")) {
        auto N = parseInteger(Arg.substr(6));
        if (!N || *N <= 0) {
          std::fprintf(stderr, "error: bad --top count '%s'\n", Arg.c_str());
          return 2;
        }
        TopN = static_cast<size_t>(*N);
      }
    } else if (Arg == "--overhead" || startsWith(Arg, "--overhead=")) {
      Overhead = true;
      if (startsWith(Arg, "--overhead=")) {
        char *End = nullptr;
        OverheadPct = std::strtod(Arg.c_str() + 11, &End);
        if (End == Arg.c_str() + 11 || *End != '\0' || OverheadPct <= 0) {
          std::fprintf(stderr, "error: bad --overhead threshold '%s'\n",
                       Arg.c_str());
          return 2;
        }
      }
    } else if (Arg == "--diff") {
      Diff = true;
    } else if (Arg == "--flame") {
      Flame = true;
    } else if (Arg == "--speedscope") {
      Speedscope = true;
    } else if (Arg == "--latency") {
      Latency = true;
    } else if (Arg == "--fusion") {
      Fusion = true;
    } else if (startsWith(Arg, "--")) {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage(argv[0], stderr);
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }

  if (!Top && !Overhead && !Diff && !Flame && !Speedscope && !Latency &&
      !Fusion)
    Top = true;
  // --fusion and --latency read embedded metrics, not the phase tree, so a
  // document without parsable phases (e.g. bench_dispatch's, which carries
  // only metrics) is fine as long as no phase-based report was requested.
  bool NeedPhases = Top || Overhead || Diff || Flame || Speedscope;
  size_t Needed = Diff ? 2 : 1;
  if (Paths.size() != Needed) {
    std::fprintf(stderr, "error: expected %zu profile file%s, got %zu\n",
                 Needed, Needed == 1 ? "" : "s", Paths.size());
    printUsage(argv[0], stderr);
    return 2;
  }

  std::vector<std::string> Documents(Paths.size());
  std::vector<PhaseTreeSnapshot> Snaps(Paths.size());
  for (size_t I = 0; I != Paths.size(); ++I) {
    if (!readFileInto(Paths[I], Documents[I])) {
      std::fprintf(stderr, "error: cannot read %s\n", Paths[I].c_str());
      return 3;
    }
    auto Snap = parsePhaseTreeJson(Documents[I]);
    if (!Snap) {
      if (NeedPhases) {
        std::fprintf(stderr, "error: %s: %s\n", Paths[I].c_str(),
                     Snap.getError().message().c_str());
        return 3;
      }
      continue; // metrics-only report over a phase-less document
    }
    Snaps[I] = Snap.takeValue();
  }

  int Exit = 0;
  if (Flame)
    std::printf("%s", Snaps[0].renderCollapsed().c_str());
  if (Speedscope)
    std::printf("%s\n", Snaps[0].renderSpeedscope(Paths[0]).c_str());
  if (Top)
    Exit = std::max(Exit, reportTop(Snaps[0], TopN));
  if (Latency)
    Exit = std::max(Exit, reportLatency(Documents[0]));
  if (Fusion)
    Exit = std::max(Exit, reportFusion(Documents[0]));
  if (Diff)
    Exit = std::max(Exit, reportDiff(Snaps[0], Snaps[1], Paths[0], Paths[1]));
  if (Overhead)
    Exit = std::max(Exit, reportOverhead(Snaps[0], OverheadPct));
  return Exit;
}
