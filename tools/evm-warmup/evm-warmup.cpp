//===- tools/evm-warmup/evm-warmup.cpp - Steady-state series report -------==//
//
// Renders the steady-state analytics embedded in bench --json documents
// (see bench/BenchJson.h and support/Stats.h):
//
//   evm-warmup [options] RESULTS.json...
//
// accepts either one aggregated BENCH_results.json or any number of
// per-bench documents, re-analyzes every "series" entry's raw samples with
// support/Stats, and prints one row per series: classification, detected
// changepoints, and the steady-state window with its bootstrap CI.  Series
// that never reach a steady state (class cyclic or no-steady-state) are
// flagged — after Barrett et al., those are exactly the runs whose means
// must not be trusted in a perf comparison.
//
// options:
//   --strict     exit 1 when any series fails to reach a steady state
//   --self-test  run the stats module's built-in regression check and exit
//                with its failure count (wired as a fast ctest so the gate
//                logic itself is covered in every sanitizer lane)
//
// exit codes: 0 ok; 1 flagged series under --strict (or self-test failure);
//             2 usage error; 3 cannot read an input
//
//===----------------------------------------------------------------------===//

#include "support/BuildInfo.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace evm;

namespace {

bool readFileInto(const std::string &Path, std::string &Out) {
  std::ifstream Stream(Path, std::ios::binary);
  if (!Stream)
    return false;
  std::stringstream Buffer;
  Buffer << Stream.rdbuf();
  Out = Buffer.str();
  return true;
}

/// One parsed series entry plus which bench document it came from.
struct ParsedSeries {
  std::string Bench;
  std::string Name;
  std::string Unit;
  bool LowerIsBetter = true;
  std::vector<double> Samples;
};

/// Scans \p Text for series entries.  Lenient by design (same spirit as
/// evm-prof's parseHistograms): anything not shaped like a series entry is
/// skipped, not an error.  Anchors on the "lower_is_better" key, which
/// only series entries carry.
std::vector<ParsedSeries> parseSeries(const std::string &Text) {
  std::vector<ParsedSeries> Out;
  size_t At = 0;
  while ((At = Text.find("\"lower_is_better\":", At)) != std::string::npos) {
    ParsedSeries S;
    // The owning bench document: nearest preceding "bench" key.
    size_t BenchKey = Text.rfind("\"bench\":\"", At);
    if (BenchKey != std::string::npos) {
      size_t From = BenchKey + 9;
      S.Bench = Text.substr(From, Text.find('"', From) - From);
    }
    // The series' own name/unit immediately precede the anchor.
    size_t NameKey = Text.rfind("\"name\":\"", At);
    if (NameKey != std::string::npos) {
      size_t From = NameKey + 8;
      S.Name = Text.substr(From, Text.find('"', From) - From);
    }
    size_t UnitKey = Text.rfind("\"unit\":\"", At);
    if (UnitKey != std::string::npos && UnitKey > NameKey) {
      size_t From = UnitKey + 8;
      S.Unit = Text.substr(From, Text.find('"', From) - From);
    }
    S.LowerIsBetter = Text.compare(At + 18, 4, "true") == 0;
    size_t SamplesKey = Text.find("\"samples\":[", At);
    size_t End = SamplesKey == std::string::npos
                     ? std::string::npos
                     : Text.find(']', SamplesKey);
    At += 18;
    if (SamplesKey == std::string::npos || End == std::string::npos)
      continue;
    const char *P = Text.c_str() + SamplesKey + 11;
    const char *Stop = Text.c_str() + End;
    while (P < Stop) {
      char *Next = nullptr;
      double V = std::strtod(P, &Next);
      if (Next == P)
        break;
      S.Samples.push_back(V);
      P = Next;
      while (P < Stop && (*P == ',' || *P == ' '))
        ++P;
    }
    if (!S.Name.empty() && !S.Samples.empty())
      Out.push_back(std::move(S));
  }
  return Out;
}

std::string formatChangepoints(const std::vector<size_t> &Cps) {
  if (Cps.empty())
    return "-";
  std::string Out;
  for (size_t I = 0; I != Cps.size(); ++I) {
    if (I)
      Out += ',';
    Out += std::to_string(Cps[I]);
  }
  return Out;
}

void printUsage(const char *Argv0, std::FILE *To) {
  std::fprintf(
      To,
      "usage: %s [--strict] [--self-test] RESULTS.json...\n"
      "Reports steady-state classifications of the per-iteration series\n"
      "embedded in bench --json documents (or an aggregated\n"
      "BENCH_results.json).  --strict exits 1 when any series has no\n"
      "steady state; --self-test runs the stats module regression check;\n"
      "--version prints build provenance JSON and exits.\n",
      Argv0);
}

} // namespace

int main(int argc, char **argv) {
  bool Strict = false;
  std::vector<std::string> Paths;
  for (int I = 1; I != argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-h" || Arg == "--help") {
      printUsage(argv[0], stdout);
      return 0;
    }
    if (Arg == "--version") {
      std::printf("%s\n", buildInfo().renderJson().c_str());
      return 0;
    }
    if (Arg == "--self-test")
      return statsSelfTest(/*Verbose=*/true) ? 1 : 0;
    if (Arg == "--strict") {
      Strict = true;
    } else if (startsWith(Arg, "--")) {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage(argv[0], stderr);
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.empty()) {
    printUsage(argv[0], stderr);
    return 2;
  }

  std::vector<ParsedSeries> All;
  for (const std::string &Path : Paths) {
    std::string Text;
    if (!readFileInto(Path, Text)) {
      std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
      return 3;
    }
    std::vector<ParsedSeries> Parsed = parseSeries(Text);
    All.insert(All.end(), Parsed.begin(), Parsed.end());
  }
  if (All.empty()) {
    std::printf("no per-iteration series embedded in the document(s)\n");
    return 0;
  }

  size_t Flagged = 0;
  TextTable Table({"bench", "series", "n", "class", "changepoints",
                   "steady window", "steady mean", "95% CI"});
  for (const ParsedSeries &S : All) {
    SeriesOptions Opts;
    Opts.LowerIsBetter = S.LowerIsBetter;
    SeriesAnalysis A = analyzeSeries(S.Samples, Opts);
    bool Steady = A.HasSteadyState;
    if (!Steady)
      ++Flagged;
    Table.beginRow();
    Table.addCell(S.Bench.empty() ? "-" : S.Bench);
    Table.addCell(S.Name);
    Table.addCell(static_cast<int64_t>(S.Samples.size()));
    Table.addCell(std::string(seriesClassName(A.Class)) +
                  (Steady ? "" : "  <-- FLAGGED"));
    Table.addCell(formatChangepoints(A.Changepoints));
    if (Steady) {
      Table.addCell("[" + std::to_string(A.Steady.Begin) + ", " +
                    std::to_string(A.Steady.Begin + A.Steady.Count) + ")");
      Table.addCell(A.Steady.Mean, 4);
      Table.addCell("[" + formatString("%.4g", A.Steady.CILow) + ", " +
                    formatString("%.4g", A.Steady.CIHigh) + "]");
    } else {
      Table.addCell("-");
      Table.addCell("-");
      Table.addCell("-");
    }
  }
  std::printf("%s\n", Table.render().c_str());
  if (Flagged) {
    std::printf("%zu series never reach a steady state — their means are "
                "not comparable\n(see EXPERIMENTS.md, \"Reading "
                "steady-state reports\").\n",
                Flagged);
    if (Strict)
      return 1;
  } else {
    std::printf("all %zu series reach a steady state\n", All.size());
  }
  return 0;
}
