#!/bin/sh
# Threads-matrix smoke for fleet mode: runs the same fleet at several
# --threads values and fails unless every aggregate JSON is byte-identical
# to the T=1 document.  Meant for the sanitizer lanes —
#
#   cmake -B build-tsan -S . -DEVM_SANITIZE=thread
#   cmake --build build-tsan -j
#   tools/fleet-smoke.sh build-tsan
#
# — where it drives the real evm_cli binary (tenant threads, shard
# checkpoints, global-store folds) through TSan, but it is just as useful
# as a quick local determinism check on a plain build.
#
#   tools/fleet-smoke.sh [BUILD_DIR] [THREADS...]
#
#   BUILD_DIR  CMake build tree holding examples/evm_cli (default: build)
#   THREADS    thread counts to sweep (default: 1 2 4 8)
set -eu

BUILD_DIR="${1:-build}"
[ $# -gt 0 ] && shift
THREADS="${*:-1 2 4 8}"

CLI="$BUILD_DIR/examples/evm_cli"
if [ ! -x "$CLI" ]; then
  echo "error: $CLI not found (build first: cmake --build $BUILD_DIR)" >&2
  exit 2
fi

WORK="$(mktemp -d /tmp/fleet-smoke.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

BASELINE=""
for T in $THREADS; do
  OUT="$WORK/t$T.json"
  # Fresh shard dir per thread count: launch-vs-launch, not warm-start.
  "$CLI" --fleet 6 --threads "$T" --fleet-runs 5 --merge-every 2 \
    --shard-dir "$WORK/shards-t$T" --seed 20090301 \
    > "$OUT" 2> "$WORK/t$T.err"
  if [ -z "$BASELINE" ]; then
    BASELINE="$OUT"
    echo "T=$T: baseline ($(wc -c < "$OUT") bytes)"
    continue
  fi
  if cmp -s "$BASELINE" "$OUT"; then
    echo "T=$T: byte-identical"
  else
    echo "FAIL: aggregate JSON at T=$T differs from T=1" >&2
    cmp "$BASELINE" "$OUT" >&2 || true
    exit 1
  fi
done
echo "fleet threads-matrix smoke: OK ($THREADS)"
