#!/usr/bin/env bash
# Threads-matrix smoke for fleet mode: runs the same fleet at several
# --threads values and fails unless every aggregate JSON — and every
# decision-ledger JSONL — is byte-identical to the T=1 document.  Meant
# for the sanitizer lanes —
#
#   cmake -B build-tsan -S . -DEVM_SANITIZE=thread
#   cmake --build build-tsan -j
#   tools/fleet-smoke.sh build-tsan
#
# — where it drives the real evm_cli binary (tenant threads, shard
# checkpoints, global-store folds, per-tenant ledgers) through TSan, but
# it is just as useful as a quick local determinism check on a plain
# build.
#
#   tools/fleet-smoke.sh [BUILD_DIR] [THREADS...]
#
#   BUILD_DIR  CMake build tree holding examples/evm_cli (default: build)
#   THREADS    thread counts to sweep (default: 1 2 4 8)
set -euo pipefail

BUILD_DIR="${1:-build}"
if [ "$#" -gt 0 ]; then
  shift
fi
THREADS=("$@")
if [ "${#THREADS[@]}" -eq 0 ]; then
  THREADS=(1 2 4 8)
fi

CLI="$BUILD_DIR/examples/evm_cli"
if [ ! -x "$CLI" ]; then
  echo "error: $CLI not found (build first: cmake --build \"$BUILD_DIR\")" >&2
  exit 2
fi

WORK="$(mktemp -d /tmp/fleet-smoke.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

BASELINE=""
BASELINE_DECISIONS=""
for T in "${THREADS[@]}"; do
  OUT="$WORK/t$T.json"
  DECISIONS="$WORK/t$T.decisions.jsonl"
  # Fresh shard dir per thread count: launch-vs-launch, not warm-start.
  # Fail the whole matrix on the first broken cell, with its stderr.
  if ! "$CLI" --fleet 6 --threads "$T" --fleet-runs 5 --merge-every 2 \
      --shard-dir "$WORK/shards-t$T" --seed 20090301 \
      --decisions-out "$DECISIONS" \
      > "$OUT" 2> "$WORK/t$T.err"; then
    echo "FAIL: evm_cli exited nonzero at T=$T" >&2
    cat "$WORK/t$T.err" >&2
    exit 1
  fi
  if [ -z "$BASELINE" ]; then
    BASELINE="$OUT"
    BASELINE_DECISIONS="$DECISIONS"
    echo "T=$T: baseline ($(wc -c < "$OUT") bytes aggregate," \
      "$(wc -c < "$DECISIONS") bytes ledger)"
    continue
  fi
  if ! cmp -s "$BASELINE" "$OUT"; then
    echo "FAIL: aggregate JSON at T=$T differs from T=${THREADS[0]}" >&2
    cmp "$BASELINE" "$OUT" >&2 || true
    exit 1
  fi
  if ! cmp -s "$BASELINE_DECISIONS" "$DECISIONS"; then
    echo "FAIL: decision ledger at T=$T differs from T=${THREADS[0]}" >&2
    cmp "$BASELINE_DECISIONS" "$DECISIONS" >&2 || true
    exit 1
  fi
  echo "T=$T: byte-identical (aggregate + ledger)"
done
echo "fleet threads-matrix smoke: OK (${THREADS[*]})"
