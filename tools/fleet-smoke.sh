#!/usr/bin/env bash
# Threads-matrix smoke for fleet mode: runs the same fleet at several
# --threads values and fails unless every aggregate JSON — and every
# decision-ledger JSONL — is byte-identical to the T=1 document.  Meant
# for the sanitizer lanes —
#
#   cmake -B build-tsan -S . -DEVM_SANITIZE=thread
#   cmake --build build-tsan -j
#   tools/fleet-smoke.sh build-tsan
#
# — where it drives the real evm_cli binary (tenant threads, shard
# checkpoints, global-store folds, per-tenant ledgers) through TSan, but
# it is just as useful as a quick local determinism check on a plain
# build.
#
#   tools/fleet-smoke.sh [BUILD_DIR] [THREADS...]
#
#   BUILD_DIR  CMake build tree holding examples/evm_cli (default: build)
#   THREADS    thread counts to sweep (default: 1 2 4 8)
set -euo pipefail

BUILD_DIR="${1:-build}"
if [ "$#" -gt 0 ]; then
  shift
fi
THREADS=("$@")
if [ "${#THREADS[@]}" -eq 0 ]; then
  THREADS=(1 2 4 8)
fi

CLI="$BUILD_DIR/examples/evm_cli"
if [ ! -x "$CLI" ]; then
  echo "error: $CLI not found (build first: cmake --build \"$BUILD_DIR\")" >&2
  exit 2
fi

WORK="$(mktemp -d /tmp/fleet-smoke.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

BASELINE=""
BASELINE_DECISIONS=""
for T in "${THREADS[@]}"; do
  OUT="$WORK/t$T.json"
  DECISIONS="$WORK/t$T.decisions.jsonl"
  # Fresh shard dir per thread count: launch-vs-launch, not warm-start.
  # Fail the whole matrix on the first broken cell, with its stderr.
  if ! "$CLI" --fleet 6 --threads "$T" --fleet-runs 5 --merge-every 2 \
      --shard-dir "$WORK/shards-t$T" --seed 20090301 \
      --decisions-out "$DECISIONS" \
      > "$OUT" 2> "$WORK/t$T.err"; then
    echo "FAIL: evm_cli exited nonzero at T=$T" >&2
    cat "$WORK/t$T.err" >&2
    exit 1
  fi
  if [ -z "$BASELINE" ]; then
    BASELINE="$OUT"
    BASELINE_DECISIONS="$DECISIONS"
    echo "T=$T: baseline ($(wc -c < "$OUT") bytes aggregate," \
      "$(wc -c < "$DECISIONS") bytes ledger)"
    continue
  fi
  if ! cmp -s "$BASELINE" "$OUT"; then
    echo "FAIL: aggregate JSON at T=$T differs from T=${THREADS[0]}" >&2
    cmp "$BASELINE" "$OUT" >&2 || true
    exit 1
  fi
  if ! cmp -s "$BASELINE_DECISIONS" "$DECISIONS"; then
    echo "FAIL: decision ledger at T=$T differs from T=${THREADS[0]}" >&2
    cmp "$BASELINE_DECISIONS" "$DECISIONS" >&2 || true
    exit 1
  fi
  echo "T=$T: byte-identical (aggregate + ledger)"
done
echo "fleet threads-matrix smoke: OK (${THREADS[*]})"

# Daemon smoke cell: boot the real evm-served, drive it with evm_cli
# --connect, SIGTERM it, and require a clean graceful drain — exit 0 and a
# final global store that evm-store validate accepts.  Under the TSan lane
# this exercises the whole serving stack (reader threads, batcher, lanes,
# gateway folds) against the race detector.
#
# The cell runs twice — EVM_DISPATCH=switch and EVM_DISPATCH=fused — with
# the same inputs, and the two decision ledgers must be byte-identical:
# interpreter threading/superinstruction fusion must be invisible to every
# served prediction, all the way through the daemon's batcher and lanes.
SERVED="$BUILD_DIR/tools/evm-served"
STORE_TOOL="$BUILD_DIR/tools/evm-store"
if [ ! -x "$SERVED" ] || [ ! -x "$STORE_TOOL" ]; then
  echo "note: evm-served or evm-store not built, skipping daemon smoke"
  exit 0
fi

daemon_cell() {  # $1 = dispatch mode (tag for outputs + EVM_DISPATCH)
  local MODE="$1"
  local SOCK="$WORK/served-$MODE.sock"
  local SERVE_DIR="$WORK/served-store-$MODE"
  EVM_DISPATCH="$MODE" "$SERVED" --socket "$SOCK" --store-dir "$SERVE_DIR" \
    --batch 2 --deadline-us 500 \
    --decisions-out "$WORK/served-$MODE.decisions.jsonl" \
    > "$WORK/served-$MODE.log" 2>&1 &
  local SERVED_PID=$!

  # Readiness signal: the socket file exists once start() returns.
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    kill -0 "$SERVED_PID" 2>/dev/null || {
      echo "FAIL: evm-served ($MODE) died before binding $SOCK" >&2
      cat "$WORK/served-$MODE.log" >&2
      exit 1
    }
    sleep 0.1
  done
  [ -S "$SOCK" ] || { echo "FAIL: $SOCK never appeared" >&2; exit 1; }

  if ! "$CLI" --connect "$SOCK" --app route --input-order 0,1,2,3,0,1 \
      > "$WORK/served-$MODE.client.txt" \
      2> "$WORK/served-$MODE.client.err"; then
    echo "FAIL: evm_cli --connect against evm-served ($MODE) exited" \
      "nonzero" >&2
    cat "$WORK/served-$MODE.client.err" >&2
    kill -9 "$SERVED_PID" 2>/dev/null || true
    exit 1
  fi

  # Graceful drain: SIGTERM must complete in-flight work, fold the final
  # checkpoint, and exit 0.
  kill -TERM "$SERVED_PID"
  local SERVED_RC=0
  wait "$SERVED_PID" || SERVED_RC=$?
  if [ "$SERVED_RC" -ne 0 ]; then
    echo "FAIL: evm-served ($MODE) drain exited $SERVED_RC" >&2
    cat "$WORK/served-$MODE.log" >&2
    exit 1
  fi

  # The drain-time fold's global store must be clean and canonical.
  # (Gateway filenames sanitize lane ids: app "route" -> global-route.store.)
  if ! "$STORE_TOOL" validate "$SERVE_DIR/global-route.store" \
      > "$WORK/served-$MODE.validate.txt"; then
    echo "FAIL: evm-store validate rejects the $MODE drain checkpoint" >&2
    cat "$WORK/served-$MODE.validate.txt" >&2
    exit 1
  fi
  echo "daemon smoke ($MODE): OK" \
    "($(tail -n1 "$WORK/served-$MODE.validate.txt"))"
}

daemon_cell switch
daemon_cell fused

if ! cmp -s "$WORK/served-switch.decisions.jsonl" \
    "$WORK/served-fused.decisions.jsonl"; then
  echo "FAIL: served decision ledgers differ between EVM_DISPATCH=switch" \
    "and fused" >&2
  cmp "$WORK/served-switch.decisions.jsonl" \
    "$WORK/served-fused.decisions.jsonl" >&2 || true
  exit 1
fi
if ! cmp -s "$WORK/served-switch.client.txt" \
    "$WORK/served-fused.client.txt"; then
  echo "FAIL: served client output differs between EVM_DISPATCH=switch" \
    "and fused" >&2
  exit 1
fi
echo "daemon dispatch cell: ledgers byte-identical (switch vs fused)"
