//===- workloads/Generator.cpp - Open-world synthetic workload generator --==//

#include "workloads/Generator.h"
#include "workloads/RandomProgram.h"
#include "workloads/WorkloadDetail.h"

#include "bytecode/Assembler.h"
#include "bytecode/Verifier.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace evm;
using namespace evm::wl;
using bc::FunctionBuilder;
using bc::MethodId;
using bc::ModuleBuilder;
using bc::Opcode;
using bc::Value;

//===----------------------------------------------------------------------===//
// GenSpec: parse / render / validate
//===----------------------------------------------------------------------===//

const char *wl::driftKindName(DriftKind K) {
  switch (K) {
  case DriftKind::None:
    return "none";
  case DriftKind::Flip:
    return "flip";
  case DriftKind::Walk:
    return "walk";
  }
  return "none";
}

bool GenSpec::operator==(const GenSpec &O) const {
  return Seed == O.Seed && HotMethods == O.HotMethods &&
         ColdMethods == O.ColdMethods && CallDepth == O.CallDepth &&
         FanOut == O.FanOut && LoopDepth == O.LoopDepth &&
         NumInputs == O.NumInputs && NumRuns == O.NumRuns &&
         MinWork == O.MinWork && MaxWork == O.MaxWork &&
         Coupling == O.Coupling && Drift == O.Drift && DriftAt == O.DriftAt &&
         ScaleA == O.ScaleA && ScaleB == O.ScaleB;
}

Error wl::validateGenSpec(const GenSpec &S) {
  auto Fail = [](const std::string &Msg) { return Error(Msg); };
  if (S.HotMethods < 1)
    return Fail("gen spec: hot must be >= 1");
  if (S.ColdMethods < 0)
    return Fail("gen spec: cold must be >= 0");
  if (S.CallDepth < 2)
    return Fail("gen spec: depth must be >= 2");
  if (S.FanOut < 2)
    return Fail("gen spec: fanout must be >= 2");
  if (S.FanOut > S.HotMethods + S.ColdMethods)
    return Fail("gen spec: fanout must be <= hot+cold (a caller's leaf "
                "callees must be distinct)");
  if (S.LoopDepth < 1 || S.LoopDepth > 6)
    return Fail("gen spec: loops must be in [1, 6]");
  if (S.NumInputs < 2)
    return Fail("gen spec: inputs must be >= 2");
  if (S.NumRuns < 1)
    return Fail("gen spec: runs must be >= 1");
  if (S.MinWork < 1 || S.MinWork > S.MaxWork)
    return Fail("gen spec: need 0 < minwork <= maxwork");
  if (S.MaxWork > (int64_t{1} << 24))
    return Fail("gen spec: maxwork too large (> 2^24)");
  if (!(S.Coupling >= 0.0 && S.Coupling <= 1.0))
    return Fail("gen spec: coupling must be in [0, 1]");
  if (!(S.DriftAt > 0.0 && S.DriftAt < 1.0))
    return Fail("gen spec: driftat must be in (0, 1)");
  if (S.ScaleA < 1 || S.ScaleB < 1)
    return Fail("gen spec: scalea/scaleb must be >= 1");
  // Leaf call-site capacity: main and each inner spine node provide
  // fanout-1 slots, the last spine node fanout, and slots are filled
  // round-robin — every hot/cold method needs at least one.
  int Slots = (S.CallDepth - 1) * (S.FanOut - 1) + S.FanOut;
  if (Slots < S.HotMethods + S.ColdMethods)
    return Fail(formatString(
        "gen spec: %d leaf call sites cannot reach hot+cold=%d methods "
        "(raise depth or fanout, or shrink the method pool)",
        Slots, S.HotMethods + S.ColdMethods));
  return Error();
}

ErrorOr<GenSpec> wl::parseGenSpec(const std::string &Text) {
  GenSpec S;
  for (const std::string &RawPair : splitString(Text, ',')) {
    std::string Pair = trimString(RawPair);
    if (Pair.empty())
      continue;
    size_t Eq = Pair.find('=');
    if (Eq == std::string::npos)
      return Error(formatString("gen spec: '%s' is not key=value",
                                Pair.c_str()));
    std::string Key = trimString(Pair.substr(0, Eq));
    std::string Val = trimString(Pair.substr(Eq + 1));

    auto Int = [&](int64_t Min, int64_t Max, int64_t &Dest) -> bool {
      std::optional<int64_t> N = parseInteger(Val);
      if (!N || *N < Min || *N > Max)
        return false;
      Dest = *N;
      return true;
    };
    auto SmallInt = [&](int64_t Min, int64_t Max, int &Dest) -> bool {
      int64_t V = 0;
      if (!Int(Min, Max, V))
        return false;
      Dest = static_cast<int>(V);
      return true;
    };
    auto Size = [&](size_t &Dest) -> bool {
      int64_t V = 0;
      if (!Int(1, 1 << 20, V))
        return false;
      Dest = static_cast<size_t>(V);
      return true;
    };
    auto Frac = [&](double &Dest) -> bool {
      std::optional<double> D = parseDouble(Val);
      if (!D || !(*D >= 0.0 && *D <= 1.0))
        return false;
      Dest = *D;
      return true;
    };

    bool Ok = true;
    if (Key == "seed") {
      int64_t V = 0;
      Ok = Int(0, INT64_MAX, V);
      S.Seed = static_cast<uint64_t>(V);
    } else if (Key == "hot") {
      Ok = SmallInt(1, 64, S.HotMethods);
    } else if (Key == "cold") {
      Ok = SmallInt(0, 64, S.ColdMethods);
    } else if (Key == "depth") {
      Ok = SmallInt(2, 16, S.CallDepth);
    } else if (Key == "fanout") {
      Ok = SmallInt(2, 16, S.FanOut);
    } else if (Key == "loops") {
      Ok = SmallInt(1, 6, S.LoopDepth);
    } else if (Key == "inputs") {
      Ok = Size(S.NumInputs);
    } else if (Key == "runs") {
      Ok = Size(S.NumRuns);
    } else if (Key == "minwork") {
      Ok = Int(1, int64_t{1} << 24, S.MinWork);
    } else if (Key == "maxwork") {
      Ok = Int(1, int64_t{1} << 24, S.MaxWork);
    } else if (Key == "coupling") {
      Ok = Frac(S.Coupling);
    } else if (Key == "driftat") {
      Ok = Frac(S.DriftAt);
    } else if (Key == "scalea") {
      Ok = Int(1, 1 << 16, S.ScaleA);
    } else if (Key == "scaleb") {
      Ok = Int(1, 1 << 16, S.ScaleB);
    } else if (Key == "drift") {
      if (Val == "none")
        S.Drift = DriftKind::None;
      else if (Val == "flip")
        S.Drift = DriftKind::Flip;
      else if (Val == "walk")
        S.Drift = DriftKind::Walk;
      else
        Ok = false;
    } else {
      return Error(formatString("gen spec: unknown key '%s'", Key.c_str()));
    }
    if (!Ok)
      return Error(formatString("gen spec: bad value '%s' for key '%s'",
                                Val.c_str(), Key.c_str()));
  }
  Error E = validateGenSpec(S);
  if (!E.message().empty())
    return E;
  return S;
}

std::string wl::renderGenSpec(const GenSpec &S) {
  return formatString(
      "seed=%llu,hot=%d,cold=%d,depth=%d,fanout=%d,loops=%d,inputs=%zu,"
      "runs=%zu,minwork=%lld,maxwork=%lld,coupling=%.6g,drift=%s,"
      "driftat=%.6g,scalea=%lld,scaleb=%lld",
      static_cast<unsigned long long>(S.Seed), S.HotMethods, S.ColdMethods,
      S.CallDepth, S.FanOut, S.LoopDepth, S.NumInputs, S.NumRuns,
      static_cast<long long>(S.MinWork), static_cast<long long>(S.MaxWork),
      S.Coupling, driftKindName(S.Drift), S.DriftAt,
      static_cast<long long>(S.ScaleA), static_cast<long long>(S.ScaleB));
}

//===----------------------------------------------------------------------===//
// Module construction
//===----------------------------------------------------------------------===//

namespace {

constexpr int64_t HotHeapSize = 16; ///< per-kernel scratch array

/// First input index of phase B under flip drift (NumInputs otherwise).
size_t phaseSplitOf(const GenSpec &S) {
  if (S.Drift != DriftKind::Flip)
    return S.NumInputs;
  size_t Split = static_cast<size_t>(
      static_cast<double>(S.NumInputs) * S.DriftAt + 0.5);
  return std::min(std::max<size_t>(Split, 1), S.NumInputs - 1);
}

/// Safe (never-trapping) binary ops over integer operands.
const Opcode SafeMixOps[] = {Opcode::Add, Opcode::Sub, Opcode::Xor,
                             Opcode::Add, Opcode::Mul, Opcode::Or,
                             Opcode::Min, Opcode::Max, Opcode::And};

/// Emits one hot kernel: a LoopDepth-deep loop nest whose total iteration
/// count is ~ work/4 .. work, with a per-seed arithmetic + heap-traffic mix.
/// Signature: hot(work) -> checksum.
void emitHotKernel(FunctionBuilder &F, Rng &R, const GenSpec &S) {
  const uint32_t Work = 0;
  uint32_t Acc = F.allocLocal();
  uint32_t Arr = F.allocLocal();
  uint32_t Outer = F.allocLocal();

  // Inner loops run a small constant bound each; the outer bound divides
  // the work factor so total iterations stay proportional to work.
  const int64_t InnerBound = 3;
  int64_t InnerTotal = 1;
  for (int L = 1; L < S.LoopDepth; ++L)
    InnerTotal *= InnerBound;
  int64_t Divisor = InnerTotal * R.nextInt(1, 4);

  F.constInt(HotHeapSize);
  F.emit(Opcode::NewArr);
  F.storeLocal(Arr);
  F.constInt(R.nextInt(1, 1 << 20));
  F.storeLocal(Acc);

  // outer = work / Divisor + 1
  F.loadLocal(Work);
  F.constInt(Divisor);
  F.emit(Opcode::Div);
  F.constInt(1);
  F.emit(Opcode::Add);
  F.storeLocal(Outer);

  // The nest: counters[0] runs to `outer`, the rest to InnerBound.
  std::vector<uint32_t> Counters;
  std::vector<FunctionBuilder::Label> Heads, Exits;
  for (int L = 0; L != S.LoopDepth; ++L) {
    uint32_t C = F.allocLocal();
    Counters.push_back(C);
    F.constInt(0);
    F.storeLocal(C);
    FunctionBuilder::Label Head = F.makeLabel();
    FunctionBuilder::Label Exit = F.makeLabel();
    Heads.push_back(Head);
    Exits.push_back(Exit);
    F.bind(Head);
    F.loadLocal(C);
    if (L == 0)
      F.loadLocal(Outer);
    else
      F.constInt(InnerBound);
    F.emit(Opcode::Lt);
    F.brFalse(Exit);
  }

  // Innermost body: a per-seed mix of safe integer arithmetic plus one heap
  // store and one heap load (addresses masked into the scratch array), all
  // feeding the accumulator so nothing is dead.
  int NumMixOps = static_cast<int>(R.nextInt(2, 4));
  for (int OpI = 0; OpI != NumMixOps; ++OpI) {
    F.loadLocal(Acc);
    if (R.nextBool(0.5))
      F.loadLocal(Counters[static_cast<size_t>(R.next() % Counters.size())]);
    else
      F.constInt(R.nextInt(1, 255));
    F.emit(SafeMixOps[R.next() %
                      (sizeof(SafeMixOps) / sizeof(SafeMixOps[0]))]);
    F.storeLocal(Acc);
  }
  // arr[acc & 15] = acc + innermost counter
  F.loadLocal(Acc);
  F.constInt(HotHeapSize - 1);
  F.emit(Opcode::And);
  F.loadLocal(Arr);
  F.emit(Opcode::Add);
  F.loadLocal(Acc);
  F.loadLocal(Counters.back());
  F.emit(Opcode::Add);
  F.emit(Opcode::HStore);
  // acc = acc ^ arr[(counter0 + k) & 15]
  F.loadLocal(Acc);
  F.loadLocal(Counters.front());
  F.constInt(R.nextInt(0, HotHeapSize - 1));
  F.emit(Opcode::Add);
  F.constInt(HotHeapSize - 1);
  F.emit(Opcode::And);
  F.loadLocal(Arr);
  F.emit(Opcode::Add);
  F.emit(Opcode::HLoad);
  F.emit(Opcode::Xor);
  F.storeLocal(Acc);

  for (int L = S.LoopDepth - 1; L >= 0; --L) {
    F.incrementLocal(Counters[static_cast<size_t>(L)], 1);
    F.br(Heads[static_cast<size_t>(L)]);
    F.bind(Exits[static_cast<size_t>(L)]);
  }

  F.loadLocal(Acc);
  F.loadLocal(Work);
  F.emit(Opcode::Add);
  F.ret();
}

/// Emits one cold method: a few random trap-free statements (the hoisted
/// RandomProgram machinery) plus a tiny fixed loop.  Signature:
/// cold(x) -> value; cost is constant and small regardless of input.
void emitColdMethod(FunctionBuilder &F, Rng &R) {
  rpdetail::StmtContext Ctx;
  Ctx.Readable.push_back(0); // the parameter
  for (int L = 0; L != 2; ++L) {
    uint32_t Slot = F.allocLocal();
    Ctx.Scratch.push_back(Slot);
    Ctx.Readable.push_back(Slot);
  }
  RandomProgramOptions O;
  O.AllowTraps = false;
  O.MaxStmtsPerBlock = 3;
  O.MaxBlockDepth = 1; // one level of ifs/small loops
  O.MaxExprDepth = 2;
  O.MaxLoopBound = 8;
  rpdetail::emitStmts(F, R, Ctx, O, /*Depth=*/0);
  rpdetail::emitExpr(F, R, Ctx.Readable, 2, O);
  F.ret();
}

} // namespace

ErrorOr<GeneratedWorkload> wl::generateWorkload(const GenSpec &Spec) {
  Error Invalid = validateGenSpec(Spec);
  if (!Invalid.message().empty())
    return Invalid;

  GeneratedWorkload G;
  G.Spec = Spec;
  G.PhaseSplit = phaseSplitOf(Spec);

  Rng Root(Spec.Seed ^ 0x6f70656e776c6400ULL); // "openwld"
  Rng RModule = Root.fork();
  Rng RInputs = Root.fork();

  const int NumTrunks = Spec.CallDepth - 1;
  const int NumLeaves = Spec.HotMethods + Spec.ColdMethods;

  ModuleBuilder MB;
  MethodId Main = MB.declareFunction("main", 3);
  std::vector<MethodId> Trunks;
  for (int T = 0; T != NumTrunks; ++T)
    Trunks.push_back(MB.declareFunction(formatString("trunk%d", T + 1), 1));
  for (int H = 0; H != Spec.HotMethods; ++H)
    G.HotMethods.push_back(MB.declareFunction(formatString("hot%d", H), 1));
  for (int C = 0; C != Spec.ColdMethods; ++C)
    G.ColdMethods.push_back(MB.declareFunction(formatString("cold%d", C), 1));

  // Leaf call sites: main and inner trunks get fanout-1 each, the last
  // trunk fanout; a global round-robin cursor reaches every leaf (the
  // validator guarantees capacity) while keeping per-caller callees
  // distinct (fanout <= hot+cold).
  size_t LeafCursor = 0;
  auto TakeLeaves = [&](int Count) {
    std::vector<MethodId> Out;
    for (int I = 0; I != Count; ++I) {
      size_t Leaf = LeafCursor++ % static_cast<size_t>(NumLeaves);
      Out.push_back(Leaf < static_cast<size_t>(Spec.HotMethods)
                        ? G.HotMethods[Leaf]
                        : G.ColdMethods[Leaf -
                                        static_cast<size_t>(
                                            Spec.HotMethods)]);
    }
    return Out;
  };

  /// Calls every leaf in \p Leaves from \p F, accumulating return values
  /// into \p Acc.  Hot leaves receive the work local; cold leaves a small
  /// constant.
  auto EmitLeafCalls = [&](FunctionBuilder &F, uint32_t WorkLocal,
                           uint32_t Acc, const std::vector<MethodId> &Leaves,
                           Rng &R) {
    for (MethodId Leaf : Leaves) {
      bool IsHot = std::find(G.HotMethods.begin(), G.HotMethods.end(),
                             Leaf) != G.HotMethods.end();
      F.loadLocal(Acc);
      if (IsHot)
        F.loadLocal(WorkLocal);
      else
        F.constInt(R.nextInt(1, 16));
      F.call(Leaf);
      F.emit(Opcode::Add);
      F.storeLocal(Acc);
    }
  };

  // main(size, scale, jitter): work = max(1, size*scale + jitter), then the
  // spine call plus main's own leaf slots.
  {
    FunctionBuilder &F = MB.functionBuilder(Main);
    uint32_t Size = 0, Scale = 1, Jitter = 2;
    uint32_t WorkL = F.allocLocal();
    uint32_t Acc = F.allocLocal();
    F.loadLocal(Size);
    F.loadLocal(Scale);
    F.emit(Opcode::Mul);
    F.loadLocal(Jitter);
    F.emit(Opcode::Add);
    F.constInt(1);
    F.emit(Opcode::Max);
    F.storeLocal(WorkL);
    F.constInt(0);
    F.storeLocal(Acc);
    F.loadLocal(Acc);
    F.loadLocal(WorkL);
    F.call(Trunks.front());
    F.emit(Opcode::Add);
    F.storeLocal(Acc);
    EmitLeafCalls(F, WorkL, Acc, TakeLeaves(Spec.FanOut - 1), RModule);
    F.loadLocal(Acc);
    F.ret();
  }

  // trunk_i(work): spine child (except the last) plus leaf slots.
  for (int T = 0; T != NumTrunks; ++T) {
    FunctionBuilder &F = MB.functionBuilder(Trunks[static_cast<size_t>(T)]);
    uint32_t WorkL = 0;
    uint32_t Acc = F.allocLocal();
    bool Last = T + 1 == NumTrunks;
    F.constInt(RModule.nextInt(0, 63));
    F.storeLocal(Acc);
    if (!Last) {
      F.loadLocal(Acc);
      F.loadLocal(WorkL);
      F.call(Trunks[static_cast<size_t>(T) + 1]);
      F.emit(Opcode::Add);
      F.storeLocal(Acc);
    }
    EmitLeafCalls(F, WorkL, Acc,
                  TakeLeaves(Last ? Spec.FanOut : Spec.FanOut - 1), RModule);
    F.loadLocal(Acc);
    F.ret();
  }

  for (MethodId Hot : G.HotMethods)
    emitHotKernel(MB.functionBuilder(Hot), RModule, Spec);
  for (MethodId Cold : G.ColdMethods)
    emitColdMethod(MB.functionBuilder(Cold), RModule);

  auto M = MB.build(); // runs bytecode/Verifier over every function
  if (!M)
    return M.getError();
  G.W.Module = M.takeValue();

  G.W.Name = formatString("gen-%016llx",
                          static_cast<unsigned long long>(Spec.Seed));
  G.W.Suite = "generated";
  G.W.XiclSpec =
      "option {name=-n; type=num; attr=val; default=1; has_arg=y}\n"
      "option {name=-s; type=num; attr=val; default=1; has_arg=y}\n";

  // Input set.  -n (size) and -s (scale) are command-line-visible features;
  // jitter is the hidden component scaled by 1-coupling.
  struct PendingInput {
    int64_t SizeV, ScaleV, JitterV;
  };
  std::vector<PendingInput> Pending;
  for (size_t I = 0; I != Spec.NumInputs; ++I) {
    PendingInput P;
    P.SizeV = detail::logUniform(RInputs, Spec.MinWork, Spec.MaxWork);
    P.ScaleV = I < G.PhaseSplit ? Spec.ScaleA : Spec.ScaleB;
    int64_t HiddenSpan = static_cast<int64_t>(
        (1.0 - Spec.Coupling) *
        static_cast<double>(P.SizeV * P.ScaleV) / 2.0);
    P.JitterV = HiddenSpan > 0 ? RInputs.nextInt(-HiddenSpan, HiddenSpan) : 0;
    Pending.push_back(P);
  }
  if (Spec.Drift == DriftKind::Walk)
    std::sort(Pending.begin(), Pending.end(),
              [](const PendingInput &A, const PendingInput &B) {
                return A.SizeV < B.SizeV;
              });
  for (const PendingInput &P : Pending) {
    InputCase C;
    C.CommandLine = formatString("gen -n %lld -s %lld",
                                 static_cast<long long>(P.SizeV),
                                 static_cast<long long>(P.ScaleV));
    C.VmArgs = {Value::makeInt(P.SizeV), Value::makeInt(P.ScaleV),
                Value::makeInt(P.JitterV)};
    G.W.Inputs.push_back(std::move(C));
  }
  return G;
}

std::vector<size_t> wl::makeGenRunOrder(const GenSpec &Spec, size_t NumRuns) {
  if (NumRuns == 0)
    NumRuns = Spec.NumRuns;
  const size_t N = Spec.NumInputs;
  const size_t Split = phaseSplitOf(Spec);
  Rng R(Spec.Seed * 0x9e3779b97f4a7c15ULL ^ 0x4f524452ULL); // "ORDR"

  std::vector<size_t> Order;
  Order.reserve(NumRuns);
  switch (Spec.Drift) {
  case DriftKind::None:
    for (size_t I = 0; I != NumRuns; ++I)
      Order.push_back(static_cast<size_t>(R.next() % N));
    break;
  case DriftKind::Flip: {
    size_t SplitRun = static_cast<size_t>(
        static_cast<double>(NumRuns) * Spec.DriftAt + 0.5);
    SplitRun = std::min(std::max<size_t>(SplitRun, 1), NumRuns - 1);
    for (size_t I = 0; I != NumRuns; ++I) {
      if (I < SplitRun)
        Order.push_back(static_cast<size_t>(R.next() % Split));
      else
        Order.push_back(Split + static_cast<size_t>(R.next() % (N - Split)));
    }
    break;
  }
  case DriftKind::Walk: {
    // Inputs are size-sorted under walk drift, so a sliding index window is
    // a sliding work-size window.
    size_t Width = std::max<size_t>(2, N / 4);
    for (size_t I = 0; I != NumRuns; ++I) {
      double Frac = NumRuns > 1
                        ? static_cast<double>(I) /
                              static_cast<double>(NumRuns - 1)
                        : 0.0;
      size_t Lo = static_cast<size_t>(
          Frac * static_cast<double>(N - Width) + 0.5);
      Order.push_back(Lo + static_cast<size_t>(R.next() % Width));
    }
    break;
  }
  }
  return Order;
}

std::string wl::workloadFingerprint(const GeneratedWorkload &G,
                                    const std::vector<size_t> &Order) {
  std::string Out = "spec: " + renderGenSpec(G.Spec) + "\n";
  Out += "name: " + G.W.Name + "\n";
  Out += "xicl:\n" + G.W.XiclSpec;
  Out += bc::disassembleModule(G.W.Module);
  for (const InputCase &C : G.W.Inputs) {
    Out += "input: " + C.CommandLine + " |";
    for (const Value &V : C.VmArgs)
      Out += " " + V.str();
    Out += "\n";
  }
  Out += "order:";
  for (size_t I : Order)
    Out += formatString(" %zu", I);
  Out += "\n";
  return Out;
}

CallGraphStats wl::analyzeCallGraph(const bc::Module &M) {
  CallGraphStats Stats;
  std::optional<MethodId> Main = M.findFunction("main");
  if (!Main)
    return Stats;

  const uint32_t N = M.numFunctions();
  std::vector<std::vector<MethodId>> Callees(N);
  for (uint32_t F = 0; F != N; ++F) {
    for (const bc::Instr &I : M.function(F).Code) {
      if (I.Op != Opcode::Call)
        continue;
      MethodId Callee = static_cast<MethodId>(I.Operand);
      if (Callee >= N)
        continue; // verifier rejects these; be defensive anyway
      auto &List = Callees[F];
      if (std::find(List.begin(), List.end(), Callee) == List.end())
        List.push_back(Callee);
    }
  }

  // Longest acyclic chain from main via iterative DFS with memoization;
  // back edges (recursion) do not extend the depth.
  std::vector<int> Depth(N, -1);   // -1 = unvisited
  std::vector<char> OnStack(N, 0);
  struct Frame {
    MethodId F;
    size_t NextCallee = 0;
  };
  std::vector<Frame> Stack{{*Main}};
  OnStack[*Main] = 1;
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.NextCallee == 0 && Depth[Top.F] < 0)
      Depth[Top.F] = 0;
    if (Top.NextCallee < Callees[Top.F].size()) {
      MethodId Next = Callees[Top.F][Top.NextCallee++];
      if (OnStack[Next])
        continue; // cycle: skip
      if (Depth[Next] >= 0) {
        Depth[Top.F] = std::max(Depth[Top.F], Depth[Next] + 1);
        continue;
      }
      OnStack[Next] = 1;
      Stack.push_back({Next});
      continue;
    }
    OnStack[Top.F] = 0;
    MethodId Done = Top.F;
    Stack.pop_back();
    if (!Stack.empty())
      Depth[Stack.back().F] =
          std::max(Depth[Stack.back().F], Depth[Done] + 1);
  }

  for (uint32_t F = 0; F != N; ++F) {
    if (Depth[F] < 0)
      continue; // unreachable from main
    ++Stats.ReachableMethods;
    Stats.MaxFanOut =
        std::max(Stats.MaxFanOut, static_cast<int>(Callees[F].size()));
  }
  Stats.Depth = Depth[*Main];
  return Stats;
}
