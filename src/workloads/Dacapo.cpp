//===- workloads/Dacapo.cpp - Antlr, Bloat, Fop analogues -----------------==//
//
// DaCapo analogues (paper Table I rows 4-6).  Antlr's rule count and
// Bloat's LOC are programmer-defined features extracted from input-file
// metadata; Fop's line count comes from the predefined flines attribute.
// Output-format and operation-type options select between alternative
// code-generation/optimization kernels, so the hot-method set is input-
// dependent (the property Rep's input-oblivious strategy cannot track).
//
//===----------------------------------------------------------------------===//

#include "workloads/Kernels.h"
#include "workloads/Workload.h"
#include "workloads/WorkloadDetail.h"

#include "support/Format.h"

using namespace evm;
using namespace evm::wl;
using namespace evm::wl::detail;
using bc::FunctionBuilder;
using bc::MethodId;
using bc::ModuleBuilder;
using bc::Opcode;
using bc::Value;

namespace {

/// Emits a generic "token-crunching" method: func(x, n) running an n-bounded
/// loop of integer mixing whose flavor differs per (MulWeight, DivWeight).
/// Shared by several DaCapo kernels to model parser/codegen inner loops.
void defineCrunchMethod(ModuleBuilder &MB, MethodId Id, int64_t MulWeight,
                        int64_t DivWeight) {
  FunctionBuilder &B = MB.functionBuilder(Id);
  uint32_t X = 0, N = 1;
  uint32_t J = B.allocLocal(), Acc = B.allocLocal();
  B.loadLocal(X);
  B.storeLocal(Acc);
  emitForUp(B, J, 0, N, 1, [&] {
    // acc = ((acc * (MulWeight + (j & 3))) ^ (j << 1)) stays integral.
    B.loadLocal(Acc);
    B.loadLocal(J);
    B.constInt(3);
    B.emit(Opcode::And);
    B.constInt(MulWeight);
    B.emit(Opcode::Add);
    B.emit(Opcode::Mul);
    B.loadLocal(J);
    B.constInt(1);
    B.emit(Opcode::Shl);
    B.emit(Opcode::Xor);
    B.storeLocal(Acc);
    if (DivWeight > 0) {
      // acc = acc / DivWeight + j  (division-heavy flavor)
      B.loadLocal(Acc);
      B.constInt(DivWeight);
      B.emit(Opcode::Div);
      B.loadLocal(J);
      B.emit(Opcode::Add);
      B.storeLocal(Acc);
    }
    // acc &= 0xffffffff
    B.loadLocal(Acc);
    B.constInt(0xffffffffLL);
    B.emit(Opcode::And);
    B.storeLocal(Acc);
  });
  B.loadLocal(Acc);
  B.ret();
}

/// Emits a float "layout/render" method: func(x, n) with trig/sqrt per
/// iteration (LICM-friendly invariant factors included).
void defineRenderMethod(ModuleBuilder &MB, MethodId Id, double Scale) {
  FunctionBuilder &B = MB.functionBuilder(Id);
  uint32_t X = 0, N = 1;
  uint32_t J = B.allocLocal(), Acc = B.allocLocal(), K = B.allocLocal();
  // k = sin(x * Scale) — invariant w.r.t. the loop below once computed.
  B.loadLocal(X);
  B.constFloat(Scale);
  B.emit(Opcode::Mul);
  B.emit(Opcode::Sin);
  B.storeLocal(K);
  B.constInt(0);
  B.storeLocal(Acc);
  emitForUp(B, J, 0, N, 1, [&] {
    // acc = acc + sqrt(j + 1) * k + cos(j * Scale)
    B.loadLocal(Acc);
    B.loadLocal(J);
    B.constInt(1);
    B.emit(Opcode::Add);
    B.emit(Opcode::Sqrt);
    B.loadLocal(K);
    B.emit(Opcode::Mul);
    B.emit(Opcode::Add);
    B.loadLocal(J);
    B.constFloat(Scale);
    B.emit(Opcode::Mul);
    B.emit(Opcode::Cos);
    B.emit(Opcode::Add);
    B.storeLocal(Acc);
  });
  B.loadLocal(Acc);
  B.emit(Opcode::F2I);
  B.ret();
}

/// Emits `Acc += callee(ArgLocal, BoundLocal)` (both args are locals).
void emitAccumulateCall(FunctionBuilder &B, uint32_t Acc, MethodId Callee,
                        uint32_t Arg, uint32_t Bound) {
  B.loadLocal(Acc);
  B.loadLocal(Arg);
  B.loadLocal(Bound);
  B.call(Callee);
  B.emit(Opcode::Add);
  B.storeLocal(Acc);
}

//===----------------------------------------------------------------------===//
// Antlr: grammar processing.  main(rules, fmt, lang).
//===----------------------------------------------------------------------===//

bc::Module buildAntlrModule() {
  ModuleBuilder MB;
  MethodId Main = MB.declareFunction("main", 3);
  MethodId HandleRule = MB.declareFunction("handleRule", 3);
  MethodId ParseRule = MB.declareFunction("parseRule", 2);
  MethodId BuildNfa = MB.declareFunction("buildNfa", 2);
  MethodId LexRule = MB.declareFunction("lexRule", 2);
  MethodId GenJava = MB.declareFunction("genJava", 2);
  MethodId GenCpp = MB.declareFunction("genCpp", 2);
  MethodId OptimizeTables = MB.declareFunction("optimizeTables", 2);

  defineCrunchMethod(MB, ParseRule, 5, 0);
  defineCrunchMethod(MB, BuildNfa, 7, 3);
  defineCrunchMethod(MB, LexRule, 3, 0);
  defineCrunchMethod(MB, GenJava, 11, 0);
  defineCrunchMethod(MB, GenCpp, 13, 5);
  defineRenderMethod(MB, OptimizeTables, 0.07);

  // handleRule(r, fmt, lang): parse + analyze + generate for one rule.
  {
    FunctionBuilder &B = MB.functionBuilder(HandleRule);
    uint32_t R = 0, Fmt = 1, Lang = 2;
    uint32_t Acc = B.allocLocal(), W = B.allocLocal();
    B.constInt(0);
    B.storeLocal(Acc);
    B.constInt(40);
    B.storeLocal(W);
    emitAccumulateCall(B, Acc, ParseRule, R, W);
    emitAccumulateCall(B, Acc, BuildNfa, R, W);
    emitIfElse(B, [&] { B.loadLocal(Lang); },
               [&] { emitAccumulateCall(B, Acc, LexRule, R, W); });
    emitIfElse(
        B, [&] { B.loadLocal(Fmt); },
        [&] { emitAccumulateCall(B, Acc, GenCpp, R, W); },
        [&] { emitAccumulateCall(B, Acc, GenJava, R, W); });
    B.loadLocal(Acc);
    B.ret();
  }

  // main(rules, fmt, lang).
  {
    FunctionBuilder &B = MB.functionBuilder(Main);
    uint32_t Rules = 0, Fmt = 1, Lang = 2;
    uint32_t R = B.allocLocal(), Acc = B.allocLocal(),
             OptW = B.allocLocal();
    B.constInt(0);
    B.storeLocal(Acc);
    B.constInt(160);
    B.storeLocal(OptW);
    emitForUp(B, R, 0, Rules, 1, [&] {
      B.loadLocal(Acc);
      B.loadLocal(R);
      B.loadLocal(Fmt);
      B.loadLocal(Lang);
      B.call(HandleRule);
      B.emit(Opcode::Add);
      B.storeLocal(Acc);
      // Every 16th rule triggers a table-optimization pass.
      emitIfElse(
          B,
          [&] {
            B.loadLocal(R);
            B.constInt(15);
            B.emit(Opcode::And);
            B.constInt(0);
            B.emit(Opcode::Eq);
          },
          [&] { emitAccumulateCall(B, Acc, OptimizeTables, R, OptW); });
    });
    B.loadLocal(Acc);
    B.ret();
  }
  return finishModule(MB);
}

//===----------------------------------------------------------------------===//
// Bloat: bytecode-optimizer analogue.  main(loc, op).
//===----------------------------------------------------------------------===//

bc::Module buildBloatModule() {
  ModuleBuilder MB;
  MethodId Main = MB.declareFunction("main", 2);
  MethodId HandleChunk = MB.declareFunction("handleChunk", 2);
  MethodId ParseClass = MB.declareFunction("parseClass", 2);
  MethodId OptimizeMethod = MB.declareFunction("optimizeMethod", 2);
  MethodId InlineExpand = MB.declareFunction("inlineExpand", 2);
  MethodId PrintOnly = MB.declareFunction("printOnly", 2);

  defineCrunchMethod(MB, ParseClass, 5, 0);
  defineCrunchMethod(MB, OptimizeMethod, 9, 7);
  defineRenderMethod(MB, InlineExpand, 0.031);
  defineCrunchMethod(MB, PrintOnly, 3, 0);

  // handleChunk(i, op): parse one 50-line "method", then run the selected
  // operation over it.
  {
    FunctionBuilder &B = MB.functionBuilder(HandleChunk);
    uint32_t I = 0, Op = 1;
    uint32_t Acc = B.allocLocal(), W = B.allocLocal(), W2 = B.allocLocal(),
             WSmall = B.allocLocal();
    B.constInt(0);
    B.storeLocal(Acc);
    B.constInt(60);
    B.storeLocal(W);
    B.constInt(140);
    B.storeLocal(W2);
    B.constInt(25);
    B.storeLocal(WSmall);
    emitAccumulateCall(B, Acc, ParseClass, I, W);
    emitIfElse(
        B,
        [&] {
          B.loadLocal(Op);
          B.constInt(0);
          B.emit(Opcode::Eq);
        },
        [&] { emitAccumulateCall(B, Acc, OptimizeMethod, I, W2); },
        [&] {
          emitIfElse(
              B,
              [&] {
                B.loadLocal(Op);
                B.constInt(1);
                B.emit(Opcode::Eq);
              },
              [&] { emitAccumulateCall(B, Acc, InlineExpand, I, W2); },
              [&] { emitAccumulateCall(B, Acc, PrintOnly, I, WSmall); });
        });
    B.loadLocal(Acc);
    B.ret();
  }

  // main(loc, op).
  {
    FunctionBuilder &B = MB.functionBuilder(Main);
    uint32_t Loc = 0, Op = 1;
    uint32_t I = B.allocLocal(), Acc = B.allocLocal(),
             Chunks = B.allocLocal();
    // chunks = loc / 50 (one "method" per 50 lines)
    B.loadLocal(Loc);
    B.constInt(50);
    B.emit(Opcode::Div);
    B.constInt(1);
    B.emit(Opcode::Max);
    B.storeLocal(Chunks);
    B.constInt(0);
    B.storeLocal(Acc);
    emitForUp(B, I, 0, Chunks, 1, [&] {
      B.loadLocal(Acc);
      B.loadLocal(I);
      B.loadLocal(Op);
      B.call(HandleChunk);
      B.emit(Opcode::Add);
      B.storeLocal(Acc);
    });
    B.loadLocal(Acc);
    B.ret();
  }
  return finishModule(MB);
}

//===----------------------------------------------------------------------===//
// Fop: document formatter.  main(lines, fmt).
//===----------------------------------------------------------------------===//

bc::Module buildFopModule() {
  ModuleBuilder MB;
  MethodId Main = MB.declareFunction("main", 2);
  MethodId HandlePage = MB.declareFunction("handlePage", 2);
  MethodId ParseDoc = MB.declareFunction("parseDoc", 2);
  MethodId LayoutPage = MB.declareFunction("layoutPage", 2);
  MethodId RenderPdf = MB.declareFunction("renderPdf", 2);
  MethodId RenderText = MB.declareFunction("renderText", 2);

  defineCrunchMethod(MB, ParseDoc, 5, 0);
  defineRenderMethod(MB, LayoutPage, 0.011);
  defineRenderMethod(MB, RenderPdf, 0.023);
  defineCrunchMethod(MB, RenderText, 3, 0);

  // handlePage(p, fmt): parse, lay out, render one page.
  {
    FunctionBuilder &B = MB.functionBuilder(HandlePage);
    uint32_t P = 0, Fmt = 1;
    uint32_t Acc = B.allocLocal(), W = B.allocLocal(),
             WHeavy = B.allocLocal();
    B.constInt(0);
    B.storeLocal(Acc);
    B.constInt(50);
    B.storeLocal(W);
    B.constInt(110);
    B.storeLocal(WHeavy);
    emitAccumulateCall(B, Acc, ParseDoc, P, W);
    emitAccumulateCall(B, Acc, LayoutPage, P, W);
    emitIfElse(
        B, [&] { B.loadLocal(Fmt); },
        [&] { emitAccumulateCall(B, Acc, RenderText, P, W); },
        [&] { emitAccumulateCall(B, Acc, RenderPdf, P, WHeavy); });
    B.loadLocal(Acc);
    B.ret();
  }

  // main(lines, fmt).
  {
    FunctionBuilder &B = MB.functionBuilder(Main);
    uint32_t Lines = 0, Fmt = 1;
    uint32_t P = B.allocLocal(), Acc = B.allocLocal(),
             Pages = B.allocLocal();
    // pages = lines / 40
    B.loadLocal(Lines);
    B.constInt(40);
    B.emit(Opcode::Div);
    B.constInt(1);
    B.emit(Opcode::Max);
    B.storeLocal(Pages);
    B.constInt(0);
    B.storeLocal(Acc);
    emitForUp(B, P, 0, Pages, 1, [&] {
      B.loadLocal(Acc);
      B.loadLocal(P);
      B.loadLocal(Fmt);
      B.call(HandlePage);
      B.emit(Opcode::Add);
      B.storeLocal(Acc);
    });
    B.loadLocal(Acc);
    B.ret();
  }
  return finishModule(MB);
}

} // namespace

Workload detail::buildAntlr(uint64_t Seed) {
  Workload W;
  W.Name = "Antlr";
  W.Suite = "dacapo";
  W.Module = buildAntlrModule();
  W.UserMethodAttrs = {"mrules"};
  W.XiclSpec =
      "option  {name=-o; type=str; attr=val; default=java; has_arg=y}\n"
      "option  {name=-glib; type=bin; attr=val; default=0; has_arg=n}\n"
      "operand {position=1; type=file; attr=mrules}\n";

  Rng R(Seed ^ 0xA7140004);
  for (int I = 0; I != 22; ++I) {
    InputCase C;
    int64_t Rules = logUniform(R, 60, 900);
    bool Cpp = R.nextBool(0.4);
    bool Lex = R.nextBool(0.5);
    std::string File = formatString("grammar%02d.g", I);
    C.CommandLine =
        formatString("antlr -o %s%s %s", Cpp ? "cpp" : "java",
                     Lex ? " -glib" : "", File.c_str());
    C.VmArgs = {Value::makeInt(Rules), Value::makeInt(Cpp ? 1 : 0),
                Value::makeInt(Lex ? 1 : 0)};
    xicl::FileInfo Info;
    Info.SizeBytes = static_cast<double>(Rules * 120);
    Info.Lines = static_cast<double>(Rules * 6);
    Info.Attributes["rules"] = static_cast<double>(Rules);
    C.Files.emplace_back(File, Info);
    W.Inputs.push_back(std::move(C));
  }
  return W;
}

Workload detail::buildBloat(uint64_t Seed) {
  Workload W;
  W.Name = "Bloat";
  W.Suite = "dacapo";
  W.Module = buildBloatModule();
  W.UserMethodAttrs = {"mloc"};
  W.XiclSpec =
      "option  {name=-op; type=str; attr=val; default=opt; has_arg=y}\n"
      "operand {position=1; type=file; attr=mloc}\n";

  Rng R(Seed ^ 0xB10A7005);
  const char *Ops[] = {"opt", "inline", "print"};
  for (int I = 0; I != 28; ++I) {
    InputCase C;
    int64_t Loc = logUniform(R, 800, 30000);
    int Op = static_cast<int>(R.nextInt(0, 2));
    std::string File = formatString("Class%02d.class", I);
    C.CommandLine =
        formatString("bloat -op %s %s", Ops[Op], File.c_str());
    C.VmArgs = {Value::makeInt(Loc), Value::makeInt(Op)};
    xicl::FileInfo Info;
    Info.SizeBytes = static_cast<double>(Loc * 30);
    Info.Lines = static_cast<double>(Loc);
    Info.Attributes["loc"] = static_cast<double>(Loc);
    C.Files.emplace_back(File, Info);
    W.Inputs.push_back(std::move(C));
  }
  return W;
}

Workload detail::buildFop(uint64_t Seed) {
  Workload W;
  W.Name = "Fop";
  W.Suite = "dacapo";
  W.Module = buildFopModule();
  W.XiclSpec =
      "option  {name=-fmt; type=str; attr=val; default=pdf; has_arg=y}\n"
      "operand {position=1; type=file; attr=flines}\n";

  Rng R(Seed ^ 0xF0900006);
  for (int I = 0; I != 33; ++I) {
    InputCase C;
    int64_t Lines = logUniform(R, 300, 12000);
    bool Text = R.nextBool(0.35);
    std::string File = formatString("doc%02d.fo", I);
    C.CommandLine = formatString("fop -fmt %s %s", Text ? "txt" : "pdf",
                                 File.c_str());
    C.VmArgs = {Value::makeInt(Lines), Value::makeInt(Text ? 1 : 0)};
    xicl::FileInfo Info;
    Info.SizeBytes = static_cast<double>(Lines * 55);
    Info.Lines = static_cast<double>(Lines);
    C.Files.emplace_back(File, Info);
    W.Inputs.push_back(std::move(C));
  }
  return W;
}
