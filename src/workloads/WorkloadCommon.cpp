//===- workloads/WorkloadCommon.cpp - Registry and shared plumbing --------==//

#include "workloads/Workload.h"
#include "workloads/WorkloadDetail.h"

#include <cassert>
#include <cmath>
#include <map>

using namespace evm;
using namespace evm::wl;

namespace {

/// Programmer-defined extractor name -> FileInfo attribute it reads.  These
/// are the paper's four user-defined features (Db's database/query sizes,
/// Antlr's rule count, Bloat's LOC) plus the route example's graph
/// features.
const std::map<std::string, std::string> &userAttrTable() {
  static const std::map<std::string, std::string> Table = {
      {"mdbsize", "records"}, {"mqueries", "queries"}, {"mrules", "rules"},
      {"mloc", "loc"},        {"mnodes", "nodes"},     {"medges", "edges"},
  };
  return Table;
}

} // namespace

void Workload::registerMethods(xicl::XFMethodRegistry &Registry) const {
  for (const std::string &Attr : UserMethodAttrs) {
    auto It = userAttrTable().find(Attr);
    assert(It != userAttrTable().end() && "unknown user method attr");
    const std::string FileAttr = It->second;
    const std::string AttrName = Attr;
    Registry.registerMethod(
        AttrName, [FileAttr, AttrName](const std::string &Raw,
                                       const xicl::ExtractionContext &Ctx) {
          std::vector<xicl::Feature> Out;
          double Value = 0;
          if (Ctx.Files) {
            if (auto Info = Ctx.Files->lookup(Raw)) {
              auto AIt = Info->Attributes.find(FileAttr);
              if (AIt != Info->Attributes.end())
                Value = AIt->second;
            }
          }
          Out.push_back(xicl::Feature::numeric(
              Ctx.FeatureNamePrefix + "." + AttrName, Value));
          return Out;
        });
  }
}

void Workload::populateFileStore(xicl::FileStore &Store) const {
  for (const InputCase &Input : Inputs)
    for (const auto &[Name, Info] : Input.Files)
      Store.registerFile(Name, Info);
}

const std::vector<std::string> &wl::workloadNames() {
  static const std::vector<std::string> Names = {
      "Compress", "Db",     "Mtrt",       "Antlr",  "Bloat",     "Fop",
      "Euler",    "MolDyn", "MonteCarlo", "Search", "RayTracer",
  };
  return Names;
}

Workload wl::buildWorkload(const std::string &Name, uint64_t Seed) {
  if (Name == "Compress")
    return detail::buildCompress(Seed);
  if (Name == "Db")
    return detail::buildDb(Seed);
  if (Name == "Mtrt")
    return detail::buildMtrt(Seed);
  if (Name == "Antlr")
    return detail::buildAntlr(Seed);
  if (Name == "Bloat")
    return detail::buildBloat(Seed);
  if (Name == "Fop")
    return detail::buildFop(Seed);
  if (Name == "Euler")
    return detail::buildEuler(Seed);
  if (Name == "MolDyn")
    return detail::buildMolDyn(Seed);
  if (Name == "MonteCarlo")
    return detail::buildMonteCarlo(Seed);
  if (Name == "Search")
    return detail::buildSearch(Seed);
  if (Name == "RayTracer")
    return detail::buildRayTracer(Seed);
  assert(false && "unknown workload name");
  return Workload();
}

std::vector<Workload> wl::buildAllWorkloads(uint64_t Seed) {
  std::vector<Workload> All;
  for (const std::string &Name : workloadNames())
    All.push_back(buildWorkload(Name, Seed));
  return All;
}

int64_t wl::detail::logUniform(Rng &R, int64_t Low, int64_t High) {
  assert(Low > 0 && Low <= High && "bad log-uniform range");
  double LogLow = std::log(static_cast<double>(Low));
  double LogHigh = std::log(static_cast<double>(High));
  double Drawn = std::exp(R.nextDouble(LogLow, LogHigh));
  int64_t V = static_cast<int64_t>(Drawn);
  return std::max(Low, std::min(High, V));
}

bc::Module wl::detail::finishModule(bc::ModuleBuilder &MB) {
  auto M = MB.build();
  assert(M && "workload module failed verification");
  if (!M) {
    // Release-build fallback: return an empty module (callers assert too).
    return bc::Module();
  }
  return M.takeValue();
}
