//===- workloads/Kernels.cpp ----------------------------------------------==//

#include "workloads/Kernels.h"

using namespace evm;
using namespace evm::wl;
using bc::FunctionBuilder;
using bc::ModuleBuilder;
using bc::Opcode;

void wl::emitForUp(FunctionBuilder &B, uint32_t Var, int64_t Start,
                   uint32_t Limit, int64_t Step, const EmitFn &Body) {
  B.constInt(Start);
  B.storeLocal(Var);
  FunctionBuilder::Label Head = B.makeLabel();
  FunctionBuilder::Label Exit = B.makeLabel();
  B.bind(Head);
  B.loadLocal(Var);
  B.loadLocal(Limit);
  B.emit(Opcode::Lt);
  B.brFalse(Exit);
  Body();
  B.incrementLocal(Var, Step);
  B.br(Head);
  B.bind(Exit);
}

void wl::emitWhile(FunctionBuilder &B, const EmitFn &Cond,
                   const EmitFn &Body) {
  FunctionBuilder::Label Head = B.makeLabel();
  FunctionBuilder::Label Exit = B.makeLabel();
  B.bind(Head);
  Cond();
  B.brFalse(Exit);
  Body();
  B.br(Head);
  B.bind(Exit);
}

void wl::emitIfElse(FunctionBuilder &B, const EmitFn &Cond, const EmitFn &Then,
                    const EmitFn &Else) {
  FunctionBuilder::Label ElseLabel = B.makeLabel();
  FunctionBuilder::Label Done = B.makeLabel();
  Cond();
  B.brFalse(ElseLabel);
  Then();
  B.br(Done);
  B.bind(ElseLabel);
  if (Else)
    Else();
  B.bind(Done);
}

bc::MethodId wl::addLcgFunction(ModuleBuilder &MB) {
  bc::MethodId Id = MB.declareFunction("lcg", 1);
  FunctionBuilder &B = MB.functionBuilder(Id);
  // state' = state * 6364136223846793005 + 1442695040888963407 (wrapping).
  B.loadLocal(0);
  B.constInt(6364136223846793005LL);
  B.emit(Opcode::Mul);
  B.constInt(1442695040888963407LL);
  B.emit(Opcode::Add);
  B.ret();
  return Id;
}

void wl::emitLcgDraw(FunctionBuilder &B, bc::MethodId Lcg, uint32_t StateVar,
                     int64_t Range) {
  B.loadLocal(StateVar);
  B.call(Lcg);
  B.storeLocal(StateVar);
  B.loadLocal(StateVar);
  B.emit(Opcode::Abs);
  B.constInt(Range);
  B.emit(Opcode::Mod);
}
