//===- workloads/Grande.cpp - Euler, MolDyn, MonteCarlo, Search, RayTracer =//
//
// Java Grande analogues (paper Table I rows 7-11).  Single-value inputs
// (mesh size, particle count, path count, string length, scene size) drive
// run length; the float-heavy kernels exercise the O2 pipeline's LICM and
// the math-op cost model.
//
//===----------------------------------------------------------------------===//

#include "workloads/Kernels.h"
#include "workloads/Workload.h"
#include "workloads/WorkloadDetail.h"

#include "support/Format.h"

using namespace evm;
using namespace evm::wl;
using namespace evm::wl::detail;
using bc::FunctionBuilder;
using bc::MethodId;
using bc::ModuleBuilder;
using bc::Opcode;
using bc::Value;

namespace {

//===----------------------------------------------------------------------===//
// Euler: structured-grid CFD sweep.  main(n).
//===----------------------------------------------------------------------===//

bc::Module buildEulerModule() {
  ModuleBuilder MB;
  MethodId Main = MB.declareFunction("main", 1);
  MethodId InitGrid = MB.declareFunction("initGrid", 2);
  MethodId ComputeFlux = MB.declareFunction("computeFlux", 3);
  MethodId UpdateCells = MB.declareFunction("updateCells", 2);
  MethodId ApplyBoundary = MB.declareFunction("applyBoundary", 2);

  // initGrid(grid, cells): fill with a smooth field.
  {
    FunctionBuilder &B = MB.functionBuilder(InitGrid);
    uint32_t Grid = 0, Cells = 1;
    uint32_t I = B.allocLocal();
    emitForUp(B, I, 0, Cells, 1, [&] {
      B.loadLocal(Grid);
      B.loadLocal(I);
      B.emit(Opcode::Add);
      B.loadLocal(I);
      B.constFloat(0.01);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Sin);
      B.constFloat(2.0);
      B.emit(Opcode::Add);
      B.emit(Opcode::HStore);
    });
    B.loadLocal(Cells);
    B.ret();
  }

  // computeFlux(grid, cells, t): per-cell stencil with sqrt; the factor
  // sin(t * 0.1) is loop-invariant (an LICM target at O2).
  {
    FunctionBuilder &B = MB.functionBuilder(ComputeFlux);
    uint32_t Grid = 0, Cells = 1, T = 2;
    uint32_t I = B.allocLocal(), Acc = B.allocLocal(), Lim = B.allocLocal(),
             V = B.allocLocal();
    B.loadLocal(Cells);
    B.constInt(1);
    B.emit(Opcode::Sub);
    B.storeLocal(Lim);
    B.constInt(0);
    B.storeLocal(Acc);
    emitForUp(B, I, 1, Lim, 1, [&] {
      // v = (grid[i-1] + grid[i] + grid[i+1]) * sin(t * 0.1)
      B.loadLocal(Grid);
      B.loadLocal(I);
      B.emit(Opcode::Add);
      B.constInt(1);
      B.emit(Opcode::Sub);
      B.emit(Opcode::HLoad);
      B.loadLocal(Grid);
      B.loadLocal(I);
      B.emit(Opcode::Add);
      B.emit(Opcode::HLoad);
      B.emit(Opcode::Add);
      B.loadLocal(Grid);
      B.loadLocal(I);
      B.emit(Opcode::Add);
      B.constInt(1);
      B.emit(Opcode::Add);
      B.emit(Opcode::HLoad);
      B.emit(Opcode::Add);
      B.loadLocal(T);
      B.constFloat(0.1);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Sin);
      B.emit(Opcode::Mul);
      B.storeLocal(V);
      // grid[i] = v * 0.33; acc += sqrt(abs(v) + 1)
      B.loadLocal(Grid);
      B.loadLocal(I);
      B.emit(Opcode::Add);
      B.loadLocal(V);
      B.constFloat(0.33);
      B.emit(Opcode::Mul);
      B.emit(Opcode::HStore);
      B.loadLocal(Acc);
      B.loadLocal(V);
      B.emit(Opcode::Abs);
      B.constInt(1);
      B.emit(Opcode::Add);
      B.emit(Opcode::Sqrt);
      B.emit(Opcode::Add);
      B.storeLocal(Acc);
    });
    B.loadLocal(Acc);
    B.emit(Opcode::F2I);
    B.ret();
  }

  // updateCells(grid, cells): relaxation pass (cheaper, int/float mix).
  {
    FunctionBuilder &B = MB.functionBuilder(UpdateCells);
    uint32_t Grid = 0, Cells = 1;
    uint32_t I = B.allocLocal(), S = B.allocLocal();
    B.constInt(0);
    B.storeLocal(S);
    emitForUp(B, I, 0, Cells, 1, [&] {
      B.loadLocal(Grid);
      B.loadLocal(I);
      B.emit(Opcode::Add);
      B.loadLocal(Grid);
      B.loadLocal(I);
      B.emit(Opcode::Add);
      B.emit(Opcode::HLoad);
      B.constFloat(0.999);
      B.emit(Opcode::Mul);
      B.constFloat(0.002);
      B.emit(Opcode::Add);
      B.emit(Opcode::HStore);
      B.incrementLocal(S, 1);
    });
    B.loadLocal(S);
    B.ret();
  }

  // applyBoundary(grid, n): perimeter fix-up (short; stays cool).
  {
    FunctionBuilder &B = MB.functionBuilder(ApplyBoundary);
    uint32_t Grid = 0, N = 1;
    uint32_t I = B.allocLocal();
    emitForUp(B, I, 0, N, 1, [&] {
      B.loadLocal(Grid);
      B.loadLocal(I);
      B.emit(Opcode::Add);
      B.constFloat(1.0);
      B.emit(Opcode::HStore);
    });
    B.loadLocal(N);
    B.ret();
  }

  // main(n): cells = n * n; steps = 16 + n / 4.
  {
    FunctionBuilder &B = MB.functionBuilder(Main);
    uint32_t N = 0;
    uint32_t Grid = B.allocLocal(), Cells = B.allocLocal(),
             Steps = B.allocLocal(), T = B.allocLocal(),
             Acc = B.allocLocal();
    B.loadLocal(N);
    B.loadLocal(N);
    B.emit(Opcode::Mul);
    B.storeLocal(Cells);
    B.loadLocal(Cells);
    B.emit(Opcode::NewArr);
    B.storeLocal(Grid);
    B.loadLocal(Grid);
    B.loadLocal(Cells);
    B.call(InitGrid);
    B.emit(Opcode::Pop);
    B.loadLocal(N);
    B.constInt(4);
    B.emit(Opcode::Div);
    B.constInt(16);
    B.emit(Opcode::Add);
    B.storeLocal(Steps);
    B.constInt(0);
    B.storeLocal(Acc);
    emitForUp(B, T, 0, Steps, 1, [&] {
      B.loadLocal(Acc);
      B.loadLocal(Grid);
      B.loadLocal(Cells);
      B.loadLocal(T);
      B.call(ComputeFlux);
      B.emit(Opcode::Add);
      B.storeLocal(Acc);
      B.loadLocal(Grid);
      B.loadLocal(Cells);
      B.call(UpdateCells);
      B.emit(Opcode::Pop);
      B.loadLocal(Grid);
      B.loadLocal(N);
      B.call(ApplyBoundary);
      B.emit(Opcode::Pop);
    });
    B.loadLocal(Acc);
    B.ret();
  }
  return finishModule(MB);
}

//===----------------------------------------------------------------------===//
// MolDyn: pairwise force simulation.  main(n, steps).
//===----------------------------------------------------------------------===//

bc::Module buildMolDynModule() {
  ModuleBuilder MB;
  MethodId Main = MB.declareFunction("main", 2);
  MethodId InitParticles = MB.declareFunction("initParticles", 2);
  MethodId Forces = MB.declareFunction("forces", 2);
  MethodId Integrate = MB.declareFunction("integrate", 2);
  MethodId ScaleVelocity = MB.declareFunction("scaleVelocity", 2);

  // initParticles(pos, n): 2 coordinates per particle.
  {
    FunctionBuilder &B = MB.functionBuilder(InitParticles);
    uint32_t Pos = 0, N = 1;
    uint32_t I = B.allocLocal();
    emitForUp(B, I, 0, N, 1, [&] {
      B.loadLocal(Pos);
      B.loadLocal(I);
      B.constInt(2);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Add);
      B.loadLocal(I);
      B.constFloat(0.37);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Sin);
      B.emit(Opcode::HStore);
      B.loadLocal(Pos);
      B.loadLocal(I);
      B.constInt(2);
      B.emit(Opcode::Mul);
      B.constInt(1);
      B.emit(Opcode::Add);
      B.emit(Opcode::Add);
      B.loadLocal(I);
      B.constFloat(0.23);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Cos);
      B.emit(Opcode::HStore);
    });
    B.loadLocal(N);
    B.ret();
  }

  // forces(pos, n): O(n^2/2) pairwise interactions with sqrt.
  {
    FunctionBuilder &B = MB.functionBuilder(Forces);
    uint32_t Pos = 0, N = 1;
    uint32_t I = B.allocLocal(), J = B.allocLocal(), Dx = B.allocLocal(),
             Dy = B.allocLocal(), Acc = B.allocLocal();
    B.constInt(0);
    B.storeLocal(Acc);
    emitForUp(B, I, 1, N, 1, [&] {
      emitForUp(B, J, 0, I, 1, [&] {
        // dx = pos[2i] - pos[2j]; dy = pos[2i+1] - pos[2j+1]
        B.loadLocal(Pos);
        B.loadLocal(I);
        B.constInt(2);
        B.emit(Opcode::Mul);
        B.emit(Opcode::Add);
        B.emit(Opcode::HLoad);
        B.loadLocal(Pos);
        B.loadLocal(J);
        B.constInt(2);
        B.emit(Opcode::Mul);
        B.emit(Opcode::Add);
        B.emit(Opcode::HLoad);
        B.emit(Opcode::Sub);
        B.storeLocal(Dx);
        B.loadLocal(Pos);
        B.loadLocal(I);
        B.constInt(2);
        B.emit(Opcode::Mul);
        B.constInt(1);
        B.emit(Opcode::Add);
        B.emit(Opcode::Add);
        B.emit(Opcode::HLoad);
        B.loadLocal(Pos);
        B.loadLocal(J);
        B.constInt(2);
        B.emit(Opcode::Mul);
        B.constInt(1);
        B.emit(Opcode::Add);
        B.emit(Opcode::Add);
        B.emit(Opcode::HLoad);
        B.emit(Opcode::Sub);
        B.storeLocal(Dy);
        // acc += 1 / sqrt(dx*dx + dy*dy + 0.01)
        B.loadLocal(Acc);
        B.constFloat(1.0);
        B.loadLocal(Dx);
        B.loadLocal(Dx);
        B.emit(Opcode::Mul);
        B.loadLocal(Dy);
        B.loadLocal(Dy);
        B.emit(Opcode::Mul);
        B.emit(Opcode::Add);
        B.constFloat(0.01);
        B.emit(Opcode::Add);
        B.emit(Opcode::Sqrt);
        B.emit(Opcode::Div);
        B.emit(Opcode::Add);
        B.storeLocal(Acc);
      });
    });
    B.loadLocal(Acc);
    B.emit(Opcode::F2I);
    B.ret();
  }

  // integrate(pos, n): linear drift pass.
  {
    FunctionBuilder &B = MB.functionBuilder(Integrate);
    uint32_t Pos = 0, N = 1;
    uint32_t I = B.allocLocal(), Lim = B.allocLocal();
    B.loadLocal(N);
    B.constInt(2);
    B.emit(Opcode::Mul);
    B.storeLocal(Lim);
    emitForUp(B, I, 0, Lim, 1, [&] {
      B.loadLocal(Pos);
      B.loadLocal(I);
      B.emit(Opcode::Add);
      B.loadLocal(Pos);
      B.loadLocal(I);
      B.emit(Opcode::Add);
      B.emit(Opcode::HLoad);
      B.constFloat(1.001);
      B.emit(Opcode::Mul);
      B.emit(Opcode::HStore);
    });
    B.loadLocal(N);
    B.ret();
  }

  // scaleVelocity(pos, n): occasional rescale (short method).
  {
    FunctionBuilder &B = MB.functionBuilder(ScaleVelocity);
    uint32_t Pos = 0, N = 1;
    uint32_t S = B.allocLocal();
    B.loadLocal(Pos);
    B.emit(Opcode::HLoad);
    B.constFloat(0.97);
    B.emit(Opcode::Mul);
    B.storeLocal(S);
    B.loadLocal(Pos);
    B.loadLocal(S);
    B.emit(Opcode::HStore);
    B.loadLocal(N);
    B.ret();
  }

  // main(n, steps).
  {
    FunctionBuilder &B = MB.functionBuilder(Main);
    uint32_t N = 0, Steps = 1;
    uint32_t Pos = B.allocLocal(), T = B.allocLocal(), Acc = B.allocLocal();
    B.loadLocal(N);
    B.constInt(2);
    B.emit(Opcode::Mul);
    B.emit(Opcode::NewArr);
    B.storeLocal(Pos);
    B.loadLocal(Pos);
    B.loadLocal(N);
    B.call(InitParticles);
    B.emit(Opcode::Pop);
    B.constInt(0);
    B.storeLocal(Acc);
    emitForUp(B, T, 0, Steps, 1, [&] {
      B.loadLocal(Acc);
      B.loadLocal(Pos);
      B.loadLocal(N);
      B.call(Forces);
      B.emit(Opcode::Add);
      B.storeLocal(Acc);
      B.loadLocal(Pos);
      B.loadLocal(N);
      B.call(Integrate);
      B.emit(Opcode::Pop);
      B.loadLocal(Pos);
      B.loadLocal(N);
      B.call(ScaleVelocity);
      B.emit(Opcode::Pop);
    });
    B.loadLocal(Acc);
    B.ret();
  }
  return finishModule(MB);
}

//===----------------------------------------------------------------------===//
// MonteCarlo: path sampling.  main(paths, seed).
//===----------------------------------------------------------------------===//

bc::Module buildMonteCarloModule() {
  ModuleBuilder MB;
  MethodId Main = MB.declareFunction("main", 2);
  MethodId Lcg = addLcgFunction(MB);
  MethodId RunBatch = MB.declareFunction("runBatch", 2);
  MethodId SamplePath = MB.declareFunction("samplePath", 1);
  MethodId Accumulate = MB.declareFunction("accumulate", 2);

  // samplePath(seed): 24-step random walk with sqrt/cos payoffs.
  {
    FunctionBuilder &B = MB.functionBuilder(SamplePath);
    uint32_t Seed = 0;
    uint32_t State = B.allocLocal(), K = B.allocLocal(), V = B.allocLocal(),
             Lim = B.allocLocal();
    B.loadLocal(Seed);
    B.storeLocal(State);
    B.constInt(24);
    B.storeLocal(Lim);
    B.constInt(0);
    B.storeLocal(V);
    emitForUp(B, K, 0, Lim, 1, [&] {
      emitLcgDraw(B, Lcg, State, 1000);
      B.emit(Opcode::I2F);
      B.constFloat(0.001);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Cos);
      B.loadLocal(K);
      B.constInt(1);
      B.emit(Opcode::Add);
      B.emit(Opcode::Sqrt);
      B.emit(Opcode::Mul);
      B.loadLocal(V);
      B.emit(Opcode::Add);
      B.storeLocal(V);
    });
    B.loadLocal(V);
    B.constFloat(1000.0);
    B.emit(Opcode::Mul);
    B.emit(Opcode::F2I);
    B.ret();
  }

  // accumulate(acc, v): running statistics (short).
  {
    FunctionBuilder &B = MB.functionBuilder(Accumulate);
    uint32_t Acc = 0, V = 1;
    B.loadLocal(Acc);
    B.loadLocal(V);
    B.emit(Opcode::Add);
    B.constInt(0x3fffffffffffLL);
    B.emit(Opcode::And);
    B.ret();
  }

  // runBatch(stateCell, count): one batch of sampled paths.
  {
    FunctionBuilder &B = MB.functionBuilder(RunBatch);
    uint32_t StateCell = 0, Count = 1;
    uint32_t State = B.allocLocal(), P = B.allocLocal(),
             Acc = B.allocLocal(), V = B.allocLocal();
    B.loadLocal(StateCell);
    B.emit(Opcode::HLoad);
    B.storeLocal(State);
    B.constInt(0);
    B.storeLocal(Acc);
    emitForUp(B, P, 0, Count, 1, [&] {
      emitLcgDraw(B, Lcg, State, 1 << 30);
      B.call(SamplePath);
      B.storeLocal(V);
      B.loadLocal(Acc);
      B.loadLocal(V);
      B.call(Accumulate);
      B.storeLocal(Acc);
    });
    B.loadLocal(StateCell);
    B.loadLocal(State);
    B.emit(Opcode::HStore);
    B.loadLocal(Acc);
    B.ret();
  }

  // main(paths, seed): batches of 256 paths.
  {
    FunctionBuilder &B = MB.functionBuilder(Main);
    uint32_t Paths = 0, Seed = 1;
    uint32_t StateCell = B.allocLocal(), Acc = B.allocLocal(),
             Done = B.allocLocal(), Count = B.allocLocal();
    B.constInt(1);
    B.emit(Opcode::NewArr);
    B.storeLocal(StateCell);
    B.loadLocal(StateCell);
    B.loadLocal(Seed);
    B.emit(Opcode::HStore);
    B.constInt(0);
    B.storeLocal(Acc);
    B.constInt(0);
    B.storeLocal(Done);
    emitWhile(
        B,
        [&] {
          B.loadLocal(Done);
          B.loadLocal(Paths);
          B.emit(Opcode::Lt);
        },
        [&] {
          B.constInt(256);
          B.loadLocal(Paths);
          B.loadLocal(Done);
          B.emit(Opcode::Sub);
          B.emit(Opcode::Min);
          B.storeLocal(Count);
          B.loadLocal(Acc);
          B.loadLocal(StateCell);
          B.loadLocal(Count);
          B.call(RunBatch);
          B.emit(Opcode::Add);
          B.storeLocal(Acc);
          B.loadLocal(Done);
          B.loadLocal(Count);
          B.emit(Opcode::Add);
          B.storeLocal(Done);
        });
    B.loadLocal(Acc);
    B.ret();
  }
  return finishModule(MB);
}

//===----------------------------------------------------------------------===//
// Search: alpha-beta game-tree search.  main(depth, seed).
//===----------------------------------------------------------------------===//

bc::Module buildSearchModule() {
  ModuleBuilder MB;
  MethodId Main = MB.declareFunction("main", 2);
  MethodId SearchNode = MB.declareFunction("searchNode", 2);
  MethodId Evaluate = MB.declareFunction("evaluate", 1);
  MethodId Advance = MB.declareFunction("advance", 2);

  // evaluate(state): leaf scoring, ~40 bytecodes of integer mixing.
  {
    FunctionBuilder &B = MB.functionBuilder(Evaluate);
    uint32_t State = 0;
    uint32_t S = B.allocLocal();
    B.loadLocal(State);
    B.constInt(2654435761LL);
    B.emit(Opcode::Mul);
    B.loadLocal(State);
    B.constInt(13);
    B.emit(Opcode::Shr);
    B.emit(Opcode::Xor);
    B.storeLocal(S);
    B.loadLocal(S);
    B.constInt(0xffff);
    B.emit(Opcode::And);
    B.loadLocal(S);
    B.constInt(16);
    B.emit(Opcode::Shr);
    B.constInt(0xffff);
    B.emit(Opcode::And);
    B.emit(Opcode::Sub);
    B.constInt(100);
    B.emit(Opcode::Mod);
    B.ret();
  }

  // advance(state, move): successor position hash.
  {
    FunctionBuilder &B = MB.functionBuilder(Advance);
    uint32_t State = 0, Move = 1;
    B.loadLocal(State);
    B.constInt(31);
    B.emit(Opcode::Mul);
    B.loadLocal(Move);
    B.constInt(7919);
    B.emit(Opcode::Mul);
    B.emit(Opcode::Add);
    B.constInt(0x7fffffffLL);
    B.emit(Opcode::And);
    B.ret();
  }

  // searchNode(depth, state): negamax over branching factor 3.
  {
    FunctionBuilder &B = MB.functionBuilder(SearchNode);
    uint32_t Depth = 0, State = 1;
    uint32_t Best = B.allocLocal(), Move = B.allocLocal(),
             Child = B.allocLocal(), ScoreV = B.allocLocal(),
             Lim = B.allocLocal();
    FunctionBuilder::Label Leaf = B.makeLabel();
    B.loadLocal(Depth);
    B.constInt(0);
    B.emit(Opcode::Le);
    B.brTrue(Leaf);
    // Internal node: best = max over 3 moves of -search(depth-1, child).
    B.constInt(-1000000);
    B.storeLocal(Best);
    B.constInt(3);
    B.storeLocal(Lim);
    emitForUp(B, Move, 0, Lim, 1, [&] {
      B.loadLocal(State);
      B.loadLocal(Move);
      B.call(Advance);
      B.storeLocal(Child);
      B.loadLocal(Depth);
      B.constInt(1);
      B.emit(Opcode::Sub);
      B.loadLocal(Child);
      B.call(SearchNode);
      B.emit(Opcode::Neg);
      B.storeLocal(ScoreV);
      B.loadLocal(Best);
      B.loadLocal(ScoreV);
      B.emit(Opcode::Max);
      B.storeLocal(Best);
    });
    B.loadLocal(Best);
    B.ret();
    B.bind(Leaf);
    B.loadLocal(State);
    B.call(Evaluate);
    B.ret();
  }

  // main(depth, seed).
  {
    FunctionBuilder &B = MB.functionBuilder(Main);
    uint32_t Depth = 0, Seed = 1;
    uint32_t R = B.allocLocal();
    B.loadLocal(Depth);
    B.loadLocal(Seed);
    B.call(SearchNode);
    B.storeLocal(R);
    B.loadLocal(R);
    B.ret();
  }
  return finishModule(MB);
}

//===----------------------------------------------------------------------===//
// RayTracer: fixed-scene renderer.  main(n, shadows).
//===----------------------------------------------------------------------===//

bc::Module buildRayTracerModule() {
  ModuleBuilder MB;
  MethodId Main = MB.declareFunction("main", 2);
  MethodId BuildScene = MB.declareFunction("buildScene", 1);
  MethodId RenderRow = MB.declareFunction("renderRow", 4);
  MethodId Intersect = MB.declareFunction("intersect", 3);
  MethodId ShadePixel = MB.declareFunction("shadePixel", 2);
  MethodId ShadowRay = MB.declareFunction("shadowRay", 3);

  // buildScene(scene): 12 spheres, 3 values each.
  {
    FunctionBuilder &B = MB.functionBuilder(BuildScene);
    uint32_t Scene = 0;
    uint32_t I = B.allocLocal(), Lim = B.allocLocal();
    B.constInt(36);
    B.storeLocal(Lim);
    emitForUp(B, I, 0, Lim, 1, [&] {
      B.loadLocal(Scene);
      B.loadLocal(I);
      B.emit(Opcode::Add);
      B.loadLocal(I);
      B.constFloat(0.41);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Cos);
      B.constFloat(2.5);
      B.emit(Opcode::Mul);
      B.emit(Opcode::HStore);
    });
    B.loadLocal(Scene);
    B.ret();
  }

  // intersect(px, py, scene): loop over 12 spheres.
  {
    FunctionBuilder &B = MB.functionBuilder(Intersect);
    uint32_t Px = 0, Py = 1, Scene = 2;
    uint32_t I = B.allocLocal(), T = B.allocLocal(), D = B.allocLocal(),
             Lim = B.allocLocal();
    B.constInt(12);
    B.storeLocal(Lim);
    B.constInt(0);
    B.storeLocal(T);
    emitForUp(B, I, 0, Lim, 1, [&] {
      // d = (scene[3i] - px*0.02)^2 + (scene[3i+1] - py*0.02)^2
      B.loadLocal(Scene);
      B.loadLocal(I);
      B.constInt(3);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Add);
      B.emit(Opcode::HLoad);
      B.loadLocal(Px);
      B.constFloat(0.02);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Sub);
      B.emit(Opcode::Dup);
      B.emit(Opcode::Mul);
      B.loadLocal(Scene);
      B.loadLocal(I);
      B.constInt(3);
      B.emit(Opcode::Mul);
      B.constInt(1);
      B.emit(Opcode::Add);
      B.emit(Opcode::Add);
      B.emit(Opcode::HLoad);
      B.loadLocal(Py);
      B.constFloat(0.02);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Sub);
      B.emit(Opcode::Dup);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Add);
      B.storeLocal(D);
      emitIfElse(
          B,
          [&] {
            B.loadLocal(D);
            B.constFloat(1.2);
            B.emit(Opcode::Lt);
          },
          [&] {
            B.loadLocal(T);
            B.loadLocal(D);
            B.constFloat(0.001);
            B.emit(Opcode::Add);
            B.emit(Opcode::Sqrt);
            B.emit(Opcode::Add);
            B.storeLocal(T);
          });
    });
    B.loadLocal(T);
    B.emit(Opcode::F2I);
    B.ret();
  }

  // shadePixel(t, px): tone mapping.
  {
    FunctionBuilder &B = MB.functionBuilder(ShadePixel);
    uint32_t T = 0, Px = 1;
    B.loadLocal(T);
    B.emit(Opcode::Abs);
    B.constInt(1);
    B.emit(Opcode::Add);
    B.emit(Opcode::Sqrt);
    B.constInt(16);
    B.emit(Opcode::Mul);
    B.loadLocal(Px);
    B.constInt(31);
    B.emit(Opcode::And);
    B.emit(Opcode::I2F);
    B.emit(Opcode::Add);
    B.emit(Opcode::F2I);
    B.ret();
  }

  // shadowRay(px, py, scene): secondary occlusion test.
  {
    FunctionBuilder &B = MB.functionBuilder(ShadowRay);
    uint32_t Px = 0, Py = 1, Scene = 2;
    uint32_t S = B.allocLocal();
    B.loadLocal(Px);
    B.constInt(3);
    B.emit(Opcode::Add);
    B.loadLocal(Py);
    B.constInt(5);
    B.emit(Opcode::Add);
    B.loadLocal(Scene);
    B.call(Intersect);
    B.storeLocal(S);
    B.loadLocal(S);
    B.constInt(4);
    B.emit(Opcode::Div);
    B.ret();
  }

  // renderRow(y, n, scene, shadows): one scan line.
  {
    FunctionBuilder &B = MB.functionBuilder(RenderRow);
    uint32_t Y = 0, N = 1, Scene = 2, Shadows = 3;
    uint32_t X = B.allocLocal(), Acc = B.allocLocal(), T = B.allocLocal();
    B.constInt(0);
    B.storeLocal(Acc);
    emitForUp(B, X, 0, N, 1, [&] {
      B.loadLocal(X);
      B.loadLocal(Y);
      B.loadLocal(Scene);
      B.call(Intersect);
      B.storeLocal(T);
      B.loadLocal(Acc);
      B.loadLocal(T);
      B.loadLocal(X);
      B.call(ShadePixel);
      B.emit(Opcode::Add);
      B.storeLocal(Acc);
      emitIfElse(B, [&] { B.loadLocal(Shadows); },
                 [&] {
                   B.loadLocal(Acc);
                   B.loadLocal(X);
                   B.loadLocal(Y);
                   B.loadLocal(Scene);
                   B.call(ShadowRay);
                   B.emit(Opcode::Add);
                   B.storeLocal(Acc);
                 });
    });
    B.loadLocal(Acc);
    B.ret();
  }

  // main(n, shadows): render row by row.
  {
    FunctionBuilder &B = MB.functionBuilder(Main);
    uint32_t N = 0, Shadows = 1;
    uint32_t Scene = B.allocLocal(), Y = B.allocLocal(),
             Acc = B.allocLocal();
    B.constInt(36);
    B.emit(Opcode::NewArr);
    B.storeLocal(Scene);
    B.loadLocal(Scene);
    B.call(BuildScene);
    B.emit(Opcode::Pop);
    B.constInt(0);
    B.storeLocal(Acc);
    emitForUp(B, Y, 0, N, 1, [&] {
      B.loadLocal(Acc);
      B.loadLocal(Y);
      B.loadLocal(N);
      B.loadLocal(Scene);
      B.loadLocal(Shadows);
      B.call(RenderRow);
      B.emit(Opcode::Add);
      B.storeLocal(Acc);
    });
    B.loadLocal(Acc);
    B.ret();
  }
  return finishModule(MB);
}

} // namespace

Workload detail::buildEuler(uint64_t Seed) {
  Workload W;
  W.Name = "Euler";
  W.Suite = "grande";
  W.Module = buildEulerModule();
  W.XiclSpec = "operand {position=1; type=num; attr=val}\n";
  Rng R(Seed ^ 0xE0130007);
  for (int I = 0; I != 24; ++I) {
    InputCase C;
    int64_t N = logUniform(R, 20, 110);
    C.CommandLine = formatString("euler %lld", static_cast<long long>(N));
    C.VmArgs = {Value::makeInt(N)};
    W.Inputs.push_back(std::move(C));
  }
  return W;
}

Workload detail::buildMolDyn(uint64_t Seed) {
  Workload W;
  W.Name = "MolDyn";
  W.Suite = "grande";
  W.Module = buildMolDynModule();
  W.XiclSpec = "option  {name=-s; type=num; attr=val; default=12; has_arg=y}\n"
               "operand {position=1; type=num; attr=val}\n";
  Rng R(Seed ^ 0x30140008);
  for (int I = 0; I != 20; ++I) {
    InputCase C;
    int64_t N = logUniform(R, 24, 160);
    int64_t Steps = R.nextInt(10, 28);
    C.CommandLine = formatString("moldyn -s %lld %lld",
                                 static_cast<long long>(Steps),
                                 static_cast<long long>(N));
    C.VmArgs = {Value::makeInt(N), Value::makeInt(Steps)};
    W.Inputs.push_back(std::move(C));
  }
  return W;
}

Workload detail::buildMonteCarlo(uint64_t Seed) {
  Workload W;
  W.Name = "MonteCarlo";
  W.Suite = "grande";
  W.Module = buildMonteCarloModule();
  W.XiclSpec = "operand {position=1; type=num; attr=val}\n";
  Rng R(Seed ^ 0x30C40009);
  for (int I = 0; I != 26; ++I) {
    InputCase C;
    int64_t Paths = logUniform(R, 4000, 90000);
    C.CommandLine = formatString("montecarlo %lld",
                                 static_cast<long long>(Paths));
    C.VmArgs = {Value::makeInt(Paths),
                Value::makeInt(R.nextInt(1, 1 << 30))};
    W.Inputs.push_back(std::move(C));
  }
  return W;
}

Workload detail::buildSearch(uint64_t Seed) {
  Workload W;
  W.Name = "Search";
  W.Suite = "grande";
  W.Module = buildSearchModule();
  // The paper's feature: the length of the input string.
  W.XiclSpec = "operand {position=1; type=str; attr=len}\n";
  Rng R(Seed ^ 0x5EA1000A);
  const char *Patterns[] = {"xoxo",          "xoxoxox",  "xoxoxoxoxo",
                            "xoxoxoxoxoxox", "xxooxxoox", "xoxxooxoxxooxxo"};
  for (int I = 0; I != 6; ++I) {
    InputCase C;
    std::string Pattern = Patterns[I];
    // Search depth derives from the pattern length (longer game strings
    // mean deeper searches).
    int64_t Depth = 4 + static_cast<int64_t>(Pattern.size()) / 3;
    C.CommandLine = formatString("search %s", Pattern.c_str());
    C.VmArgs = {Value::makeInt(Depth),
                Value::makeInt(R.nextInt(1, 1 << 20))};
    W.Inputs.push_back(std::move(C));
  }
  return W;
}

Workload detail::buildRayTracer(uint64_t Seed) {
  Workload W;
  W.Name = "RayTracer";
  W.Suite = "grande";
  W.Module = buildRayTracerModule();
  W.XiclSpec = "option  {name=-ns; type=bin; attr=val; default=0; has_arg=n}\n"
               "operand {position=1; type=num; attr=val}\n";
  Rng R(Seed ^ 0x3A17000B);
  for (int I = 0; I != 30; ++I) {
    InputCase C;
    int64_t N = logUniform(R, 32, 170);
    bool NoShadows = R.nextBool(0.4);
    C.CommandLine = formatString("raytracer%s %lld",
                                 NoShadows ? " -ns" : "",
                                 static_cast<long long>(N));
    C.VmArgs = {Value::makeInt(N), Value::makeInt(NoShadows ? 0 : 1)};
    W.Inputs.push_back(std::move(C));
  }
  return W;
}
