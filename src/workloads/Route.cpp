//===- workloads/Route.cpp - The paper's Fig. 2 running example -----------==//
//
// `route [options] FILE...` finds the N shortest routes in a graph:
//
//   SYNOPSIS: route [options] FILE...
//   OPTIONS:  -n N        find N shortest paths (default 1)
//             -e, --echo  status messages (off by default)
//
// with the paper's exact XICL specification (option -n with val, option
// -e/--echo with val, operands 1:$ of type file with programmer-defined
// mnodes/medges features).  The program itself is a Bellman-Ford-style
// relaxation over an LCG-generated graph whose node/edge counts come from
// the "input file".
//
//===----------------------------------------------------------------------===//

#include "workloads/Kernels.h"
#include "workloads/Workload.h"
#include "workloads/WorkloadDetail.h"

#include "support/Format.h"

using namespace evm;
using namespace evm::wl;
using namespace evm::wl::detail;
using bc::FunctionBuilder;
using bc::MethodId;
using bc::ModuleBuilder;
using bc::Opcode;
using bc::Value;

namespace {

// main(nodes, edges, npaths, echo).
bc::Module buildRouteModule() {
  ModuleBuilder MB;
  MethodId Main = MB.declareFunction("main", 4);
  MethodId Lcg = addLcgFunction(MB);
  MethodId LoadGraph = MB.declareFunction("loadGraph", 3);
  MethodId ResetDist = MB.declareFunction("resetDist", 2);
  MethodId RelaxEdges = MB.declareFunction("relaxEdges", 4);
  MethodId ExtractPath = MB.declareFunction("extractPath", 3);
  MethodId EchoStatus = MB.declareFunction("echoStatus", 2);

  // loadGraph(arr, edges, nodes): edge list (src, dst, weight).
  {
    FunctionBuilder &B = MB.functionBuilder(LoadGraph);
    uint32_t Arr = 0, Edges = 1, Nodes = 2;
    uint32_t I = B.allocLocal(), State = B.allocLocal(),
             Base = B.allocLocal();
    B.constInt(424242);
    B.storeLocal(State);
    emitForUp(B, I, 0, Edges, 1, [&] {
      B.loadLocal(Arr);
      B.loadLocal(I);
      B.constInt(3);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Add);
      B.storeLocal(Base);
      B.loadLocal(Base);
      emitLcgDraw(B, Lcg, State, 1 << 20);
      B.loadLocal(Nodes);
      B.emit(Opcode::Mod);
      B.emit(Opcode::HStore);
      B.loadLocal(Base);
      B.constInt(1);
      B.emit(Opcode::Add);
      emitLcgDraw(B, Lcg, State, 1 << 20);
      B.loadLocal(Nodes);
      B.emit(Opcode::Mod);
      B.emit(Opcode::HStore);
      B.loadLocal(Base);
      B.constInt(2);
      B.emit(Opcode::Add);
      emitLcgDraw(B, Lcg, State, 100);
      B.constInt(1);
      B.emit(Opcode::Add);
      B.emit(Opcode::HStore);
    });
    B.loadLocal(Edges);
    B.ret();
  }

  // resetDist(dist, nodes): set every distance to "infinity", source to 0.
  {
    FunctionBuilder &B = MB.functionBuilder(ResetDist);
    uint32_t Dist = 0, Nodes = 1;
    uint32_t I = B.allocLocal();
    emitForUp(B, I, 0, Nodes, 1, [&] {
      B.loadLocal(Dist);
      B.loadLocal(I);
      B.emit(Opcode::Add);
      B.constInt(1 << 28);
      B.emit(Opcode::HStore);
    });
    B.loadLocal(Dist);
    B.constInt(0);
    B.emit(Opcode::HStore);
    B.loadLocal(Nodes);
    B.ret();
  }

  // relaxEdges(graph, dist, edges, rounds-marker): one Bellman-Ford pass.
  {
    FunctionBuilder &B = MB.functionBuilder(RelaxEdges);
    uint32_t Graph = 0, Dist = 1, Edges = 2, Round = 3;
    uint32_t I = B.allocLocal(), Base = B.allocLocal(), Src = B.allocLocal(),
             Dst = B.allocLocal(), Wt = B.allocLocal(), Cand = B.allocLocal(),
             Changed = B.allocLocal();
    B.constInt(0);
    B.storeLocal(Changed);
    emitForUp(B, I, 0, Edges, 1, [&] {
      B.loadLocal(Graph);
      B.loadLocal(I);
      B.constInt(3);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Add);
      B.storeLocal(Base);
      B.loadLocal(Base);
      B.emit(Opcode::HLoad);
      B.storeLocal(Src);
      B.loadLocal(Base);
      B.constInt(1);
      B.emit(Opcode::Add);
      B.emit(Opcode::HLoad);
      B.storeLocal(Dst);
      B.loadLocal(Base);
      B.constInt(2);
      B.emit(Opcode::Add);
      B.emit(Opcode::HLoad);
      B.loadLocal(Round);
      B.emit(Opcode::Add);
      B.storeLocal(Wt);
      // cand = dist[src] + wt; if cand < dist[dst]: dist[dst] = cand
      B.loadLocal(Dist);
      B.loadLocal(Src);
      B.emit(Opcode::Add);
      B.emit(Opcode::HLoad);
      B.loadLocal(Wt);
      B.emit(Opcode::Add);
      B.storeLocal(Cand);
      emitIfElse(
          B,
          [&] {
            B.loadLocal(Cand);
            B.loadLocal(Dist);
            B.loadLocal(Dst);
            B.emit(Opcode::Add);
            B.emit(Opcode::HLoad);
            B.emit(Opcode::Lt);
          },
          [&] {
            B.loadLocal(Dist);
            B.loadLocal(Dst);
            B.emit(Opcode::Add);
            B.loadLocal(Cand);
            B.emit(Opcode::HStore);
            B.incrementLocal(Changed, 1);
          });
    });
    B.loadLocal(Changed);
    B.ret();
  }

  // extractPath(dist, nodes, k): checksum of the k-th shortest frontier.
  {
    FunctionBuilder &B = MB.functionBuilder(ExtractPath);
    uint32_t Dist = 0, Nodes = 1, K = 2;
    uint32_t I = B.allocLocal(), Sum = B.allocLocal();
    B.constInt(0);
    B.storeLocal(Sum);
    emitForUp(B, I, 0, Nodes, 1, [&] {
      B.loadLocal(Sum);
      B.loadLocal(Dist);
      B.loadLocal(I);
      B.emit(Opcode::Add);
      B.emit(Opcode::HLoad);
      B.loadLocal(K);
      B.emit(Opcode::Xor);
      B.emit(Opcode::Add);
      B.storeLocal(Sum);
    });
    B.loadLocal(Sum);
    B.ret();
  }

  // echoStatus(round, sum): the -e/--echo path (light).
  {
    FunctionBuilder &B = MB.functionBuilder(EchoStatus);
    uint32_t Round = 0, Sum = 1;
    B.loadLocal(Round);
    B.loadLocal(Sum);
    B.emit(Opcode::Xor);
    B.constInt(0xff);
    B.emit(Opcode::And);
    B.ret();
  }

  // main(nodes, edges, npaths, echo).
  {
    FunctionBuilder &B = MB.functionBuilder(Main);
    uint32_t Nodes = 0, Edges = 1, NPaths = 2, Echo = 3;
    uint32_t Graph = B.allocLocal(), Dist = B.allocLocal(),
             P = B.allocLocal(), R = B.allocLocal(), Acc = B.allocLocal(),
             Rounds = B.allocLocal();
    B.loadLocal(Edges);
    B.constInt(3);
    B.emit(Opcode::Mul);
    B.emit(Opcode::NewArr);
    B.storeLocal(Graph);
    B.loadLocal(Nodes);
    B.emit(Opcode::NewArr);
    B.storeLocal(Dist);
    B.loadLocal(Graph);
    B.loadLocal(Edges);
    B.loadLocal(Nodes);
    B.call(LoadGraph);
    B.emit(Opcode::Pop);
    B.constInt(0);
    B.storeLocal(Acc);
    // rounds = min(12, nodes/64 + 4): bounded relaxation sweeps.
    B.loadLocal(Nodes);
    B.constInt(64);
    B.emit(Opcode::Div);
    B.constInt(4);
    B.emit(Opcode::Add);
    B.constInt(12);
    B.emit(Opcode::Min);
    B.storeLocal(Rounds);
    emitForUp(B, P, 0, NPaths, 1, [&] {
      B.loadLocal(Dist);
      B.loadLocal(Nodes);
      B.call(ResetDist);
      B.emit(Opcode::Pop);
      emitForUp(B, R, 0, Rounds, 1, [&] {
        B.loadLocal(Graph);
        B.loadLocal(Dist);
        B.loadLocal(Edges);
        B.loadLocal(P);
        B.call(RelaxEdges);
        B.emit(Opcode::Pop);
      });
      B.loadLocal(Acc);
      B.loadLocal(Dist);
      B.loadLocal(Nodes);
      B.loadLocal(P);
      B.call(ExtractPath);
      B.emit(Opcode::Add);
      B.storeLocal(Acc);
      emitIfElse(B, [&] { B.loadLocal(Echo); },
                 [&] {
                   B.loadLocal(Acc);
                   B.loadLocal(P);
                   B.loadLocal(Acc);
                   B.call(EchoStatus);
                   B.emit(Opcode::Add);
                   B.storeLocal(Acc);
                 });
    });
    B.loadLocal(Acc);
    B.ret();
  }
  return finishModule(MB);
}

} // namespace

Workload wl::buildRouteExample(uint64_t Seed, size_t NumInputs) {
  Workload W;
  W.Name = "Route";
  W.Suite = "example";
  W.Module = buildRouteModule();
  W.UserMethodAttrs = {"mnodes", "medges"};
  // The paper's Fig. 2(b) specification, verbatim in structure.
  W.XiclSpec =
      "option  {name=-n; type=num; attr=val; default=1; has_arg=y}\n"
      "option  {name=-e:--echo; type=bin; attr=val; default=0; has_arg=n}\n"
      "operand {position=1:$; type=file; attr=mnodes:medges}\n";

  Rng R(Seed ^ 0x40073000);
  for (size_t I = 0; I != NumInputs; ++I) {
    InputCase C;
    int64_t Nodes = logUniform(R, 100, 4000);
    int64_t Edges = Nodes * R.nextInt(3, 6);
    int64_t NPaths = R.nextInt(1, 4);
    bool Echo = R.nextBool(0.3);
    std::string File = formatString("graph%02zu", I);
    std::string Cmd = "route";
    if (NPaths != 1)
      Cmd += formatString(" -n %lld", static_cast<long long>(NPaths));
    if (Echo)
      Cmd += " -e";
    Cmd += " " + File;
    C.CommandLine = Cmd;
    C.VmArgs = {Value::makeInt(Nodes), Value::makeInt(Edges),
                Value::makeInt(NPaths), Value::makeInt(Echo ? 1 : 0)};
    xicl::FileInfo Info;
    Info.SizeBytes = static_cast<double>(Edges * 12);
    Info.Lines = static_cast<double>(Edges);
    Info.Attributes["nodes"] = static_cast<double>(Nodes);
    Info.Attributes["edges"] = static_cast<double>(Edges);
    C.Files.emplace_back(File, Info);
    W.Inputs.push_back(std::move(C));
  }
  return W;
}
