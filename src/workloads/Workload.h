//===- workloads/Workload.h - Benchmark analogues and input sets ----------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates on 11 programs drawn from SPECjvm98, DaCapo and Java
/// Grande (Table I).  This library provides MiniVM analogues of all of
/// them — each a multi-method bytecode program whose hot-method mix and run
/// length depend on its input — plus the input sets, XICL specifications,
/// synthetic input-file metadata, and programmer-defined feature extractors
/// the paper describes (database/query sizes for Db, rule counts for Antlr,
/// LOC for Bloat, node/edge counts for the route example).
///
/// Input sets are generated from a seed so every experiment is
/// reproducible; sizes follow Table I (76 inputs for Compress, 92 for
/// Mtrt, 6 for Search, ...).
///
//===----------------------------------------------------------------------===//

#ifndef EVM_WORKLOADS_WORKLOAD_H
#define EVM_WORKLOADS_WORKLOAD_H

#include "bytecode/Module.h"
#include "bytecode/Value.h"
#include "xicl/FileStore.h"
#include "xicl/XFMethod.h"

#include <string>
#include <vector>

namespace evm {
namespace wl {

/// One concrete input to a workload: the command line the XICL translator
/// sees, the numeric arguments the program's main() receives, and the
/// synthetic metadata of any files the command line references.
struct InputCase {
  std::string CommandLine;
  std::vector<bc::Value> VmArgs;
  std::vector<std::pair<std::string, xicl::FileInfo>> Files;
};

/// A complete benchmark analogue.
struct Workload {
  std::string Name;
  std::string Suite; ///< "jvm98", "dacapo", "grande" (or "example")
  bc::Module Module;
  std::string XiclSpec;
  std::vector<InputCase> Inputs;

  /// Registers this workload's programmer-defined feature extractors
  /// (no-op for workloads that only use predefined attrs).
  void registerMethods(xicl::XFMethodRegistry &Registry) const;

  /// Registers every input's file metadata (call once per experiment).
  void populateFileStore(xicl::FileStore &Store) const;

  /// Names of programmer-defined extractors this workload installs.
  std::vector<std::string> UserMethodAttrs;
};

/// The 11 paper benchmarks, in Table I order.
const std::vector<std::string> &workloadNames();

/// Builds one workload (program + inputs) deterministically from \p Seed.
/// Asserts on unknown names; see workloadNames().
Workload buildWorkload(const std::string &Name, uint64_t Seed);

/// Builds all 11 paper workloads.
std::vector<Workload> buildAllWorkloads(uint64_t Seed);

/// The paper's Fig. 2 running example (`route [options] FILE...`), used by
/// examples and tests.
Workload buildRouteExample(uint64_t Seed, size_t NumInputs = 40);

} // namespace wl
} // namespace evm

#endif // EVM_WORKLOADS_WORKLOAD_H
