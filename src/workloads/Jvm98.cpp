//===- workloads/Jvm98.cpp - Compress, Db, Mtrt analogues -----------------==//
//
// SPECjvm98 analogues (paper Table I rows 1-3).  Each program's hot-method
// mix and run length are driven by its input exactly where the paper's
// feature column points: Compress by file size, Db by database/query sizes
// (programmer-defined features), Mtrt by its option values.
//
//===----------------------------------------------------------------------===//

#include "workloads/Kernels.h"
#include "workloads/Workload.h"
#include "workloads/WorkloadDetail.h"

#include "support/Format.h"

using namespace evm;
using namespace evm::wl;
using namespace evm::wl::detail;
using bc::FunctionBuilder;
using bc::MethodId;
using bc::ModuleBuilder;
using bc::Opcode;
using bc::Value;

//===----------------------------------------------------------------------===//
// Compress: streaming dictionary compressor.  main(size, level, decomp).
//===----------------------------------------------------------------------===//

namespace {

bc::Module buildCompressModule() {
  ModuleBuilder MB;
  MethodId Main = MB.declareFunction("main", 3);
  MethodId Lcg = addLcgFunction(MB);
  MethodId ProcessBlock = MB.declareFunction("processBlock", 5);
  MethodId CompressByte = MB.declareFunction("compressByte", 3);
  MethodId ExpandByte = MB.declareFunction("expandByte", 2);
  MethodId FlushBlock = MB.declareFunction("flushBlock", 1);

  // compressByte(b, level, dict): hash-chain update, ~35 bytecodes.
  {
    FunctionBuilder &B = MB.functionBuilder(CompressByte);
    uint32_t Bv = 0, Level = 1, Dict = 2;
    uint32_t H = B.allocLocal(), Prev = B.allocLocal(), Acc = B.allocLocal();
    // h = ((b << 3) ^ (b * 7) ^ (b >> 2)) & 255
    B.loadLocal(Bv);
    B.constInt(3);
    B.emit(Opcode::Shl);
    B.loadLocal(Bv);
    B.constInt(7);
    B.emit(Opcode::Mul);
    B.emit(Opcode::Xor);
    B.loadLocal(Bv);
    B.constInt(2);
    B.emit(Opcode::Shr);
    B.emit(Opcode::Xor);
    B.constInt(255);
    B.emit(Opcode::And);
    B.storeLocal(H);
    // prev = dict[h]; dict[h] = b
    B.loadLocal(Dict);
    B.loadLocal(H);
    B.emit(Opcode::Add);
    B.emit(Opcode::HLoad);
    B.storeLocal(Prev);
    B.loadLocal(Dict);
    B.loadLocal(H);
    B.emit(Opcode::Add);
    B.loadLocal(Bv);
    B.emit(Opcode::HStore);
    // acc = h + (prev == b) * 3 + level * (b & 7) + (b * b) % 97
    B.loadLocal(H);
    B.loadLocal(Prev);
    B.loadLocal(Bv);
    B.emit(Opcode::Eq);
    B.constInt(3);
    B.emit(Opcode::Mul);
    B.emit(Opcode::Add);
    B.loadLocal(Level);
    B.loadLocal(Bv);
    B.constInt(7);
    B.emit(Opcode::And);
    B.emit(Opcode::Mul);
    B.emit(Opcode::Add);
    B.loadLocal(Bv);
    B.loadLocal(Bv);
    B.emit(Opcode::Mul);
    B.constInt(97);
    B.emit(Opcode::Mod);
    B.emit(Opcode::Add);
    B.storeLocal(Acc);
    B.loadLocal(Acc);
    B.ret();
  }

  // expandByte(b, dict): decompression path, division-heavy.
  {
    FunctionBuilder &B = MB.functionBuilder(ExpandByte);
    uint32_t Bv = 0, Dict = 1;
    uint32_t V = B.allocLocal(), R = B.allocLocal();
    // v = dict[b & 255]
    B.loadLocal(Dict);
    B.loadLocal(Bv);
    B.constInt(255);
    B.emit(Opcode::And);
    B.emit(Opcode::Add);
    B.emit(Opcode::HLoad);
    B.storeLocal(V);
    // r = (b * v + 13) / (1 + (b & 3))
    B.loadLocal(Bv);
    B.loadLocal(V);
    B.emit(Opcode::Mul);
    B.constInt(13);
    B.emit(Opcode::Add);
    B.constInt(1);
    B.loadLocal(Bv);
    B.constInt(3);
    B.emit(Opcode::And);
    B.emit(Opcode::Add);
    B.emit(Opcode::Div);
    B.storeLocal(R);
    // dict[(b + 1) & 255] = r & 255
    B.loadLocal(Dict);
    B.loadLocal(Bv);
    B.constInt(1);
    B.emit(Opcode::Add);
    B.constInt(255);
    B.emit(Opcode::And);
    B.emit(Opcode::Add);
    B.loadLocal(R);
    B.constInt(255);
    B.emit(Opcode::And);
    B.emit(Opcode::HStore);
    B.loadLocal(R);
    B.constInt(1023);
    B.emit(Opcode::And);
    B.ret();
  }

  // flushBlock(acc): checksum mixing, a 64-iteration loop.
  {
    FunctionBuilder &B = MB.functionBuilder(FlushBlock);
    uint32_t Acc = 0;
    uint32_t J = B.allocLocal(), Sum = B.allocLocal(), Lim = B.allocLocal();
    B.constInt(64);
    B.storeLocal(Lim);
    B.constInt(0);
    B.storeLocal(Sum);
    emitForUp(B, J, 0, Lim, 1, [&] {
      // sum = (sum + ((acc >> (j & 15)) ^ j)) & 0xffffff
      B.loadLocal(Sum);
      B.loadLocal(Acc);
      B.loadLocal(J);
      B.constInt(15);
      B.emit(Opcode::And);
      B.emit(Opcode::Shr);
      B.loadLocal(J);
      B.emit(Opcode::Xor);
      B.emit(Opcode::Add);
      B.constInt(0xffffff);
      B.emit(Opcode::And);
      B.storeLocal(Sum);
    });
    B.loadLocal(Sum);
    B.ret();
  }

  // processBlock(dict, stateCell, level, decomp, count): the per-byte
  // codec loop.  The RNG state threads through a heap cell so the block
  // method can be re-invoked (and therefore re-optimized) per block.
  {
    FunctionBuilder &B = MB.functionBuilder(ProcessBlock);
    uint32_t Dict = 0, StateCell = 1, Level = 2, Decomp = 3, Count = 4;
    uint32_t State = B.allocLocal(), Acc = B.allocLocal(),
             I = B.allocLocal(), Byte = B.allocLocal();
    B.loadLocal(StateCell);
    B.emit(Opcode::HLoad);
    B.storeLocal(State);
    B.constInt(0);
    B.storeLocal(Acc);
    emitForUp(B, I, 0, Count, 1, [&] {
      emitLcgDraw(B, Lcg, State, 256);
      B.storeLocal(Byte);
      emitIfElse(
          B, [&] { B.loadLocal(Decomp); },
          [&] {
            B.loadLocal(Acc);
            B.loadLocal(Byte);
            B.loadLocal(Dict);
            B.call(ExpandByte);
            B.emit(Opcode::Add);
            B.storeLocal(Acc);
          },
          [&] {
            B.loadLocal(Acc);
            B.loadLocal(Byte);
            B.loadLocal(Level);
            B.loadLocal(Dict);
            B.call(CompressByte);
            B.emit(Opcode::Add);
            B.storeLocal(Acc);
          });
    });
    B.loadLocal(StateCell);
    B.loadLocal(State);
    B.emit(Opcode::HStore);
    B.loadLocal(Acc);
    B.ret();
  }

  // main(size, level, decomp): drive the codec block by block.
  {
    FunctionBuilder &B = MB.functionBuilder(Main);
    uint32_t Size = 0, Level = 1, Decomp = 2;
    uint32_t Dict = B.allocLocal(), StateCell = B.allocLocal(),
             Acc = B.allocLocal(), Done = B.allocLocal(),
             Count = B.allocLocal();
    B.constInt(256);
    B.emit(Opcode::NewArr);
    B.storeLocal(Dict);
    B.constInt(1);
    B.emit(Opcode::NewArr);
    B.storeLocal(StateCell);
    B.loadLocal(StateCell);
    B.constInt(88172645463325252LL);
    B.emit(Opcode::HStore);
    B.constInt(0);
    B.storeLocal(Acc);
    B.constInt(0);
    B.storeLocal(Done);
    emitWhile(
        B,
        [&] {
          B.loadLocal(Done);
          B.loadLocal(Size);
          B.emit(Opcode::Lt);
        },
        [&] {
          // count = min(4096, size - done)
          B.constInt(4096);
          B.loadLocal(Size);
          B.loadLocal(Done);
          B.emit(Opcode::Sub);
          B.emit(Opcode::Min);
          B.storeLocal(Count);
          B.loadLocal(Acc);
          B.loadLocal(Dict);
          B.loadLocal(StateCell);
          B.loadLocal(Level);
          B.loadLocal(Decomp);
          B.loadLocal(Count);
          B.call(ProcessBlock);
          B.emit(Opcode::Add);
          B.call(FlushBlock);
          B.storeLocal(Acc);
          B.loadLocal(Done);
          B.loadLocal(Count);
          B.emit(Opcode::Add);
          B.storeLocal(Done);
        });
    B.loadLocal(Acc);
    B.ret();
  }
  return finishModule(MB);
}

} // namespace

Workload detail::buildCompress(uint64_t Seed) {
  Workload W;
  W.Name = "Compress";
  W.Suite = "jvm98";
  W.Module = buildCompressModule();
  W.XiclSpec = "option  {name=-l; type=num; attr=val; default=1; has_arg=y}\n"
               "option  {name=-d; type=bin; attr=val; default=0; has_arg=n}\n"
               "operand {position=1; type=file; attr=fsize}\n";

  Rng R(Seed ^ 0xC0110001);
  for (int I = 0; I != 76; ++I) {
    InputCase C;
    // File sizes span two decades plus a long-run tail, so Fig. 9(b)'s
    // diminishing-benefit regime is represented.
    int64_t Size = I % 19 == 7 ? logUniform(R, 400000, 1500000)
                               : logUniform(R, 8000, 250000);
    int64_t Level = R.nextBool(0.3) ? 3 : 1;
    bool Decomp = R.nextBool(0.15);
    std::string File = formatString("input%02d.dat", I);
    C.CommandLine = formatString("compress%s%s %s",
                                 Level != 1 ? " -l 3" : "",
                                 Decomp ? " -d" : "", File.c_str());
    C.VmArgs = {Value::makeInt(Size), Value::makeInt(Level),
                Value::makeInt(Decomp ? 1 : 0)};
    xicl::FileInfo Info;
    Info.SizeBytes = static_cast<double>(Size);
    Info.Lines = static_cast<double>(Size / 40);
    C.Files.emplace_back(File, Info);
    W.Inputs.push_back(std::move(C));
  }
  return W;
}

//===----------------------------------------------------------------------===//
// Db: in-memory index with lookup/update/scan query mix.
// main(records, queries, mix, seed).
//===----------------------------------------------------------------------===//

namespace {

bc::Module buildDbModule() {
  ModuleBuilder MB;
  MethodId Main = MB.declareFunction("main", 4);
  MethodId Lcg = addLcgFunction(MB);
  MethodId BuildIndex = MB.declareFunction("buildIndex", 2);
  MethodId ProcessBatch = MB.declareFunction("processBatch", 5);
  MethodId BinSearch = MB.declareFunction("binSearch", 3);
  MethodId ScanRange = MB.declareFunction("scanRange", 3);
  MethodId UpdateRecord = MB.declareFunction("updateRecord", 3);

  // buildIndex(idx, records): sorted fill idx[i] = i*7 + 3.
  {
    FunctionBuilder &B = MB.functionBuilder(BuildIndex);
    uint32_t Idx = 0, Records = 1;
    uint32_t I = B.allocLocal();
    emitForUp(B, I, 0, Records, 1, [&] {
      B.loadLocal(Idx);
      B.loadLocal(I);
      B.emit(Opcode::Add);
      B.loadLocal(I);
      B.constInt(7);
      B.emit(Opcode::Mul);
      B.constInt(3);
      B.emit(Opcode::Add);
      B.emit(Opcode::HStore);
    });
    B.loadLocal(Records);
    B.ret();
  }

  // binSearch(idx, records, key): classic halving loop.
  {
    FunctionBuilder &B = MB.functionBuilder(BinSearch);
    uint32_t Idx = 0, Records = 1, Key = 2;
    uint32_t Lo = B.allocLocal(), Hi = B.allocLocal(), Mid = B.allocLocal(),
             V = B.allocLocal();
    B.constInt(0);
    B.storeLocal(Lo);
    B.loadLocal(Records);
    B.storeLocal(Hi);
    emitWhile(
        B,
        [&] {
          B.loadLocal(Lo);
          B.loadLocal(Hi);
          B.emit(Opcode::Lt);
        },
        [&] {
          // mid = (lo + hi) / 2; v = idx[mid]
          B.loadLocal(Lo);
          B.loadLocal(Hi);
          B.emit(Opcode::Add);
          B.constInt(2);
          B.emit(Opcode::Div);
          B.storeLocal(Mid);
          B.loadLocal(Idx);
          B.loadLocal(Mid);
          B.emit(Opcode::Add);
          B.emit(Opcode::HLoad);
          B.storeLocal(V);
          emitIfElse(
              B,
              [&] {
                B.loadLocal(V);
                B.loadLocal(Key);
                B.emit(Opcode::Lt);
              },
              [&] {
                B.loadLocal(Mid);
                B.constInt(1);
                B.emit(Opcode::Add);
                B.storeLocal(Lo);
              },
              [&] {
                B.loadLocal(Mid);
                B.storeLocal(Hi);
              });
        });
    B.loadLocal(Lo);
    B.ret();
  }

  // scanRange(idx, records, key): 128-record linear aggregation.
  {
    FunctionBuilder &B = MB.functionBuilder(ScanRange);
    uint32_t Idx = 0, Records = 1, Key = 2;
    uint32_t I = B.allocLocal(), Sum = B.allocLocal(), Start = B.allocLocal(),
             Lim = B.allocLocal();
    // start = key % max(1, records - 128)
    B.loadLocal(Key);
    B.loadLocal(Records);
    B.constInt(128);
    B.emit(Opcode::Sub);
    B.constInt(1);
    B.emit(Opcode::Max);
    B.emit(Opcode::Mod);
    B.emit(Opcode::Abs);
    B.storeLocal(Start);
    B.constInt(128);
    B.storeLocal(Lim);
    B.constInt(0);
    B.storeLocal(Sum);
    emitForUp(B, I, 0, Lim, 1, [&] {
      B.loadLocal(Sum);
      B.loadLocal(Idx);
      B.loadLocal(Start);
      B.emit(Opcode::Add);
      B.loadLocal(I);
      B.emit(Opcode::Add);
      B.emit(Opcode::HLoad);
      B.emit(Opcode::Add);
      B.storeLocal(Sum);
    });
    B.loadLocal(Sum);
    B.ret();
  }

  // updateRecord(idx, records, key): read-modify-write with division.
  {
    FunctionBuilder &B = MB.functionBuilder(UpdateRecord);
    uint32_t Idx = 0, Records = 1, Key = 2;
    uint32_t Pos = B.allocLocal(), V = B.allocLocal();
    B.loadLocal(Key);
    B.loadLocal(Records);
    B.emit(Opcode::Mod);
    B.emit(Opcode::Abs);
    B.storeLocal(Pos);
    B.loadLocal(Idx);
    B.loadLocal(Pos);
    B.emit(Opcode::Add);
    B.emit(Opcode::HLoad);
    B.storeLocal(V);
    // v = (v * 17 + key) / 3
    B.loadLocal(V);
    B.constInt(17);
    B.emit(Opcode::Mul);
    B.loadLocal(Key);
    B.emit(Opcode::Add);
    B.constInt(3);
    B.emit(Opcode::Div);
    B.storeLocal(V);
    B.loadLocal(Idx);
    B.loadLocal(Pos);
    B.emit(Opcode::Add);
    B.loadLocal(V);
    B.emit(Opcode::HStore);
    B.loadLocal(V);
    B.ret();
  }

  // processBatch(idx, records, stateCell, mix, count): one query batch.
  {
    FunctionBuilder &B = MB.functionBuilder(ProcessBatch);
    uint32_t Idx = 0, Records = 1, StateCell = 2, Mix = 3, Count = 4;
    uint32_t State = B.allocLocal(), Acc = B.allocLocal(),
             Q = B.allocLocal(), Key = B.allocLocal(), Sel = B.allocLocal();
    B.loadLocal(StateCell);
    B.emit(Opcode::HLoad);
    B.storeLocal(State);
    B.constInt(0);
    B.storeLocal(Acc);
    emitForUp(B, Q, 0, Count, 1, [&] {
      emitLcgDraw(B, Lcg, State, 1 << 20);
      B.storeLocal(Key);
      emitLcgDraw(B, Lcg, State, 100);
      B.storeLocal(Sel);
      emitIfElse(
          B,
          [&] {
            B.loadLocal(Sel);
            B.loadLocal(Mix);
            B.emit(Opcode::Lt);
          },
          [&] {
            B.loadLocal(Acc);
            B.loadLocal(Idx);
            B.loadLocal(Records);
            B.loadLocal(Key);
            B.call(UpdateRecord);
            B.emit(Opcode::Add);
            B.storeLocal(Acc);
          },
          [&] {
            emitIfElse(
                B,
                [&] {
                  B.loadLocal(Sel);
                  B.loadLocal(Mix);
                  B.constInt(10);
                  B.emit(Opcode::Add);
                  B.emit(Opcode::Lt);
                },
                [&] {
                  B.loadLocal(Acc);
                  B.loadLocal(Idx);
                  B.loadLocal(Records);
                  B.loadLocal(Key);
                  B.call(ScanRange);
                  B.emit(Opcode::Add);
                  B.storeLocal(Acc);
                },
                [&] {
                  B.loadLocal(Acc);
                  B.loadLocal(Idx);
                  B.loadLocal(Records);
                  B.loadLocal(Key);
                  B.call(BinSearch);
                  B.emit(Opcode::Add);
                  B.storeLocal(Acc);
                });
          });
    });
    B.loadLocal(StateCell);
    B.loadLocal(State);
    B.emit(Opcode::HStore);
    B.loadLocal(Acc);
    B.ret();
  }

  // main(records, queries, mix, seed): build the index, then run query
  // batches of 512 (so the batch method is re-invoked and re-optimized).
  {
    FunctionBuilder &B = MB.functionBuilder(Main);
    uint32_t Records = 0, Queries = 1, Mix = 2, Seed = 3;
    uint32_t Idx = B.allocLocal(), StateCell = B.allocLocal(),
             Acc = B.allocLocal(), Done = B.allocLocal(),
             Count = B.allocLocal();
    B.loadLocal(Records);
    B.emit(Opcode::NewArr);
    B.storeLocal(Idx);
    B.loadLocal(Idx);
    B.loadLocal(Records);
    B.call(BuildIndex);
    B.emit(Opcode::Pop);
    B.constInt(1);
    B.emit(Opcode::NewArr);
    B.storeLocal(StateCell);
    B.loadLocal(StateCell);
    B.loadLocal(Seed);
    B.emit(Opcode::HStore);
    B.constInt(0);
    B.storeLocal(Acc);
    B.constInt(0);
    B.storeLocal(Done);
    emitWhile(
        B,
        [&] {
          B.loadLocal(Done);
          B.loadLocal(Queries);
          B.emit(Opcode::Lt);
        },
        [&] {
          B.constInt(512);
          B.loadLocal(Queries);
          B.loadLocal(Done);
          B.emit(Opcode::Sub);
          B.emit(Opcode::Min);
          B.storeLocal(Count);
          B.loadLocal(Acc);
          B.loadLocal(Idx);
          B.loadLocal(Records);
          B.loadLocal(StateCell);
          B.loadLocal(Mix);
          B.loadLocal(Count);
          B.call(ProcessBatch);
          B.emit(Opcode::Add);
          B.storeLocal(Acc);
          B.loadLocal(Done);
          B.loadLocal(Count);
          B.emit(Opcode::Add);
          B.storeLocal(Done);
        });
    B.loadLocal(Acc);
    B.ret();
  }
  return finishModule(MB);
}

} // namespace

Workload detail::buildDb(uint64_t Seed) {
  Workload W;
  W.Name = "Db";
  W.Suite = "jvm98";
  W.Module = buildDbModule();
  // User-defined features: the sizes of the database and of the query
  // script (paper Table I).
  W.UserMethodAttrs = {"mdbsize", "mqueries"};
  W.XiclSpec = "option  {name=-m; type=num; attr=val; default=20; has_arg=y}\n"
               "operand {position=1; type=file; attr=mdbsize}\n"
               "operand {position=2; type=file; attr=mqueries}\n";

  Rng R(Seed ^ 0xDB000002);
  for (int I = 0; I != 60; ++I) {
    InputCase C;
    int64_t Records = logUniform(R, 2000, 120000);
    int64_t Queries = logUniform(R, 2000, 60000);
    int64_t Mix = R.nextInt(0, 3) * 15 + 5; // update share: 5/20/35/50%
    int64_t QSeed = R.nextInt(1, 1 << 30);
    std::string DbFile = formatString("base%02d.db", I);
    std::string QFile = formatString("q%02d.sql", I);
    C.CommandLine = formatString("db -m %lld %s %s",
                                 static_cast<long long>(Mix), DbFile.c_str(),
                                 QFile.c_str());
    C.VmArgs = {Value::makeInt(Records), Value::makeInt(Queries),
                Value::makeInt(Mix), Value::makeInt(QSeed)};
    xicl::FileInfo DbInfo;
    DbInfo.SizeBytes = static_cast<double>(Records * 64);
    DbInfo.Lines = static_cast<double>(Records);
    DbInfo.Attributes["records"] = static_cast<double>(Records);
    xicl::FileInfo QInfo;
    QInfo.SizeBytes = static_cast<double>(Queries * 24);
    QInfo.Lines = static_cast<double>(Queries);
    QInfo.Attributes["queries"] = static_cast<double>(Queries);
    C.Files.emplace_back(DbFile, DbInfo);
    C.Files.emplace_back(QFile, QInfo);
    W.Inputs.push_back(std::move(C));
  }
  return W;
}

//===----------------------------------------------------------------------===//
// Mtrt: ray tracer.  main(w, h, depth, aa, nobj).
//===----------------------------------------------------------------------===//

namespace {

bc::Module buildMtrtModule() {
  ModuleBuilder MB;
  MethodId Main = MB.declareFunction("main", 5);
  MethodId InitScene = MB.declareFunction("initScene", 2);
  MethodId RenderRow = MB.declareFunction("renderRow", 6);
  MethodId TracePixel = MB.declareFunction("tracePixel", 6);
  MethodId IntersectScene = MB.declareFunction("intersectScene", 4);
  MethodId Shade = MB.declareFunction("shade", 3);
  MethodId Reflect = MB.declareFunction("reflect", 3);
  MethodId SamplePixel = MB.declareFunction("samplePixel", 4);

  // initScene(spheres, nobj): fill center/radius table.
  {
    FunctionBuilder &B = MB.functionBuilder(InitScene);
    uint32_t Spheres = 0, NObj = 1;
    uint32_t I = B.allocLocal(), Base = B.allocLocal();
    emitForUp(B, I, 0, NObj, 1, [&] {
      B.loadLocal(Spheres);
      B.loadLocal(I);
      B.constInt(4);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Add);
      B.storeLocal(Base);
      // cx = sin(i), cy = cos(i * 2), cz = 3 + i % 5, r = 1 + (i & 3)
      B.loadLocal(Base);
      B.loadLocal(I);
      B.emit(Opcode::Sin);
      B.emit(Opcode::HStore);
      B.loadLocal(Base);
      B.constInt(1);
      B.emit(Opcode::Add);
      B.loadLocal(I);
      B.constInt(2);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Cos);
      B.emit(Opcode::HStore);
      B.loadLocal(Base);
      B.constInt(2);
      B.emit(Opcode::Add);
      B.loadLocal(I);
      B.constInt(5);
      B.emit(Opcode::Mod);
      B.constInt(3);
      B.emit(Opcode::Add);
      B.emit(Opcode::HStore);
      B.loadLocal(Base);
      B.constInt(3);
      B.emit(Opcode::Add);
      B.loadLocal(I);
      B.constInt(3);
      B.emit(Opcode::And);
      B.constInt(1);
      B.emit(Opcode::Add);
      B.emit(Opcode::HStore);
    });
    B.loadLocal(NObj);
    B.ret();
  }

  // intersectScene(x, y, spheres, nobj): per-object quadratic test.
  {
    FunctionBuilder &B = MB.functionBuilder(IntersectScene);
    uint32_t X = 0, Y = 1, Spheres = 2, NObj = 3;
    uint32_t I = B.allocLocal(), Base = B.allocLocal(), Dx = B.allocLocal(),
             Dy = B.allocLocal(), T = B.allocLocal(), Disc = B.allocLocal(),
             DirX = B.allocLocal(), DirY = B.allocLocal();
    // Ray direction from pixel: loop-invariant inside the object loop —
    // O2's LICM hoists the sin/cos had they been inside; here they feed it.
    B.loadLocal(X);
    B.constFloat(0.017);
    B.emit(Opcode::Mul);
    B.emit(Opcode::Sin);
    B.storeLocal(DirX);
    B.loadLocal(Y);
    B.constFloat(0.013);
    B.emit(Opcode::Mul);
    B.emit(Opcode::Cos);
    B.storeLocal(DirY);
    B.constInt(0);
    B.storeLocal(T);
    emitForUp(B, I, 0, NObj, 1, [&] {
      B.loadLocal(Spheres);
      B.loadLocal(I);
      B.constInt(4);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Add);
      B.storeLocal(Base);
      // dx = cx - dirx; dy = cy - diry
      B.loadLocal(Base);
      B.emit(Opcode::HLoad);
      B.loadLocal(DirX);
      B.emit(Opcode::Sub);
      B.storeLocal(Dx);
      B.loadLocal(Base);
      B.constInt(1);
      B.emit(Opcode::Add);
      B.emit(Opcode::HLoad);
      B.loadLocal(DirY);
      B.emit(Opcode::Sub);
      B.storeLocal(Dy);
      // disc = dx*dx + dy*dy - r*r
      B.loadLocal(Dx);
      B.loadLocal(Dx);
      B.emit(Opcode::Mul);
      B.loadLocal(Dy);
      B.loadLocal(Dy);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Add);
      B.loadLocal(Base);
      B.constInt(3);
      B.emit(Opcode::Add);
      B.emit(Opcode::HLoad);
      B.emit(Opcode::Dup);
      B.emit(Opcode::Mul);
      B.emit(Opcode::Sub);
      B.storeLocal(Disc);
      emitIfElse(
          B,
          [&] {
            B.loadLocal(Disc);
            B.constInt(0);
            B.emit(Opcode::Gt);
          },
          [&] {
            B.loadLocal(T);
            B.loadLocal(Disc);
            B.emit(Opcode::Sqrt);
            B.emit(Opcode::Add);
            B.storeLocal(T);
          },
          [&] {
            B.loadLocal(T);
            B.constInt(1);
            B.emit(Opcode::Add);
            B.storeLocal(T);
          });
    });
    B.loadLocal(T);
    B.emit(Opcode::F2I);
    B.ret();
  }

  // shade(t, x, y): lighting model with sqrt/cos.
  {
    FunctionBuilder &B = MB.functionBuilder(Shade);
    uint32_t T = 0, X = 1, Y = 2;
    uint32_t L = B.allocLocal();
    // l = sqrt(abs(t) + 1) * 8 + cos(x * 0.05) * 4 + (y & 15)
    B.loadLocal(T);
    B.emit(Opcode::Abs);
    B.constInt(1);
    B.emit(Opcode::Add);
    B.emit(Opcode::Sqrt);
    B.constInt(8);
    B.emit(Opcode::Mul);
    B.loadLocal(X);
    B.constFloat(0.05);
    B.emit(Opcode::Mul);
    B.emit(Opcode::Cos);
    B.constInt(4);
    B.emit(Opcode::Mul);
    B.emit(Opcode::Add);
    B.loadLocal(Y);
    B.constInt(15);
    B.emit(Opcode::And);
    B.emit(Opcode::I2F);
    B.emit(Opcode::Add);
    B.storeLocal(L);
    B.loadLocal(L);
    B.emit(Opcode::F2I);
    B.ret();
  }

  // reflect(t, spheres, nobj): secondary ray.
  {
    FunctionBuilder &B = MB.functionBuilder(Reflect);
    uint32_t T = 0, Spheres = 1, NObj = 2;
    uint32_t R2 = B.allocLocal();
    B.loadLocal(T);
    B.constInt(3);
    B.emit(Opcode::Mul);
    B.constInt(255);
    B.emit(Opcode::And);
    B.loadLocal(T);
    B.constInt(7);
    B.emit(Opcode::And);
    B.loadLocal(Spheres);
    B.loadLocal(NObj);
    B.call(IntersectScene);
    B.storeLocal(R2);
    B.loadLocal(R2);
    B.constInt(2);
    B.emit(Opcode::Div);
    B.ret();
  }

  // samplePixel(x, y, spheres, nobj): antialiasing ray.
  {
    FunctionBuilder &B = MB.functionBuilder(SamplePixel);
    uint32_t X = 0, Y = 1, Spheres = 2, NObj = 3;
    uint32_t S = B.allocLocal();
    B.loadLocal(X);
    B.constInt(1);
    B.emit(Opcode::Add);
    B.loadLocal(Y);
    B.constInt(1);
    B.emit(Opcode::Add);
    B.loadLocal(Spheres);
    B.loadLocal(NObj);
    B.call(IntersectScene);
    B.storeLocal(S);
    B.loadLocal(S);
    B.constInt(3);
    B.emit(Opcode::Div);
    B.ret();
  }

  // tracePixel(x, y, spheres, nobj, depth, aa).
  {
    FunctionBuilder &B = MB.functionBuilder(TracePixel);
    uint32_t X = 0, Y = 1, Spheres = 2, NObj = 3, Depth = 4, Aa = 5;
    uint32_t T = B.allocLocal(), C = B.allocLocal(), D = B.allocLocal(),
             A = B.allocLocal();
    B.loadLocal(X);
    B.loadLocal(Y);
    B.loadLocal(Spheres);
    B.loadLocal(NObj);
    B.call(IntersectScene);
    B.storeLocal(T);
    B.loadLocal(T);
    B.loadLocal(X);
    B.loadLocal(Y);
    B.call(Shade);
    B.storeLocal(C);
    // Reflections: depth-1 bounces.
    B.loadLocal(Depth);
    B.storeLocal(D);
    emitWhile(
        B,
        [&] {
          B.loadLocal(D);
          B.constInt(1);
          B.emit(Opcode::Gt);
        },
        [&] {
          B.loadLocal(C);
          B.loadLocal(T);
          B.loadLocal(D);
          B.emit(Opcode::Add);
          B.loadLocal(Spheres);
          B.loadLocal(NObj);
          B.call(Reflect);
          B.emit(Opcode::Add);
          B.storeLocal(C);
          B.incrementLocal(D, -1);
        });
    // Antialiasing samples.
    B.loadLocal(Aa);
    B.storeLocal(A);
    emitWhile(
        B,
        [&] {
          B.loadLocal(A);
          B.constInt(0);
          B.emit(Opcode::Gt);
        },
        [&] {
          B.loadLocal(C);
          B.loadLocal(X);
          B.loadLocal(A);
          B.emit(Opcode::Add);
          B.loadLocal(Y);
          B.loadLocal(Spheres);
          B.loadLocal(NObj);
          B.call(SamplePixel);
          B.emit(Opcode::Add);
          B.storeLocal(C);
          B.incrementLocal(A, -1);
        });
    B.loadLocal(C);
    B.ret();
  }

  // renderRow(y, w, spheres, nobj, depth, aa): one scan line.
  {
    FunctionBuilder &B = MB.functionBuilder(RenderRow);
    uint32_t Y = 0, W = 1, Spheres = 2, NObj = 3, Depth = 4, Aa = 5;
    uint32_t X = B.allocLocal(), Acc = B.allocLocal();
    B.constInt(0);
    B.storeLocal(Acc);
    emitForUp(B, X, 0, W, 1, [&] {
      B.loadLocal(Acc);
      B.loadLocal(X);
      B.loadLocal(Y);
      B.loadLocal(Spheres);
      B.loadLocal(NObj);
      B.loadLocal(Depth);
      B.loadLocal(Aa);
      B.call(TracePixel);
      B.emit(Opcode::Add);
      B.constInt(0x7fffffff);
      B.emit(Opcode::And);
      B.storeLocal(Acc);
    });
    B.loadLocal(Acc);
    B.ret();
  }

  // main(w, h, depth, aa, nobj): render row by row.
  {
    FunctionBuilder &B = MB.functionBuilder(Main);
    uint32_t W = 0, H = 1, Depth = 2, Aa = 3, NObj = 4;
    uint32_t Spheres = B.allocLocal(), Acc = B.allocLocal(),
             Y = B.allocLocal();
    B.loadLocal(NObj);
    B.constInt(4);
    B.emit(Opcode::Mul);
    B.emit(Opcode::NewArr);
    B.storeLocal(Spheres);
    B.loadLocal(Spheres);
    B.loadLocal(NObj);
    B.call(InitScene);
    B.emit(Opcode::Pop);
    B.constInt(0);
    B.storeLocal(Acc);
    emitForUp(B, Y, 0, H, 1, [&] {
      B.loadLocal(Acc);
      B.loadLocal(Y);
      B.loadLocal(W);
      B.loadLocal(Spheres);
      B.loadLocal(NObj);
      B.loadLocal(Depth);
      B.loadLocal(Aa);
      B.call(RenderRow);
      B.emit(Opcode::Add);
      B.constInt(0x7fffffff);
      B.emit(Opcode::And);
      B.storeLocal(Acc);
    });
    B.loadLocal(Acc);
    B.ret();
  }
  return finishModule(MB);
}

} // namespace

Workload detail::buildMtrt(uint64_t Seed) {
  Workload W;
  W.Name = "Mtrt";
  W.Suite = "jvm98";
  W.Module = buildMtrtModule();
  W.XiclSpec =
      "option  {name=-w; type=num; attr=val; default=64; has_arg=y}\n"
      "option  {name=-h; type=num; attr=val; default=64; has_arg=y}\n"
      "option  {name=-d:--depth; type=num; attr=val; default=1; has_arg=y}\n"
      "option  {name=-aa; type=num; attr=val; default=0; has_arg=y}\n"
      "operand {position=1; type=str; attr=val}\n";

  Rng R(Seed ^ 0x317A7003);
  const char *Scenes[] = {"small.scene", "medium.scene", "large.scene",
                          "huge.scene"};
  const int64_t SceneObjects[] = {4, 8, 16, 32};
  for (int I = 0; I != 92; ++I) {
    InputCase C;
    int64_t Wd = logUniform(R, 40, 200);
    int64_t Ht = logUniform(R, 40, 200);
    int64_t Depth = R.nextInt(1, 4);
    int64_t Aa = R.nextBool(0.4) ? R.nextInt(1, 2) : 0;
    int Scene = static_cast<int>(R.nextInt(0, 3));
    C.CommandLine = formatString(
        "mtrt -w %lld -h %lld -d %lld -aa %lld %s",
        static_cast<long long>(Wd), static_cast<long long>(Ht),
        static_cast<long long>(Depth), static_cast<long long>(Aa),
        Scenes[Scene]);
    C.VmArgs = {Value::makeInt(Wd), Value::makeInt(Ht), Value::makeInt(Depth),
                Value::makeInt(Aa), Value::makeInt(SceneObjects[Scene])};
    W.Inputs.push_back(std::move(C));
  }
  return W;
}
