//===- workloads/Kernels.h - Bytecode emission helpers --------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured-control-flow helpers over FunctionBuilder, shared by all
/// workload analogues: counted loops, if/else, and common kernel shapes
/// (LCG random numbers, array fills).  Loop helpers emit initialization
/// before the header, so headers are never the function's entry block
/// (which also keeps them LICM-eligible).
///
//===----------------------------------------------------------------------===//

#ifndef EVM_WORKLOADS_KERNELS_H
#define EVM_WORKLOADS_KERNELS_H

#include "bytecode/Builder.h"

#include <functional>

namespace evm {
namespace wl {

using EmitFn = std::function<void()>;

/// Emits `for (Var = Start; Var < Limit; Var += Step) { Body(); }`.
/// \p Limit is a local slot holding the bound.
void emitForUp(bc::FunctionBuilder &B, uint32_t Var, int64_t Start,
               uint32_t Limit, int64_t Step, const EmitFn &Body);

/// Emits `while (<Cond leaves a value on the stack>) { Body(); }`.
void emitWhile(bc::FunctionBuilder &B, const EmitFn &Cond, const EmitFn &Body);

/// Emits `if (<Cond leaves a value>) { Then(); } else { Else(); }`.
/// Both branches must leave the stack empty.  \p Else may be null.
void emitIfElse(bc::FunctionBuilder &B, const EmitFn &Cond, const EmitFn &Then,
                const EmitFn &Else = nullptr);

/// Declares `lcg(state) -> state'`, a 64-bit linear congruential step, and
/// returns its MethodId.  Workloads use it for deterministic in-program
/// randomness.
bc::MethodId addLcgFunction(bc::ModuleBuilder &MB);

/// Emits `Dst = lcg(Dst)` followed by pushing `abs(Dst) % Range` onto the
/// stack (Range is an immediate).
void emitLcgDraw(bc::FunctionBuilder &B, bc::MethodId Lcg, uint32_t StateVar,
                 int64_t Range);

} // namespace wl
} // namespace evm

#endif // EVM_WORKLOADS_KERNELS_H
