//===- workloads/GenSpec.h - Open-world workload generator parameters -----==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parameter block of the open-world workload generator
/// (workloads/Generator.h): a seeded, fully deterministic description of a
/// synthetic application *and* its input distribution.  Specs have a
/// canonical textual form — comma-separated key=value pairs — accepted by
/// `evm_cli --gen-workload` and by bench_openworld:
///
/// \code
///   seed=7,hot=4,cold=3,depth=3,fanout=3,loops=2,inputs=16,runs=24,
///   minwork=64,maxwork=4096,coupling=1.0,drift=flip,driftat=0.5,
///   scalea=1,scaleb=16
/// \endcode
///
/// Every key is optional; omitted keys keep their defaults.  renderGenSpec
/// emits the canonical order above, so parse(render(S)) == S and rendered
/// specs are usable as map keys.
///
/// Knob semantics (see Generator.h for how each is realized):
///
///   hot / cold      hot-set size and cold-method count
///   depth / fanout  call-graph shape: longest call chain from main and
///                   maximum distinct callees per method
///   loops           loop-nest depth inside hot kernels
///   minwork/maxwork per-input work factor range (log-uniform)
///   coupling        input-feature fidelity in [0,1]: 1.0 means the
///                   command-line-visible features fully determine run
///                   behavior; lower values mix in a hidden per-input
///                   component the predictor cannot see
///   drift           input-distribution drift across the run stream:
///                   none | flip (phase change at driftat flipping the
///                   feature->best-level mapping via the scale multiplier)
///                   | walk (gradual covariate shift over the work range)
///   scalea/scaleb   work multipliers of the pre-/post-drift phases
///
//======---------------------------------------------------------------------==//

#ifndef EVM_WORKLOADS_GENSPEC_H
#define EVM_WORKLOADS_GENSPEC_H

#include "support/Error.h"

#include <cstdint>
#include <string>

namespace evm {
namespace wl {

/// Input-distribution drift across the generated run stream.
enum class DriftKind {
  None, ///< stationary: every run draws uniformly from the full input set
  Flip, ///< phase change: runs before driftat draw phase-A inputs
        ///< (work scale scalea), later runs draw phase-B inputs (scaleb)
  Walk, ///< gradual covariate shift: the drawn work sizes slide from the
        ///< bottom of the range to the top across the stream
};

const char *driftKindName(DriftKind K);

/// Deterministic description of one generated application + input stream.
struct GenSpec {
  uint64_t Seed = 1;
  int HotMethods = 4;    ///< hot kernels whose run time scales with work
  int ColdMethods = 3;   ///< constant-cost methods (call-graph filler)
  int CallDepth = 3;     ///< longest call chain from main, in edges (>= 2)
  int FanOut = 3;        ///< maximum distinct callees of any method (>= 2)
  int LoopDepth = 2;     ///< loop-nest depth inside hot kernels (>= 1)
  size_t NumInputs = 16; ///< distinct inputs in the workload's input set
  size_t NumRuns = 24;   ///< recommended production-run stream length
  int64_t MinWork = 64;  ///< smallest per-input work factor
  int64_t MaxWork = 4096;
  double Coupling = 1.0; ///< feature->work fidelity in [0,1]
  DriftKind Drift = DriftKind::None;
  double DriftAt = 0.5;  ///< phase boundary as a fraction of the stream
  int64_t ScaleA = 1;    ///< phase-A work multiplier
  int64_t ScaleB = 16;   ///< phase-B work multiplier (flip drift only)

  bool operator==(const GenSpec &O) const;
};

/// Parses the comma-separated key=value form.  Unknown keys, malformed
/// values, and constraint violations (see validateGenSpec) are errors.
ErrorOr<GenSpec> parseGenSpec(const std::string &Text);

/// Canonical textual form; parse(render(S)) == S.
std::string renderGenSpec(const GenSpec &Spec);

/// Checks the structural constraints the generator needs:
///   hot >= 1, cold >= 0, depth >= 2, 2 <= fanout <= hot+cold, loops >= 1,
///   inputs >= 2, runs >= 1, 0 < minwork <= maxwork, coupling in [0,1],
///   driftat in (0,1), scales >= 1, and enough leaf call sites to reach
///   every hot/cold method: (depth-1)*(fanout-1) + fanout >= hot+cold.
/// Returns an empty-message Error on success.
Error validateGenSpec(const GenSpec &Spec);

} // namespace wl
} // namespace evm

#endif // EVM_WORKLOADS_GENSPEC_H
