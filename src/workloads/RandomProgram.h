//===- workloads/RandomProgram.h - Seeded random MiniVM program core ------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random-but-well-formed MiniVM modules for property testing and
/// for the open-world workload generator: programs are built from
/// *statements* (assignments, heap loads/stores, bounded loops, if/else,
/// helper calls), so the evaluation stack is empty at every branch edge by
/// construction — exactly the verifier's empty-stack block-boundary
/// discipline — and every loop runs on a dedicated bounded counter, so all
/// generated programs terminate.
///
/// Two op regimes, selected by RandomProgramOptions::AllowTraps:
///
///   * Traps allowed (the differential fuzzer's mode): integer division by
///     zero and bitwise ops on floats may occur; trap behavior is part of
///     the equivalence property being tested.
///   * Trap-free (the workload generator's mode): expressions stay in
///     integer arithmetic drawn from a pool with no trapping combination,
///     so generated *workloads* always run to completion (the scenario
///     harness treats a trap as a hard failure).
///
/// Heap addresses are folded into the module's own array via
/// `abs(x mod size)`, so heap traffic is heavy but in-bounds; main finishes
/// with a checksum loop over the array so heap effects feed the returned
/// value.
///
/// This header lives in src/workloads (not tests/) because the open-world
/// generator builds on the same statement machinery; tests reach it through
/// the thin tests/RandomModule.h shim.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_WORKLOADS_RANDOMPROGRAM_H
#define EVM_WORKLOADS_RANDOMPROGRAM_H

#include "bytecode/Builder.h"
#include "bytecode/Module.h"
#include "support/Rng.h"

#include <vector>

namespace evm {
namespace wl {

struct RandomProgramOptions {
  int NumHelpers = 2;      ///< leaf helper functions callable from main
  int NumScratchLocals = 4;
  int MaxStmtsPerBlock = 5;
  int MaxBlockDepth = 2;   ///< nesting of if/while statements
  int MaxExprDepth = 3;
  int64_t MaxLoopBound = 25;
  int64_t HeapSize = 16;   ///< array allocated by main; all addresses land
                           ///< inside it
  /// Whether trapping ops (Div/Mod/bitwise on floats, float constants) may
  /// appear.  The differential fuzzer wants them; generated workloads must
  /// not trap, so the open-world generator turns them off.
  bool AllowTraps = true;
};

namespace rpdetail {

/// Emits a random expression tree that leaves exactly one value on the
/// stack.  \p Readable lists the local slots the expression may load.
inline void emitExpr(bc::FunctionBuilder &F, Rng &R,
                     const std::vector<uint32_t> &Readable, int Depth,
                     const RandomProgramOptions &O) {
  using bc::Opcode;
  // Leaves: small constants (biased to ints) and local reads.
  if (Depth <= 0 || R.nextBool(0.35)) {
    switch (R.nextInt(0, 3)) {
    case 0:
      F.constInt(R.nextInt(-8, 8));
      break;
    case 1:
      if (O.AllowTraps)
        F.constFloat(static_cast<double>(R.nextInt(-40, 40)) / 8.0);
      else
        F.constInt(R.nextInt(-40, 40));
      break;
    default:
      F.loadLocal(Readable[static_cast<size_t>(R.next() % Readable.size())]);
      break;
    }
    return;
  }
  if (R.nextBool(0.25)) {
    // Unary.
    emitExpr(F, R, Readable, Depth - 1, O);
    static const Opcode Unaries[] = {Opcode::Neg, Opcode::Not, Opcode::Abs,
                                     Opcode::I2F, Opcode::F2I, Opcode::Sqrt,
                                     Opcode::Sin, Opcode::Cos, Opcode::Floor};
    // The trap-free pool keeps values integral: no I2F (floats would then
    // flow into bitwise ops) and no Sqrt (irrational floats).
    static const Opcode SafeUnaries[] = {Opcode::Neg, Opcode::Not,
                                         Opcode::Abs};
    if (O.AllowTraps)
      F.emit(Unaries[R.next() % (sizeof(Unaries) / sizeof(Unaries[0]))]);
    else
      F.emit(SafeUnaries[R.next() %
                         (sizeof(SafeUnaries) / sizeof(SafeUnaries[0]))]);
    return;
  }
  // Binary.  Weights favor non-trapping arithmetic; division, modulo and
  // the integer-only bitwise ops appear occasionally so trap parity between
  // the tiers stays covered.
  emitExpr(F, R, Readable, Depth - 1, O);
  emitExpr(F, R, Readable, Depth - 1, O);
  static const Opcode Common[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                  Opcode::Min, Opcode::Max, Opcode::Eq,
                                  Opcode::Ne,  Opcode::Lt,  Opcode::Le,
                                  Opcode::Gt,  Opcode::Ge};
  static const Opcode Rare[] = {Opcode::Div, Opcode::Mod, Opcode::And,
                                Opcode::Or,  Opcode::Xor, Opcode::Shl,
                                Opcode::Shr};
  // With traps disabled every operand is an integer, so the bitwise ops are
  // safe; Div/Mod (by a possibly-zero expression) and shifts are not drawn.
  static const Opcode SafeRare[] = {Opcode::And, Opcode::Or, Opcode::Xor};
  if (R.nextBool(0.85))
    F.emit(Common[R.next() % (sizeof(Common) / sizeof(Common[0]))]);
  else if (O.AllowTraps)
    F.emit(Rare[R.next() % (sizeof(Rare) / sizeof(Rare[0]))]);
  else
    F.emit(SafeRare[R.next() % (sizeof(SafeRare) / sizeof(SafeRare[0]))]);
}

/// Emits `abs(expr mod HeapSize) + base` — an always-in-bounds heap address.
inline void emitHeapAddr(bc::FunctionBuilder &F, Rng &R,
                         const std::vector<uint32_t> &Readable,
                         uint32_t BaseLocal, const RandomProgramOptions &O) {
  emitExpr(F, R, Readable, 1, O);
  F.constInt(O.HeapSize);
  F.emit(bc::Opcode::Mod);
  F.emit(bc::Opcode::Abs);
  F.emit(bc::Opcode::Floor);
  F.loadLocal(BaseLocal);
  F.emit(bc::Opcode::Add);
}

struct StmtContext {
  std::vector<uint32_t> Scratch;  ///< writable locals
  std::vector<uint32_t> Readable; ///< Scratch + params
  uint32_t HeapBaseLocal = 0;     ///< 0 means "no heap access here"
  bool HasHeap = false;
  std::vector<std::pair<bc::MethodId, uint32_t>> Callees; ///< (id, arity)
};

inline void emitStmts(bc::FunctionBuilder &F, Rng &R, const StmtContext &Ctx,
                      const RandomProgramOptions &O, int Depth);

/// One random statement; the stack is empty before and after.
inline void emitStmt(bc::FunctionBuilder &F, Rng &R, const StmtContext &Ctx,
                     const RandomProgramOptions &O, int Depth) {
  uint32_t Target =
      Ctx.Scratch[static_cast<size_t>(R.next() % Ctx.Scratch.size())];
  int Kind = static_cast<int>(R.nextInt(0, 9));
  // Nested control flow and heap traffic only where allowed.
  if (Depth >= O.MaxBlockDepth && Kind >= 6)
    Kind = static_cast<int>(R.nextInt(0, 5));
  if (!Ctx.HasHeap && (Kind == 4 || Kind == 5))
    Kind = 0;
  if (Ctx.Callees.empty() && Kind == 3)
    Kind = 1;

  switch (Kind) {
  case 0:
  case 1:
  case 2: { // local = expr
    emitExpr(F, R, Ctx.Readable, O.MaxExprDepth, O);
    F.storeLocal(Target);
    break;
  }
  case 3: { // local = helper(args...)
    const auto &[Callee, Arity] =
        Ctx.Callees[static_cast<size_t>(R.next() % Ctx.Callees.size())];
    for (uint32_t A = 0; A != Arity; ++A)
      emitExpr(F, R, Ctx.Readable, 2, O);
    F.call(Callee);
    F.storeLocal(Target);
    break;
  }
  case 4: { // heap[addr] = expr
    emitHeapAddr(F, R, Ctx.Readable, Ctx.HeapBaseLocal, O);
    emitExpr(F, R, Ctx.Readable, 2, O);
    F.emit(bc::Opcode::HStore);
    break;
  }
  case 5: { // local = heap[addr]
    emitHeapAddr(F, R, Ctx.Readable, Ctx.HeapBaseLocal, O);
    F.emit(bc::Opcode::HLoad);
    F.storeLocal(Target);
    break;
  }
  case 6:
  case 7: { // if (expr) { ... } [else { ... }]
    emitExpr(F, R, Ctx.Readable, 2, O);
    bc::FunctionBuilder::Label Else = F.makeLabel();
    bc::FunctionBuilder::Label End = F.makeLabel();
    F.brFalse(Else);
    emitStmts(F, R, Ctx, O, Depth + 1);
    F.br(End);
    F.bind(Else);
    if (R.nextBool(0.6))
      emitStmts(F, R, Ctx, O, Depth + 1);
    F.bind(End);
    break;
  }
  default: { // bounded counting loop
    uint32_t Counter = F.allocLocal();
    int64_t Bound = R.nextInt(1, O.MaxLoopBound);
    F.constInt(0);
    F.storeLocal(Counter);
    bc::FunctionBuilder::Label Head = F.makeLabel();
    bc::FunctionBuilder::Label Exit = F.makeLabel();
    F.bind(Head);
    F.loadLocal(Counter);
    F.constInt(Bound);
    F.emit(bc::Opcode::Lt);
    F.brFalse(Exit);
    emitStmts(F, R, Ctx, O, Depth + 1);
    F.incrementLocal(Counter, 1);
    F.br(Head);
    F.bind(Exit);
    break;
  }
  }
}

inline void emitStmts(bc::FunctionBuilder &F, Rng &R, const StmtContext &Ctx,
                      const RandomProgramOptions &O, int Depth) {
  int N = static_cast<int>(R.nextInt(1, O.MaxStmtsPerBlock));
  for (int I = 0; I != N; ++I)
    emitStmt(F, R, Ctx, O, Depth);
}

} // namespace rpdetail

/// Generates a random module: `main(1)` (heap array + statements + a heap
/// checksum loop feeding the return value) plus NumHelpers leaf functions.
/// The module builder verifies the result; generation is deterministic in
/// \p Seed.
inline ErrorOr<bc::Module>
generateRandomProgram(uint64_t Seed,
                      const RandomProgramOptions &O = RandomProgramOptions()) {
  Rng R(Seed);
  bc::ModuleBuilder MB;
  bc::MethodId MainId = MB.declareFunction("main", 1);
  std::vector<std::pair<bc::MethodId, uint32_t>> Helpers;
  for (int H = 0; H != O.NumHelpers; ++H) {
    uint32_t Arity = static_cast<uint32_t>(R.nextInt(1, 2));
    Helpers.push_back(
        {MB.declareFunction("helper" + std::to_string(H), Arity), Arity});
  }

  // Leaf helpers: pure arithmetic over params and scratch locals (no heap,
  // no calls — termination and verifier-cleanliness by construction).
  for (const auto &[Id, Arity] : Helpers) {
    bc::FunctionBuilder &F = MB.functionBuilder(Id);
    rpdetail::StmtContext Ctx;
    for (uint32_t P = 0; P != Arity; ++P)
      Ctx.Readable.push_back(P);
    for (int S = 0; S != 2; ++S) {
      uint32_t L = F.allocLocal();
      Ctx.Scratch.push_back(L);
      Ctx.Readable.push_back(L);
    }
    RandomProgramOptions HelperOpts = O;
    HelperOpts.MaxBlockDepth = 1; // ifs, no loops: keep helpers cheap
    rpdetail::emitStmts(F, R, Ctx, HelperOpts, /*Depth=*/1);
    rpdetail::emitExpr(F, R, Ctx.Readable, O.MaxExprDepth, O);
    F.ret();
  }

  {
    bc::FunctionBuilder &F = MB.functionBuilder(MainId);
    rpdetail::StmtContext Ctx;
    Ctx.Readable.push_back(0); // the input parameter
    for (int S = 0; S != O.NumScratchLocals; ++S) {
      uint32_t L = F.allocLocal();
      Ctx.Scratch.push_back(L);
      Ctx.Readable.push_back(L);
    }
    uint32_t Base = F.allocLocal();
    F.constInt(O.HeapSize);
    F.emit(bc::Opcode::NewArr);
    F.storeLocal(Base);
    Ctx.HeapBaseLocal = Base;
    Ctx.HasHeap = true;
    Ctx.Callees = Helpers;

    rpdetail::emitStmts(F, R, Ctx, O, /*Depth=*/0);

    // Checksum loop: acc = sum(heap[base + i]) so every heap store above is
    // observable in the returned value.
    uint32_t Acc = F.allocLocal();
    uint32_t I = F.allocLocal();
    F.constInt(0);
    F.storeLocal(Acc);
    F.constInt(0);
    F.storeLocal(I);
    bc::FunctionBuilder::Label Head = F.makeLabel();
    bc::FunctionBuilder::Label Exit = F.makeLabel();
    F.bind(Head);
    F.loadLocal(I);
    F.constInt(O.HeapSize);
    F.emit(bc::Opcode::Lt);
    F.brFalse(Exit);
    F.loadLocal(Acc);
    F.loadLocal(Base);
    F.loadLocal(I);
    F.emit(bc::Opcode::Add);
    F.emit(bc::Opcode::HLoad);
    F.emit(bc::Opcode::Add);
    F.storeLocal(Acc);
    F.incrementLocal(I, 1);
    F.br(Head);
    F.bind(Exit);

    // result = checksum combined with one last expression over the locals.
    F.loadLocal(Acc);
    rpdetail::emitExpr(F, R, Ctx.Readable, 2, O);
    F.emit(bc::Opcode::Add);
    F.ret();
  }

  return MB.build();
}

} // namespace wl
} // namespace evm

#endif // EVM_WORKLOADS_RANDOMPROGRAM_H
