//===- workloads/Generator.h - Open-world synthetic workload generator ----==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The open-world workload generator: turns a GenSpec into a complete,
/// verifier-clean Workload — a synthetic application plus its input set,
/// XICL specification, and a drift-aware run order — so the learning
/// pipeline can be stressed on hundreds of applications the 11 hand-built
/// paper analogues never cover.
///
/// Structure of a generated application (all deterministic in the seed):
///
///   * main(size, scale, jitter) computes work = max(1, size*scale+jitter)
///     and roots a call *spine* main -> t1 -> ... -> t(depth-1), realizing
///     the spec's call-graph depth exactly.
///   * Each spine node calls fanout-1 (the last: fanout) leaf methods drawn
///     round-robin from the leaf pool, realizing the spec's maximum
///     fan-out exactly and reaching every leaf.
///   * The leaf pool is `hot` kernels — loop nests of the spec'd depth
///     whose iteration counts scale with work, with a per-seed arithmetic
///     and heap-traffic mix — plus `cold` methods of small constant cost
///     built from the RandomProgram statement machinery (trap-free mode).
///
/// Input-feature coupling: the command line exposes -n (size) and
/// -s (scale) as XICL features; `jitter` is a hidden per-input component
/// whose magnitude grows as coupling drops below 1, so the feature->ideal-
/// level mapping degrades controllably.  Drift (GenSpec::Drift) changes the
/// *input distribution* mid-stream: `flip` switches from scalea-scaled
/// phase-A inputs to scaleb-scaled phase-B inputs at the driftat boundary
/// (same -n values, different behavior — the pre-drift model mispredicts
/// until it relearns from -s), `walk` slides the drawn work sizes across
/// the range.
///
/// Every module is routed through bytecode/Verifier (ModuleBuilder::build),
/// and generation is byte-deterministic: same spec => byte-identical module
/// text, inputs, and run order, from any thread.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_WORKLOADS_GENERATOR_H
#define EVM_WORKLOADS_GENERATOR_H

#include "workloads/GenSpec.h"
#include "workloads/Workload.h"

#include <vector>

namespace evm {
namespace wl {

/// A generated workload plus the generator's structural intent, for
/// property tests and drift-aware harnesses.
struct GeneratedWorkload {
  Workload W;
  GenSpec Spec;
  std::vector<bc::MethodId> HotMethods;  ///< the declared hot set
  std::vector<bc::MethodId> ColdMethods;
  /// First input index of phase B (== W.Inputs.size() when drift != flip).
  size_t PhaseSplit = 0;
};

/// Generates the workload described by \p Spec.  Fails (never asserts) on
/// an invalid spec or — defensively — if the emitted module does not
/// verify; generated modules are always routed through bytecode/Verifier.
ErrorOr<GeneratedWorkload> generateWorkload(const GenSpec &Spec);

/// The drift-aware production-run stream: indices into W.Inputs, length
/// \p NumRuns (0 = Spec.NumRuns).  Deterministic in the spec.
std::vector<size_t> makeGenRunOrder(const GenSpec &Spec, size_t NumRuns = 0);

/// Canonical byte fingerprint of a generated workload: the disassembled
/// module, the rendered spec, every input case, and the run order.  Two
/// generations of the same spec must produce equal fingerprints (the
/// open-world identity gate).
std::string workloadFingerprint(const GeneratedWorkload &G,
                                const std::vector<size_t> &Order);

/// Static call-graph shape of a module, measured from `main`.
struct CallGraphStats {
  size_t ReachableMethods = 0; ///< methods reachable from main (incl. main)
  int Depth = 0;               ///< longest acyclic call chain, in edges
  int MaxFanOut = 0;           ///< max distinct callees of any reachable
                               ///< method
};

/// Computes CallGraphStats by scanning Call instructions (cycles, were any
/// to exist, do not extend the depth).
CallGraphStats analyzeCallGraph(const bc::Module &M);

} // namespace wl
} // namespace evm

#endif // EVM_WORKLOADS_GENERATOR_H
