//===- workloads/WorkloadDetail.h - Per-benchmark builders (private) ------==//
//
// Internal header: the individual benchmark constructors, one per paper
// workload, implemented in Jvm98.cpp / Dacapo.cpp / Grande.cpp / Route.cpp.
//
//===----------------------------------------------------------------------===//

#ifndef EVM_WORKLOADS_WORKLOADDETAIL_H
#define EVM_WORKLOADS_WORKLOADDETAIL_H

#include "workloads/Workload.h"

#include "bytecode/Builder.h"
#include "support/Rng.h"

namespace evm {
namespace wl {
namespace detail {

// SPECjvm98 analogues.
Workload buildCompress(uint64_t Seed);
Workload buildDb(uint64_t Seed);
Workload buildMtrt(uint64_t Seed);
// DaCapo analogues.
Workload buildAntlr(uint64_t Seed);
Workload buildBloat(uint64_t Seed);
Workload buildFop(uint64_t Seed);
// Java Grande analogues.
Workload buildEuler(uint64_t Seed);
Workload buildMolDyn(uint64_t Seed);
Workload buildMonteCarlo(uint64_t Seed);
Workload buildSearch(uint64_t Seed);
Workload buildRayTracer(uint64_t Seed);

/// Draws a log-uniform integer in [Low, High] (sizes spread over decades,
/// like real input collections).
int64_t logUniform(Rng &R, int64_t Low, int64_t High);

/// Finalizes a ModuleBuilder, asserting verification succeeded (workload
/// construction bugs are programmer errors, not user input).
bc::Module finishModule(bc::ModuleBuilder &MB);

} // namespace detail
} // namespace wl
} // namespace evm

#endif // EVM_WORKLOADS_WORKLOADDETAIL_H
