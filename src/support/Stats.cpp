//===- support/Stats.cpp --------------------------------------------------==//

#include "support/Stats.h"

#include "support/Format.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

using namespace evm;

const char *evm::seriesClassName(SeriesClass C) {
  switch (C) {
  case SeriesClass::Flat:
    return "flat";
  case SeriesClass::Warmup:
    return "warmup";
  case SeriesClass::Slowdown:
    return "slowdown";
  case SeriesClass::Cyclic:
    return "cyclic";
  case SeriesClass::NoSteadyState:
    return "no-steady-state";
  }
  return "?";
}

bool evm::seriesClassFromName(const std::string &Name, SeriesClass &Out) {
  for (SeriesClass C :
       {SeriesClass::Flat, SeriesClass::Warmup, SeriesClass::Slowdown,
        SeriesClass::Cyclic, SeriesClass::NoSteadyState}) {
    if (Name == seriesClassName(C)) {
      Out = C;
      return true;
    }
  }
  return false;
}

namespace {

/// Prefix sums backing O(1) segment SSE queries.
struct PrefixSums {
  std::vector<double> S1, S2; // S1[i] = sum x[0..i), S2[i] = sum x^2[0..i)

  explicit PrefixSums(const std::vector<double> &Xs)
      : S1(Xs.size() + 1, 0), S2(Xs.size() + 1, 0) {
    for (size_t I = 0; I != Xs.size(); ++I) {
      S1[I + 1] = S1[I] + Xs[I];
      S2[I + 1] = S2[I] + Xs[I] * Xs[I];
    }
  }

  /// Sum of squared deviations from the segment mean over [Begin, End).
  double sse(size_t Begin, size_t End) const {
    double N = static_cast<double>(End - Begin);
    if (N <= 0)
      return 0;
    double Sum = S1[End] - S1[Begin];
    double SumSq = S2[End] - S2[Begin];
    double Sse = SumSq - Sum * Sum / N;
    return Sse > 0 ? Sse : 0; // clamp float cancellation
  }

  double segMean(size_t Begin, size_t End) const {
    return End > Begin
               ? (S1[End] - S1[Begin]) / static_cast<double>(End - Begin)
               : 0;
  }
};

/// Robust noise scale from first differences: mean shifts only touch a
/// handful of diffs, so the median absolute difference tracks the
/// within-segment noise even across big level changes.  For iid N(0, s^2)
/// noise, median|x[i+1] - x[i]| = 0.9539 s.
double robustNoiseSigma(const std::vector<double> &Xs) {
  if (Xs.size() < 3)
    return 0;
  std::vector<double> AbsDiffs;
  AbsDiffs.reserve(Xs.size() - 1);
  for (size_t I = 0; I + 1 != Xs.size(); ++I)
    AbsDiffs.push_back(std::fabs(Xs[I + 1] - Xs[I]));
  return median(AbsDiffs) / 0.9539;
}

double seriesScale(const std::vector<double> &Xs) {
  double Scale = 0;
  for (double X : Xs)
    Scale = std::max(Scale, std::fabs(X));
  return Scale;
}

/// xorshift64* — deterministic, seeded, state in one word.
struct SplitRng {
  uint64_t State;
  explicit SplitRng(uint64_t Seed)
      : State(Seed ? Seed : 0x9e3779b97f4a7c15ULL) {}
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1DULL;
  }
};

} // namespace

std::vector<size_t> evm::detectChangepoints(const std::vector<double> &Series,
                                            const SeriesOptions &Opts) {
  size_t N = Series.size();
  size_t MinSeg = std::max<size_t>(Opts.MinSegment, 1);
  if (N < 2 * MinSeg)
    return {};

  PrefixSums P(Series);
  double Penalty = Opts.Penalty;
  if (Penalty <= 0) {
    double Sigma = robustNoiseSigma(Series);
    double Scale = seriesScale(Series);
    // Floor the noise estimate so noiseless (virtual-clock) series get a
    // tiny positive penalty: splits must strictly reduce the cost.
    double Sigma2 = std::max(Sigma * Sigma, 1e-18 * Scale * Scale + 1e-300);
    Penalty = 3.0 * Sigma2 * std::log(static_cast<double>(std::max<size_t>(
                                 N, 2)));
  }

  // PELT over the mean-shift SSE cost: F[t] = best cost of segmenting
  // [0, t); Prev[t] = the segment start that achieved it.  Ties prefer
  // fewer changepoints, then the longer final segment, so results are
  // deterministic across platforms.
  constexpr double Inf = std::numeric_limits<double>::infinity();
  constexpr double Eps = 1e-9;
  std::vector<double> F(N + 1, Inf);
  std::vector<size_t> Prev(N + 1, 0), NumCps(N + 1, 0);
  F[0] = -Penalty;
  std::vector<size_t> Cands{0};
  std::vector<size_t> Kept;
  for (size_t T = MinSeg; T <= N; ++T) {
    double Best = Inf;
    size_t BestS = 0, BestCps = 0;
    for (size_t S : Cands) {
      if (T - S < MinSeg || F[S] == Inf)
        continue;
      double V = F[S] + P.sse(S, T) + Penalty;
      size_t Cps = NumCps[S] + (S > 0 ? 1 : 0);
      bool Better = V < Best - Eps ||
                    (V <= Best + Eps &&
                     (Cps < BestCps || (Cps == BestCps && S < BestS)));
      if (Best == Inf || Better) {
        Best = V;
        BestS = S;
        BestCps = Cps;
      }
    }
    F[T] = Best;
    Prev[T] = BestS;
    NumCps[T] = BestCps;
    // PELT pruning: a candidate whose partial cost already exceeds F[T]
    // can never win later (the SSE cost is superadditive under splits).
    Kept.clear();
    for (size_t S : Cands)
      if (T - S < MinSeg || F[S] == Inf || F[S] + P.sse(S, T) <= F[T] + Eps)
        Kept.push_back(S);
    Kept.push_back(T);
    Cands.swap(Kept);
  }

  std::vector<size_t> Cps;
  for (size_t T = N; T > 0 && Prev[T] > 0; T = Prev[T])
    Cps.push_back(Prev[T]);
  std::sort(Cps.begin(), Cps.end());
  return Cps;
}

void evm::bootstrapMeanCI(const std::vector<double> &Samples,
                          double Confidence, size_t Resamples, uint64_t Seed,
                          double &Low, double &High) {
  size_t N = Samples.size();
  if (N == 0) {
    Low = High = 0;
    return;
  }
  double M = mean(Samples);
  if (N == 1 || Resamples == 0) {
    Low = High = N == 1 ? Samples.front() : M;
    return;
  }
  SplitRng Rng(Seed);
  std::vector<double> Means;
  Means.reserve(Resamples);
  for (size_t R = 0; R != Resamples; ++R) {
    double Sum = 0;
    for (size_t I = 0; I != N; ++I)
      Sum += Samples[Rng.next() % N];
    Means.push_back(Sum / static_cast<double>(N));
  }
  double Alpha = (1.0 - Confidence) / 2.0;
  Low = quantile(Means, Alpha);
  High = quantile(Means, 1.0 - Alpha);
}

SeriesAnalysis evm::analyzeSeries(const std::vector<double> &Series,
                                  const SeriesOptions &Opts) {
  SeriesAnalysis A;
  size_t N = Series.size();
  if (N == 0) {
    A.Class = SeriesClass::NoSteadyState;
    return A;
  }

  PrefixSums P(Series);
  auto makeSegment = [&](size_t Begin, size_t End) {
    SeriesSegment Seg;
    Seg.Begin = Begin;
    Seg.End = End;
    Seg.Mean = P.segMean(Begin, End);
    Seg.Stddev = End - Begin >= 2
                     ? std::sqrt(P.sse(Begin, End) /
                                 static_cast<double>(End - Begin - 1))
                     : 0;
    return Seg;
  };

  A.Changepoints = detectChangepoints(Series, Opts);
  size_t Begin = 0;
  for (size_t Cp : A.Changepoints) {
    A.Segments.push_back(makeSegment(Begin, Cp));
    Begin = Cp;
  }
  A.Segments.push_back(makeSegment(Begin, N));

  double Tol = Opts.RelTolerance * seriesScale(Series);
  const SeriesSegment &Last = A.Segments.back();

  // Cyclic: four or more segments whose means strictly alternate up/down
  // by more than the tolerance — the series revisits levels rather than
  // settling on one.
  if (A.Segments.size() >= 4) {
    bool Alternating = true;
    double PrevDelta = 0;
    for (size_t I = 1; I != A.Segments.size() && Alternating; ++I) {
      double Delta = A.Segments[I].Mean - A.Segments[I - 1].Mean;
      if (std::fabs(Delta) <= Tol || (I > 1 && Delta * PrevDelta >= 0))
        Alternating = false;
      PrevDelta = Delta;
    }
    if (Alternating) {
      A.Class = SeriesClass::Cyclic;
      return A;
    }
  }

  // Steady window: the maximal suffix of segments whose means agree with
  // the final segment.
  size_t SteadyBegin = Last.Begin;
  for (size_t I = A.Segments.size(); I-- > 0;) {
    if (std::fabs(A.Segments[I].Mean - Last.Mean) > Tol)
      break;
    SteadyBegin = A.Segments[I].Begin;
  }
  size_t SteadyCount = N - SteadyBegin;
  size_t MinSteady = std::max<size_t>(
      Opts.MinSegment, static_cast<size_t>(Opts.SteadyTailFraction *
                                           static_cast<double>(N)));
  if (SteadyCount < MinSteady) {
    A.Class = SeriesClass::NoSteadyState;
    return A;
  }

  A.HasSteadyState = true;
  A.Steady.Begin = SteadyBegin;
  A.Steady.Count = SteadyCount;
  std::vector<double> SteadySamples(Series.begin() +
                                        static_cast<ptrdiff_t>(SteadyBegin),
                                    Series.end());
  A.Steady.Mean = mean(SteadySamples);
  bootstrapMeanCI(SteadySamples, Opts.Confidence, Opts.BootstrapResamples,
                  Opts.BootstrapSeed, A.Steady.CILow, A.Steady.CIHigh);

  if (SteadyBegin == 0) {
    A.Class = SeriesClass::Flat;
    return A;
  }
  double PreMean = P.segMean(0, SteadyBegin);
  double Delta = A.Steady.Mean - PreMean;
  if (std::fabs(Delta) <= Tol) {
    A.Class = SeriesClass::Flat; // a mid-series blip that came back
    return A;
  }
  bool Improved = Opts.LowerIsBetter ? Delta < 0 : Delta > 0;
  A.Class = Improved ? SeriesClass::Warmup : SeriesClass::Slowdown;
  return A;
}

std::string evm::renderSeriesJson(const std::string &Name,
                                  const std::string &Unit, bool LowerIsBetter,
                                  const std::vector<double> &Samples,
                                  const SeriesAnalysis &Analysis) {
  std::string Out =
      formatString("{\"name\":\"%s\",\"unit\":\"%s\",\"lower_is_better\":%s,"
                   "\"samples\":[",
                   Name.c_str(), Unit.c_str(),
                   LowerIsBetter ? "true" : "false");
  for (size_t I = 0; I != Samples.size(); ++I) {
    if (I)
      Out += ',';
    Out += formatString("%.17g", Samples[I]);
  }
  Out += formatString("],\"analysis\":{\"class\":\"%s\",\"changepoints\":[",
                      seriesClassName(Analysis.Class));
  for (size_t I = 0; I != Analysis.Changepoints.size(); ++I) {
    if (I)
      Out += ',';
    Out += formatString("%zu", Analysis.Changepoints[I]);
  }
  Out += "],\"segments\":[";
  for (size_t I = 0; I != Analysis.Segments.size(); ++I) {
    const SeriesSegment &S = Analysis.Segments[I];
    if (I)
      Out += ',';
    Out += formatString(
        "{\"begin\":%zu,\"end\":%zu,\"mean\":%.17g,\"stddev\":%.17g}",
        S.Begin, S.End, S.Mean, S.Stddev);
  }
  Out += ']';
  if (Analysis.HasSteadyState)
    Out += formatString(",\"steady\":{\"begin\":%zu,\"count\":%zu,"
                        "\"mean\":%.17g,\"ci_low\":%.17g,\"ci_high\":%.17g}",
                        Analysis.Steady.Begin, Analysis.Steady.Count,
                        Analysis.Steady.Mean, Analysis.Steady.CILow,
                        Analysis.Steady.CIHigh);
  Out += "}}";
  return Out;
}

//===----------------------------------------------------------------------===//
// Self-test
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic uniform noise in [-Amp, Amp].
double noise(SplitRng &Rng, double Amp) {
  return (static_cast<double>(Rng.next() % 20001) / 10000.0 - 1.0) * Amp;
}

/// Builds a piecewise-constant series from (length, mean) legs.
std::vector<double>
makeSteps(const std::vector<std::pair<size_t, double>> &Legs, double Amp,
          uint64_t Seed) {
  SplitRng Rng(Seed);
  std::vector<double> Xs;
  for (const auto &[Len, Mean] : Legs)
    for (size_t I = 0; I != Len; ++I)
      Xs.push_back(Mean + noise(Rng, Amp));
  return Xs;
}

bool changepointsNear(const std::vector<size_t> &Got,
                      const std::vector<size_t> &Want) {
  if (Got.size() != Want.size())
    return false;
  for (size_t I = 0; I != Got.size(); ++I) {
    size_t G = Got[I], W = Want[I];
    if ((G > W ? G - W : W - G) > 1)
      return false;
  }
  return true;
}

} // namespace

int evm::statsSelfTest(bool Verbose) {
  int Failures = 0;
  auto check = [&](const char *Label, bool Ok) {
    if (!Ok)
      ++Failures;
    if (Verbose || !Ok)
      std::printf("%s stats self-test: %s\n", Ok ? "PASS" : "FAIL", Label);
  };

  SeriesOptions Opts;

  // Flat: one segment, steady from iteration 0, CI brackets the mean.
  {
    std::vector<double> Xs = makeSteps({{60, 1000}}, 5, 1);
    SeriesAnalysis A = analyzeSeries(Xs, Opts);
    check("flat classifies flat", A.Class == SeriesClass::Flat);
    check("flat has no changepoints", A.Changepoints.empty());
    check("flat steady covers everything",
          A.HasSteadyState && A.Steady.Begin == 0 && A.Steady.Count == 60);
    check("flat CI brackets the true mean",
          A.Steady.CILow <= 1000.5 && A.Steady.CIHigh >= 999.5 &&
              A.Steady.CILow < A.Steady.CIHigh);
  }

  // Warmup: 30 slow iterations, then 70 fast ones.
  {
    std::vector<double> Xs = makeSteps({{30, 1000}, {70, 800}}, 4, 2);
    SeriesAnalysis A = analyzeSeries(Xs, Opts);
    check("warmup classifies warmup", A.Class == SeriesClass::Warmup);
    check("warmup changepoint within +/-1 of 30",
          changepointsNear(A.Changepoints, {30}));
    check("warmup steady mean near 800",
          A.HasSteadyState && std::fabs(A.Steady.Mean - 800) < 5);
  }

  // Slowdown: settles above where it started.
  {
    std::vector<double> Xs = makeSteps({{40, 500}, {60, 560}}, 4, 3);
    SeriesAnalysis A = analyzeSeries(Xs, Opts);
    check("slowdown classifies slowdown", A.Class == SeriesClass::Slowdown);
    check("slowdown changepoint within +/-1 of 40",
          changepointsNear(A.Changepoints, {40}));
  }

  // Cyclic: eight alternating 12-iteration legs.
  {
    std::vector<std::pair<size_t, double>> Legs;
    for (size_t I = 0; I != 8; ++I)
      Legs.push_back({12, I % 2 ? 1200.0 : 1000.0});
    std::vector<double> Xs = makeSteps(Legs, 4, 4);
    SeriesAnalysis A = analyzeSeries(Xs, Opts);
    check("cyclic classifies cyclic", A.Class == SeriesClass::Cyclic);
    check("cyclic has no steady state", !A.HasSteadyState);
  }

  // No steady state: still shifting when the series ends.
  {
    std::vector<double> Xs =
        makeSteps({{30, 1000}, {30, 900}, {30, 820}, {10, 700}}, 4, 5);
    SeriesAnalysis A = analyzeSeries(Xs, Opts);
    check("shifting tail classifies no-steady-state",
          A.Class == SeriesClass::NoSteadyState);
    check("no-steady-state reports no steady window", !A.HasSteadyState);
  }

  // Noiseless virtual-clock series: exact changepoint recovery.
  {
    std::vector<double> Xs = makeSteps({{20, 100}, {20, 50}}, 0, 6);
    SeriesAnalysis A = analyzeSeries(Xs, Opts);
    check("noiseless step splits exactly at 20",
          A.Changepoints == std::vector<size_t>{20});
    check("noiseless step classifies warmup",
          A.Class == SeriesClass::Warmup);
  }

  // Higher-is-better orientation (speedup series).
  {
    SeriesOptions Up = Opts;
    Up.LowerIsBetter = false;
    std::vector<double> Rise = makeSteps({{25, 1.0}, {50, 1.5}}, 0.01, 7);
    check("rising speedup classifies warmup",
          analyzeSeries(Rise, Up).Class == SeriesClass::Warmup);
    std::vector<double> Fall = makeSteps({{25, 1.5}, {50, 1.0}}, 0.01, 8);
    check("falling speedup classifies slowdown",
          analyzeSeries(Fall, Up).Class == SeriesClass::Slowdown);
  }

  // Bootstrap CI edge cases: never divides by zero, always well-ordered.
  {
    double Low = -1, High = -1;
    bootstrapMeanCI({}, 0.95, 200, 1, Low, High);
    check("empty bootstrap gives [0, 0]", Low == 0 && High == 0);
    bootstrapMeanCI({42.0}, 0.95, 200, 1, Low, High);
    check("single-sample bootstrap collapses to the sample",
          Low == 42.0 && High == 42.0);
    bootstrapMeanCI({7.0, 7.0, 7.0, 7.0}, 0.95, 200, 1, Low, High);
    check("identical-sample bootstrap collapses to the value",
          Low == 7.0 && High == 7.0);
    bootstrapMeanCI({10.0, 20.0}, 0.95, 200, 1, Low, High);
    check("two-sample bootstrap stays inside [min, max]",
          Low >= 10.0 && High <= 20.0 && Low <= High);
    double Low2 = -1, High2 = -1;
    bootstrapMeanCI({10.0, 20.0}, 0.95, 200, 1, Low2, High2);
    check("bootstrap is deterministic", Low == Low2 && High == High2);
  }

  // Short series degrade gracefully: single flat segment, no crash.
  {
    SeriesAnalysis A = analyzeSeries({5.0, 5.0, 5.0}, Opts);
    check("short series is one flat segment",
          A.Class == SeriesClass::Flat && A.Segments.size() == 1 &&
              A.HasSteadyState);
    SeriesAnalysis E = analyzeSeries({}, Opts);
    check("empty series is no-steady-state",
          E.Class == SeriesClass::NoSteadyState && !E.HasSteadyState);
  }

  // JSON rendering is byte-deterministic and carries the classification.
  {
    std::vector<double> Xs = makeSteps({{30, 1000}, {70, 800}}, 4, 2);
    SeriesAnalysis A = analyzeSeries(Xs, Opts);
    std::string J1 = renderSeriesJson("t.cycles", "cycles", true, Xs, A);
    std::string J2 = renderSeriesJson("t.cycles", "cycles", true, Xs, A);
    check("series JSON is deterministic", J1 == J2);
    check("series JSON carries the class",
          J1.find("\"class\":\"warmup\"") != std::string::npos);
    check("series JSON carries the steady CI",
          J1.find("\"ci_low\":") != std::string::npos);
  }

  if (Verbose || Failures)
    std::printf("stats self-test: %s (%d failure%s)\n",
                Failures ? "FAIL" : "ok", Failures, Failures == 1 ? "" : "s");
  return Failures;
}
