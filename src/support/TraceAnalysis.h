//===- support/TraceAnalysis.h - Timeline reports over parsed traces ------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline analysis over a JSONL trace (support/Trace.h): per-method tier
/// timelines, compile-stall/overlap accounting, and the Evolve-vs-reactive
/// decision diff — the paper's Figure 8/9 story recomputed from raw events.
/// Shared by `tools/evm-trace` and the trace tests.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SUPPORT_TRACEANALYSIS_H
#define EVM_SUPPORT_TRACEANALYSIS_H

#include "support/Error.h"
#include "support/Trace.h"

#include <map>
#include <string>
#include <vector>

namespace evm {

/// A parsed trace, segmented into runs.
struct ParsedTrace {
  std::vector<TraceEvent> Events; ///< in file (= export) order
  std::map<uint32_t, std::string> MethodNames;
  /// [begin, end) index ranges of each run segment (split at run.begin;
  /// events before the first run.begin are not part of any run).
  std::vector<std::pair<size_t, size_t>> Runs;

  const std::string &methodName(uint32_t Method) const;
};

/// Parses a whole JSONL trace file body.  Fails on the first malformed
/// non-empty line.
ErrorOr<ParsedTrace> parseJsonlTrace(const std::string &Text);

/// Per-run, per-method tier timeline: every level transition with its
/// virtual cycle, plus invocation/sample totals.
std::string renderTierTimeline(const ParsedTrace &Trace);

/// Compile-pipeline accounting per run: installs split into stalled vs
/// overlapped cost, queue drops and coalesces, and per-worker busy cycles.
std::string renderCompileAccounting(const ParsedTrace &Trace);

/// Evolve-vs-reactive diff: per run the prediction (level, confidence,
/// used/guarded, posterior agreement) next to the run's recompile count,
/// then the aggregate the paper claims — recompilations avoided and
/// cycles-at-optimized-level gained in predicted runs vs reactive runs.
std::string renderEvolveDiff(const ParsedTrace &Trace);

/// Per-method execution weights mined from a trace: each method's
/// method.invoke count plus its profile.sample count (samples proxy for
/// cycles spent, invokes keep short-but-hot helpers visible).  Result has
/// \p NumMethods entries (events naming methods beyond that are ignored).
/// These weights feed superinstruction-table mining
/// (vm/Superinst.h mineSuperinstTable): trace -> hot methods -> fused
/// pairs.  Deterministic for a fixed event sequence.
std::vector<uint64_t>
methodWeightsFromTrace(const std::vector<TraceEvent> &Events,
                       size_t NumMethods);

} // namespace evm

#endif // EVM_SUPPORT_TRACEANALYSIS_H
