//===- support/DecisionLedger.h - Prediction decision flight recorder -----===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded, deterministically ordered audit stream of every
/// discriminative-prediction decision the evolvable VM takes: one record
/// per production run carrying the input feature vector, the guard's mode
/// and verdict, the confidence state around the run, and — when a model
/// produced a strategy — one entry per method with the predicted level, the
/// classification-tree path that produced it, and the post-hoc outcome
/// (posterior-ideal level, agree/disagree, reactive rescue compiles)
/// backfilled at run end.  `tools/evm-explain` turns the stream into
/// confusion matrices, calibration tables, guard precision/recall, and
/// drift-detection latencies.
///
/// Cost model, same discipline as EVM_PROFILING / EVM_TRACING:
///
///   * `-DEVM_DECISIONS=OFF` compiles every site out — enabled() folds to a
///     constant false and each `if (Ledger && Ledger->enabled())` block is
///     dead code.
///   * Compiled in but not attached (or attached with the runtime flag
///     off), every site costs one pointer test plus one branch.
///   * Enabled, sites cost host time only; recording never charges the
///     virtual clock, so ledger-on and ledger-off runs are cycle-identical
///     and RunResult-byte-identical by construction (pinned by
///     tests/test_decisions.cpp).
///
/// The ledger is a ring-buffer flight recorder: it keeps the newest
/// MaxRecords records, counts what it sheds (droppedRecords()), and
/// exports oldest-first.  Like the phase profiler it is single-threaded by
/// design — one ledger per tenant; the fleet coordinator folds per-tenant
/// ledgers in tenant-ID order after the pool joins, so the folded stream
/// is byte-identical for any --threads.
///
/// The JSONL wire format (fixed key order, %.17g doubles, one object per
/// line — byte-deterministic; renderJsonlDecisions and LedgerReader are
/// exact inverses):
///
///   {"kind":"provenance","git_sha":...,"compiler":...,
///    "compiler_version":...,"build_type":...}           (optional header)
///   {"kind":"run","app":...,"tenant":N,"run":N,"fv":...,"fvhash":N,
///    "guard":"decayed|crossval|always","open":0|1,"used":0|1,"had":0|1,
///    "conf_before":X,"conf_after":X,"cv":X,"thr":X,"acc":X,
///    "cycles":N,"baseline":N[,"rejected":1]}             (one per run)
///   {"kind":"method","app":...,"tenant":N,"run":N,"method":N,"pred":N,
///    "ideal":N,"agree":0|1,"const":0|1,"rescues":N,"path":...}
///                               (one per method, after its run line)
///
/// "pred"/"ideal" are dense level indices (vm::levelIndex: 0 = Baseline).
/// "baseline" is the default-optimizer cycle count of the same input (0 =
/// unknown; the harness backfills it via annotateBaseline).  "path" is the
/// tree walk in ml::TreePath::str() form, empty for constant models.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SUPPORT_DECISIONLEDGER_H
#define EVM_SUPPORT_DECISIONLEDGER_H

#include <cstdint>
#include <string>
#include <vector>

/// Compile-time gate.  The build defines EVM_DECISIONS=0 to compile every
/// recording site out; default is compiled-in.
#ifndef EVM_DECISIONS
#define EVM_DECISIONS 1
#endif

namespace evm {

/// Post-hoc outcome of one method's prediction within one run.
struct MethodDecision {
  uint32_t Method = 0;
  int Pred = 0;          ///< predicted level (dense index, 0 = Baseline)
  int Ideal = 0;         ///< posterior-ideal level (dense index)
  bool Agree = false;    ///< Pred == Ideal
  bool Constant = false; ///< constant-label model (no tree consulted)
  uint32_t Rescues = 0;  ///< reactive compiles above the predicted level
  std::string Path;      ///< ml::TreePath::str(); empty for constant models
};

/// One production run's full decision record.
struct DecisionRecord {
  std::string App;       ///< workload/application name
  int64_t Tenant = -1;   ///< fleet tenant id; -1 outside fleet mode
  uint64_t Run = 0;      ///< 1-based run ordinal (the VM's RunsSeen + 1)
  std::string Features;  ///< FeatureVector::str() rendering
  uint64_t FvHash = 0;   ///< FeatureVector::hash(); 0 without features
  std::string Guard;     ///< "decayed", "crossval", or "always"
  bool GuardOpen = false; ///< the guard's verdict before the run
  bool Used = false;      ///< a prediction actually drove the run
  bool Had = false;       ///< a model existed to produce a prediction
  double ConfBefore = 0;
  double ConfAfter = 0;
  double CvConf = 0;     ///< cross-validated confidence (CrossValidation)
  double Threshold = 0;  ///< the guard's confidence threshold
  double Accuracy = 0;   ///< acc(predicted, ideal); 0 without a prediction
  uint64_t Cycles = 0;   ///< the run's virtual-clock cycles
  uint64_t BaselineCycles = 0; ///< default-optimizer cycles; 0 = unknown
  /// Admission control dropped the request before any run happened (the
  /// prediction server's overload path).  Rejected records carry the
  /// admission reason in Guard ("overload", "client_inflight", "draining",
  /// "lanes") and zero run state; `evm-explain` folds them into per-app
  /// drop rates.  Rendered as `"rejected":1` only when set, so ordinary
  /// run lines are byte-identical to the pre-serving format.
  bool Rejected = false;
  std::vector<MethodDecision> Methods; ///< empty when !Had
};

/// Build provenance attached to an exported ledger (see support/BuildInfo.h
/// and the identical fields bench/run_all.sh stamps).
struct LedgerProvenance {
  std::string GitSha = "unknown";
  std::string Compiler = "unknown";
  std::string CompilerVersion = "unknown";
  std::string BuildType = "unknown";
};

/// The bounded flight recorder.  Single-threaded by design (one per
/// tenant); never locked, never charges virtual cycles.
class DecisionLedger {
public:
  /// \p MaxRecords bounds the ring; the newest records are kept and
  /// everything shed is counted in droppedRecords().
  explicit DecisionLedger(size_t MaxRecords = size_t(1) << 16);

  /// Runtime flag.  With EVM_DECISIONS compiled out this is a constant
  /// false and every guarded site folds away.
  bool enabled() const {
#if EVM_DECISIONS
    return Enabled;
#else
    return false;
#endif
  }

  /// No-op when the gate is compiled out.
  void setEnabled(bool On);

  /// Appends one record (dropping the oldest when the ring is full).
  void record(DecisionRecord R);

  /// Backfills the newest record's BaselineCycles — the harness learns the
  /// default-optimizer time of the input right after the run it paired it
  /// with.  No-op on an empty ledger.
  void annotateBaseline(uint64_t BaselineCycles);

  /// Records currently held (<= MaxRecords).
  size_t size() const;

  /// Records shed because the ring was full.
  uint64_t droppedRecords() const;

  /// The held records, oldest first.
  std::vector<DecisionRecord> exportOrder() const;

  /// Drops all records and the dropped count.
  void clear();

private:
  size_t MaxRecords;
  bool Enabled = false;
  std::vector<DecisionRecord> Ring; ///< circular once full
  size_t Next = 0;                  ///< insertion slot when Ring is full
  uint64_t Dropped = 0;
};

/// Renders records (oldest-first order preserved) as the canonical JSONL
/// stream; \p Provenance, when given, becomes the leading provenance line.
/// Byte-deterministic: fixed key order, %.17g doubles.
std::string renderJsonlDecisions(const std::vector<DecisionRecord> &Records,
                                 const LedgerProvenance *Provenance = nullptr);

/// Streaming parser for the JSONL form — the exact inverse of
/// renderJsonlDecisions.  Lenient at the line level (a damaged line is
/// counted and skipped, never fatal), so partially written ledgers still
/// analyze.  Method lines attach to the last-seen run record; method lines
/// with no preceding run line count as bad.
class LedgerReader {
public:
  /// Consumes one line (with or without the trailing newline).
  void addLine(const std::string &Line);

  /// Consumes a whole document, splitting on '\n'.
  void addText(const std::string &Text);

  const std::vector<DecisionRecord> &records() const { return Records; }
  const LedgerProvenance &provenance() const { return Provenance; }
  bool hasProvenance() const { return HasProvenance; }

  /// Lines that were neither blank nor parseable.
  uint64_t badLines() const { return BadLines; }

private:
  std::vector<DecisionRecord> Records;
  LedgerProvenance Provenance;
  bool HasProvenance = false;
  uint64_t BadLines = 0;
};

} // namespace evm

#endif // EVM_SUPPORT_DECISIONLEDGER_H
