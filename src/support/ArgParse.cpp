//===- support/ArgParse.cpp -----------------------------------------------===//

#include "support/ArgParse.h"

#include "support/StringUtils.h"

#include <cstdio>
#include <optional>

using namespace evm;

bool evm::matchValueFlag(const std::string &Arg, const std::string &Name,
                         int Argc, char **Argv, int &I, std::string &Val,
                         bool &HasVal) {
  if (Arg.rfind(Name + "=", 0) == 0) {
    Val = Arg.substr(Name.size() + 1);
    HasVal = true;
    return true;
  }
  if (Arg == Name) {
    HasVal = I + 1 < Argc;
    if (HasVal)
      Val = Argv[++I];
    return true;
  }
  return false;
}

bool evm::parseIntOption(const char *Name, const std::string &Val,
                         bool HasVal, int64_t Min, int64_t &Dest) {
  std::optional<int64_t> N;
  if (HasVal)
    N = parseInteger(Val);
  if (!N || *N < Min) {
    std::fprintf(stderr, "error: bad %s value '%s'\n", Name,
                 HasVal ? Val.c_str() : "(missing)");
    return false;
  }
  Dest = *N;
  return true;
}

bool evm::parseStringOption(const char *Name, const std::string &Val,
                            bool HasVal, const char *What,
                            std::string &Dest) {
  if (!HasVal || Val.empty()) {
    std::fprintf(stderr, "error: %s needs %s\n", Name, What);
    return false;
  }
  Dest = Val;
  return true;
}
