//===- support/BuildInfo.h - Build provenance stamped at compile time -----===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The provenance fields bench/run_all.sh stamps into BENCH_results.json
/// (git SHA, compiler id/version, build type), baked into the binary at
/// configure time so `evm_cli --version` and exported decision ledgers are
/// attributable to a build without shelling out to git.  Every field
/// degrades to "unknown" when configure could not determine it (no git,
/// empty CMAKE_BUILD_TYPE) — matching run_all.sh's `${V:-unknown}`.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SUPPORT_BUILDINFO_H
#define EVM_SUPPORT_BUILDINFO_H

#include <string>

namespace evm {

/// Compile-time build provenance.
struct BuildInfo {
  std::string GitSha;
  std::string Compiler;
  std::string CompilerVersion;
  std::string BuildType;

  /// One-line JSON with run_all.sh's field names:
  /// {"git_sha":...,"compiler":...,"compiler_version":...,"build_type":...}
  std::string renderJson() const;
};

/// The provenance this binary was built with.
const BuildInfo &buildInfo();

} // namespace evm

#endif // EVM_SUPPORT_BUILDINFO_H
