//===- support/Trace.cpp --------------------------------------------------===//

#include "support/Trace.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace evm;

static const char *const TraceEventKindNames[NumTraceEventKinds] = {
    "run.begin",        "run.end",         "method.invoke",
    "profile.sample",   "costbenefit.eval", "level.transition",
    "compile.enqueue",  "compile.start",   "compile.ready",
    "compile.install",  "compile.drop",    "compile.coalesce",
    "evolve.predict",   "evolve.outcome",  "model.rebuild",
    "repository.update", "store.load",     "store.save",
    "fleet.tenant",     "fleet.merge"};

const char *evm::traceEventKindName(TraceEventKind K) {
  assert(static_cast<unsigned>(K) < NumTraceEventKinds && "bad kind");
  return TraceEventKindNames[static_cast<unsigned>(K)];
}

std::optional<TraceEventKind>
evm::traceEventKindFromName(const std::string &Name) {
  for (int I = 0; I != NumTraceEventKinds; ++I)
    if (Name == TraceEventKindNames[I])
      return static_cast<TraceEventKind>(I);
  return std::nullopt;
}

void TraceRecorder::append(const TraceEvent &E) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Events.size() >= MaxEvents) {
    ++Dropped;
    return;
  }
  Events.push_back(E);
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.clear();
  Dropped = 0;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events.size();
}

uint64_t TraceRecorder::droppedEvents() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Dropped;
}

std::vector<TraceEvent> TraceRecorder::exportOrder() const {
  std::vector<TraceEvent> All;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    All = Events;
  }

  // Split the append sequence into per-run segments at each run.begin.  A
  // preamble segment (events before the first run.begin) is allowed.
  std::vector<size_t> SegmentStart;
  SegmentStart.push_back(0);
  for (size_t I = 0; I != All.size(); ++I)
    if (All[I].Kind == TraceEventKind::RunBegin && I != 0)
      SegmentStart.push_back(I);

  // evolve.predict events are recorded before the engine starts the run they
  // predict for, so in append order they sit at the tail of the *previous*
  // segment; pull them across the boundary into the run they belong to.
  for (size_t S = 1; S < SegmentStart.size(); ++S) {
    size_t Boundary = SegmentStart[S];
    while (Boundary > SegmentStart[S - 1] &&
           All[Boundary - 1].Kind == TraceEventKind::EvolvePredict)
      --Boundary;
    SegmentStart[S] = Boundary;
  }

  // Sort each segment by virtual time.  Virtual clocks restart at zero every
  // run, so a global sort would interleave runs; within a run the stable sort
  // places future-stamped compile.start/ready events at their virtual time
  // while preserving append order among ties.  run.begin is hoisted to the
  // front of its cycle so each segment opens with its marker.
  auto Key = [](const TraceEvent &E) {
    return std::make_pair(E.Cycle,
                          E.Kind == TraceEventKind::RunBegin ? 0u : 1u);
  };
  for (size_t S = 0; S != SegmentStart.size(); ++S) {
    size_t Begin = SegmentStart[S];
    size_t End = S + 1 < SegmentStart.size() ? SegmentStart[S + 1] : All.size();
    std::stable_sort(All.begin() + Begin, All.begin() + End,
                     [&](const TraceEvent &L, const TraceEvent &R) {
                       return Key(L) < Key(R);
                     });
  }
  return All;
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

static std::string escapeJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    if (Ch == '"' || Ch == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(Ch) < 0x20) {
      Out += formatString("\\u%04x", Ch);
      continue;
    }
    Out += Ch;
  }
  return Out;
}

static std::string methodLabel(const TraceMeta &Meta, uint32_t Method) {
  if (Method < Meta.MethodNames.size() && !Meta.MethodNames[Method].empty())
    return Meta.MethodNames[Method];
  return formatString("m%u", Method);
}

std::string evm::renderJsonlTrace(const std::vector<TraceEvent> &Events,
                                  const TraceMeta &Meta) {
  std::string Out;
  Out.reserve(Events.size() * 96);
  for (const TraceEvent &E : Events) {
    Out += formatString(
        "{\"cycle\":%llu,\"kind\":\"%s\",\"method\":%u,\"name\":\"%s\","
        "\"level\":%d,\"tid\":%u,\"a\":%llu,\"b\":%llu,\"c\":%llu,"
        "\"x\":%.17g}\n",
        static_cast<unsigned long long>(E.Cycle), traceEventKindName(E.Kind),
        E.Method, escapeJson(methodLabel(Meta, E.Method)).c_str(),
        static_cast<int>(E.Level), static_cast<unsigned>(E.Tid),
        static_cast<unsigned long long>(E.A),
        static_cast<unsigned long long>(E.B),
        static_cast<unsigned long long>(E.C), E.X);
  }
  return Out;
}

/// Common "args" object for Chrome events: the raw payload plus decoded
/// labels, so Perfetto's detail pane shows everything the JSONL form does.
static std::string chromeArgs(const TraceEvent &E, const TraceMeta &Meta) {
  return formatString(
      "{\"method\":\"%s\",\"level\":%d,\"a\":%llu,\"b\":%llu,\"c\":%llu,"
      "\"x\":%.17g}",
      escapeJson(methodLabel(Meta, E.Method)).c_str(),
      static_cast<int>(E.Level), static_cast<unsigned long long>(E.A),
      static_cast<unsigned long long>(E.B),
      static_cast<unsigned long long>(E.C), E.X);
}

std::string evm::renderChromeTrace(const std::vector<TraceEvent> &Events,
                                   const TraceMeta &Meta) {
  // Consecutive runs each restart the virtual clock at 0; lay them out
  // back-to-back on the Chrome time axis by giving each run segment a
  // cumulative ts offset (previous offset + previous segment's max cycle + a
  // 1-cycle gap).
  std::vector<size_t> SegmentOf(Events.size(), 0);
  std::vector<uint64_t> SegmentMax;
  SegmentMax.push_back(0);
  for (size_t I = 0; I != Events.size(); ++I) {
    if (Events[I].Kind == TraceEventKind::RunBegin && I != 0)
      SegmentMax.push_back(0);
    SegmentOf[I] = SegmentMax.size() - 1;
    uint64_t End = Events[I].Cycle;
    if (Events[I].Kind == TraceEventKind::CompileStart)
      End += Events[I].B; // span covers the compile's cost
    SegmentMax.back() = std::max(SegmentMax.back(), End);
  }
  std::vector<uint64_t> SegmentOffset(SegmentMax.size(), 0);
  for (size_t S = 1; S != SegmentMax.size(); ++S)
    SegmentOffset[S] = SegmentOffset[S - 1] + SegmentMax[S - 1] + 1;

  uint8_t MaxTid = 0;
  for (const TraceEvent &E : Events)
    MaxTid = std::max(MaxTid, E.Tid);

  std::string Out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  Out += formatString("{\"ph\":\"M\",\"pid\":%u,\"tid\":0,\"name\":"
                      "\"process_name\",\"args\":{\"name\":\"%s\"}}",
                      Meta.Pid, escapeJson(Meta.ProcessName).c_str());
  Out += formatString(",\n{\"ph\":\"M\",\"pid\":%u,\"tid\":0,\"name\":"
                      "\"thread_name\",\"args\":{\"name\":\"execution\"}}",
                      Meta.Pid);
  for (unsigned T = 1; T <= MaxTid; ++T)
    Out += formatString(
        ",\n{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"compile-worker %u\"}}",
        Meta.Pid, T, T - 1);

  for (size_t I = 0; I != Events.size(); ++I) {
    const TraceEvent &E = Events[I];
    uint64_t Ts = SegmentOffset[SegmentOf[I]] + E.Cycle;
    // Whole-run span so Perfetto shows run extents at a glance.
    if (E.Kind == TraceEventKind::RunBegin)
      Out += formatString(
          ",\n{\"ph\":\"X\",\"pid\":%u,\"tid\":0,\"ts\":%llu,\"dur\":%llu,"
          "\"name\":\"run %llu\",\"args\":{}}",
          Meta.Pid, static_cast<unsigned long long>(Ts),
          static_cast<unsigned long long>(SegmentMax[SegmentOf[I]]),
          static_cast<unsigned long long>(E.A));
    if (E.Kind == TraceEventKind::CompileStart) {
      // The compile occupies its worker from start to start+cost.
      Out += formatString(
          ",\n{\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"ts\":%llu,\"dur\":%llu,"
          "\"name\":\"compile %s L%d\",\"args\":%s}",
          Meta.Pid, static_cast<unsigned>(E.Tid),
          static_cast<unsigned long long>(Ts),
          static_cast<unsigned long long>(E.B),
          escapeJson(methodLabel(Meta, E.Method)).c_str(),
          static_cast<int>(E.Level), chromeArgs(E, Meta).c_str());
      continue;
    }
    Out += formatString(
        ",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":%u,\"tid\":%u,\"ts\":%llu,"
        "\"name\":\"%s\",\"args\":%s}",
        Meta.Pid, static_cast<unsigned>(E.Tid),
        static_cast<unsigned long long>(Ts), traceEventKindName(E.Kind),
        chromeArgs(E, Meta).c_str());
  }
  Out += "\n]}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// JSONL parsing (for tools/evm-trace and the schema round-trip test)
//===----------------------------------------------------------------------===//

/// Locates `"Key":` in \p Line and returns the index just past the colon, or
/// npos.  The writer emits flat objects with unique keys, so a plain
/// substring scan is unambiguous.
static size_t findValue(const std::string &Line, const char *Key) {
  std::string Needle = formatString("\"%s\":", Key);
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return std::string::npos;
  return At + Needle.size();
}

static bool parseU64(const std::string &Line, const char *Key, uint64_t &Out) {
  size_t At = findValue(Line, Key);
  if (At == std::string::npos)
    return false;
  Out = strtoull(Line.c_str() + At, nullptr, 10);
  return true;
}

static bool parseI64(const std::string &Line, const char *Key, int64_t &Out) {
  size_t At = findValue(Line, Key);
  if (At == std::string::npos)
    return false;
  Out = strtoll(Line.c_str() + At, nullptr, 10);
  return true;
}

static bool parseF64(const std::string &Line, const char *Key, double &Out) {
  size_t At = findValue(Line, Key);
  if (At == std::string::npos)
    return false;
  Out = strtod(Line.c_str() + At, nullptr);
  return true;
}

static bool parseStr(const std::string &Line, const char *Key,
                     std::string &Out) {
  size_t At = findValue(Line, Key);
  if (At == std::string::npos || At >= Line.size() || Line[At] != '"')
    return false;
  Out.clear();
  for (size_t I = At + 1; I < Line.size(); ++I) {
    if (Line[I] == '\\' && I + 1 < Line.size()) {
      Out += Line[++I];
      continue;
    }
    if (Line[I] == '"')
      return true;
    Out += Line[I];
  }
  return false;
}

bool evm::parseJsonlTraceLine(const std::string &Line, TraceEvent &Out,
                              std::string *NameOut) {
  std::string KindName;
  if (!parseStr(Line, "kind", KindName))
    return false;
  std::optional<TraceEventKind> Kind = traceEventKindFromName(KindName);
  if (!Kind)
    return false;
  Out = TraceEvent();
  Out.Kind = *Kind;
  uint64_t U = 0;
  int64_t S = 0;
  if (!parseU64(Line, "cycle", Out.Cycle))
    return false;
  if (parseU64(Line, "method", U))
    Out.Method = static_cast<uint32_t>(U);
  if (parseI64(Line, "level", S))
    Out.Level = static_cast<int8_t>(S);
  if (parseU64(Line, "tid", U))
    Out.Tid = static_cast<uint8_t>(U);
  parseU64(Line, "a", Out.A);
  parseU64(Line, "b", Out.B);
  parseU64(Line, "c", Out.C);
  parseF64(Line, "x", Out.X);
  if (NameOut && !parseStr(Line, "name", *NameOut))
    NameOut->clear();
  return true;
}
