//===- support/Metrics.cpp ------------------------------------------------==//

#include "support/Metrics.h"

#include "support/Format.h"

#include <algorithm>

using namespace evm;

const char *evm::metricKindName(MetricKind K) {
  switch (K) {
  case MetricKind::Counter:
    return "counter";
  case MetricKind::Gauge:
    return "gauge";
  case MetricKind::Histogram:
    return "histogram";
  }
  return "?";
}

const MetricValue *MetricsSnapshot::find(const std::string &Name) const {
  auto It = std::lower_bound(Values.begin(), Values.end(), Name,
                             [](const MetricValue &V, const std::string &N) {
                               return V.Name < N;
                             });
  if (It == Values.end() || It->Name != Name)
    return nullptr;
  return &*It;
}

uint64_t MetricsSnapshot::counter(const std::string &Name,
                                  uint64_t Default) const {
  const MetricValue *V = find(Name);
  return V && V->Kind == MetricKind::Counter ? V->Counter : Default;
}

double MetricsSnapshot::gauge(const std::string &Name, double Default) const {
  const MetricValue *V = find(Name);
  return V && V->Kind == MetricKind::Gauge ? V->Gauge : Default;
}

MetricValue &MetricsSnapshot::getOrInsert(const std::string &Name) {
  auto It = std::lower_bound(Values.begin(), Values.end(), Name,
                             [](const MetricValue &V, const std::string &N) {
                               return V.Name < N;
                             });
  if (It != Values.end() && It->Name == Name)
    return *It;
  MetricValue V;
  V.Name = Name;
  return *Values.insert(It, std::move(V));
}

void MetricsSnapshot::setCounter(const std::string &Name, uint64_t Value) {
  MetricValue &V = getOrInsert(Name);
  V.Kind = MetricKind::Counter;
  V.Counter = Value;
}

void MetricsSnapshot::setGauge(const std::string &Name, double Value) {
  MetricValue &V = getOrInsert(Name);
  V.Kind = MetricKind::Gauge;
  V.Gauge = Value;
}

std::string MetricsSnapshot::renderJson() const {
  std::string Out = "{\"metrics\":[";
  for (size_t I = 0; I != Values.size(); ++I) {
    const MetricValue &V = Values[I];
    if (I)
      Out += ',';
    Out += formatString("{\"name\":\"%s\",\"kind\":\"%s\"", V.Name.c_str(),
                        metricKindName(V.Kind));
    switch (V.Kind) {
    case MetricKind::Counter:
      Out += formatString(",\"value\":%llu",
                          static_cast<unsigned long long>(V.Counter));
      break;
    case MetricKind::Gauge:
      Out += formatString(",\"value\":%.17g", V.Gauge);
      break;
    case MetricKind::Histogram:
      Out += formatString(
          ",\"count\":%zu,\"sum\":%.17g,\"min\":%.17g,\"q25\":%.17g,"
          "\"median\":%.17g,\"q75\":%.17g,\"max\":%.17g,\"p50\":%.17g,"
          "\"p90\":%.17g,\"p99\":%.17g",
          V.Box.Count, V.Sum, V.Box.Min, V.Box.Q25, V.Box.Median, V.Box.Q75,
          V.Box.Max, V.P50, V.P90, V.P99);
      break;
    }
    Out += '}';
  }
  Out += "]}";
  return Out;
}

void MetricsRegistry::add(const std::string &Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters[Name] += Delta;
}

void MetricsRegistry::setGauge(const std::string &Name, double Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Gauges[Name] = Value;
}

void MetricsRegistry::observe(const std::string &Name, double Sample) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Histograms[Name].push_back(Sample);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  MetricsSnapshot Snap;
  for (const auto &[Name, Value] : Counters)
    Snap.setCounter(Name, Value);
  for (const auto &[Name, Value] : Gauges)
    Snap.setGauge(Name, Value);
  for (const auto &[Name, Samples] : Histograms) {
    MetricValue &V = Snap.getOrInsert(Name);
    V.Kind = MetricKind::Histogram;
    V.Sum = 0;
    for (double S : Samples)
      V.Sum += S;
    if (!Samples.empty()) {
      V.Box = computeBoxStats(Samples);
      V.P50 = quantile(Samples, 0.50);
      V.P90 = quantile(Samples, 0.90);
      V.P99 = quantile(Samples, 0.99);
    }
  }
  return Snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters.clear();
  Gauges.clear();
  Histograms.clear();
}
