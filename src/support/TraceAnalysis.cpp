//===- support/TraceAnalysis.cpp ------------------------------------------===//

#include "support/TraceAnalysis.h"

#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>
#include <sstream>

using namespace evm;

static std::string levelStr(int Level) {
  switch (Level) {
  case -1:
    return "BASE";
  case 0:
    return "O0";
  case 1:
    return "O1";
  case 2:
    return "O2";
  }
  return "-";
}

const std::string &ParsedTrace::methodName(uint32_t Method) const {
  static const std::string Unknown = "?";
  auto It = MethodNames.find(Method);
  return It == MethodNames.end() ? Unknown : It->second;
}

ErrorOr<ParsedTrace> evm::parseJsonlTrace(const std::string &Text) {
  ParsedTrace Trace;
  std::istringstream In(Text);
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    TraceEvent E;
    std::string Name;
    if (!parseJsonlTraceLine(Line, E, &Name))
      return makeError("malformed trace event at line %zu", LineNo);
    if (!Name.empty())
      Trace.MethodNames.emplace(E.Method, Name);
    Trace.Events.push_back(E);
  }
  for (size_t I = 0; I != Trace.Events.size(); ++I) {
    if (Trace.Events[I].Kind != TraceEventKind::RunBegin)
      continue;
    if (!Trace.Runs.empty())
      Trace.Runs.back().second = I;
    Trace.Runs.push_back({I, Trace.Events.size()});
  }
  return Trace;
}

std::string evm::renderTierTimeline(const ParsedTrace &Trace) {
  std::string Out = "== Per-method tier timeline ==\n";
  for (auto [Begin, End] : Trace.Runs) {
    uint64_t RunOrdinal = Trace.Events[Begin].A;
    Out += formatString("\nrun %llu:\n",
                        static_cast<unsigned long long>(RunOrdinal));
    // Gather each method's transition path and activity totals.
    struct MethodLane {
      std::vector<std::pair<uint64_t, int>> Path; ///< (cycle, new level)
      uint64_t Invocations = 0;
      uint64_t Samples = 0;
    };
    std::map<uint32_t, MethodLane> Lanes;
    for (size_t I = Begin; I != End; ++I) {
      const TraceEvent &E = Trace.Events[I];
      switch (E.Kind) {
      case TraceEventKind::LevelTransition:
        Lanes[E.Method].Path.push_back({E.Cycle, E.Level});
        break;
      case TraceEventKind::MethodInvoke:
        ++Lanes[E.Method].Invocations;
        break;
      case TraceEventKind::ProfileSample:
        ++Lanes[E.Method].Samples;
        break;
      default:
        break;
      }
    }
    TextTable Table({"method", "invocations", "samples", "tier timeline"});
    for (const auto &[Method, Lane] : Lanes) {
      std::string Timeline = "BASE@0";
      for (auto [Cycle, Level] : Lane.Path)
        Timeline += formatString(" -> %s@%llu", levelStr(Level).c_str(),
                                 static_cast<unsigned long long>(Cycle));
      Table.beginRow();
      Table.addCell(Trace.methodName(Method));
      Table.addCell(static_cast<int64_t>(Lane.Invocations));
      Table.addCell(static_cast<int64_t>(Lane.Samples));
      Table.addCell(Timeline);
    }
    Out += Table.render();
  }
  return Out;
}

std::string evm::renderCompileAccounting(const ParsedTrace &Trace) {
  std::string Out = "== Compile-pipeline accounting ==\n\n";
  TextTable Table({"run", "installs", "stall-cycles", "overlap-cycles",
                   "drops", "coalesces", "worker-busy"});
  uint64_t TotalInstalls = 0, TotalStall = 0, TotalOverlap = 0;
  uint64_t TotalDrops = 0, TotalCoalesces = 0;
  for (auto [Begin, End] : Trace.Runs) {
    uint64_t Installs = 0, Stall = 0, Overlap = 0, Drops = 0, Coalesces = 0;
    std::map<unsigned, uint64_t> WorkerBusy;
    for (size_t I = Begin; I != End; ++I) {
      const TraceEvent &E = Trace.Events[I];
      switch (E.Kind) {
      case TraceEventKind::CompileInstall:
        ++Installs;
        (E.C ? Overlap : Stall) += E.B;
        break;
      case TraceEventKind::CompileStart:
        WorkerBusy[E.Tid] += E.B;
        break;
      case TraceEventKind::CompileDrop:
        ++Drops;
        break;
      case TraceEventKind::CompileCoalesce:
        ++Coalesces;
        break;
      default:
        break;
      }
    }
    std::string Busy;
    for (const auto &[Tid, Cycles] : WorkerBusy)
      Busy += formatString("%sw%u:%llu", Busy.empty() ? "" : " ", Tid - 1,
                           static_cast<unsigned long long>(Cycles));
    Table.beginRow();
    Table.addCell(static_cast<int64_t>(Trace.Events[Begin].A));
    Table.addCell(static_cast<int64_t>(Installs));
    Table.addCell(static_cast<int64_t>(Stall));
    Table.addCell(static_cast<int64_t>(Overlap));
    Table.addCell(static_cast<int64_t>(Drops));
    Table.addCell(static_cast<int64_t>(Coalesces));
    Table.addCell(Busy.empty() ? "-" : Busy);
    TotalInstalls += Installs;
    TotalStall += Stall;
    TotalOverlap += Overlap;
    TotalDrops += Drops;
    TotalCoalesces += Coalesces;
  }
  Out += Table.render();
  Out += formatString(
      "\ntotal: %llu installs, %llu stall cycles, %llu overlapped cycles, "
      "%llu drops, %llu coalesces\n",
      static_cast<unsigned long long>(TotalInstalls),
      static_cast<unsigned long long>(TotalStall),
      static_cast<unsigned long long>(TotalOverlap),
      static_cast<unsigned long long>(TotalDrops),
      static_cast<unsigned long long>(TotalCoalesces));
  return Out;
}

/// Cycles the run spent with at least one method installed above Baseline,
/// integrated from level.transition events to the run's end cycle.
static uint64_t cyclesAtOptimizedLevel(const ParsedTrace &Trace, size_t Begin,
                                       size_t End) {
  uint64_t RunEnd = 0;
  std::map<uint32_t, std::pair<uint64_t, int>> Current; // method -> (since, lvl)
  uint64_t Optimized = 0;
  for (size_t I = Begin; I != End; ++I) {
    const TraceEvent &E = Trace.Events[I];
    if (E.Kind == TraceEventKind::RunEnd)
      RunEnd = E.Cycle;
    if (E.Kind != TraceEventKind::LevelTransition)
      continue;
    auto It = Current.find(E.Method);
    if (It != Current.end() && It->second.second >= 0)
      Optimized += E.Cycle - It->second.first;
    Current[E.Method] = {E.Cycle, E.Level};
  }
  for (const auto &[Method, SinceLevel] : Current)
    if (SinceLevel.second >= 0 && RunEnd > SinceLevel.first)
      Optimized += RunEnd - SinceLevel.first;
  return Optimized;
}

std::string evm::renderEvolveDiff(const ParsedTrace &Trace) {
  std::string Out = "== Evolve vs. reactive decision diff ==\n\n";
  TextTable Table({"run", "mode", "predicted", "confidence", "agreed",
                   "recompiles", "opt-cycles", "cycles"});
  // A "recompile" here is an install above Baseline — the events reactive
  // profiling pays for and a correct prediction avoids.
  uint64_t PredictedRuns = 0, ReactiveRuns = 0;
  uint64_t PredictedRecompiles = 0, ReactiveRecompiles = 0;
  uint64_t PredictedOptCycles = 0, ReactiveOptCycles = 0;
  uint64_t Agreements = 0, Outcomes = 0;
  for (auto [Begin, End] : Trace.Runs) {
    const TraceEvent *Predict = nullptr, *Outcome = nullptr;
    uint64_t Recompiles = 0, RunCycles = 0;
    for (size_t I = Begin; I != End; ++I) {
      const TraceEvent &E = Trace.Events[I];
      switch (E.Kind) {
      case TraceEventKind::EvolvePredict:
        Predict = &E;
        break;
      case TraceEventKind::EvolveOutcome:
        Outcome = &E;
        break;
      case TraceEventKind::CompileInstall:
        if (E.Level >= 0)
          ++Recompiles;
        break;
      case TraceEventKind::RunEnd:
        RunCycles = E.Cycle;
        break;
      default:
        break;
      }
    }
    uint64_t OptCycles = cyclesAtOptimizedLevel(Trace, Begin, End);
    bool Used = Predict && Predict->C;
    Table.beginRow();
    Table.addCell(static_cast<int64_t>(Trace.Events[Begin].A));
    Table.addCell(Used ? "predicted" : "reactive");
    Table.addCell(Predict ? levelStr(Predict->Level) : "-");
    if (Predict)
      Table.addCell(Predict->X, 3);
    else
      Table.addCell("-");
    Table.addCell(Outcome ? (Outcome->A ? "yes" : "no") : "-");
    Table.addCell(static_cast<int64_t>(Recompiles));
    Table.addCell(static_cast<int64_t>(OptCycles));
    Table.addCell(static_cast<int64_t>(RunCycles));
    if (Used) {
      ++PredictedRuns;
      PredictedRecompiles += Recompiles;
      PredictedOptCycles += OptCycles;
    } else {
      ++ReactiveRuns;
      ReactiveRecompiles += Recompiles;
      ReactiveOptCycles += OptCycles;
    }
    if (Outcome) {
      ++Outcomes;
      Agreements += Outcome->A ? 1 : 0;
    }
  }
  Out += Table.render();
  if (PredictedRuns && ReactiveRuns) {
    double AvoidedPerRun =
        static_cast<double>(ReactiveRecompiles) / ReactiveRuns -
        static_cast<double>(PredictedRecompiles) / PredictedRuns;
    double OptGainPerRun =
        static_cast<double>(PredictedOptCycles) / PredictedRuns -
        static_cast<double>(ReactiveOptCycles) / ReactiveRuns;
    Out += formatString("\nrecompilations avoided per predicted run: %.2f\n",
                        AvoidedPerRun);
    Out += formatString("cycles at optimized level gained per run:  %.1f\n",
                        OptGainPerRun);
  } else {
    Out += "\nno predicted/reactive split in this trace; diff unavailable\n";
  }
  if (Outcomes)
    Out += formatString("posterior agreement: %llu/%llu runs\n",
                        static_cast<unsigned long long>(Agreements),
                        static_cast<unsigned long long>(Outcomes));
  return Out;
}

std::vector<uint64_t>
evm::methodWeightsFromTrace(const std::vector<TraceEvent> &Events,
                            size_t NumMethods) {
  std::vector<uint64_t> Weights(NumMethods, 0);
  for (const TraceEvent &E : Events) {
    if (E.Kind != TraceEventKind::MethodInvoke &&
        E.Kind != TraceEventKind::ProfileSample)
      continue;
    if (E.Method < NumMethods)
      ++Weights[E.Method];
  }
  return Weights;
}
