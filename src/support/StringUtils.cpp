//===- support/StringUtils.cpp --------------------------------------------==//

#include "support/StringUtils.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace evm;

std::vector<std::string> evm::splitString(std::string_view Text,
                                          char Separator) {
  std::vector<std::string> Pieces;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Separator, Start);
    if (Pos == std::string_view::npos) {
      Pieces.emplace_back(Text.substr(Start));
      return Pieces;
    }
    Pieces.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::vector<std::string> evm::splitWhitespace(std::string_view Text) {
  std::vector<std::string> Pieces;
  size_t I = 0, N = Text.size();
  while (I < N) {
    while (I < N && std::isspace(static_cast<unsigned char>(Text[I])))
      ++I;
    size_t Start = I;
    while (I < N && !std::isspace(static_cast<unsigned char>(Text[I])))
      ++I;
    if (I > Start)
      Pieces.emplace_back(Text.substr(Start, I - Start));
  }
  return Pieces;
}

std::vector<std::string> evm::tokenizeCommandLine(std::string_view Line) {
  std::vector<std::string> Tokens;
  std::string Current;
  bool InToken = false, InQuotes = false;
  for (char C : Line) {
    if (InQuotes) {
      if (C == '"') {
        InQuotes = false;
        continue;
      }
      Current.push_back(C);
      continue;
    }
    if (C == '"') {
      InQuotes = true;
      InToken = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      if (InToken) {
        Tokens.push_back(Current);
        Current.clear();
        InToken = false;
      }
      continue;
    }
    Current.push_back(C);
    InToken = true;
  }
  if (InToken)
    Tokens.push_back(Current);
  return Tokens;
}

std::string evm::trimString(std::string_view Text) {
  size_t Begin = 0, End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return std::string(Text.substr(Begin, End - Begin));
}

bool evm::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

bool evm::endsWith(std::string_view Text, std::string_view Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.compare(Text.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

std::optional<int64_t> evm::parseInteger(std::string_view Text) {
  std::string Owned(Text);
  if (Owned.empty())
    return std::nullopt;
  errno = 0;
  char *End = nullptr;
  long long Value = std::strtoll(Owned.c_str(), &End, 10);
  if (errno != 0 || End != Owned.c_str() + Owned.size())
    return std::nullopt;
  return static_cast<int64_t>(Value);
}

std::optional<double> evm::parseDouble(std::string_view Text) {
  std::string Owned(Text);
  if (Owned.empty())
    return std::nullopt;
  errno = 0;
  char *End = nullptr;
  double Value = std::strtod(Owned.c_str(), &End);
  if (errno != 0 || End != Owned.c_str() + Owned.size())
    return std::nullopt;
  return Value;
}

std::string evm::joinStrings(const std::vector<std::string> &Pieces,
                             std::string_view Separator) {
  std::string Result;
  for (size_t I = 0, E = Pieces.size(); I != E; ++I) {
    if (I != 0)
      Result.append(Separator);
    Result.append(Pieces[I]);
  }
  return Result;
}
