//===- support/Statistics.h - Descriptive statistics helpers --------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mean/median/quantile/box-plot summaries used by the experiment harness to
/// regenerate the paper's Figure 10 boxplots and Table I aggregates.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SUPPORT_STATISTICS_H
#define EVM_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace evm {

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double> &Samples);

/// Sample standard deviation (N-1 denominator); 0 for fewer than 2 samples.
double stddev(const std::vector<double> &Samples);

/// Linear-interpolation quantile for \p Q in [0, 1]; asserts on empty input.
double quantile(std::vector<double> Samples, double Q);

/// Median (the 0.5 quantile).
double median(const std::vector<double> &Samples);

/// Geometric mean; asserts all samples are positive.
double geomean(const std::vector<double> &Samples);

/// Five-number summary backing one box of a Figure-10-style boxplot.
struct BoxStats {
  double Min = 0;
  double Q25 = 0;
  double Median = 0;
  double Q75 = 0;
  double Max = 0;
  size_t Count = 0;
};

/// Computes the five-number summary of \p Samples; asserts on empty input.
BoxStats computeBoxStats(const std::vector<double> &Samples);

/// Pearson correlation coefficient; 0 when either side has no variance.
double pearsonCorrelation(const std::vector<double> &Xs,
                          const std::vector<double> &Ys);

} // namespace evm

#endif // EVM_SUPPORT_STATISTICS_H
