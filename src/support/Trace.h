//===- support/Trace.h - Deterministic VM-event tracing -------------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead recorder for the engine's layered decisions: method
/// invocations, profiler samples, cost-benefit evaluations, compile-queue
/// scheduling, level transitions, and Evolve predictions.  Timestamps are
/// **virtual-clock cycles**, so two identical runs produce bit-identical
/// traces no matter how the OS schedules the background compile workers.
///
/// Cost model: with the `EVM_TRACING` macro compiled out (cmake
/// -DEVM_TRACING=OFF) every record call is dead code; with it compiled in
/// but the runtime flag off, a record call costs one predictable branch
/// (`enabled()` is checked before events are even constructed).  Recording
/// never charges virtual cycles, so enabling tracing cannot perturb the
/// modeled machine.
///
/// Events carry a fixed POD payload (A/B/C uint64 slots plus one double X)
/// whose meaning depends on the kind; the taxonomy is documented per kind
/// below and in DESIGN.md's "Observability" section.  Exporters produce
/// Chrome trace_event JSON (loadable in chrome://tracing or Perfetto; one
/// pid per engine, tid 0 for the execution thread, tid 1+w for compile
/// worker w) and a flat JSONL form that `tools/evm-trace` and the tests
/// parse back.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SUPPORT_TRACE_H
#define EVM_SUPPORT_TRACE_H

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

/// Compile-time gate.  The build defines EVM_TRACING=0 to compile the
/// recorder out entirely (enabled() folds to false and every trace block is
/// dead code); default is compiled-in.
#ifndef EVM_TRACING
#define EVM_TRACING 1
#endif

namespace evm {

/// The event taxonomy.  Payload slot meaning per kind (unused slots are 0):
///
///   Kind              Cycle        Level      A            B          C / X
///   ----------------- ------------ ---------- ------------ ---------- -----
///   run.begin         0            -          run ordinal  overhead   -
///   run.end           end          -          run ordinal  samples    C=stall compile cycles
///   method.invoke     now          tier       invocation#  depth      -
///   profile.sample    now          level      samples      -          -
///   costbenefit.eval  now          chosen(*)  future cyc   backlog    C=current level idx, X=best cost
///   level.transition  now          new level  old lvl idx  #compiles  -
///   compile.enqueue   request      level      seqno        cost       C=worker
///   compile.start     start        level      seqno        cost       - (tid = 1+worker)
///   compile.ready     ready        level      seqno        -          - (tid = 1+worker)
///   compile.install   now          level      seqno(**)    cost       C=background 0/1
///   compile.drop      request      level      in-flight    -          -
///   compile.coalesce  request      level      exist seqno  exist lvl  -
///   evolve.predict    0            max pred   run ordinal  fv hash    C=used 0/1, X=confidence before
///   evolve.outcome    end          max ideal  agreed 0/1   #correct   C=#methods, X=accuracy
///   model.rebuild     end          -          runs seen    -          X=guard confidence
///   repository.update end          -          runs in repo -          -
///   store.load        0            -          runs loaded  models     C=sections dropped, X=confidence loaded
///   store.save        0            -          runs saved   models     C=generation
///   fleet.tenant      total cyc    -          tenant id    runs       C=checkpoints, X=mean accuracy
///   fleet.merge       0            -          shards       generation C=runs in global, X=0
///
///   (*)  kTraceNoLevel when the cost-benefit model said "stay put".
///   (**) synchronous compiles have no queue sequence number; A is 0.
///
///   fleet.* events are recorded by the fleet coordinator *after* all
///   tenant threads join, in tenant-ID order, so a fleet trace is
///   byte-identical for every --threads value.
enum class TraceEventKind : uint8_t {
  RunBegin,
  RunEnd,
  MethodInvoke,
  ProfileSample,
  CostBenefitEval,
  LevelTransition,
  CompileEnqueue,
  CompileStart,
  CompileReady,
  CompileInstall,
  CompileDrop,
  CompileCoalesce,
  EvolvePredict,
  EvolveOutcome,
  ModelRebuild,
  RepositoryUpdate,
  StoreLoad,
  StoreSave,
  FleetTenant,
  FleetMerge,
};

constexpr int NumTraceEventKinds = 20;

/// Stable wire name of \p K ("compile.enqueue", ...).
const char *traceEventKindName(TraceEventKind K);

/// Inverse of traceEventKindName; nullopt for unknown names.
std::optional<TraceEventKind> traceEventKindFromName(const std::string &Name);

/// Level value meaning "no level" (distinct from Baseline == -1).
constexpr int8_t kTraceNoLevel = -2;

/// One recorded event.  POD; 48 bytes.
struct TraceEvent {
  uint64_t Cycle = 0; ///< virtual-clock timestamp
  uint64_t A = 0;     ///< kind-specific (see taxonomy table)
  uint64_t B = 0;
  uint64_t C = 0;
  double X = 0;
  uint32_t Method = 0; ///< bc::MethodId; 0 for module-level events
  TraceEventKind Kind = TraceEventKind::RunBegin;
  int8_t Level = kTraceNoLevel; ///< OptLevel as int, or kTraceNoLevel
  uint8_t Tid = 0;              ///< 0 = execution thread, 1+w = worker w
};

/// The growable event arena.  Appends take a mutex so the recorder stays
/// race-free even if future code records from worker threads; all current
/// producers run on the execution thread, which is what makes append order
/// (and therefore export order) deterministic.
class TraceRecorder {
public:
  /// \p MaxEvents bounds the arena; further events are counted in
  /// droppedEvents() and discarded (deterministically — the cap is hit at
  /// the same append in every identical run).
  explicit TraceRecorder(size_t MaxEvents = size_t(1) << 22)
      : MaxEvents(MaxEvents) {}

  /// The runtime flag.  With EVM_TRACING compiled out this is always
  /// false and trace blocks behind it fold away.
  bool enabled() const {
#if EVM_TRACING
    return Enabled;
#else
    return false;
#endif
  }

  void setEnabled(bool On) { Enabled = On; }

  /// Appends \p E if tracing is on.  Callers on hot paths should guard
  /// event construction with enabled() themselves; this re-check keeps the
  /// slow path safe regardless.
  void record(const TraceEvent &E) {
#if EVM_TRACING
    if (!Enabled)
      return;
    append(E);
#else
    (void)E;
#endif
  }

  void clear();
  size_t size() const;
  uint64_t droppedEvents() const;

  /// Events in export order: the append sequence split into per-run
  /// segments at each run.begin (trailing evolve.predict events move into
  /// the segment they predict for), each segment stably sorted by Cycle
  /// with the run.begin marker hoisted to the front of its cycle.  This
  /// keeps multi-run traces (virtual clocks restart at 0 every run) in
  /// run-major order while placing future-stamped compile.start/ready
  /// events at their virtual time.
  std::vector<TraceEvent> exportOrder() const;

private:
  void append(const TraceEvent &E);

  mutable std::mutex Mutex;
  std::vector<TraceEvent> Events;
  size_t MaxEvents;
  uint64_t Dropped = 0;
  bool Enabled = false;
};

/// Export metadata: method-id -> name mapping and process naming for the
/// Chrome exporter.
struct TraceMeta {
  std::string ProcessName = "evm-engine";
  uint32_t Pid = 1;
  /// MethodNames[id] labels events; ids beyond the vector render as "m<id>".
  std::vector<std::string> MethodNames;
};

/// Chrome trace_event JSON ("traceEvents" array, ts in virtual cycles,
/// compile spans as complete events on their worker's tid; consecutive runs
/// are laid out back-to-back on the time axis).  Load in chrome://tracing
/// or https://ui.perfetto.dev.
std::string renderChromeTrace(const std::vector<TraceEvent> &Events,
                              const TraceMeta &Meta);

/// Flat JSONL: one event per line, fixed key order
///   {"cycle":..,"kind":"..","method":..,"name":"..","level":..,"tid":..,
///    "a":..,"b":..,"c":..,"x":..}
/// Byte-deterministic for identical event sequences.
std::string renderJsonlTrace(const std::vector<TraceEvent> &Events,
                             const TraceMeta &Meta);

/// Parses one JSONL line back into an event (and the method name, when
/// \p NameOut is non-null).  Returns false on malformed input.
bool parseJsonlTraceLine(const std::string &Line, TraceEvent &Out,
                         std::string *NameOut = nullptr);

} // namespace evm

#endif // EVM_SUPPORT_TRACE_H
