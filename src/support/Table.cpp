//===- support/Table.cpp --------------------------------------------------==//

#include "support/Table.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace evm;

TextTable::TextTable(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TextTable::beginRow() { Rows.emplace_back(); }

void TextTable::addCell(std::string Text) {
  assert(!Rows.empty() && "addCell before beginRow");
  Rows.back().push_back(std::move(Text));
}

void TextTable::addCell(int64_t Value) {
  addCell(formatString("%lld", static_cast<long long>(Value)));
}

void TextTable::addCell(double Value, int Decimals) {
  addCell(formatString("%.*f", Decimals, Value));
}

std::string TextTable::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0, E = Header.size(); I != E; ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0, E = std::min(Row.size(), Widths.size()); I != E; ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0, E = Widths.size(); I != E; ++I) {
      std::string Cell = I < Row.size() ? Row[I] : std::string();
      Cell.resize(Widths[I], ' ');
      if (I != 0)
        Line += "  ";
      Line += Cell;
    }
    // Trim trailing padding so lines do not end in spaces.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    Line += '\n';
    return Line;
  };

  std::string Out = RenderRow(Header);
  size_t RuleWidth = 0;
  for (size_t W : Widths)
    RuleWidth += W;
  RuleWidth += Widths.empty() ? 0 : 2 * (Widths.size() - 1);
  Out += std::string(RuleWidth, '-') + "\n";
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}

std::string evm::renderBoxLine(double Min, double Q25, double Med, double Q75,
                               double Max, double AxisMin, double AxisMax,
                               int Width) {
  assert(Width > 2 && "box line too narrow");
  assert(AxisMax > AxisMin && "degenerate axis");
  auto ToColumn = [&](double Value) {
    double Clamped = std::max(AxisMin, std::min(AxisMax, Value));
    double Fraction = (Clamped - AxisMin) / (AxisMax - AxisMin);
    return static_cast<int>(Fraction * (Width - 1));
  };
  std::string Line(static_cast<size_t>(Width), ' ');
  int CMin = ToColumn(Min), C25 = ToColumn(Q25), CMed = ToColumn(Med),
      C75 = ToColumn(Q75), CMax = ToColumn(Max);
  for (int I = CMin; I <= CMax; ++I)
    Line[static_cast<size_t>(I)] = '-';
  for (int I = C25; I <= C75; ++I)
    Line[static_cast<size_t>(I)] = '=';
  Line[static_cast<size_t>(CMin)] = '|';
  Line[static_cast<size_t>(CMax)] = '|';
  Line[static_cast<size_t>(CMed)] = 'M';
  return Line;
}
