//===- support/Metrics.h - Named counters, gauges, and histograms ---------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small metrics registry: named counters (monotonic uint64 totals),
/// gauges (instantaneous doubles), and histograms (sample sets summarized
/// through support/Statistics).  Producers mutate a MetricsRegistry during a
/// run; consumers receive an immutable MetricsSnapshot — a name-sorted value
/// list with a stable JSON rendering, so two identical runs produce
/// byte-identical snapshots.  RunResult carries one snapshot per execution
/// and exposes the legacy overhead-accounting fields as thin wrappers over
/// it.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SUPPORT_METRICS_H
#define EVM_SUPPORT_METRICS_H

#include "support/Statistics.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace evm {

/// What a metric measures.
enum class MetricKind : uint8_t {
  Counter,   ///< monotonic event/cycle total
  Gauge,     ///< instantaneous value
  Histogram, ///< distribution, summarized as a five-number box
};

/// Human-readable kind name ("counter", "gauge", "histogram").
const char *metricKindName(MetricKind K);

/// One named metric inside a snapshot.  Only the fields matching Kind are
/// meaningful.
struct MetricValue {
  std::string Name;
  MetricKind Kind = MetricKind::Counter;
  uint64_t Counter = 0; ///< Kind == Counter
  double Gauge = 0;     ///< Kind == Gauge
  BoxStats Box;         ///< Kind == Histogram (Box.Count = sample count)
  double Sum = 0;       ///< Kind == Histogram: sum of samples
  /// Kind == Histogram: latency-style percentiles (linear interpolation,
  /// like the box quartiles).  P50 duplicates Box.Median by construction.
  double P50 = 0;
  double P90 = 0;
  double P99 = 0;
};

/// An immutable, name-sorted copy of a registry's state.
class MetricsSnapshot {
public:
  /// The metric named \p Name, or null.
  const MetricValue *find(const std::string &Name) const;

  /// Counter value of \p Name, or \p Default when absent (or not a counter).
  uint64_t counter(const std::string &Name, uint64_t Default = 0) const;

  /// Gauge value of \p Name, or \p Default when absent (or not a gauge).
  double gauge(const std::string &Name, double Default = 0) const;

  /// Inserts or overwrites a counter/gauge, keeping name order.  Post-run
  /// augmentation (the evolvable VM folds its own costs into the engine's
  /// snapshot) goes through these.
  void setCounter(const std::string &Name, uint64_t Value);
  void setGauge(const std::string &Name, double Value);

  /// Stable JSON rendering: {"metrics":[{...},...]} with name-sorted
  /// entries, fixed key order, and round-trippable number formatting.
  std::string renderJson() const;

  const std::vector<MetricValue> &values() const { return Values; }
  bool empty() const { return Values.empty(); }

private:
  friend class MetricsRegistry;
  MetricValue &getOrInsert(const std::string &Name);

  std::vector<MetricValue> Values; ///< sorted by Name
};

/// The mutable registry producers write to.  Thread-safe: every mutator and
/// snapshot() takes an internal mutex, so one registry may be shared by
/// concurrent producers (fleet tenant threads, compile workers) without
/// losing counts.  Engine hot paths still accumulate in plain members and
/// fold into a registry once per run, so the lock is never on the
/// per-bytecode path; snapshots taken while producers are active see a
/// consistent (point-in-time) state.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Adds \p Delta to counter \p Name (creating it at zero).
  void add(const std::string &Name, uint64_t Delta = 1);

  /// Sets gauge \p Name.
  void setGauge(const std::string &Name, double Value);

  /// Appends one sample to histogram \p Name.
  void observe(const std::string &Name, double Sample);

  /// Snapshots the current state (sorted, summarized).
  MetricsSnapshot snapshot() const;

  /// Drops every metric (between runs).
  void reset();

private:
  mutable std::mutex Mutex;
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, std::vector<double>> Histograms;
};

} // namespace evm

#endif // EVM_SUPPORT_METRICS_H
