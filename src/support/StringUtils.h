//===- support/StringUtils.h - Small string helpers -----------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String splitting, trimming, predicate, and number-parsing helpers shared
/// by the XICL front end, the bytecode assembler, and the harness.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SUPPORT_STRINGUTILS_H
#define EVM_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace evm {

/// Splits \p Text at every occurrence of \p Separator.  Empty pieces are
/// kept, so "a::b" split on ':' yields {"a", "", "b"}.
std::vector<std::string> splitString(std::string_view Text, char Separator);

/// Splits \p Text on runs of whitespace; empty pieces are dropped.
std::vector<std::string> splitWhitespace(std::string_view Text);

/// Tokenizes a POSIX-ish command line: whitespace-separated words with
/// support for double-quoted segments ("two words" is one token).
std::vector<std::string> tokenizeCommandLine(std::string_view CommandLine);

/// Removes leading and trailing whitespace.
std::string trimString(std::string_view Text);

/// True when \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// True when \p Text ends with \p Suffix.
bool endsWith(std::string_view Text, std::string_view Suffix);

/// Parses a signed decimal integer; returns nullopt on any trailing junk.
std::optional<int64_t> parseInteger(std::string_view Text);

/// Parses a floating-point number; returns nullopt on any trailing junk.
std::optional<double> parseDouble(std::string_view Text);

/// Joins \p Pieces with \p Separator between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Pieces,
                        std::string_view Separator);

} // namespace evm

#endif // EVM_SUPPORT_STRINGUTILS_H
