//===- support/Stats.h - Steady-state run-series analytics ----------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Steady-state analytics for per-iteration run series, after Barrett et
/// al.'s "Virtual Machine Warmup Blows Hot and Cold": per-run means hide
/// non-warmup pathologies (slowdowns, cycles, no steady state at all), so
/// every bench series is segmented with a changepoint detector and
/// classified before any mean is trusted.
///
/// The pipeline is:
///
///   1. detectChangepoints — PELT (Killick et al.) over a squared-error
///      mean-shift cost with a BIC-style penalty scaled by a robust
///      first-difference noise estimate.  Exact for the cost used, O(n^2)
///      worst case (series here are tens to hundreds of iterations).
///   2. analyzeSeries — classifies the segmented series as one of
///      flat / warmup / slowdown / cyclic / no-steady-state, identifies the
///      steady-state window (the maximal suffix of segments whose means
///      agree with the final segment), and summarizes it with a
///      deterministic percentile-bootstrap confidence interval of the mean.
///   3. renderSeriesJson — the stable JSON rendering bench --json documents
///      embed (see bench/BenchJson.h) and tools/bench-compare and
///      tools/evm-warmup consume.
///
/// Everything is deterministic: the bootstrap uses a fixed-seed xorshift
/// generator, so identical series render byte-identical JSON.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SUPPORT_STATS_H
#define EVM_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace evm {

/// What shape a per-iteration series has (Barrett et al.'s taxonomy, with
/// "good inconsistent" collapsed into the per-shape classes).
enum class SeriesClass : uint8_t {
  Flat,          ///< one steady segment from the first iteration
  Warmup,        ///< reaches a steady state faster than it started
  Slowdown,      ///< reaches a steady state slower than it started
  Cyclic,        ///< alternates between repeated levels; no single steady mean
  NoSteadyState, ///< still shifting when the series ends
};

/// Stable lowercase name ("flat", "warmup", "slowdown", "cyclic",
/// "no-steady-state") used in JSON documents and reports.
const char *seriesClassName(SeriesClass C);

/// Parses a seriesClassName back; returns false on unknown names.
bool seriesClassFromName(const std::string &Name, SeriesClass &Out);

/// One homogeneous segment [Begin, End) of a series.
struct SeriesSegment {
  size_t Begin = 0; ///< inclusive
  size_t End = 0;   ///< exclusive
  double Mean = 0;
  double Stddev = 0;
  size_t length() const { return End - Begin; }
};

/// The steady-state window and its bootstrap confidence interval.
struct SteadyStateSummary {
  size_t Begin = 0; ///< first iteration inside the steady window
  size_t Count = 0; ///< iterations inside the window
  double Mean = 0;
  double CILow = 0;  ///< percentile-bootstrap CI of the mean
  double CIHigh = 0;
};

/// Knobs for segmentation, classification, and the bootstrap.  The
/// defaults suit virtual-clock bench series (tens to hundreds of
/// iterations, relative shifts of a few percent or more).
struct SeriesOptions {
  /// Changepoint penalty; 0 selects the automatic BIC-style penalty
  /// (3 * sigma^2 * log n, sigma estimated robustly from first
  /// differences so mean shifts do not inflate it).
  double Penalty = 0;
  /// Minimum segment length the detector may emit.
  size_t MinSegment = 3;
  /// Segment means within this relative distance (of the series scale)
  /// count as equal for steady-window extension and classification.
  double RelTolerance = 0.02;
  /// The steady window must cover at least this fraction of the series
  /// (and at least MinSegment iterations), else: no steady state.
  double SteadyTailFraction = 0.25;
  /// Percentile-bootstrap resamples for the steady-mean CI.
  size_t BootstrapResamples = 200;
  /// Two-sided CI confidence level.
  double Confidence = 0.95;
  /// Bootstrap RNG seed (fixed so renderings are byte-stable).
  uint64_t BootstrapSeed = 20090301;
  /// True when smaller samples are better (cycles, latency): warmup means
  /// the steady state is *below* the start.  False for speedup-like
  /// series, where warmup means the steady state is *above* the start.
  bool LowerIsBetter = true;
};

/// Everything analyzeSeries derives from one series.
struct SeriesAnalysis {
  std::vector<SeriesSegment> Segments; ///< covers [0, n), in order
  std::vector<size_t> Changepoints;    ///< interior segment starts
  SeriesClass Class = SeriesClass::Flat;
  bool HasSteadyState = false; ///< false for cyclic / no-steady-state
  SteadyStateSummary Steady;   ///< meaningful only when HasSteadyState
};

/// PELT changepoint detection over \p Series.  Returns the interior
/// segment start indices, ascending (empty = one homogeneous segment).
std::vector<size_t> detectChangepoints(const std::vector<double> &Series,
                                       const SeriesOptions &Opts = {});

/// Segments, classifies, and summarizes \p Series.  Empty input yields an
/// empty no-steady-state analysis; short input (under 2 * MinSegment)
/// yields a single flat segment.
SeriesAnalysis analyzeSeries(const std::vector<double> &Series,
                             const SeriesOptions &Opts = {});

/// Deterministic percentile-bootstrap CI of the mean of \p Samples.
/// Degenerate inputs never divide by zero: empty gives [0, 0], a single
/// sample (or all-identical samples) gives [x, x].
void bootstrapMeanCI(const std::vector<double> &Samples, double Confidence,
                     size_t Resamples, uint64_t Seed, double &Low,
                     double &High);

/// Stable JSON rendering of one named series and its analysis, as embedded
/// in bench --json documents:
///
///   {"name":"...","unit":"...","lower_is_better":true,
///    "samples":[...],
///    "analysis":{"class":"warmup","changepoints":[30],
///      "segments":[{"begin":0,"end":30,"mean":...},...],
///      "steady":{"begin":30,"count":70,"mean":...,
///                "ci_low":...,"ci_high":...}}}
///
/// The "steady" object is omitted when the series has no steady state.
std::string renderSeriesJson(const std::string &Name, const std::string &Unit,
                             bool LowerIsBetter,
                             const std::vector<double> &Samples,
                             const SeriesAnalysis &Analysis);

/// The module's built-in regression check: synthetic warmup / slowdown /
/// flat / cyclic / no-steady-state series with known changepoints must
/// segment within +/- 1 iteration and classify exactly; bootstrap CIs must
/// cover the true mean and stay well-defined on degenerate inputs.
/// Returns the number of failed checks (0 = pass); prints one PASS/FAIL
/// line per check when \p Verbose.
int statsSelfTest(bool Verbose);

} // namespace evm

#endif // EVM_SUPPORT_STATS_H
