//===- support/ArgParse.h - Shared command-line option helpers ------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The option-matching helpers every CLI in this repo shares (evm_cli,
/// evm-served): value options accept both the `--opt=VALUE` and the
/// two-token `--opt VALUE` spelling, and parse errors print a uniform
/// message on stderr so callers can simply `return 2`.
///
/// All tools follow one exit-code contract:
///
///   0  success
///   1  scenario/finding failure (assembly error, trapped run, failed gate)
///   2  usage error (bad or unknown flag, wrong positional arguments)
///   3  file I/O error (unreadable input, unwritable output or store)
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SUPPORT_ARGPARSE_H
#define EVM_SUPPORT_ARGPARSE_H

#include <cstdint>
#include <string>

namespace evm {

/// The documented exit-code contract (see file comment).
enum ExitCode : int {
  ExitSuccess = 0,
  ExitFailure = 1,
  ExitUsage = 2,
  ExitIo = 3,
};

/// Matches `--NAME=VALUE` or the two-token form `--NAME VALUE` (consuming
/// the next argv element).  Returns true when \p Arg is this option;
/// \p HasVal tells whether a value was actually present.
bool matchValueFlag(const std::string &Arg, const std::string &Name,
                    int Argc, char **Argv, int &I, std::string &Val,
                    bool &HasVal);

/// Parses an integer option value with a lower bound; prints the error
/// ("error: bad NAME value '...'") on stderr when the value is missing,
/// malformed, or below \p Min.
bool parseIntOption(const char *Name, const std::string &Val, bool HasVal,
                    int64_t Min, int64_t &Dest);

/// Requires a non-empty string value; prints "error: NAME needs WHAT" on
/// stderr otherwise (\p What reads like "a file" or "a directory").
bool parseStringOption(const char *Name, const std::string &Val, bool HasVal,
                       const char *What, std::string &Dest);

} // namespace evm

#endif // EVM_SUPPORT_ARGPARSE_H
