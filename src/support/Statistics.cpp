//===- support/Statistics.cpp ---------------------------------------------==//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace evm;

double evm::mean(const std::vector<double> &Samples) {
  if (Samples.empty())
    return 0;
  double Sum = 0;
  for (double S : Samples)
    Sum += S;
  return Sum / static_cast<double>(Samples.size());
}

double evm::stddev(const std::vector<double> &Samples) {
  if (Samples.size() < 2)
    return 0;
  double M = mean(Samples);
  double SumSq = 0;
  for (double S : Samples)
    SumSq += (S - M) * (S - M);
  return std::sqrt(SumSq / static_cast<double>(Samples.size() - 1));
}

double evm::quantile(std::vector<double> Samples, double Q) {
  assert(!Samples.empty() && "quantile of empty sample");
  assert(Q >= 0.0 && Q <= 1.0 && "quantile outside [0,1]");
  std::sort(Samples.begin(), Samples.end());
  if (Samples.size() == 1)
    return Samples.front();
  double Position = Q * static_cast<double>(Samples.size() - 1);
  size_t Lower = static_cast<size_t>(Position);
  size_t Upper = std::min(Lower + 1, Samples.size() - 1);
  double Fraction = Position - static_cast<double>(Lower);
  return Samples[Lower] + Fraction * (Samples[Upper] - Samples[Lower]);
}

double evm::median(const std::vector<double> &Samples) {
  return quantile(Samples, 0.5);
}

double evm::geomean(const std::vector<double> &Samples) {
  if (Samples.empty())
    return 0;
  double LogSum = 0;
  for (double S : Samples) {
    assert(S > 0 && "geomean requires positive samples");
    LogSum += std::log(S);
  }
  return std::exp(LogSum / static_cast<double>(Samples.size()));
}

BoxStats evm::computeBoxStats(const std::vector<double> &Samples) {
  assert(!Samples.empty() && "boxplot of empty sample");
  BoxStats Stats;
  Stats.Min = quantile(Samples, 0.0);
  Stats.Q25 = quantile(Samples, 0.25);
  Stats.Median = quantile(Samples, 0.5);
  Stats.Q75 = quantile(Samples, 0.75);
  Stats.Max = quantile(Samples, 1.0);
  Stats.Count = Samples.size();
  return Stats;
}

double evm::pearsonCorrelation(const std::vector<double> &Xs,
                               const std::vector<double> &Ys) {
  assert(Xs.size() == Ys.size() && "mismatched sample sizes");
  if (Xs.size() < 2)
    return 0;
  double MX = mean(Xs), MY = mean(Ys);
  double Cov = 0, VarX = 0, VarY = 0;
  for (size_t I = 0, E = Xs.size(); I != E; ++I) {
    Cov += (Xs[I] - MX) * (Ys[I] - MY);
    VarX += (Xs[I] - MX) * (Xs[I] - MX);
    VarY += (Ys[I] - MY) * (Ys[I] - MY);
  }
  if (VarX == 0 || VarY == 0)
    return 0;
  return Cov / std::sqrt(VarX * VarY);
}
