//===- support/Profiler.cpp -----------------------------------------------==//

#include "support/Profiler.h"

#include "support/Format.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace evm;

#if EVM_PROFILING
thread_local PhaseProfiler *PhaseProfiler::Installed = nullptr;
#endif

PhaseProfiler::PhaseProfiler() {
  Nodes.push_back(Node()); // synthetic root
  Stack.push_back(0);
}

ProfilerInstallGuard::ProfilerInstallGuard(PhaseProfiler *P) {
#if EVM_PROFILING
  Previous = PhaseProfiler::Installed;
  PhaseProfiler::Installed = P;
#else
  (void)P;
#endif
}

ProfilerInstallGuard::~ProfilerInstallGuard() {
#if EVM_PROFILING
  PhaseProfiler::Installed = Previous;
#endif
}

int32_t PhaseProfiler::childOf(int32_t Parent, std::string_view Name) {
  int32_t Prev = -1;
  for (int32_t C = Nodes[Parent].FirstChild; C != -1;
       C = Nodes[C].NextSibling) {
    if (Nodes[C].Name == Name)
      return C;
    Prev = C;
  }
  int32_t New = static_cast<int32_t>(Nodes.size());
  Node N;
  N.Name = std::string(Name);
  N.Parent = Parent;
  Nodes.push_back(std::move(N));
  if (Prev == -1)
    Nodes[Parent].FirstChild = New;
  else
    Nodes[Prev].NextSibling = New;
  return New;
}

void PhaseProfiler::enter(std::string_view Name) {
  int32_t Current = Stack.back();
  // Self-recursion collapse and the depth bound both re-push the current
  // node so exit() stays symmetric without growing the tree.
  if (Nodes[Current].Name == Name ||
      Stack.size() > static_cast<size_t>(kMaxDepth)) {
    ++Nodes[Current].Count;
    Stack.push_back(Current);
    return;
  }
  int32_t C = childOf(Current, Name);
  ++Nodes[C].Count;
  Stack.push_back(C);
}

void PhaseProfiler::exit() {
  assert(Stack.size() > 1 && "exit() without matching enter()");
  Stack.pop_back();
}

void PhaseProfiler::charge(uint64_t Cycles) {
  Nodes[Stack.back()].Cycles += Cycles;
}

void PhaseProfiler::chargeAt(std::initializer_list<std::string_view> Path,
                             uint64_t Cycles, uint64_t Count) {
  int32_t N = 0;
  for (std::string_view Name : Path)
    N = childOf(N, Name);
  Nodes[N].Cycles += Cycles;
  Nodes[N].Count += Count;
}

void PhaseProfiler::chargeAt(const std::vector<std::string> &Path,
                             uint64_t Cycles, uint64_t Count) {
  int32_t N = 0;
  for (const std::string &Name : Path)
    N = childOf(N, Name);
  Nodes[N].Cycles += Cycles;
  Nodes[N].Count += Count;
}

uint64_t
PhaseProfiler::attributeChild(std::initializer_list<std::string_view> Path,
                              std::string_view Child, uint64_t Cycles,
                              uint64_t Count) {
  int32_t N = 0;
  for (std::string_view Name : Path)
    N = childOf(N, Name);
  uint64_t Moved = std::min(Cycles, Nodes[N].Cycles);
  int32_t C = childOf(N, Child);
  Nodes[N].Cycles -= Moved;
  Nodes[C].Cycles += Moved;
  Nodes[C].Count += Count;
  return Moved;
}

uint64_t PhaseProfiler::splitToChild(std::string_view Child, uint64_t Cycles,
                                     uint64_t Count) {
  int32_t N = Stack.back();
  uint64_t Moved = std::min(Cycles, Nodes[N].Cycles);
  int32_t C = childOf(N, Child);
  Nodes[N].Cycles -= Moved;
  Nodes[C].Cycles += Moved;
  Nodes[C].Count += Count;
  return Moved;
}

void PhaseProfiler::reset() {
  assert(Stack.size() == 1 && "reset() inside an open scope");
  Nodes.clear();
  Nodes.push_back(Node());
  Stack.assign(1, 0);
}

PhaseTreeSnapshot PhaseProfiler::snapshot() const {
  PhaseTreeSnapshot Snap;
  // Depth-first walk assembling stack strings; the root itself is exported
  // only if something was charged outside any scope.
  std::vector<std::string> Paths(Nodes.size());
  for (size_t I = 1; I != Nodes.size(); ++I) {
    const Node &N = Nodes[I];
    Paths[I] = N.Parent == 0 ? N.Name : Paths[N.Parent] + ";" + N.Name;
    if (N.Cycles == 0 && N.Count == 0)
      continue; // structural-only intermediate created by chargeAt
    Snap.Entries.push_back({Paths[I], N.Cycles, N.Count});
  }
  if (Nodes[0].Cycles != 0)
    Snap.Entries.push_back({"(unattributed)", Nodes[0].Cycles, 0});
  std::sort(Snap.Entries.begin(), Snap.Entries.end(),
            [](const PhaseTreeSnapshot::Entry &A,
               const PhaseTreeSnapshot::Entry &B) { return A.Stack < B.Stack; });
  return Snap;
}

uint64_t PhaseTreeSnapshot::totalUnder(std::string_view Stack) const {
  uint64_t Total = 0;
  std::string Prefix = std::string(Stack) + ";";
  for (const Entry &E : Entries)
    if (E.Stack == Stack || startsWith(E.Stack, Prefix))
      Total += E.Cycles;
  return Total;
}

uint64_t PhaseTreeSnapshot::cyclesAt(std::string_view Stack) const {
  for (const Entry &E : Entries)
    if (E.Stack == Stack)
      return E.Cycles;
  return 0;
}

std::string PhaseTreeSnapshot::renderJson() const {
  std::string Out = "{\"phases\":[";
  for (size_t I = 0; I != Entries.size(); ++I) {
    const Entry &E = Entries[I];
    if (I)
      Out += ',';
    Out += formatString("{\"stack\":\"%s\",\"cycles\":%llu,\"count\":%llu}",
                        E.Stack.c_str(),
                        static_cast<unsigned long long>(E.Cycles),
                        static_cast<unsigned long long>(E.Count));
  }
  Out += "]}";
  return Out;
}

std::string PhaseTreeSnapshot::renderCollapsed() const {
  std::string Out;
  for (const Entry &E : Entries) {
    if (E.Cycles == 0)
      continue;
    Out += formatString("%s %llu\n", E.Stack.c_str(),
                        static_cast<unsigned long long>(E.Cycles));
  }
  return Out;
}

std::string PhaseTreeSnapshot::renderSpeedscope(const std::string &Name) const {
  // Frame table: unique frame names in first-appearance order over the
  // (stack-sorted) entries — deterministic.
  std::vector<std::string> Frames;
  auto frameIndex = [&](const std::string &F) {
    for (size_t I = 0; I != Frames.size(); ++I)
      if (Frames[I] == F)
        return I;
    Frames.push_back(F);
    return Frames.size() - 1;
  };
  std::string Samples, Weights;
  uint64_t Total = 0;
  bool First = true;
  for (const Entry &E : Entries) {
    if (E.Cycles == 0)
      continue;
    if (!First) {
      Samples += ',';
      Weights += ',';
    }
    First = false;
    Samples += '[';
    std::vector<std::string> Parts = splitString(E.Stack, ';');
    for (size_t I = 0; I != Parts.size(); ++I) {
      if (I)
        Samples += ',';
      Samples += std::to_string(frameIndex(Parts[I]));
    }
    Samples += ']';
    Weights += std::to_string(E.Cycles);
    Total += E.Cycles;
  }
  std::string FrameJson;
  for (size_t I = 0; I != Frames.size(); ++I) {
    if (I)
      FrameJson += ',';
    FrameJson += formatString("{\"name\":\"%s\"}", Frames[I].c_str());
  }
  return formatString(
      "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\","
      "\"shared\":{\"frames\":[%s]},"
      "\"profiles\":[{\"type\":\"sampled\",\"name\":\"%s\",\"unit\":\"none\","
      "\"startValue\":0,\"endValue\":%llu,\"samples\":[%s],\"weights\":[%s]}],"
      "\"exporter\":\"evm\"}",
      FrameJson.c_str(), Name.c_str(), static_cast<unsigned long long>(Total),
      Samples.c_str(), Weights.c_str());
}

namespace {

/// Scans for "KEY": after \p From inside [From, To); returns the value
/// start or npos.
size_t findKey(const std::string &Text, size_t From, size_t To,
               const char *Key) {
  std::string Needle = std::string("\"") + Key + "\":";
  size_t At = Text.find(Needle, From);
  if (At == std::string::npos || At >= To)
    return std::string::npos;
  return At + Needle.size();
}

} // namespace

ErrorOr<PhaseTreeSnapshot> evm::parsePhaseTreeJson(const std::string &Text) {
  PhaseTreeSnapshot Snap;
  size_t Array = Text.find("\"phases\":[");
  if (Array == std::string::npos)
    return makeError("no \"phases\" array in profile document");
  size_t At = Array + 10;
  size_t End = Text.find(']', At);
  if (End == std::string::npos)
    return makeError("unterminated \"phases\" array");
  while (true) {
    size_t Open = Text.find('{', At);
    if (Open == std::string::npos || Open > End)
      break;
    size_t Close = Text.find('}', Open);
    if (Close == std::string::npos || Close > End)
      return makeError("unterminated phase object");
    PhaseTreeSnapshot::Entry E;
    size_t S = findKey(Text, Open, Close, "stack");
    size_t C = findKey(Text, Open, Close, "cycles");
    size_t N = findKey(Text, Open, Close, "count");
    if (S == std::string::npos || C == std::string::npos ||
        N == std::string::npos || Text[S] != '"')
      return makeError("malformed phase object near offset %zu", Open);
    size_t SEnd = Text.find('"', S + 1);
    if (SEnd == std::string::npos || SEnd > Close)
      return makeError("malformed phase stack near offset %zu", Open);
    E.Stack = Text.substr(S + 1, SEnd - S - 1);
    auto Cycles = parseInteger(
        Text.substr(C, Text.find_first_of(",}", C) - C));
    auto Count =
        parseInteger(Text.substr(N, Text.find_first_of(",}", N) - N));
    if (!Cycles || !Count || *Cycles < 0 || *Count < 0)
      return makeError("malformed phase numbers near offset %zu", Open);
    E.Cycles = static_cast<uint64_t>(*Cycles);
    E.Count = static_cast<uint64_t>(*Count);
    Snap.Entries.push_back(std::move(E));
    At = Close + 1;
  }
  return Snap;
}
