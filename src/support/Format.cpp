//===- support/Format.cpp -------------------------------------------------==//

#include "support/Format.h"
#include "support/Error.h"

#include <cstdio>
#include <vector>

using namespace evm;

std::string evm::formatStringV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();
  std::vector<char> Buffer(static_cast<size_t>(Needed) + 1);
  std::vsnprintf(Buffer.data(), Buffer.size(), Fmt, Args);
  return std::string(Buffer.data(), static_cast<size_t>(Needed));
}

std::string evm::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = formatStringV(Fmt, Args);
  va_end(Args);
  return Result;
}

Error evm::makeError(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Message = formatStringV(Fmt, Args);
  va_end(Args);
  return Error(std::move(Message));
}
