//===- support/Format.h - printf-style std::string formatting ------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny, allocation-friendly printf wrapper returning std::string.  Library
/// code uses this instead of iostreams (which are forbidden in library files
/// by the project coding standard).
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SUPPORT_FORMAT_H
#define EVM_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>

namespace evm {

/// Formats \p Fmt with printf semantics into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list flavour of formatString.
std::string formatStringV(const char *Fmt, va_list Args);

} // namespace evm

#endif // EVM_SUPPORT_FORMAT_H
