//===- support/Profiler.h - Hierarchical virtual-cycle phase profiler -----===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hierarchical phase profiler over the *virtual* clock: RAII scoped
/// regions (`PROF_SCOPE("aos/sample")`) form a tree of phases, and every
/// cycle the engine charges to the modeled machine is attributed to the
/// phase stack active at the charge.  Because attribution rides the virtual
/// clock — never the host clock — two identical runs produce byte-identical
/// profiles, and enabling the profiler cannot perturb the machine it
/// measures: profiled and unprofiled runs are cycle-identical by
/// construction (pinned by tests/test_profiler.cpp).
///
/// Cost model, same discipline as support/Trace.h's EVM_TRACING:
///
///   * `-DEVM_PROFILING=OFF` compiles every site out — PROF_SCOPE expands
///     to nothing and PhaseProfiler::current() folds to a constant null, so
///     each `if (auto *P = PhaseProfiler::current())` block is dead code.
///   * Compiled in but not installed (the runtime flag is "a profiler is
///     installed on this thread"), every site costs one pointer test.
///   * Installed, sites cost host time only; zero virtual cycles ever.
///
/// The tree distinguishes three roots by convention:
///
///   run         everything charged to the execution thread's clock; the
///               subtree total equals the sum of RunResult::Cycles over the
///               profiled runs (tested).
///   background  compile cycles spent on worker virtual timelines,
///               overlapped with execution (never part of run's clock).
///   offline     modeled costs of work the paper excludes from application
///               runtime (classification-tree rebuilds, cross-validation,
///               repository strategy derivation).
///
/// Snapshots flatten the tree into (stack, exclusive cycles, enter count)
/// rows sorted by stack, and export three formats: canonical JSON (the
/// input of tools/evm-prof), collapsed-stack text (flamegraph.pl
/// compatible), and speedscope JSON (https://speedscope.app).
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SUPPORT_PROFILER_H
#define EVM_SUPPORT_PROFILER_H

#include "support/Error.h"

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

/// Compile-time gate.  The build defines EVM_PROFILING=0 to compile every
/// profiling site out; default is compiled-in.
#ifndef EVM_PROFILING
#define EVM_PROFILING 1
#endif

namespace evm {

/// An immutable, flattened copy of a profiler's phase tree.
class PhaseTreeSnapshot {
public:
  /// One phase: the ';'-joined stack of frame names from the root, the
  /// cycles attributed to exactly this node (exclusive — descendants are
  /// separate entries), and how many times the phase was entered.
  struct Entry {
    std::string Stack;
    uint64_t Cycles = 0;
    uint64_t Count = 0;
  };

  /// Entries sorted by Stack (byte order); deterministic for identical
  /// attribution sequences.
  const std::vector<Entry> &entries() const { return Entries; }
  bool empty() const { return Entries.empty(); }

  /// Sum of exclusive cycles of \p Stack and every descendant ("run" ->
  /// everything charged to the execution clock).
  uint64_t totalUnder(std::string_view Stack) const;

  /// Exclusive cycles of exactly \p Stack (0 when absent).
  uint64_t cyclesAt(std::string_view Stack) const;

  /// Canonical JSON: {"phases":[{"stack":"run;interp","cycles":N,
  /// "count":N},...]} with entries in snapshot (stack-sorted) order.
  /// Byte-deterministic; parsePhaseTreeJson is the exact inverse.
  std::string renderJson() const;

  /// flamegraph.pl-compatible collapsed stacks: one "stack cycles" line
  /// per entry with nonzero cycles, in stack-sorted order.
  std::string renderCollapsed() const;

  /// speedscope JSON (schema https://www.speedscope.app/file-format-schema.json):
  /// a "sampled" profile whose samples are the nonzero-cycle entries,
  /// weighted in virtual cycles.  \p Name labels the profile.
  std::string renderSpeedscope(const std::string &Name) const;

private:
  friend class PhaseProfiler;
  friend ErrorOr<PhaseTreeSnapshot> parsePhaseTreeJson(const std::string &);
  std::vector<Entry> Entries;
};

/// Parses the canonical JSON back (also accepts a larger document that
/// embeds the "phases" array, e.g. evm_cli's --profile-out output or a
/// bench --json document).  Fails on malformed phase objects.
ErrorOr<PhaseTreeSnapshot> parsePhaseTreeJson(const std::string &Text);

/// The live phase tree.  Single-threaded by design: all virtual-clock
/// accounting in this codebase happens on the execution thread (worker
/// compile costs are scheduled there too), so the profiler is installed
/// per thread and never locked.  Frame names must not contain ';' or '"'
/// (they are stack separators / JSON-quoted verbatim).
class PhaseProfiler {
public:
  PhaseProfiler();

  /// The profiler installed on this thread, or null.  With EVM_PROFILING
  /// compiled out this is a constant null and every guarded site folds
  /// away.
  static PhaseProfiler *current() {
#if EVM_PROFILING
    return Installed;
#else
    return nullptr;
#endif
  }

  /// Pushes a child frame named \p Name under the current node (creating
  /// it on first entry) and bumps its enter count.  Re-entering the
  /// current node's own name (self-recursion) reuses the node instead of
  /// deepening, and past kMaxDepth frames new names stop creating nodes —
  /// both keep recursive workloads from growing unbounded trees.
  void enter(std::string_view Name);

  /// Pops the frame pushed by the matching enter().
  void exit();

  /// Attributes \p Cycles to the current node (the synthetic root when no
  /// scope is active — exported as the "(unattributed)" stack).
  void charge(uint64_t Cycles);

  /// Attributes \p Cycles / \p Count to the node at \p Path (absolute,
  /// from the root), creating intermediate nodes as needed.  The current
  /// stack is unaffected.  For lanes that never run under a scope: worker
  /// compile timelines, offline model work.
  void chargeAt(std::initializer_list<std::string_view> Path,
                uint64_t Cycles, uint64_t Count = 0);
  void chargeAt(const std::vector<std::string> &Path, uint64_t Cycles,
                uint64_t Count = 0);

  /// Moves \p Cycles already attributed to the node at \p Path into its
  /// child \p Child (creating it) and bumps the child's count — post-hoc
  /// refinement of a lump charge (the evolvable VM splits the engine's
  /// pre-run "overhead" charge into xicl/ml shares this way).  Moves at
  /// most what the parent holds; returns the cycles actually moved.
  uint64_t attributeChild(std::initializer_list<std::string_view> Path,
                          std::string_view Child, uint64_t Cycles,
                          uint64_t Count = 1);

  /// attributeChild against the *current* scope instead of an absolute
  /// path (the engine splits a synchronous compile's lump across the
  /// pipeline's passes while still inside the compile scope).
  uint64_t splitToChild(std::string_view Child, uint64_t Cycles,
                        uint64_t Count = 1);

  /// Drops all nodes and attribution (the scope stack must be empty).
  void reset();

  /// Flattens the tree (see PhaseTreeSnapshot).  Cheap enough to take per
  /// run; unaffected by currently-open scopes.
  PhaseTreeSnapshot snapshot() const;

  /// Depth bound beyond which enter() stops creating nodes and reuses the
  /// current one (deep mutual recursion in the guest program).
  static constexpr int kMaxDepth = 96;

private:
  friend class ProfilerInstallGuard;

  struct Node {
    std::string Name;
    int32_t Parent = -1;
    int32_t FirstChild = -1;
    int32_t NextSibling = -1;
    uint64_t Cycles = 0;
    uint64_t Count = 0;
  };

  /// Finds or creates \p Name under \p Parent; returns its index.
  int32_t childOf(int32_t Parent, std::string_view Name);

  std::vector<Node> Nodes;    ///< Nodes[0] is the synthetic root ("")
  std::vector<int32_t> Stack; ///< open scopes; Stack.back() = current
#if EVM_PROFILING
  static thread_local PhaseProfiler *Installed;
#endif
};

/// Installs a profiler as the thread's PhaseProfiler::current() for the
/// guard's lifetime (restoring the previous one after), mirroring how the
/// engine and all instrumentation sites discover it.
class ProfilerInstallGuard {
public:
  explicit ProfilerInstallGuard(PhaseProfiler *P);
  ~ProfilerInstallGuard();
  ProfilerInstallGuard(const ProfilerInstallGuard &) = delete;
  ProfilerInstallGuard &operator=(const ProfilerInstallGuard &) = delete;

private:
#if EVM_PROFILING
  PhaseProfiler *Previous;
#endif
};

/// RAII scope over PhaseProfiler::current().  Null-safe: without an
/// installed profiler the constructor is one pointer test.
class ScopedPhase {
public:
  explicit ScopedPhase(std::string_view Name)
      : Profiler(PhaseProfiler::current()) {
    if (Profiler)
      Profiler->enter(Name);
  }
  ~ScopedPhase() {
    if (Profiler)
      Profiler->exit();
  }
  ScopedPhase(const ScopedPhase &) = delete;
  ScopedPhase &operator=(const ScopedPhase &) = delete;

private:
  PhaseProfiler *Profiler;
};

#if EVM_PROFILING
#define EVM_PROF_CONCAT_IMPL(A, B) A##B
#define EVM_PROF_CONCAT(A, B) EVM_PROF_CONCAT_IMPL(A, B)
/// Opens a named phase for the rest of the enclosing block.
#define PROF_SCOPE(NAME)                                                     \
  ::evm::ScopedPhase EVM_PROF_CONCAT(ProfScope_, __LINE__)(NAME)
#else
#define PROF_SCOPE(NAME) ((void)0)
#endif

} // namespace evm

#endif // EVM_SUPPORT_PROFILER_H
