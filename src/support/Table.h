//===- support/Table.h - Plain-text table rendering -----------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A column-aligned text table used by the benchmark harness to print the
/// paper's tables and figure data series.  Cells are strings; numeric
/// convenience setters format through support/Format.h.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SUPPORT_TABLE_H
#define EVM_SUPPORT_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace evm {

/// A simple text table: a header row plus data rows, rendered with aligned
/// columns separated by two spaces.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header);

  /// Starts a new (empty) data row; subsequent addCell calls fill it.
  void beginRow();

  /// Appends a cell to the current row.
  void addCell(std::string Text);
  void addCell(int64_t Value);
  /// Appends a floating-point cell with \p Decimals digits of precision.
  void addCell(double Value, int Decimals);

  /// Number of data rows added so far.
  size_t numRows() const { return Rows.size(); }

  /// Renders the table (header, separator, rows) as one string.
  std::string render() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Renders an ASCII boxplot line for a five-number summary, scaled so that
/// [AxisMin, AxisMax] spans \p Width characters.  Used for Figure 10.
std::string renderBoxLine(double Min, double Q25, double Med, double Q75,
                          double Max, double AxisMin, double AxisMax,
                          int Width);

} // namespace evm

#endif // EVM_SUPPORT_TABLE_H
