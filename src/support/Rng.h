//===- support/Rng.h - Deterministic pseudo-random numbers ----------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small SplitMix64-based generator.  Every stochastic component of the
/// reproduction (input-set generation, input arrival order, cross-validation
/// folds) draws from an explicitly seeded Rng so experiments are
/// deterministic and independently replayable.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SUPPORT_RNG_H
#define EVM_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace evm {

/// SplitMix64 generator: tiny state, excellent statistical quality for
/// simulation purposes, and trivially reproducible from a seed.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed + 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit draw.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [Low, High], inclusive on both ends.
  int64_t nextInt(int64_t Low, int64_t High) {
    assert(Low <= High && "empty range");
    uint64_t Span = static_cast<uint64_t>(High - Low) + 1;
    return Low + static_cast<int64_t>(next() % Span);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [Low, High).
  double nextDouble(double Low, double High) {
    return Low + (High - Low) * nextDouble();
  }

  /// Bernoulli draw with probability \p P of true.
  bool nextBool(double P) { return nextDouble() < P; }

  /// Fisher-Yates shuffle of \p Items.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I) {
      size_t J = static_cast<size_t>(next() % I);
      std::swap(Items[I - 1], Items[J]);
    }
  }

  /// Derives an independent child generator; use to give each component its
  /// own stream without coupling draw orders.
  Rng fork() { return Rng(next()); }

private:
  uint64_t State;
};

} // namespace evm

#endif // EVM_SUPPORT_RNG_H
