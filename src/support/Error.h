//===- support/Error.h - Lightweight recoverable-error utilities ---------===//
//
// Part of the EVM project: a reproduction of "Cross-Input Learning and
// Discriminative Prediction in Evolvable Virtual Machines" (CGO 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal error-handling utilities in the spirit of llvm::Expected, but
/// without exceptions or RTTI.  Library code reports recoverable failures
/// (malformed XICL specs, bad bytecode, unknown options) through ErrorOr<T>;
/// programmatic errors use assert.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SUPPORT_ERROR_H
#define EVM_SUPPORT_ERROR_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace evm {

/// A recoverable error carrying a human-readable message.
///
/// Messages follow the tool-diagnostic style: start lowercase, no trailing
/// period.
class Error {
public:
  Error() = default;
  explicit Error(std::string Message) : Message(std::move(Message)) {}

  const std::string &message() const { return Message; }

private:
  std::string Message;
};

/// Either a value of type \p T or an Error, never both.
///
/// Mirrors the fallible-constructor idiom: functions that can fail return
/// ErrorOr<T> and callers test with the boolean conversion before
/// dereferencing.
template <typename T> class ErrorOr {
public:
  /// Constructs a success value.
  ErrorOr(T Value) : Storage(std::move(Value)) {}
  /// Constructs a failure value.
  ErrorOr(Error Err) : Storage(std::move(Err)) {}

  /// True when this holds a value.
  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  T &operator*() {
    assert(*this && "dereferencing ErrorOr in error state");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(*this && "dereferencing ErrorOr in error state");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Returns the error; only valid in the failure state.
  const Error &getError() const {
    assert(!*this && "no error present");
    return std::get<Error>(Storage);
  }

  /// Moves the value out; only valid in the success state.
  T takeValue() {
    assert(*this && "taking value from ErrorOr in error state");
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Error> Storage;
};

/// Builds an Error from a printf-style format; defined in Format.cpp.
Error makeError(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace evm

#endif // EVM_SUPPORT_ERROR_H
