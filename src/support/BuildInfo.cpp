//===- support/BuildInfo.cpp ----------------------------------------------===//

#include "support/BuildInfo.h"

#include "support/Format.h"

// The build stamps these per-source (see src/support/CMakeLists.txt);
// fall back to "unknown" for out-of-tree compiles of this file.
#ifndef EVM_BUILD_GIT_SHA
#define EVM_BUILD_GIT_SHA "unknown"
#endif
#ifndef EVM_BUILD_COMPILER
#define EVM_BUILD_COMPILER "unknown"
#endif
#ifndef EVM_BUILD_COMPILER_VERSION
#define EVM_BUILD_COMPILER_VERSION "unknown"
#endif
#ifndef EVM_BUILD_TYPE
#define EVM_BUILD_TYPE "unknown"
#endif

using namespace evm;

namespace {

/// Empty stamps (e.g. the default no-CMAKE_BUILD_TYPE configure) read as
/// "unknown", matching run_all.sh's `${V:-unknown}`.
const char *orUnknown(const char *S) { return S && *S ? S : "unknown"; }

} // namespace

const BuildInfo &evm::buildInfo() {
  static const BuildInfo Info = {
      orUnknown(EVM_BUILD_GIT_SHA), orUnknown(EVM_BUILD_COMPILER),
      orUnknown(EVM_BUILD_COMPILER_VERSION), orUnknown(EVM_BUILD_TYPE)};
  return Info;
}

std::string BuildInfo::renderJson() const {
  return formatString("{\"git_sha\":\"%s\",\"compiler\":\"%s\","
                      "\"compiler_version\":\"%s\",\"build_type\":\"%s\"}",
                      GitSha.c_str(), Compiler.c_str(),
                      CompilerVersion.c_str(), BuildType.c_str());
}
