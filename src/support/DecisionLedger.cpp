//===- support/DecisionLedger.cpp -----------------------------------------===//

#include "support/DecisionLedger.h"

#include "support/Format.h"

#include <cstdlib>
#include <cstring>

using namespace evm;

DecisionLedger::DecisionLedger(size_t MaxRecords)
    : MaxRecords(MaxRecords ? MaxRecords : 1) {}

void DecisionLedger::setEnabled(bool On) {
#if EVM_DECISIONS
  Enabled = On;
#else
  (void)On;
#endif
}

void DecisionLedger::record(DecisionRecord R) {
  if (!enabled())
    return;
  if (Ring.size() < MaxRecords) {
    Ring.push_back(std::move(R));
    return;
  }
  // Full: overwrite the oldest slot.  Next always points at the oldest
  // record once the ring has wrapped.
  Ring[Next] = std::move(R);
  Next = (Next + 1) % MaxRecords;
  ++Dropped;
}

void DecisionLedger::annotateBaseline(uint64_t BaselineCycles) {
  if (!enabled() || Ring.empty())
    return;
  size_t Newest = Ring.size() < MaxRecords
                      ? Ring.size() - 1
                      : (Next + MaxRecords - 1) % MaxRecords;
  Ring[Newest].BaselineCycles = BaselineCycles;
}

size_t DecisionLedger::size() const { return Ring.size(); }

uint64_t DecisionLedger::droppedRecords() const { return Dropped; }

std::vector<DecisionRecord> DecisionLedger::exportOrder() const {
  std::vector<DecisionRecord> Out;
  Out.reserve(Ring.size());
  // Before wrapping, Ring is already oldest-first; after, the oldest
  // record sits at Next.
  size_t Start = Ring.size() < MaxRecords ? 0 : Next;
  for (size_t I = 0; I != Ring.size(); ++I)
    Out.push_back(Ring[(Start + I) % Ring.size()]);
  return Out;
}

void DecisionLedger::clear() {
  Ring.clear();
  Next = 0;
  Dropped = 0;
}

//===----------------------------------------------------------------------===//
// JSONL rendering
//===----------------------------------------------------------------------===//

namespace {

std::string escapeJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    if (Ch == '"' || Ch == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(Ch) < 0x20) {
      Out += formatString("\\u%04x", Ch);
      continue;
    }
    Out += Ch;
  }
  return Out;
}

std::string unescapeJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I != S.size(); ++I) {
    if (S[I] != '\\' || I + 1 == S.size()) {
      Out += S[I];
      continue;
    }
    char Next = S[++I];
    if (Next == 'u' && I + 4 < S.size()) {
      Out += static_cast<char>(
          std::strtoul(S.substr(I + 1, 4).c_str(), nullptr, 16));
      I += 4;
    } else {
      Out += Next; // covers \" and \\ (nothing else is ever emitted)
    }
  }
  return Out;
}

} // namespace

std::string
evm::renderJsonlDecisions(const std::vector<DecisionRecord> &Records,
                          const LedgerProvenance *Provenance) {
  std::string Out;
  Out.reserve(Records.size() * 192);
  if (Provenance)
    Out += formatString(
        "{\"kind\":\"provenance\",\"git_sha\":\"%s\",\"compiler\":\"%s\","
        "\"compiler_version\":\"%s\",\"build_type\":\"%s\"}\n",
        escapeJson(Provenance->GitSha).c_str(),
        escapeJson(Provenance->Compiler).c_str(),
        escapeJson(Provenance->CompilerVersion).c_str(),
        escapeJson(Provenance->BuildType).c_str());
  for (const DecisionRecord &R : Records) {
    Out += formatString(
        "{\"kind\":\"run\",\"app\":\"%s\",\"tenant\":%lld,\"run\":%llu,"
        "\"fv\":\"%s\",\"fvhash\":%llu,\"guard\":\"%s\",\"open\":%d,"
        "\"used\":%d,\"had\":%d,\"conf_before\":%.17g,\"conf_after\":%.17g,"
        "\"cv\":%.17g,\"thr\":%.17g,\"acc\":%.17g,\"cycles\":%llu,"
        "\"baseline\":%llu",
        escapeJson(R.App).c_str(), static_cast<long long>(R.Tenant),
        static_cast<unsigned long long>(R.Run),
        escapeJson(R.Features).c_str(),
        static_cast<unsigned long long>(R.FvHash),
        escapeJson(R.Guard).c_str(), R.GuardOpen ? 1 : 0, R.Used ? 1 : 0,
        R.Had ? 1 : 0, R.ConfBefore, R.ConfAfter, R.CvConf, R.Threshold,
        R.Accuracy, static_cast<unsigned long long>(R.Cycles),
        static_cast<unsigned long long>(R.BaselineCycles));
    // Only rejected records carry the extra field, keeping ordinary run
    // lines byte-identical to the pre-serving JSONL format.
    if (R.Rejected)
      Out += ",\"rejected\":1";
    Out += "}\n";
    for (const MethodDecision &M : R.Methods)
      Out += formatString(
          "{\"kind\":\"method\",\"app\":\"%s\",\"tenant\":%lld,\"run\":%llu,"
          "\"method\":%u,\"pred\":%d,\"ideal\":%d,\"agree\":%d,\"const\":%d,"
          "\"rescues\":%u,\"path\":\"%s\"}\n",
          escapeJson(R.App).c_str(), static_cast<long long>(R.Tenant),
          static_cast<unsigned long long>(R.Run), M.Method, M.Pred, M.Ideal,
          M.Agree ? 1 : 0, M.Constant ? 1 : 0, M.Rescues,
          escapeJson(M.Path).c_str());
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// JSONL parsing
//===----------------------------------------------------------------------===//

namespace {

/// Finds `"Key":` in \p Line and returns the offset just past the colon,
/// or npos.  Keys are fixed and never appear inside our escaped string
/// values with the surrounding quote+colon frame, so plain search is safe.
size_t fieldOffset(const std::string &Line, const char *Key) {
  std::string Needle = formatString("\"%s\":", Key);
  size_t At = Line.find(Needle);
  return At == std::string::npos ? std::string::npos : At + Needle.size();
}

bool stringField(const std::string &Line, const char *Key, std::string &Out) {
  size_t At = fieldOffset(Line, Key);
  if (At == std::string::npos || At >= Line.size() || Line[At] != '"')
    return false;
  // Scan to the closing quote, honoring escapes.
  size_t End = At + 1;
  while (End < Line.size()) {
    if (Line[End] == '\\')
      End += 2;
    else if (Line[End] == '"')
      break;
    else
      ++End;
  }
  if (End >= Line.size())
    return false;
  Out = unescapeJson(Line.substr(At + 1, End - At - 1));
  return true;
}

bool doubleField(const std::string &Line, const char *Key, double &Out) {
  size_t At = fieldOffset(Line, Key);
  if (At == std::string::npos)
    return false;
  const char *P = Line.c_str() + At;
  char *End = nullptr;
  double V = std::strtod(P, &End);
  if (End == P)
    return false;
  Out = V;
  return true;
}

bool u64Field(const std::string &Line, const char *Key, uint64_t &Out) {
  size_t At = fieldOffset(Line, Key);
  if (At == std::string::npos)
    return false;
  const char *P = Line.c_str() + At;
  char *End = nullptr;
  unsigned long long V = std::strtoull(P, &End, 10);
  if (End == P)
    return false;
  Out = V;
  return true;
}

bool i64Field(const std::string &Line, const char *Key, int64_t &Out) {
  size_t At = fieldOffset(Line, Key);
  if (At == std::string::npos)
    return false;
  const char *P = Line.c_str() + At;
  char *End = nullptr;
  long long V = std::strtoll(P, &End, 10);
  if (End == P)
    return false;
  Out = V;
  return true;
}

} // namespace

void LedgerReader::addLine(const std::string &RawLine) {
  std::string Line = RawLine;
  while (!Line.empty() && (Line.back() == '\n' || Line.back() == '\r'))
    Line.pop_back();
  if (Line.empty())
    return;

  std::string Kind;
  if (!stringField(Line, "kind", Kind)) {
    ++BadLines;
    return;
  }

  if (Kind == "provenance") {
    stringField(Line, "git_sha", Provenance.GitSha);
    stringField(Line, "compiler", Provenance.Compiler);
    stringField(Line, "compiler_version", Provenance.CompilerVersion);
    stringField(Line, "build_type", Provenance.BuildType);
    HasProvenance = true;
    return;
  }

  if (Kind == "run") {
    DecisionRecord R;
    uint64_t Open = 0, Used = 0, Had = 0;
    if (!stringField(Line, "app", R.App) || !u64Field(Line, "run", R.Run) ||
        !u64Field(Line, "cycles", R.Cycles)) {
      ++BadLines;
      return;
    }
    i64Field(Line, "tenant", R.Tenant);
    stringField(Line, "fv", R.Features);
    u64Field(Line, "fvhash", R.FvHash);
    stringField(Line, "guard", R.Guard);
    u64Field(Line, "open", Open);
    u64Field(Line, "used", Used);
    u64Field(Line, "had", Had);
    doubleField(Line, "conf_before", R.ConfBefore);
    doubleField(Line, "conf_after", R.ConfAfter);
    doubleField(Line, "cv", R.CvConf);
    doubleField(Line, "thr", R.Threshold);
    doubleField(Line, "acc", R.Accuracy);
    u64Field(Line, "baseline", R.BaselineCycles);
    uint64_t Rejected = 0;
    u64Field(Line, "rejected", Rejected);
    R.Rejected = Rejected != 0;
    R.GuardOpen = Open != 0;
    R.Used = Used != 0;
    R.Had = Had != 0;
    Records.push_back(std::move(R));
    return;
  }

  if (Kind == "method") {
    if (Records.empty()) {
      ++BadLines; // a method line needs its run line first
      return;
    }
    MethodDecision M;
    uint64_t Method = 0, Agree = 0, Constant = 0, Rescues = 0;
    int64_t Pred = 0, Ideal = 0;
    if (!u64Field(Line, "method", Method) || !i64Field(Line, "pred", Pred) ||
        !i64Field(Line, "ideal", Ideal)) {
      ++BadLines;
      return;
    }
    u64Field(Line, "agree", Agree);
    u64Field(Line, "const", Constant);
    u64Field(Line, "rescues", Rescues);
    stringField(Line, "path", M.Path);
    M.Method = static_cast<uint32_t>(Method);
    M.Pred = static_cast<int>(Pred);
    M.Ideal = static_cast<int>(Ideal);
    M.Agree = Agree != 0;
    M.Constant = Constant != 0;
    M.Rescues = static_cast<uint32_t>(Rescues);
    Records.back().Methods.push_back(std::move(M));
    return;
  }

  ++BadLines;
}

void LedgerReader::addText(const std::string &Text) {
  size_t At = 0;
  while (At < Text.size()) {
    size_t End = Text.find('\n', At);
    if (End == std::string::npos)
      End = Text.size();
    addLine(Text.substr(At, End - At));
    At = End + 1;
  }
}
