//===- xicl/Translator.cpp ------------------------------------------------==//

#include "xicl/Translator.h"

#include "support/Format.h"
#include "support/Profiler.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cctype>
#include <map>

using namespace evm;
using namespace evm::xicl;

int FeatureVector::indexOf(const std::string &Name) const {
  for (size_t I = 0; I != Features.size(); ++I)
    if (Features[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

void FeatureVector::updateV(const std::string &Name, Feature F) {
  F.Name = Name;
  int Index = indexOf(Name);
  if (Index < 0)
    Features.push_back(std::move(F));
  else
    Features[static_cast<size_t>(Index)] = std::move(F);
}

std::string FeatureVector::str() const {
  std::string Out;
  for (size_t I = 0; I != Features.size(); ++I) {
    const Feature &F = Features[I];
    if (I != 0)
      Out += ", ";
    if (F.isNumeric())
      Out += formatString("%s=%g", F.Name.c_str(), F.Num);
    else
      Out += formatString("%s=%s", F.Name.c_str(), F.Cat.c_str());
  }
  return Out;
}

uint64_t FeatureVector::hash() const {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char C : str()) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ULL;
  }
  return H;
}

XICLTranslator::XICLTranslator(Spec TheSpec, const XFMethodRegistry *Registry,
                               const FileStore *Files)
    : TheSpec(std::move(TheSpec)), Registry(Registry), Files(Files) {
  assert(Registry && "translator needs a method registry");
}

namespace {

/// Feature-name prefix for an operand spec.
std::string operandPrefix(const OperandSpec &Op) {
  if (Op.PosStart == Op.PosEnd)
    return formatString("operand%d", Op.PosStart);
  if (Op.PosEnd < 0)
    return formatString("operands%d_$", Op.PosStart);
  return formatString("operands%d_%d", Op.PosStart, Op.PosEnd);
}

} // namespace

ErrorOr<FeatureVector> XICLTranslator::buildFVector(
    std::string_view CommandLine) {
  // Entered once per characterization; the modeled cost is charged to the
  // engine's clock by the evolvable VM (run;overhead;xicl/characterize),
  // so this frame carries entry counts only.
  PROF_SCOPE("xicl/characterize");
  Stats = TranslationStats();
  std::vector<std::string> Tokens = tokenizeCommandLine(CommandLine);
  Stats.TokensScanned = Tokens.size();
  if (Tokens.empty())
    return makeError("empty command line");

  // Scan pass: split the line into option values and positional operands.
  std::map<size_t, std::string> OptionValues; // option index -> raw value
  std::vector<std::string> OperandTokens;
  for (size_t T = 1; T < Tokens.size(); ++T) {
    const std::string &Token = Tokens[T];
    if (Token.size() >= 2 && Token[0] == '-' &&
        !(Token.size() > 1 && (std::isdigit(static_cast<unsigned char>(
                                  Token[1])) ||
                              Token[1] == '.'))) {
      size_t Index = TheSpec.Options.size();
      for (size_t K = 0; K != TheSpec.Options.size(); ++K)
        if (TheSpec.Options[K].matches(Token)) {
          Index = K;
          break;
        }
      if (Index == TheSpec.Options.size())
        return makeError("unknown option '%s'", Token.c_str());
      const OptionSpec &Opt = TheSpec.Options[Index];
      if (Opt.HasArg) {
        if (T + 1 >= Tokens.size())
          return makeError("option '%s' requires an argument",
                           Token.c_str());
        OptionValues[Index] = Tokens[++T];
      } else {
        OptionValues[Index] = "1"; // presence of a flag
      }
      continue;
    }
    OperandTokens.push_back(Token);
  }

  // Extraction pass, in specification order so the schema is stable.
  FeatureVector FV;
  auto Extract = [&](const std::string &AttrName, const std::string &Raw,
                     ComponentType Type,
                     const std::string &Prefix) -> ErrorOr<bool> {
    const XFMethod *Method = Registry->getMethod(AttrName);
    if (!Method)
      return makeError("unresolved feature-extraction method '%s'",
                       AttrName.c_str());
    ExtractionContext Ctx;
    Ctx.Files = Files;
    Ctx.Type = Type;
    Ctx.FeatureNamePrefix = Prefix;
    if (Type == ComponentType::File)
      ++Stats.FileLookups;
    std::vector<Feature> Extracted = (*Method)(Raw, Ctx);
    Stats.FeaturesExtracted += Extracted.size();
    for (Feature &F : Extracted)
      FV.append(std::move(F));
    return true;
  };

  for (size_t K = 0; K != TheSpec.Options.size(); ++K) {
    const OptionSpec &Opt = TheSpec.Options[K];
    auto It = OptionValues.find(K);
    const std::string &Raw = It != OptionValues.end() ? It->second
                                                      : Opt.Default;
    for (const std::string &Attr : Opt.Attrs)
      if (auto R = Extract(Attr, Raw, Opt.Type, Opt.primaryName()); !R)
        return R.getError();
  }

  for (const OperandSpec &Op : TheSpec.Operands) {
    std::string Prefix = operandPrefix(Op);

    if (Op.PosStart == Op.PosEnd) {
      // Single position: extract directly (empty raw when absent).
      size_t Index = static_cast<size_t>(Op.PosStart - 1);
      std::string Raw =
          Index < OperandTokens.size() ? OperandTokens[Index] : "";
      for (const std::string &Attr : Op.Attrs)
        if (auto R = Extract(Attr, Raw, Op.Type, Prefix); !R)
          return R.getError();
      continue;
    }

    // Range: emit a count feature plus per-attr aggregates (numeric
    // features sum; categorical features take the first operand's value).
    std::vector<std::string> Covered;
    for (size_t Index = 0; Index != OperandTokens.size(); ++Index)
      if (Op.coversPosition(static_cast<int>(Index) + 1))
        Covered.push_back(OperandTokens[Index]);
    FV.append(Feature::numeric(Prefix + ".count",
                               static_cast<double>(Covered.size())));
    ++Stats.FeaturesExtracted;

    for (const std::string &Attr : Op.Attrs) {
      const XFMethod *Method = Registry->getMethod(Attr);
      if (!Method)
        return makeError("unresolved feature-extraction method '%s'",
                         Attr.c_str());
      ExtractionContext Ctx;
      Ctx.Files = Files;
      Ctx.Type = Op.Type;
      Ctx.FeatureNamePrefix = Prefix;
      std::map<std::string, Feature> Aggregated;
      std::vector<std::string> Order;
      // Run the extractor on "" when no operands are covered so the
      // feature names (and schema) still materialize.
      std::vector<std::string> Sources =
          Covered.empty() ? std::vector<std::string>{""} : Covered;
      for (const std::string &Raw : Sources) {
        if (Op.Type == ComponentType::File)
          ++Stats.FileLookups;
        for (Feature &F : (*Method)(Raw, Ctx)) {
          ++Stats.FeaturesExtracted;
          auto It = Aggregated.find(F.Name);
          if (It == Aggregated.end()) {
            Order.push_back(F.Name);
            Aggregated.emplace(F.Name, std::move(F));
          } else if (It->second.isNumeric() && F.isNumeric()) {
            It->second.Num += F.Num;
          }
          // Categorical aggregate: keep the first value.
        }
      }
      for (const std::string &Name : Order)
        FV.append(Aggregated.at(Name));
    }
  }

  return FV;
}

std::vector<std::string> XICLTranslator::schemaFeatureNames() const {
  // Dry-run extraction against an empty input; extraction methods must
  // produce the same feature names for every input (contract documented in
  // XFMethod.h).
  XICLTranslator Dry(TheSpec, Registry, Files);
  std::string Line = "app";
  auto FV = Dry.buildFVector(Line);
  std::vector<std::string> Names;
  if (FV)
    for (const Feature &F : FV->Features)
      Names.push_back(F.Name);
  return Names;
}
