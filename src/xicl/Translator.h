//===- xicl/Translator.h - Command line -> feature vector -----------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// XICLTranslator (paper Sec. III-B and Fig. 3): given an XICL
/// specification, converts an arbitrary legal command line into a
/// well-formed feature vector.  For the paper's route example,
/// `route -n 3 graph1` with a graph of 100 nodes / 1000 edges becomes
/// (3, 0, 100, 1000) — the second element being the absent -e option's
/// default.
///
/// The translator also counts the work it performs (tokens scanned,
/// features extracted, file lookups); the evolvable VM charges that to the
/// virtual clock so the paper's overhead analysis (Sec. V.B.2) is
/// reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_XICL_TRANSLATOR_H
#define EVM_XICL_TRANSLATOR_H

#include "support/Error.h"
#include "xicl/FeatureVector.h"
#include "xicl/FileStore.h"
#include "xicl/Spec.h"
#include "xicl/XFMethod.h"

#include <string_view>

namespace evm {
namespace xicl {

/// Work accounting for one translation (overhead model).
struct TranslationStats {
  uint64_t TokensScanned = 0;
  uint64_t FeaturesExtracted = 0;
  uint64_t FileLookups = 0;

  /// Converts translator work to virtual cycles (constants chosen so
  /// typical extraction lands well under 1% of short runs, as in the
  /// paper).
  uint64_t toCycles() const {
    return 120 * TokensScanned + 250 * FeaturesExtracted + 400 * FileLookups;
  }
};

/// Converts command lines to feature vectors under one specification.
class XICLTranslator {
public:
  /// \p Registry and \p Files must outlive the translator; \p Files may be
  /// null when the spec has no file-typed components.
  XICLTranslator(Spec TheSpec, const XFMethodRegistry *Registry,
                 const FileStore *Files);

  /// The paper's buildFVector: parses \p CommandLine (program name first)
  /// and extracts every declared feature.  Fails on unknown options,
  /// missing arguments, or unresolvable attr names.
  ErrorOr<FeatureVector> buildFVector(std::string_view CommandLine);

  /// Names of every feature the schema produces, in order (used by the
  /// learner to build a stable dataset schema).
  std::vector<std::string> schemaFeatureNames() const;

  /// Work performed by the most recent buildFVector call.
  const TranslationStats &lastStats() const { return Stats; }

  const Spec &spec() const { return TheSpec; }

private:
  Spec TheSpec;
  const XFMethodRegistry *Registry;
  const FileStore *Files;
  TranslationStats Stats;
};

} // namespace xicl
} // namespace evm

#endif // EVM_XICL_TRANSLATOR_H
