//===- xicl/FileStore.h - Synthetic input-file metadata --------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's operand features often come from input files (a graph file's
/// node/edge counts, a grammar's rule count, a source file's LOC).  Since
/// this reproduction has no real benchmark files, workloads register
/// synthetic metadata here and the XICL translator's file-typed feature
/// extractors read it — the same code path a real stat()/parse would feed.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_XICL_FILESTORE_H
#define EVM_XICL_FILESTORE_H

#include <map>
#include <optional>
#include <string>

namespace evm {
namespace xicl {

/// Metadata for one synthetic input file.
struct FileInfo {
  double SizeBytes = 0;
  double Lines = 0;
  /// Domain-specific attributes programmer-defined extractors read,
  /// e.g. {"nodes", 100}, {"edges", 1000}, {"rules", 42}.
  std::map<std::string, double> Attributes;
};

/// Name -> FileInfo registry, one per launch.
class FileStore {
public:
  void registerFile(std::string Name, FileInfo Info) {
    Files[std::move(Name)] = std::move(Info);
  }

  /// Looks up \p Name; nullopt for unknown files.
  std::optional<FileInfo> lookup(const std::string &Name) const {
    auto It = Files.find(Name);
    if (It == Files.end())
      return std::nullopt;
    return It->second;
  }

  void clear() { Files.clear(); }
  size_t size() const { return Files.size(); }

private:
  std::map<std::string, FileInfo> Files;
};

} // namespace xicl
} // namespace evm

#endif // EVM_XICL_FILESTORE_H
