//===- xicl/RuntimeChannel.h - Application -> translator value passing ----==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's efficient-feature-attainment and interactivity mechanism
/// (Sec. III-B3/B4, Fig. 5): an application can pass values it computes
/// during initialization — or at interactive points — into the feature
/// vector via XICLFeatureVector.updateV(), then call done() to tell the VM
/// no more features are coming so prediction can start.  FeatureChannel is
/// that shared vector: the evolvable VM installs a done-callback that
/// triggers (re)prediction.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_XICL_RUNTIMECHANNEL_H
#define EVM_XICL_RUNTIMECHANNEL_H

#include "xicl/FeatureVector.h"

#include <functional>
#include <utility>

namespace evm {
namespace xicl {

/// The shared feature vector applications update at run time.
class FeatureChannel {
public:
  using DoneCallback = std::function<void(const FeatureVector &)>;

  FeatureChannel() = default;
  explicit FeatureChannel(FeatureVector Initial) : FV(std::move(Initial)) {}

  /// Replaces (or appends) the feature named \p Name — the paper's
  /// updateV(mFeature, subV).
  void updateV(const std::string &Name, Feature F) {
    FV.updateV(Name, std::move(F));
    ++Updates;
  }

  /// Signals that no more values will be passed; fires the registered
  /// callback (the VM's prediction trigger).  May be called repeatedly at
  /// interactive points, re-triggering prediction each time.
  void done() {
    ++DoneCalls;
    if (OnDone)
      OnDone(FV);
  }

  /// Installs the VM-side prediction trigger.
  void setDoneCallback(DoneCallback Callback) {
    OnDone = std::move(Callback);
  }

  const FeatureVector &vector() const { return FV; }
  int numUpdates() const { return Updates; }
  int numDoneCalls() const { return DoneCalls; }

private:
  FeatureVector FV;
  DoneCallback OnDone;
  int Updates = 0;
  int DoneCalls = 0;
};

} // namespace xicl
} // namespace evm

#endif // EVM_XICL_RUNTIMECHANNEL_H
