//===- xicl/XFMethod.h - Feature-extraction method registry ---------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extensibility mechanism of XICL (paper Sec. III-A2 and Fig. 3/4):
/// every `attr` name in a specification resolves to a feature-extraction
/// method.  Predefined methods (val, len, fsize, flines) ship with the
/// registry; programmers register their own (by convention named m*, like
/// the paper's mNodes/mEdges) as callables.  The registry mirrors the
/// paper's xfMethodsMap + getMethod reflection bridge, with std::function
/// standing in for Class.forName.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_XICL_XFMETHOD_H
#define EVM_XICL_XFMETHOD_H

#include "xicl/FeatureVector.h"
#include "xicl/FileStore.h"
#include "xicl/Spec.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace evm {
namespace xicl {

/// Context handed to feature-extraction methods.
struct ExtractionContext {
  const FileStore *Files = nullptr; ///< may be null (no file operands)
  ComponentType Type = ComponentType::Str;
  std::string FeatureNamePrefix; ///< e.g. "-n" or "operand1"
};

/// One feature-extraction method: raw component value in, features out.
/// The paper's XFMethod.xfeature(String) with an added context parameter.
using XFMethod = std::function<std::vector<Feature>(
    const std::string &RawValue, const ExtractionContext &Ctx)>;

/// Name -> method registry; construction installs the predefined methods.
class XFMethodRegistry {
public:
  XFMethodRegistry();

  /// Registers (or replaces) \p Method under \p Name.  Programmer-defined
  /// names conventionally start with 'm'.
  void registerMethod(const std::string &Name, XFMethod Method);

  /// Resolves \p Name; nullptr when unknown.
  const XFMethod *getMethod(const std::string &Name) const;

  /// True for XICL-predefined method names.
  static bool isPredefined(const std::string &Name);

private:
  std::map<std::string, XFMethod> Methods;
};

} // namespace xicl
} // namespace evm

#endif // EVM_XICL_XFMETHOD_H
