//===- xicl/FeatureVector.h - Input feature vectors -----------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The well-formed feature vector the XICL translator produces from a raw
/// program input (paper Sec. III).  Features are named and either numeric or
/// categorical; the learner consumes them positionally, so the translator
/// guarantees a stable schema for a given XICL specification (missing
/// options contribute their declared defaults).
///
//===----------------------------------------------------------------------===//

#ifndef EVM_XICL_FEATUREVECTOR_H
#define EVM_XICL_FEATUREVECTOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace evm {
namespace xicl {

/// One extracted input feature.
struct Feature {
  enum class Kind { Numeric, Categorical };

  std::string Name; ///< e.g. "-n.val", "operand1.mnodes"
  Kind TheKind = Kind::Numeric;
  double Num = 0;  ///< valid when numeric
  std::string Cat; ///< valid when categorical

  static Feature numeric(std::string Name, double Value) {
    Feature F;
    F.Name = std::move(Name);
    F.TheKind = Kind::Numeric;
    F.Num = Value;
    return F;
  }
  static Feature categorical(std::string Name, std::string Value) {
    Feature F;
    F.Name = std::move(Name);
    F.TheKind = Kind::Categorical;
    F.Cat = std::move(Value);
    return F;
  }

  bool isNumeric() const { return TheKind == Kind::Numeric; }
};

/// A complete feature vector for one program input.
struct FeatureVector {
  std::vector<Feature> Features;

  size_t size() const { return Features.size(); }
  const Feature &operator[](size_t I) const { return Features[I]; }

  /// Appends \p F (translator and runtime channel both add through here).
  void append(Feature F) { Features.push_back(std::move(F)); }

  /// Replaces the feature named \p Name, or appends it when absent.  This
  /// is the XICLFeatureVector.updateV mechanism (paper Fig. 5).
  void updateV(const std::string &Name, Feature F);

  /// Index of the feature named \p Name, or -1.
  int indexOf(const std::string &Name) const;

  /// Renders "name=value, ..." for diagnostics and examples.
  std::string str() const;

  /// Stable 64-bit FNV-1a over str() — the deterministic feature-vector id
  /// the evolve.predict trace event and the decision ledger both carry.
  uint64_t hash() const;
};

} // namespace xicl
} // namespace evm

#endif // EVM_XICL_FEATUREVECTOR_H
