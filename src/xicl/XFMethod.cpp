//===- xicl/XFMethod.cpp --------------------------------------------------==//

#include "xicl/XFMethod.h"

#include "support/StringUtils.h"

using namespace evm;
using namespace evm::xicl;

bool XFMethodRegistry::isPredefined(const std::string &Name) {
  return Name == "val" || Name == "len" || Name == "fsize" ||
         Name == "flines";
}

XFMethodRegistry::XFMethodRegistry() {
  // val: the component's own value.  Numeric for num/bin (bin values are
  // "0"/"1"), categorical for str/file (a file *name* is categorical; its
  // useful numeric features come from fsize/flines/m*).
  registerMethod("val", [](const std::string &Raw,
                           const ExtractionContext &Ctx) {
    std::vector<Feature> Out;
    std::string Name = Ctx.FeatureNamePrefix + ".val";
    switch (Ctx.Type) {
    case ComponentType::Num:
    case ComponentType::Bin: {
      auto I = parseInteger(Raw);
      if (I) {
        Out.push_back(Feature::numeric(Name, static_cast<double>(*I)));
        break;
      }
      auto D = parseDouble(Raw);
      Out.push_back(Feature::numeric(Name, D ? *D : 0));
      break;
    }
    case ComponentType::Str:
    case ComponentType::File:
      Out.push_back(Feature::categorical(Name, Raw));
      break;
    }
    return Out;
  });

  // len: length of the raw string (e.g. the Search benchmark's input
  // string length).
  registerMethod("len",
                 [](const std::string &Raw, const ExtractionContext &Ctx) {
                   std::vector<Feature> Out;
                   Out.push_back(Feature::numeric(
                       Ctx.FeatureNamePrefix + ".len",
                       static_cast<double>(Raw.size())));
                   return Out;
                 });

  // fsize / flines: file metadata lookups (0 when the file is unknown,
  // mirroring a failed stat()).
  auto FileAttr = [](const char *Suffix, double FileInfo::*Member) {
    return [Suffix, Member](const std::string &Raw,
                            const ExtractionContext &Ctx) {
      std::vector<Feature> Out;
      double Value = 0;
      if (Ctx.Files) {
        if (auto Info = Ctx.Files->lookup(Raw))
          Value = (*Info).*Member;
      }
      Out.push_back(Feature::numeric(
          Ctx.FeatureNamePrefix + "." + Suffix, Value));
      return Out;
    };
  };
  registerMethod("fsize", FileAttr("fsize", &FileInfo::SizeBytes));
  registerMethod("flines", FileAttr("flines", &FileInfo::Lines));
}

void XFMethodRegistry::registerMethod(const std::string &Name,
                                      XFMethod Method) {
  Methods[Name] = std::move(Method);
}

const XFMethod *XFMethodRegistry::getMethod(const std::string &Name) const {
  auto It = Methods.find(Name);
  return It == Methods.end() ? nullptr : &It->second;
}
