//===- xicl/Spec.cpp ------------------------------------------------------==//

#include "xicl/Spec.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace evm;
using namespace evm::xicl;

std::optional<ComponentType> xicl::parseComponentType(std::string_view Text) {
  if (Text == "num")
    return ComponentType::Num;
  if (Text == "bin")
    return ComponentType::Bin;
  if (Text == "str")
    return ComponentType::Str;
  if (Text == "file")
    return ComponentType::File;
  return std::nullopt;
}

bool OptionSpec::matches(const std::string &Token) const {
  return std::find(Names.begin(), Names.end(), Token) != Names.end();
}

size_t Spec::numDeclaredAttrs() const {
  size_t Total = 0;
  for (const OptionSpec &O : Options)
    Total += O.Attrs.size();
  for (const OperandSpec &O : Operands)
    Total += O.Attrs.size();
  return Total;
}

namespace {

/// Parses the `key=value; key=value` body of one construct into pairs.
ErrorOr<std::vector<std::pair<std::string, std::string>>>
parseBody(const std::string &Body, int Line) {
  std::vector<std::pair<std::string, std::string>> Pairs;
  for (const std::string &Piece : splitString(Body, ';')) {
    std::string Entry = trimString(Piece);
    if (Entry.empty())
      continue;
    size_t Eq = Entry.find('=');
    if (Eq == std::string::npos)
      return makeError("line %d: expected key=value, got '%s'", Line,
                       Entry.c_str());
    std::string Key = trimString(Entry.substr(0, Eq));
    std::string Value = trimString(Entry.substr(Eq + 1));
    if (Key.empty())
      return makeError("line %d: empty key in '%s'", Line, Entry.c_str());
    Pairs.emplace_back(std::move(Key), std::move(Value));
  }
  return Pairs;
}

ErrorOr<OptionSpec> parseOption(const std::string &Body, int Line) {
  OptionSpec Opt;
  bool SawName = false, SawType = false;
  auto Pairs = parseBody(Body, Line);
  if (!Pairs)
    return Pairs.getError();
  for (const auto &[Key, Value] : *Pairs) {
    if (Key == "name") {
      Opt.Names = splitString(Value, ':');
      for (std::string &N : Opt.Names)
        N = trimString(N);
      SawName = !Opt.Names.empty() && !Opt.Names.front().empty();
    } else if (Key == "type") {
      auto T = parseComponentType(Value);
      if (!T)
        return makeError("line %d: unknown type '%s'", Line, Value.c_str());
      Opt.Type = *T;
      SawType = true;
    } else if (Key == "attr") {
      Opt.Attrs = splitString(Value, ':');
      for (std::string &A : Opt.Attrs)
        A = trimString(A);
    } else if (Key == "default") {
      Opt.Default = Value;
    } else if (Key == "has_arg") {
      if (Value != "y" && Value != "n")
        return makeError("line %d: has_arg must be y or n", Line);
      Opt.HasArg = Value == "y";
    } else {
      return makeError("line %d: unknown option field '%s'", Line,
                       Key.c_str());
    }
  }
  if (!SawName)
    return makeError("line %d: option construct needs a name", Line);
  if (!SawType)
    return makeError("line %d: option '%s' needs a type", Line,
                     Opt.primaryName().c_str());
  if (Opt.Attrs.empty())
    return makeError("line %d: option '%s' declares no attributes", Line,
                     Opt.primaryName().c_str());
  return Opt;
}

ErrorOr<OperandSpec> parseOperand(const std::string &Body, int Line) {
  OperandSpec Op;
  bool SawPosition = false;
  auto Pairs = parseBody(Body, Line);
  if (!Pairs)
    return Pairs.getError();
  for (const auto &[Key, Value] : *Pairs) {
    if (Key == "position") {
      std::vector<std::string> Range = splitString(Value, ':');
      if (Range.empty() || Range.size() > 2)
        return makeError("line %d: malformed position '%s'", Line,
                         Value.c_str());
      auto ParseEnd = [&](const std::string &Text) -> std::optional<int> {
        if (Text == "$")
          return -1;
        auto V = parseInteger(Text);
        if (!V || *V < 1)
          return std::nullopt;
        return static_cast<int>(*V);
      };
      auto Start = ParseEnd(trimString(Range[0]));
      if (!Start || *Start < 0)
        return makeError("line %d: malformed position start '%s'", Line,
                         Value.c_str());
      Op.PosStart = *Start;
      if (Range.size() == 2) {
        auto End = ParseEnd(trimString(Range[1]));
        if (!End)
          return makeError("line %d: malformed position end '%s'", Line,
                           Value.c_str());
        Op.PosEnd = *End;
      } else {
        Op.PosEnd = Op.PosStart;
      }
      SawPosition = true;
    } else if (Key == "type") {
      auto T = parseComponentType(Value);
      if (!T)
        return makeError("line %d: unknown type '%s'", Line, Value.c_str());
      Op.Type = *T;
    } else if (Key == "attr") {
      Op.Attrs = splitString(Value, ':');
      for (std::string &A : Op.Attrs)
        A = trimString(A);
    } else {
      return makeError("line %d: unknown operand field '%s'", Line,
                       Key.c_str());
    }
  }
  if (!SawPosition)
    return makeError("line %d: operand construct needs a position", Line);
  if (Op.Attrs.empty())
    return makeError("line %d: operand declares no attributes", Line);
  return Op;
}

} // namespace

ErrorOr<Spec> xicl::parseSpec(std::string_view Source) {
  Spec Result;
  int LineNo = 0;
  // Constructs may span lines; accumulate until braces balance.
  std::string Pending;
  int PendingLine = 0;

  for (const std::string &RawLine : splitString(Source, '\n')) {
    ++LineNo;
    std::string Line = RawLine;
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line = Line.substr(0, Hash);
    Line = trimString(Line);
    if (Line.empty())
      continue;
    if (Pending.empty())
      PendingLine = LineNo;
    Pending += " " + Line;

    // A construct is complete once we have seen the closing brace.
    if (Pending.find('{') == std::string::npos ||
        Pending.find('}') == std::string::npos)
      continue;

    std::string Construct = trimString(Pending);
    Pending.clear();
    size_t Open = Construct.find('{');
    size_t Close = Construct.rfind('}');
    if (Close == std::string::npos || Close < Open)
      return makeError("line %d: malformed construct braces", PendingLine);
    std::string Kind = trimString(Construct.substr(0, Open));
    std::string Body = Construct.substr(Open + 1, Close - Open - 1);

    if (Kind == "option") {
      auto Opt = parseOption(Body, PendingLine);
      if (!Opt)
        return Opt.getError();
      Result.Options.push_back(Opt.takeValue());
    } else if (Kind == "operand") {
      auto Op = parseOperand(Body, PendingLine);
      if (!Op)
        return Op.getError();
      Result.Operands.push_back(Op.takeValue());
    } else {
      return makeError("line %d: unknown construct '%s'", PendingLine,
                       Kind.c_str());
    }
  }
  if (!Pending.empty())
    return makeError("line %d: unterminated construct", PendingLine);
  if (Result.Options.empty() && Result.Operands.empty())
    return makeError("specification declares no constructs");
  return Result;
}
