//===- xicl/Spec.h - XICL specification model and parser -------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Extensible Input Characterization Language (paper Sec. III-A): a
/// mini-language with exactly two constructs, `option` and `operand`,
/// describing an application's command-line interface and the potentially
/// important features of each input component.  Example (paper Fig. 2):
///
/// \code
///   option  {name=-n; type=num; attr=val; default=1; has_arg=y}
///   option  {name=-e:--echo; type=bin; attr=val; default=0; has_arg=n}
///   operand {position=1:$; type=file; attr=mnodes:medges}
/// \endcode
///
/// Attribute names starting with 'm' are programmer-defined feature
/// extractors resolved through the XFMethodRegistry; the rest are XICL
/// predefined (val, len, fsize, flines).
///
//===----------------------------------------------------------------------===//

#ifndef EVM_XICL_SPEC_H
#define EVM_XICL_SPEC_H

#include "support/Error.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace evm {
namespace xicl {

/// Data type of an input component.
enum class ComponentType {
  Num,  ///< numeric argument
  Bin,  ///< boolean flag
  Str,  ///< categorical string
  File, ///< file name; features usually come from file metadata
};

/// Parses "num"/"bin"/"str"/"file"; nullopt otherwise.
std::optional<ComponentType> parseComponentType(std::string_view Text);

/// One `option {...}` construct.
struct OptionSpec {
  std::vector<std::string> Names; ///< aliases, e.g. {"-e", "--echo"}
  ComponentType Type = ComponentType::Num;
  std::vector<std::string> Attrs; ///< feature-extraction method names
  std::string Default;            ///< used when the option is absent
  bool HasArg = false;

  /// Primary (first) name, used to prefix feature names.
  const std::string &primaryName() const { return Names.front(); }
  bool matches(const std::string &Token) const;
};

/// One `operand {...}` construct.  Positions are 1-based over operands
/// (tokens that are not options); PosEnd of -1 encodes `$` (end of line).
struct OperandSpec {
  int PosStart = 1;
  int PosEnd = 1; ///< -1 for '$'
  ComponentType Type = ComponentType::File;
  std::vector<std::string> Attrs;

  /// True when 1-based operand position \p Pos falls in this range.
  bool coversPosition(int Pos) const {
    return Pos >= PosStart && (PosEnd < 0 || Pos <= PosEnd);
  }
};

/// A parsed XICL specification.
struct Spec {
  std::vector<OptionSpec> Options;
  std::vector<OperandSpec> Operands;

  /// Total number of attr entries (the "raw features" count of Table I,
  /// before tree-based selection).
  size_t numDeclaredAttrs() const;
};

/// Parses XICL source text.  Diagnostics carry 1-based line numbers.
ErrorOr<Spec> parseSpec(std::string_view Source);

} // namespace xicl
} // namespace evm

#endif // EVM_XICL_SPEC_H
