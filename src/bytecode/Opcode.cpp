//===- bytecode/Opcode.cpp ------------------------------------------------==//

#include "bytecode/Opcode.h"
#include "bytecode/Value.h"

#include "support/Format.h"

#include <cassert>
#include <cstring>

using namespace evm;
using namespace evm::bc;

std::string Value::str() const {
  if (isInt())
    return formatString("%lld", static_cast<long long>(asInt()));
  return formatString("%gf", asFloat());
}

namespace {

struct TableEntry {
  Opcode Op;
  OpcodeInfo Info;
};

// Pops of -1 marks the dynamic-arity Call opcode.
const TableEntry OpcodeTable[] = {
    {Opcode::ConstInt, {"const_i", 0, 1, true, false, false}},
    {Opcode::ConstFloat, {"const_f", 0, 1, true, false, false}},
    {Opcode::Pop, {"pop", 1, 0, false, false, false}},
    {Opcode::Dup, {"dup", 1, 2, false, false, false}},
    {Opcode::Swap, {"swap", 2, 2, false, false, false}},
    {Opcode::LoadLocal, {"load_local", 0, 1, true, false, false}},
    {Opcode::StoreLocal, {"store_local", 1, 0, true, false, false}},
    {Opcode::Add, {"add", 2, 1, false, false, false}},
    {Opcode::Sub, {"sub", 2, 1, false, false, false}},
    {Opcode::Mul, {"mul", 2, 1, false, false, false}},
    {Opcode::Div, {"div", 2, 1, false, false, false}},
    {Opcode::Mod, {"mod", 2, 1, false, false, false}},
    {Opcode::Neg, {"neg", 1, 1, false, false, false}},
    {Opcode::And, {"and", 2, 1, false, false, false}},
    {Opcode::Or, {"or", 2, 1, false, false, false}},
    {Opcode::Xor, {"xor", 2, 1, false, false, false}},
    {Opcode::Shl, {"shl", 2, 1, false, false, false}},
    {Opcode::Shr, {"shr", 2, 1, false, false, false}},
    {Opcode::Not, {"not", 1, 1, false, false, false}},
    {Opcode::Eq, {"eq", 2, 1, false, false, false}},
    {Opcode::Ne, {"ne", 2, 1, false, false, false}},
    {Opcode::Lt, {"lt", 2, 1, false, false, false}},
    {Opcode::Le, {"le", 2, 1, false, false, false}},
    {Opcode::Gt, {"gt", 2, 1, false, false, false}},
    {Opcode::Ge, {"ge", 2, 1, false, false, false}},
    {Opcode::I2F, {"i2f", 1, 1, false, false, false}},
    {Opcode::F2I, {"f2i", 1, 1, false, false, false}},
    {Opcode::Sqrt, {"sqrt", 1, 1, false, false, false}},
    {Opcode::Sin, {"sin", 1, 1, false, false, false}},
    {Opcode::Cos, {"cos", 1, 1, false, false, false}},
    {Opcode::Floor, {"floor", 1, 1, false, false, false}},
    {Opcode::Abs, {"abs", 1, 1, false, false, false}},
    {Opcode::Min, {"min", 2, 1, false, false, false}},
    {Opcode::Max, {"max", 2, 1, false, false, false}},
    {Opcode::Br, {"br", 0, 0, true, true, true}},
    {Opcode::BrTrue, {"br_true", 1, 0, true, true, false}},
    {Opcode::BrFalse, {"br_false", 1, 0, true, true, false}},
    {Opcode::Call, {"call", -1, 1, true, false, false}},
    {Opcode::Ret, {"ret", 1, 0, false, false, true}},
    {Opcode::NewArr, {"newarr", 1, 1, false, false, false}},
    {Opcode::HLoad, {"hload", 1, 1, false, false, false}},
    {Opcode::HStore, {"hstore", 2, 0, false, false, false}},
    {Opcode::Nop, {"nop", 0, 0, false, false, false}},
};

static_assert(sizeof(OpcodeTable) / sizeof(OpcodeTable[0]) == NumOpcodes,
              "opcode table out of sync with the Opcode enum");

} // namespace

const OpcodeInfo &bc::getOpcodeInfo(Opcode Op) {
  unsigned Index = static_cast<unsigned>(Op);
  assert(Index < NumOpcodes && "invalid opcode");
  assert(OpcodeTable[Index].Op == Op && "opcode table order mismatch");
  return OpcodeTable[Index].Info;
}

std::optional<Opcode> bc::parseOpcodeMnemonic(std::string_view Mnemonic) {
  for (const TableEntry &Entry : OpcodeTable)
    if (Entry.Info.Mnemonic == Mnemonic)
      return Entry.Op;
  return std::nullopt;
}

double Instr::floatOperand() const {
  double F;
  static_assert(sizeof(F) == sizeof(Operand), "double/operand size mismatch");
  std::memcpy(&F, &Operand, sizeof(F));
  return F;
}

int64_t Instr::encodeFloat(double F) {
  int64_t Bits;
  std::memcpy(&Bits, &F, sizeof(Bits));
  return Bits;
}
