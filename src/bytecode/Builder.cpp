//===- bytecode/Builder.cpp -----------------------------------------------==//

#include "bytecode/Builder.h"
#include "bytecode/Verifier.h"

#include <cassert>

using namespace evm;
using namespace evm::bc;

FunctionBuilder::FunctionBuilder(std::string Name, uint32_t NumParams)
    : Name(std::move(Name)), NumParams(NumParams), NextLocal(NumParams) {}

uint32_t FunctionBuilder::allocLocal() { return NextLocal++; }

FunctionBuilder::Label FunctionBuilder::makeLabel() {
  LabelTargets.push_back(UnboundTarget);
  return static_cast<Label>(LabelTargets.size() - 1);
}

void FunctionBuilder::bind(Label L) {
  assert(L < LabelTargets.size() && "unknown label");
  assert(LabelTargets[L] == UnboundTarget && "label bound twice");
  LabelTargets[L] = static_cast<int64_t>(Code.size());
}

void FunctionBuilder::emit(Opcode Op, int64_t Operand) {
  assert(!getOpcodeInfo(Op).IsBranch &&
         "use the label-based branch emitters for branches");
  Code.push_back(Instr{Op, Operand});
}

void FunctionBuilder::emitBranch(Opcode Op, Label L) {
  assert(L < LabelTargets.size() && "unknown label");
  Fixups.emplace_back(Code.size(), L);
  Code.push_back(Instr{Op, 0});
}

void FunctionBuilder::incrementLocal(uint32_t Slot, int64_t Delta) {
  loadLocal(Slot);
  constInt(Delta);
  emit(Opcode::Add);
  storeLocal(Slot);
}

Function FunctionBuilder::finish() {
  for (const auto &[Position, L] : Fixups) {
    assert(LabelTargets[L] != UnboundTarget && "branch to unbound label");
    Code[Position].Operand = LabelTargets[L];
  }
  Fixups.clear();

  Function F;
  F.Name = Name;
  F.NumParams = NumParams;
  F.NumLocals = NextLocal;
  F.Code = std::move(Code);
  return F;
}

MethodId ModuleBuilder::declareFunction(std::string Name, uint32_t NumParams) {
  Builders.push_back(
      std::make_unique<FunctionBuilder>(std::move(Name), NumParams));
  return static_cast<MethodId>(Builders.size() - 1);
}

FunctionBuilder &ModuleBuilder::functionBuilder(MethodId Id) {
  assert(Id < Builders.size() && "undeclared function");
  return *Builders[Id];
}

ErrorOr<Module> ModuleBuilder::build() {
  Module M;
  for (auto &Builder : Builders)
    M.addFunction(Builder->finish());
  if (Error Err = verifyModule(M); !Err.message().empty())
    return Err;
  return M;
}
