//===- bytecode/Module.h - Functions and modules --------------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static program model: a Module holds Functions ("Java methods" in the
/// paper's terms); each function owns its bytecode, arity, and local-slot
/// count.  MethodId indices into the module are the unit the paper's
/// predictor assigns optimization levels to.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_BYTECODE_MODULE_H
#define EVM_BYTECODE_MODULE_H

#include "bytecode/Opcode.h"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace evm {
namespace bc {

/// Index of a function within its module; the paper's per-method unit.
using MethodId = uint32_t;

/// A single method: name, arity, local slots, and straight bytecode.
///
/// Parameters occupy locals [0, NumParams); every function returns exactly
/// one value via Ret.
struct Function {
  std::string Name;
  uint32_t NumParams = 0;
  uint32_t NumLocals = 0; ///< total local slots, >= NumParams
  std::vector<Instr> Code;

  size_t size() const { return Code.size(); }
};

/// A program: an ordered list of functions plus a name index.  Execution
/// starts at the function named "main".
class Module {
public:
  /// Appends \p F; asserts the name is unique.  Returns its MethodId.
  MethodId addFunction(Function F);

  const Function &function(MethodId Id) const;
  Function &function(MethodId Id);

  /// Finds a function by name.
  std::optional<MethodId> findFunction(const std::string &Name) const;

  uint32_t numFunctions() const {
    return static_cast<uint32_t>(Functions.size());
  }

  /// Total bytecode size across all functions.
  size_t totalCodeSize() const;

private:
  std::vector<Function> Functions;
  std::unordered_map<std::string, MethodId> NameIndex;
};

} // namespace bc
} // namespace evm

#endif // EVM_BYTECODE_MODULE_H
