//===- bytecode/Verifier.cpp ----------------------------------------------==//

#include "bytecode/Verifier.h"

#include <deque>
#include <vector>

using namespace evm;
using namespace evm::bc;

namespace {

/// Sentinel for "never reached" in the per-instruction depth map.
constexpr int DepthUnknown = -1;

Error failAt(const Function &F, size_t Pc, const std::string &What) {
  return makeError("function '%s', instruction %zu: %s", F.Name.c_str(), Pc,
                   What.c_str());
}

} // namespace

Error bc::verifyFunction(const Module &M, MethodId Id) {
  const Function &F = M.function(Id);
  if (F.NumLocals < F.NumParams)
    return makeError("function '%s': %u params exceed %u locals",
                     F.Name.c_str(), F.NumParams, F.NumLocals);
  if (F.Code.empty())
    return makeError("function '%s': empty body", F.Name.c_str());

  const size_t CodeSize = F.Code.size();

  // Structural operand checks first, so the dataflow pass can trust them.
  for (size_t Pc = 0; Pc != CodeSize; ++Pc) {
    const Instr &I = F.Code[Pc];
    const OpcodeInfo &Info = getOpcodeInfo(I.Op);
    switch (I.Op) {
    case Opcode::LoadLocal:
    case Opcode::StoreLocal:
      if (I.Operand < 0 || I.Operand >= static_cast<int64_t>(F.NumLocals))
        return failAt(F, Pc, "local index out of range");
      break;
    case Opcode::Br:
    case Opcode::BrTrue:
    case Opcode::BrFalse:
      if (I.Operand < 0 || I.Operand >= static_cast<int64_t>(CodeSize))
        return failAt(F, Pc, "branch target out of range");
      break;
    case Opcode::Call:
      if (I.Operand < 0 ||
          I.Operand >= static_cast<int64_t>(M.numFunctions()))
        return failAt(F, Pc, "call target out of range");
      break;
    default:
      if (!Info.HasOperand && I.Operand != 0 && I.Op != Opcode::ConstFloat)
        return failAt(F, Pc, "operand on operand-less opcode");
      break;
    }
  }

  // Abstract interpretation of stack depth.  Every instruction gets a
  // statically fixed entry depth; merges must agree, branch edges must carry
  // depth zero (the phi-free discipline), and Ret must see exactly one value.
  std::vector<int> EntryDepth(CodeSize, DepthUnknown);
  std::deque<size_t> Worklist;
  EntryDepth[0] = 0;
  Worklist.push_back(0);

  auto Propagate = [&](size_t Target, int Depth,
                       size_t FromPc) -> std::optional<Error> {
    if (EntryDepth[Target] == DepthUnknown) {
      EntryDepth[Target] = Depth;
      Worklist.push_back(Target);
      return std::nullopt;
    }
    if (EntryDepth[Target] != Depth)
      return failAt(F, FromPc, "inconsistent stack depth at merge point");
    return std::nullopt;
  };

  while (!Worklist.empty()) {
    size_t Pc = Worklist.front();
    Worklist.pop_front();
    const Instr &I = F.Code[Pc];
    const OpcodeInfo &Info = getOpcodeInfo(I.Op);

    int Pops = Info.Pops;
    if (I.Op == Opcode::Call)
      Pops = static_cast<int>(
          M.function(static_cast<MethodId>(I.Operand)).NumParams);

    int Depth = EntryDepth[Pc];
    if (Depth < Pops)
      return failAt(F, Pc, "stack underflow");
    int After = Depth - Pops + Info.Pushes;

    switch (I.Op) {
    case Opcode::Ret:
      if (Depth != 1)
        return failAt(F, Pc, "ret requires exactly one value on the stack");
      continue; // no successors
    case Opcode::Br:
      if (After != 0)
        return failAt(F, Pc, "nonempty stack on branch edge");
      if (auto Err = Propagate(static_cast<size_t>(I.Operand), 0, Pc))
        return *Err;
      continue;
    case Opcode::BrTrue:
    case Opcode::BrFalse:
      if (After != 0)
        return failAt(F, Pc, "nonempty stack on conditional-branch edge");
      if (auto Err = Propagate(static_cast<size_t>(I.Operand), 0, Pc))
        return *Err;
      if (Pc + 1 == CodeSize)
        return failAt(F, Pc, "conditional branch falls off the end");
      if (auto Err = Propagate(Pc + 1, 0, Pc))
        return *Err;
      continue;
    default:
      if (Pc + 1 == CodeSize)
        return failAt(F, Pc, "control falls off the end of the function");
      if (auto Err = Propagate(Pc + 1, After, Pc))
        return *Err;
      continue;
    }
  }

  return Error();
}

Error bc::verifyModule(const Module &M) {
  if (!M.findFunction("main"))
    return makeError("module has no 'main' entry function");
  for (MethodId Id = 0; Id != M.numFunctions(); ++Id)
    if (Error Err = verifyFunction(M, Id); !Err.message().empty())
      return Err;
  return Error();
}
