//===- bytecode/Assembler.cpp ---------------------------------------------==//

#include "bytecode/Assembler.h"
#include "bytecode/Verifier.h"

#include "support/Format.h"
#include "support/StringUtils.h"

#include <cassert>
#include <unordered_map>

using namespace evm;
using namespace evm::bc;

namespace {

/// One body line awaiting operand/label resolution.
struct PendingInstr {
  Opcode Op;
  std::string OperandToken; ///< raw text; empty when absent
  int Line;
};

struct PendingFunction {
  std::string Name;
  uint32_t NumParams = 0;
  std::optional<uint32_t> DeclaredLocals;
  int Line = 0;
  std::vector<PendingInstr> Body;
  std::unordered_map<std::string, size_t> Labels; ///< label -> instr index
};

/// Strips a trailing '#' comment (not inside quotes; the asm has no strings).
std::string stripComment(const std::string &Line) {
  size_t Pos = Line.find('#');
  if (Pos == std::string::npos)
    return Line;
  return Line.substr(0, Pos);
}

/// Parses "func name(N)" headers; returns false on malformed syntax.
bool parseHeader(const std::string &Rest, std::string &Name,
                 uint32_t &NumParams, std::optional<uint32_t> &Locals) {
  std::vector<std::string> Words = splitWhitespace(Rest);
  if (Words.empty())
    return false;
  const std::string &Sig = Words[0];
  size_t Open = Sig.find('(');
  size_t Close = Sig.find(')');
  if (Open == std::string::npos || Close == std::string::npos || Close < Open)
    return false;
  Name = Sig.substr(0, Open);
  auto Params = parseInteger(Sig.substr(Open + 1, Close - Open - 1));
  if (Name.empty() || !Params || *Params < 0)
    return false;
  NumParams = static_cast<uint32_t>(*Params);
  Locals = std::nullopt;
  if (Words.size() == 1)
    return true;
  if (Words.size() != 3 || Words[1] != "locals")
    return false;
  auto L = parseInteger(Words[2]);
  if (!L || *L < 0)
    return false;
  Locals = static_cast<uint32_t>(*L);
  return true;
}

} // namespace

ErrorOr<Module> bc::assembleModule(std::string_view Source) {
  std::vector<PendingFunction> Pending;
  std::unordered_map<std::string, MethodId> FunctionIds;

  PendingFunction *Current = nullptr;
  int LineNo = 0;
  for (const std::string &RawLine : splitString(Source, '\n')) {
    ++LineNo;
    std::string Line = trimString(stripComment(RawLine));
    if (Line.empty())
      continue;

    if (startsWith(Line, "func ")) {
      if (Current)
        return makeError("line %d: 'func' inside another function", LineNo);
      PendingFunction F;
      F.Line = LineNo;
      if (!parseHeader(trimString(Line.substr(5)), F.Name, F.NumParams,
                       F.DeclaredLocals))
        return makeError("line %d: malformed function header", LineNo);
      if (FunctionIds.count(F.Name))
        return makeError("line %d: duplicate function '%s'", LineNo,
                         F.Name.c_str());
      FunctionIds.emplace(F.Name, static_cast<MethodId>(Pending.size()));
      Pending.push_back(std::move(F));
      Current = &Pending.back();
      continue;
    }

    if (Line == "end") {
      if (!Current)
        return makeError("line %d: 'end' outside a function", LineNo);
      Current = nullptr;
      continue;
    }

    if (!Current)
      return makeError("line %d: instruction outside a function", LineNo);

    if (endsWith(Line, ":")) {
      std::string Label = trimString(Line.substr(0, Line.size() - 1));
      if (Label.empty())
        return makeError("line %d: empty label", LineNo);
      if (Current->Labels.count(Label))
        return makeError("line %d: duplicate label '%s'", LineNo,
                         Label.c_str());
      Current->Labels.emplace(Label, Current->Body.size());
      continue;
    }

    std::vector<std::string> Words = splitWhitespace(Line);
    assert(!Words.empty() && "blank lines were filtered above");
    auto Op = parseOpcodeMnemonic(Words[0]);
    if (!Op)
      return makeError("line %d: unknown mnemonic '%s'", LineNo,
                       Words[0].c_str());
    const OpcodeInfo &Info = getOpcodeInfo(*Op);
    if (Info.HasOperand && Words.size() != 2)
      return makeError("line %d: '%s' requires one operand", LineNo,
                       Words[0].c_str());
    if (!Info.HasOperand && Words.size() != 1)
      return makeError("line %d: '%s' takes no operand", LineNo,
                       Words[0].c_str());
    Current->Body.push_back(
        PendingInstr{*Op, Words.size() == 2 ? Words[1] : std::string(),
                     LineNo});
  }
  if (Current)
    return makeError("line %d: missing 'end' for function '%s'", LineNo,
                     Current->Name.c_str());

  // Resolution pass: labels and call names are now all known.
  Module M;
  for (PendingFunction &PF : Pending) {
    Function F;
    F.Name = PF.Name;
    F.NumParams = PF.NumParams;
    uint32_t MaxLocal = PF.NumParams;
    for (const PendingInstr &PI : PF.Body) {
      Instr I;
      I.Op = PI.Op;
      switch (PI.Op) {
      case Opcode::Br:
      case Opcode::BrTrue:
      case Opcode::BrFalse: {
        auto It = PF.Labels.find(PI.OperandToken);
        if (It == PF.Labels.end())
          return makeError("line %d: unknown label '%s'", PI.Line,
                           PI.OperandToken.c_str());
        I.Operand = static_cast<int64_t>(It->second);
        break;
      }
      case Opcode::Call: {
        if (auto Index = parseInteger(PI.OperandToken)) {
          I.Operand = *Index;
        } else {
          auto It = FunctionIds.find(PI.OperandToken);
          if (It == FunctionIds.end())
            return makeError("line %d: unknown function '%s'", PI.Line,
                             PI.OperandToken.c_str());
          I.Operand = static_cast<int64_t>(It->second);
        }
        break;
      }
      case Opcode::ConstFloat: {
        auto V = parseDouble(PI.OperandToken);
        if (!V)
          return makeError("line %d: malformed float literal '%s'", PI.Line,
                           PI.OperandToken.c_str());
        I.Operand = Instr::encodeFloat(*V);
        break;
      }
      default: {
        if (getOpcodeInfo(PI.Op).HasOperand) {
          auto V = parseInteger(PI.OperandToken);
          if (!V)
            return makeError("line %d: malformed integer operand '%s'",
                             PI.Line, PI.OperandToken.c_str());
          I.Operand = *V;
          if (PI.Op == Opcode::LoadLocal || PI.Op == Opcode::StoreLocal)
            MaxLocal = std::max(MaxLocal, static_cast<uint32_t>(*V) + 1);
        }
        break;
      }
      }
      F.Code.push_back(I);
    }
    F.NumLocals = PF.DeclaredLocals ? *PF.DeclaredLocals : MaxLocal;
    if (F.NumLocals < MaxLocal)
      return makeError("line %d: function '%s' uses local beyond declared "
                       "'locals %u'",
                       PF.Line, PF.Name.c_str(), F.NumLocals);
    M.addFunction(std::move(F));
  }

  if (Error Err = verifyModule(M); !Err.message().empty())
    return Err;
  return M;
}

std::string bc::disassembleFunction(const Module &M, MethodId Id) {
  const Function &F = M.function(Id);

  // Branch targets get labels "L<index>".
  std::unordered_map<size_t, std::string> Labels;
  for (const Instr &I : F.Code)
    if (getOpcodeInfo(I.Op).IsBranch)
      Labels.emplace(static_cast<size_t>(I.Operand),
                     formatString("L%zu", static_cast<size_t>(I.Operand)));

  std::string Out = formatString("func %s(%u) locals %u\n", F.Name.c_str(),
                                 F.NumParams, F.NumLocals);
  for (size_t Pc = 0; Pc != F.Code.size(); ++Pc) {
    if (auto It = Labels.find(Pc); It != Labels.end())
      Out += It->second + ":\n";
    const Instr &I = F.Code[Pc];
    const OpcodeInfo &Info = getOpcodeInfo(I.Op);
    Out += "  ";
    Out += Info.Mnemonic;
    if (Info.IsBranch) {
      Out += " " + Labels[static_cast<size_t>(I.Operand)];
    } else if (I.Op == Opcode::Call) {
      Out += " " + M.function(static_cast<MethodId>(I.Operand)).Name;
    } else if (I.Op == Opcode::ConstFloat) {
      Out += formatString(" %g", I.floatOperand());
    } else if (Info.HasOperand) {
      Out += formatString(" %lld", static_cast<long long>(I.Operand));
    }
    Out += "\n";
  }
  Out += "end\n";
  return Out;
}

std::string bc::disassembleModule(const Module &M) {
  std::string Out;
  for (MethodId Id = 0; Id != M.numFunctions(); ++Id) {
    if (Id != 0)
      Out += "\n";
    Out += disassembleFunction(M, Id);
  }
  return Out;
}
