//===- bytecode/Module.cpp ------------------------------------------------==//

#include "bytecode/Module.h"

#include <cassert>

using namespace evm;
using namespace evm::bc;

MethodId Module::addFunction(Function F) {
  assert(!NameIndex.count(F.Name) && "duplicate function name");
  assert(F.NumLocals >= F.NumParams && "params must fit in locals");
  MethodId Id = static_cast<MethodId>(Functions.size());
  NameIndex.emplace(F.Name, Id);
  Functions.push_back(std::move(F));
  return Id;
}

const Function &Module::function(MethodId Id) const {
  assert(Id < Functions.size() && "method id out of range");
  return Functions[Id];
}

Function &Module::function(MethodId Id) {
  assert(Id < Functions.size() && "method id out of range");
  return Functions[Id];
}

std::optional<MethodId> Module::findFunction(const std::string &Name) const {
  auto It = NameIndex.find(Name);
  if (It == NameIndex.end())
    return std::nullopt;
  return It->second;
}

size_t Module::totalCodeSize() const {
  size_t Total = 0;
  for (const Function &F : Functions)
    Total += F.Code.size();
  return Total;
}
