//===- bytecode/Verifier.h - Static well-formedness checks ----------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode verifier.  Beyond the usual structural checks (operand
/// ranges, reachable terminators), it enforces the *empty-stack block
/// boundary* discipline: the evaluation stack must be empty on every branch
/// edge.  That invariant is what lets the JIT lower stack code to register
/// IR without phi nodes (locals become fixed registers; expression
/// temporaries never cross blocks).
///
//===----------------------------------------------------------------------===//

#ifndef EVM_BYTECODE_VERIFIER_H
#define EVM_BYTECODE_VERIFIER_H

#include "bytecode/Module.h"
#include "support/Error.h"

namespace evm {
namespace bc {

/// Verifies one function.  Returns an Error with an empty message on
/// success, or a diagnostic naming the function and instruction index.
Error verifyFunction(const Module &M, MethodId Id);

/// Verifies every function plus module-level rules (a `main` entry exists).
Error verifyModule(const Module &M);

} // namespace bc
} // namespace evm

#endif // EVM_BYTECODE_VERIFIER_H
