//===- bytecode/Assembler.h - Textual bytecode front end ------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small textual assembly format for MiniVM modules, used by examples and
/// tests (workloads use the builder API instead).  Syntax:
///
/// \code
///   # shortest-path kernel
///   func main(2) locals 4
///     const_i 0
///     store_local 2
///   loop:
///     load_local 2
///     load_local 0
///     lt
///     br_false done
///     call helper        # calls may use names or indices
///     pop
///     ...
///     br loop
///   done:
///     load_local 3
///     ret
///   end
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef EVM_BYTECODE_ASSEMBLER_H
#define EVM_BYTECODE_ASSEMBLER_H

#include "bytecode/Module.h"
#include "support/Error.h"

#include <string_view>

namespace evm {
namespace bc {

/// Parses \p Source into a verified Module.  Diagnostics carry 1-based line
/// numbers.
ErrorOr<Module> assembleModule(std::string_view Source);

/// Renders \p M back to assembly text accepted by assembleModule.
std::string disassembleModule(const Module &M);

/// Renders a single function (used in tests and debug dumps).
std::string disassembleFunction(const Module &M, MethodId Id);

} // namespace bc
} // namespace evm

#endif // EVM_BYTECODE_ASSEMBLER_H
