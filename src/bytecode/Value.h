//===- bytecode/Value.h - Tagged runtime value ----------------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM runtime value: a tagged 64-bit integer or double, mirroring
/// the numeric subset of JVM stack slots that the paper's workloads exercise.
/// Arithmetic is polymorphic with int-to-float promotion, so the same helper
/// serves the interpreter, the JIT's constant folder, and the compiled-code
/// executor (keeping all three semantically aligned by construction).
///
//===----------------------------------------------------------------------===//

#ifndef EVM_BYTECODE_VALUE_H
#define EVM_BYTECODE_VALUE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace evm {
namespace bc {

/// A runtime value: 64-bit integer or IEEE double.
class Value {
public:
  enum class Kind : uint8_t { Int, Float };

  Value() : TheKind(Kind::Int) { Storage.I = 0; }
  static Value makeInt(int64_t I) {
    Value V;
    V.TheKind = Kind::Int;
    V.Storage.I = I;
    return V;
  }
  static Value makeFloat(double F) {
    Value V;
    V.TheKind = Kind::Float;
    V.Storage.F = F;
    return V;
  }

  Kind kind() const { return TheKind; }
  bool isInt() const { return TheKind == Kind::Int; }
  bool isFloat() const { return TheKind == Kind::Float; }

  int64_t asInt() const {
    assert(isInt() && "value is not an integer");
    return Storage.I;
  }
  double asFloat() const {
    assert(isFloat() && "value is not a float");
    return Storage.F;
  }

  /// Numeric view with int-to-double promotion.
  double toDouble() const {
    return isInt() ? static_cast<double>(Storage.I) : Storage.F;
  }

  /// Truthiness: nonzero means true (floats compare against 0.0).
  bool isTruthy() const {
    return isInt() ? Storage.I != 0 : Storage.F != 0.0;
  }

  bool equals(const Value &Other) const {
    if (TheKind != Other.TheKind)
      return toDouble() == Other.toDouble();
    return isInt() ? Storage.I == Other.Storage.I
                   : Storage.F == Other.Storage.F;
  }

  /// Renders the value for diagnostics ("42" or "3.5f").
  std::string str() const;

private:
  Kind TheKind;
  union {
    int64_t I;
    double F;
  } Storage;
};

} // namespace bc
} // namespace evm

#endif // EVM_BYTECODE_VALUE_H
