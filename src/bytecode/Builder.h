//===- bytecode/Builder.h - Programmatic bytecode construction -----------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FunctionBuilder/ModuleBuilder: the API the workload analogues use to
/// construct MiniVM programs.  Labels give forward-branch patching; the
/// two-phase declare/define split on ModuleBuilder lets mutually recursive
/// methods reference each other by MethodId.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_BYTECODE_BUILDER_H
#define EVM_BYTECODE_BUILDER_H

#include "bytecode/Module.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <vector>

namespace evm {
namespace bc {

/// Builds one function's bytecode with label-based control flow.
///
/// The builder enforces nothing about stack discipline; run the verifier on
/// the finished module (ModuleBuilder::build does so automatically).
class FunctionBuilder {
public:
  /// An opaque label handle; create with makeLabel, place with bind.
  using Label = uint32_t;

  FunctionBuilder(std::string Name, uint32_t NumParams);

  /// Reserves a fresh local slot (beyond the parameters).
  uint32_t allocLocal();

  /// Creates an unbound label for a future bind().
  Label makeLabel();
  /// Binds \p L to the next emitted instruction.
  void bind(Label L);

  // Raw emission; branch operands must use the label overloads below.
  void emit(Opcode Op, int64_t Operand = 0);

  // Convenience emitters (thin wrappers over emit).
  void constInt(int64_t V) { emit(Opcode::ConstInt, V); }
  void constFloat(double V) { emit(Opcode::ConstFloat, Instr::encodeFloat(V)); }
  void loadLocal(uint32_t Slot) { emit(Opcode::LoadLocal, Slot); }
  void storeLocal(uint32_t Slot) { emit(Opcode::StoreLocal, Slot); }
  void call(MethodId Callee) { emit(Opcode::Call, Callee); }
  void ret() { emit(Opcode::Ret); }

  void br(Label L) { emitBranch(Opcode::Br, L); }
  void brTrue(Label L) { emitBranch(Opcode::BrTrue, L); }
  void brFalse(Label L) { emitBranch(Opcode::BrFalse, L); }

  /// Emits `locals[Slot] = locals[Slot] + Delta` (a common induction step).
  void incrementLocal(uint32_t Slot, int64_t Delta);

  /// Current instruction count (useful for size-sensitive tests).
  size_t codeSize() const { return Code.size(); }

  /// Patches labels and produces the Function.  Asserts all used labels are
  /// bound.
  Function finish();

private:
  void emitBranch(Opcode Op, Label L);

  std::string Name;
  uint32_t NumParams;
  uint32_t NextLocal;
  std::vector<Instr> Code;
  static constexpr int64_t UnboundTarget = -1;
  std::vector<int64_t> LabelTargets; ///< instruction index per label
  std::vector<std::pair<size_t, Label>> Fixups;
};

/// Builds a whole module in two phases: declare every function (so calls can
/// reference forward MethodIds), then define bodies via functionBuilder().
class ModuleBuilder {
public:
  /// Declares a function and returns its (stable) MethodId.
  MethodId declareFunction(std::string Name, uint32_t NumParams);

  /// The builder for a declared function's body.
  FunctionBuilder &functionBuilder(MethodId Id);

  /// Finishes all function builders, assembles the module, and verifies it.
  ErrorOr<Module> build();

private:
  std::vector<std::unique_ptr<FunctionBuilder>> Builders;
};

} // namespace bc
} // namespace evm

#endif // EVM_BYTECODE_BUILDER_H
