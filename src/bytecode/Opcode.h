//===- bytecode/Opcode.h - MiniVM stack-bytecode instruction set ---------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM instruction set: a compact JVM-like stack bytecode.  Methods
/// are compiled from this form by the baseline interpreter (level -1) and
/// the optimizing JIT (levels 0/1/2), exactly mirroring the tiered structure
/// the paper's prediction targets.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_BYTECODE_OPCODE_H
#define EVM_BYTECODE_OPCODE_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace evm {
namespace bc {

/// Every MiniVM opcode.  Operand use is per-opcode: constants carry an
/// immediate, local accesses an index, branches a code offset, calls a
/// function index; the rest ignore the operand.
enum class Opcode : uint8_t {
  // Constants.
  ConstInt,   ///< push imm (int)
  ConstFloat, ///< push imm (double, bit-cast into the operand)
  // Stack shuffling.
  Pop,  ///< drop top
  Dup,  ///< duplicate top
  Swap, ///< swap top two
  // Locals.
  LoadLocal,  ///< push locals[operand]
  StoreLocal, ///< locals[operand] = pop
  // Arithmetic (int/float polymorphic with promotion).
  Add,
  Sub,
  Mul,
  Div, ///< traps on integer division by zero
  Mod, ///< traps on integer modulo by zero
  Neg,
  // Bitwise/logic (integer-only; traps on float operands).
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Not, ///< logical not: pushes 1 if falsy else 0
  // Comparisons (push int 0/1).
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  // Conversions and math intrinsics.
  I2F,
  F2I,
  Sqrt,
  Sin,
  Cos,
  Floor,
  Abs,
  Min,
  Max,
  // Control flow.  Branch operands are absolute instruction indices.
  Br,
  BrTrue,
  BrFalse,
  Call, ///< operand = callee function index; pops callee arity, pushes 1
  Ret,  ///< pops 1, returns it
  // Heap: a flat array of values shared by the whole execution.
  NewArr,  ///< pop size, push base address (bump allocation)
  HLoad,   ///< pop addr, push heap[addr]
  HStore,  ///< pop value, pop addr, heap[addr] = value
  Nop,
};

/// Number of distinct opcodes (for table sizing).
constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::Nop) + 1;

/// Static properties of one opcode.
struct OpcodeInfo {
  std::string_view Mnemonic;
  /// Values popped from the stack (-1 for Call, whose arity is dynamic).
  int Pops;
  /// Values pushed onto the stack.
  int Pushes;
  bool HasOperand;
  bool IsBranch;     ///< Br/BrTrue/BrFalse
  bool IsTerminator; ///< Br or Ret (control never falls through)
};

/// Returns the static properties of \p Op.
const OpcodeInfo &getOpcodeInfo(Opcode Op);

/// Maps a mnemonic back to its opcode; nullopt for unknown names.
std::optional<Opcode> parseOpcodeMnemonic(std::string_view Mnemonic);

/// One encoded instruction: opcode plus a 64-bit operand slot.
struct Instr {
  Opcode Op = Opcode::Nop;
  int64_t Operand = 0;

  /// Reads a ConstFloat payload.
  double floatOperand() const;
  /// Encodes a ConstFloat payload.
  static int64_t encodeFloat(double F);
};

} // namespace bc
} // namespace evm

#endif // EVM_BYTECODE_OPCODE_H
