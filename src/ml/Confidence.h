//===- ml/Confidence.h - Decayed-accuracy confidence ----------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discriminative-prediction guard (paper Sec. IV-C, Fig. 7):
/// confidence is the decayed average of prediction accuracies over previous
/// executions, conf = (1 - gamma) * conf + gamma * acc, and a prediction is
/// only applied when conf exceeds a threshold.  The paper uses gamma = 0.7
/// and THc = 0.7.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_ML_CONFIDENCE_H
#define EVM_ML_CONFIDENCE_H

#include <cassert>

namespace evm {
namespace ml {

/// Tracks model confidence as a decayed accuracy average.
class ConfidenceTracker {
public:
  /// \p Gamma weights recent runs (larger = more recent-heavy); confidence
  /// starts at 0, so early immature models never pass the guard.
  explicit ConfidenceTracker(double Gamma = 0.7, double Threshold = 0.7)
      : Gamma(Gamma), Threshold(Threshold) {
    assert(Gamma >= 0 && Gamma <= 1 && "gamma outside [0,1]");
    assert(Threshold >= 0 && Threshold <= 1 && "threshold outside [0,1]");
  }

  /// Folds one run's prediction accuracy (in [0,1]) into the confidence.
  void update(double Accuracy) {
    assert(Accuracy >= 0 && Accuracy <= 1 && "accuracy outside [0,1]");
    Conf = (1 - Gamma) * Conf + Gamma * Accuracy;
  }

  /// Reinstates a persisted confidence value (warm start).  The input is
  /// store bytes, so out-of-range or NaN clamps into [0,1] instead of
  /// asserting — a damaged store must never abort a run.
  void restore(double Value) {
    if (!(Value >= 0)) // also catches NaN
      Value = 0;
    if (Value > 1)
      Value = 1;
    Conf = Value;
  }

  double value() const { return Conf; }
  double gamma() const { return Gamma; }
  double threshold() const { return Threshold; }

  /// The discriminative gate: predict only when confident.
  bool confident() const { return Conf > Threshold; }

private:
  double Gamma;
  double Threshold;
  double Conf = 0;
};

} // namespace ml
} // namespace evm

#endif // EVM_ML_CONFIDENCE_H
