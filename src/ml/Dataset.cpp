//===- ml/Dataset.cpp -----------------------------------------------------==//

#include "ml/Dataset.h"

#include <algorithm>
#include <cassert>

using namespace evm;
using namespace evm::ml;
using xicl::Feature;
using xicl::FeatureVector;

int Dataset::columnFor(const Feature &F) {
  auto It = ColumnIndex.find(F.Name);
  if (It != ColumnIndex.end())
    return static_cast<int>(It->second);
  FeatureDef Def;
  Def.Name = F.Name;
  Def.Categorical = !F.isNumeric();
  size_t Column = Schema.size();
  Schema.push_back(std::move(Def));
  ColumnIndex.emplace(F.Name, Column);
  // Existing rows read 0 for the new column.
  for (Example &E : Examples)
    E.Values.resize(Schema.size(), 0);
  return static_cast<int>(Column);
}

void Dataset::addExample(const FeatureVector &FV, int Label) {
  Example Row;
  Row.Values.assign(Schema.size(), 0);
  Row.Label = Label;
  for (const Feature &F : FV.Features) {
    int Column = columnFor(F);
    Row.Values.resize(Schema.size(), 0);
    FeatureDef &Def = Schema[static_cast<size_t>(Column)];
    if (Def.Categorical) {
      auto [It, Inserted] = Def.Dictionary.emplace(
          F.Cat, static_cast<int>(Def.Dictionary.size()));
      (void)Inserted;
      Row.Values[static_cast<size_t>(Column)] = It->second;
    } else {
      Row.Values[static_cast<size_t>(Column)] = F.Num;
    }
  }
  Examples.push_back(std::move(Row));
}

Example Dataset::encode(const FeatureVector &FV) const {
  Example Row;
  Row.Values.assign(Schema.size(), 0);
  for (const Feature &F : FV.Features) {
    auto It = ColumnIndex.find(F.Name);
    if (It == ColumnIndex.end())
      continue; // feature unseen during training
    const FeatureDef &Def = Schema[It->second];
    if (Def.Categorical) {
      auto Dict = Def.Dictionary.find(F.Cat);
      Row.Values[It->second] = Dict == Def.Dictionary.end() ? -1
                                                            : Dict->second;
    } else {
      Row.Values[It->second] = F.Num;
    }
  }
  return Row;
}

std::vector<int> Dataset::labels() const {
  std::vector<int> Out;
  for (const Example &E : Examples)
    if (std::find(Out.begin(), Out.end(), E.Label) == Out.end())
      Out.push_back(E.Label);
  std::sort(Out.begin(), Out.end());
  return Out;
}

Dataset Dataset::subset(const std::vector<size_t> &Rows) const {
  Dataset Out;
  Out.Schema = Schema;
  Out.ColumnIndex = ColumnIndex;
  Out.Examples.reserve(Rows.size());
  for (size_t R : Rows) {
    assert(R < Examples.size() && "row index out of range");
    Example E = Examples[R];
    E.Values.resize(Schema.size(), 0);
    Out.Examples.push_back(std::move(E));
  }
  return Out;
}
