//===- ml/Dataset.h - Training data for classification trees --------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The example store behind incremental input-behavior modeling (paper
/// Sec. IV).  Rows accumulate across production runs; features are aligned
/// by name so the schema can grow when runtime-passed features (updateV)
/// appear after the first run.  Categorical string values are dictionary-
/// encoded per feature.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_ML_DATASET_H
#define EVM_ML_DATASET_H

#include "xicl/FeatureVector.h"

#include <map>
#include <string>
#include <vector>

namespace evm {
namespace ml {

/// Column description.
struct FeatureDef {
  std::string Name;
  bool Categorical = false;
  /// Dictionary for categorical columns: string -> dense id.
  std::map<std::string, int> Dictionary;
};

/// One encoded training example: per-column value (numeric value or
/// category id) plus an integer class label.
struct Example {
  std::vector<double> Values;
  int Label = 0;
};

/// A growable, name-aligned dataset.
class Dataset {
public:
  /// Encodes \p FV into a row (extending the schema for unseen feature
  /// names — earlier rows read 0 for them) and appends it with \p Label.
  void addExample(const xicl::FeatureVector &FV, int Label);

  /// Encodes \p FV against the current schema without storing it (for
  /// prediction).  Unseen categorical values encode as -1; unknown feature
  /// names are ignored; missing features read 0.
  Example encode(const xicl::FeatureVector &FV) const;

  /// Rewrites the label of row \p I (the evolvable VM shares one encoded
  /// feature table across its per-method models and relabels copies).
  void setLabel(size_t I, int Label) { Examples[I].Label = Label; }

  size_t numExamples() const { return Examples.size(); }
  size_t numFeatures() const { return Schema.size(); }
  const std::vector<FeatureDef> &schema() const { return Schema; }
  const Example &example(size_t I) const { return Examples[I]; }
  const std::vector<Example> &examples() const { return Examples; }

  /// Distinct labels present, sorted ascending.
  std::vector<int> labels() const;

  /// Dataset restricted to the given row indices (for cross-validation).
  Dataset subset(const std::vector<size_t> &Rows) const;

private:
  int columnFor(const xicl::Feature &F);

  std::vector<FeatureDef> Schema;
  std::map<std::string, size_t> ColumnIndex;
  std::vector<Example> Examples;
};

} // namespace ml
} // namespace evm

#endif // EVM_ML_DATASET_H
