//===- ml/ClassificationTree.cpp ------------------------------------------==//

#include "ml/ClassificationTree.h"

#include "support/Format.h"
#include "support/Profiler.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>

using namespace evm;
using namespace evm::ml;

double ml::labelEntropy(const Dataset &D, const std::vector<size_t> &Rows) {
  if (Rows.empty())
    return 0;
  std::map<int, size_t> Counts;
  for (size_t R : Rows)
    ++Counts[D.example(R).Label];
  double Entropy = 0;
  double N = static_cast<double>(Rows.size());
  for (const auto &[Label, Count] : Counts) {
    (void)Label;
    double P = static_cast<double>(Count) / N;
    Entropy -= P * std::log2(P);
  }
  return Entropy;
}

namespace {

/// Majority label of \p Rows (smallest label wins ties); 0 when empty.
int majorityLabel(const Dataset &D, const std::vector<size_t> &Rows) {
  std::map<int, size_t> Counts;
  for (size_t R : Rows)
    ++Counts[D.example(R).Label];
  int Best = 0;
  size_t BestCount = 0;
  for (const auto &[Label, Count] : Counts)
    if (Count > BestCount) {
      Best = Label;
      BestCount = Count;
    }
  return Best;
}

struct SplitChoice {
  double Gain = -1;
  size_t FeatureIndex = 0;
  bool Categorical = false;
  double Threshold = 0;
  int CategoryId = 0;
};

/// Entropy gain of partitioning Rows into (Left, Right).
double splitGain(const Dataset &D, const std::vector<size_t> &Rows,
                 const std::vector<size_t> &Left,
                 const std::vector<size_t> &Right, double ParentEntropy) {
  if (Left.empty() || Right.empty())
    return -1;
  double N = static_cast<double>(Rows.size());
  double Weighted =
      (static_cast<double>(Left.size()) / N) * labelEntropy(D, Left) +
      (static_cast<double>(Right.size()) / N) * labelEntropy(D, Right);
  return ParentEntropy - Weighted;
}

/// Finds the best question over all features for \p Rows.
SplitChoice chooseSplit(const Dataset &D, const std::vector<size_t> &Rows) {
  SplitChoice Best;
  double ParentEntropy = labelEntropy(D, Rows);
  if (ParentEntropy <= 0)
    return Best;

  for (size_t F = 0; F != D.numFeatures(); ++F) {
    const FeatureDef &Def = D.schema()[F];
    // Distinct values present in this partition.
    std::vector<double> Values;
    Values.reserve(Rows.size());
    for (size_t R : Rows)
      Values.push_back(D.example(R).Values[F]);
    std::sort(Values.begin(), Values.end());
    Values.erase(std::unique(Values.begin(), Values.end()), Values.end());
    if (Values.size() < 2)
      continue; // constant feature: can never reduce impurity

    if (Def.Categorical) {
      // One-vs-rest equality questions.
      for (double Category : Values) {
        std::vector<size_t> Left, Right;
        for (size_t R : Rows) {
          if (D.example(R).Values[F] == Category)
            Left.push_back(R);
          else
            Right.push_back(R);
        }
        double Gain = splitGain(D, Rows, Left, Right, ParentEntropy);
        if (Gain > Best.Gain) {
          Best.Gain = Gain;
          Best.FeatureIndex = F;
          Best.Categorical = true;
          Best.CategoryId = static_cast<int>(Category);
        }
      }
      continue;
    }

    // Numeric thresholds: midpoints between consecutive distinct values.
    for (size_t K = 1; K != Values.size(); ++K) {
      double Threshold = (Values[K - 1] + Values[K]) / 2;
      std::vector<size_t> Left, Right;
      for (size_t R : Rows) {
        if (D.example(R).Values[F] < Threshold)
          Left.push_back(R);
        else
          Right.push_back(R);
      }
      double Gain = splitGain(D, Rows, Left, Right, ParentEntropy);
      if (Gain > Best.Gain) {
        Best.Gain = Gain;
        Best.FeatureIndex = F;
        Best.Categorical = false;
        Best.Threshold = Threshold;
      }
    }
  }
  return Best;
}

} // namespace

std::unique_ptr<ClassificationTree::Node>
ClassificationTree::buildNode(const Dataset &D,
                              const std::vector<size_t> &Rows,
                              const TreeParams &Params, int Depth) {
  auto N = std::make_unique<Node>();
  N->Label = majorityLabel(D, Rows);

  if (Depth >= Params.MaxDepth || Rows.size() < Params.MinSamplesSplit)
    return N;
  SplitChoice Split = chooseSplit(D, Rows);
  if (Split.Gain <= Params.MinGain)
    return N;

  std::vector<size_t> Left, Right;
  for (size_t R : Rows) {
    double V = D.example(R).Values[Split.FeatureIndex];
    bool GoLeft = Split.Categorical ? V == Split.CategoryId
                                    : V < Split.Threshold;
    (GoLeft ? Left : Right).push_back(R);
  }
  assert(!Left.empty() && !Right.empty() && "degenerate split chosen");

  N->IsLeaf = false;
  N->FeatureIndex = Split.FeatureIndex;
  N->Categorical = Split.Categorical;
  N->Threshold = Split.Threshold;
  N->CategoryId = Split.CategoryId;
  N->Left = buildNode(D, Left, Params, Depth + 1);
  N->Right = buildNode(D, Right, Params, Depth + 1);
  return N;
}

ClassificationTree ClassificationTree::build(const Dataset &D,
                                             const TreeParams &Params) {
  // Nests under whatever offline frame invoked the training (ml/rebuild,
  // ml/crossval); the caller charges the modeled cost.
  PROF_SCOPE("tree/build");
  ClassificationTree Tree;
  std::vector<size_t> All(D.numExamples());
  for (size_t I = 0; I != All.size(); ++I)
    All[I] = I;
  Tree.Root = buildNode(D, All, Params, 0);
  return Tree;
}

int ClassificationTree::predict(const Example &E, TreePath *Path) const {
  assert(Root && "predicting with an unbuilt tree");
  if (Path) {
    Path->Steps.clear();
    Path->Leaf = 0;
  }
  const Node *N = Root.get();
  while (!N->IsLeaf) {
    double V = N->FeatureIndex < E.Values.size()
                   ? E.Values[N->FeatureIndex]
                   : 0;
    bool GoLeft = N->Categorical ? V == N->CategoryId : V < N->Threshold;
    if (Path) {
      TreePathStep Step;
      Step.FeatureIndex = N->FeatureIndex;
      Step.Categorical = N->Categorical;
      Step.Threshold = N->Threshold;
      Step.CategoryId = N->CategoryId;
      Step.WentLeft = GoLeft;
      Path->Steps.push_back(Step);
    }
    N = GoLeft ? N->Left.get() : N->Right.get();
  }
  if (Path)
    Path->Leaf = N->Label;
  return N->Label;
}

std::string TreePath::str() const {
  std::string Out;
  for (const TreePathStep &S : Steps) {
    if (S.Categorical)
      Out += formatString("C%zu:%d:%c|", S.FeatureIndex, S.CategoryId,
                          S.WentLeft ? 'L' : 'R');
    else
      Out += formatString("N%zu:%.17g:%c|", S.FeatureIndex, S.Threshold,
                          S.WentLeft ? 'L' : 'R');
  }
  Out += formatString("L%d", Leaf);
  return Out;
}

std::set<size_t> ClassificationTree::usedFeatures() const {
  std::set<size_t> Out;
  // Walk iteratively to keep Node private.
  std::vector<const Node *> Stack;
  if (Root)
    Stack.push_back(Root.get());
  while (!Stack.empty()) {
    const Node *N = Stack.back();
    Stack.pop_back();
    if (N->IsLeaf)
      continue;
    Out.insert(N->FeatureIndex);
    Stack.push_back(N->Left.get());
    Stack.push_back(N->Right.get());
  }
  return Out;
}

size_t ClassificationTree::numNodes() const {
  size_t Count = 0;
  std::vector<const Node *> Stack;
  if (Root)
    Stack.push_back(Root.get());
  while (!Stack.empty()) {
    const Node *N = Stack.back();
    Stack.pop_back();
    ++Count;
    if (!N->IsLeaf) {
      Stack.push_back(N->Left.get());
      Stack.push_back(N->Right.get());
    }
  }
  return Count;
}

int ClassificationTree::depth() const {
  // (node, depth) DFS.
  int Max = 0;
  std::vector<std::pair<const Node *, int>> Stack;
  if (Root)
    Stack.emplace_back(Root.get(), 1);
  while (!Stack.empty()) {
    auto [N, D] = Stack.back();
    Stack.pop_back();
    Max = std::max(Max, D);
    if (!N->IsLeaf) {
      Stack.emplace_back(N->Left.get(), D + 1);
      Stack.emplace_back(N->Right.get(), D + 1);
    }
  }
  return Max;
}

void ClassificationTree::serializeNode(const Node *N, std::string &Out) {
  if (N->IsLeaf) {
    Out += formatString("L%d", N->Label);
    return;
  }
  if (N->Categorical)
    Out += formatString("C%zu:%d(", N->FeatureIndex, N->CategoryId);
  else
    Out += formatString("N%zu:%.17g(", N->FeatureIndex, N->Threshold);
  serializeNode(N->Left.get(), Out);
  Out += ")(";
  serializeNode(N->Right.get(), Out);
  Out += ')';
}

std::string ClassificationTree::serialize() const {
  assert(Root && "serializing an unbuilt tree");
  std::string Out;
  serializeNode(Root.get(), Out);
  return Out;
}

std::unique_ptr<ClassificationTree::Node>
ClassificationTree::parseNode(std::string_view Text, size_t &Pos, int Depth) {
  // Bounded: MaxDepth in training is 12, but the text is store bytes and
  // untrusted until proven well-formed.
  if (Depth > 64 || Pos >= Text.size())
    return nullptr;

  // Scans a number token ([-+.eE0-9]*) starting at Pos; empty tokens fail.
  auto ScanNumber = [&]() -> std::string {
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '-' || Text[Pos] == '+' || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E'))
      ++Pos;
    return std::string(Text.substr(Start, Pos - Start));
  };
  auto Expect = [&](char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  };

  char Kind = Text[Pos++];
  auto N = std::make_unique<Node>();
  if (Kind == 'L') {
    std::string Tok = ScanNumber();
    if (Tok.empty())
      return nullptr;
    char *End = nullptr;
    N->Label = static_cast<int>(std::strtol(Tok.c_str(), &End, 10));
    if (*End != '\0')
      return nullptr;
    return N;
  }
  if (Kind != 'N' && Kind != 'C')
    return nullptr;

  std::string FeatTok = ScanNumber();
  if (FeatTok.empty() || !Expect(':'))
    return nullptr;
  char *End = nullptr;
  N->FeatureIndex = static_cast<size_t>(std::strtoull(FeatTok.c_str(), &End, 10));
  if (*End != '\0')
    return nullptr;
  N->IsLeaf = false;
  N->Categorical = Kind == 'C';

  std::string ValTok = ScanNumber();
  if (ValTok.empty())
    return nullptr;
  if (N->Categorical) {
    N->CategoryId = static_cast<int>(std::strtol(ValTok.c_str(), &End, 10));
  } else {
    N->Threshold = std::strtod(ValTok.c_str(), &End);
  }
  if (*End != '\0')
    return nullptr;

  if (!Expect('('))
    return nullptr;
  N->Left = parseNode(Text, Pos, Depth + 1);
  if (!N->Left || !Expect(')') || !Expect('('))
    return nullptr;
  N->Right = parseNode(Text, Pos, Depth + 1);
  if (!N->Right || !Expect(')'))
    return nullptr;
  return N;
}

std::optional<ClassificationTree>
ClassificationTree::deserialize(std::string_view Text) {
  size_t Pos = 0;
  std::unique_ptr<Node> Root = parseNode(Text, Pos, 0);
  if (!Root || Pos != Text.size())
    return std::nullopt;
  ClassificationTree Tree;
  Tree.Root = std::move(Root);
  return Tree;
}

std::string ClassificationTree::print(const Dataset &D) const {
  std::string Out;
  std::vector<std::pair<const Node *, int>> Stack;
  if (Root)
    Stack.emplace_back(Root.get(), 0);
  while (!Stack.empty()) {
    auto [N, Indent] = Stack.back();
    Stack.pop_back();
    Out += std::string(static_cast<size_t>(Indent) * 2, ' ');
    if (N->IsLeaf) {
      Out += formatString("-> %d\n", N->Label);
      continue;
    }
    const FeatureDef &Def = D.schema()[N->FeatureIndex];
    if (N->Categorical) {
      // Recover the category string for readability.
      std::string Cat = "?";
      for (const auto &[Name, Id] : Def.Dictionary)
        if (Id == N->CategoryId)
          Cat = Name;
      Out += formatString("%s == %s?\n", Def.Name.c_str(), Cat.c_str());
    } else {
      Out += formatString("%s < %g?\n", Def.Name.c_str(), N->Threshold);
    }
    Stack.emplace_back(N->Right.get(), Indent + 1);
    Stack.emplace_back(N->Left.get(), Indent + 1);
  }
  return Out;
}
