//===- ml/CrossValidation.cpp ---------------------------------------------==//

#include "ml/CrossValidation.h"

#include <algorithm>
#include <cassert>

using namespace evm;
using namespace evm::ml;

double ml::kFoldAccuracy(const Dataset &D, int K, Rng &Rng,
                         const TreeParams &Params) {
  size_t N = D.numExamples();
  if (N < 2)
    return 0;
  K = std::max(2, std::min<int>(K, static_cast<int>(N)));

  std::vector<size_t> Order(N);
  for (size_t I = 0; I != N; ++I)
    Order[I] = I;
  Rng.shuffle(Order);

  size_t Correct = 0, Tested = 0;
  for (int Fold = 0; Fold != K; ++Fold) {
    std::vector<size_t> Train, Test;
    for (size_t I = 0; I != N; ++I) {
      if (static_cast<int>(I % static_cast<size_t>(K)) == Fold)
        Test.push_back(Order[I]);
      else
        Train.push_back(Order[I]);
    }
    if (Test.empty() || Train.empty())
      continue;
    Dataset TrainSet = D.subset(Train);
    ClassificationTree Tree = ClassificationTree::build(TrainSet, Params);
    for (size_t R : Test) {
      Example E = D.example(R);
      E.Values.resize(D.numFeatures(), 0);
      if (Tree.predict(E) == D.example(R).Label)
        ++Correct;
      ++Tested;
    }
  }
  assert(Tested > 0 && "no folds evaluated");
  return static_cast<double>(Correct) / static_cast<double>(Tested);
}
