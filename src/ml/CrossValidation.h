//===- ml/CrossValidation.h - Model quality estimation ---------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// K-fold cross-validation over a Dataset, used to assess predictive-model
/// quality offline (the paper's discriminative prediction additionally
/// tracks a decayed online accuracy; see Confidence.h).
///
//===----------------------------------------------------------------------===//

#ifndef EVM_ML_CROSSVALIDATION_H
#define EVM_ML_CROSSVALIDATION_H

#include "ml/ClassificationTree.h"
#include "support/Rng.h"

namespace evm {
namespace ml {

/// K-fold cross-validated accuracy in [0, 1].  Rows are shuffled with
/// \p Rng before folding; datasets smaller than \p K fall back to
/// leave-one-out.  Returns 0 for datasets with fewer than 2 examples.
double kFoldAccuracy(const Dataset &D, int K, Rng &Rng,
                     const TreeParams &Params = TreeParams());

} // namespace ml
} // namespace evm

#endif // EVM_ML_CROSSVALIDATION_H
