//===- ml/ClassificationTree.h - Entropy-based decision trees -------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's modeling technique (Sec. IV-B, Fig. 6): classification trees
/// built by recursive divide-and-conquer, splitting on the question with
/// the largest entropy-based impurity reduction.  Numeric columns split on
/// thresholds (x < t), categorical columns on equality (x == c).  The
/// properties the paper relies on hold here by construction:
///
///   * both discrete and numeric features are handled;
///   * important features are selected automatically — features that never
///     reduce impurity (e.g. never-used options stuck at their defaults)
///     simply never appear in the tree (usedFeatures() reports the rest,
///     Table I's "Used" column).
///
//===----------------------------------------------------------------------===//

#ifndef EVM_ML_CLASSIFICATIONTREE_H
#define EVM_ML_CLASSIFICATIONTREE_H

#include "ml/Dataset.h"

#include <memory>
#include <optional>
#include <set>
#include <string_view>

namespace evm {
namespace ml {

/// Tree construction parameters.
struct TreeParams {
  int MaxDepth = 12;
  size_t MinSamplesSplit = 2;
  double MinGain = 1e-9;
};

/// Shannon entropy (bits) of the label distribution of \p Rows over \p D.
double labelEntropy(const Dataset &D, const std::vector<size_t> &Rows);

/// One split decision along a root-to-leaf walk.
struct TreePathStep {
  size_t FeatureIndex = 0;
  bool Categorical = false;
  double Threshold = 0; ///< numeric: went left when value < Threshold
  int CategoryId = 0;   ///< categorical: went left when value == CategoryId
  bool WentLeft = false;
};

/// The full walk one prediction took — the decision ledger's "why" record
/// for a tree-model prediction.
struct TreePath {
  std::vector<TreePathStep> Steps;
  int Leaf = 0; ///< the label the walk arrived at

  /// Canonical text, '|'-joined: numeric steps "N<feat>:<threshold>:<L|R>"
  /// (threshold as %.17g, like serialize()), categorical steps
  /// "C<feat>:<catid>:<L|R>", then the terminal leaf "L<label>" — e.g.
  /// "N3:114.5:L|C0:2:R|L2".  A degenerate (leaf-only) tree renders "L0".
  std::string str() const;
};

/// A trained classification tree.
class ClassificationTree {
public:
  /// Builds a tree over the whole dataset.  An empty dataset yields a
  /// degenerate tree predicting label 0.
  static ClassificationTree build(const Dataset &D,
                                  const TreeParams &Params = TreeParams());

  /// Predicts the label of an encoded example.  \p Path, when given, is
  /// overwritten with the walk taken (same label in Path->Leaf); capturing
  /// it never changes the prediction or the metered work.
  int predict(const Example &E, TreePath *Path = nullptr) const;

  /// Indices of features actually used in split nodes (automatic feature
  /// selection).
  std::set<size_t> usedFeatures() const;

  size_t numNodes() const;
  int depth() const;

  /// Multi-line rendering ("x2 < 4.5?" style) for tests and debugging.
  std::string print(const Dataset &D) const;

  /// Canonical preorder text for the knowledge store: leaves are
  /// "L<label>", numeric splits "N<feat>:<threshold>(<left>)(<right>)",
  /// categorical splits "C<feat>:<catid>(<left>)(<right>)".  Thresholds
  /// render as %.17g, so serialize(deserialize(T)) == T byte for byte.
  std::string serialize() const;

  /// Rebuilds a tree from serialize() text; nullopt on any malformed input
  /// (loaders fall back to retraining from the persisted examples).
  static std::optional<ClassificationTree> deserialize(std::string_view Text);

private:
  struct Node {
    bool IsLeaf = true;
    int Label = 0;
    // Split description (internal nodes).
    size_t FeatureIndex = 0;
    bool Categorical = false;
    double Threshold = 0; ///< numeric: left when value < Threshold
    int CategoryId = 0;   ///< categorical: left when value == CategoryId
    std::unique_ptr<Node> Left, Right;
  };

  static std::unique_ptr<Node> buildNode(const Dataset &D,
                                         const std::vector<size_t> &Rows,
                                         const TreeParams &Params,
                                         int Depth);
  static void serializeNode(const Node *N, std::string &Out);
  static std::unique_ptr<Node> parseNode(std::string_view Text, size_t &Pos,
                                         int Depth);
  std::unique_ptr<Node> Root;
};

} // namespace ml
} // namespace evm

#endif // EVM_ML_CLASSIFICATIONTREE_H
