//===- evolve/SpecFeedback.h - Feedback for XICL spec refinement ----------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's proposed extension (Sec. VI): "let the virtual machine offer
/// feedback to the programmers for the refinement of the specifications."
///
/// After some production runs, the VM knows which declared features the
/// trees never split on (candidates to drop from the spec), which never
/// varied across the observed inputs (options users never override), and
/// whether prediction accuracy is trending up or stuck low (a signal that
/// an important feature is missing from the spec altogether).
///
//===----------------------------------------------------------------------===//

#ifndef EVM_EVOLVE_SPECFEEDBACK_H
#define EVM_EVOLVE_SPECFEEDBACK_H

#include "evolve/ModelBuilder.h"

#include <string>
#include <vector>

namespace evm {
namespace evolve {

/// One analyzed input feature.
struct FeatureReport {
  std::string Name;
  bool Varied = false;      ///< took more than one value across runs
  bool UsedByModels = false; ///< appears in at least one method's tree
};

/// The VM's advice to the spec author.
struct SpecFeedback {
  size_t RunsObserved = 0;
  std::vector<FeatureReport> Features;
  /// Decayed-accuracy trend over the recorded accuracies: positive =
  /// improving, ~0 = plateau, negative = degrading.
  double AccuracyTrend = 0;
  double MeanRecentAccuracy = 0;
  /// True when accuracy plateaued below a useful level: the strongest
  /// signal that the specification is missing an important feature.
  bool LikelyMissingFeature = false;

  /// Features declared in the spec that the models never found useful.
  std::vector<std::string> droppableFeatures() const;
  /// Features that never varied (options pinned at their defaults).
  std::vector<std::string> constantFeatures() const;

  /// Multi-line human-readable report.
  std::string render() const;
};

/// Collects per-run accuracies and produces feedback against a model store.
class SpecFeedbackCollector {
public:
  /// Records one run's prediction accuracy (skip runs without predictions).
  void recordAccuracy(double Accuracy) { Accuracies.push_back(Accuracy); }

  /// Analyzes \p Model (its schema, used features and value ranges come
  /// from the recorded runs inside it).
  SpecFeedback analyze(const ModelBuilder &Model) const;

  size_t numRecorded() const { return Accuracies.size(); }

private:
  std::vector<double> Accuracies;
};

} // namespace evolve
} // namespace evm

#endif // EVM_EVOLVE_SPECFEEDBACK_H
