//===- evolve/ModelBuilder.h - Incremental input-behavior models ----------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The model builder (paper Sec. IV): one classification tree per method,
/// mapping an input feature vector to the method's good compilation level.
/// Learning follows the paper's two-stage split — lightweight online data
/// collection (addRun) plus offline model construction (rebuild) that does
/// not extend application runtime.  Prediction work is metered so the
/// evolvable VM can charge it to the virtual clock.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_EVOLVE_MODELBUILDER_H
#define EVM_EVOLVE_MODELBUILDER_H

#include "evolve/Strategy.h"
#include "ml/ClassificationTree.h"
#include "ml/Dataset.h"
#include "support/Rng.h"
#include "xicl/FeatureVector.h"

#include <optional>
#include <set>
#include <string>
#include <vector>

namespace evm {
namespace evolve {

/// Work accounting for one prediction.
struct PredictionStats {
  uint64_t TreeNodesVisited = 0;
  uint64_t Trees = 0;

  /// Cycles charged per prediction (cheap: tens of tree walks).
  uint64_t toCycles() const { return 80 * Trees + 40 * TreeNodesVisited; }
};

/// Work accounting for one offline model rebuild.  The paper keeps this
/// stage off the application clock, so its modeled cost lands under the
/// phase profiler's "offline" root rather than the engine's.
struct RebuildStats {
  uint64_t TreesBuilt = 0;
  uint64_t NodesBuilt = 0;
  uint64_t ExamplesScanned = 0;

  uint64_t toCycles() const {
    return 500 * TreesBuilt + 120 * NodesBuilt + 20 * ExamplesScanned;
  }
};

/// How one method's prediction was made — the decision ledger's per-method
/// explanation.  \c Path is empty for constant predictors; for tree models
/// it is the root-to-leaf walk actually taken.  \c Label is the raw model
/// output before clamping into [0, NumOptLevels).
struct MethodPredictionDetail {
  bool Constant = true;
  int Label = vm::levelIndex(vm::OptLevel::Baseline);
  ml::TreePath Path;
};

/// One method model in serialized form — the currency between ModelBuilder
/// and the persistent knowledge store.  \c Tree holds
/// ml::ClassificationTree::serialize() text when \c Constant is false.
struct ExportedMethodModel {
  bool Constant = true;
  int ConstantLabel = vm::levelIndex(vm::OptLevel::Baseline);
  std::string Tree;
};

/// Per-application model store: feature vectors + per-method ideal levels
/// accumulated across runs, and the trees trained from them.
class ModelBuilder {
public:
  explicit ModelBuilder(size_t NumMethods,
                        ml::TreeParams Params = ml::TreeParams())
      : NumMethods(NumMethods), Params(Params) {}

  /// Online stage: records (input features, posterior ideal strategy).
  void addRun(const xicl::FeatureVector &Features,
              const MethodLevelStrategy &Ideal);

  /// Offline stage: (re)builds one tree per method from all recorded runs.
  /// Methods whose label never varied use a constant predictor instead of
  /// a tree.
  void rebuild();

  /// Predicts a strategy for \p Features; nullopt before the first rebuild.
  /// \p Details, when given, is filled with one entry per method describing
  /// how the prediction was made (for the decision ledger); capturing it
  /// never changes the strategy or the metered work in \p Stats.
  std::optional<MethodLevelStrategy>
  predict(const xicl::FeatureVector &Features,
          PredictionStats *Stats = nullptr,
          std::vector<MethodPredictionDetail> *Details = nullptr) const;

  size_t numRuns() const { return Labels.size(); }

  /// Work done by the most recent rebuild() (zeroed stats before the
  /// first).
  const RebuildStats &lastRebuildStats() const { return LastRebuild; }

  /// Names of input features used by at least one method's tree — the
  /// paper's automatically selected features (Table I "Used").
  std::set<std::string> usedFeatureNames() const;

  /// K-fold cross-validated accuracy of the per-method models over the
  /// recorded runs, averaged across methods (constant-label methods score
  /// 1).  An alternative self-evaluation to the decayed online accuracy;
  /// returns 0 with fewer than 2 recorded runs.
  double crossValidatedAccuracy(int Folds, Rng &R) const;

  /// Number of features that appeared in any recorded feature vector.
  size_t numRawFeatures() const { return Encoded.numFeatures(); }

  /// The encoded feature table of every recorded run (labels unused);
  /// consumers: spec feedback, cross-validation confidence.
  const ml::Dataset &encodedRuns() const { return Encoded; }

  /// Per-method label columns (levelIndex encoding), aligned with
  /// encodedRuns() rows.
  const std::vector<std::vector<int>> &labelRows() const { return Labels; }

  /// The raw (un-encoded) feature vector of every recorded run, aligned
  /// with labelRows(); what the knowledge store persists, because replaying
  /// them through addRun reconstructs the encoded table byte-identically.
  const std::vector<xicl::FeatureVector> &rawRuns() const { return RawRuns; }

  size_t numMethods() const { return NumMethods; }

  /// Whether rebuild() (or a successful importModels) has produced models.
  bool built() const { return Built; }

  /// Serializes the trained per-method models; empty before the first
  /// rebuild.
  std::vector<ExportedMethodModel> exportModels() const;

  /// Installs previously exported models (warm start), replacing any
  /// current ones.  False — with the builder left untouched — when the
  /// model count does not match NumMethods or any tree text fails to
  /// parse; callers then retrain from the replayed runs instead.
  bool importModels(const std::vector<ExportedMethodModel> &Exported);

private:
  size_t NumMethods;
  ml::TreeParams Params;
  /// Shared feature rows (labels in the dataset itself are unused).
  ml::Dataset Encoded;
  std::vector<xicl::FeatureVector> RawRuns;
  /// Labels[run][method] = levelIndex of the ideal level.
  std::vector<std::vector<int>> Labels;

  struct MethodModel {
    bool Constant = true;
    int ConstantLabel = vm::levelIndex(vm::OptLevel::Baseline);
    ml::ClassificationTree Tree;
  };
  std::vector<MethodModel> Models;
  RebuildStats LastRebuild;
  bool Built = false;
};

} // namespace evolve
} // namespace evm

#endif // EVM_EVOLVE_MODELBUILDER_H
