//===- evolve/EvolvableVM.h - The evolvable virtual machine ---------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution, wired together (Fig. 1 and Fig. 7):
/// feature extractor (XICL translator) + strategy predictor (per-method
/// classification trees behind a confidence guard) + model builder
/// (posterior ideal strategies folded back in after every run).  One
/// EvolvableVM instance persists across production runs of one application
/// and evolves: early runs execute under the default reactive optimizer
/// while the model matures; once confidence clears the threshold, runs are
/// optimized proactively from the input's predicted strategy.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_EVOLVE_EVOLVABLEVM_H
#define EVM_EVOLVE_EVOLVABLEVM_H

#include "evolve/ModelBuilder.h"
#include "evolve/SpecFeedback.h"
#include "evolve/Strategy.h"
#include "ml/Confidence.h"
#include "store/KnowledgeStore.h"
#include "support/DecisionLedger.h"
#include "support/Error.h"
#include "vm/Engine.h"
#include "xicl/Translator.h"

#include <memory>
#include <string>

namespace evm {
namespace evolve {

/// How the discriminative guard self-evaluates the models.
enum class GuardMode {
  /// The paper's Fig. 7 scheme: decayed average of online prediction
  /// accuracies.
  DecayedAccuracy,
  /// Offline k-fold cross-validation over the recorded runs (the paper's
  /// Sec. I framing of self-evaluation); recomputed after each rebuild.
  CrossValidation,
  /// No guard: predict from the very first model (ablation only).
  Always,
};

/// Stable text name of a guard mode — the decision ledger's "guard" field.
inline const char *guardModeName(GuardMode G) {
  switch (G) {
  case GuardMode::DecayedAccuracy:
    return "decayed";
  case GuardMode::CrossValidation:
    return "crossval";
  case GuardMode::Always:
    return "always";
  }
  return "decayed";
}

/// Tunables of the evolvable VM (paper defaults: gamma = THc = 0.7).
struct EvolveConfig {
  vm::TimingModel Timing;
  double Gamma = 0.7;
  double ConfidenceThreshold = 0.7;
  GuardMode Guard = GuardMode::DecayedAccuracy;
  int CvFolds = 5;
  ml::TreeParams TreeParams;
  uint64_t MaxCyclesPerRun = UINT64_MAX;
  /// Upper bound on charged extraction cycles; beyond it the VM throttles
  /// the extraction and falls back to default optimization (Sec. V.B.2's
  /// suggested guard against expensive programmer-defined extractors).
  uint64_t ExtractionCycleBound = UINT64_MAX;
  /// Keep the reactive adaptive system running under predicted strategies
  /// (as the Jikes implementation does).  Disable only for ablation.
  bool ReactiveSafetyNet = true;
};

/// Everything one production run under the evolvable VM produces.
struct EvolveRunRecord {
  bool UsedPrediction = false;  ///< guard was open, so ô drove the run
  double ConfidenceBefore = 0;
  double ConfidenceAfter = 0;
  double CvConfidence = 0;      ///< only when Guard == CrossValidation
  double Accuracy = 0;          ///< acc(ô, o) — 0 when no ô was available
  bool HadPrediction = false;   ///< a model existed to produce ô at all
  MethodLevelStrategy Predicted;
  MethodLevelStrategy Ideal;
  uint64_t ExtractionCycles = 0;
  uint64_t PredictionCycles = 0;
  vm::RunResult Result;
  xicl::FeatureVector Features;
};

/// What warmStart managed to reinstate (feeds store.* metrics and logs).
struct WarmStartResult {
  bool Applied = false;      ///< the document was non-empty and consumed
  size_t RunsRestored = 0;   ///< training runs replayed into the model
  size_t RunsSkipped = 0;    ///< rows whose label count mismatched the module
  size_t ModelsImported = 0; ///< trees installed straight from the store
  bool Retrained = false;    ///< tree import failed; models rebuilt from runs
};

/// Cross-run store I/O accounting, surfaced as store.* metrics on every
/// run's snapshot.
struct StoreIoStats {
  uint64_t Loads = 0;
  uint64_t Saves = 0;
  uint64_t SaveFailures = 0;
  uint64_t SectionsLoaded = 0;
  uint64_t SectionsDropped = 0;
  uint64_t RecordsDropped = 0;
  /// Loads whose file carried any recovered damage (the fuzz test's
  /// "store.corrupt" signal).
  uint64_t Corrupt = 0;
};

/// The evolvable VM for one application.
class EvolvableVM {
public:
  /// \p Registry and \p Files must outlive this object.  When \p SpecSource
  /// fails to parse, the constructor keeps the VM functional but the spec
  /// error is reported (and every run falls back to default optimization,
  /// matching the paper's no-XICL behaviour).
  EvolvableVM(const bc::Module &M, const std::string &SpecSource,
              const xicl::XFMethodRegistry *Registry,
              const xicl::FileStore *Files, EvolveConfig Config);

  /// One production run (the paper's Fig. 7 loop): extract features,
  /// predict discriminatively, execute, evaluate against the posterior
  /// ideal, update confidence and models.
  ErrorOr<EvolveRunRecord> runOnce(const std::string &CommandLine,
                                   const std::vector<bc::Value> &VmArgs);

  /// Attaches an event recorder (shared with the engine): each run gains
  /// evolve.predict / evolve.outcome / model.rebuild events, and the
  /// RunResult metrics snapshot is augmented with evolve.* entries.
  void setTracer(TraceRecorder *T);

  /// Attaches a decision ledger: every subsequent runOnce appends one
  /// DecisionRecord (tagged \p AppName) describing the prediction decision
  /// and its posterior outcome.  Pure observation off the virtual clock —
  /// like the tracer, attaching a ledger never changes run cycles, metrics,
  /// or the learned state.  Null detaches.
  void setLedger(DecisionLedger *L, std::string AppName) {
    Ledger = L;
    LedgerApp = std::move(AppName);
  }

  double confidence() const { return Confidence.value(); }
  /// The cross-validated model accuracy after the latest rebuild (0 until
  /// the CrossValidation guard has something to evaluate).
  double cvConfidence() const { return CvConfidence; }
  const ModelBuilder &model() const { return Model; }
  size_t numRuns() const { return RunsSeen; }
  /// Empty when the XICL spec parsed cleanly.
  const std::string &specError() const { return SpecError; }

  /// Specification-refinement advice (the paper's Sec. VI extension),
  /// derived from the accumulated models and per-run accuracies.
  SpecFeedback specFeedback() const;

  /// Applies a loaded knowledge document to this VM before its first run:
  /// replays the persisted training runs into the model builder
  /// (reconstructing the encoded dataset byte-identically), installs the
  /// serialized trees — retraining from the replayed runs when any tree
  /// text is damaged — and restores the confidence state including
  /// RunsSeen, which keeps per-run sample phases continuous across
  /// launches.  An empty document is a no-op, so warm-starting from an
  /// empty store is cycle-identical to a cold start.  When \p Stats is
  /// given (the read stats of the load), corruption counters fold into the
  /// store.* metrics.  Records a store.load trace event.
  WarmStartResult warmStart(const store::KnowledgeStore &KS,
                            const store::StoreReadStats *Stats = nullptr);

  /// Snapshot of the VM's accumulated knowledge as a store document whose
  /// header and per-model generations are \p Generation.  Callers merge it
  /// against the on-disk store (store::mergeStores) and pick the
  /// generation — typically disk generation + 1.  Records a store.save
  /// trace event.
  store::KnowledgeStore checkpoint(uint64_t Generation) const;

  /// Accounts one saveStoreFile outcome in the store.* metrics.
  void noteStoreSave(bool Ok) {
    ++StoreStats.Saves;
    if (!Ok)
      ++StoreStats.SaveFailures;
  }

  const StoreIoStats &storeStats() const { return StoreStats; }

private:
  /// Is the discriminative gate open under the configured guard mode?
  bool guardOpen() const;

  const bc::Module &M;
  EvolveConfig Config;
  /// One engine for every production run: per-run state resets inside
  /// run(), while the background compile-worker pool (when
  /// Config.Timing.NumCompileWorkers > 0) persists instead of being
  /// respawned each run.  The policy is swapped per run via setPolicy.
  vm::ExecutionEngine Engine;
  std::vector<size_t> Sizes;
  std::unique_ptr<xicl::XICLTranslator> Translator; ///< null on spec error
  std::string SpecError;
  ModelBuilder Model;
  ml::ConfidenceTracker Confidence;
  SpecFeedbackCollector Feedback;
  double CvConfidence = 0;
  size_t RunsSeen = 0;
  StoreIoStats StoreStats;
  TraceRecorder *Tracer = nullptr;
  DecisionLedger *Ledger = nullptr;
  std::string LedgerApp;
};

} // namespace evolve
} // namespace evm

#endif // EVM_EVOLVE_EVOLVABLEVM_H
