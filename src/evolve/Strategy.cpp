//===- evolve/Strategy.cpp ------------------------------------------------==//

#include "evolve/Strategy.h"

#include "support/Format.h"
#include "vm/CostBenefit.h"

#include <cassert>

using namespace evm;
using namespace evm::evolve;
using vm::OptLevel;

std::string MethodLevelStrategy::str() const {
  std::string Out;
  for (size_t I = 0; I != Levels.size(); ++I)
    Out += formatString("%sm%zu:%s", I ? " " : "", I,
                        vm::levelName(Levels[I]));
  return Out;
}

std::vector<size_t> evolve::methodSizes(const bc::Module &M) {
  std::vector<size_t> Sizes(M.numFunctions());
  for (bc::MethodId Id = 0; Id != M.numFunctions(); ++Id)
    Sizes[Id] = M.function(Id).Code.size();
  return Sizes;
}

MethodLevelStrategy evolve::idealStrategyFromProfile(
    const vm::TimingModel &TM, const std::vector<vm::MethodStats> &Profile,
    const std::vector<size_t> &MethodSizes) {
  assert(Profile.size() == MethodSizes.size() && "profile/size mismatch");
  MethodLevelStrategy Ideal;
  Ideal.Levels.resize(Profile.size(), OptLevel::Baseline);
  for (size_t M = 0; M != Profile.size(); ++M)
    Ideal.Levels[M] = vm::idealLevelForMethod(
        TM, Profile[M].baselineEquivalentCycles(TM), MethodSizes[M]);
  return Ideal;
}

double evolve::predictionAccuracy(const MethodLevelStrategy &Predicted,
                                  const MethodLevelStrategy &Ideal,
                                  const std::vector<vm::MethodStats> &Profile) {
  uint64_t Total = 0, Correct = 0;
  for (size_t M = 0; M != Profile.size(); ++M) {
    uint64_t T = Profile[M].Samples;
    Total += T;
    if (Predicted.levelFor(static_cast<bc::MethodId>(M)) ==
        Ideal.levelFor(static_cast<bc::MethodId>(M)))
      Correct += T;
  }
  if (Total == 0)
    return 1.0;
  return static_cast<double>(Correct) / static_cast<double>(Total);
}
