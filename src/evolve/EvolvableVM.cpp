//===- evolve/EvolvableVM.cpp ---------------------------------------------==//

#include "evolve/EvolvableVM.h"

#include "evolve/EvolvePolicy.h"
#include "support/Profiler.h"
#include "support/Rng.h"
#include "vm/AOS.h"
#include "xicl/Spec.h"

#include <algorithm>

using namespace evm;
using namespace evm::evolve;

EvolvableVM::EvolvableVM(const bc::Module &M, const std::string &SpecSource,
                         const xicl::XFMethodRegistry *Registry,
                         const xicl::FileStore *Files, EvolveConfig Config)
    : M(M), Config(Config), Engine(M, Config.Timing, nullptr),
      Sizes(methodSizes(M)), Model(M.numFunctions(), Config.TreeParams),
      Confidence(Config.Gamma, Config.ConfidenceThreshold) {
  auto Spec = xicl::parseSpec(SpecSource);
  if (!Spec) {
    SpecError = Spec.getError().message();
    return;
  }
  Translator = std::make_unique<xicl::XICLTranslator>(Spec.takeValue(),
                                                      Registry, Files);
}

void EvolvableVM::setTracer(TraceRecorder *T) {
  Tracer = T;
  Engine.setTracer(T);
}

namespace {

/// Highest level a strategy assigns to any method (the trace event's
/// one-slot summary of a per-method strategy).
vm::OptLevel maxLevel(const MethodLevelStrategy &S) {
  vm::OptLevel Max = vm::OptLevel::Baseline;
  for (vm::OptLevel L : S.Levels)
    if (vm::levelIndex(L) > vm::levelIndex(Max))
      Max = L;
  return Max;
}

} // namespace

ErrorOr<EvolveRunRecord> EvolvableVM::runOnce(
    const std::string &CommandLine, const std::vector<bc::Value> &VmArgs) {
  EvolveRunRecord Record;
  Record.ConfidenceBefore = Confidence.value();

  // 1. Feature extraction (charged to the clock).  Without a usable XICL
  //    spec the VM behaves exactly like the default one.
  bool HaveFeatures = false;
  if (Translator) {
    auto FV = Translator->buildFVector(CommandLine);
    if (!FV)
      return makeError("feature extraction failed: %s",
                       FV.getError().message().c_str());
    Record.Features = FV.takeValue();
    Record.ExtractionCycles = Translator->lastStats().toCycles();
    HaveFeatures = true;
    if (Record.ExtractionCycles > Config.ExtractionCycleBound) {
      // Throttle: keep the cost actually paid bounded and fall back to the
      // default optimizer for this run.
      Record.ExtractionCycles = Config.ExtractionCycleBound;
      HaveFeatures = false;
    }
  }

  // 2. Discriminative prediction: only drive the run from the model when
  //    the guard's self-evaluation clears the threshold (paper Fig. 7).
  // Ledger capture rides along for free: per-method details are only
  // requested when a ledger is attached and enabled, and capturing them
  // never changes the strategy or the charged prediction cycles.
  std::vector<MethodPredictionDetail> Details;
  std::vector<MethodPredictionDetail> *DetailsPtr =
      Ledger && Ledger->enabled() ? &Details : nullptr;
  std::optional<MethodLevelStrategy> Predicted;
  const bool GuardWasOpen = guardOpen();
  bool Predict = HaveFeatures && GuardWasOpen;
  if (Predict) {
    PredictionStats PStats;
    Predicted = Model.predict(Record.Features, &PStats, DetailsPtr);
    if (Predicted)
      Record.PredictionCycles = PStats.toCycles();
    else
      Predict = false; // no model yet
  }

  // Recorded before the engine starts: the exporter slots this pre-run
  // event into the run segment it predicts for.
  if (Tracer && Tracer->enabled()) {
    TraceEvent E;
    E.Kind = TraceEventKind::EvolvePredict;
    E.Cycle = 0;
    E.A = RunsSeen + 1; // matches the engine's run ordinal
    E.B = HaveFeatures ? Record.Features.hash() : 0;
    E.C = Predict && Predicted ? 1 : 0;
    E.X = Record.ConfidenceBefore;
    E.Level = Predicted ? static_cast<int8_t>(maxLevel(*Predicted))
                        : kTraceNoLevel;
    Tracer->record(E);
  }

  // 3. Execute with the predicted strategy, or fall back to the default
  //    reactive adaptive system.
  uint64_t PreRunOverhead = Record.ExtractionCycles + Record.PredictionCycles;
  // Per-run sampling phase: real profilers never land on the same cycle
  // twice; varying the phase reproduces that noise deterministically.
  uint64_t SamplePhase = Rng(RunsSeen ^ 0x5a17b1e5).next();
  vm::RunResult Result;
  if (Predict && Predicted) {
    Record.UsedPrediction = true;
    // The predicted levels are installed proactively; the default adaptive
    // system keeps running underneath (as in the Jikes implementation), so
    // a mispredicted-too-low method still gets rescued reactively.
    EvolvePolicy Proactive(*Predicted);
    vm::AdaptivePolicy Reactive(Config.Timing, Tracer);
    vm::CombinedPolicy Combined(&Proactive, &Reactive);
    Engine.setPolicy(Config.ReactiveSafetyNet
                         ? static_cast<vm::CompilationPolicy *>(&Combined)
                         : static_cast<vm::CompilationPolicy *>(&Proactive));
    auto R = Engine.run(VmArgs, Config.MaxCyclesPerRun, PreRunOverhead,
                        SamplePhase);
    Engine.setPolicy(nullptr); // the per-run policies go out of scope
    if (!R)
      return R.getError();
    Result = R.takeValue();
  } else {
    vm::AdaptivePolicy Policy(Config.Timing, Tracer);
    Engine.setPolicy(&Policy);
    auto R = Engine.run(VmArgs, Config.MaxCyclesPerRun, PreRunOverhead,
                        SamplePhase);
    Engine.setPolicy(nullptr);
    if (!R)
      return R.getError();
    Result = R.takeValue();
    // The paper's else-branch: predict after the fact (not charged — the
    // run is over) purely to measure accuracy and update confidence.
    if (HaveFeatures)
      Predicted = Model.predict(Record.Features, nullptr, DetailsPtr);
  }

  // 4. Posterior evaluation and model update.
  Record.Ideal =
      idealStrategyFromProfile(Config.Timing, Result.PerMethod, Sizes);
  if (Predicted) {
    Record.HadPrediction = true;
    Record.Predicted = *Predicted;
    Record.Accuracy =
        predictionAccuracy(*Predicted, Record.Ideal, Result.PerMethod);
    Confidence.update(Record.Accuracy);
    Feedback.recordAccuracy(Record.Accuracy);
  }
  if (HaveFeatures) {
    Model.addRun(Record.Features, Record.Ideal);
    Model.rebuild(); // offline stage; not charged to the application clock
    if (Config.Guard == GuardMode::CrossValidation) {
      Rng CvRng(RunsSeen ^ 0xCF01DED5);
      CvConfidence = Model.crossValidatedAccuracy(Config.CvFolds, CvRng);
    }
  }

  Record.CvConfidence = CvConfidence;
  Record.ConfidenceAfter = Confidence.value();

  if (Tracer && Tracer->enabled()) {
    TraceEvent E;
    E.Cycle = Result.Cycles;
    if (Record.HadPrediction) {
      // "Agreed" = the posterior ideal (what the reactive system converges
      // to, given the full profile) matched the prediction well enough to
      // clear the confidence threshold.
      size_t Correct = 0;
      for (size_t I = 0; I != Record.Ideal.Levels.size(); ++I)
        if (Record.Predicted.levelFor(static_cast<bc::MethodId>(I)) ==
            Record.Ideal.Levels[I])
          ++Correct;
      E.Kind = TraceEventKind::EvolveOutcome;
      E.A = Record.Accuracy >= Config.ConfidenceThreshold ? 1 : 0;
      E.B = Correct;
      E.C = Record.Ideal.Levels.size();
      E.X = Record.Accuracy;
      E.Level = static_cast<int8_t>(maxLevel(Record.Ideal));
      Tracer->record(E);
    }
    if (HaveFeatures) {
      E = TraceEvent();
      E.Kind = TraceEventKind::ModelRebuild;
      E.Cycle = Result.Cycles;
      E.A = RunsSeen + 1;
      E.X = Config.Guard == GuardMode::CrossValidation ? CvConfidence
                                                       : Confidence.value();
      Tracer->record(E);
    }
  }

  // Augment the engine's metrics snapshot with the evolvable-VM layer's
  // accounting, so one snapshot describes the whole run.
  Result.Metrics.setCounter("evolve.cycles.extraction",
                            Record.ExtractionCycles);
  Result.Metrics.setCounter("evolve.cycles.prediction",
                            Record.PredictionCycles);
  Result.Metrics.setCounter("evolve.used_prediction",
                            Record.UsedPrediction ? 1 : 0);
  Result.Metrics.setCounter("evolve.had_prediction",
                            Record.HadPrediction ? 1 : 0);
  Result.Metrics.setGauge("evolve.confidence", Record.ConfidenceAfter);
  Result.Metrics.setGauge("evolve.accuracy", Record.Accuracy);

  // Cross-run store accounting, only once a store is actually in play —
  // storeless runs keep their metric set unchanged.
  if (StoreStats.Loads || StoreStats.Saves) {
    Result.Metrics.setCounter("store.loads", StoreStats.Loads);
    Result.Metrics.setCounter("store.saves", StoreStats.Saves);
    Result.Metrics.setCounter("store.save_failures", StoreStats.SaveFailures);
    Result.Metrics.setCounter("store.sections.loaded",
                              StoreStats.SectionsLoaded);
    Result.Metrics.setCounter("store.sections.dropped",
                              StoreStats.SectionsDropped);
    Result.Metrics.setCounter("store.records.dropped",
                              StoreStats.RecordsDropped);
    Result.Metrics.setCounter("store.corrupt", StoreStats.Corrupt);
  }

  // Refine the engine's pre-run overhead lump into its xicl/ml components
  // (the engine only sees the sum), then re-snapshot so Result.Phases
  // carries the split plus the offline ml/rebuild work done above.  Same
  // idiom as the metrics augmentation: the engine's snapshot is taken
  // first, the evolvable-VM layer extends it.
  if (PhaseProfiler *P = PhaseProfiler::current()) {
    if (Record.ExtractionCycles)
      P->attributeChild({"run", "overhead"}, "xicl/characterize",
                        Record.ExtractionCycles);
    if (Record.PredictionCycles)
      P->attributeChild({"run", "overhead"}, "ml/predict",
                        Record.PredictionCycles);
    Result.Phases = P->snapshot();
  }

  // Decision-ledger emission: one record per run, observation only — built
  // after every clock charge and model update above, so attaching a ledger
  // is cycle- and state-identical to running without one.
  if (Ledger && Ledger->enabled()) {
    DecisionRecord D;
    D.App = LedgerApp;
    D.Run = RunsSeen + 1; // matches the trace events' run ordinal
    if (Record.Features.size()) {
      D.Features = Record.Features.str();
      D.FvHash = Record.Features.hash();
    }
    D.Guard = guardModeName(Config.Guard);
    D.GuardOpen = GuardWasOpen;
    D.Used = Record.UsedPrediction;
    D.Had = Record.HadPrediction;
    D.ConfBefore = Record.ConfidenceBefore;
    D.ConfAfter = Record.ConfidenceAfter;
    D.CvConf = Record.CvConfidence;
    D.Threshold = Config.ConfidenceThreshold;
    D.Accuracy = Record.Accuracy;
    D.Cycles = Result.Cycles;
    if (Record.HadPrediction) {
      D.Methods.reserve(Details.size());
      for (size_t I = 0; I != Details.size(); ++I) {
        MethodDecision MD;
        MD.Method = static_cast<uint32_t>(I);
        // The clamped level that actually drove (or would have driven) the
        // run — mirrors the evolve.outcome agreement accounting.
        MD.Pred = vm::levelIndex(
            Record.Predicted.levelFor(static_cast<bc::MethodId>(I)));
        MD.Ideal = I < Record.Ideal.Levels.size()
                       ? vm::levelIndex(Record.Ideal.Levels[I])
                       : vm::levelIndex(vm::OptLevel::Baseline);
        MD.Agree = MD.Pred == MD.Ideal;
        MD.Constant = Details[I].Constant;
        if (!Details[I].Constant)
          MD.Path = Details[I].Path.str();
        D.Methods.push_back(std::move(MD));
      }
      // Reactive rescues: compiles the safety net issued above the level
      // the prediction installed for that method.
      if (Record.UsedPrediction)
        for (const vm::CompileEvent &Ev : Result.Compiles) {
          size_t M = static_cast<size_t>(Ev.Method);
          if (M < D.Methods.size() &&
              vm::levelIndex(Ev.Level) > D.Methods[M].Pred)
            ++D.Methods[M].Rescues;
        }
    }
    Ledger->record(std::move(D));
  }

  Record.Result = std::move(Result);
  ++RunsSeen;
  return Record;
}

WarmStartResult EvolvableVM::warmStart(const store::KnowledgeStore &KS,
                                       const store::StoreReadStats *Stats) {
  ++StoreStats.Loads;
  if (Stats) {
    StoreStats.SectionsLoaded += Stats->SectionsLoaded;
    StoreStats.SectionsDropped += Stats->SectionsDropped;
    StoreStats.RecordsDropped += Stats->RecordsDropped;
    if (!Stats->clean())
      ++StoreStats.Corrupt;
  }

  WarmStartResult Result;
  if (!KS.empty()) {
    Result.Applied = true;

    // Replay the persisted training runs.  Rows whose label count does not
    // match this module (damage, or a store written for another program)
    // are skipped — everything else must stay usable.
    for (const store::StoredRun &Run : KS.Runs) {
      if (Run.Labels.size() != Model.numMethods()) {
        ++Result.RunsSkipped;
        continue;
      }
      MethodLevelStrategy Ideal;
      Ideal.Levels.reserve(Run.Labels.size());
      for (int Label : Run.Labels)
        Ideal.Levels.push_back(vm::levelFromIndex(
            std::max(0, std::min(vm::NumOptLevels - 1, Label))));
      Model.addRun(Run.Features, Ideal);
      ++Result.RunsRestored;
    }

    // Install the serialized trees; damaged tree text falls back to
    // retraining, which reproduces them deterministically from the runs.
    bool Imported = false;
    if (!KS.Models.empty()) {
      std::vector<ExportedMethodModel> Exported;
      Exported.reserve(KS.Models.size());
      for (const store::StoredMethodModel &M : KS.Models) {
        ExportedMethodModel E;
        E.Constant = M.Constant;
        E.ConstantLabel = M.ConstantLabel;
        E.Tree = M.Tree;
        Exported.push_back(std::move(E));
      }
      Imported = Model.importModels(Exported);
      if (Imported)
        Result.ModelsImported = KS.Models.size();
    }
    if (!Imported && Result.RunsRestored) {
      Model.rebuild();
      Result.Retrained = true;
    }

    if (KS.HasConfidence) {
      Confidence.restore(KS.Confidence);
      double Cv = KS.CvConfidence;
      if (!(Cv >= 0)) // store bytes: clamp, also catches NaN
        Cv = 0;
      CvConfidence = Cv > 1 ? 1 : Cv;
      RunsSeen = static_cast<size_t>(KS.RunsSeen);
    }
  }

  if (Tracer && Tracer->enabled()) {
    TraceEvent E;
    E.Kind = TraceEventKind::StoreLoad;
    E.Cycle = 0; // between-run event; slots before the next run segment
    E.A = Result.RunsRestored;
    E.B = Result.ModelsImported;
    E.C = Stats ? Stats->SectionsDropped + Stats->RecordsDropped : 0;
    E.X = Confidence.value();
    Tracer->record(E);
  }
  return Result;
}

store::KnowledgeStore EvolvableVM::checkpoint(uint64_t Generation) const {
  store::KnowledgeStore KS;
  KS.Header.Generation = Generation;

  KS.HasConfidence = true;
  KS.Confidence = Confidence.value();
  KS.CvConfidence = CvConfidence;
  KS.RunsSeen = RunsSeen;

  const std::vector<xicl::FeatureVector> &Raw = Model.rawRuns();
  const std::vector<std::vector<int>> &Labels = Model.labelRows();
  KS.Runs.reserve(Raw.size());
  for (size_t I = 0; I != Raw.size() && I != Labels.size(); ++I) {
    store::StoredRun Run;
    Run.Features = Raw[I];
    Run.Labels = Labels[I];
    KS.Runs.push_back(std::move(Run));
  }

  for (const ExportedMethodModel &E : Model.exportModels()) {
    store::StoredMethodModel M;
    M.Constant = E.Constant;
    M.ConstantLabel = E.ConstantLabel;
    M.Tree = E.Tree;
    M.Gen = Generation;
    KS.Models.push_back(std::move(M));
  }

  if (Tracer && Tracer->enabled()) {
    TraceEvent E;
    E.Kind = TraceEventKind::StoreSave;
    E.Cycle = 0;
    E.A = KS.Runs.size();
    E.B = KS.Models.size();
    E.C = Generation;
    Tracer->record(E);
  }
  return KS;
}

bool EvolvableVM::guardOpen() const {
  switch (Config.Guard) {
  case GuardMode::DecayedAccuracy:
    return Confidence.confident();
  case GuardMode::CrossValidation:
    return CvConfidence > Config.ConfidenceThreshold;
  case GuardMode::Always:
    return true;
  }
  return false;
}

SpecFeedback EvolvableVM::specFeedback() const {
  return Feedback.analyze(Model);
}
