//===- evolve/ModelBuilder.cpp --------------------------------------------==//

#include "evolve/ModelBuilder.h"

#include "ml/CrossValidation.h"
#include "support/Profiler.h"

#include <algorithm>
#include <cassert>

using namespace evm;
using namespace evm::evolve;
using vm::OptLevel;

void ModelBuilder::addRun(const xicl::FeatureVector &Features,
                          const MethodLevelStrategy &Ideal) {
  assert(Ideal.Levels.size() == NumMethods && "strategy size mismatch");
  RawRuns.push_back(Features);
  Encoded.addExample(Features, 0);
  std::vector<int> Row(NumMethods);
  for (size_t M = 0; M != NumMethods; ++M)
    Row[M] = vm::levelIndex(Ideal.Levels[M]);
  Labels.push_back(std::move(Row));
}

void ModelBuilder::rebuild() {
  if (Labels.empty())
    return;
  // Offline stage: attributed under the profiler's "offline" root, never
  // the engine's clock (the paper excludes model construction from
  // application runtime).
  ScopedPhase OfflineScope("offline");
  ScopedPhase RebuildScope("ml/rebuild");
  LastRebuild = RebuildStats();
  Models.clear();
  Models.resize(NumMethods);

  for (size_t M = 0; M != NumMethods; ++M) {
    LastRebuild.ExamplesScanned += Labels.size();
    int First = Labels.front()[M];
    bool AllSame = true;
    for (const auto &Row : Labels)
      if (Row[M] != First) {
        AllSame = false;
        break;
      }
    if (AllSame) {
      Models[M].Constant = true;
      Models[M].ConstantLabel = First;
      continue;
    }
    // Relabel a copy of the shared feature table for this method and train.
    ml::Dataset D = Encoded;
    for (size_t R = 0; R != Labels.size(); ++R)
      D.setLabel(R, Labels[R][M]);
    Models[M].Constant = false;
    Models[M].Tree = ml::ClassificationTree::build(D, Params);
    ++LastRebuild.TreesBuilt;
    LastRebuild.NodesBuilt += Models[M].Tree.numNodes();
  }
  Built = true;
  if (PhaseProfiler *P = PhaseProfiler::current()) {
    P->charge(LastRebuild.toCycles());
    // Pull the tree-training share down onto the per-tree frames the
    // builds themselves opened.
    P->splitToChild("tree/build",
                    500 * LastRebuild.TreesBuilt + 120 * LastRebuild.NodesBuilt,
                    0);
  }
}

std::optional<MethodLevelStrategy>
ModelBuilder::predict(const xicl::FeatureVector &Features,
                      PredictionStats *Stats,
                      std::vector<MethodPredictionDetail> *Details) const {
  if (!Built)
    return std::nullopt;
  if (Details)
    Details->clear();
  ml::Example E = Encoded.encode(Features);
  MethodLevelStrategy Out;
  Out.Levels.resize(NumMethods, OptLevel::Baseline);
  for (size_t M = 0; M != NumMethods; ++M) {
    int Label;
    MethodPredictionDetail Detail;
    if (Models[M].Constant) {
      Label = Models[M].ConstantLabel;
      Detail.Constant = true;
    } else {
      Label = Models[M].Tree.predict(E, Details ? &Detail.Path : nullptr);
      Detail.Constant = false;
      if (Stats) {
        ++Stats->Trees;
        // depth() bounds the root-to-leaf walk length.
        Stats->TreeNodesVisited +=
            static_cast<uint64_t>(Models[M].Tree.depth());
      }
    }
    if (Details) {
      Detail.Label = Label;
      Details->push_back(std::move(Detail));
    }
    Label = std::max(0, std::min(vm::NumOptLevels - 1, Label));
    Out.Levels[M] = vm::levelFromIndex(Label);
  }
  return Out;
}

double ModelBuilder::crossValidatedAccuracy(int Folds, Rng &R) const {
  if (Labels.size() < 2)
    return 0;
  // Offline self-evaluation: modeled as one rebuild per fold over the
  // non-constant methods.
  ScopedPhase OfflineScope("offline");
  ScopedPhase CvScope("ml/crossval");
  RebuildStats Modeled;
  double Sum = 0;
  for (size_t M = 0; M != NumMethods; ++M) {
    int First = Labels.front()[M];
    bool AllSame = true;
    for (const auto &Row : Labels)
      if (Row[M] != First) {
        AllSame = false;
        break;
      }
    if (AllSame) {
      Sum += 1.0; // a constant predictor generalizes trivially
      continue;
    }
    ml::Dataset D = Encoded;
    for (size_t Row = 0; Row != Labels.size(); ++Row)
      D.setLabel(Row, Labels[Row][M]);
    Sum += ml::kFoldAccuracy(D, Folds, R, Params);
    Modeled.TreesBuilt += static_cast<uint64_t>(Folds);
    Modeled.ExamplesScanned +=
        static_cast<uint64_t>(Folds) * Labels.size();
  }
  if (PhaseProfiler *P = PhaseProfiler::current())
    P->charge(Modeled.toCycles());
  return Sum / static_cast<double>(NumMethods);
}

std::vector<ExportedMethodModel> ModelBuilder::exportModels() const {
  std::vector<ExportedMethodModel> Out;
  if (!Built)
    return Out;
  Out.reserve(Models.size());
  for (const MethodModel &M : Models) {
    ExportedMethodModel E;
    E.Constant = M.Constant;
    E.ConstantLabel = M.ConstantLabel;
    if (!M.Constant)
      E.Tree = M.Tree.serialize();
    Out.push_back(std::move(E));
  }
  return Out;
}

bool ModelBuilder::importModels(const std::vector<ExportedMethodModel> &Exported) {
  if (Exported.size() != NumMethods)
    return false;
  std::vector<MethodModel> Incoming(NumMethods);
  for (size_t M = 0; M != NumMethods; ++M) {
    const ExportedMethodModel &E = Exported[M];
    Incoming[M].Constant = E.Constant;
    Incoming[M].ConstantLabel = E.ConstantLabel;
    if (E.Constant)
      continue;
    std::optional<ml::ClassificationTree> Tree =
        ml::ClassificationTree::deserialize(E.Tree);
    if (!Tree)
      return false; // damaged tree text: leave state untouched, retrain
    Incoming[M].Tree = std::move(*Tree);
  }
  Models = std::move(Incoming);
  Built = true;
  return true;
}

std::set<std::string> ModelBuilder::usedFeatureNames() const {
  std::set<std::string> Names;
  if (!Built)
    return Names;
  for (const MethodModel &Model : Models) {
    if (Model.Constant)
      continue;
    for (size_t F : Model.Tree.usedFeatures())
      Names.insert(Encoded.schema()[F].Name);
  }
  return Names;
}
