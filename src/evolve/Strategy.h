//===- evolve/Strategy.h - Per-method optimization strategies ------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's optimization strategy for the studied decision — one
/// compilation level per method (Sec. IV-A and V-B) — plus the posterior
/// ideal strategy derived from a run's profile and the time-weighted
/// prediction-accuracy metric:
///
///   accuracy = sum_{m in C} T_m / sum_{i in A} T_i
///
/// where C is the set of methods whose level was predicted correctly and
/// T_m is the method's sample count.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_EVOLVE_STRATEGY_H
#define EVM_EVOLVE_STRATEGY_H

#include "vm/Profile.h"
#include "vm/Timing.h"

#include <string>
#include <vector>

namespace evm {
namespace evolve {

/// One compilation level per method, indexed by MethodId.
struct MethodLevelStrategy {
  std::vector<vm::OptLevel> Levels;

  vm::OptLevel levelFor(bc::MethodId Id) const {
    return Id < Levels.size() ? Levels[Id] : vm::OptLevel::Baseline;
  }

  bool operator==(const MethodLevelStrategy &O) const {
    return Levels == O.Levels;
  }

  /// "m0:-1 m1:2 ..." for diagnostics.
  std::string str() const;
};

/// Computes the posterior ideal strategy (paper: GetIdealOptStrategy(p))
/// from a run profile using the shared cost-benefit model.
MethodLevelStrategy
idealStrategyFromProfile(const vm::TimingModel &TM,
                         const std::vector<vm::MethodStats> &Profile,
                         const std::vector<size_t> &MethodSizes);

/// Time-weighted prediction accuracy of \p Predicted against \p Ideal.
/// Runs whose profile has no samples at all score 1 (nothing mispredicted
/// mattered).
double predictionAccuracy(const MethodLevelStrategy &Predicted,
                          const MethodLevelStrategy &Ideal,
                          const std::vector<vm::MethodStats> &Profile);

/// Bytecode sizes per method (helper shared by strategy consumers).
std::vector<size_t> methodSizes(const bc::Module &M);

} // namespace evolve
} // namespace evm

#endif // EVM_EVOLVE_STRATEGY_H
