//===- evolve/Repository.cpp ----------------------------------------------==//

#include "evolve/Repository.h"

#include "support/Profiler.h"

#include <algorithm>
#include <cassert>

using namespace evm;
using namespace evm::evolve;
using vm::OptLevel;

void ProfileRepository::addRun(const std::vector<vm::MethodStats> &Profile) {
  std::vector<uint64_t> Samples(Profile.size());
  for (size_t M = 0; M != Profile.size(); ++M)
    Samples[M] = Profile[M].Samples;
  Runs.push_back(std::move(Samples));
  // Repository I/O happens between runs, off the application clock; the
  // modeled write cost covers serializing one per-method histogram row.
  if (PhaseProfiler *P = PhaseProfiler::current())
    P->chargeAt({"offline", "repository/add_run"},
                25 * static_cast<uint64_t>(Profile.size()), 1);
}

RepStrategy ProfileRepository::deriveStrategy(
    const std::vector<size_t> &MethodSizes) const {
  RepStrategy Strategy;
  if (Runs.empty())
    return Strategy;
  // Offline derivation: the scan is (methods x runs x grid); the modeled
  // cost charges the dominant methods-x-runs factor.
  ScopedPhase OfflineScope("offline");
  ScopedPhase DeriveScope("repository/derive");
  if (PhaseProfiler *P = PhaseProfiler::current())
    P->charge(60 * static_cast<uint64_t>(MethodSizes.size()) *
              static_cast<uint64_t>(Runs.size()));
  const size_t NumMethods = MethodSizes.size();
  Strategy.PerMethod.resize(NumMethods);

  for (size_t M = 0; M != NumMethods; ++M) {
    uint64_t MaxSamples = 0;
    for (const auto &Run : Runs)
      if (M < Run.size())
        MaxSamples = std::max(MaxSamples, Run[M]);
    if (MaxSamples == 0)
      continue;

    // Candidate trigger counts: a geometric grid capped at the observed
    // maximum.
    std::vector<uint64_t> Grid;
    for (uint64_t K = 1; K <= MaxSamples; K = K + std::max<uint64_t>(1, K / 2))
      Grid.push_back(K);

    double BestBenefit = 0;
    RepTrigger Best;
    for (int LI = vm::levelIndex(OptLevel::O0); LI != vm::NumOptLevels;
         ++LI) {
      OptLevel L = vm::levelFromIndex(LI);
      double SpeedRatio = 1.0 - 1.0 / TM.expectedSpeedup(L);
      double Cost = static_cast<double>(TM.compileCost(L, MethodSizes[M]));
      for (uint64_t K : Grid) {
        double Net = 0;
        for (const auto &Run : Runs) {
          uint64_t S = M < Run.size() ? Run[M] : 0;
          if (S < K)
            continue; // trigger never fires in this run
          double Remaining = static_cast<double>(S - K) *
                             static_cast<double>(TM.SampleIntervalCycles);
          Net += Remaining * SpeedRatio - Cost;
        }
        Net /= static_cast<double>(Runs.size());
        if (Net > BestBenefit) {
          BestBenefit = Net;
          Best = RepTrigger{K, L};
        }
      }
    }
    if (BestBenefit > 0)
      Strategy.PerMethod[M].push_back(Best);
  }
  return Strategy;
}

std::optional<OptLevel> RepPolicy::onSample(const vm::MethodRuntimeInfo &Info) {
  if (Info.Id >= Strategy.PerMethod.size())
    return std::nullopt;
  if (RecompileCounts.size() < Strategy.PerMethod.size())
    RecompileCounts.assign(Strategy.PerMethod.size(), 0);

  for (const RepTrigger &T : Strategy.PerMethod[Info.Id]) {
    if (Info.Samples != T.SampleCount)
      continue;
    if (RecompileCounts[Info.Id] >= CompilationBound)
      return std::nullopt;
    if (vm::levelIndex(T.Level) <= vm::levelIndex(Info.Level))
      return std::nullopt;
    ++RecompileCounts[Info.Id];
    return T.Level;
  }
  return std::nullopt;
}
