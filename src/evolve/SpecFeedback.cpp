//===- evolve/SpecFeedback.cpp --------------------------------------------==//

#include "evolve/SpecFeedback.h"

#include "support/Format.h"
#include "support/Statistics.h"

using namespace evm;
using namespace evm::evolve;

std::vector<std::string> SpecFeedback::droppableFeatures() const {
  std::vector<std::string> Out;
  for (const FeatureReport &F : Features)
    if (!F.UsedByModels)
      Out.push_back(F.Name);
  return Out;
}

std::vector<std::string> SpecFeedback::constantFeatures() const {
  std::vector<std::string> Out;
  for (const FeatureReport &F : Features)
    if (!F.Varied)
      Out.push_back(F.Name);
  return Out;
}

std::string SpecFeedback::render() const {
  std::string Out = formatString(
      "XICL specification feedback after %zu runs\n", RunsObserved);
  Out += formatString("  recent prediction accuracy: %.3f (trend %+.3f)\n",
                      MeanRecentAccuracy, AccuracyTrend);
  for (const FeatureReport &F : Features) {
    Out += formatString("  %-28s %s%s\n", F.Name.c_str(),
                        F.Varied ? "varies" : "constant",
                        F.UsedByModels ? ", used by models"
                                       : ", never used by models");
  }
  auto Droppable = droppableFeatures();
  if (!Droppable.empty()) {
    Out += "  suggestion: these attrs never reduced impurity and could be "
           "dropped:\n   ";
    for (const std::string &Name : Droppable)
      Out += " " + Name;
    Out += "\n";
  }
  if (LikelyMissingFeature)
    Out += "  suggestion: accuracy has plateaued low; the specification is "
           "likely missing\n  an input feature that matters (consider an "
           "m* extractor or updateV()).\n";
  return Out;
}

SpecFeedback SpecFeedbackCollector::analyze(const ModelBuilder &Model) const {
  SpecFeedback FB;
  FB.RunsObserved = Model.numRuns();

  const ml::Dataset &D = Model.encodedRuns();
  std::set<std::string> Used = Model.usedFeatureNames();
  for (size_t Column = 0; Column != D.numFeatures(); ++Column) {
    FeatureReport R;
    R.Name = D.schema()[Column].Name;
    R.UsedByModels = Used.count(R.Name) != 0;
    for (size_t Row = 1; Row < D.numExamples(); ++Row)
      if (D.example(Row).Values[Column] != D.example(0).Values[Column]) {
        R.Varied = true;
        break;
      }
    FB.Features.push_back(std::move(R));
  }

  if (Accuracies.size() >= 4) {
    size_t Third = Accuracies.size() / 3;
    std::vector<double> Early(Accuracies.begin(),
                              Accuracies.begin() + Third);
    std::vector<double> Late(Accuracies.end() - Third, Accuracies.end());
    FB.AccuracyTrend = mean(Late) - mean(Early);
    FB.MeanRecentAccuracy = mean(Late);
  } else if (!Accuracies.empty()) {
    FB.MeanRecentAccuracy = mean(Accuracies);
  }
  FB.LikelyMissingFeature = Accuracies.size() >= 10 &&
                            FB.MeanRecentAccuracy < 0.7 &&
                            FB.AccuracyTrend < 0.05;
  return FB;
}
