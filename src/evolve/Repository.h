//===- evolve/Repository.h - The repository-based baseline (Rep) ---------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-run profile-repository optimizer of Arnold, Welc and Rajan
/// (OOPSLA'05), reimplemented from the paper's description as its "Rep"
/// comparison point.  For every method, the repository derives from the
/// histogram of past runs a trigger pair <k, o>: when the online sampler
/// sees the k-th sample of the method, it is recompiled at level o.  The
/// strategy maximizes *average* history performance (not per-input), is
/// applied unconditionally from the first runs (no confidence guard), and
/// honours a compilation bound — the paper's three contrasts with Evolve.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_EVOLVE_REPOSITORY_H
#define EVM_EVOLVE_REPOSITORY_H

#include "vm/Policy.h"
#include "vm/Profile.h"

#include <cstdint>
#include <vector>

namespace evm {
namespace evolve {

/// One repository-derived trigger: recompile to Level at the K-th sample.
struct RepTrigger {
  uint64_t SampleCount = 0;
  vm::OptLevel Level = vm::OptLevel::Baseline;
};

/// Per-method triggers for a whole module (empty vector = never recompile
/// proactively).
struct RepStrategy {
  std::vector<std::vector<RepTrigger>> PerMethod;

  bool empty() const { return PerMethod.empty(); }
};

/// Accumulates profiles across production runs and derives RepStrategies.
class ProfileRepository {
public:
  explicit ProfileRepository(const vm::TimingModel &TM) : TM(TM) {}

  /// Records one run's per-method sample counts.
  void addRun(const std::vector<vm::MethodStats> &Profile);

  size_t numRuns() const { return Runs.size(); }

  /// The recorded per-run, per-method sample histograms — what the
  /// persistent knowledge store serializes for the Rep baseline.
  const std::vector<std::vector<uint64_t>> &runs() const { return Runs; }

  /// Reinstates persisted histograms (warm start), replacing any current
  /// ones.  The rows are store bytes; deriveStrategy already tolerates
  /// ragged rows, so no validation is needed here.
  void restoreRuns(std::vector<std::vector<uint64_t>> Histograms) {
    Runs = std::move(Histograms);
  }

  /// Derives the average-performance-maximizing strategy: for each method,
  /// the (k, o) pair whose expected net benefit over the recorded runs —
  /// cycles saved by running at level o from sample k onward, minus compile
  /// cost in the runs that reach k samples — is maximal and positive.
  RepStrategy deriveStrategy(const std::vector<size_t> &MethodSizes) const;

private:
  vm::TimingModel TM;
  /// Per-run, per-method sample counts.
  std::vector<std::vector<uint64_t>> Runs;
};

/// Policy that fires repository triggers at sample time, with a bound on
/// recompilations per method.
class RepPolicy : public vm::CompilationPolicy {
public:
  explicit RepPolicy(RepStrategy Strategy, int CompilationBound = 2)
      : Strategy(std::move(Strategy)), CompilationBound(CompilationBound) {}

  std::optional<vm::OptLevel>
  onSample(const vm::MethodRuntimeInfo &Info) override;

private:
  RepStrategy Strategy;
  int CompilationBound;
  std::vector<int> RecompileCounts; ///< sized lazily
};

} // namespace evolve
} // namespace evm

#endif // EVM_EVOLVE_REPOSITORY_H
