//===- evolve/EvolvePolicy.h - Proactive strategy application -------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Applies a predicted MethodLevelStrategy exactly the way the paper's
/// Evolve scenario does: every method is still compiled at baseline on its
/// first encounter (avoiding too-early optimization with unresolved
/// references), and a recompilation to the predicted level is issued
/// immediately afterwards.  No reactive sampling decisions are made — the
/// prediction covers the whole execution.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_EVOLVE_EVOLVEPOLICY_H
#define EVM_EVOLVE_EVOLVEPOLICY_H

#include "evolve/Strategy.h"
#include "vm/Policy.h"

#include <utility>

namespace evm {
namespace evolve {

/// CompilationPolicy that installs predicted levels right after first-time
/// baseline compilation.
class EvolvePolicy : public vm::CompilationPolicy {
public:
  explicit EvolvePolicy(MethodLevelStrategy Strategy)
      : Strategy(std::move(Strategy)) {}

  std::optional<vm::OptLevel>
  onFirstInvocation(const vm::MethodRuntimeInfo &Info) override {
    vm::OptLevel L = Strategy.levelFor(Info.Id);
    if (L == vm::OptLevel::Baseline)
      return std::nullopt;
    return L;
  }

private:
  MethodLevelStrategy Strategy;
};

} // namespace evolve
} // namespace evm

#endif // EVM_EVOLVE_EVOLVEPOLICY_H
