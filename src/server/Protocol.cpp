//===- server/Protocol.cpp ------------------------------------------------===//

#include "server/Protocol.h"

#include "store/Json.h"
#include "support/Format.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

using namespace evm;
using namespace evm::server;

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

namespace {

/// Reads exactly \p Len bytes (EINTR-safe).  Returns the byte count read,
/// which is < Len only on EOF or error (errno set).
size_t readFull(int Fd, void *Buf, size_t Len) {
  size_t Done = 0;
  while (Done < Len) {
    ssize_t N = ::read(Fd, static_cast<char *>(Buf) + Done, Len - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Done;
    }
    if (N == 0)
      return Done;
    Done += static_cast<size_t>(N);
  }
  return Done;
}

} // namespace

FrameStatus server::readFrame(int Fd, std::string &Payload,
                              std::string &Error) {
  unsigned char Header[4];
  size_t Got = readFull(Fd, Header, sizeof(Header));
  if (Got == 0) {
    // Clean EOF between frames: the peer closed the stream.
    return FrameStatus::Eof;
  }
  if (Got != sizeof(Header)) {
    Error = "truncated frame header";
    return FrameStatus::Error;
  }
  uint32_t Len = (uint32_t(Header[0]) << 24) | (uint32_t(Header[1]) << 16) |
                 (uint32_t(Header[2]) << 8) | uint32_t(Header[3]);
  if (Len > MaxFramePayload) {
    Error = formatString("frame payload %u exceeds limit %u", Len,
                         MaxFramePayload);
    return FrameStatus::Error;
  }
  Payload.resize(Len);
  if (Len != 0 && readFull(Fd, &Payload[0], Len) != Len) {
    Error = "truncated frame payload";
    return FrameStatus::Error;
  }
  return FrameStatus::Ok;
}

bool server::writeFrame(int Fd, const std::string &Payload) {
  if (Payload.size() > MaxFramePayload)
    return false;
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  unsigned char Header[4] = {
      static_cast<unsigned char>(Len >> 24),
      static_cast<unsigned char>(Len >> 16),
      static_cast<unsigned char>(Len >> 8),
      static_cast<unsigned char>(Len),
  };
  std::string Wire(reinterpret_cast<char *>(Header), sizeof(Header));
  Wire += Payload;
  size_t Done = 0;
  while (Done < Wire.size()) {
    ssize_t N = ::write(Fd, Wire.data() + Done, Wire.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Request parsing
//===----------------------------------------------------------------------===//

std::optional<Request> server::parseRequest(const std::string &Text,
                                            std::string &Error) {
  auto Doc = store::JsonValue::parse(Text);
  if (!Doc || !Doc->isObject()) {
    Error = "request is not a JSON object";
    return std::nullopt;
  }
  const store::JsonValue *Op = Doc->field("op");
  if (!Op || !Op->isString()) {
    Error = "missing \"op\"";
    return std::nullopt;
  }
  Request R;
  if (const store::JsonValue *Id = Doc->field("id"))
    R.Id = Id->asU64();

  if (Op->str() == "ping") {
    R.TheOp = Request::Op::Ping;
    return R;
  }
  if (Op->str() == "stats") {
    R.TheOp = Request::Op::Stats;
    return R;
  }
  if (Op->str() != "run") {
    Error = formatString("unknown op \"%s\"", Op->str().c_str());
    return std::nullopt;
  }

  R.TheOp = Request::Op::Run;
  const store::JsonValue *App = Doc->field("app");
  if (!App || !App->isString() || App->str().empty()) {
    Error = "run request missing \"app\"";
    return std::nullopt;
  }
  R.Run.App = App->str();

  if (const store::JsonValue *Input = Doc->field("input")) {
    if (!Input->isNumber()) {
      Error = "\"input\" must be a number";
      return std::nullopt;
    }
    R.Run.HasInput = true;
    R.Run.Input = Input->asU64();
    return R;
  }

  const store::JsonValue *Cmd = Doc->field("cmdline");
  if (!Cmd || !Cmd->isString()) {
    Error = "run request needs \"input\" or \"cmdline\"";
    return std::nullopt;
  }
  R.Run.CommandLine = Cmd->str();
  if (const store::JsonValue *Args = Doc->field("args")) {
    if (!Args->isArray()) {
      Error = "\"args\" must be an array";
      return std::nullopt;
    }
    for (const store::JsonValue &A : Args->array()) {
      if (!A.isNumber()) {
        Error = "\"args\" entries must be numbers";
        return std::nullopt;
      }
      // Mirror evm_cli's RUNS.txt typing: a '.' or exponent in the raw
      // spelling makes a float, everything else an int (JsonValue keeps
      // the raw number text for exactly this).
      const std::string &Raw = A.numberText();
      bool Float = Raw.find('.') != std::string::npos ||
                   Raw.find('e') != std::string::npos ||
                   Raw.find('E') != std::string::npos;
      R.Run.Args.push_back(Float ? bc::Value::makeFloat(A.asDouble())
                                 : bc::Value::makeInt(A.asI64()));
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

/// Renders one Value the way evm_cli's RUNS.txt parser would read it back:
/// ints as decimal, floats with a guaranteed '.' or exponent so the float
/// kind survives the round trip.
std::string renderArg(const bc::Value &V) {
  if (V.isInt())
    return formatString("%lld", static_cast<long long>(V.asInt()));
  std::string S = formatString("%.17g", V.asFloat());
  if (S.find('.') == std::string::npos &&
      S.find('e') == std::string::npos &&
      S.find('E') == std::string::npos &&
      S.find("inf") == std::string::npos &&
      S.find("nan") == std::string::npos)
    S += ".0";
  return S;
}

} // namespace

std::string server::renderRunInputRequest(uint64_t Id, const std::string &App,
                                          uint64_t Input) {
  return formatString("{\"op\":\"run\",\"id\":%llu,\"app\":\"%s\","
                      "\"input\":%llu}",
                      static_cast<unsigned long long>(Id),
                      store::jsonEscape(App).c_str(),
                      static_cast<unsigned long long>(Input));
}

std::string server::renderRunRawRequest(uint64_t Id, const std::string &App,
                                        const std::string &CommandLine,
                                        const std::vector<bc::Value> &Args) {
  std::string Out = formatString(
      "{\"op\":\"run\",\"id\":%llu,\"app\":\"%s\",\"cmdline\":\"%s\","
      "\"args\":[",
      static_cast<unsigned long long>(Id), store::jsonEscape(App).c_str(),
      store::jsonEscape(CommandLine).c_str());
  for (size_t I = 0; I != Args.size(); ++I) {
    if (I)
      Out += ',';
    Out += renderArg(Args[I]);
  }
  Out += "]}";
  return Out;
}

std::string server::renderPingRequest(uint64_t Id) {
  return formatString("{\"op\":\"ping\",\"id\":%llu}",
                      static_cast<unsigned long long>(Id));
}

std::string server::renderStatsRequest(uint64_t Id) {
  return formatString("{\"op\":\"stats\",\"id\":%llu}",
                      static_cast<unsigned long long>(Id));
}

std::string server::renderRunResponse(uint64_t Id, const std::string &App,
                                      uint64_t Run,
                                      const evolve::EvolveRunRecord &Record) {
  // Canonical rendering: fixed key order, %.17g doubles, the metrics
  // snapshot embedded verbatim.  This is the byte stream the determinism
  // pin compares against batch-mode records, so every field must be a pure
  // function of the EvolveRunRecord (no wall-clock, no queue state).
  std::string Out = formatString(
      "{\"id\":%llu,\"status\":\"ok\",\"app\":\"%s\",\"run\":%llu,"
      "\"used\":%d,\"had\":%d,\"conf_before\":%.17g,\"conf_after\":%.17g,"
      "\"cv\":%.17g,\"acc\":%.17g,\"cycles\":%llu,\"extract_cycles\":%llu,"
      "\"predict_cycles\":%llu,\"ret\":\"%s\",\"fv\":\"%s\",\"stats\":",
      static_cast<unsigned long long>(Id), store::jsonEscape(App).c_str(),
      static_cast<unsigned long long>(Run), Record.UsedPrediction ? 1 : 0,
      Record.HadPrediction ? 1 : 0, Record.ConfidenceBefore,
      Record.ConfidenceAfter, Record.CvConfidence, Record.Accuracy,
      static_cast<unsigned long long>(Record.Result.Cycles),
      static_cast<unsigned long long>(Record.ExtractionCycles),
      static_cast<unsigned long long>(Record.PredictionCycles),
      store::jsonEscape(Record.Result.ReturnValue.str()).c_str(),
      store::jsonEscape(Record.Features.str()).c_str());
  Out += Record.Result.Metrics.renderJson();
  Out += '}';
  return Out;
}

std::string server::renderRejectedResponse(uint64_t Id, const char *Reason) {
  return formatString(
      "{\"id\":%llu,\"status\":\"rejected\",\"reason\":\"%s\"}",
      static_cast<unsigned long long>(Id), Reason);
}

std::string server::renderErrorResponse(uint64_t Id, const std::string &What) {
  return formatString("{\"id\":%llu,\"status\":\"error\",\"error\":\"%s\"}",
                      static_cast<unsigned long long>(Id),
                      store::jsonEscape(What).c_str());
}

std::string server::renderPongResponse(uint64_t Id) {
  return formatString("{\"id\":%llu,\"status\":\"ok\",\"pong\":1}",
                      static_cast<unsigned long long>(Id));
}

std::string server::renderStatsResponse(uint64_t Id,
                                        const std::string &MetricsJson) {
  return formatString("{\"id\":%llu,\"status\":\"ok\",\"stats\":%s}",
                      static_cast<unsigned long long>(Id),
                      MetricsJson.c_str());
}
