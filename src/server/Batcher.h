//===- server/Batcher.h - Adaptive request batcher ------------------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission-to-execution coupling stage: accepted run requests queue
/// here and are flushed to the worker lanes in batches — when the pending
/// count reaches the batch size, or when the oldest pending request has
/// waited out the flush deadline, whichever comes first.  Batching trades a
/// bounded latency penalty (the deadline) for fewer lane wakeups under
/// load; under light traffic the deadline dominates and requests flow
/// almost immediately.
///
/// One batcher thread owns the queue; the flush callback runs on it, so a
/// single flush sees its batch in admission order.  Per-item ordering per
/// client is preserved end-to-end: readers submit in read order, flushes
/// preserve queue order, and each lane executes its items FIFO.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SERVER_BATCHER_H
#define EVM_SERVER_BATCHER_H

#include "server/Protocol.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace evm {
namespace server {

class ClientConn;

/// One accepted request in flight: what to run, whom to answer, and when
/// it was admitted (the latency histogram measures admission-to-response).
struct BatchItem {
  RunRequest Req;
  uint64_t Id = 0;
  std::shared_ptr<ClientConn> Client;
  std::chrono::steady_clock::time_point Enqueued;
};

class RequestBatcher {
public:
  struct Config {
    size_t BatchSize = 4;
    uint64_t DeadlineMicros = 1000;
  };

  /// Why a flush fired (metrics labels).
  enum class FlushReason { Size, Deadline, Drain };

  using FlushFn = std::function<void(std::vector<BatchItem>, FlushReason)>;

  /// Starts the batcher thread.  \p Flush runs on it.
  RequestBatcher(Config C, FlushFn Flush);
  ~RequestBatcher();

  /// Enqueues one item.  False once drain() has begun (the caller turns
  /// that into an explicit "draining" rejection).
  bool submit(BatchItem Item);

  /// Flushes everything pending and stops the thread.  Idempotent; after
  /// it returns, every submitted item has been handed to the flush
  /// callback.
  void drain();

  size_t pending() const;
  uint64_t sizeFlushes() const { return SizeFlushes.load(); }
  uint64_t deadlineFlushes() const { return DeadlineFlushes.load(); }
  uint64_t drainFlushes() const { return DrainFlushes.load(); }

private:
  void loop();

  Config C;
  FlushFn Flush;
  mutable std::mutex Mutex;
  std::condition_variable CV;
  std::vector<BatchItem> Pending;
  bool Stopping = false;
  std::atomic<uint64_t> SizeFlushes{0};
  std::atomic<uint64_t> DeadlineFlushes{0};
  std::atomic<uint64_t> DrainFlushes{0};
  std::thread Thread;
};

} // namespace server
} // namespace evm

#endif // EVM_SERVER_BATCHER_H
