//===- server/StoreGateway.cpp --------------------------------------------===//

#include "server/StoreGateway.h"

#include "harness/Fleet.h"

#include <cerrno>

#include <sys/stat.h>

using namespace evm;
using namespace evm::server;

StoreGateway::StoreGateway(std::string StoreDir) : Dir(std::move(StoreDir)) {
  if (!Dir.empty())
    if (mkdir(Dir.c_str(), 0777) != 0 && errno != EEXIST)
      Dir.clear(); // degrade to memory-only; callers see dir().empty()
}

std::string StoreGateway::globalPath(const std::string &App) const {
  // Lane ids may carry a ":instance" suffix; keep the store filename
  // shell-friendly.
  std::string Safe = App;
  for (char &C : Safe)
    if (C == ':' || C == '/')
      C = '.';
  return harness::FleetRunner::globalStorePath(Dir, Safe);
}

StoreGateway::Snapshot StoreGateway::snapshotLocked(const std::string &App) {
  auto It = Snapshots.find(App);
  if (It != Snapshots.end())
    return It->second;
  auto Loaded = std::make_shared<store::KnowledgeStore>();
  if (!Dir.empty()) {
    store::StoreReadStats Stats;
    store::loadStoreFile(globalPath(App), *Loaded, Stats);
  }
  Snapshot S = std::move(Loaded);
  Snapshots.emplace(App, S);
  return S;
}

StoreGateway::Snapshot StoreGateway::snapshot(const std::string &App) {
  std::lock_guard<std::mutex> L(Mutex);
  return snapshotLocked(App);
}

bool StoreGateway::publish(const std::string &App, size_t Lane,
                           const store::KnowledgeStore &KS) {
  {
    std::lock_guard<std::mutex> L(Mutex);
    Snapshot Cur = snapshotLocked(App);
    // Merge into a fresh document and swap the pointer: readers holding
    // Cur keep a complete, immutable view — no torn merges by
    // construction.
    Snapshots[App] =
        std::make_shared<const store::KnowledgeStore>(mergeStores(*Cur, KS));
  }
  ++NumPublishes;
  if (Dir.empty())
    return true;
  // The fleet's shard machinery: each lane owns its shard file, newest
  // checkpoint wins (generations stripe per lane, so folds are
  // permutation-invariant).
  return store::saveStoreFile(harness::FleetRunner::shardPath(Dir, Lane),
                              KS);
}

bool StoreGateway::fold(const std::string &App) {
  Snapshot S;
  {
    std::lock_guard<std::mutex> L(Mutex);
    S = snapshotLocked(App);
  }
  ++NumFolds;
  if (Dir.empty() || S->empty())
    return true;
  // Read-modify-write, same shape as ScenarioRunner's checkpoints: an
  // external writer may have advanced the file since we loaded it.
  store::KnowledgeStore Disk;
  store::StoreReadStats Stats;
  store::loadStoreFile(globalPath(App), Disk, Stats);
  return store::saveStoreFile(globalPath(App), mergeStores(Disk, *S));
}

size_t StoreGateway::foldAll() {
  size_t Failures = 0;
  for (const std::string &App : apps())
    if (!fold(App))
      ++Failures;
  return Failures;
}

std::vector<std::string> StoreGateway::apps() const {
  std::vector<std::string> Out;
  std::lock_guard<std::mutex> L(Mutex);
  for (const auto &KV : Snapshots)
    Out.push_back(KV.first);
  return Out;
}
