//===- server/StoreGateway.h - Snapshot-isolated shared KnowledgeStore ----===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's view of the shared KnowledgeStore: per-app immutable
/// snapshots behind shared_ptr, so worker lanes read without locks and
/// without ever observing a half-merged document.
///
/// Concurrency model (read-mostly, snapshot-isolated):
///
///   - snapshot(app) hands out `shared_ptr<const KnowledgeStore>`.  Readers
///     keep using the document they were handed for as long as they like;
///     publication never mutates a document a reader can see.
///   - publish(app, lane, checkpoint) merges a lane's checkpoint into a
///     *fresh copy* under the existing generation-keyed newest-wins
///     store::mergeStores policy and swaps the app's snapshot pointer under
///     a short mutex.  Readers on the stale snapshot simply keep the old
///     shared_ptr — a torn merge is unobservable by construction.
///   - Lane checkpoints stripe their generations exactly like fleet shards
///     (lane index i writes generations in ((i+1)*Stride, (i+2)*Stride),
///     harness::FleetRunner::GenerationStride), so concurrent publishers
///     merge under a total order and fold permutation-invariantly.
///   - publish also writes the lane's shard file
///     (FleetRunner::shardPath(dir, lane)) when a store directory is
///     configured, reusing the fleet's shard machinery — `evm-store merge`
///     and `evm-store validate` work on a serving directory unchanged.
///   - fold(app) read-modify-writes the app's global store on disk
///     (FleetRunner-style global-<app>.store path, atomic tmp+rename save),
///     merging disk and snapshot so concurrent external writers lose
///     nothing.  The drain path folds every app as the final checkpoint.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SERVER_STOREGATEWAY_H
#define EVM_SERVER_STOREGATEWAY_H

#include "store/KnowledgeStore.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace evm {
namespace server {

class StoreGateway {
public:
  /// An immutable published document.  Never mutated after publication.
  using Snapshot = std::shared_ptr<const store::KnowledgeStore>;

  /// \p StoreDir holds shard-<lane>.store and global-<app>.store files;
  /// empty = memory-only (snapshots still work, nothing persists).  The
  /// directory is created if missing.
  explicit StoreGateway(std::string StoreDir);

  /// The app's current snapshot.  First touch loads global-<app>.store
  /// from disk (missing or damaged files degrade to an empty store, the
  /// loader's usual recovery semantics).  Never null.
  Snapshot snapshot(const std::string &App);

  /// Publishes a lane checkpoint: snapshot := mergeStores(snapshot, KS),
  /// swapped atomically under the mutex; the previous snapshot stays valid
  /// for readers that hold it.  Also writes shard-<lane>.store when a
  /// store directory is configured (false on that save failing).
  bool publish(const std::string &App, size_t Lane,
               const store::KnowledgeStore &KS);

  /// Read-modify-writes global-<app>.store from the current snapshot.
  /// True when written (or when there is no store directory / nothing to
  /// persist — not an error).
  bool fold(const std::string &App);

  /// Folds every touched app; returns the number of failed saves.
  size_t foldAll();

  /// Apps touched so far (snapshot/publish), sorted.
  std::vector<std::string> apps() const;

  const std::string &dir() const { return Dir; }
  uint64_t publishes() const { return NumPublishes.load(); }
  uint64_t folds() const { return NumFolds.load(); }

  /// global-<app>.store inside the gateway's directory, with lane ids
  /// (":" instances) made filename-safe.
  std::string globalPath(const std::string &App) const;

private:
  Snapshot snapshotLocked(const std::string &App);

  std::string Dir;
  mutable std::mutex Mutex;
  std::map<std::string, Snapshot> Snapshots;
  std::atomic<uint64_t> NumPublishes{0};
  std::atomic<uint64_t> NumFolds{0};
};

} // namespace server
} // namespace evm

#endif // EVM_SERVER_STOREGATEWAY_H
