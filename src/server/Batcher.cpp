//===- server/Batcher.cpp -------------------------------------------------===//

#include "server/Batcher.h"

using namespace evm;
using namespace evm::server;

RequestBatcher::RequestBatcher(Config C, FlushFn Flush)
    : C(C), Flush(std::move(Flush)) {
  if (this->C.BatchSize == 0)
    this->C.BatchSize = 1;
  Thread = std::thread([this] { loop(); });
}

RequestBatcher::~RequestBatcher() { drain(); }

bool RequestBatcher::submit(BatchItem Item) {
  {
    std::lock_guard<std::mutex> L(Mutex);
    if (Stopping)
      return false;
    Pending.push_back(std::move(Item));
  }
  CV.notify_all();
  return true;
}

void RequestBatcher::drain() {
  {
    std::lock_guard<std::mutex> L(Mutex);
    Stopping = true;
  }
  CV.notify_all();
  if (Thread.joinable())
    Thread.join();
}

size_t RequestBatcher::pending() const {
  std::lock_guard<std::mutex> L(Mutex);
  return Pending.size();
}

void RequestBatcher::loop() {
  std::unique_lock<std::mutex> L(Mutex);
  while (true) {
    if (Pending.empty()) {
      if (Stopping)
        return;
      CV.wait(L);
      continue;
    }

    FlushReason Reason;
    if (Pending.size() >= C.BatchSize) {
      Reason = FlushReason::Size;
    } else if (Stopping) {
      Reason = FlushReason::Drain;
    } else {
      // Wait for the batch to fill, but no longer than the oldest item's
      // deadline — tail latency under light load is bounded by it.
      auto Deadline =
          Pending.front().Enqueued + std::chrono::microseconds(C.DeadlineMicros);
      bool Filled = CV.wait_until(L, Deadline, [&] {
        return Pending.size() >= C.BatchSize || Stopping;
      });
      if (Filled)
        continue; // re-evaluate: size or drain flush on the next pass
      Reason = FlushReason::Deadline;
    }

    std::vector<BatchItem> Batch;
    Batch.swap(Pending);
    switch (Reason) {
    case FlushReason::Size:
      ++SizeFlushes;
      break;
    case FlushReason::Deadline:
      ++DeadlineFlushes;
      break;
    case FlushReason::Drain:
      ++DrainFlushes;
      break;
    }
    L.unlock();
    Flush(std::move(Batch), Reason);
    L.lock();
  }
}
