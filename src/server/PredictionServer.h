//===- server/PredictionServer.h - The online prediction service ----------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon that promotes EvolvableVM from batch launches to a
/// long-running online service (the ROADMAP's "heavy traffic" north star):
///
///   clients ──unix socket──> reader threads ──admission──> RequestBatcher
///        ──flush──> per-app worker lanes (persistent EvolvableVM)
///        ──checkpoints──> StoreGateway snapshots ──fold──> global stores
///
///   - One reader thread per connection parses frames (server/Protocol.h)
///     and applies admission control *before* queueing: a global in-flight
///     bound (explicit "overload" rejections — shed load, never stall the
///     socket), a per-client in-flight cap ("client_inflight"), and a lane
///     cap ("lanes").  Rejections are answered immediately and recorded in
///     the decision ledger with the `rejected` verdict so evm-explain can
///     report drop rates per app.
///   - The RequestBatcher couples admission to execution (flush on batch
///     size or deadline); its flush routes items to per-app lanes, creating
///     lanes on demand.
///   - Each lane owns one persistent EvolvableVM for its app id
///     ("workload[:instance]"), warm-started from the StoreGateway's
///     snapshot at lane creation, executing its queue strictly FIFO — so a
///     serial single-client stream is *deterministic*: byte-identical to
///     the equivalent batch runEvolveLaunches (the pin in
///     tests/test_server.cpp).  Lanes publish checkpoints every
///     CheckpointEvery runs (0 = only at drain) under fleet-style striped
///     generations.
///   - Graceful drain (SIGTERM in tools/evm-served): stop accepting, answer
///     new frames with "draining", flush the batcher, let every lane finish
///     its queue, publish final checkpoints, fold all global stores (the
///     final checkpoint `evm-store validate` must accept), then unblock and
///     join the readers.
///
/// Observability: server.* metrics in a thread-safe MetricsRegistry —
/// request/response counters, rejection counters by reason, batch-size and
/// request-latency histograms (host microseconds, admission to response;
/// P50/P99 via the registry's percentile summaries).  Like fleet mode,
/// engine-level trace recording stays detached on the serving hot path:
/// concurrent lanes interleaving into one recorder would destroy
/// append-order determinism.  Latencies are host time and therefore live
/// only in metrics, never in response payloads — responses stay pure
/// functions of the run records.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SERVER_PREDICTIONSERVER_H
#define EVM_SERVER_PREDICTIONSERVER_H

#include "harness/Scenario.h"
#include "server/Batcher.h"
#include "server/StoreGateway.h"
#include "support/DecisionLedger.h"
#include "support/Metrics.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace evm {
namespace server {

/// One accepted connection: the reader thread parses its frames; lanes
/// answer through send() (serialized by the write mutex, so concurrent
/// lanes never interleave bytes of two frames).
class ClientConn {
public:
  explicit ClientConn(int Fd) : Fd(Fd) {}
  ~ClientConn();
  ClientConn(const ClientConn &) = delete;
  ClientConn &operator=(const ClientConn &) = delete;

  /// Writes one frame (thread-safe).  False once the peer is gone.
  bool send(const std::string &Payload);

  /// Unblocks a reader stuck in readFrame (drain teardown).
  void shutdownBoth();

  int fd() const { return Fd; }

  /// Requests admitted but not yet answered (the per-client cap).
  std::atomic<size_t> Inflight{0};

private:
  int Fd;
  std::mutex WriteMutex;
};

/// Serving knobs.  The determinism pin holds for any values as long as the
/// request stream is serial; the batching/admission knobs only shape
/// concurrency behaviour.
struct ServerConfig {
  std::string SocketPath;
  /// Shard + global store directory (empty = nothing persists).
  std::string StoreDir;
  /// Workload build seed (the fleet's Seed knob).
  uint64_t Seed = 1;
  /// Cap on distinct app lanes ("lanes" rejections beyond it).
  size_t MaxLanes = 8;
  size_t BatchSize = 4;
  uint64_t BatchDeadlineMicros = 1000;
  /// Global bound on admitted-but-unanswered requests ("overload").
  size_t MaxQueue = 256;
  /// Per-client bound ("client_inflight").
  size_t MaxInflightPerClient = 64;
  /// Publish lane checkpoints every N runs; 0 = only at drain.  Note that
  /// periodic publication feeds *later-created* lanes' warm starts — fresh
  /// knowledge at the price of creation-time dependence; the determinism
  /// pin uses a single lane, where cadence is invisible.
  size_t CheckpointEvery = 0;
  /// Per-lane decision ledgers + rejected-request records.
  bool CaptureDecisions = false;
  /// Scenario knobs shared with batch mode (harness::makeEvolveConfig).
  harness::ExperimentConfig Experiment;
};

class PredictionServer {
public:
  explicit PredictionServer(ServerConfig C);
  ~PredictionServer();

  /// Binds the socket and starts the accept/batcher threads.  False on
  /// failure (see error()); the socket file exists once this returns true,
  /// which is the daemon's readiness signal.
  bool start();

  /// Begins drain: stop accepting connections, reject new run requests
  /// with "draining".  Cheap and idempotent; the heavy lifting happens in
  /// drainAndWait().
  void requestDrain();

  /// Completes the drain: flushes the batcher, lets every lane finish its
  /// queue and publish its final checkpoint, folds all global stores, and
  /// joins every thread.  Returns 0 on success, 3 when any final store
  /// fold failed (the daemon's exit code).
  int drainAndWait();

  bool running() const { return Running.load(); }
  const std::string &error() const { return Err; }
  const ServerConfig &config() const { return C; }
  const StoreGateway &gateway() const { return *Gateway; }

  /// Point-in-time server.* metrics.
  MetricsSnapshot metricsSnapshot() const { return Metrics.snapshot(); }

  /// Decision records: per-lane ledgers in lane-creation order, then the
  /// admission-rejection stream.  Call after drainAndWait() for the
  /// complete picture.
  std::vector<DecisionRecord> decisions() const;

private:
  struct Lane {
    std::string App;          ///< full lane id ("route:1")
    std::string WorkloadName; ///< base workload ("route")
    size_t Index = 0;         ///< generation stripe + shard file index
    std::thread Thread;
    std::mutex M;
    std::condition_variable CV;
    std::deque<BatchItem> Queue;
    bool Stop = false;
    DecisionLedger Ledger{size_t(1) << 16};
  };

  void acceptLoop();
  void serveClient(std::shared_ptr<ClientConn> Conn);
  void handleRequest(const std::shared_ptr<ClientConn> &Conn,
                     const std::string &Payload);
  void reject(const std::shared_ptr<ClientConn> &Conn, uint64_t Id,
              const std::string &App, const char *Reason);
  void onFlush(std::vector<BatchItem> Batch, RequestBatcher::FlushReason R);
  Lane *laneFor(const std::string &App); ///< creates on demand; null at cap
  void laneMain(Lane &L);
  void finishItem(const BatchItem &Item);

  ServerConfig C;
  std::string Err;
  int ListenFd = -1;
  std::atomic<bool> Running{false};
  std::atomic<bool> Draining{false};
  std::atomic<bool> Drained{false};
  std::thread AcceptThread;
  std::unique_ptr<StoreGateway> Gateway;
  std::unique_ptr<RequestBatcher> Batcher;
  MetricsRegistry Metrics;

  std::atomic<size_t> InFlight{0};
  std::atomic<size_t> PeakInFlight{0};

  mutable std::mutex ConnMutex;
  std::vector<std::shared_ptr<ClientConn>> Conns;
  std::vector<std::thread> Readers;

  mutable std::mutex LanesMutex;
  std::vector<std::unique_ptr<Lane>> Lanes; ///< creation order
  std::map<std::string, Lane *> LaneByApp;

  mutable std::mutex RejectMutex;
  DecisionLedger RejectLedger{size_t(1) << 16};
};

} // namespace server
} // namespace evm

#endif // EVM_SERVER_PREDICTIONSERVER_H
