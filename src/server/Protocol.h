//===- server/Protocol.h - Serving wire protocol --------------------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The prediction service's wire protocol: length-prefixed JSON frames over
/// a Unix-domain stream socket.  A frame is a 4-byte big-endian payload
/// length followed by that many bytes of UTF-8 JSON — one request or one
/// response per frame, no framing inside the payload.
///
/// Requests (client -> server):
///
///   {"op":"run","id":N,"app":"route[:K]","input":I}
///   {"op":"run","id":N,"app":"route[:K]","cmdline":"...","args":[..]}
///   {"op":"ping","id":N}
///   {"op":"stats","id":N}
///
/// "app" names a worker lane: a workload name (wl::workloadNames() or
/// "route", realized through harness::buildFleetWorkload) plus an optional
/// ":instance" suffix so independent lanes can serve the same program.
/// "input" indexes the lane workload's built-in input set; the raw
/// "cmdline"/"args" form mirrors evm_cli's RUNS.txt lines (numbers with a
/// '.', 'e', or 'E' in their spelling become floats, everything else ints).
///
/// Responses (server -> client) always carry "id" (echoed) and "status":
///
///   {"id":N,"status":"ok","app":...,"run":N,<run record>}     completed run
///   {"id":N,"status":"ok","pong":1}                           ping
///   {"id":N,"status":"ok","stats":{"metrics":[..]}}           stats
///   {"id":N,"status":"rejected","reason":"overload|client_inflight|
///                                         draining|lanes"}    admission
///   {"id":N,"status":"error","error":"..."}                   bad request
///
/// The run record rendering is canonical (fixed key order, %.17g doubles,
/// the RunResult metrics snapshot embedded verbatim), which is what the
/// determinism pin compares: a serial single-client request stream must be
/// byte-identical to rendering the equivalent batch-mode EvolveRunRecords
/// through the same renderRunResponse.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_SERVER_PROTOCOL_H
#define EVM_SERVER_PROTOCOL_H

#include "bytecode/Value.h"
#include "evolve/EvolvableVM.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace evm {
namespace server {

/// Frames larger than this are a protocol error (the service exchanges
/// small JSON documents; a huge length prefix is garbage or abuse).
constexpr uint32_t MaxFramePayload = 1u << 20;

/// One readFrame outcome.
enum class FrameStatus {
  Ok,    ///< a complete frame was read
  Eof,   ///< clean end-of-stream before a header byte
  Error, ///< I/O error, oversized length, or mid-frame truncation
};

/// Reads one length-prefixed frame from \p Fd (blocking, EINTR-safe).
/// On Error, \p Error describes the failure.
FrameStatus readFrame(int Fd, std::string &Payload, std::string &Error);

/// Writes one length-prefixed frame to \p Fd (blocking, EINTR-safe).
bool writeFrame(int Fd, const std::string &Payload);

/// A parsed run request.
struct RunRequest {
  std::string App;          ///< lane id: "workload" or "workload:instance"
  bool HasInput = false;    ///< "input" form
  uint64_t Input = 0;       ///< index into the lane workload's Inputs
  std::string CommandLine;  ///< raw form (when !HasInput)
  std::vector<bc::Value> Args;
};

/// Any parsed request.
struct Request {
  enum class Op { Run, Ping, Stats };
  Op TheOp = Op::Ping;
  uint64_t Id = 0;
  RunRequest Run; ///< meaningful when TheOp == Op::Run
};

/// Parses one request payload.  nullopt on malformed input, with \p Error
/// describing what was wrong.
std::optional<Request> parseRequest(const std::string &Text,
                                    std::string &Error);

/// Renders the request forms (the client side of the protocol).
std::string renderRunInputRequest(uint64_t Id, const std::string &App,
                                  uint64_t Input);
std::string renderRunRawRequest(uint64_t Id, const std::string &App,
                                const std::string &CommandLine,
                                const std::vector<bc::Value> &Args);
std::string renderPingRequest(uint64_t Id);
std::string renderStatsRequest(uint64_t Id);

/// Canonical "ok" response for one completed run.  \p Run is the lane's
/// 1-based run ordinal (the VM's RunsSeen after the run).  Byte-
/// deterministic — the determinism pin's comparison format.
std::string renderRunResponse(uint64_t Id, const std::string &App,
                              uint64_t Run,
                              const evolve::EvolveRunRecord &Record);

/// The non-run responses.
std::string renderRejectedResponse(uint64_t Id, const char *Reason);
std::string renderErrorResponse(uint64_t Id, const std::string &What);
std::string renderPongResponse(uint64_t Id);
std::string renderStatsResponse(uint64_t Id, const std::string &MetricsJson);

} // namespace server
} // namespace evm

#endif // EVM_SERVER_PROTOCOL_H
