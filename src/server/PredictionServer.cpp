//===- server/PredictionServer.cpp ----------------------------------------===//

#include "server/PredictionServer.h"

#include "harness/Fleet.h"
#include "support/Format.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace evm;
using namespace evm::server;

//===----------------------------------------------------------------------===//
// ClientConn
//===----------------------------------------------------------------------===//

ClientConn::~ClientConn() {
  if (Fd >= 0)
    ::close(Fd);
}

bool ClientConn::send(const std::string &Payload) {
  std::lock_guard<std::mutex> L(WriteMutex);
  return writeFrame(Fd, Payload);
}

void ClientConn::shutdownBoth() { ::shutdown(Fd, SHUT_RDWR); }

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

PredictionServer::PredictionServer(ServerConfig C) : C(std::move(C)) {}

PredictionServer::~PredictionServer() {
  if (!Drained.load())
    drainAndWait();
}

bool PredictionServer::start() {
  if (C.SocketPath.empty()) {
    Err = "no socket path configured";
    return false;
  }
  Gateway = std::make_unique<StoreGateway>(C.StoreDir);
  if (!C.StoreDir.empty() && Gateway->dir().empty()) {
    Err = "cannot create store directory " + C.StoreDir;
    return false;
  }

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Err = formatString("socket: %s", std::strerror(errno));
    return false;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (C.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + C.SocketPath;
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  std::memcpy(Addr.sun_path, C.SocketPath.c_str(), C.SocketPath.size());
  ::unlink(C.SocketPath.c_str()); // stale socket from a previous daemon
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Err = formatString("bind %s: %s", C.SocketPath.c_str(),
                       std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::listen(ListenFd, 64) != 0) {
    Err = formatString("listen: %s", std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }

  RejectLedger.setEnabled(C.CaptureDecisions);
  Batcher = std::make_unique<RequestBatcher>(
      RequestBatcher::Config{C.BatchSize, C.BatchDeadlineMicros},
      [this](std::vector<BatchItem> B, RequestBatcher::FlushReason R) {
        onFlush(std::move(B), R);
      });
  Running = true;
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void PredictionServer::requestDrain() { Draining = true; }

int PredictionServer::drainAndWait() {
  if (Drained.load())
    return 0;
  requestDrain();

  // 1. Stop accepting.  The accept loop polls Draining every 100ms.
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(C.SocketPath.c_str());
  }

  // 2. Flush the batcher: every admitted request reaches its lane.  New
  // frames keep arriving on live connections; readers answer "draining".
  if (Batcher)
    Batcher->drain();

  // 3. Let every lane finish its queue and publish its final checkpoint.
  std::vector<Lane *> All;
  {
    std::lock_guard<std::mutex> L(LanesMutex);
    for (auto &P : Lanes)
      All.push_back(P.get());
  }
  for (Lane *L : All) {
    {
      std::lock_guard<std::mutex> QL(L->M);
      L->Stop = true;
    }
    L->CV.notify_all();
    if (L->Thread.joinable())
      L->Thread.join();
  }

  // 4. Final fold: the global stores `evm-store validate` must accept.
  size_t FoldFailures = Gateway ? Gateway->foldAll() : 0;

  // 5. Unblock and join the readers (all admitted requests are answered
  // by now, so closing cannot lose a response).
  {
    std::lock_guard<std::mutex> CL(ConnMutex);
    for (auto &Conn : Conns)
      Conn->shutdownBoth();
  }
  std::vector<std::thread> Rs;
  {
    std::lock_guard<std::mutex> CL(ConnMutex);
    Rs.swap(Readers);
  }
  for (std::thread &T : Rs)
    if (T.joinable())
      T.join();
  {
    std::lock_guard<std::mutex> CL(ConnMutex);
    Conns.clear();
  }

  Metrics.setGauge("server.inflight.peak",
                   static_cast<double>(PeakInFlight.load()));
  {
    std::lock_guard<std::mutex> L(LanesMutex);
    Metrics.setGauge("server.lanes", static_cast<double>(Lanes.size()));
  }
  Running = false;
  Drained = true;
  return FoldFailures ? 3 : 0;
}

std::vector<DecisionRecord> PredictionServer::decisions() const {
  std::vector<DecisionRecord> Out;
  {
    std::lock_guard<std::mutex> L(LanesMutex);
    for (const auto &P : Lanes)
      for (DecisionRecord &R : P->Ledger.exportOrder())
        Out.push_back(std::move(R));
  }
  {
    std::lock_guard<std::mutex> L(RejectMutex);
    for (DecisionRecord &R : RejectLedger.exportOrder())
      Out.push_back(std::move(R));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Accept / read path
//===----------------------------------------------------------------------===//

void PredictionServer::acceptLoop() {
  while (!Draining.load()) {
    pollfd P;
    P.fd = ListenFd;
    P.events = POLLIN;
    P.revents = 0;
    int R = ::poll(&P, 1, 100);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (R == 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    auto Conn = std::make_shared<ClientConn>(Fd);
    Metrics.add("server.connections");
    std::lock_guard<std::mutex> L(ConnMutex);
    Conns.push_back(Conn);
    Readers.emplace_back([this, Conn] { serveClient(Conn); });
  }
}

void PredictionServer::serveClient(std::shared_ptr<ClientConn> Conn) {
  while (true) {
    std::string Payload, FrameErr;
    FrameStatus S = readFrame(Conn->fd(), Payload, FrameErr);
    if (S == FrameStatus::Eof)
      break;
    if (S == FrameStatus::Error) {
      // Covers genuine protocol garbage and the drain-time shutdown that
      // unblocks this reader; either way the stream is unusable.
      Metrics.add("server.frames.bad");
      break;
    }
    handleRequest(Conn, Payload);
  }
}

void PredictionServer::reject(const std::shared_ptr<ClientConn> &Conn,
                              uint64_t Id, const std::string &App,
                              const char *Reason) {
  Metrics.add(std::string("server.rejected.") + Reason);
  Conn->send(renderRejectedResponse(Id, Reason));
  if (C.CaptureDecisions) {
    // The overload satellite: rejected requests leave a ledger line with
    // the `rejected` verdict (reason in Guard) so evm-explain can report
    // per-app drop rates.
    DecisionRecord R;
    R.App = App;
    R.Guard = Reason;
    R.Rejected = true;
    std::lock_guard<std::mutex> L(RejectMutex);
    RejectLedger.record(std::move(R));
  }
}

void PredictionServer::handleRequest(const std::shared_ptr<ClientConn> &Conn,
                                     const std::string &Payload) {
  std::string ParseErr;
  std::optional<Request> Req = parseRequest(Payload, ParseErr);
  if (!Req) {
    Metrics.add("server.requests.bad");
    Conn->send(renderErrorResponse(0, ParseErr));
    return;
  }

  switch (Req->TheOp) {
  case Request::Op::Ping:
    Metrics.add("server.requests.ping");
    Conn->send(renderPongResponse(Req->Id));
    return;
  case Request::Op::Stats:
    Metrics.add("server.requests.stats");
    Conn->send(
        renderStatsResponse(Req->Id, Metrics.snapshot().renderJson()));
    return;
  case Request::Op::Run:
    break;
  }

  Metrics.add("server.requests.run");
  std::string App = Req->Run.App;

  // A typo'd app is an error, not a drop: validate the base workload name
  // before admission so drop rates only count genuine load shedding.
  std::string Base = App.substr(0, App.find(':'));
  const std::vector<std::string> &Known = wl::workloadNames();
  if (Base != "route" &&
      std::find(Known.begin(), Known.end(), Base) == Known.end()) {
    Metrics.add("server.requests.bad");
    Conn->send(renderErrorResponse(
        Req->Id, formatString("unknown app '%s'", Base.c_str())));
    return;
  }

  // Admission control, cheapest check first.  Rejections answer
  // immediately — the socket never stalls under overload.
  if (Draining.load())
    return reject(Conn, Req->Id, App, "draining");
  if (InFlight.load() >= C.MaxQueue)
    return reject(Conn, Req->Id, App, "overload");
  if (Conn->Inflight.load() >= C.MaxInflightPerClient)
    return reject(Conn, Req->Id, App, "client_inflight");

  BatchItem Item;
  Item.Req = std::move(Req->Run);
  Item.Id = Req->Id;
  Item.Client = Conn;
  Item.Enqueued = std::chrono::steady_clock::now();

  size_t Cur = InFlight.fetch_add(1) + 1;
  Conn->Inflight.fetch_add(1);
  size_t Peak = PeakInFlight.load();
  while (Cur > Peak && !PeakInFlight.compare_exchange_weak(Peak, Cur)) {
  }

  if (!Batcher->submit(std::move(Item))) {
    // Drain began between the check above and the submit.
    InFlight.fetch_sub(1);
    Conn->Inflight.fetch_sub(1);
    reject(Conn, Req->Id, App, "draining");
  }
}

//===----------------------------------------------------------------------===//
// Batch routing and lanes
//===----------------------------------------------------------------------===//

void PredictionServer::onFlush(std::vector<BatchItem> Batch,
                               RequestBatcher::FlushReason R) {
  switch (R) {
  case RequestBatcher::FlushReason::Size:
    Metrics.add("server.flush.size");
    break;
  case RequestBatcher::FlushReason::Deadline:
    Metrics.add("server.flush.deadline");
    break;
  case RequestBatcher::FlushReason::Drain:
    Metrics.add("server.flush.drain");
    break;
  }
  Metrics.observe("server.batch.size", static_cast<double>(Batch.size()));

  for (BatchItem &Item : Batch) {
    Lane *L = laneFor(Item.Req.App);
    if (!L) {
      InFlight.fetch_sub(1);
      Item.Client->Inflight.fetch_sub(1);
      reject(Item.Client, Item.Id, Item.Req.App, "lanes");
      continue;
    }
    {
      std::lock_guard<std::mutex> QL(L->M);
      L->Queue.push_back(std::move(Item));
    }
    L->CV.notify_all();
  }
}

PredictionServer::Lane *PredictionServer::laneFor(const std::string &App) {
  std::lock_guard<std::mutex> LG(LanesMutex);
  auto It = LaneByApp.find(App);
  if (It != LaneByApp.end())
    return It->second;
  if (Lanes.size() >= C.MaxLanes)
    return nullptr;
  auto NewLane = std::make_unique<Lane>();
  NewLane->App = App;
  NewLane->WorkloadName = App.substr(0, App.find(':'));
  NewLane->Index = Lanes.size();
  Lane *Ptr = NewLane.get();
  Lanes.push_back(std::move(NewLane));
  LaneByApp[App] = Ptr;
  Ptr->Thread = std::thread([this, Ptr] { laneMain(*Ptr); });
  return Ptr;
}

void PredictionServer::finishItem(const BatchItem &Item) {
  auto Us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - Item.Enqueued)
                .count();
  Metrics.observe("server.latency.us", static_cast<double>(Us));
  InFlight.fetch_sub(1);
  Item.Client->Inflight.fetch_sub(1);
}

void PredictionServer::laneMain(Lane &L) {
  // The lane's persistent EvolvableVM: exactly the fleet tenant recipe
  // (buildFleetWorkload + makeEvolveConfig), so a serial request stream
  // reproduces batch-mode behaviour byte-for-byte.
  wl::Workload W = harness::buildFleetWorkload(L.WorkloadName, C.Seed);
  xicl::XFMethodRegistry Registry;
  W.registerMethods(Registry);
  xicl::FileStore Files;
  W.populateFileStore(Files);
  evolve::EvolvableVM VM(W.Module, W.XiclSpec, &Registry, &Files,
                         harness::makeEvolveConfig(C.Experiment));
  if (C.CaptureDecisions) {
    L.Ledger.setEnabled(true);
    VM.setLedger(&L.Ledger, L.App);
  }
  {
    // Warm start from the published snapshot.  The shared_ptr keeps the
    // document alive and immutable regardless of concurrent publishes.
    StoreGateway::Snapshot Snap = Gateway->snapshot(L.App);
    VM.warmStart(*Snap);
  }
  Metrics.add("server.lanes.created");

  uint64_t Launch = 0;
  size_t RunsSince = 0;
  auto Publish = [&] {
    ++Launch;
    // Fleet-style generation striping by lane index: concurrent lanes'
    // checkpoints merge under a total order.
    uint64_t Gen =
        (L.Index + 1) * harness::FleetRunner::GenerationStride + Launch;
    store::KnowledgeStore KS = VM.checkpoint(Gen);
    KS.Header.App = L.App;
    if (Gateway->publish(L.App, L.Index, KS))
      Metrics.add("server.checkpoints.published");
    else
      Metrics.add("server.checkpoints.failed");
  };

  while (true) {
    BatchItem Item;
    {
      std::unique_lock<std::mutex> QL(L.M);
      L.CV.wait(QL, [&] { return L.Stop || !L.Queue.empty(); });
      if (L.Queue.empty())
        break; // Stop requested and the queue is drained
      Item = std::move(L.Queue.front());
      L.Queue.pop_front();
    }

    std::string Response;
    bool Ok = false;
    if (Item.Req.HasInput && Item.Req.Input >= W.Inputs.size()) {
      Response = renderErrorResponse(
          Item.Id,
          formatString("input %llu out of range (%zu inputs)",
                       static_cast<unsigned long long>(Item.Req.Input),
                       W.Inputs.size()));
    } else {
      const std::string &Cmd = Item.Req.HasInput
                                   ? W.Inputs[Item.Req.Input].CommandLine
                                   : Item.Req.CommandLine;
      const std::vector<bc::Value> &Args =
          Item.Req.HasInput ? W.Inputs[Item.Req.Input].VmArgs
                            : Item.Req.Args;
      auto Record = VM.runOnce(Cmd, Args);
      if (!Record) {
        Response =
            renderErrorResponse(Item.Id, Record.getError().message());
      } else {
        Response = renderRunResponse(Item.Id, L.App, VM.numRuns(), *Record);
        Ok = true;
      }
    }
    Item.Client->send(Response);
    Metrics.add(Ok ? "server.responses.ok" : "server.responses.error");
    finishItem(Item);

    if (Ok) {
      ++RunsSince;
      if (C.CheckpointEvery && RunsSince >= C.CheckpointEvery) {
        Publish();
        RunsSince = 0;
      }
    }
  }

  // Final checkpoint at drain — the knowledge the fold persists.
  if (VM.numRuns() != 0)
    Publish();
}
