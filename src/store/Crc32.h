//===- store/Crc32.h - CRC-32 checksums for store sections ----------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32 (the IEEE 802.3 reflected polynomial, zlib-compatible) used by the
/// knowledge-store file format to detect per-section corruption.  Checked
/// against the standard "123456789" -> 0xCBF43926 test vector in
/// tests/test_store.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_STORE_CRC32_H
#define EVM_STORE_CRC32_H

#include <cstdint>
#include <string_view>

namespace evm {
namespace store {

/// CRC-32 of \p Data (initial value 0xFFFFFFFF, final xor, reflected).
uint32_t crc32(std::string_view Data);

} // namespace store
} // namespace evm

#endif // EVM_STORE_CRC32_H
