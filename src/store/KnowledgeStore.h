//===- store/KnowledgeStore.h - Typed cross-run knowledge document --------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed document behind the persistent knowledge store: everything an
/// EvolvableVM (and the ProfileRepository baseline) accumulates across
/// production runs, in a form that round-trips deterministically through the
/// JSON-lines framing of StoreFile.h.  Canonical section order and %.17g
/// double rendering guarantee save -> load -> save byte identity.
///
/// Section payloads (one JSON object per line):
///
///   confidence  {"conf":C,"cv":CV,"runs":N}            (single line)
///   runs        {"labels":[..],"features":[..]}         (one per run)
///   schema      {"feature":"..","categorical":B,...}    (advisory; derived
///                                                        from runs on write)
///   models      {"method":I,"gen":G,"constant":B,...}   (one per method)
///   repository  {"samples":[..]}                         (one per run)
///
/// The schema section exists for evm-store inspect/validate; loading ignores
/// it because replaying the runs section through ml::Dataset::addExample
/// reconstructs the identical schema (dictionary ids depend only on
/// insertion order, which the runs preserve).
///
/// This layer depends on xicl (feature vectors) and nothing in evolve — the
/// EvolvableVM adapts its own types to/from this document, keeping the
/// dependency arrow pointing evolve -> store.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_STORE_KNOWLEDGESTORE_H
#define EVM_STORE_KNOWLEDGESTORE_H

#include "store/StoreFile.h"
#include "xicl/FeatureVector.h"

#include <cstdint>
#include <string>
#include <vector>

namespace evm {
namespace ml {
class Dataset;
}
namespace store {

/// One recorded production run: the input's feature vector plus the
/// posterior ideal level per method (vm::levelIndex encoding).
struct StoredRun {
  xicl::FeatureVector Features;
  std::vector<int> Labels;
};

/// One method's trained predictor.  \c Tree holds the canonical preorder
/// text of ml::ClassificationTree::serialize() when \c Constant is false.
/// \c Gen is the store generation that last rewrote this model — the merge
/// key for newest-wins-per-method.
struct StoredMethodModel {
  bool Constant = true;
  int ConstantLabel = 0;
  std::string Tree;
  uint64_t Gen = 0;
};

/// The whole document.  Default-constructed == empty store (a warm start
/// from it is exactly a cold start).
struct KnowledgeStore {
  StoreHeader Header;

  bool HasConfidence = false;
  double Confidence = 0;
  double CvConfidence = 0;
  uint64_t RunsSeen = 0;

  std::vector<StoredRun> Runs;
  std::vector<StoredMethodModel> Models;
  /// ProfileRepository history: per-run, per-method sample counts.
  std::vector<std::vector<uint64_t>> RepRuns;

  bool empty() const {
    return !HasConfidence && Runs.empty() && Models.empty() &&
           RepRuns.empty();
  }

  /// Renders the complete store file text (header, canonical sections,
  /// CRCs, end marker).
  std::string serialize() const;

  /// Decodes whatever survives of \p Text.  Damage never throws or aborts:
  /// an unusable header yields an empty store, a bad section loses only
  /// that section, a bad record only that record — all counted in
  /// \p Stats.
  static KnowledgeStore deserialize(const std::string &Text,
                                    StoreReadStats &Stats);

  /// Replays the runs section into \p D (the advisory schema is ignored;
  /// see file comment).  Labels are not written into \p D — callers keep
  /// per-method label rows separately, matching ModelBuilder's layout.
  void replayRunsInto(ml::Dataset &D) const;
};

/// Merges two stores under the documented policy: the higher-generation
/// store wins wholesale per section; models additionally merge per method
/// (newest Gen wins) when both sides describe the same method count; and
/// sections absent from the winner survive from the loser.  Commutative up
/// to tie-breaking (ties prefer \p B, the "incoming" store).
KnowledgeStore mergeStores(const KnowledgeStore &A, const KnowledgeStore &B);

/// Outcome of loadStoreFile.
enum class LoadStatus {
  Loaded,   ///< file existed and was read (possibly with recovered damage)
  NotFound, ///< no file at Path — cold start, not an error
  IoError,  ///< open/read failed for another reason
};

/// Reads and decodes \p Path.  On Loaded, \p KS holds the surviving
/// document and \p Stats the recovery record; on NotFound/IoError, \p KS is
/// the empty store.
LoadStatus loadStoreFile(const std::string &Path, KnowledgeStore &KS,
                         StoreReadStats &Stats);

/// Serializes \p KS and writes it atomically: the text goes to a uniquely
/// named temporary (\p Path + ".tmp.<pid>.<seq>", so concurrent writers to
/// one path never scribble over each other's half-written temporary), then
/// rename()s into place.  Concurrent savers therefore race only on the
/// final atomic rename — the path always holds some writer's *complete*
/// document, never an interleaving.  False on any I/O failure; the previous
/// store file, if any, is left untouched in that case.
bool saveStoreFile(const std::string &Path, const KnowledgeStore &KS);

/// Test-only fault injection for saveStoreFile: when a hook is installed,
/// it is consulted before each save with the destination path and must
/// return -1 (write normally) or a line count N >= 0 — the serialized text
/// is then truncated to its first N lines before being installed,
/// simulating a checkpoint interrupted at a record boundary (power cut
/// after a partial write that still got renamed in).  The hook may be
/// called from any tenant thread; installation itself must not race active
/// saves.  Install nullptr to restore normal behaviour.
using SaveKillHook = int (*)(const std::string &Path);
void setSaveKillHook(SaveKillHook Hook);

} // namespace store
} // namespace evm

#endif // EVM_STORE_KNOWLEDGESTORE_H
