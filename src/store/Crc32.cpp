//===- store/Crc32.cpp ----------------------------------------------------===//

#include "store/Crc32.h"

using namespace evm;

namespace {

/// 256-entry lookup table for polynomial 0xEDB88320 (reflected 0x04C11DB7),
/// built once on first use.
struct Crc32Table {
  uint32_t Entries[256];

  Crc32Table() {
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      Entries[I] = C;
    }
  }
};

} // namespace

uint32_t store::crc32(std::string_view Data) {
  static const Crc32Table Table;
  uint32_t C = 0xFFFFFFFFu;
  for (char Ch : Data)
    C = Table.Entries[(C ^ static_cast<unsigned char>(Ch)) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}
