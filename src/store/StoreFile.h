//===- store/StoreFile.h - JSON-lines framing for the knowledge store -----===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-level framing of the on-disk knowledge store, independent of what the
/// sections mean.  A store file is a sequence of '\n'-terminated JSON lines:
///
///   {"magic":"evmstore","version":1,"generation":G,"app":"<name>"}
///   {"section":"<name>","lines":N,"crc":C}
///   ... N payload lines ...
///   {"section":"<name>","lines":N,"crc":C}
///   ... N payload lines ...
///   {"magic":"evmstore.end","sections":K}
///
/// C is the CRC-32 of the section's payload lines joined with '\n' (plus a
/// trailing '\n'), so a single flipped bit anywhere in a section is caught.
/// The reader is designed around the acceptance rule that a damaged store
/// must never abort a run: every failure drops the smallest possible scope
/// (one section, or the truncated tail) and records it in StoreReadStats,
/// resynchronising on the next line that looks like a section marker.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_STORE_STOREFILE_H
#define EVM_STORE_STOREFILE_H

#include <cstdint>
#include <string>
#include <vector>

namespace evm {
namespace store {

/// The one format version this build reads and writes.  Bump on any change
/// to section payload layout; readers cold-start on mismatch rather than
/// guessing.
inline constexpr uint32_t StoreFormatVersion = 1;

/// Parsed header line of a store file.
struct StoreHeader {
  uint32_t Version = StoreFormatVersion;
  /// Monotonic write counter; the merge policy's "newest wins" key.
  uint64_t Generation = 0;
  /// Free-form application tag (scenario name); mismatched tags merge like
  /// any other store, the tag is advisory for evm-store inspect.
  std::string App;
};

/// One framed section: a name plus its raw payload lines (JSON text,
/// meaning assigned by KnowledgeStore).
struct StoreSection {
  std::string Name;
  std::vector<std::string> Lines;
};

/// What the reader saw; feeds the store.* metrics and evm-store validate.
struct StoreReadStats {
  bool HeaderValid = false;
  bool VersionMismatch = false;
  /// End marker missing or section count short — the file lost its tail.
  bool Truncated = false;
  unsigned SectionsLoaded = 0;
  /// Sections skipped for CRC mismatch, bad framing, or truncation.
  unsigned SectionsDropped = 0;
  /// Records inside intact sections that failed to decode (filled by the
  /// KnowledgeStore layer, which knows what the lines mean).
  unsigned RecordsDropped = 0;

  bool clean() const {
    return HeaderValid && !VersionMismatch && !Truncated &&
           SectionsDropped == 0 && RecordsDropped == 0;
  }
};

/// Renders a complete store file.  Deterministic: same header + sections in
/// the same order produce identical bytes.
std::string renderStoreText(const StoreHeader &Header,
                            const std::vector<StoreSection> &Sections);

/// Parses \p Text, recovering whatever survives.  Returns false only when
/// the header line itself is unusable (wrong magic, wrong version, not
/// JSON) — the caller cold-starts.  On true, \p Sections holds every
/// section whose CRC checked out, in file order.
bool parseStoreText(const std::string &Text, StoreHeader &Header,
                    std::vector<StoreSection> &Sections,
                    StoreReadStats &Stats);

} // namespace store
} // namespace evm

#endif // EVM_STORE_STOREFILE_H
