//===- store/Json.h - Minimal JSON reader for store records ---------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON reader for the knowledge-store's
/// JSON-lines records.  Writers in this codebase emit canonical flat-ish
/// objects through support/Format, so the reader only needs the standard
/// value grammar (objects, arrays, strings, numbers, booleans, null) plus a
/// recursion-depth bound that keeps adversarially nested input from
/// overflowing the stack — store files are untrusted bytes until their CRC
/// checks out, and the CRC itself lives inside a record this parser reads.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_STORE_JSON_H
#define EVM_STORE_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace evm {
namespace store {

/// One parsed JSON value.  Number values keep their raw spelling so
/// integer fields round-trip exactly through strtoull.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return TheKind; }
  bool isObject() const { return TheKind == Kind::Object; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isString() const { return TheKind == Kind::String; }
  bool isNumber() const { return TheKind == Kind::Number; }

  /// Object member named \p Name, or null when absent (or not an object).
  const JsonValue *field(std::string_view Name) const;

  const std::string &str() const { return Str; }
  /// Raw spelling of a number value ("3", "3.0", "1e6"); empty otherwise.
  /// Lets callers distinguish integer from float spellings exactly.
  const std::string &numberText() const { return NumText; }
  const std::vector<JsonValue> &array() const { return Arr; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Obj;
  }

  double asDouble(double Default = 0) const;
  uint64_t asU64(uint64_t Default = 0) const;
  int64_t asI64(int64_t Default = 0) const;
  bool asBool(bool Default = false) const;

  /// Parses \p Text as exactly one JSON value (trailing whitespace allowed,
  /// anything else is an error).  nullopt on malformed input.
  static std::optional<JsonValue> parse(std::string_view Text);

private:
  friend class JsonParser;
  Kind TheKind = Kind::Null;
  bool BoolVal = false;
  double Num = 0;
  std::string NumText; ///< raw spelling, for exact integer reads
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj; ///< insertion order
};

/// Escapes \p S for embedding in a JSON string literal (quotes, backslashes,
/// control characters).
std::string jsonEscape(const std::string &S);

} // namespace store
} // namespace evm

#endif // EVM_STORE_JSON_H
