//===- store/KnowledgeStore.cpp -------------------------------------------===//

#include "store/KnowledgeStore.h"

#include "ml/Dataset.h"
#include "store/Json.h"
#include "support/Format.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <map>

#include <unistd.h>

using namespace evm;
using namespace evm::store;

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

/// %.17g round-trips every finite double exactly through strtod and renders
/// identically on re-save — the keystone of byte-identity.
std::string renderDouble(double V) { return formatString("%.17g", V); }

std::string renderRunLine(const StoredRun &Run) {
  std::string Out = "{\"labels\":[";
  for (size_t I = 0; I != Run.Labels.size(); ++I)
    Out += formatString(I ? ",%d" : "%d", Run.Labels[I]);
  Out += "],\"features\":[";
  for (size_t I = 0; I != Run.Features.size(); ++I) {
    const xicl::Feature &F = Run.Features[I];
    if (I)
      Out += ',';
    if (F.isNumeric())
      Out += formatString("{\"n\":\"%s\",\"v\":%s}",
                          jsonEscape(F.Name).c_str(),
                          renderDouble(F.Num).c_str());
    else
      Out += formatString("{\"n\":\"%s\",\"c\":\"%s\"}",
                          jsonEscape(F.Name).c_str(),
                          jsonEscape(F.Cat).c_str());
  }
  Out += "]}";
  return Out;
}

std::string renderModelLine(size_t Method, const StoredMethodModel &M) {
  std::string Out = formatString(
      "{\"method\":%zu,\"gen\":%llu,\"constant\":%s,\"label\":%d", Method,
      static_cast<unsigned long long>(M.Gen), M.Constant ? "true" : "false",
      M.ConstantLabel);
  if (!M.Constant)
    Out += formatString(",\"tree\":\"%s\"", jsonEscape(M.Tree).c_str());
  Out += '}';
  return Out;
}

std::string renderRepLine(const std::vector<uint64_t> &Samples) {
  std::string Out = "{\"samples\":[";
  for (size_t I = 0; I != Samples.size(); ++I)
    Out += formatString(I ? ",%llu" : "%llu",
                        static_cast<unsigned long long>(Samples[I]));
  Out += "]}";
  return Out;
}

std::vector<std::string> renderSchemaLines(const ml::Dataset &D) {
  std::vector<std::string> Lines;
  for (const ml::FeatureDef &Def : D.schema()) {
    std::string L = formatString("{\"feature\":\"%s\",\"categorical\":%s",
                                 jsonEscape(Def.Name).c_str(),
                                 Def.Categorical ? "true" : "false");
    if (Def.Categorical) {
      // Dictionary in id order, so the rendering is canonical.
      std::vector<const std::string *> ById(Def.Dictionary.size());
      for (const auto &[Value, Id] : Def.Dictionary)
        if (Id >= 0 && static_cast<size_t>(Id) < ById.size())
          ById[Id] = &Value;
      L += ",\"dict\":[";
      for (size_t I = 0; I != ById.size(); ++I)
        L += formatString(I ? ",\"%s\"" : "\"%s\"",
                          ById[I] ? jsonEscape(*ById[I]).c_str() : "");
      L += ']';
    }
    L += '}';
    Lines.push_back(std::move(L));
  }
  return Lines;
}

} // namespace

void KnowledgeStore::replayRunsInto(ml::Dataset &D) const {
  for (const StoredRun &Run : Runs)
    D.addExample(Run.Features, /*Label=*/0);
}

std::string KnowledgeStore::serialize() const {
  std::vector<StoreSection> Sections;

  if (HasConfidence) {
    StoreSection S;
    S.Name = "confidence";
    S.Lines.push_back(formatString(
        "{\"conf\":%s,\"cv\":%s,\"runs\":%llu}", renderDouble(Confidence).c_str(),
        renderDouble(CvConfidence).c_str(),
        static_cast<unsigned long long>(RunsSeen)));
    Sections.push_back(std::move(S));
  }

  if (!Runs.empty()) {
    StoreSection S;
    S.Name = "runs";
    for (const StoredRun &Run : Runs)
      S.Lines.push_back(renderRunLine(Run));
    Sections.push_back(std::move(S));

    // Advisory schema, always recomputed from the runs so a loaded store
    // re-serializes byte-identically.
    ml::Dataset D;
    replayRunsInto(D);
    StoreSection Schema;
    Schema.Name = "schema";
    Schema.Lines = renderSchemaLines(D);
    if (!Schema.Lines.empty())
      Sections.push_back(std::move(Schema));
  }

  if (!Models.empty()) {
    StoreSection S;
    S.Name = "models";
    for (size_t I = 0; I != Models.size(); ++I)
      S.Lines.push_back(renderModelLine(I, Models[I]));
    Sections.push_back(std::move(S));
  }

  if (!RepRuns.empty()) {
    StoreSection S;
    S.Name = "repository";
    for (const std::vector<uint64_t> &Run : RepRuns)
      S.Lines.push_back(renderRepLine(Run));
    Sections.push_back(std::move(S));
  }

  return renderStoreText(Header, Sections);
}

//===----------------------------------------------------------------------===//
// Decoding
//===----------------------------------------------------------------------===//

namespace {

bool decodeRunLine(const std::string &Line, StoredRun &Run) {
  std::optional<JsonValue> V = JsonValue::parse(Line);
  if (!V || !V->isObject())
    return false;
  const JsonValue *Labels = V->field("labels");
  const JsonValue *Features = V->field("features");
  if (!Labels || !Labels->isArray() || !Features || !Features->isArray())
    return false;
  for (const JsonValue &L : Labels->array()) {
    if (!L.isNumber())
      return false;
    Run.Labels.push_back(static_cast<int>(L.asI64(0)));
  }
  for (const JsonValue &F : Features->array()) {
    const JsonValue *Name = F.field("n");
    if (!Name || !Name->isString())
      return false;
    if (const JsonValue *Num = F.field("v")) {
      if (!Num->isNumber())
        return false;
      Run.Features.append(xicl::Feature::numeric(Name->str(), Num->asDouble()));
    } else if (const JsonValue *Cat = F.field("c")) {
      if (!Cat->isString())
        return false;
      Run.Features.append(xicl::Feature::categorical(Name->str(), Cat->str()));
    } else {
      return false;
    }
  }
  return true;
}

bool decodeModelLine(const std::string &Line, size_t &Method,
                     StoredMethodModel &M) {
  std::optional<JsonValue> V = JsonValue::parse(Line);
  if (!V || !V->isObject())
    return false;
  const JsonValue *MethodVal = V->field("method");
  const JsonValue *Constant = V->field("constant");
  const JsonValue *Label = V->field("label");
  if (!MethodVal || !MethodVal->isNumber() || !Constant || !Label ||
      !Label->isNumber())
    return false;
  Method = static_cast<size_t>(MethodVal->asU64(0));
  const JsonValue *Gen = V->field("gen");
  M.Gen = Gen ? Gen->asU64(0) : 0;
  M.Constant = Constant->asBool(true);
  M.ConstantLabel = static_cast<int>(Label->asI64(0));
  if (!M.Constant) {
    const JsonValue *Tree = V->field("tree");
    if (!Tree || !Tree->isString())
      return false;
    M.Tree = Tree->str();
  }
  return true;
}

bool decodeRepLine(const std::string &Line, std::vector<uint64_t> &Samples) {
  std::optional<JsonValue> V = JsonValue::parse(Line);
  if (!V || !V->isObject())
    return false;
  const JsonValue *Arr = V->field("samples");
  if (!Arr || !Arr->isArray())
    return false;
  for (const JsonValue &S : Arr->array()) {
    if (!S.isNumber())
      return false;
    Samples.push_back(S.asU64(0));
  }
  return true;
}

void decodeConfidenceSection(const StoreSection &S, KnowledgeStore &KS,
                             StoreReadStats &Stats) {
  for (const std::string &Line : S.Lines) {
    std::optional<JsonValue> V = JsonValue::parse(Line);
    const JsonValue *Conf = V && V->isObject() ? V->field("conf") : nullptr;
    if (!Conf || !Conf->isNumber()) {
      ++Stats.RecordsDropped;
      continue;
    }
    KS.HasConfidence = true;
    KS.Confidence = Conf->asDouble(0);
    const JsonValue *Cv = V->field("cv");
    KS.CvConfidence = Cv ? Cv->asDouble(0) : 0;
    const JsonValue *Runs = V->field("runs");
    KS.RunsSeen = Runs ? Runs->asU64(0) : 0;
  }
}

void decodeModelsSection(const StoreSection &S, KnowledgeStore &KS,
                         StoreReadStats &Stats) {
  // Rows carry explicit method indices; tolerate gaps by sizing to the
  // largest index seen (missing rows stay default-constructed constants,
  // which the import path treats as baseline predictions).
  std::map<size_t, StoredMethodModel> Rows;
  for (const std::string &Line : S.Lines) {
    size_t Method = 0;
    StoredMethodModel M;
    if (!decodeModelLine(Line, Method, M) || Method > 100000) {
      ++Stats.RecordsDropped;
      continue;
    }
    Rows[Method] = std::move(M);
  }
  if (Rows.empty())
    return;
  KS.Models.assign(Rows.rbegin()->first + 1, StoredMethodModel());
  for (auto &[Method, M] : Rows)
    KS.Models[Method] = std::move(M);
}

} // namespace

KnowledgeStore KnowledgeStore::deserialize(const std::string &Text,
                                           StoreReadStats &Stats) {
  KnowledgeStore KS;
  StoreHeader Header;
  std::vector<StoreSection> Sections;
  if (!parseStoreText(Text, Header, Sections, Stats))
    return KS; // cold start; Stats says why
  KS.Header = Header;

  for (const StoreSection &S : Sections) {
    if (S.Name == "confidence") {
      decodeConfidenceSection(S, KS, Stats);
    } else if (S.Name == "runs") {
      for (const std::string &Line : S.Lines) {
        StoredRun Run;
        if (decodeRunLine(Line, Run))
          KS.Runs.push_back(std::move(Run));
        else
          ++Stats.RecordsDropped;
      }
    } else if (S.Name == "models") {
      decodeModelsSection(S, KS, Stats);
    } else if (S.Name == "repository") {
      for (const std::string &Line : S.Lines) {
        std::vector<uint64_t> Samples;
        if (decodeRepLine(Line, Samples))
          KS.RepRuns.push_back(std::move(Samples));
        else
          ++Stats.RecordsDropped;
      }
    }
    // "schema" is advisory (recomputed from runs on write); unknown
    // sections belong to no format version we read and are dropped on
    // rewrite by construction.
  }
  return KS;
}

//===----------------------------------------------------------------------===//
// Merge
//===----------------------------------------------------------------------===//

KnowledgeStore store::mergeStores(const KnowledgeStore &A,
                                  const KnowledgeStore &B) {
  // Ties prefer B: callers pass (on-disk, in-memory) and the in-memory
  // state should win a same-generation race with its own earlier write.
  const KnowledgeStore &New = B.Header.Generation >= A.Header.Generation ? B : A;
  const KnowledgeStore &Old = &New == &B ? A : B;

  KnowledgeStore Out = New;
  Out.Header.Generation =
      std::max(A.Header.Generation, B.Header.Generation);
  if (Out.Header.App.empty())
    Out.Header.App = Old.Header.App;

  // Newest-wins per method when both sides agree on the method count.
  if (!Old.Models.empty() && Old.Models.size() == Out.Models.size()) {
    for (size_t I = 0; I != Out.Models.size(); ++I)
      if (Old.Models[I].Gen > Out.Models[I].Gen)
        Out.Models[I] = Old.Models[I];
  } else if (Out.Models.empty()) {
    Out.Models = Old.Models;
  }

  // Sections the winner lacks survive from the loser (a store that lost a
  // section to corruption must not erase the other writer's copy).
  if (!Out.HasConfidence && Old.HasConfidence) {
    Out.HasConfidence = true;
    Out.Confidence = Old.Confidence;
    Out.CvConfidence = Old.CvConfidence;
    Out.RunsSeen = Old.RunsSeen;
  }
  if (Out.Runs.empty())
    Out.Runs = Old.Runs;
  if (Out.RepRuns.empty())
    Out.RepRuns = Old.RepRuns;
  return Out;
}

//===----------------------------------------------------------------------===//
// File I/O (cstdio only; library code never touches iostreams)
//===----------------------------------------------------------------------===//

LoadStatus store::loadStoreFile(const std::string &Path, KnowledgeStore &KS,
                                StoreReadStats &Stats) {
  KS = KnowledgeStore();
  Stats = StoreReadStats();

  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return errno == ENOENT ? LoadStatus::NotFound : LoadStatus::IoError;

  std::string Text;
  char Buf[64 << 10];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  bool ReadError = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadError)
    return LoadStatus::IoError;

  KS = KnowledgeStore::deserialize(Text, Stats);
  return LoadStatus::Loaded;
}

namespace {

/// See setSaveKillHook.  Reads are relaxed: the contract requires hook
/// (un)installation to happen while no saves are active.
std::atomic<store::SaveKillHook> KillHook{nullptr};

/// Distinguishes concurrent writers' temporaries within one process; the
/// pid component distinguishes processes sharing a store path.
std::atomic<uint64_t> TmpSeq{0};

/// Truncates \p Text to its first \p Lines '\n'-terminated lines.
std::string firstLines(const std::string &Text, int Lines) {
  size_t Pos = 0;
  for (int L = 0; L != Lines && Pos < Text.size(); ++L)
    Pos = Text.find('\n', Pos) + 1;
  return Text.substr(0, Pos);
}

} // namespace

void store::setSaveKillHook(SaveKillHook Hook) {
  KillHook.store(Hook, std::memory_order_relaxed);
}

bool store::saveStoreFile(const std::string &Path, const KnowledgeStore &KS) {
  std::string Text = KS.serialize();
  if (SaveKillHook Hook = KillHook.load(std::memory_order_relaxed)) {
    int KeepLines = Hook(Path);
    if (KeepLines >= 0)
      Text = firstLines(Text, KeepLines);
  }
  std::string TmpPath =
      Path + ".tmp." + std::to_string(getpid()) + "." +
      std::to_string(TmpSeq.fetch_add(1, std::memory_order_relaxed));

  FILE *F = std::fopen(TmpPath.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok) {
    std::remove(TmpPath.c_str());
    return false;
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return false;
  }
  return true;
}
