//===- store/Json.cpp -----------------------------------------------------===//

#include "store/Json.h"

#include <cstdlib>

using namespace evm;
using namespace evm::store;

const JsonValue *JsonValue::field(std::string_view Name) const {
  if (TheKind != Kind::Object)
    return nullptr;
  for (const auto &[Key, Val] : Obj)
    if (Key == Name)
      return &Val;
  return nullptr;
}

double JsonValue::asDouble(double Default) const {
  return TheKind == Kind::Number ? Num : Default;
}

uint64_t JsonValue::asU64(uint64_t Default) const {
  if (TheKind != Kind::Number || NumText.empty() || NumText[0] == '-')
    return Default;
  char *End = nullptr;
  uint64_t V = std::strtoull(NumText.c_str(), &End, 10);
  // Fractional or exponent spellings fall back to the double value so a
  // hand-edited "3.0" still reads as 3.
  if (End && *End != '\0')
    return Num >= 0 ? static_cast<uint64_t>(Num) : Default;
  return V;
}

int64_t JsonValue::asI64(int64_t Default) const {
  if (TheKind != Kind::Number || NumText.empty())
    return Default;
  char *End = nullptr;
  int64_t V = std::strtoll(NumText.c_str(), &End, 10);
  if (End && *End != '\0')
    return static_cast<int64_t>(Num);
  return V;
}

bool JsonValue::asBool(bool Default) const {
  return TheKind == Kind::Bool ? BoolVal : Default;
}

namespace evm {
namespace store {

/// Recursive-descent parser over a string_view.  Depth-bounded; any error
/// sets Failed and unwinds.
class JsonParser {
public:
  explicit JsonParser(std::string_view Text) : Text(Text) {}

  std::optional<JsonValue> run() {
    JsonValue V = parseValue(/*Depth=*/0);
    skipSpace();
    if (Failed || Pos != Text.size())
      return std::nullopt;
    return V;
  }

private:
  static constexpr int MaxDepth = 64;

  std::string_view Text;
  size_t Pos = 0;
  bool Failed = false;

  void fail() { Failed = true; }

  void skipSpace() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) == Word) {
      Pos += Word.size();
      return true;
    }
    fail();
    return false;
  }

  JsonValue parseValue(int Depth) {
    JsonValue V;
    if (Depth > MaxDepth) {
      fail();
      return V;
    }
    skipSpace();
    if (Pos >= Text.size()) {
      fail();
      return V;
    }
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject(Depth);
    case '[':
      return parseArray(Depth);
    case '"':
      V.TheKind = JsonValue::Kind::String;
      V.Str = parseString();
      return V;
    case 't':
      V.TheKind = JsonValue::Kind::Bool;
      V.BoolVal = true;
      literal("true");
      return V;
    case 'f':
      V.TheKind = JsonValue::Kind::Bool;
      V.BoolVal = false;
      literal("false");
      return V;
    case 'n':
      literal("null");
      return V;
    default:
      return parseNumber();
    }
  }

  JsonValue parseObject(int Depth) {
    JsonValue V;
    V.TheKind = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipSpace();
    if (consume('}'))
      return V;
    while (!Failed) {
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != '"') {
        fail();
        break;
      }
      std::string Key = parseString();
      if (Failed || !consume(':')) {
        fail();
        break;
      }
      V.Obj.emplace_back(std::move(Key), parseValue(Depth + 1));
      if (consume(','))
        continue;
      if (!consume('}'))
        fail();
      break;
    }
    return V;
  }

  JsonValue parseArray(int Depth) {
    JsonValue V;
    V.TheKind = JsonValue::Kind::Array;
    ++Pos; // '['
    skipSpace();
    if (consume(']'))
      return V;
    while (!Failed) {
      V.Arr.push_back(parseValue(Depth + 1));
      if (consume(','))
        continue;
      if (!consume(']'))
        fail();
      break;
    }
    return V;
  }

  std::string parseString() {
    std::string Out;
    ++Pos; // opening quote
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C == '\\') {
        if (Pos >= Text.size())
          break;
        char E = Text[Pos++];
        switch (E) {
        case '"':
        case '\\':
        case '/':
          Out.push_back(E);
          break;
        case 'n':
          Out.push_back('\n');
          break;
        case 't':
          Out.push_back('\t');
          break;
        case 'r':
          Out.push_back('\r');
          break;
        case 'b':
          Out.push_back('\b');
          break;
        case 'f':
          Out.push_back('\f');
          break;
        case 'u': {
          // The store writer only escapes control characters; decode the
          // BMP code point as Latin-1-ish bytes, enough for round-trip of
          // what we emit.
          if (Pos + 4 > Text.size()) {
            fail();
            return Out;
          }
          unsigned Code = 0;
          for (int I = 0; I != 4; ++I) {
            char H = Text[Pos++];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= unsigned(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= unsigned(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= unsigned(H - 'A' + 10);
            else {
              fail();
              return Out;
            }
          }
          if (Code < 0x80) {
            Out.push_back(static_cast<char>(Code));
          } else if (Code < 0x800) {
            Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
            Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
          } else {
            Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
            Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
            Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
          }
          break;
        }
        default:
          fail();
          return Out;
        }
        continue;
      }
      Out.push_back(C);
    }
    fail(); // unterminated
    return Out;
  }

  JsonValue parseNumber() {
    JsonValue V;
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    bool SawDigit = false;
    auto TakeDigits = [&] {
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
        ++Pos;
        SawDigit = true;
      }
    };
    TakeDigits();
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      TakeDigits();
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      TakeDigits();
    }
    if (!SawDigit) {
      fail();
      return V;
    }
    V.TheKind = JsonValue::Kind::Number;
    V.NumText.assign(Text.substr(Start, Pos - Start));
    V.Num = std::strtod(V.NumText.c_str(), nullptr);
    return V;
  }
};

} // namespace store
} // namespace evm

std::optional<JsonValue> JsonValue::parse(std::string_view Text) {
  return JsonParser(Text).run();
}

std::string store::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        Out += "\\u00";
        Out.push_back(Hex[(C >> 4) & 0xF]);
        Out.push_back(Hex[C & 0xF]);
      } else {
        Out.push_back(C);
      }
      break;
    }
  }
  return Out;
}
