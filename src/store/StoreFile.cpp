//===- store/StoreFile.cpp ------------------------------------------------===//

#include "store/StoreFile.h"

#include "store/Crc32.h"
#include "store/Json.h"
#include "support/Format.h"

using namespace evm;
using namespace evm::store;

namespace {

/// Joins payload lines the way both the writer and the CRC check see them:
/// every line '\n'-terminated.
std::string joinPayload(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

/// Splits \p Text into lines, tolerating a missing final newline (a
/// truncated file usually ends mid-line; the partial line is kept so the
/// reader can count it as damage rather than silently ignore it).
std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  size_t Start = 0;
  while (Start < Text.size()) {
    size_t End = Text.find('\n', Start);
    if (End == std::string::npos) {
      Lines.push_back(Text.substr(Start));
      break;
    }
    Lines.push_back(Text.substr(Start, End - Start));
    Start = End + 1;
  }
  return Lines;
}

bool looksLikeSectionMarker(const std::string &Line) {
  return Line.rfind("{\"section\":", 0) == 0;
}

} // namespace

std::string store::renderStoreText(const StoreHeader &Header,
                                   const std::vector<StoreSection> &Sections) {
  std::string Out =
      formatString("{\"magic\":\"evmstore\",\"version\":%u,"
                   "\"generation\":%llu,\"app\":\"%s\"}\n",
                   Header.Version,
                   static_cast<unsigned long long>(Header.Generation),
                   jsonEscape(Header.App).c_str());
  for (const StoreSection &S : Sections) {
    std::string Payload = joinPayload(S.Lines);
    Out += formatString("{\"section\":\"%s\",\"lines\":%zu,\"crc\":%llu}\n",
                        jsonEscape(S.Name).c_str(), S.Lines.size(),
                        static_cast<unsigned long long>(crc32(Payload)));
    Out += Payload;
  }
  Out += formatString("{\"magic\":\"evmstore.end\",\"sections\":%zu}\n",
                      Sections.size());
  return Out;
}

bool store::parseStoreText(const std::string &Text, StoreHeader &Header,
                           std::vector<StoreSection> &Sections,
                           StoreReadStats &Stats) {
  Stats = StoreReadStats();
  Sections.clear();

  std::vector<std::string> Lines = splitLines(Text);
  if (Lines.empty())
    return false;

  // Header: must be line 0, correct magic, supported version.  Anything
  // else means we cannot trust a single byte of the file.
  std::optional<JsonValue> HeaderVal = JsonValue::parse(Lines[0]);
  if (!HeaderVal || !HeaderVal->isObject())
    return false;
  const JsonValue *Magic = HeaderVal->field("magic");
  if (!Magic || !Magic->isString() || Magic->str() != "evmstore")
    return false;
  const JsonValue *Version = HeaderVal->field("version");
  uint64_t V = Version ? Version->asU64(0) : 0;
  if (V != StoreFormatVersion) {
    Stats.VersionMismatch = true;
    return false;
  }
  Stats.HeaderValid = true;
  Header.Version = static_cast<uint32_t>(V);
  const JsonValue *Gen = HeaderVal->field("generation");
  Header.Generation = Gen ? Gen->asU64(0) : 0;
  const JsonValue *App = HeaderVal->field("app");
  Header.App = App && App->isString() ? App->str() : "";

  bool SawEnd = false;
  uint64_t DeclaredSections = 0;
  size_t I = 1;
  while (I < Lines.size()) {
    const std::string &Line = Lines[I];

    if (Line.rfind("{\"magic\":\"evmstore.end\"", 0) == 0) {
      std::optional<JsonValue> EndVal = JsonValue::parse(Line);
      if (EndVal && EndVal->isObject()) {
        SawEnd = true;
        const JsonValue *Count = EndVal->field("sections");
        DeclaredSections = Count ? Count->asU64(0) : 0;
      }
      ++I;
      continue;
    }

    if (!looksLikeSectionMarker(Line)) {
      // Garbage between sections (corruption landed on a marker line, or a
      // payload line outlived its frame).  Resync on the next marker.
      ++Stats.SectionsDropped;
      ++I;
      while (I < Lines.size() && !looksLikeSectionMarker(Lines[I]) &&
             Lines[I].rfind("{\"magic\":\"evmstore.end\"", 0) != 0)
        ++I;
      continue;
    }

    std::optional<JsonValue> MarkerVal = JsonValue::parse(Line);
    const JsonValue *Name =
        MarkerVal && MarkerVal->isObject() ? MarkerVal->field("section")
                                           : nullptr;
    const JsonValue *NumLines =
        MarkerVal && MarkerVal->isObject() ? MarkerVal->field("lines")
                                           : nullptr;
    const JsonValue *Crc =
        MarkerVal && MarkerVal->isObject() ? MarkerVal->field("crc") : nullptr;
    if (!Name || !Name->isString() || !NumLines || !Crc) {
      ++Stats.SectionsDropped;
      ++I;
      continue;
    }

    uint64_t N = NumLines->asU64(0);
    ++I; // past the marker
    if (I + N > Lines.size() ||
        (I + N == Lines.size() && !Text.empty() && Text.back() != '\n')) {
      // Payload runs off the end of the file (or its last line lost its
      // newline): the tail is gone.
      Stats.Truncated = true;
      ++Stats.SectionsDropped;
      break;
    }

    StoreSection S;
    S.Name = Name->str();
    S.Lines.assign(Lines.begin() + I, Lines.begin() + I + N);
    I += N;

    if (crc32(joinPayload(S.Lines)) != Crc->asU64(0)) {
      ++Stats.SectionsDropped;
      continue;
    }
    ++Stats.SectionsLoaded;
    Sections.push_back(std::move(S));
  }

  if (!SawEnd || DeclaredSections != Stats.SectionsLoaded + Stats.SectionsDropped)
    Stats.Truncated = true;
  // Canonical files always end in a newline; a missing one means the last
  // line was cut mid-write even when it still parsed.
  if (Text.empty() || Text.back() != '\n')
    Stats.Truncated = true;
  return true;
}
