//===- harness/Experiments.cpp --------------------------------------------==//

#include "harness/Experiments.h"

#include "support/Format.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "vm/AOS.h"
#include "vm/Engine.h"

#include <algorithm>
#include <cassert>

using namespace evm;
using namespace evm::harness;

namespace {

ExperimentConfig makeConfig(uint64_t Seed) {
  ExperimentConfig C;
  C.Seed = Seed;
  return C;
}

/// Collects the speedup column of a scenario result.
std::vector<double> speedups(const ScenarioResult &R) {
  std::vector<double> Out;
  Out.reserve(R.Runs.size());
  for (const RunMetrics &M : R.Runs)
    Out.push_back(M.SpeedupVsDefault);
  return Out;
}

/// Rolls a scenario's totals into the bench-wide counters.
void addRunTotals(MetricsRegistry *Metrics, const ScenarioResult &R) {
  if (!Metrics)
    return;
  for (const RunMetrics &M : R.Runs) {
    Metrics->add("bench.cycles.total", M.Cycles);
    Metrics->add("bench.compiles.total", M.Compiles);
    Metrics->add("bench.runs.total");
  }
}

} // namespace

std::string harness::runTable1(uint64_t Seed, MetricsRegistry *Metrics) {
  TextTable Table({"Program", "Suite", "#Inputs", "Min(s)", "Max(s)",
                   "FeatTotal", "FeatUsed", "conf", "acc"});
  std::vector<wl::Workload> All = wl::buildAllWorkloads(Seed);
  for (const wl::Workload &W : All) {
    ScenarioRunner Runner(W, makeConfig(Seed));
    size_t Runs = Runner.recommendedRuns();
    std::vector<size_t> Order = Runner.makeInputOrder(/*OrderSeed=*/1, Runs);

    // Default running-time range over the whole input set (the paper's
    // Min/Max columns describe the benchmark's inputs).
    double MinSec = 1e30, MaxSec = 0;
    for (size_t I = 0; I != W.Inputs.size(); ++I) {
      double Sec = Runner.config().Timing.toSeconds(Runner.defaultCycles(I));
      MinSec = std::min(MinSec, Sec);
      MaxSec = std::max(MaxSec, Sec);
    }

    ScenarioResult Evolve = Runner.runEvolve(Order);
    addRunTotals(Metrics, Evolve);
    if (Metrics) {
      Metrics->setGauge("table1." + W.Name + ".confidence",
                        Evolve.FinalConfidence);
      Metrics->setGauge("table1." + W.Name + ".accuracy",
                        Evolve.MeanAccuracy);
    }

    Table.beginRow();
    Table.addCell(W.Name);
    Table.addCell(W.Suite);
    Table.addCell(static_cast<int64_t>(W.Inputs.size()));
    Table.addCell(MinSec, 1);
    Table.addCell(MaxSec, 1);
    Table.addCell(static_cast<int64_t>(Evolve.RawFeatures));
    Table.addCell(static_cast<int64_t>(Evolve.UsedFeatures));
    Table.addCell(Evolve.FinalConfidence, 2);
    Table.addCell(Evolve.MeanAccuracy, 2);
  }
  return "Table I: benchmarks (input sets, default run-time range, feature\n"
         "selection, and prediction confidence/accuracy)\n\n" +
         Table.render();
}

std::string harness::runFig8(const std::string &WorkloadName, uint64_t Seed,
                             MetricsRegistry *Metrics) {
  wl::Workload W = wl::buildWorkload(WorkloadName, Seed);
  ScenarioRunner Runner(W, makeConfig(Seed));
  size_t Runs = Runner.recommendedRuns();
  std::vector<size_t> Order = Runner.makeInputOrder(1, Runs);

  ScenarioResult Evolve = Runner.runEvolve(Order);
  ScenarioResult Rep = Runner.runRep(Order);
  addRunTotals(Metrics, Evolve);
  addRunTotals(Metrics, Rep);
  if (Metrics) {
    Metrics->setGauge("fig8." + WorkloadName + ".final_confidence",
                      Evolve.FinalConfidence);
    Metrics->setGauge("fig8." + WorkloadName + ".median_evolve_speedup",
                      median(speedups(Evolve)));
    Metrics->setGauge("fig8." + WorkloadName + ".median_rep_speedup",
                      median(speedups(Rep)));
  }

  TextTable Table({"run", "conf", "acc", "evolveSpeedup", "repSpeedup",
                   "predicted"});
  for (size_t I = 0; I != Evolve.Runs.size(); ++I) {
    Table.beginRow();
    Table.addCell(static_cast<int64_t>(I + 1));
    Table.addCell(Evolve.Runs[I].Confidence, 3);
    Table.addCell(Evolve.Runs[I].Accuracy, 3);
    Table.addCell(Evolve.Runs[I].SpeedupVsDefault, 3);
    Table.addCell(I < Rep.Runs.size() ? Rep.Runs[I].SpeedupVsDefault : 1.0,
                  3);
    Table.addCell(Evolve.Runs[I].UsedPrediction ? "yes" : "no");
  }
  return formatString("Figure 8 (%s): temporal curves of confidence, "
                      "prediction accuracy,\nand speedup (Evolve vs Rep) "
                      "across %zu runs\n\n",
                      WorkloadName.c_str(), Runs) +
         Table.render();
}

std::string harness::runFig9(const std::string &WorkloadName, uint64_t Seed,
                             MetricsRegistry *Metrics) {
  wl::Workload W = wl::buildWorkload(WorkloadName, Seed);
  ScenarioRunner Runner(W, makeConfig(Seed));
  size_t Runs = Runner.recommendedRuns();
  std::vector<size_t> Order = Runner.makeInputOrder(1, Runs);

  ScenarioResult Evolve = Runner.runEvolve(Order);
  ScenarioResult Rep = Runner.runRep(Order);
  addRunTotals(Metrics, Evolve);
  addRunTotals(Metrics, Rep);
  if (Metrics)
    Metrics->setGauge("fig9." + WorkloadName + ".median_evolve_speedup",
                      median(speedups(Evolve)));

  // Drop the warmup runs where Evolve made no guarded prediction (the
  // paper excludes the runs before prediction starts), then sort ascending
  // by default running time.
  struct Row {
    double DefaultSec;
    double EvolveSpeedup;
    double RepSpeedup;
  };
  std::vector<Row> Rows;
  for (size_t I = 0; I != Evolve.Runs.size(); ++I) {
    if (!Evolve.Runs[I].UsedPrediction)
      continue;
    Row R;
    R.DefaultSec = Runner.config().Timing.toSeconds(
        Runner.defaultCycles(Evolve.Runs[I].InputIndex));
    R.EvolveSpeedup = Evolve.Runs[I].SpeedupVsDefault;
    R.RepSpeedup =
        I < Rep.Runs.size() ? Rep.Runs[I].SpeedupVsDefault : 1.0;
    Rows.push_back(R);
  }
  std::sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    return A.DefaultSec < B.DefaultSec;
  });

  TextTable Table({"defaultTime(s)", "evolveSpeedup", "repSpeedup"});
  for (const Row &R : Rows) {
    Table.beginRow();
    Table.addCell(R.DefaultSec, 2);
    Table.addCell(R.EvolveSpeedup, 3);
    Table.addCell(R.RepSpeedup, 3);
  }
  return formatString("Figure 9 (%s): speedup vs default running time "
                      "(runs sorted by\ndefault time; prediction-guarded "
                      "warmup runs excluded)\n\n",
                      WorkloadName.c_str()) +
         Table.render();
}

std::string harness::runFig10(uint64_t Seed, MetricsRegistry *Metrics) {
  std::string Out = "Figure 10: speedup boxplots (Evolve vs Rep), "
                    "normalized to the default VM\n\n";
  TextTable Table({"Program", "Scen", "min", "q25", "median", "q75", "max"});
  std::string Boxes;
  const double AxisMin = 0.9, AxisMax = 2.0;

  for (const std::string &Name : wl::workloadNames()) {
    wl::Workload W = wl::buildWorkload(Name, Seed);
    ScenarioRunner Runner(W, makeConfig(Seed));
    size_t Runs = Runner.recommendedRuns();
    std::vector<size_t> Order = Runner.makeInputOrder(1, Runs);
    ScenarioResult Evolve = Runner.runEvolve(Order);
    ScenarioResult Rep = Runner.runRep(Order);
    addRunTotals(Metrics, Evolve);
    addRunTotals(Metrics, Rep);

    for (const ScenarioResult *R : {&Evolve, &Rep}) {
      BoxStats S = computeBoxStats(speedups(*R));
      if (Metrics)
        Metrics->setGauge("fig10." + Name + "." + R->ScenarioName +
                              ".median_speedup",
                          S.Median);
      Table.beginRow();
      Table.addCell(Name);
      Table.addCell(R->ScenarioName);
      Table.addCell(S.Min, 3);
      Table.addCell(S.Q25, 3);
      Table.addCell(S.Median, 3);
      Table.addCell(S.Q75, 3);
      Table.addCell(S.Max, 3);
      Boxes += formatString("%-11s %-7s |%s|\n", Name.c_str(),
                            R->ScenarioName.c_str(),
                            renderBoxLine(S.Min, S.Q25, S.Median, S.Q75,
                                          S.Max, AxisMin, AxisMax, 56)
                                .c_str());
    }
  }
  Out += Table.render();
  Out += formatString("\nASCII boxplots (axis %.1fx .. %.1fx):\n", AxisMin,
                      AxisMax);
  Out += Boxes;
  return Out;
}

std::string harness::runOverheadAnalysis(uint64_t Seed,
                                         MetricsRegistry *Metrics) {
  TextTable Table({"Program", "meanOverhead%", "maxOverhead%"});
  for (const std::string &Name : wl::workloadNames()) {
    wl::Workload W = wl::buildWorkload(Name, Seed);
    ScenarioRunner Runner(W, makeConfig(Seed));
    size_t Runs = Runner.recommendedRuns();
    std::vector<size_t> Order = Runner.makeInputOrder(1, Runs);
    ScenarioResult Evolve = Runner.runEvolve(Order);
    addRunTotals(Metrics, Evolve);

    std::vector<double> Fractions;
    for (const RunMetrics &M : Evolve.Runs)
      Fractions.push_back(100.0 * static_cast<double>(M.OverheadCycles) /
                          static_cast<double>(M.Cycles));
    if (Metrics)
      Metrics->setGauge("overhead." + Name + ".mean_pct", mean(Fractions));
    Table.beginRow();
    Table.addCell(Name);
    Table.addCell(mean(Fractions), 3);
    Table.addCell(quantile(Fractions, 1.0), 3);
  }
  return "Overhead analysis (Sec. V.B.2): XICL feature extraction +\n"
         "prediction time as a percentage of run time\n\n" +
         Table.render();
}

std::string harness::runAsyncCompileAnalysis(uint64_t Seed,
                                             MetricsRegistry *Metrics) {
  // One representative (mid-sized) input per workload, run under the plain
  // adaptive system: the ablation isolates the compilation pipeline, so
  // the evolvable-VM machinery stays out of the picture.
  const char *Names[] = {"Compress", "Mtrt", "MolDyn", "RayTracer"};
  TextTable Table({"Program", "syncCycles", "asyncCycles", "speedup",
                   "syncStall", "asyncStall", "overlapped", "dropped",
                   "deterministic"});
  for (const char *Name : Names) {
    wl::Workload W = wl::buildWorkload(Name, Seed);
    const wl::InputCase &Input = W.Inputs[W.Inputs.size() / 2];

    auto runWithWorkers = [&](uint64_t Workers) {
      vm::TimingModel TM;
      TM.NumCompileWorkers = Workers;
      vm::AdaptivePolicy Policy(TM);
      vm::ExecutionEngine Engine(W.Module, TM, &Policy);
      auto R = Engine.run(Input.VmArgs);
      assert(static_cast<bool>(R) && "workload run trapped");
      return *R;
    };

    vm::RunResult Sync = runWithWorkers(0);
    vm::RunResult Async = runWithWorkers(2);
    vm::RunResult Async2 = runWithWorkers(2);
    bool Deterministic =
        Async.Cycles == Async2.Cycles &&
        Async.stallCompileCycles() == Async2.stallCompileCycles() &&
        Async.overlappedCompileCycles() == Async2.overlappedCompileCycles() &&
        Async.ReturnValue.equals(Async2.ReturnValue);

    if (Metrics) {
      std::string N = Name;
      Metrics->add("bench.cycles.total",
                   Sync.Cycles + Async.Cycles + Async2.Cycles);
      Metrics->add("bench.compiles.total", Sync.Compiles.size() +
                                               Async.Compiles.size() +
                                               Async2.Compiles.size());
      Metrics->add("bench.runs.total", 3);
      Metrics->setGauge("async." + N + ".speedup",
                        static_cast<double>(Sync.Cycles) /
                            static_cast<double>(Async.Cycles));
      Metrics->add("async." + N + ".deterministic", Deterministic ? 1 : 0);
    }

    Table.beginRow();
    Table.addCell(Name);
    Table.addCell(static_cast<int64_t>(Sync.Cycles));
    Table.addCell(static_cast<int64_t>(Async.Cycles));
    Table.addCell(static_cast<double>(Sync.Cycles) /
                      static_cast<double>(Async.Cycles),
                  3);
    Table.addCell(static_cast<int64_t>(Sync.stallCompileCycles()));
    Table.addCell(static_cast<int64_t>(Async.stallCompileCycles()));
    Table.addCell(static_cast<int64_t>(Async.overlappedCompileCycles()));
    Table.addCell(static_cast<int64_t>(Async.droppedCompiles()));
    Table.addCell(Deterministic ? "yes" : "NO");
  }
  return "Background compilation ablation: synchronous engine vs the\n"
         "2-worker background pipeline (adaptive policy, one mid-sized\n"
         "input per workload).  'overlapped' cycles run on worker\n"
         "timelines and never stall the application clock.\n\n" +
         Table.render();
}

std::string harness::runSensitivity(uint64_t Seed,
                                    MetricsRegistry *Metrics) {
  std::string Out =
      "Sensitivity analysis (Sec. V.B.3)\n\n"
      "(a) Confidence threshold sweep on Mtrt: higher thresholds are more\n"
      "conservative (smaller speedup range, better worst case)\n\n";
  {
    TextTable Table({"THc", "minSpeedup", "maxSpeedup", "medianSpeedup",
                     "predictedRuns"});
    for (double Threshold : {0.5, 0.7, 0.9}) {
      wl::Workload W = wl::buildWorkload("Mtrt", Seed);
      ExperimentConfig C = makeConfig(Seed);
      C.ConfidenceThreshold = Threshold;
      ScenarioRunner Runner(W, C);
      std::vector<size_t> Order = Runner.makeInputOrder(1, 70);
      ScenarioResult Evolve = Runner.runEvolve(Order);
      addRunTotals(Metrics, Evolve);
      if (Metrics)
        Metrics->setGauge(formatString("sensitivity.thc_%.1f.median_speedup",
                                       Threshold),
                          median(speedups(Evolve)));
      std::vector<double> S = speedups(Evolve);
      int64_t Predicted = 0;
      for (const RunMetrics &M : Evolve.Runs)
        Predicted += M.UsedPrediction ? 1 : 0;
      Table.beginRow();
      Table.addCell(Threshold, 1);
      Table.addCell(quantile(S, 0.0), 3);
      Table.addCell(quantile(S, 1.0), 3);
      Table.addCell(median(S), 3);
      Table.addCell(Predicted);
    }
    Out += Table.render();
  }

  Out += "\n(b) Input-order sensitivity on RayTracer: worst-case speedup\n"
         "across 5 arrival orders (Rep reacts to order; Evolve's guard\n"
         "suppresses immature predictions)\n\n";
  {
    TextTable Table({"order", "repMinSpeedup", "evolveMinSpeedup",
                     "repMedian", "evolveMedian"});
    wl::Workload W = wl::buildWorkload("RayTracer", Seed);
    for (uint64_t OrderSeed = 1; OrderSeed <= 5; ++OrderSeed) {
      ScenarioRunner Runner(W, makeConfig(Seed));
      std::vector<size_t> Order = Runner.makeInputOrder(OrderSeed, 30);
      ScenarioResult Rep = Runner.runRep(Order);
      ScenarioResult Evolve = Runner.runEvolve(Order);
      addRunTotals(Metrics, Rep);
      addRunTotals(Metrics, Evolve);
      std::vector<double> RepS = speedups(Rep), EvS = speedups(Evolve);
      Table.beginRow();
      Table.addCell(static_cast<int64_t>(OrderSeed));
      Table.addCell(quantile(RepS, 0.0), 3);
      Table.addCell(quantile(EvS, 0.0), 3);
      Table.addCell(median(RepS), 3);
      Table.addCell(median(EvS), 3);
    }
    Out += Table.render();
  }
  return Out;
}
