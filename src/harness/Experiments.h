//===- harness/Experiments.h - Table/figure regeneration ------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One entry point per table/figure of the paper's evaluation (Sec. V).
/// Each returns printable text (tables and ASCII series/boxplots) so the
/// bench binaries stay trivial; EXPERIMENTS.md records the outputs against
/// the paper's numbers.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_HARNESS_EXPERIMENTS_H
#define EVM_HARNESS_EXPERIMENTS_H

#include "harness/Scenario.h"
#include "support/Metrics.h"

#include <string>

namespace evm {
namespace harness {

/// Each experiment optionally registers its headline numbers (plus
/// bench.cycles.total / bench.compiles.total roll-ups) into \p Metrics —
/// the machine-readable channel behind every bench binary's --json flag.

/// Table I: benchmarks, input-set sizes, default running-time ranges,
/// raw/used feature counts, and final prediction confidence/accuracy.
std::string runTable1(uint64_t Seed, MetricsRegistry *Metrics = nullptr);

/// Figure 8: temporal curves (confidence, accuracy, Evolve and Rep
/// speedups per run) for one workload; the paper shows Mtrt and RayTracer.
std::string runFig8(const std::string &WorkloadName, uint64_t Seed,
                    MetricsRegistry *Metrics = nullptr);

/// Figure 9: speedup-vs-default-running-time correlation for one workload,
/// rows sorted by default time; the paper shows Mtrt and Compress.
std::string runFig9(const std::string &WorkloadName, uint64_t Seed,
                    MetricsRegistry *Metrics = nullptr);

/// Figure 10: speedup boxplots (min/25%/median/75%/max) for Evolve and Rep
/// over all benchmarks.
std::string runFig10(uint64_t Seed, MetricsRegistry *Metrics = nullptr);

/// Sec. V.B.2: overhead of feature extraction + prediction as a fraction
/// of run time, per workload (mean and max).
std::string runOverheadAnalysis(uint64_t Seed,
                                MetricsRegistry *Metrics = nullptr);

/// Background-compilation ablation: total virtual cycles and stall vs
/// overlapped compile cycles for the synchronous engine
/// (NumCompileWorkers=0) against the background pipeline (workers=1,2) on
/// four representative workloads, plus a bit-identity check across
/// repeated async runs.
std::string runAsyncCompileAnalysis(uint64_t Seed,
                                    MetricsRegistry *Metrics = nullptr);

/// Sec. V.B.3: sensitivity to the confidence threshold (on Mtrt) and to
/// the input arrival order (on RayTracer, Rep vs Evolve).
std::string runSensitivity(uint64_t Seed, MetricsRegistry *Metrics = nullptr);

} // namespace harness
} // namespace evm

#endif // EVM_HARNESS_EXPERIMENTS_H
