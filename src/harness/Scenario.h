//===- harness/Scenario.h - The paper's three execution scenarios --------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one workload under the paper's three scenarios (Sec. V-B):
///
///   Default — the reactive cost-benefit adaptive system; no cross-run
///             state.
///   Rep     — the repository-based optimizer: cross-run profile history
///             drives per-method <sample-count, level> triggers (with the
///             adaptive system still running underneath), unconditionally
///             from the first runs.
///   Evolve  — the evolvable VM: XICL features + per-method trees +
///             discriminative prediction.
///
/// All scenarios replay the *same* randomly drawn input sequence, so
/// speedups pair runs against the default time of the identical input.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_HARNESS_SCENARIO_H
#define EVM_HARNESS_SCENARIO_H

#include "evolve/EvolvableVM.h"
#include "support/Trace.h"
#include "workloads/Workload.h"

#include <string>
#include <vector>

namespace evm {
namespace evolve {
class ProfileRepository;
}
namespace harness {

/// Per-run measurements (fields beyond Cycles are Evolve-only).
struct RunMetrics {
  size_t InputIndex = 0;
  uint64_t Cycles = 0;
  double SpeedupVsDefault = 1.0;
  // Evolve-only:
  double Confidence = 0; ///< after the run
  double Accuracy = 0;
  bool UsedPrediction = false;
  bool HadPrediction = false;
  uint64_t OverheadCycles = 0;
  uint64_t Compiles = 0; ///< compilation events in the run (0 for Default,
                         ///< whose cached runs only record cycles)
};

/// One scenario's full trace plus its aggregates.
struct ScenarioResult {
  std::string ScenarioName;
  std::vector<RunMetrics> Runs;
  // Evolve-only aggregates:
  double FinalConfidence = 0;
  double MeanConfidence = 0;
  double MeanAccuracy = 0; ///< over runs where a prediction existed
  size_t RawFeatures = 0;
  size_t UsedFeatures = 0;
};

/// Experiment knobs shared by all scenarios of one comparison.
struct ExperimentConfig {
  vm::TimingModel Timing;
  uint64_t Seed = 1;
  size_t NumRuns = 30;
  double Gamma = 0.7;
  double ConfidenceThreshold = 0.7;
  uint64_t MaxCyclesPerRun = 4ULL << 32;
};

/// The EvolveConfig every harness-created EvolvableVM runs under.  Shared
/// with the prediction server's lanes, whose determinism pin (serial
/// request stream == runEvolveLaunches batch) requires the identical
/// configuration mapping.
evolve::EvolveConfig makeEvolveConfig(const ExperimentConfig &Config);

/// Runs all three scenarios for one workload over one input sequence.
class ScenarioRunner {
public:
  ScenarioRunner(const wl::Workload &W, ExperimentConfig Config);

  /// The input sequence (indices into W.Inputs), drawn with replacement.
  /// Regenerate with a different sub-seed via makeInputOrder.
  std::vector<size_t> makeInputOrder(uint64_t OrderSeed, size_t Count) const;

  /// Default time of input \p InputIndex, computed once and cached.
  uint64_t defaultCycles(size_t InputIndex);

  ScenarioResult runDefault(const std::vector<size_t> &Order);
  ScenarioResult runRep(const std::vector<size_t> &Order);
  ScenarioResult runEvolve(const std::vector<size_t> &Order);

  /// Multi-launch Evolve: \p Order is split into \p NumLaunches contiguous
  /// chunks and each chunk runs in a *fresh* EvolvableVM that warm-starts
  /// from the knowledge store at \p StorePath and checkpoints back into it
  /// (read-modify-write through store::mergeStores) when its chunk ends —
  /// the paper's "VM evolves across process lifetimes", persisted through
  /// the store instead of the in-process object.  Because warm start
  /// restores the full training set, models, confidence, and RunsSeen
  /// (sample-phase continuity), the result is cycle-identical to
  /// runEvolve(Order) in one process.  The store file's I/O status is not
  /// surfaced here; launches degrade to cold start on damage (see
  /// EvolvableVM::warmStart).
  ScenarioResult runEvolveLaunches(const std::vector<size_t> &Order,
                                   size_t NumLaunches,
                                   const std::string &StorePath);

  /// Multi-launch Rep: same chunking, with the ProfileRepository's
  /// histogram rows persisted through the store's repository section.
  /// Cycle-identical to runRep(Order) in one process.
  ScenarioResult runRepLaunches(const std::vector<size_t> &Order,
                                size_t NumLaunches,
                                const std::string &StorePath);

  /// Attaches an event recorder to every engine the runner creates
  /// (default-measurement runs, Rep runs, and the evolvable VM).  Set it
  /// before the first run; may be null.
  void setTracer(TraceRecorder *T) { Tracer = T; }

  /// Attaches a decision ledger to every evolvable VM the runner creates;
  /// each Evolve run then appends one DecisionRecord (tagged with the
  /// workload name, BaselineCycles backfilled from the default-time cache).
  /// Observation only — see EvolvableVM::setLedger.  May be null.
  void setLedger(DecisionLedger *L) { Ledger = L; }

  const wl::Workload &workload() const { return W; }
  const ExperimentConfig &config() const { return Config; }

  /// Recommended run count for this workload (the paper: 30, or 70 for
  /// programs with many inputs).
  size_t recommendedRuns() const {
    return W.Inputs.size() >= 60 ? 70 : 30;
  }

private:
  /// Runs Order[Begin, End) through \p VM, appending per-run metrics and
  /// the confidence/accuracy series (shared by the single-process and
  /// multi-launch Evolve paths).
  void runEvolveSpan(evolve::EvolvableVM &VM, const std::vector<size_t> &Order,
                     size_t Begin, size_t End, ScenarioResult &Result,
                     std::vector<double> &Confidences,
                     std::vector<double> &Accuracies);

  /// Runs Order[Begin, End) under \p Repo's triggers.  \p Begin doubles as
  /// the global run ordinal for the per-run sample phase, which is what
  /// keeps multi-launch Rep cycle-identical to single-process Rep.
  void runRepSpan(evolve::ProfileRepository &Repo,
                  const std::vector<size_t> &Sizes,
                  const std::vector<size_t> &Order, size_t Begin, size_t End,
                  ScenarioResult &Result);

  const wl::Workload &W;
  ExperimentConfig Config;
  xicl::XFMethodRegistry Registry;
  xicl::FileStore Files;
  std::vector<uint64_t> DefaultCache; ///< 0 = not yet measured
  TraceRecorder *Tracer = nullptr;
  DecisionLedger *Ledger = nullptr;
};

} // namespace harness
} // namespace evm

#endif // EVM_HARNESS_SCENARIO_H
