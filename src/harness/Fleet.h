//===- harness/Fleet.h - Parallel multi-tenant fleet runner ---------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a *fleet* of independent EvolvableVM tenants across a std::thread
/// pool — the scaling layer the ROADMAP's "heavy traffic" north star asks
/// for.  Each tenant models one production user of one application: it
/// drives its own deterministic input stream (seeded per-tenant from the
/// fleet seed), evolves its own VM, and — when a shard directory is given —
/// periodically checkpoints its knowledge into a *per-tenant shard* store
/// file.  After every tenant finishes, the coordinator folds the shards
/// into one per-application global store under the existing
/// generation-keyed newest-wins store::mergeStores policy, so cross-tenant
/// learning flows between fleet launches without any global lock on the
/// hot path (tenants only ever touch their own shard file while running).
///
/// Determinism by construction
/// ---------------------------
/// The thread pool only decides *which worker host-executes which tenant
/// when*; it never feeds information between tenants:
///
///   - every tenant's behaviour is a pure function of (fleet seed, tenant
///     id, the global stores frozen at fleet start) — tenants never read
///     another tenant's shard or the global store mid-flight;
///   - tenant results land in a pre-sized vector indexed by tenant id, and
///     every reduction (aggregate JSON, fleet.* metrics, fleet.* trace
///     events, shard merges) walks that vector in tenant-ID order on the
///     coordinator thread after the pool joins;
///   - shard generations are striped per tenant (see GenerationStride), so
///     the newest-wins merge is totally ordered and the folded global
///     store is invariant under merge-order permutations.
///
/// Hence `--fleet N --threads T` produces byte-identical aggregate JSON
/// for every T, and T=1 equals running the tenants one after another
/// through the serial ScenarioRunner::runEvolveLaunches path.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_HARNESS_FLEET_H
#define EVM_HARNESS_FLEET_H

#include "harness/Scenario.h"
#include "support/Metrics.h"
#include "support/Profiler.h"
#include "support/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace evm {
namespace harness {

/// Builds tenant workloads: any paper benchmark by name, plus "route" (the
/// running example — small enough for tests and the soak lane).  Shared
/// with the prediction server's per-app lanes, which must realize exactly
/// the fleet's name -> workload mapping for the determinism pin to hold.
wl::Workload buildFleetWorkload(const std::string &Name, uint64_t Seed);

/// Fleet-level knobs.  Everything except NumThreads changes the result;
/// NumThreads only changes how fast it arrives.
struct FleetConfig {
  /// How many independent EvolvableVM tenants to run.
  size_t NumTenants = 4;
  /// Worker threads; clamped to [1, NumTenants].  Any value produces
  /// byte-identical results.
  size_t NumThreads = 1;
  /// Production runs each tenant executes.
  size_t RunsPerTenant = 12;
  /// Fleet seed: workload generation and every tenant's input stream
  /// derive from it (tenant i draws order sub-seed i+1).
  uint64_t Seed = 1;
  /// The multiprogram mix: tenant i runs Workloads[i % size].  Accepts any
  /// wl::workloadNames() entry plus "route" (the paper's Fig. 2 example,
  /// cheap enough for tests).  Must not be empty.
  std::vector<std::string> Workloads = {"route"};
  /// Shard directory: tenant i checkpoints to shard-<i>.store and the
  /// coordinator folds shards into global-<app>.store.  Empty = storeless
  /// (tenants still deterministic, nothing persisted).
  std::string ShardDir;
  /// Checkpoint cadence in runs: every MergeEvery runs the tenant ends a
  /// "launch", checkpoints its shard, and warm-starts a fresh VM from it
  /// (exactly ScenarioRunner::runEvolveLaunches chunking).  0 = one
  /// checkpoint at the end.  Ignored without a shard directory.
  size_t MergeEvery = 0;
  /// Per-tenant phase profiling (virtual-cycle deterministic; off saves a
  /// little host time).
  bool CapturePhases = true;
  /// Per-tenant decision ledgers: every Evolve run appends one
  /// DecisionRecord (tagged with its tenant id), folded in tenant-ID order
  /// into FleetResult::Decisions after the pool joins.  Observation only —
  /// on/off is cycle-identical, and the aggregate JSON never changes.
  /// No-op when EVM_DECISIONS is compiled out.
  bool CaptureDecisions = false;
  /// Scenario knobs shared by all tenants (Seed inside it is overridden by
  /// the fleet seed).
  ExperimentConfig Experiment;
};

/// One tenant's reduced outcome, in tenant-ID order inside FleetResult.
struct TenantResult {
  size_t TenantId = 0;
  std::string Workload;
  size_t Launches = 0; ///< checkpoints written (0 when storeless)
  ScenarioResult Result;
  PhaseTreeSnapshot Phases; ///< empty unless CapturePhases and EVM_PROFILING
  uint64_t TotalCycles = 0;
  uint64_t OverheadCycles = 0;
  uint64_t Compiles = 0;
  /// This tenant's decision records (Tenant field stamped); empty unless
  /// FleetConfig::CaptureDecisions.
  std::vector<DecisionRecord> Decisions;
};

/// Everything a fleet run produces.  renderJson() is the aggregate
/// document the identity gates compare: it contains no thread count, no
/// wall-clock time, and nothing else interleaving-dependent.
struct FleetResult {
  std::vector<TenantResult> Tenants; ///< indexed by tenant id
  /// fleet.* counters/gauges reduced in tenant-ID order.
  MetricsSnapshot Metrics;
  size_t ShardsMerged = 0;  ///< shard files folded into global stores
  size_t GlobalStores = 0;  ///< distinct per-app global stores written
  uint64_t TotalCycles = 0; ///< across all tenants
  size_t TotalRuns = 0;
  /// All tenants' decision records folded in tenant-ID order (hence
  /// byte-identical JSONL for any NumThreads); empty unless
  /// FleetConfig::CaptureDecisions.  Not part of renderJson().
  std::vector<DecisionRecord> Decisions;

  /// Canonical aggregate JSON: fleet echo, per-tenant documents (with
  /// per-run series and phase trees), and the fleet metrics snapshot.
  /// Byte-identical for any NumThreads.
  std::string renderJson() const;
};

/// The fleet coordinator.  One instance = one fleet launch.
class FleetRunner {
public:
  explicit FleetRunner(FleetConfig Config);

  /// Executes the whole fleet (blocking) and reduces the results.
  FleetResult run();

  /// Attaches a recorder for the coordinator's fleet.tenant / fleet.merge
  /// events (recorded after the pool joins, in tenant-ID order, so traces
  /// are deterministic too).  Engine-level events are not recorded in
  /// fleet mode — tenant threads interleaving into one recorder would
  /// destroy append-order determinism.
  void setTracer(TraceRecorder *T) { Tracer = T; }

  /// shard-<id>.store inside \p Dir (zero-padded for stable listings).
  static std::string shardPath(const std::string &Dir, size_t TenantId);

  /// global-<app>.store inside \p Dir.
  static std::string globalStorePath(const std::string &Dir,
                                     const std::string &App);

  /// Generation stripe width: tenant i's shard generations live in
  /// (Base + (i+1)*Stride, Base + (i+2)*Stride), so any two shards of one
  /// fleet launch compare strictly under newest-wins and shard merges are
  /// permutation-invariant.  Bounds launches per tenant per fleet launch.
  static constexpr uint64_t GenerationStride = uint64_t(1) << 20;

private:
  TenantResult runTenant(size_t TenantId);

  FleetConfig Config;
  TraceRecorder *Tracer = nullptr;
};

} // namespace harness
} // namespace evm

#endif // EVM_HARNESS_FLEET_H
