//===- harness/Fleet.cpp --------------------------------------------------===//

#include "harness/Fleet.h"

#include "store/KnowledgeStore.h"
#include "support/Format.h"
#include "support/Statistics.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>

using namespace evm;
using namespace evm::harness;

FleetRunner::FleetRunner(FleetConfig Config) : Config(std::move(Config)) {
  assert(this->Config.NumTenants > 0 && "fleet needs at least one tenant");
  assert(!this->Config.Workloads.empty() && "fleet needs a workload mix");
}

std::string FleetRunner::shardPath(const std::string &Dir, size_t TenantId) {
  return formatString("%s/shard-%04zu.store", Dir.c_str(), TenantId);
}

std::string FleetRunner::globalStorePath(const std::string &Dir,
                                         const std::string &App) {
  return Dir + "/global-" + App + ".store";
}

wl::Workload evm::harness::buildFleetWorkload(const std::string &Name,
                                              uint64_t Seed) {
  if (Name == "route")
    return wl::buildRouteExample(Seed, 24);
  return wl::buildWorkload(Name, Seed);
}

namespace {

/// Loads \p Path, treating NotFound/IoError as an empty store (fleet
/// startup must never abort on a damaged or missing shard; the loader's
/// recovery semantics already keep whatever survives).
store::KnowledgeStore loadOrEmpty(const std::string &Path) {
  store::KnowledgeStore KS;
  store::StoreReadStats Stats;
  store::loadStoreFile(Path, KS, Stats);
  return KS;
}

} // namespace

TenantResult FleetRunner::runTenant(size_t TenantId) {
  TenantResult T;
  T.TenantId = TenantId;
  T.Workload = Config.Workloads[TenantId % Config.Workloads.size()];

  wl::Workload W = buildFleetWorkload(T.Workload, Config.Seed);
  ExperimentConfig EC = Config.Experiment;
  EC.Seed = Config.Seed;
  ScenarioRunner Runner(W, EC);
  std::vector<size_t> Order =
      Runner.makeInputOrder(TenantId + 1, Config.RunsPerTenant);

  // Per-tenant phase profiling: the profiler is installed thread-locally,
  // so concurrent tenants attribute into disjoint trees.
  PhaseProfiler Prof;
  std::optional<ProfilerInstallGuard> ProfGuard;
  if (Config.CapturePhases)
    ProfGuard.emplace(&Prof);

  // Per-tenant decision ledger: local to this tenant's thread, exported
  // into the tenant's own slot and folded after the pool joins.
  DecisionLedger Ledger;
  if (Config.CaptureDecisions) {
    Ledger.setEnabled(true);
    Runner.setLedger(&Ledger);
  }

  if (Config.ShardDir.empty()) {
    T.Result = Runner.runEvolve(Order);
  } else {
    // Seed the tenant's shard from the per-app global store (frozen for
    // the whole fleet launch) merged with whatever the shard held from a
    // previous launch, then stripe the generation: every checkpoint this
    // tenant writes (disk generation + 1 per launch) stays inside its own
    // stripe, so no two shards of one fleet ever tie under newest-wins.
    std::string Shard = shardPath(Config.ShardDir, TenantId);
    store::KnowledgeStore Global =
        loadOrEmpty(globalStorePath(Config.ShardDir, W.Name));
    store::KnowledgeStore Old = loadOrEmpty(Shard);
    uint64_t Base = std::max(Global.Header.Generation, Old.Header.Generation);
    store::KnowledgeStore Seeded = store::mergeStores(Old, Global);
    Seeded.Header.Generation =
        (Base / GenerationStride + 1 + TenantId) * GenerationStride;
    Seeded.Header.App = W.Name;
    store::saveStoreFile(Shard, Seeded);

    size_t Launches =
        Config.MergeEvery
            ? (Order.size() + Config.MergeEvery - 1) / Config.MergeEvery
            : 1;
    assert(Launches < GenerationStride && "stripe too narrow for cadence");
    T.Result = Runner.runEvolveLaunches(Order, Launches, Shard);
    T.Launches = Launches;
  }

  for (const RunMetrics &M : T.Result.Runs) {
    T.TotalCycles += M.Cycles;
    T.OverheadCycles += M.OverheadCycles;
    T.Compiles += M.Compiles;
  }
  if (ProfGuard)
    ProfGuard.reset();
  T.Phases = Prof.snapshot();
  if (Config.CaptureDecisions && Ledger.enabled()) {
    T.Decisions = Ledger.exportOrder();
    for (DecisionRecord &D : T.Decisions)
      D.Tenant = static_cast<int64_t>(TenantId);
  }
  return T;
}

FleetResult FleetRunner::run() {
  const size_t N = Config.NumTenants;
  size_t Threads = std::min(std::max<size_t>(Config.NumThreads, 1), N);

  FleetResult R;
  R.Tenants.resize(N);

  // The pool: workers claim tenant ids off an atomic counter.  Which worker
  // runs which tenant (and when) is scheduling noise; each result lands in
  // its own pre-sized slot, and everything below this loop reduces those
  // slots in tenant-ID order on this thread.
  std::atomic<size_t> Next{0};
  auto Work = [&] {
    for (size_t I = Next.fetch_add(1); I < N; I = Next.fetch_add(1))
      R.Tenants[I] = runTenant(I);
  };
  if (Threads == 1) {
    Work();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (size_t W = 0; W != Threads; ++W)
      Pool.emplace_back(Work);
    for (std::thread &Th : Pool)
      Th.join();
  }

  // Deterministic reduction: tenant-ID order throughout.
  MetricsRegistry Reg;
  std::vector<double> Accuracies, Confidences;
  for (const TenantResult &T : R.Tenants) {
    R.TotalCycles += T.TotalCycles;
    R.TotalRuns += T.Result.Runs.size();
    Reg.add("fleet.runs.total", T.Result.Runs.size());
    Reg.add("fleet.cycles.total", T.TotalCycles);
    Reg.add("fleet.cycles.overhead", T.OverheadCycles);
    Reg.add("fleet.compiles.total", T.Compiles);
    Reg.add("fleet.checkpoints.total", T.Launches);
    Accuracies.push_back(T.Result.MeanAccuracy);
    Confidences.push_back(T.Result.FinalConfidence);
    if (Tracer && Tracer->enabled()) {
      TraceEvent E;
      E.Kind = TraceEventKind::FleetTenant;
      E.Cycle = T.TotalCycles;
      E.A = T.TenantId;
      E.B = T.Result.Runs.size();
      E.C = T.Launches;
      E.X = T.Result.MeanAccuracy;
      Tracer->record(E);
    }
  }
  // Fold per-tenant ledgers in tenant-ID order: the JSONL the CLI writes
  // from this vector is byte-identical for any thread count.
  if (Config.CaptureDecisions)
    for (const TenantResult &T : R.Tenants)
      R.Decisions.insert(R.Decisions.end(), T.Decisions.begin(),
                         T.Decisions.end());

  Reg.add("fleet.tenants", N);
  Reg.setGauge("fleet.accuracy.mean", mean(Accuracies));
  Reg.setGauge("fleet.confidence.final.mean", mean(Confidences));

  // Fold shards into per-app global stores, apps in first-tenant order,
  // shards in tenant-ID order within an app.  Striped generations make the
  // fold order-insensitive (see GenerationStride); this fixed order makes
  // it deterministic even if that invariant were ever violated.
  if (!Config.ShardDir.empty()) {
    std::vector<std::string> Apps;
    for (const TenantResult &T : R.Tenants)
      if (std::find(Apps.begin(), Apps.end(), T.Workload) == Apps.end())
        Apps.push_back(T.Workload);
    for (const std::string &AppName : Apps) {
      // Shards carry the built workload's name, which for "route" is the
      // example's own app tag; resolve it the same way the tenant did.
      std::string App = buildFleetWorkload(AppName, Config.Seed).Name;
      std::string GlobalPath = globalStorePath(Config.ShardDir, App);
      store::KnowledgeStore Global = loadOrEmpty(GlobalPath);
      size_t Folded = 0;
      for (const TenantResult &T : R.Tenants) {
        if (T.Workload != AppName)
          continue;
        Global = store::mergeStores(
            Global, loadOrEmpty(shardPath(Config.ShardDir, T.TenantId)));
        ++Folded;
      }
      store::saveStoreFile(GlobalPath, Global);
      R.ShardsMerged += Folded;
      ++R.GlobalStores;
      Reg.add("fleet.shards.merged", Folded);
      if (Tracer && Tracer->enabled()) {
        TraceEvent E;
        E.Kind = TraceEventKind::FleetMerge;
        E.A = Folded;
        E.B = Global.Header.Generation;
        E.C = Global.Runs.size();
        Tracer->record(E);
      }
    }
    Reg.add("fleet.stores.global", R.GlobalStores);
  }

  R.Metrics = Reg.snapshot();
  return R;
}

std::string FleetResult::renderJson() const {
  std::string Out = formatString(
      "{\"fleet\":{\"tenants\":%zu,\"total_runs\":%zu,\"total_cycles\":%llu,"
      "\"shards_merged\":%zu,\"global_stores\":%zu},\"tenants\":[",
      Tenants.size(), TotalRuns, static_cast<unsigned long long>(TotalCycles),
      ShardsMerged, GlobalStores);
  for (size_t I = 0; I != Tenants.size(); ++I) {
    const TenantResult &T = Tenants[I];
    if (I)
      Out += ',';
    Out += formatString(
        "{\"id\":%zu,\"workload\":\"%s\",\"launches\":%zu,\"cycles\":%llu,"
        "\"overhead_cycles\":%llu,\"compiles\":%llu,"
        "\"final_confidence\":%.17g,\"mean_confidence\":%.17g,"
        "\"mean_accuracy\":%.17g,\"raw_features\":%zu,\"used_features\":%zu,"
        "\"runs\":[",
        T.TenantId, T.Workload.c_str(), T.Launches,
        static_cast<unsigned long long>(T.TotalCycles),
        static_cast<unsigned long long>(T.OverheadCycles),
        static_cast<unsigned long long>(T.Compiles), T.Result.FinalConfidence,
        T.Result.MeanConfidence, T.Result.MeanAccuracy, T.Result.RawFeatures,
        T.Result.UsedFeatures);
    for (size_t J = 0; J != T.Result.Runs.size(); ++J) {
      const RunMetrics &M = T.Result.Runs[J];
      if (J)
        Out += ',';
      Out += formatString(
          "{\"input\":%zu,\"cycles\":%llu,\"speedup\":%.17g,"
          "\"confidence\":%.17g,\"accuracy\":%.17g,\"used\":%d,\"had\":%d}",
          M.InputIndex, static_cast<unsigned long long>(M.Cycles),
          M.SpeedupVsDefault, M.Confidence, M.Accuracy,
          M.UsedPrediction ? 1 : 0, M.HadPrediction ? 1 : 0);
    }
    Out += ']';
    if (!T.Phases.empty()) {
      // Embed the canonical phase document: {"phases":[...]} -> ,"phases":[...]
      std::string Phases = T.Phases.renderJson();
      Out += ',';
      Out.append(Phases, 1, Phases.size() - 2);
    }
    Out += '}';
  }
  Out += "],";
  Out += Metrics.renderJson().substr(1); // {"metrics":[...]} -> "metrics":[...]}
  return Out;
}
