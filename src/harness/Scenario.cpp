//===- harness/Scenario.cpp -----------------------------------------------==//

#include "harness/Scenario.h"

#include "evolve/Repository.h"
#include "evolve/Strategy.h"
#include "store/KnowledgeStore.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "vm/AOS.h"

#include <cassert>

using namespace evm;
using namespace evm::harness;

ScenarioRunner::ScenarioRunner(const wl::Workload &W, ExperimentConfig Config)
    : W(W), Config(Config), DefaultCache(W.Inputs.size(), 0) {
  W.registerMethods(Registry);
  W.populateFileStore(Files);
}

std::vector<size_t> ScenarioRunner::makeInputOrder(uint64_t OrderSeed,
                                                   size_t Count) const {
  Rng R(Config.Seed ^ (OrderSeed * 0x9e3779b97f4a7c15ULL));
  std::vector<size_t> Order(Count);
  for (size_t I = 0; I != Count; ++I)
    Order[I] = static_cast<size_t>(
        R.nextInt(0, static_cast<int64_t>(W.Inputs.size()) - 1));
  return Order;
}

uint64_t ScenarioRunner::defaultCycles(size_t InputIndex) {
  assert(InputIndex < W.Inputs.size() && "input index out of range");
  if (DefaultCache[InputIndex])
    return DefaultCache[InputIndex];
  vm::AdaptivePolicy Policy(Config.Timing, Tracer);
  vm::ExecutionEngine Engine(W.Module, Config.Timing, &Policy);
  Engine.setTracer(Tracer);
  auto R = Engine.run(W.Inputs[InputIndex].VmArgs, Config.MaxCyclesPerRun);
  assert(R && "default run trapped");
  DefaultCache[InputIndex] = R ? (*R).Cycles : 1;
  return DefaultCache[InputIndex];
}

ScenarioResult ScenarioRunner::runDefault(const std::vector<size_t> &Order) {
  ScenarioResult Result;
  Result.ScenarioName = "Default";
  for (size_t InputIndex : Order) {
    RunMetrics M;
    M.InputIndex = InputIndex;
    M.Cycles = defaultCycles(InputIndex);
    M.SpeedupVsDefault = 1.0;
    Result.Runs.push_back(M);
  }
  return Result;
}

void ScenarioRunner::runRepSpan(evolve::ProfileRepository &Repo,
                                const std::vector<size_t> &Sizes,
                                const std::vector<size_t> &Order, size_t Begin,
                                size_t End, ScenarioResult &Result) {
  for (size_t RunIndex = Begin; RunIndex != End; ++RunIndex) {
    size_t InputIndex = Order[RunIndex];
    RunMetrics M;
    M.InputIndex = InputIndex;

    // The repository strategy is applied unconditionally, from the very
    // first runs (no confidence guard) — one of the paper's contrasts.
    evolve::RepStrategy Strategy = Repo.deriveStrategy(Sizes);
    evolve::RepPolicy RepTriggers(std::move(Strategy));
    vm::AdaptivePolicy Adaptive(Config.Timing, Tracer);
    vm::CombinedPolicy Policy(&RepTriggers, &Adaptive);

    uint64_t SamplePhase = Rng(RunIndex ^ 0x4e9b2a7c).next();
    vm::ExecutionEngine Engine(W.Module, Config.Timing, &Policy);
    Engine.setTracer(Tracer);
    auto R = Engine.run(W.Inputs[InputIndex].VmArgs, Config.MaxCyclesPerRun,
                        0, SamplePhase);
    assert(R && "rep run trapped");
    if (!R)
      continue;
    M.Cycles = (*R).Cycles;
    M.SpeedupVsDefault = static_cast<double>(defaultCycles(InputIndex)) /
                         static_cast<double>(M.Cycles);
    M.Compiles = (*R).Compiles.size();
    Repo.addRun((*R).PerMethod);
    if (Tracer && Tracer->enabled()) {
      TraceEvent E;
      E.Kind = TraceEventKind::RepositoryUpdate;
      E.Cycle = (*R).Cycles;
      E.A = Repo.numRuns(); // runs folded into the repository so far
      Tracer->record(E);
    }
    Result.Runs.push_back(M);
  }
}

ScenarioResult ScenarioRunner::runRep(const std::vector<size_t> &Order) {
  ScenarioResult Result;
  Result.ScenarioName = "Rep";
  evolve::ProfileRepository Repo(Config.Timing);
  std::vector<size_t> Sizes = evolve::methodSizes(W.Module);
  runRepSpan(Repo, Sizes, Order, 0, Order.size(), Result);
  return Result;
}

ScenarioResult ScenarioRunner::runRepLaunches(const std::vector<size_t> &Order,
                                              size_t NumLaunches,
                                              const std::string &StorePath) {
  ScenarioResult Result;
  Result.ScenarioName = "Rep";
  std::vector<size_t> Sizes = evolve::methodSizes(W.Module);
  if (NumLaunches == 0)
    NumLaunches = 1;

  for (size_t L = 0; L != NumLaunches; ++L) {
    size_t Begin = Order.size() * L / NumLaunches;
    size_t End = Order.size() * (L + 1) / NumLaunches;

    // Fresh "process": the repository lives only as long as the launch and
    // persists through the store's repository section.
    store::KnowledgeStore Loaded;
    store::StoreReadStats Stats;
    store::loadStoreFile(StorePath, Loaded, Stats);
    evolve::ProfileRepository Repo(Config.Timing);
    Repo.restoreRuns(Loaded.RepRuns);

    // Begin doubles as the global run ordinal, so launch L+1 continues the
    // sample-phase sequence right where launch L stopped.
    runRepSpan(Repo, Sizes, Order, Begin, End, Result);

    // Read-modify-write checkpoint: reload (another writer may have
    // advanced the file), merge, bump the generation.
    store::KnowledgeStore Disk;
    store::StoreReadStats DiskStats;
    store::loadStoreFile(StorePath, Disk, DiskStats);
    store::KnowledgeStore Mem;
    Mem.Header.Generation = Disk.Header.Generation + 1;
    Mem.Header.App = W.Name;
    Mem.RepRuns = Repo.runs();
    store::saveStoreFile(StorePath, store::mergeStores(Disk, Mem));
  }
  return Result;
}

void ScenarioRunner::runEvolveSpan(evolve::EvolvableVM &VM,
                                   const std::vector<size_t> &Order,
                                   size_t Begin, size_t End,
                                   ScenarioResult &Result,
                                   std::vector<double> &Confidences,
                                   std::vector<double> &Accuracies) {
  for (size_t RunIndex = Begin; RunIndex != End; ++RunIndex) {
    size_t InputIndex = Order[RunIndex];
    auto Record = VM.runOnce(W.Inputs[InputIndex].CommandLine,
                             W.Inputs[InputIndex].VmArgs);
    assert(Record && "evolve run failed");
    if (!Record)
      continue;
    RunMetrics M;
    M.InputIndex = InputIndex;
    M.Cycles = Record->Result.Cycles;
    M.SpeedupVsDefault = static_cast<double>(defaultCycles(InputIndex)) /
                         static_cast<double>(M.Cycles);
    M.Confidence = Record->ConfidenceAfter;
    M.Accuracy = Record->Accuracy;
    M.UsedPrediction = Record->UsedPrediction;
    M.HadPrediction = Record->HadPrediction;
    M.OverheadCycles = Record->Result.overheadCycles();
    M.Compiles = Record->Result.Compiles.size();
    Result.Runs.push_back(M);

    // The harness knows the input's default-optimizer time; backfill it so
    // explain tooling can recompute speedups from the records alone.
    if (Ledger && Ledger->enabled())
      Ledger->annotateBaseline(defaultCycles(InputIndex));

    Confidences.push_back(Record->ConfidenceAfter);
    if (Record->HadPrediction)
      Accuracies.push_back(Record->Accuracy);
  }
}

evolve::EvolveConfig
evm::harness::makeEvolveConfig(const ExperimentConfig &Config) {
  evolve::EvolveConfig EC;
  EC.Timing = Config.Timing;
  EC.Gamma = Config.Gamma;
  EC.ConfidenceThreshold = Config.ConfidenceThreshold;
  EC.MaxCyclesPerRun = Config.MaxCyclesPerRun;
  return EC;
}

ScenarioResult ScenarioRunner::runEvolve(const std::vector<size_t> &Order) {
  ScenarioResult Result;
  Result.ScenarioName = "Evolve";

  evolve::EvolvableVM VM(W.Module, W.XiclSpec, &Registry, &Files,
                         makeEvolveConfig(Config));
  VM.setTracer(Tracer);
  VM.setLedger(Ledger, W.Name);
  assert(VM.specError().empty() && "workload XICL spec failed to parse");

  std::vector<double> Confidences, Accuracies;
  runEvolveSpan(VM, Order, 0, Order.size(), Result, Confidences, Accuracies);

  Result.FinalConfidence = VM.confidence();
  Result.MeanConfidence = mean(Confidences);
  Result.MeanAccuracy = mean(Accuracies);
  Result.RawFeatures = VM.model().numRawFeatures();
  Result.UsedFeatures = VM.model().usedFeatureNames().size();
  return Result;
}

ScenarioResult
ScenarioRunner::runEvolveLaunches(const std::vector<size_t> &Order,
                                  size_t NumLaunches,
                                  const std::string &StorePath) {
  ScenarioResult Result;
  Result.ScenarioName = "Evolve";
  if (NumLaunches == 0)
    NumLaunches = 1;

  std::vector<double> Confidences, Accuracies;
  for (size_t L = 0; L != NumLaunches; ++L) {
    size_t Begin = Order.size() * L / NumLaunches;
    size_t End = Order.size() * (L + 1) / NumLaunches;

    // Fresh "process" per launch; all cross-launch knowledge flows through
    // the store file.
    evolve::EvolvableVM VM(W.Module, W.XiclSpec, &Registry, &Files,
                           makeEvolveConfig(Config));
    VM.setTracer(Tracer);
    VM.setLedger(Ledger, W.Name);
    assert(VM.specError().empty() && "workload XICL spec failed to parse");

    store::KnowledgeStore Loaded;
    store::StoreReadStats Stats;
    store::LoadStatus St = store::loadStoreFile(StorePath, Loaded, Stats);
    VM.warmStart(Loaded, St == store::LoadStatus::Loaded ? &Stats : nullptr);

    runEvolveSpan(VM, Order, Begin, End, Result, Confidences, Accuracies);

    // Read-modify-write checkpoint (see runRepLaunches).
    store::KnowledgeStore Disk;
    store::StoreReadStats DiskStats;
    store::loadStoreFile(StorePath, Disk, DiskStats);
    store::KnowledgeStore Mem = VM.checkpoint(Disk.Header.Generation + 1);
    Mem.Header.App = W.Name;
    VM.noteStoreSave(
        store::saveStoreFile(StorePath, store::mergeStores(Disk, Mem)));

    if (L + 1 == NumLaunches) {
      Result.FinalConfidence = VM.confidence();
      Result.RawFeatures = VM.model().numRawFeatures();
      Result.UsedFeatures = VM.model().usedFeatureNames().size();
    }
  }
  Result.MeanConfidence = mean(Confidences);
  Result.MeanAccuracy = mean(Accuracies);
  return Result;
}
