//===- harness/Scenario.cpp -----------------------------------------------==//

#include "harness/Scenario.h"

#include "evolve/Repository.h"
#include "evolve/Strategy.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "vm/AOS.h"

#include <cassert>

using namespace evm;
using namespace evm::harness;

ScenarioRunner::ScenarioRunner(const wl::Workload &W, ExperimentConfig Config)
    : W(W), Config(Config), DefaultCache(W.Inputs.size(), 0) {
  W.registerMethods(Registry);
  W.populateFileStore(Files);
}

std::vector<size_t> ScenarioRunner::makeInputOrder(uint64_t OrderSeed,
                                                   size_t Count) const {
  Rng R(Config.Seed ^ (OrderSeed * 0x9e3779b97f4a7c15ULL));
  std::vector<size_t> Order(Count);
  for (size_t I = 0; I != Count; ++I)
    Order[I] = static_cast<size_t>(
        R.nextInt(0, static_cast<int64_t>(W.Inputs.size()) - 1));
  return Order;
}

uint64_t ScenarioRunner::defaultCycles(size_t InputIndex) {
  assert(InputIndex < W.Inputs.size() && "input index out of range");
  if (DefaultCache[InputIndex])
    return DefaultCache[InputIndex];
  vm::AdaptivePolicy Policy(Config.Timing, Tracer);
  vm::ExecutionEngine Engine(W.Module, Config.Timing, &Policy);
  Engine.setTracer(Tracer);
  auto R = Engine.run(W.Inputs[InputIndex].VmArgs, Config.MaxCyclesPerRun);
  assert(R && "default run trapped");
  DefaultCache[InputIndex] = R ? (*R).Cycles : 1;
  return DefaultCache[InputIndex];
}

ScenarioResult ScenarioRunner::runDefault(const std::vector<size_t> &Order) {
  ScenarioResult Result;
  Result.ScenarioName = "Default";
  for (size_t InputIndex : Order) {
    RunMetrics M;
    M.InputIndex = InputIndex;
    M.Cycles = defaultCycles(InputIndex);
    M.SpeedupVsDefault = 1.0;
    Result.Runs.push_back(M);
  }
  return Result;
}

ScenarioResult ScenarioRunner::runRep(const std::vector<size_t> &Order) {
  ScenarioResult Result;
  Result.ScenarioName = "Rep";
  evolve::ProfileRepository Repo(Config.Timing);
  std::vector<size_t> Sizes = evolve::methodSizes(W.Module);

  size_t RunIndex = 0;
  for (size_t InputIndex : Order) {
    RunMetrics M;
    M.InputIndex = InputIndex;

    // The repository strategy is applied unconditionally, from the very
    // first runs (no confidence guard) — one of the paper's contrasts.
    evolve::RepStrategy Strategy = Repo.deriveStrategy(Sizes);
    evolve::RepPolicy RepTriggers(std::move(Strategy));
    vm::AdaptivePolicy Adaptive(Config.Timing, Tracer);
    vm::CombinedPolicy Policy(&RepTriggers, &Adaptive);

    uint64_t SamplePhase = Rng(RunIndex++ ^ 0x4e9b2a7c).next();
    vm::ExecutionEngine Engine(W.Module, Config.Timing, &Policy);
    Engine.setTracer(Tracer);
    auto R = Engine.run(W.Inputs[InputIndex].VmArgs, Config.MaxCyclesPerRun,
                        0, SamplePhase);
    assert(R && "rep run trapped");
    if (!R)
      continue;
    M.Cycles = (*R).Cycles;
    M.SpeedupVsDefault = static_cast<double>(defaultCycles(InputIndex)) /
                         static_cast<double>(M.Cycles);
    M.Compiles = (*R).Compiles.size();
    Repo.addRun((*R).PerMethod);
    if (Tracer && Tracer->enabled()) {
      TraceEvent E;
      E.Kind = TraceEventKind::RepositoryUpdate;
      E.Cycle = (*R).Cycles;
      E.A = RunIndex; // runs folded into the repository so far
      Tracer->record(E);
    }
    Result.Runs.push_back(M);
  }
  return Result;
}

ScenarioResult ScenarioRunner::runEvolve(const std::vector<size_t> &Order) {
  ScenarioResult Result;
  Result.ScenarioName = "Evolve";

  evolve::EvolveConfig EC;
  EC.Timing = Config.Timing;
  EC.Gamma = Config.Gamma;
  EC.ConfidenceThreshold = Config.ConfidenceThreshold;
  EC.MaxCyclesPerRun = Config.MaxCyclesPerRun;
  evolve::EvolvableVM VM(W.Module, W.XiclSpec, &Registry, &Files, EC);
  VM.setTracer(Tracer);
  assert(VM.specError().empty() && "workload XICL spec failed to parse");

  std::vector<double> Confidences, Accuracies;
  for (size_t InputIndex : Order) {
    auto Record = VM.runOnce(W.Inputs[InputIndex].CommandLine,
                             W.Inputs[InputIndex].VmArgs);
    assert(Record && "evolve run failed");
    if (!Record)
      continue;
    RunMetrics M;
    M.InputIndex = InputIndex;
    M.Cycles = Record->Result.Cycles;
    M.SpeedupVsDefault = static_cast<double>(defaultCycles(InputIndex)) /
                         static_cast<double>(M.Cycles);
    M.Confidence = Record->ConfidenceAfter;
    M.Accuracy = Record->Accuracy;
    M.UsedPrediction = Record->UsedPrediction;
    M.HadPrediction = Record->HadPrediction;
    M.OverheadCycles = Record->Result.overheadCycles();
    M.Compiles = Record->Result.Compiles.size();
    Result.Runs.push_back(M);

    Confidences.push_back(Record->ConfidenceAfter);
    if (Record->HadPrediction)
      Accuracies.push_back(Record->Accuracy);
  }

  Result.FinalConfidence = VM.confidence();
  Result.MeanConfidence = mean(Confidences);
  Result.MeanAccuracy = mean(Accuracies);
  Result.RawFeatures = VM.model().numRawFeatures();
  Result.UsedFeatures = VM.model().usedFeatureNames().size();
  return Result;
}
