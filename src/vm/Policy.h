//===- vm/Policy.h - Compilation policy hooks -------------------------------//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CompilationPolicy is the seam between the execution engine and the three
/// strategies the paper compares:
///
///   * Default: the reactive cost-benefit adaptive system (AdaptivePolicy,
///     vm/AOS.h) decides at sample time.
///   * Evolve:  the predicted per-method level is applied right after the
///     first (baseline) compilation via onFirstInvocation.
///   * Rep:     repository-derived <sample-count, level> triggers fire in
///     onSample.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_POLICY_H
#define EVM_VM_POLICY_H

#include "bytecode/Module.h"
#include "vm/Timing.h"

#include <cstdint>
#include <optional>

namespace evm {
namespace vm {

/// Snapshot of one method's runtime state handed to policy hooks.
struct MethodRuntimeInfo {
  bc::MethodId Id = 0;
  uint64_t Samples = 0;
  uint64_t Invocations = 0;
  OptLevel Level = OptLevel::Baseline;
  size_t BytecodeSize = 0;
  /// Virtual cycles until a background compile worker frees up (0 when one
  /// is idle, and always 0 in synchronous mode).  The cost-benefit model
  /// prices this queue delay instead of a synchronous compile stall when
  /// the pipeline is asynchronous.
  uint64_t CompileBacklogCycles = 0;
  /// The engine's virtual clock at the moment of the hook, so policies can
  /// timestamp the trace events they emit.
  uint64_t NowCycles = 0;
};

/// Recompilation decisions.  Hooks return the level to (re)compile the
/// method at, or nullopt to leave it alone.  The engine ignores decisions
/// that do not raise the level.
class CompilationPolicy {
public:
  virtual ~CompilationPolicy();

  /// Called once per run per method, immediately after its first-encounter
  /// baseline compilation.  Evolve's proactive strategy lives here.
  virtual std::optional<OptLevel>
  onFirstInvocation(const MethodRuntimeInfo &Info) {
    (void)Info;
    return std::nullopt;
  }

  /// Called at every profiler sample attributed to the method.
  virtual std::optional<OptLevel> onSample(const MethodRuntimeInfo &Info) {
    (void)Info;
    return std::nullopt;
  }
};

/// Combines two policies, taking the higher recommendation at each hook.
/// The Rep scenario uses this: repository triggers provide the proactive
/// head start while the normal adaptive system keeps running underneath
/// (as in the original repository-based system).
class CombinedPolicy : public CompilationPolicy {
public:
  CombinedPolicy(CompilationPolicy *First, CompilationPolicy *Second)
      : First(First), Second(Second) {}

  std::optional<OptLevel>
  onFirstInvocation(const MethodRuntimeInfo &Info) override {
    return higher(First->onFirstInvocation(Info),
                  Second->onFirstInvocation(Info));
  }
  std::optional<OptLevel> onSample(const MethodRuntimeInfo &Info) override {
    return higher(First->onSample(Info), Second->onSample(Info));
  }

private:
  static std::optional<OptLevel> higher(std::optional<OptLevel> A,
                                        std::optional<OptLevel> B) {
    if (!A)
      return B;
    if (!B)
      return A;
    return levelIndex(*A) >= levelIndex(*B) ? A : B;
  }

  CompilationPolicy *First;
  CompilationPolicy *Second;
};

} // namespace vm
} // namespace evm

#endif // EVM_VM_POLICY_H
