//===- vm/Engine.h - Mixed-mode execution engine ---------------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExecutionEngine runs a MiniVM module start to finish in mixed mode:
/// baseline methods are interpreted, optimized methods execute their
/// compiled IR; the two tiers interoperate at call boundaries.  The engine
/// owns the virtual clock, the sampling profiler, and the recompilation
/// plumbing; a pluggable CompilationPolicy decides *when* and *to what
/// level* methods move (reactive AOS, Evolve prediction, or Rep triggers).
///
/// Like Jikes RVM's recompilation (in the configuration the paper uses),
/// switching levels takes effect at the next invocation of the method; there
/// is no on-stack replacement.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_ENGINE_H
#define EVM_VM_ENGINE_H

#include "bytecode/Module.h"
#include "support/Error.h"
#include "support/Profiler.h"
#include "support/Trace.h"
#include "vm/CompileWorker.h"
#include "vm/Dispatch.h"
#include "vm/Heap.h"
#include "vm/Policy.h"
#include "vm/Profile.h"
#include "vm/Superinst.h"
#include "vm/Timing.h"
#include "vm/jit/Compiler.h"

#include <memory>
#include <optional>
#include <vector>

namespace evm {
namespace vm {

/// Mixed-mode executor for one module.  One engine instance models one
/// "launch of the virtual machine": method levels and the heap persist
/// across invoke()s within a run() but are reset at the start of each run().
class ExecutionEngine {
public:
  ExecutionEngine(const bc::Module &M, const TimingModel &TM,
                  CompilationPolicy *Policy);

  /// Executes main(Args) to completion.  \p MaxCycles bounds the virtual
  /// clock (a FuelExhausted trap fires beyond it; tests use this to fence
  /// accidental non-termination).  \p PreRunOverheadCycles is charged to
  /// the clock (and the overhead account) before main starts — the
  /// evolvable VM passes its feature-extraction and prediction costs here.
  /// \p SamplePhaseCycles shifts where the first profiler sample lands
  /// (modulo the interval); varying it across runs reproduces the sampling
  /// noise of a real machine, without which every profile of an input
  /// would be bit-identical.
  ErrorOr<RunResult> run(const std::vector<bc::Value> &Args,
                         uint64_t MaxCycles = UINT64_MAX,
                         uint64_t PreRunOverheadCycles = 0,
                         uint64_t SamplePhaseCycles = 0);

  /// Charges evolvable-VM machinery time (feature extraction, prediction)
  /// to the clock; accounted separately in RunResult::OverheadCycles.
  void chargeOverhead(uint64_t Cycles);

  /// Swaps the compilation policy for subsequent run()s (may be null).
  /// Long-lived hosts (the evolvable VM) change policy per production run
  /// while keeping one engine — and with it one background worker pool —
  /// alive across runs instead of respawning threads every run.  The
  /// pointer is only dereferenced during run(), never stored across it.
  void setPolicy(CompilationPolicy *P) { Policy = P; }

  /// Attaches an event recorder (may be null to detach).  The engine emits
  /// run/method/sample/compile/transition events with virtual-cycle
  /// timestamps; the worker pool shares the same recorder.  Recording never
  /// charges virtual cycles, so traced and untraced runs are cycle-identical.
  void setTracer(TraceRecorder *T);

  /// Current level of \p Id (tests and policies may inspect this).
  OptLevel methodLevel(bc::MethodId Id) const;

  /// Pins externally produced compiled code for \p Id: every subsequent
  /// run() starts the method at Code->Level with this code installed (no
  /// baseline compile, no recompilation below it).  This is the seam for
  /// executing code built outside the engine's own pipelines — ahead-of-time
  /// caches, or the pass-permutation property tests, which must run IR
  /// produced by arbitrary pass orders.  Pass nullptr to clear.
  void setCodeOverride(bc::MethodId Id,
                       std::shared_ptr<const jit::CompiledFunction> Code);

  const TimingModel &timingModel() const { return TM; }

  /// How interpret() walks bytecode (vm/Dispatch.h).  Engines adopt the
  /// process-wide mode at construction; this override re-decodes the module
  /// (and, when \p Table is non-null, swaps the fusion table first).  All
  /// modes are pinned cycle- and RunResult-identical, so switching is a
  /// host-speed knob only.
  void setDispatchMode(DispatchMode Mode,
                       const SuperinstTable *Table = nullptr);
  DispatchMode dispatchMode() const { return DispMode; }
  const SuperinstTable &fusionTable() const { return FusionTable; }

  /// Cumulative host-side dispatch counters (instructions retired, fused
  /// slots executed, per-pair counts).  Deliberately *not* part of
  /// RunResult: its bytes must stay identical across dispatch modes.
  const DispatchStats &dispatchStats() const { return DStats; }

  /// Maximum recursive invocation depth before a CallDepthExceeded trap.
  static constexpr int MaxCallDepth = 512;

private:
  struct MethodState {
    OptLevel Level = OptLevel::Baseline;
    bool BaselineCompiled = false;
    std::shared_ptr<const jit::CompiledFunction> Code; ///< null at baseline
    MethodStats Stats;
  };

  /// Invokes a method in its current tier; nullopt means a trap is pending.
  std::optional<bc::Value> invoke(bc::MethodId Id,
                                  const std::vector<bc::Value> &Args,
                                  int Depth);
  /// Routes to interpretSwitch or interpretDecoded per DispMode.
  std::optional<bc::Value> interpret(bc::MethodId Id,
                                     const std::vector<bc::Value> &Args,
                                     int Depth);
  /// The reference interpreter: one switch per undecoded instruction.
  std::optional<bc::Value> interpretSwitch(bc::MethodId Id,
                                           const std::vector<bc::Value> &Args,
                                           int Depth);
  /// The threaded/fused interpreter over the predecoded stream (computed
  /// goto when compiled in, dense switch otherwise).  Charge-for-charge
  /// identical to interpretSwitch.
  std::optional<bc::Value> interpretDecoded(bc::MethodId Id,
                                            const std::vector<bc::Value> &Args,
                                            int Depth);
  /// (Re)decodes every function against DispMode/FusionTable.
  void decodeAll();
  std::optional<bc::Value>
  executeCompiled(bc::MethodId Id, const jit::CompiledFunction &Code,
                  const std::vector<bc::Value> &Args, int Depth);

  /// Advances the clock, attributing \p Cycles to the method on top of the
  /// call stack and firing profiler samples as intervals elapse.
  void charge(uint64_t Cycles);
  /// One profiler hit: bumps the current method's samples, runs the policy.
  void sampleTick();
  /// Moves \p Id to \p L.  Synchronous mode (TM.NumCompileWorkers == 0)
  /// compiles on the spot, charging the full stall; background mode
  /// enqueues a request on the worker pool and returns immediately — the
  /// method keeps executing at its old level until the code is installable
  /// (see drainReadyCompiles).
  void installLevel(bc::MethodId Id, OptLevel L);
  /// Installs every background compile whose virtual ready time has
  /// arrived (atomic code-pointer swap at an invocation boundary, matching
  /// the no-OSR rule: new code takes effect at the next invocation).
  void drainReadyCompiles();
  /// Runs first-encounter baseline compilation and the policy's proactive
  /// hook, if not done yet for this method.
  void ensureBaseline(bc::MethodId Id);
  void setTrap(TrapKind Kind, bc::MethodId Method, size_t Location);

  const bc::Module &M;
  TimingModel TM;
  CompilationPolicy *Policy; ///< may be null (no recompilation ever)

  DispatchMode DispMode;      ///< adopted from processDispatchMode() at ctor
  SuperinstTable FusionTable; ///< pairs decoded in Fused mode
  /// Per-function predecoded streams ("installed at module-load time"):
  /// built in the constructor, rebuilt by setDispatchMode; empty in Switch
  /// mode.
  std::vector<DecodedFunction> Decoded;
  DispatchStats DStats;

  Heap TheHeap;
  std::vector<MethodState> Methods;
  /// Per-method pinned code (see setCodeOverride); sparse, usually empty.
  std::vector<std::shared_ptr<const jit::CompiledFunction>> CodeOverrides;
  std::vector<bc::MethodId> CallStack;
  /// Background pipeline; null in synchronous mode (created at the first
  /// run() when TM.NumCompileWorkers > 0).
  std::unique_ptr<CompileWorkerPool> Workers;
  uint64_t Cycles = 0;
  uint64_t NextSampleAt = 0;
  uint64_t CompileCycles = 0; ///< charged to the clock (stall account)
  uint64_t OverheadCycles = 0;
  uint64_t MaxCycles = UINT64_MAX;
  std::vector<CompileEvent> Compiles;
  bool InSamplingHook = false;
  TraceRecorder *Tracer = nullptr;
  /// The phase profiler installed on the execution thread, cached at run()
  /// entry (one TLS read per run instead of one per charge).  Attribution
  /// never advances the virtual clock, so profiled and unprofiled runs are
  /// cycle-identical.
  PhaseProfiler *Prof = nullptr;
  uint64_t RunOrdinal = 0; ///< run() invocations on this engine, for run.begin
  uint64_t Invocations = 0; ///< per-run total, folded into the metrics

  TrapKind PendingTrap = TrapKind::None;
  bc::MethodId TrapMethod = 0;
  size_t TrapLocation = 0;
};

} // namespace vm
} // namespace evm

#endif // EVM_VM_ENGINE_H
