//===- vm/CostBenefit.cpp -------------------------------------------------==//

#include "vm/CostBenefit.h"

using namespace evm;
using namespace evm::vm;

std::optional<OptLevel> vm::chooseRecompileLevel(const TimingModel &TM,
                                                 OptLevel Current,
                                                 uint64_t FutureCycles,
                                                 size_t BytecodeSize,
                                                 uint64_t QueueBacklogCycles,
                                                 RecompileEval *Eval) {
  double StayCost = static_cast<double>(FutureCycles);
  double BestCost = StayCost;
  std::optional<OptLevel> Best;
  for (int I = levelIndex(Current) + 1; I != NumOptLevels; ++I) {
    OptLevel L = levelFromIndex(I);
    double Compile = static_cast<double>(TM.compileCost(L, BytecodeSize));
    double Total;
    if (TM.NumCompileWorkers == 0) {
      // Synchronous: stall for the compile, then run the remainder faster.
      Total = StayCost * TM.expectedSpeedup(Current) / TM.expectedSpeedup(L) +
              Compile;
    } else {
      // Background: no stall.  The method runs at Current speed until the
      // code lands (handoff + backlog + compile), then faster.
      double Delay = static_cast<double>(TM.CompileQueueDelayCycles +
                                         QueueBacklogCycles) +
                     Compile;
      double AtCurrent = Delay < StayCost ? Delay : StayCost;
      Total = AtCurrent + (StayCost - AtCurrent) *
                              TM.expectedSpeedup(Current) /
                              TM.expectedSpeedup(L);
    }
    if (Total < BestCost) {
      BestCost = Total;
      Best = L;
    }
  }
  if (Eval) {
    Eval->StayCost = StayCost;
    Eval->BestCost = BestCost;
  }
  return Best;
}

OptLevel vm::idealLevelForMethod(const TimingModel &TM,
                                 double BaselineEquivalentCycles,
                                 size_t BytecodeSize) {
  // Never-executed methods should stay at baseline.
  if (BaselineEquivalentCycles <= 0)
    return OptLevel::Baseline;

  OptLevel Best = OptLevel::Baseline;
  double BestCost = BaselineEquivalentCycles; // run everything at baseline
  for (int I = levelIndex(OptLevel::O0); I != NumOptLevels; ++I) {
    OptLevel L = levelFromIndex(I);
    double Total = BaselineEquivalentCycles / TM.expectedSpeedup(L) +
                   static_cast<double>(TM.compileCost(L, BytecodeSize));
    if (Total < BestCost) {
      BestCost = Total;
      Best = L;
    }
  }
  return Best;
}
