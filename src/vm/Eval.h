//===- vm/Eval.h - Shared operator semantics ------------------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for MiniVM operator semantics.  The bytecode
/// interpreter, the JIT's constant folder, and the compiled-code executor
/// all call these helpers, which guarantees the tiers agree on every corner
/// case (promotion, division by zero, float-only intrinsics) by
/// construction — the invariant the JIT correctness property tests assert.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_EVAL_H
#define EVM_VM_EVAL_H

#include "bytecode/Opcode.h"
#include "bytecode/Value.h"

#include <optional>
#include <string>

namespace evm {
namespace vm {

/// Why an evaluation trapped.
enum class TrapKind {
  None,
  DivisionByZero,
  IntegerOpOnFloat, ///< bitwise/shift applied to a float operand
  HeapOutOfBounds,
  HeapExhausted,
  CallDepthExceeded,
  FuelExhausted, ///< execution exceeded the configured cycle budget
};

/// Renders a trap kind for diagnostics.
const char *trapKindName(TrapKind Kind);

/// Evaluates a two-operand operator (\p Op in {Add..Ge, Min, Max}).  Returns
/// nullopt and sets \p Trap on a semantic trap.
std::optional<bc::Value> evalBinary(bc::Opcode Op, const bc::Value &A,
                                    const bc::Value &B, TrapKind &Trap);

/// Evaluates a one-operand operator (\p Op in {Neg, Not, I2F..Abs}).
std::optional<bc::Value> evalUnary(bc::Opcode Op, const bc::Value &A,
                                   TrapKind &Trap);

/// True when \p Op is handled by evalBinary.
bool isBinaryOp(bc::Opcode Op);

/// True when \p Op is handled by evalUnary.
bool isUnaryOp(bc::Opcode Op);

} // namespace vm
} // namespace evm

#endif // EVM_VM_EVAL_H
