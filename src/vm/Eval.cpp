//===- vm/Eval.cpp --------------------------------------------------------==//

#include "vm/Eval.h"

#include <cassert>
#include <cmath>

using namespace evm;
using namespace evm::vm;
using bc::Opcode;
using bc::Value;

const char *vm::trapKindName(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::None:
    return "none";
  case TrapKind::DivisionByZero:
    return "division by zero";
  case TrapKind::IntegerOpOnFloat:
    return "integer operation on float operand";
  case TrapKind::HeapOutOfBounds:
    return "heap access out of bounds";
  case TrapKind::HeapExhausted:
    return "heap exhausted";
  case TrapKind::CallDepthExceeded:
    return "call depth exceeded";
  case TrapKind::FuelExhausted:
    return "cycle budget exhausted";
  }
  return "unknown";
}

bool vm::isBinaryOp(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Mod:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Eq:
  case Opcode::Ne:
  case Opcode::Lt:
  case Opcode::Le:
  case Opcode::Gt:
  case Opcode::Ge:
  case Opcode::Min:
  case Opcode::Max:
    return true;
  default:
    return false;
  }
}

bool vm::isUnaryOp(Opcode Op) {
  switch (Op) {
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::I2F:
  case Opcode::F2I:
  case Opcode::Sqrt:
  case Opcode::Sin:
  case Opcode::Cos:
  case Opcode::Floor:
  case Opcode::Abs:
    return true;
  default:
    return false;
  }
}

namespace {

/// Wrapping two's-complement arithmetic via unsigned casts (signed overflow
/// would be UB).
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

} // namespace

std::optional<Value> vm::evalBinary(Opcode Op, const Value &A, const Value &B,
                                    TrapKind &Trap) {
  Trap = TrapKind::None;
  bool BothInt = A.isInt() && B.isInt();

  switch (Op) {
  case Opcode::Add:
    if (BothInt)
      return Value::makeInt(wrapAdd(A.asInt(), B.asInt()));
    return Value::makeFloat(A.toDouble() + B.toDouble());
  case Opcode::Sub:
    if (BothInt)
      return Value::makeInt(wrapSub(A.asInt(), B.asInt()));
    return Value::makeFloat(A.toDouble() - B.toDouble());
  case Opcode::Mul:
    if (BothInt)
      return Value::makeInt(wrapMul(A.asInt(), B.asInt()));
    return Value::makeFloat(A.toDouble() * B.toDouble());
  case Opcode::Div:
    if (BothInt) {
      if (B.asInt() == 0) {
        Trap = TrapKind::DivisionByZero;
        return std::nullopt;
      }
      // INT64_MIN / -1 overflows; wrap like Java's idiv does.
      if (A.asInt() == INT64_MIN && B.asInt() == -1)
        return Value::makeInt(INT64_MIN);
      return Value::makeInt(A.asInt() / B.asInt());
    }
    if (B.toDouble() == 0.0) {
      Trap = TrapKind::DivisionByZero;
      return std::nullopt;
    }
    return Value::makeFloat(A.toDouble() / B.toDouble());
  case Opcode::Mod:
    if (BothInt) {
      if (B.asInt() == 0) {
        Trap = TrapKind::DivisionByZero;
        return std::nullopt;
      }
      if (A.asInt() == INT64_MIN && B.asInt() == -1)
        return Value::makeInt(0);
      return Value::makeInt(A.asInt() % B.asInt());
    }
    if (B.toDouble() == 0.0) {
      Trap = TrapKind::DivisionByZero;
      return std::nullopt;
    }
    return Value::makeFloat(std::fmod(A.toDouble(), B.toDouble()));

  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr: {
    if (!BothInt) {
      Trap = TrapKind::IntegerOpOnFloat;
      return std::nullopt;
    }
    int64_t X = A.asInt(), Y = B.asInt();
    switch (Op) {
    case Opcode::And:
      return Value::makeInt(X & Y);
    case Opcode::Or:
      return Value::makeInt(X | Y);
    case Opcode::Xor:
      return Value::makeInt(X ^ Y);
    case Opcode::Shl:
      return Value::makeInt(static_cast<int64_t>(static_cast<uint64_t>(X)
                                                 << (Y & 63)));
    case Opcode::Shr:
      return Value::makeInt(X >> (Y & 63)); // arithmetic shift, Java-style
    default:
      break;
    }
    assert(false && "unhandled integer op");
    return std::nullopt;
  }

  case Opcode::Eq:
    return Value::makeInt(A.equals(B) ? 1 : 0);
  case Opcode::Ne:
    return Value::makeInt(A.equals(B) ? 0 : 1);
  case Opcode::Lt:
    if (BothInt)
      return Value::makeInt(A.asInt() < B.asInt() ? 1 : 0);
    return Value::makeInt(A.toDouble() < B.toDouble() ? 1 : 0);
  case Opcode::Le:
    if (BothInt)
      return Value::makeInt(A.asInt() <= B.asInt() ? 1 : 0);
    return Value::makeInt(A.toDouble() <= B.toDouble() ? 1 : 0);
  case Opcode::Gt:
    if (BothInt)
      return Value::makeInt(A.asInt() > B.asInt() ? 1 : 0);
    return Value::makeInt(A.toDouble() > B.toDouble() ? 1 : 0);
  case Opcode::Ge:
    if (BothInt)
      return Value::makeInt(A.asInt() >= B.asInt() ? 1 : 0);
    return Value::makeInt(A.toDouble() >= B.toDouble() ? 1 : 0);

  case Opcode::Min:
    if (BothInt)
      return Value::makeInt(std::min(A.asInt(), B.asInt()));
    return Value::makeFloat(std::min(A.toDouble(), B.toDouble()));
  case Opcode::Max:
    if (BothInt)
      return Value::makeInt(std::max(A.asInt(), B.asInt()));
    return Value::makeFloat(std::max(A.toDouble(), B.toDouble()));

  default:
    assert(false && "not a binary opcode");
    return std::nullopt;
  }
}

std::optional<Value> vm::evalUnary(Opcode Op, const Value &A, TrapKind &Trap) {
  Trap = TrapKind::None;
  switch (Op) {
  case Opcode::Neg:
    if (A.isInt())
      return Value::makeInt(wrapSub(0, A.asInt()));
    return Value::makeFloat(-A.asFloat());
  case Opcode::Not:
    return Value::makeInt(A.isTruthy() ? 0 : 1);
  case Opcode::I2F:
    return Value::makeFloat(A.toDouble());
  case Opcode::F2I:
    if (A.isInt())
      return A;
    return Value::makeInt(static_cast<int64_t>(A.asFloat()));
  case Opcode::Sqrt:
    return Value::makeFloat(std::sqrt(A.toDouble()));
  case Opcode::Sin:
    return Value::makeFloat(std::sin(A.toDouble()));
  case Opcode::Cos:
    return Value::makeFloat(std::cos(A.toDouble()));
  case Opcode::Floor:
    if (A.isInt())
      return A;
    return Value::makeFloat(std::floor(A.asFloat()));
  case Opcode::Abs:
    if (A.isInt())
      return Value::makeInt(A.asInt() < 0 ? wrapSub(0, A.asInt()) : A.asInt());
    return Value::makeFloat(std::fabs(A.asFloat()));
  default:
    assert(false && "not a unary opcode");
    return std::nullopt;
  }
}
