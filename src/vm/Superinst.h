//===- vm/Superinst.h - Superinstruction fusion for the interpreter -------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Superinstruction support for the decoded (threaded/fused) interpreter
/// modes (vm/Dispatch.h).  A bytecode function is predecoded into a stream
/// of DecodedInstr — per-instruction virtual-clock charges computed once,
/// branch targets resolved to decoded indices — and, in Fused mode, hot
/// adjacent opcode pairs are rewritten into single decoded slots that a
/// combined handler executes.
///
/// Fusion is a pure host-side rewrite.  A fused slot carries *both*
/// constituents' operands and charges, and the combined handler replays the
/// reference interpreter's exact sequence — charge(first), execute first,
/// pending-trap check, charge(second), execute second — so the virtual
/// clock, profiler sample timing, trace timestamps and policy inputs are
/// bit-identical to unfused execution (`defuse(decode(f)) == f` and the
/// charge-sum property are pinned by tests/test_dispatch.cpp).
///
/// The candidate pair set is fixed at compile time (the X-macro below) so
/// each pair gets a real computed-goto handler; it was chosen by running
/// the miner (mineAdjacentPairs) over the 11 paper workloads and the test
/// corpus.  A SuperinstTable enables a subset of the candidates — by
/// default all of them, or the top-N mined from a specific module and the
/// per-method weights of a recorded trace (methodWeightsFromTrace in
/// support/TraceAnalysis.h).
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_SUPERINST_H
#define EVM_VM_SUPERINST_H

#include "bytecode/Module.h"
#include "vm/Timing.h"

#include <array>
#include <cstdint>
#include <vector>

namespace evm {
namespace vm {

/// The compiled-in superinstruction candidates: `X(First, Second)` per
/// fusable pair, in rank order (hottest first) from mining the paper
/// workloads + test corpus.  Every pair needs First fusable as a head
/// (not a branch/terminator/call) and Second fusable as a tail (not a
/// call); Second may be a branch or ret — compare-and-branch is the
/// hottest pattern in loop-heavy stack code.  Capped at 64 so an enabled
/// set fits one mask word.
#define EVM_SUPERINST_PAIRS(X)                                                 \
  X(LoadLocal, LoadLocal)                                                      \
  X(LoadLocal, ConstInt)                                                       \
  X(StoreLocal, LoadLocal)                                                     \
  X(Add, StoreLocal)                                                           \
  X(ConstInt, Add)                                                             \
  X(ConstInt, StoreLocal)                                                      \
  X(StoreLocal, ConstInt)                                                      \
  X(StoreLocal, Br)                                                            \
  X(Lt, BrFalse)                                                               \
  X(LoadLocal, Lt)                                                             \
  X(LoadLocal, Ret)                                                            \
  X(ConstInt, And)                                                             \
  X(LoadLocal, Add)                                                            \
  X(Add, LoadLocal)                                                            \
  X(ConstInt, Mul)                                                             \
  X(HStore, LoadLocal)                                                         \
  X(ConstFloat, Mul)                                                           \
  X(LoadLocal, ConstFloat)                                                     \
  X(Add, HLoad)                                                                \
  X(Mul, Add)                                                                  \
  X(Mul, LoadLocal)                                                            \
  X(LoadLocal, StoreLocal)                                                     \
  X(LoadLocal, Mul)                                                            \
  X(LoadLocal, Sub)                                                            \
  X(ConstInt, LoadLocal)                                                       \
  X(ConstInt, Sub)                                                             \
  X(ConstInt, Lt)                                                              \
  X(Sub, StoreLocal)                                                           \
  X(Mul, StoreLocal)                                                           \
  X(Add, HStore)                                                               \
  X(LoadLocal, Le)                                                             \
  X(LoadLocal, Gt)                                                             \
  X(LoadLocal, Ge)                                                             \
  X(LoadLocal, Eq)                                                             \
  X(LoadLocal, HLoad)                                                          \
  X(LoadLocal, BrFalse)                                                        \
  X(Le, BrFalse)                                                               \
  X(Gt, BrFalse)                                                               \
  X(Ge, BrFalse)                                                               \
  X(Eq, BrFalse)                                                               \
  X(Ne, BrFalse)                                                               \
  X(Lt, BrTrue)                                                                \
  X(Ge, BrTrue)

/// Number of compiled-in candidate pairs.
#define EVM_SUPERINST_COUNT_ONE(A, B) +1
constexpr size_t NumSuperinstPairs = 0 EVM_SUPERINST_PAIRS(
    EVM_SUPERINST_COUNT_ONE);
#undef EVM_SUPERINST_COUNT_ONE
static_assert(NumSuperinstPairs <= 64, "enabled set must fit a mask word");

/// An adjacent opcode pair.
struct OpcodePair {
  bc::Opcode First;
  bc::Opcode Second;

  bool operator==(const OpcodePair &O) const {
    return First == O.First && Second == O.Second;
  }
};

/// The compiled-in candidates, in X-macro (rank) order.
const std::array<OpcodePair, NumSuperinstPairs> &supportedSuperinstPairs();

/// Index of (A, B) in supportedSuperinstPairs(), or -1 if not a candidate.
int supportedPairIndex(bc::Opcode A, bc::Opcode B);

/// "loadlocal+brfalse"-style stable label for pair \p Index (metrics keys,
/// evm-prof tables).
std::string superinstPairName(size_t Index);

/// May \p Op start a fused pair?  Branches, terminators and calls cannot:
/// control leaving the pair mid-way is unsupported.
bool isFusableHead(bc::Opcode Op);
/// May \p Op end a fused pair?  Everything but Call (whose body re-enters
/// the engine) — branches and Ret are the hottest tails.
bool isFusableTail(bc::Opcode Op);

/// An enabled subset of the candidates.  Engines decode against the mask.
struct SuperinstTable {
  std::vector<OpcodePair> Pairs; ///< each must be a supported candidate

  /// Bit i set iff supported candidate i is enabled.
  uint64_t enabledMask() const;
};

/// All compiled-in candidates enabled (the default engine table).
SuperinstTable defaultSuperinstTable();

/// One slot of a predecoded function.  `Handler < bc::NumOpcodes` is a
/// single instruction (Handler == opcode); `Handler >= bc::NumOpcodes`
/// executes supported pair `Handler - bc::NumOpcodes`, whose constituents'
/// operands/charges sit in (Operand, Charge) / (Operand2, Charge2) and
/// whose original pcs are OrigPc / OrigPc + 1.  Branch operands hold
/// *decoded* indices; OrigPc preserves the original pc for trap locations
/// and defusing.
struct DecodedInstr {
  int64_t Operand = 0;
  int64_t Operand2 = 0;
  uint64_t Charge = 0;  ///< dispatch + scalar cost of the (first) opcode
  uint64_t Charge2 = 0; ///< same for the fused second; 0 in single slots
  uint32_t OrigPc = 0;
  uint16_t Handler = 0;
};

/// A predecoded function body.
struct DecodedFunction {
  std::vector<DecodedInstr> Code;
  uint32_t FusedSites = 0; ///< fused slots (static count)
};

/// The reference interpreter's per-instruction charge for \p Op.
uint64_t interpChargeCycles(const TimingModel &TM, bc::Opcode Op);

/// Predecodes \p F: resolves charges, remaps branch targets, and greedily
/// fuses adjacent pairs whose candidate bit is set in \p EnabledMask (a
/// second instruction that is a branch target never fuses).  Greedy
/// left-to-right, non-overlapping — deterministic for fixed inputs.
DecodedFunction decodeFunction(const bc::Function &F, const TimingModel &TM,
                               uint64_t EnabledMask);

/// Exact inverse of decodeFunction: reconstructs the original instruction
/// stream, fused slots expanded and branch targets mapped back to original
/// pcs.  `defuseFunction(decodeFunction(F, TM, Mask)) == F.Code` for every
/// function and mask (pinned by test_dispatch).
std::vector<bc::Instr> defuseFunction(const DecodedFunction &D);

/// One mined pair with its (weighted) static-adjacency count.
struct MinedPair {
  OpcodePair Pair;
  uint64_t Count;
};

/// Counts every fusable adjacent pair in \p M (all pairs, not just
/// compiled-in candidates), each occurrence weighted by its method's entry
/// in \p MethodWeights (missing/empty entries weigh 1; a 0 weight skips
/// the method).  Sorted by count descending, ties broken by opcode order —
/// deterministic for fixed inputs.
std::vector<MinedPair>
mineAdjacentPairs(const bc::Module &M,
                  const std::vector<uint64_t> &MethodWeights = {});

/// Mines a SuperinstTable for \p M: the top \p TopN supported candidates
/// by weighted adjacency count.  Weights typically come from a recorded
/// trace via methodWeightsFromTrace (support/TraceAnalysis.h), closing the
/// loop the issue describes: trace -> hot methods -> fusion table.
SuperinstTable
mineSuperinstTable(const bc::Module &M,
                   const std::vector<uint64_t> &MethodWeights = {},
                   size_t TopN = NumSuperinstPairs);

/// Host-side execution counters for the decoded modes.  Never part of
/// RunResult (which must stay byte-identical across modes); read them via
/// ExecutionEngine::dispatchStats for coverage reporting (bench_dispatch,
/// evm-prof --fusion).
struct DispatchStats {
  uint64_t Instrs = 0;     ///< bytecode instructions retired (pairs count 2)
  uint64_t FusedExecs = 0; ///< fused slots executed
  std::array<uint64_t, NumSuperinstPairs> PairExecs{}; ///< per candidate
};

} // namespace vm
} // namespace evm

#endif // EVM_VM_SUPERINST_H
