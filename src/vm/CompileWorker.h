//===- vm/CompileWorker.h - Background compile workers --------------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CompileWorkerPool: the background compilation pipeline modeled on Jikes
/// RVM's dedicated compilation thread.  Real std::threads run
/// jit::compileAtLevel off the execution thread; *when* the finished code
/// becomes installable is decided by a deterministic virtual scheduler that
/// runs entirely on the execution thread:
///
///   StartCycle   = max(RequestCycle + CompileQueueDelayCycles,
///                      WorkerFreeCycle[w])      (w = earliest-free worker,
///                                                lowest index on ties)
///   ReadyAtCycle = StartCycle + CostCycles
///   WorkerFreeCycle[w] = ReadyAtCycle
///
/// Because worker assignment and ready times never consult the host clock
/// or real thread progress, two runs with the same seed and worker count
/// produce bit-identical virtual clocks; the real threads only determine
/// how much *host* time the simulation spends waiting in takeReady().
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_COMPILEWORKER_H
#define EVM_VM_COMPILEWORKER_H

#include "support/Trace.h"
#include "vm/CompileQueue.h"

#include <thread>
#include <vector>

namespace evm {
namespace vm {

/// A pool of background compile workers for one module.  All methods except
/// the worker entry point must be called from the execution thread.
class CompileWorkerPool {
public:
  /// Spawns TM.NumCompileWorkers real threads (at least one; a pool is only
  /// created when the model is asynchronous).
  CompileWorkerPool(const bc::Module &M, const TimingModel &TM);
  ~CompileWorkerPool();

  CompileWorkerPool(const CompileWorkerPool &) = delete;
  CompileWorkerPool &operator=(const CompileWorkerPool &) = delete;

  /// Enqueues a background compile of \p Id at \p L issued at virtual cycle
  /// \p NowCycles with modeled cost \p CostCycles.  Returns false when the
  /// request was dropped: a compile of \p Id at >= \p L is already in
  /// flight (coalescing), or TM.CompileQueueCapacity requests are already
  /// in flight (checked against the virtual in-flight set so the decision
  /// is deterministic).
  bool request(bc::MethodId Id, OptLevel L, uint64_t NowCycles,
               uint64_t CostCycles);

  /// True when a compile of \p Id at a level >= \p L is in flight.
  bool hasPending(bc::MethodId Id, OptLevel L) const;

  /// Removes and returns every request whose ReadyAtCycle <= \p NowCycles,
  /// ordered by (ReadyAtCycle, SeqNo).  Blocks on the real worker thread
  /// when virtual time has already arrived but the host compile has not
  /// finished — waiting does not advance the virtual clock, so determinism
  /// is unaffected.
  std::vector<CompileResult> takeReady(uint64_t NowCycles);

  /// Virtual cycles until the earliest virtual worker frees up (0 when one
  /// is idle): the queue-delay term the cost-benefit model prices.
  uint64_t backlogCycles(uint64_t NowCycles) const;

  /// Waits for all in-flight host compiles, discards their results, and
  /// rewinds the virtual timelines.  Called by the engine between runs.
  void reset();

  /// Virtual cycles spent compiling on worker timelines since the last
  /// reset (installed or not).
  uint64_t overlappedCycles() const { return OverlappedCycles; }

  /// Requests dropped because the bounded queue was full, since the last
  /// reset.  Coalesced duplicates are not counted.
  uint64_t droppedRequests() const { return DroppedRequests; }

  unsigned numWorkers() const {
    return static_cast<unsigned>(WorkerFreeCycle.size());
  }

  /// Points the pool at the engine's recorder (may be null).  Queue events
  /// (enqueue/start/ready/drop/coalesce) are emitted from the execution
  /// thread at request time — start/ready carry their *future* virtual
  /// timestamps, which the deterministic scheduler already knows.
  void setTracer(TraceRecorder *T) { Tracer = T; }

private:
  void workerMain();

  const bc::Module &M;
  const uint64_t Capacity;   ///< max in-flight (not yet installed) requests
  const uint64_t QueueDelay; ///< TM.CompileQueueDelayCycles
  CompileQueue Queue;
  std::vector<std::thread> Threads;

  // Execution-thread state (never touched by workers).
  std::vector<uint64_t> WorkerFreeCycle; ///< virtual timeline per worker
  std::vector<CompileRequest> InFlight;  ///< awaiting install, by SeqNo
  uint64_t NextSeqNo = 0;
  uint64_t OverlappedCycles = 0;
  uint64_t DroppedRequests = 0;
  TraceRecorder *Tracer = nullptr; ///< written to from the execution thread
};

} // namespace vm
} // namespace evm

#endif // EVM_VM_COMPILEWORKER_H
