//===- vm/jit/Lowering.cpp ------------------------------------------------==//

#include "vm/jit/Lowering.h"

#include "vm/Eval.h"

#include <cassert>
#include <map>

using namespace evm;
using namespace evm::vm;
using namespace evm::vm::jit;
using bc::Instr;
using bc::Opcode;

IRFunction jit::lowerToIR(const bc::Module &M, bc::MethodId Id) {
  const bc::Function &F = M.function(Id);
  const auto &Code = F.Code;
  assert(!Code.empty() && "lowering an empty function");

  // Leader identification: pc 0, every branch target, and every instruction
  // following a branch or terminator.
  std::vector<bool> IsLeader(Code.size(), false);
  IsLeader[0] = true;
  for (size_t Pc = 0; Pc != Code.size(); ++Pc) {
    const bc::OpcodeInfo &Info = bc::getOpcodeInfo(Code[Pc].Op);
    if (Info.IsBranch)
      IsLeader[static_cast<size_t>(Code[Pc].Operand)] = true;
    if ((Info.IsBranch || Info.IsTerminator) && Pc + 1 < Code.size())
      IsLeader[Pc + 1] = true;
  }

  // Map each leader pc to a block id, in pc order (so the entry is block 0).
  std::map<size_t, BlockId> BlockAt;
  for (size_t Pc = 0; Pc != Code.size(); ++Pc)
    if (IsLeader[Pc])
      BlockAt.emplace(Pc, static_cast<BlockId>(BlockAt.size()));

  // Reachability over leaders, so dead bytecode (legal but never executed)
  // does not go through stack simulation.
  std::vector<bool> LeaderReachable(Code.size(), false);
  {
    std::vector<size_t> Worklist = {0};
    LeaderReachable[0] = true;
    while (!Worklist.empty()) {
      size_t Pc = Worklist.back();
      Worklist.pop_back();
      // Walk the block starting at this leader to its last instruction.
      for (; Pc != Code.size(); ++Pc) {
        const bc::OpcodeInfo &Info = bc::getOpcodeInfo(Code[Pc].Op);
        if (Info.IsBranch) {
          size_t Taken = static_cast<size_t>(Code[Pc].Operand);
          if (!LeaderReachable[Taken]) {
            LeaderReachable[Taken] = true;
            Worklist.push_back(Taken);
          }
          if (Code[Pc].Op == Opcode::Br)
            break;
          if (!LeaderReachable[Pc + 1]) {
            LeaderReachable[Pc + 1] = true;
            Worklist.push_back(Pc + 1);
          }
          break;
        }
        if (Info.IsTerminator)
          break; // Ret
        if (Pc + 1 < Code.size() && IsLeader[Pc + 1]) {
          if (!LeaderReachable[Pc + 1]) {
            LeaderReachable[Pc + 1] = true;
            Worklist.push_back(Pc + 1);
          }
          break;
        }
      }
    }
  }

  IRFunction IR;
  IR.Name = F.Name;
  IR.NumParams = F.NumParams;
  IR.NumLocals = F.NumLocals;
  IR.NumRegs = F.NumLocals; // temporaries allocated beyond the locals
  IR.Blocks.resize(BlockAt.size());

  std::vector<Reg> Stack;
  auto Pop = [&]() {
    assert(!Stack.empty() && "stack underflow (verifier should have caught)");
    Reg R = Stack.back();
    Stack.pop_back();
    return R;
  };

  for (auto It = BlockAt.begin(); It != BlockAt.end(); ++It) {
    size_t Pc = It->first;
    BlockId B = It->second;
    auto Next = std::next(It);
    size_t EndPc = Next == BlockAt.end() ? Code.size() : Next->first;
    IRBlock &Block = IR.Blocks[B];

    if (!LeaderReachable[Pc]) {
      // Dead block: fill with a trivially valid body so block ids stay
      // stable; nothing ever jumps here.
      IRInstr Imm;
      Imm.Op = IROp::MovImm;
      Imm.Dest = IR.makeReg();
      Imm.Imm = bc::Value::makeInt(0);
      Block.Instrs.push_back(Imm);
      IRInstr RetI;
      RetI.Op = IROp::Ret;
      RetI.A = Imm.Dest;
      Block.Instrs.push_back(RetI);
      continue;
    }

    Stack.clear();

    bool Terminated = false;
    for (; Pc != EndPc; ++Pc) {
      const Instr &I = Code[Pc];
      IRInstr Out;
      switch (I.Op) {
      case Opcode::ConstInt: {
        Out.Op = IROp::MovImm;
        Out.Dest = IR.makeReg();
        Out.Imm = bc::Value::makeInt(I.Operand);
        Stack.push_back(Out.Dest);
        Block.Instrs.push_back(Out);
        break;
      }
      case Opcode::ConstFloat: {
        Out.Op = IROp::MovImm;
        Out.Dest = IR.makeReg();
        Out.Imm = bc::Value::makeFloat(I.floatOperand());
        Stack.push_back(Out.Dest);
        Block.Instrs.push_back(Out);
        break;
      }
      case Opcode::Pop:
        (void)Pop();
        break;
      case Opcode::Dup: {
        // Temporaries are written once per block and locals were copied on
        // load, so re-pushing the same register is safe.
        Reg Top = Pop();
        Stack.push_back(Top);
        Stack.push_back(Top);
        break;
      }
      case Opcode::Swap: {
        Reg T1 = Pop(), T2 = Pop();
        Stack.push_back(T1);
        Stack.push_back(T2);
        break;
      }
      case Opcode::LoadLocal: {
        Out.Op = IROp::Mov;
        Out.Dest = IR.makeReg();
        Out.A = static_cast<Reg>(I.Operand);
        Stack.push_back(Out.Dest);
        Block.Instrs.push_back(Out);
        break;
      }
      case Opcode::StoreLocal: {
        Out.Op = IROp::Mov;
        Out.Dest = static_cast<Reg>(I.Operand);
        Out.A = Pop();
        Block.Instrs.push_back(Out);
        break;
      }
      case Opcode::Br: {
        Out.Op = IROp::Jump;
        Out.Target = BlockAt.at(static_cast<size_t>(I.Operand));
        Block.Instrs.push_back(Out);
        Terminated = true;
        break;
      }
      case Opcode::BrTrue:
      case Opcode::BrFalse: {
        Out.Op = IROp::CondJump;
        Out.A = Pop();
        BlockId Taken = BlockAt.at(static_cast<size_t>(I.Operand));
        assert(Pc + 1 < Code.size() && "conditional at end of code");
        BlockId Fall = BlockAt.at(Pc + 1);
        if (I.Op == Opcode::BrTrue) {
          Out.Target = Taken;
          Out.Target2 = Fall;
        } else {
          Out.Target = Fall;
          Out.Target2 = Taken;
        }
        Block.Instrs.push_back(Out);
        Terminated = true;
        break;
      }
      case Opcode::Call: {
        Out.Op = IROp::Call;
        Out.Callee = static_cast<bc::MethodId>(I.Operand);
        uint32_t Arity = M.function(Out.Callee).NumParams;
        Out.Args.resize(Arity);
        for (uint32_t K = Arity; K-- > 0;)
          Out.Args[K] = Pop();
        Out.Dest = IR.makeReg();
        Stack.push_back(Out.Dest);
        Block.Instrs.push_back(Out);
        break;
      }
      case Opcode::Ret: {
        Out.Op = IROp::Ret;
        Out.A = Pop();
        Block.Instrs.push_back(Out);
        Terminated = true;
        break;
      }
      case Opcode::NewArr: {
        Out.Op = IROp::NewArr;
        Out.A = Pop();
        Out.Dest = IR.makeReg();
        Stack.push_back(Out.Dest);
        Block.Instrs.push_back(Out);
        break;
      }
      case Opcode::HLoad: {
        Out.Op = IROp::HLoad;
        Out.A = Pop();
        Out.Dest = IR.makeReg();
        Stack.push_back(Out.Dest);
        Block.Instrs.push_back(Out);
        break;
      }
      case Opcode::HStore: {
        Out.Op = IROp::HStore;
        Out.B = Pop(); // value
        Out.A = Pop(); // address
        Block.Instrs.push_back(Out);
        break;
      }
      case Opcode::Nop:
        break;
      default: {
        if (vm::isBinaryOp(I.Op)) {
          Out.Op = IROp::Binary;
          Out.ScalarOp = I.Op;
          Out.B = Pop();
          Out.A = Pop();
          Out.Dest = IR.makeReg();
          Stack.push_back(Out.Dest);
          Block.Instrs.push_back(Out);
        } else {
          assert(vm::isUnaryOp(I.Op) && "unhandled opcode in lowering");
          Out.Op = IROp::Unary;
          Out.ScalarOp = I.Op;
          Out.A = Pop();
          Out.Dest = IR.makeReg();
          Stack.push_back(Out.Dest);
          Block.Instrs.push_back(Out);
        }
        break;
      }
      }
      if (Terminated)
        break;
    }

    if (!Terminated) {
      // Fallthrough into the next leader: make the edge explicit.
      assert(Stack.empty() && "nonempty stack across a block boundary");
      assert(Pc < Code.size() && "fell off the end of the function");
      IRInstr Jump;
      Jump.Op = IROp::Jump;
      Jump.Target = BlockAt.at(EndPc);
      Block.Instrs.push_back(Jump);
    }
  }

  assert(IR.validate().empty() && "lowering produced invalid IR");
  return IR;
}
