//===- vm/jit/Lowering.h - Stack bytecode to register IR -----------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates verified stack bytecode into the register IR via abstract
/// stack simulation.  The verifier's empty-stack-at-branch discipline means
/// every expression temporary is block-local, so no phi insertion is needed:
/// locals become fixed registers and each stack push allocates a fresh,
/// written-once temporary.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_JIT_LOWERING_H
#define EVM_VM_JIT_LOWERING_H

#include "bytecode/Module.h"
#include "vm/jit/IR.h"

namespace evm {
namespace vm {
namespace jit {

/// Lowers \p M.function(Id) to IR.  The function must have passed the
/// verifier; lowering asserts (rather than reports) on malformed input.
IRFunction lowerToIR(const bc::Module &M, bc::MethodId Id);

} // namespace jit
} // namespace vm
} // namespace evm

#endif // EVM_VM_JIT_LOWERING_H
