//===- vm/jit/LocalPasses.cpp - Block-local optimizations -----------------==//
//
// Constant folding, copy propagation, and value-numbering CSE.  All three
// share the same structure: one forward scan per block with a map that is
// invalidated on redefinition.  Non-SSA discipline: locals can be written
// many times; temporaries are written once per block by lowering (passes
// still invalidate defensively rather than relying on that).
//
//===----------------------------------------------------------------------===//

#include "vm/jit/Passes.h"

#include "vm/Eval.h"

#include <map>
#include <unordered_map>

using namespace evm;
using namespace evm::vm;
using namespace evm::vm::jit;
using bc::Value;

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

bool jit::foldConstantsLocal(IRFunction &F) {
  bool Changed = false;
  for (IRBlock &Block : F.Blocks) {
    std::unordered_map<Reg, Value> Consts;
    auto Lookup = [&](Reg R) -> const Value * {
      auto It = Consts.find(R);
      return It == Consts.end() ? nullptr : &It->second;
    };
    auto Invalidate = [&](Reg R) { Consts.erase(R); };

    for (IRInstr &I : Block.Instrs) {
      switch (I.Op) {
      case IROp::MovImm:
        Invalidate(I.Dest);
        Consts.emplace(I.Dest, I.Imm);
        break;
      case IROp::Mov:
        if (const Value *V = Lookup(I.A)) {
          I.Op = IROp::MovImm;
          I.Imm = *V;
          Invalidate(I.Dest);
          Consts.emplace(I.Dest, *V);
          Changed = true;
        } else {
          Invalidate(I.Dest);
        }
        break;
      case IROp::Binary: {
        const Value *A = Lookup(I.A), *B = Lookup(I.B);
        Invalidate(I.Dest);
        if (A && B) {
          TrapKind Trap;
          if (auto Result = evalBinary(I.ScalarOp, *A, *B, Trap)) {
            I.Op = IROp::MovImm;
            I.Imm = *Result;
            Consts.emplace(I.Dest, *Result);
            Changed = true;
          }
          // A folding-time trap stays in the code and traps at run time.
        }
        break;
      }
      case IROp::Unary: {
        const Value *A = Lookup(I.A);
        Invalidate(I.Dest);
        if (A) {
          TrapKind Trap;
          if (auto Result = evalUnary(I.ScalarOp, *A, Trap)) {
            I.Op = IROp::MovImm;
            I.Imm = *Result;
            Consts.emplace(I.Dest, *Result);
            Changed = true;
          }
        }
        break;
      }
      case IROp::CondJump:
        if (const Value *V = Lookup(I.A)) {
          BlockId Target = V->isTruthy() ? I.Target : I.Target2;
          I.Op = IROp::Jump;
          I.Target = Target;
          I.Target2 = 0;
          I.A = 0;
          Changed = true;
        }
        break;
      default:
        if (I.hasDest())
          Invalidate(I.Dest);
        break;
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Copy propagation
//===----------------------------------------------------------------------===//

bool jit::propagateCopiesLocal(IRFunction &F) {
  bool Changed = false;
  for (IRBlock &Block : F.Blocks) {
    std::unordered_map<Reg, Reg> CopyOf; // dest -> source of a live copy

    auto Resolve = [&](Reg R) {
      // Chains are short; follow to the root.
      while (true) {
        auto It = CopyOf.find(R);
        if (It == CopyOf.end())
          return R;
        R = It->second;
      }
    };
    auto InvalidateWritesTo = [&](Reg R) {
      CopyOf.erase(R);
      for (auto It = CopyOf.begin(); It != CopyOf.end();) {
        if (It->second == R)
          It = CopyOf.erase(It);
        else
          ++It;
      }
    };
    auto RewriteUse = [&](Reg &R) {
      Reg Root = Resolve(R);
      if (Root != R) {
        R = Root;
        Changed = true;
      }
    };

    for (IRInstr &I : Block.Instrs) {
      switch (I.Op) {
      case IROp::Mov:
        RewriteUse(I.A);
        break;
      case IROp::Binary:
      case IROp::HStore:
        RewriteUse(I.A);
        RewriteUse(I.B);
        break;
      case IROp::Unary:
      case IROp::NewArr:
      case IROp::HLoad:
      case IROp::Ret:
      case IROp::CondJump:
        RewriteUse(I.A);
        break;
      case IROp::Call:
        for (Reg &R : I.Args)
          RewriteUse(R);
        break;
      case IROp::MovImm:
      case IROp::Jump:
        break;
      }

      if (I.hasDest())
        InvalidateWritesTo(I.Dest);
      if (I.Op == IROp::Mov && I.Dest != I.A)
        CopyOf.emplace(I.Dest, I.A);
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Local CSE via value numbering
//===----------------------------------------------------------------------===//

namespace {

/// Expression key for the value-numbering table.
struct ExprKey {
  IROp Op;
  bc::Opcode ScalarOp;
  uint64_t A; ///< value number or immediate bits
  uint64_t B;

  bool operator<(const ExprKey &O) const {
    if (Op != O.Op)
      return Op < O.Op;
    if (ScalarOp != O.ScalarOp)
      return ScalarOp < O.ScalarOp;
    if (A != O.A)
      return A < O.A;
    return B < O.B;
  }
};

bool isCommutative(bc::Opcode Op) {
  switch (Op) {
  case bc::Opcode::Add:
  case bc::Opcode::Mul:
  case bc::Opcode::And:
  case bc::Opcode::Or:
  case bc::Opcode::Xor:
  case bc::Opcode::Eq:
  case bc::Opcode::Ne:
  case bc::Opcode::Min:
  case bc::Opcode::Max:
    return true;
  default:
    return false;
  }
}

} // namespace

bool jit::eliminateCommonSubexprsLocal(IRFunction &F) {
  bool Changed = false;
  for (IRBlock &Block : F.Blocks) {
    uint64_t NextVN = 1;
    std::unordered_map<Reg, uint64_t> RegVN;
    std::map<ExprKey, std::pair<uint64_t, Reg>> Table; // key -> (vn, holder)

    auto VNOf = [&](Reg R) {
      auto It = RegVN.find(R);
      if (It != RegVN.end())
        return It->second;
      uint64_t VN = NextVN++;
      RegVN.emplace(R, VN);
      return VN;
    };

    for (IRInstr &I : Block.Instrs) {
      switch (I.Op) {
      case IROp::MovImm: {
        ExprKey Key{IROp::MovImm, bc::Opcode::Nop,
                    static_cast<uint64_t>(
                        I.Imm.isInt() ? I.Imm.asInt()
                                      : bc::Instr::encodeFloat(I.Imm.asFloat())),
                    I.Imm.isInt() ? 0ull : 1ull};
        auto It = Table.find(Key);
        if (It != Table.end() && VNOf(It->second.second) == It->second.first) {
          Reg Holder = It->second.second;
          I.Op = IROp::Mov;
          I.A = Holder;
          RegVN[I.Dest] = It->second.first;
          Changed = true;
        } else {
          uint64_t VN = NextVN++;
          RegVN[I.Dest] = VN;
          Table[Key] = {VN, I.Dest};
        }
        break;
      }
      case IROp::Mov:
        RegVN[I.Dest] = VNOf(I.A);
        break;
      case IROp::Binary:
      case IROp::Unary: {
        uint64_t VA = VNOf(I.A);
        uint64_t VB = I.Op == IROp::Binary ? VNOf(I.B) : 0;
        if (I.Op == IROp::Binary && isCommutative(I.ScalarOp) && VB < VA)
          std::swap(VA, VB);
        ExprKey Key{I.Op, I.ScalarOp, VA, VB};
        auto It = Table.find(Key);
        if (It != Table.end() && VNOf(It->second.second) == It->second.first) {
          // Reusing an identical prior computation is trap-equivalent: had
          // the first one trapped, we would not be here.
          Reg Holder = It->second.second;
          I.Op = IROp::Mov;
          I.ScalarOp = bc::Opcode::Nop;
          I.A = Holder;
          I.B = 0;
          RegVN[I.Dest] = It->second.first;
          Changed = true;
        } else {
          uint64_t VN = NextVN++;
          RegVN[I.Dest] = VN;
          Table[Key] = {VN, I.Dest};
        }
        break;
      }
      case IROp::Call:
      case IROp::NewArr:
      case IROp::HLoad:
        // Impure or heap-dependent: always a fresh value.
        RegVN[I.Dest] = NextVN++;
        break;
      default:
        break;
      }
    }
  }
  return Changed;
}
