//===- vm/jit/TypeInference.cpp -------------------------------------------==//

#include "vm/jit/TypeInference.h"

#include <cassert>

using namespace evm;
using namespace evm::vm;
using namespace evm::vm::jit;
using bc::Opcode;

RegType jit::joinRegTypes(RegType A, RegType B) {
  if (A == RegType::Unknown)
    return B;
  if (B == RegType::Unknown)
    return A;
  if (A == B)
    return A;
  return RegType::Mixed;
}

namespace {

/// Result type of a Binary op given operand types.
RegType binaryResultType(Opcode Op, RegType A, RegType B) {
  switch (Op) {
  case Opcode::Eq:
  case Opcode::Ne:
  case Opcode::Lt:
  case Opcode::Le:
  case Opcode::Gt:
  case Opcode::Ge:
    return RegType::Int; // comparisons push 0/1
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
    return RegType::Int; // trap on floats, so results are int
  default:
    break;
  }
  // Promoting arithmetic.  A proven-float side forces a float result
  // regardless of the other side (int promotes, float stays).  An Unknown
  // side means "no definition processed yet": defer rather than poisoning
  // the monotonic iteration with Mixed.
  if (A == RegType::Float || B == RegType::Float)
    return RegType::Float;
  if (A == RegType::Unknown || B == RegType::Unknown)
    return RegType::Unknown;
  if (A == RegType::Int && B == RegType::Int)
    return RegType::Int;
  return RegType::Mixed;
}

/// Result type of a Unary op.
RegType unaryResultType(Opcode Op, RegType A) {
  switch (Op) {
  case Opcode::Not:
  case Opcode::F2I:
    return RegType::Int;
  case Opcode::I2F:
  case Opcode::Sqrt:
  case Opcode::Sin:
  case Opcode::Cos:
    return RegType::Float;
  case Opcode::Neg:
  case Opcode::Floor:
  case Opcode::Abs:
    return A; // kind-preserving
  default:
    assert(false && "not a unary opcode");
    return RegType::Mixed;
  }
}

} // namespace

std::vector<RegType> jit::inferRegTypes(const IRFunction &F) {
  std::vector<RegType> Types(F.NumRegs, RegType::Unknown);

  // Parameters can be either kind; non-param locals start zero (Int) but may
  // be redefined, which the join handles.
  for (Reg R = 0; R != F.NumParams; ++R)
    Types[R] = RegType::Mixed;
  for (Reg R = F.NumParams; R != F.NumLocals; ++R)
    Types[R] = RegType::Int;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const IRBlock &Block : F.Blocks) {
      for (const IRInstr &I : Block.Instrs) {
        if (!I.hasDest())
          continue;
        RegType New;
        switch (I.Op) {
        case IROp::MovImm:
          New = I.Imm.isInt() ? RegType::Int : RegType::Float;
          break;
        case IROp::Mov:
          New = Types[I.A];
          break;
        case IROp::Binary:
          New = binaryResultType(I.ScalarOp, Types[I.A], Types[I.B]);
          break;
        case IROp::Unary:
          New = unaryResultType(I.ScalarOp, Types[I.A]);
          break;
        case IROp::NewArr:
          New = RegType::Int; // heap addresses are ints
          break;
        case IROp::Call:
        case IROp::HLoad:
          New = RegType::Mixed; // interprocedural/heap: unanalyzed
          break;
        default:
          New = RegType::Mixed;
          break;
        }
        RegType Joined = joinRegTypes(Types[I.Dest], New);
        if (Joined != Types[I.Dest]) {
          Types[I.Dest] = Joined;
          Changed = true;
        }
      }
    }
  }
  return Types;
}
