//===- vm/jit/LICM.cpp - Loop-invariant code motion -----------------------==//
//
// Hoists pure, non-trapping computations out of natural loops into a
// preheader.  The pass exploits two structural facts of this IR:
//
//   * A natural loop's header dominates every block in its body, and an
//     inserted preheader dominates the header, so a hoisted definition
//     dominates every use inside the loop.
//   * Expression temporaries (registers >= NumLocals) are block-local and
//     written once, so hoisting a temp-defining instruction can never
//     clobber a value another path relies on, and all its uses see the same
//     (invariant) value.
//
// Hoisting is therefore restricted to temp-defining MovImm/Mov/Binary/Unary
// instructions from the non-trapping subset whose operands are invariant:
// either registers with no definition anywhere in the loop, or temps whose
// defining instruction was itself hoisted.
//
//===----------------------------------------------------------------------===//

#include "vm/jit/Passes.h"

#include "vm/jit/Dominators.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <unordered_map>

using namespace evm;
using namespace evm::vm;
using namespace evm::vm::jit;

namespace {

/// True when hoisting \p I cannot introduce a trap or reorder effects.
bool isHoistableOp(const IRInstr &I) {
  switch (I.Op) {
  case IROp::MovImm:
  case IROp::Mov:
  case IROp::Unary:
    return true;
  case IROp::Binary:
    return I.isRemovableIfDead(); // same non-trapping subset
  default:
    return false;
  }
}

/// Ensures \p Header has a dedicated preheader: a block whose single
/// successor is the header and which owns every loop-entry edge.  Returns
/// its id.  May append a new block (invalidating nothing: ids are indices).
BlockId ensurePreheader(IRFunction &F, const NaturalLoop &Loop) {
  auto Preds = F.predecessors();
  std::vector<BlockId> OutsidePreds;
  for (BlockId P : Preds[Loop.Header])
    if (!Loop.contains(P))
      OutsidePreds.push_back(P);

  // An existing unique outside predecessor that only jumps to the header
  // already serves as a preheader.
  if (OutsidePreds.size() == 1) {
    const IRBlock &Candidate = F.Blocks[OutsidePreds[0]];
    const IRInstr &T = Candidate.terminator();
    if (T.Op == IROp::Jump && T.Target == Loop.Header)
      return OutsidePreds[0];
  }

  // Insert a fresh preheader and retarget every outside edge through it.
  BlockId Pre = static_cast<BlockId>(F.Blocks.size());
  IRBlock PreBlock;
  IRInstr Jump;
  Jump.Op = IROp::Jump;
  Jump.Target = Loop.Header;
  PreBlock.Instrs.push_back(Jump);
  F.Blocks.push_back(std::move(PreBlock));

  for (BlockId P : OutsidePreds) {
    IRInstr &T = F.Blocks[P].Instrs.back();
    if (T.Op == IROp::Jump && T.Target == Loop.Header)
      T.Target = Pre;
    if (T.Op == IROp::CondJump) {
      if (T.Target == Loop.Header)
        T.Target = Pre;
      if (T.Target2 == Loop.Header)
        T.Target2 = Pre;
    }
  }
  return Pre;
}

} // namespace

bool jit::hoistLoopInvariants(IRFunction &F) {
  DominatorTree DT(F);
  std::vector<NaturalLoop> Loops = findNaturalLoops(F, DT);
  if (Loops.empty())
    return false;

  bool Changed = false;
  for (const NaturalLoop &Loop : Loops) {
    // The entry block cannot get a preheader edge split safely if it is the
    // header of a loop whose preds include "function entry"; skip that rare
    // shape (entry-as-header means there is no outside predecessor at all).
    if (Loop.Header == 0)
      continue;

    // Definition counts per register across the loop body.
    std::unordered_map<Reg, int> DefCount;
    for (BlockId B : Loop.Body)
      for (const IRInstr &I : F.Blocks[B].Instrs)
        if (I.hasDest())
          ++DefCount[I.Dest];

    std::set<Reg> HoistedDests;
    auto IsInvariantOperand = [&](Reg R) {
      auto It = DefCount.find(R);
      if (It == DefCount.end() || It->second == 0)
        return true; // never defined inside the loop
      return HoistedDests.count(R) != 0;
    };

    // Collect hoistable instructions in loop-body program order, iterating
    // to a fixpoint so chains (t1 = sin x; t2 = t1 * t1) hoist together.
    std::vector<std::pair<BlockId, size_t>> ToHoist;
    std::set<std::pair<BlockId, size_t>> Marked;
    bool Grew = true;
    while (Grew) {
      Grew = false;
      for (BlockId B : Loop.Body) {
        const IRBlock &Block = F.Blocks[B];
        for (size_t K = 0; K != Block.Instrs.size(); ++K) {
          const IRInstr &I = Block.Instrs[K];
          if (Marked.count({B, K}))
            continue;
          if (!isHoistableOp(I) || !I.hasDest())
            continue;
          if (I.Dest < F.NumLocals)
            continue; // only block-local temporaries
          if (DefCount[I.Dest] != 1)
            continue; // defensive: unrolling or inlining could duplicate
          std::vector<Reg> Uses;
          I.collectUses(Uses);
          bool Invariant = true;
          for (Reg R : Uses)
            if (!IsInvariantOperand(R)) {
              Invariant = false;
              break;
            }
          if (!Invariant)
            continue;
          Marked.insert({B, K});
          ToHoist.emplace_back(B, K);
          HoistedDests.insert(I.Dest);
          Grew = true;
        }
      }
    }

    if (ToHoist.empty())
      continue;

    BlockId Pre = ensurePreheader(F, Loop);
    IRBlock &PreBlock = F.Blocks[Pre];

    // Move the instructions, preserving their relative order, inserting
    // before the preheader's terminator.  Removal uses per-block descending
    // indices so earlier erasures do not shift later ones.
    std::vector<IRInstr> Moved;
    for (const auto &[B, K] : ToHoist)
      Moved.push_back(F.Blocks[B].Instrs[K]);
    // Erase from blocks (descending index order per block).
    std::vector<std::pair<BlockId, size_t>> Sorted = ToHoist;
    std::sort(Sorted.begin(), Sorted.end(),
              [](const auto &L, const auto &R) {
                if (L.first != R.first)
                  return L.first < R.first;
                return L.second > R.second;
              });
    for (const auto &[B, K] : Sorted)
      F.Blocks[B].Instrs.erase(F.Blocks[B].Instrs.begin() +
                               static_cast<long>(K));

    // Dependency order: ToHoist was gathered over fixpoint rounds, and a
    // dependent instruction can precede its operand's definition in the
    // gather order only if they sit in different rounds; re-sort by
    // (round already encoded in vector order) is insufficient, so
    // topologically order by operand availability.
    std::vector<IRInstr> Ordered;
    std::set<Reg> Available;
    std::vector<bool> Placed(Moved.size(), false);
    bool Progress = true;
    while (Ordered.size() != Moved.size() && Progress) {
      Progress = false;
      for (size_t K = 0; K != Moved.size(); ++K) {
        if (Placed[K])
          continue;
        std::vector<Reg> Uses;
        Moved[K].collectUses(Uses);
        bool Ready = true;
        for (Reg R : Uses)
          if (HoistedDests.count(R) && !Available.count(R)) {
            Ready = false;
            break;
          }
        if (!Ready)
          continue;
        Ordered.push_back(Moved[K]);
        Available.insert(Moved[K].Dest);
        Placed[K] = true;
        Progress = true;
      }
    }
    assert(Ordered.size() == Moved.size() && "cyclic hoist dependency");

    PreBlock.Instrs.insert(PreBlock.Instrs.end() - 1, Ordered.begin(),
                           Ordered.end());
    Changed = true;

    // The CFG changed (possible new preheader); recompute analyses for the
    // remaining loops conservatively by stopping this round.  The compiler
    // pipeline runs LICM to a fixpoint.
    break;
  }
  return Changed;
}
