//===- vm/jit/StrengthReduction.cpp - Algebraic rewrites ------------------==//
//
// Rewrites expensive operations into cheaper equivalents when type inference
// proves the rewrite cannot change semantics:
//
//   x * 2^k  -> x shl k        (int x, k >= 1)
//   x * 1    -> mov x          (int x; 1 * x likewise)
//   x * 0    -> imm 0          (int x; 0 * x likewise)
//   x + 0    -> mov x          (int x; 0 + x likewise)
//   x - 0    -> mov x          (int x)
//   x / 1    -> mov x          (int x)
//
// Float operands are excluded throughout: 0.0/-0.0, NaN propagation, and
// promotion rules make the identities unsound there.  Division by powers of
// two is also excluded (truncating division differs from arithmetic shift
// for negative dividends).
//
//===----------------------------------------------------------------------===//

#include "vm/jit/Passes.h"
#include "vm/jit/TypeInference.h"

#include <unordered_map>

using namespace evm;
using namespace evm::vm;
using namespace evm::vm::jit;
using bc::Opcode;
using bc::Value;

namespace {

/// Returns k when \p V is an int 2^k with k >= 1, else -1.
int log2Exact(const Value &V) {
  if (!V.isInt())
    return -1;
  int64_t X = V.asInt();
  if (X <= 1 || (X & (X - 1)) != 0)
    return -1;
  int K = 0;
  while ((int64_t{1} << K) != X)
    ++K;
  return K;
}

bool isIntConst(const Value *V, int64_t C) {
  return V && V->isInt() && V->asInt() == C;
}

/// Rewrites \p I into `Dest = Mov Src`.
void rewriteToMov(IRInstr &I, Reg Src) {
  I.Op = IROp::Mov;
  I.ScalarOp = Opcode::Nop;
  I.A = Src;
  I.B = 0;
}

/// Rewrites \p I into `Dest = imm 0`.
void rewriteToZero(IRInstr &I) {
  I.Op = IROp::MovImm;
  I.ScalarOp = Opcode::Nop;
  I.Imm = Value::makeInt(0);
  I.A = I.B = 0;
}

} // namespace

bool jit::reduceStrength(IRFunction &F) {
  std::vector<RegType> Types = inferRegTypes(F);
  auto IsInt = [&](Reg R) { return Types[R] == RegType::Int; };

  bool Changed = false;
  for (IRBlock &Block : F.Blocks) {
    // One forward scan with local constant tracking.  mul->shl needs a
    // fresh constant register for the shift amount, so the scan is
    // index-based and inserts in place.
    std::unordered_map<Reg, Value> Consts;
    auto Lookup = [&](Reg R) -> const Value * {
      auto It = Consts.find(R);
      return It == Consts.end() ? nullptr : &It->second;
    };

    for (size_t K = 0; K != Block.Instrs.size(); ++K) {
      // Note: reference taken fresh each iteration; insertion below
      // invalidates it, so the loop continues past the rewritten pair.
      IRInstr &I = Block.Instrs[K];

      if (I.Op == IROp::Binary) {
        const Value *CA = Lookup(I.A), *CB = Lookup(I.B);
        switch (I.ScalarOp) {
        case Opcode::Mul:
          if (isIntConst(CB, 1) && IsInt(I.A)) {
            rewriteToMov(I, I.A);
            Changed = true;
          } else if (isIntConst(CA, 1) && IsInt(I.B)) {
            rewriteToMov(I, I.B);
            Changed = true;
          } else if ((isIntConst(CB, 0) && IsInt(I.A)) ||
                     (isIntConst(CA, 0) && IsInt(I.B))) {
            rewriteToZero(I);
            Changed = true;
          } else if (CB && log2Exact(*CB) >= 1 && IsInt(I.A)) {
            // x * 2^k -> x shl k, with a fresh register holding k.
            int Shift = log2Exact(*CB);
            IRInstr ImmInstr;
            ImmInstr.Op = IROp::MovImm;
            ImmInstr.Dest = F.makeReg();
            ImmInstr.Imm = Value::makeInt(Shift);
            I.ScalarOp = Opcode::Shl;
            I.B = ImmInstr.Dest;
            Consts.emplace(ImmInstr.Dest, ImmInstr.Imm);
            Block.Instrs.insert(Block.Instrs.begin() + static_cast<long>(K),
                                ImmInstr);
            ++K; // land back on the rewritten multiply
            Changed = true;
          }
          break;
        case Opcode::Add:
          if (isIntConst(CB, 0) && IsInt(I.A)) {
            rewriteToMov(I, I.A);
            Changed = true;
          } else if (isIntConst(CA, 0) && IsInt(I.B)) {
            rewriteToMov(I, I.B);
            Changed = true;
          }
          break;
        case Opcode::Sub:
          if (isIntConst(CB, 0) && IsInt(I.A)) {
            rewriteToMov(I, I.A);
            Changed = true;
          }
          break;
        case Opcode::Div:
          if (isIntConst(CB, 1) && IsInt(I.A)) {
            rewriteToMov(I, I.A);
            Changed = true;
          }
          break;
        default:
          break;
        }
      }

      // Maintain the constant map against the (possibly rewritten) instr.
      const IRInstr &Done = Block.Instrs[K];
      if (Done.Op == IROp::MovImm) {
        Consts.erase(Done.Dest);
        Consts.emplace(Done.Dest, Done.Imm);
      } else if (Done.hasDest()) {
        Consts.erase(Done.Dest);
      }
    }
  }
  return Changed;
}
