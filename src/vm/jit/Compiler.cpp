//===- vm/jit/Compiler.cpp ------------------------------------------------==//

#include "vm/jit/Compiler.h"

#include "vm/jit/Lowering.h"
#include "vm/jit/Passes.h"

#include <cassert>

using namespace evm;
using namespace evm::vm;
using namespace evm::vm::jit;

namespace {

/// One round of the scalar cleanup pipeline; returns whether anything
/// changed.
bool runCleanupRound(IRFunction &F) {
  bool Changed = false;
  Changed |= propagateCopiesLocal(F);
  Changed |= foldConstantsLocal(F);
  Changed |= eliminateCommonSubexprsLocal(F);
  Changed |= eliminateDeadCode(F);
  Changed |= simplifyCFG(F);
  return Changed;
}

} // namespace

CompiledFunction jit::compileAtLevel(const bc::Module &M, bc::MethodId Id,
                                     OptLevel Level,
                                     const InlinePolicy &Inlining) {
  assert(Level != OptLevel::Baseline && "baseline methods are interpreted");

  CompiledFunction Out;
  Out.Level = Level;
  Out.BytecodeSize = M.function(Id).Code.size();
  Out.IR = lowerToIR(M, Id);
  IRFunction &F = Out.IR;

  if (Level == OptLevel::O0)
    return Out;

  if (Level == OptLevel::O1) {
    runCleanupRound(F);
    inlineCalls(F, M, Id, Inlining.MaxCalleeSizeO1, Inlining.MaxInlinesO1);
    for (int Round = 0; Round != 3 && runCleanupRound(F); ++Round)
      ;
    return Out;
  }

  // O2.
  inlineCalls(F, M, Id, Inlining.MaxCalleeSizeO2, Inlining.MaxInlinesO2);
  for (int Round = 0; Round != 3 && runCleanupRound(F); ++Round)
    ;
  reduceStrength(F);
  // LICM processes one loop per call; iterate to a fixpoint.
  for (int Round = 0; Round != 64 && hoistLoopInvariants(F); ++Round)
    ;
  for (int Round = 0; Round != 3 && runCleanupRound(F); ++Round)
    ;
  reduceStrength(F);
  eliminateDeadCode(F);
  simplifyCFG(F);

  assert(F.validate().empty() && "pipeline produced invalid IR");
  return Out;
}
