//===- vm/jit/Compiler.cpp ------------------------------------------------==//

#include "vm/jit/Compiler.h"

#include "vm/jit/Lowering.h"
#include "vm/jit/Passes.h"

#include <cassert>

using namespace evm;
using namespace evm::vm;
using namespace evm::vm::jit;

namespace {

/// Wraps pass invocations to record per-pass work (see PassWork) into the
/// CompiledFunction, aggregated by pass name in first-execution order.
class PassRecorder {
public:
  PassRecorder(CompiledFunction &Out, const IRFunction &F) : Out(Out), F(F) {}

  template <typename BodyT> bool run(const char *Name, BodyT &&Body) {
    uint64_t Work = F.numInstrs();
    bool Changed = Body();
    note(Name, Work);
    return Changed;
  }

  void note(const char *Name, uint64_t Work) {
    for (PassWork &P : Out.Passes) {
      if (P.Name == Name) {
        P.Work += Work;
        ++P.Runs;
        return;
      }
    }
    Out.Passes.push_back(PassWork{Name, Work, 1});
  }

private:
  CompiledFunction &Out;
  const IRFunction &F;
};

/// One round of the scalar cleanup pipeline; returns whether anything
/// changed.
bool runCleanupRound(PassRecorder &R, IRFunction &F) {
  bool Changed = false;
  Changed |= R.run("copyprop", [&] { return propagateCopiesLocal(F); });
  Changed |= R.run("fold", [&] { return foldConstantsLocal(F); });
  Changed |= R.run("cse", [&] { return eliminateCommonSubexprsLocal(F); });
  Changed |= R.run("dce", [&] { return eliminateDeadCode(F); });
  Changed |= R.run("simplifycfg", [&] { return simplifyCFG(F); });
  return Changed;
}

} // namespace

CompiledFunction jit::compileAtLevel(const bc::Module &M, bc::MethodId Id,
                                     OptLevel Level,
                                     const InlinePolicy &Inlining) {
  assert(Level != OptLevel::Baseline && "baseline methods are interpreted");

  CompiledFunction Out;
  Out.Level = Level;
  Out.BytecodeSize = M.function(Id).Code.size();
  Out.IR = lowerToIR(M, Id);
  IRFunction &F = Out.IR;
  PassRecorder R(Out, F);
  R.note("lower", Out.BytecodeSize);

  if (Level == OptLevel::O0)
    return Out;

  if (Level == OptLevel::O1) {
    runCleanupRound(R, F);
    R.run("inline", [&] {
      return inlineCalls(F, M, Id, Inlining.MaxCalleeSizeO1,
                         Inlining.MaxInlinesO1);
    });
    for (int Round = 0; Round != 3 && runCleanupRound(R, F); ++Round)
      ;
    return Out;
  }

  // O2.
  R.run("inline", [&] {
    return inlineCalls(F, M, Id, Inlining.MaxCalleeSizeO2,
                       Inlining.MaxInlinesO2);
  });
  for (int Round = 0; Round != 3 && runCleanupRound(R, F); ++Round)
    ;
  R.run("strength", [&] { return reduceStrength(F); });
  // LICM processes one loop per call; iterate to a fixpoint.
  for (int Round = 0;
       Round != 64 && R.run("licm", [&] { return hoistLoopInvariants(F); });
       ++Round)
    ;
  for (int Round = 0; Round != 3 && runCleanupRound(R, F); ++Round)
    ;
  R.run("strength", [&] { return reduceStrength(F); });
  R.run("dce", [&] { return eliminateDeadCode(F); });
  R.run("simplifycfg", [&] { return simplifyCFG(F); });

  assert(F.validate().empty() && "pipeline produced invalid IR");
  return Out;
}
