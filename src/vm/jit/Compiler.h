//===- vm/jit/Compiler.h - Level pipelines --------------------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizing JIT's level pipelines, mirroring the Jikes RVM ladder the
/// paper predicts over:
///
///   O0: straight lowering (removes interpretive dispatch only).
///   O1: + local constant folding / copy propagation / CSE, global DCE,
///       CFG simplification, small-callee inlining.
///   O2: + aggressive inlining, strength reduction, and loop-invariant
///       code motion, with a second cleanup round.
///
/// compile() is pure (no engine state); the ExecutionEngine charges the
/// virtual clock with TimingModel::compileCost around calls to it.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_JIT_COMPILER_H
#define EVM_VM_JIT_COMPILER_H

#include "bytecode/Module.h"
#include "vm/Timing.h"
#include "vm/jit/IR.h"

#include <string>
#include <vector>

namespace evm {
namespace vm {
namespace jit {

/// Work one pass did during a compilation, aggregated over its runs: the
/// instruction count of the function at each entry to the pass, summed.
/// The engine's phase profiler distributes the level's modeled compile
/// cost across passes proportionally to Work (the real pipelines are
/// roughly linear per invocation), so relative Work is what matters.
struct PassWork {
  std::string Name;
  uint64_t Work = 0;
  uint64_t Runs = 0;
};

/// The output of one compilation.
struct CompiledFunction {
  IRFunction IR;
  OptLevel Level = OptLevel::O0;
  size_t BytecodeSize = 0;
  /// The pipeline's passes in first-execution order (see PassWork); empty
  /// only for code built outside compileAtLevel.
  std::vector<PassWork> Passes;
};

/// Inlining thresholds per optimizing level (bytecode size, call-site
/// budget).
struct InlinePolicy {
  size_t MaxCalleeSizeO1 = 16;
  size_t MaxCalleeSizeO2 = 48;
  int MaxInlinesO1 = 4;
  int MaxInlinesO2 = 12;
};

/// Compiles \p Id at \p Level (must be O0/O1/O2; Baseline methods are
/// interpreted, not compiled).
CompiledFunction compileAtLevel(const bc::Module &M, bc::MethodId Id,
                                OptLevel Level,
                                const InlinePolicy &Inlining = InlinePolicy());

} // namespace jit
} // namespace vm
} // namespace evm

#endif // EVM_VM_JIT_COMPILER_H
