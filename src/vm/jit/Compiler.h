//===- vm/jit/Compiler.h - Level pipelines --------------------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizing JIT's level pipelines, mirroring the Jikes RVM ladder the
/// paper predicts over:
///
///   O0: straight lowering (removes interpretive dispatch only).
///   O1: + local constant folding / copy propagation / CSE, global DCE,
///       CFG simplification, small-callee inlining.
///   O2: + aggressive inlining, strength reduction, and loop-invariant
///       code motion, with a second cleanup round.
///
/// compile() is pure (no engine state); the ExecutionEngine charges the
/// virtual clock with TimingModel::compileCost around calls to it.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_JIT_COMPILER_H
#define EVM_VM_JIT_COMPILER_H

#include "bytecode/Module.h"
#include "vm/Timing.h"
#include "vm/jit/IR.h"

namespace evm {
namespace vm {
namespace jit {

/// The output of one compilation.
struct CompiledFunction {
  IRFunction IR;
  OptLevel Level = OptLevel::O0;
  size_t BytecodeSize = 0;
};

/// Inlining thresholds per optimizing level (bytecode size, call-site
/// budget).
struct InlinePolicy {
  size_t MaxCalleeSizeO1 = 16;
  size_t MaxCalleeSizeO2 = 48;
  int MaxInlinesO1 = 4;
  int MaxInlinesO2 = 12;
};

/// Compiles \p Id at \p Level (must be O0/O1/O2; Baseline methods are
/// interpreted, not compiled).
CompiledFunction compileAtLevel(const bc::Module &M, bc::MethodId Id,
                                OptLevel Level,
                                const InlinePolicy &Inlining = InlinePolicy());

} // namespace jit
} // namespace vm
} // namespace evm

#endif // EVM_VM_JIT_COMPILER_H
