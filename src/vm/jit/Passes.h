//===- vm/jit/Passes.h - JIT optimization pass entry points --------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization passes behind the JIT's level pipelines (O0/O1/O2).
/// Each pass is a standalone function (IRFunction in/out, returns whether it
/// changed anything) so tests exercise them individually and the Compiler
/// composes them per level.  All passes preserve MiniVM semantics: the
/// property suite checks interpreter-vs-compiled output equality for every
/// level across a corpus of programs.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_JIT_PASSES_H
#define EVM_VM_JIT_PASSES_H

#include "bytecode/Module.h"
#include "vm/jit/IR.h"

namespace evm {
namespace vm {
namespace jit {

/// Block-local constant folding: tracks MovImm-defined registers, folds
/// Binary/Unary/Mov over constants (through vm/Eval.h, so fold-time and
/// run-time semantics agree), and turns constant CondJumps into Jumps.
/// Folds that would trap at run time are left in place.
bool foldConstantsLocal(IRFunction &F);

/// Block-local copy propagation: rewrites uses through Mov chains,
/// invalidating entries when either side is redefined.
bool propagateCopiesLocal(IRFunction &F);

/// Block-local common-subexpression elimination via value numbering.
/// Pure expressions only; heap loads and calls are never reused.
bool eliminateCommonSubexprsLocal(IRFunction &F);

/// Global dead-code elimination by iterated liveness: removes side-effect-
/// free instructions whose destination is dead.
bool eliminateDeadCode(IRFunction &F);

/// CFG cleanup: threads trivial jump blocks, merges single-pred/single-succ
/// straight lines, folds same-target CondJumps, and drops unreachable
/// blocks.
bool simplifyCFG(IRFunction &F);

/// Inlines small callees (bytecode size <= \p MaxCalleeSize) into \p F.
/// \p SelfId suppresses direct self-recursion; \p MaxInlines bounds the
/// number of call sites expanded.  Callee bodies are lowered fresh from
/// \p M's bytecode.
bool inlineCalls(IRFunction &F, const bc::Module &M, bc::MethodId SelfId,
                 size_t MaxCalleeSize, int MaxInlines);

/// Loop-invariant code motion over natural loops.  Hoists pure, non-trapping
/// temp-defining instructions whose operands are loop-invariant into a
/// (created) preheader.
bool hoistLoopInvariants(IRFunction &F);

/// Strength reduction and algebraic identities on integer-typed registers
/// (x*2^k -> shl, x*1 -> mov, x+0 -> mov, ...), guarded by type inference so
/// no rewrite can change float semantics or introduce a trap.
bool reduceStrength(IRFunction &F);

} // namespace jit
} // namespace vm
} // namespace evm

#endif // EVM_VM_JIT_PASSES_H
