//===- vm/jit/Dominators.h - Dominator tree and natural loops ------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator computation (the Cooper-Harvey-Kennedy iterative algorithm)
/// and natural-loop discovery over the JIT IR's CFG.  LICM and loop
/// unrolling consume these analyses.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_JIT_DOMINATORS_H
#define EVM_VM_JIT_DOMINATORS_H

#include "vm/jit/IR.h"

#include <vector>

namespace evm {
namespace vm {
namespace jit {

/// Dominator information for one IRFunction.
class DominatorTree {
public:
  /// Builds the tree for \p F (entry = block 0).  Unreachable blocks get
  /// themselves as idom and report dominance only reflexively.
  explicit DominatorTree(const IRFunction &F);

  /// Immediate dominator of \p B (entry's idom is entry itself).
  BlockId idom(BlockId B) const { return Idom[B]; }

  /// True when \p A dominates \p B (reflexive).
  bool dominates(BlockId A, BlockId B) const;

  /// Reverse post-order over reachable blocks (entry first).
  const std::vector<BlockId> &reversePostOrder() const { return Rpo; }

  /// True when \p B is reachable from the entry.
  bool isReachable(BlockId B) const { return Reachable[B]; }

private:
  std::vector<BlockId> Idom;
  std::vector<BlockId> Rpo;
  std::vector<bool> Reachable;
  std::vector<uint32_t> RpoIndex; ///< position in Rpo, for intersect()
};

/// One natural loop: the header plus every block in the loop body.
struct NaturalLoop {
  BlockId Header = 0;
  std::vector<BlockId> Body; ///< includes Header; unsorted
  /// Latch blocks (sources of back edges into Header).
  std::vector<BlockId> Latches;

  bool contains(BlockId B) const;
};

/// Finds all natural loops of \p F (one per header; back edges into the
/// same header are merged, as usual).
std::vector<NaturalLoop> findNaturalLoops(const IRFunction &F,
                                          const DominatorTree &DT);

} // namespace jit
} // namespace vm
} // namespace evm

#endif // EVM_VM_JIT_DOMINATORS_H
