//===- vm/jit/IR.h - Register-based JIT intermediate representation ------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizing JIT's IR: a conventional three-address register IR over a
/// CFG of basic blocks.  It is deliberately *not* SSA: locals map to fixed
/// registers (the bytecode verifier's empty-stack-at-branch discipline means
/// no phis are ever needed), while expression temporaries are
/// written-once-per-block.  Passes therefore reason with def counts and
/// liveness rather than SSA use-def chains — closer to the style of the
/// baseline JITs the paper's Jikes RVM levels represent.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_JIT_IR_H
#define EVM_VM_JIT_IR_H

#include "bytecode/Module.h"
#include "bytecode/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace evm {
namespace vm {
namespace jit {

/// A virtual register index.  Registers [0, NumLocals) are the bytecode
/// locals; the rest are temporaries.
using Reg = uint32_t;

/// A basic-block index within an IRFunction.
using BlockId = uint32_t;

/// IR operations.  Binary/unary arithmetic reuses the bytecode opcode via
/// the ScalarOp payload so semantics stay shared with vm/Eval.h.
enum class IROp : uint8_t {
  MovImm, ///< Dest = Imm
  Mov,    ///< Dest = A
  Binary, ///< Dest = ScalarOp(A, B)
  Unary,  ///< Dest = ScalarOp(A)
  Call,   ///< Dest = Callee(Args...)
  NewArr, ///< Dest = heap.alloc(A)
  HLoad,  ///< Dest = heap[A]
  HStore, ///< heap[A] = B
  Jump,   ///< goto Target
  CondJump, ///< if A goto Target else goto Target2
  Ret,    ///< return A
};

/// One IR instruction.  Field use depends on Op; unused fields are zero.
struct IRInstr {
  IROp Op = IROp::MovImm;
  bc::Opcode ScalarOp = bc::Opcode::Nop; ///< payload for Binary/Unary
  Reg Dest = 0;
  Reg A = 0;
  Reg B = 0;
  bc::Value Imm;           ///< payload for MovImm
  BlockId Target = 0;      ///< Jump/CondJump true-edge
  BlockId Target2 = 0;     ///< CondJump false-edge
  bc::MethodId Callee = 0; ///< Call
  std::vector<Reg> Args;   ///< Call arguments

  /// True for Jump/CondJump/Ret.
  bool isTerminator() const {
    return Op == IROp::Jump || Op == IROp::CondJump || Op == IROp::Ret;
  }

  /// True when the instruction writes Dest.
  bool hasDest() const {
    switch (Op) {
    case IROp::MovImm:
    case IROp::Mov:
    case IROp::Binary:
    case IROp::Unary:
    case IROp::Call:
    case IROp::NewArr:
    case IROp::HLoad:
      return true;
    default:
      return false;
    }
  }

  /// True when removing the instruction (given a dead Dest) is safe: no
  /// heap effects, calls, control flow, or possible traps.
  ///
  /// Binary Div/Mod can trap on a zero divisor and integer-only ops on float
  /// operands, so they are conservatively kept unless the folder proved
  /// them constant.
  bool isRemovableIfDead() const {
    switch (Op) {
    case IROp::MovImm:
    case IROp::Mov:
      return true;
    case IROp::Unary:
      return true; // unary ops never trap
    case IROp::Binary:
      switch (ScalarOp) {
      case bc::Opcode::Div:
      case bc::Opcode::Mod:
      case bc::Opcode::And:
      case bc::Opcode::Or:
      case bc::Opcode::Xor:
      case bc::Opcode::Shl:
      case bc::Opcode::Shr:
        return false; // may trap depending on runtime operand types/values
      default:
        return true;
      }
    default:
      return false;
    }
  }

  /// Appends every register this instruction reads to \p Uses.
  void collectUses(std::vector<Reg> &Uses) const;
};

/// A basic block: straight-line instructions ending in one terminator.
struct IRBlock {
  std::vector<IRInstr> Instrs;

  const IRInstr &terminator() const { return Instrs.back(); }

  /// Successor block ids (0, 1, or 2 of them).
  std::vector<BlockId> successors() const;
};

/// A compiled function body.
struct IRFunction {
  std::string Name;
  uint32_t NumParams = 0;
  uint32_t NumLocals = 0; ///< registers [0, NumLocals) are bytecode locals
  uint32_t NumRegs = 0;   ///< total register count (locals + temps)
  std::vector<IRBlock> Blocks; ///< Blocks[0] is the entry

  /// Allocates a fresh temporary register.
  Reg makeReg() { return NumRegs++; }

  /// Total instruction count over all blocks.
  size_t numInstrs() const;

  /// Predecessor lists, recomputed on demand.
  std::vector<std::vector<BlockId>> predecessors() const;

  /// Renders the function for tests/debugging.
  std::string print() const;

  /// Internal consistency checks (terminator placement, register and block
  /// ranges); returns a diagnostic or the empty string.
  std::string validate() const;
};

} // namespace jit
} // namespace vm
} // namespace evm

#endif // EVM_VM_JIT_IR_H
