//===- vm/jit/Inliner.cpp - Call-site inlining -----------------------------==//
//
// Expands calls to small callees in place.  The callee body is lowered fresh
// from bytecode, its registers are offset past the caller's, its non-param
// locals are explicitly zero-initialized (matching frame initialization in
// the interpreter/executor), and each of its Ret instructions becomes a move
// to the call's destination register plus a jump to the continuation block.
//
//===----------------------------------------------------------------------===//

#include "vm/jit/Passes.h"

#include "vm/jit/Lowering.h"

#include <cassert>

using namespace evm;
using namespace evm::vm;
using namespace evm::vm::jit;

namespace {

/// Finds the first inlinable call site; returns false when none exists.
bool findCandidate(const IRFunction &F, const bc::Module &M,
                   bc::MethodId SelfId, size_t MaxCalleeSize, BlockId &OutB,
                   size_t &OutK) {
  for (BlockId B = 0; B != F.Blocks.size(); ++B) {
    const IRBlock &Block = F.Blocks[B];
    for (size_t K = 0; K != Block.Instrs.size(); ++K) {
      const IRInstr &I = Block.Instrs[K];
      if (I.Op != IROp::Call)
        continue;
      if (I.Callee == SelfId)
        continue; // no direct self-recursion
      if (M.function(I.Callee).Code.size() > MaxCalleeSize)
        continue;
      OutB = B;
      OutK = K;
      return true;
    }
  }
  return false;
}

/// Expands the call at (B, K).  Appends blocks; existing ids stay valid.
void expandCall(IRFunction &F, const bc::Module &M, BlockId B, size_t K) {
  IRInstr Call = F.Blocks[B].Instrs[K];
  assert(Call.Op == IROp::Call && "not a call site");

  IRFunction Callee = lowerToIR(M, Call.Callee);
  const Reg RegOffset = F.NumRegs;
  const BlockId BlockOffset = static_cast<BlockId>(F.Blocks.size() + 1);
  F.NumRegs += Callee.NumRegs;

  // Split the caller block: [0, K) stays; (K, end) moves to a continuation.
  IRBlock Continuation;
  Continuation.Instrs.assign(
      F.Blocks[B].Instrs.begin() + static_cast<long>(K) + 1,
      F.Blocks[B].Instrs.end());
  F.Blocks[B].Instrs.resize(K);

  const BlockId ContId = static_cast<BlockId>(F.Blocks.size());
  F.Blocks.push_back(std::move(Continuation));

  // Argument setup + explicit zero-init of the callee's non-param locals,
  // then jump into the (remapped) callee entry.
  for (uint32_t P = 0; P != Callee.NumParams; ++P) {
    IRInstr Mov;
    Mov.Op = IROp::Mov;
    Mov.Dest = RegOffset + P;
    Mov.A = Call.Args[P];
    F.Blocks[B].Instrs.push_back(Mov);
  }
  for (uint32_t L = Callee.NumParams; L != Callee.NumLocals; ++L) {
    IRInstr Zero;
    Zero.Op = IROp::MovImm;
    Zero.Dest = RegOffset + L;
    Zero.Imm = bc::Value::makeInt(0);
    F.Blocks[B].Instrs.push_back(Zero);
  }
  IRInstr Enter;
  Enter.Op = IROp::Jump;
  Enter.Target = BlockOffset; // callee entry after remap
  F.Blocks[B].Instrs.push_back(Enter);

  // Splice the callee blocks in with registers and targets remapped and
  // rets rewritten to mov+jump.
  for (IRBlock &CB : Callee.Blocks) {
    IRBlock NewBlock;
    for (IRInstr I : CB.Instrs) {
      if (I.hasDest())
        I.Dest += RegOffset;
      switch (I.Op) {
      case IROp::Mov:
      case IROp::Unary:
      case IROp::NewArr:
      case IROp::HLoad:
        I.A += RegOffset;
        break;
      case IROp::Binary:
      case IROp::HStore:
        I.A += RegOffset;
        I.B += RegOffset;
        break;
      case IROp::CondJump:
        I.A += RegOffset;
        I.Target += BlockOffset;
        I.Target2 += BlockOffset;
        break;
      case IROp::Jump:
        I.Target += BlockOffset;
        break;
      case IROp::Call:
        for (Reg &R : I.Args)
          R += RegOffset;
        break;
      case IROp::Ret: {
        IRInstr Mov;
        Mov.Op = IROp::Mov;
        Mov.Dest = Call.Dest;
        Mov.A = I.A + RegOffset;
        NewBlock.Instrs.push_back(Mov);
        I = IRInstr();
        I.Op = IROp::Jump;
        I.Target = ContId;
        break;
      }
      case IROp::MovImm:
        break;
      }
      NewBlock.Instrs.push_back(std::move(I));
    }
    F.Blocks.push_back(std::move(NewBlock));
  }

  assert(F.validate().empty() && "inlining produced invalid IR");
}

} // namespace

bool jit::inlineCalls(IRFunction &F, const bc::Module &M, bc::MethodId SelfId,
                      size_t MaxCalleeSize, int MaxInlines) {
  bool Changed = false;
  for (int N = 0; N != MaxInlines; ++N) {
    BlockId B;
    size_t K;
    if (!findCandidate(F, M, SelfId, MaxCalleeSize, B, K))
      break;
    expandCall(F, M, B, K);
    Changed = true;
  }
  return Changed;
}
