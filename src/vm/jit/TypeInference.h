//===- vm/jit/TypeInference.h - Static register type lattice --------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Infers a static type for every register over the lattice
/// Unknown < {Int, Float} < Mixed.  Because registers are not SSA, a
/// register's type is the join over all of its definitions (flow-
/// insensitive), which is sound for the consumers we have: strength
/// reduction only rewrites when an operand is proven Int on every path.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_JIT_TYPEINFERENCE_H
#define EVM_VM_JIT_TYPEINFERENCE_H

#include "vm/jit/IR.h"

#include <vector>

namespace evm {
namespace vm {
namespace jit {

/// Static type of one register.
enum class RegType : uint8_t {
  Unknown, ///< no definition seen yet (lattice top)
  Int,
  Float,
  Mixed, ///< defined with both kinds, or from an unanalyzable source
};

/// Joins two lattice values.
RegType joinRegTypes(RegType A, RegType B);

/// Computes the register type table for \p F.  Parameters and undefined
/// locals start as Mixed (callers may pass either kind); zero-initialized
/// non-param locals contribute Int.
std::vector<RegType> inferRegTypes(const IRFunction &F);

} // namespace jit
} // namespace vm
} // namespace evm

#endif // EVM_VM_JIT_TYPEINFERENCE_H
