//===- vm/jit/Dominators.cpp ----------------------------------------------==//

#include "vm/jit/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace evm;
using namespace evm::vm;
using namespace evm::vm::jit;

DominatorTree::DominatorTree(const IRFunction &F) {
  const size_t N = F.Blocks.size();
  Idom.assign(N, 0);
  Reachable.assign(N, false);
  RpoIndex.assign(N, 0);

  // Post-order DFS from the entry.
  std::vector<BlockId> PostOrder;
  PostOrder.reserve(N);
  {
    std::vector<std::pair<BlockId, size_t>> Stack; // (block, next succ idx)
    std::vector<bool> Visited(N, false);
    Stack.emplace_back(0, 0);
    Visited[0] = true;
    while (!Stack.empty()) {
      auto &[B, NextSucc] = Stack.back();
      std::vector<BlockId> Succs = F.Blocks[B].successors();
      if (NextSucc < Succs.size()) {
        BlockId S = Succs[NextSucc++];
        if (!Visited[S]) {
          Visited[S] = true;
          Stack.emplace_back(S, 0);
        }
        continue;
      }
      PostOrder.push_back(B);
      Stack.pop_back();
    }
  }

  Rpo.assign(PostOrder.rbegin(), PostOrder.rend());
  for (uint32_t I = 0; I != Rpo.size(); ++I) {
    Reachable[Rpo[I]] = true;
    RpoIndex[Rpo[I]] = I;
  }
  // Unreachable blocks: self-idom (harmless placeholders).
  for (BlockId B = 0; B != N; ++B)
    if (!Reachable[B])
      Idom[B] = B;

  // Cooper-Harvey-Kennedy iteration.
  auto Preds = F.predecessors();
  constexpr BlockId Undef = ~0u;
  std::vector<BlockId> Doms(N, Undef);
  Doms[0] = 0;

  auto Intersect = [&](BlockId A, BlockId B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Doms[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Doms[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : Rpo) {
      if (B == 0)
        continue;
      BlockId NewIdom = Undef;
      for (BlockId P : Preds[B]) {
        if (!Reachable[P] || Doms[P] == Undef)
          continue;
        NewIdom = NewIdom == Undef ? P : Intersect(P, NewIdom);
      }
      assert(NewIdom != Undef && "reachable block with no processed preds");
      if (Doms[B] != NewIdom) {
        Doms[B] = NewIdom;
        Changed = true;
      }
    }
  }

  for (BlockId B : Rpo)
    Idom[B] = Doms[B];
}

bool DominatorTree::dominates(BlockId A, BlockId B) const {
  if (A == B)
    return true;
  if (!Reachable[A] || !Reachable[B])
    return false;
  BlockId Cursor = B;
  while (Cursor != Idom[Cursor]) {
    Cursor = Idom[Cursor];
    if (Cursor == A)
      return true;
  }
  return Cursor == A;
}

bool NaturalLoop::contains(BlockId B) const {
  return std::find(Body.begin(), Body.end(), B) != Body.end();
}

std::vector<NaturalLoop> jit::findNaturalLoops(const IRFunction &F,
                                               const DominatorTree &DT) {
  auto Preds = F.predecessors();
  std::vector<NaturalLoop> Loops;

  // Gather back edges grouped by header.
  std::vector<std::vector<BlockId>> LatchesByHeader(F.Blocks.size());
  for (BlockId B = 0; B != F.Blocks.size(); ++B) {
    if (!DT.isReachable(B))
      continue;
    for (BlockId S : F.Blocks[B].successors())
      if (DT.dominates(S, B))
        LatchesByHeader[S].push_back(B);
  }

  for (BlockId Header = 0; Header != F.Blocks.size(); ++Header) {
    if (LatchesByHeader[Header].empty())
      continue;
    NaturalLoop Loop;
    Loop.Header = Header;
    Loop.Latches = LatchesByHeader[Header];

    // Standard natural-loop body: backward walk from each latch to header.
    std::vector<bool> InLoop(F.Blocks.size(), false);
    InLoop[Header] = true;
    std::vector<BlockId> Worklist = Loop.Latches;
    for (BlockId L : Loop.Latches)
      InLoop[L] = true;
    while (!Worklist.empty()) {
      BlockId B = Worklist.back();
      Worklist.pop_back();
      if (B == Header)
        continue;
      for (BlockId P : Preds[B]) {
        if (!InLoop[P] && DT.isReachable(P)) {
          InLoop[P] = true;
          Worklist.push_back(P);
        }
      }
    }
    for (BlockId B = 0; B != F.Blocks.size(); ++B)
      if (InLoop[B])
        Loop.Body.push_back(B);
    Loops.push_back(std::move(Loop));
  }
  return Loops;
}
