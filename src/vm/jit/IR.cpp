//===- vm/jit/IR.cpp ------------------------------------------------------==//

#include "vm/jit/IR.h"

#include "support/Format.h"

#include <cassert>

using namespace evm;
using namespace evm::vm;
using namespace evm::vm::jit;

void IRInstr::collectUses(std::vector<Reg> &Uses) const {
  switch (Op) {
  case IROp::MovImm:
    break;
  case IROp::Mov:
  case IROp::Unary:
  case IROp::NewArr:
  case IROp::HLoad:
  case IROp::Ret:
    Uses.push_back(A);
    break;
  case IROp::Binary:
  case IROp::HStore:
    Uses.push_back(A);
    Uses.push_back(B);
    break;
  case IROp::CondJump:
    Uses.push_back(A);
    break;
  case IROp::Jump:
    break;
  case IROp::Call:
    for (Reg R : Args)
      Uses.push_back(R);
    break;
  }
}

std::vector<BlockId> IRBlock::successors() const {
  assert(!Instrs.empty() && "block has no terminator");
  const IRInstr &T = terminator();
  switch (T.Op) {
  case IROp::Jump:
    return {T.Target};
  case IROp::CondJump:
    return {T.Target, T.Target2};
  case IROp::Ret:
    return {};
  default:
    assert(false && "block does not end in a terminator");
    return {};
  }
}

size_t IRFunction::numInstrs() const {
  size_t Total = 0;
  for (const IRBlock &B : Blocks)
    Total += B.Instrs.size();
  return Total;
}

std::vector<std::vector<BlockId>> IRFunction::predecessors() const {
  std::vector<std::vector<BlockId>> Preds(Blocks.size());
  for (BlockId B = 0; B != Blocks.size(); ++B)
    for (BlockId S : Blocks[B].successors())
      Preds[S].push_back(B);
  return Preds;
}

namespace {

std::string printInstr(const IRInstr &I) {
  using bc::getOpcodeInfo;
  switch (I.Op) {
  case IROp::MovImm:
    return formatString("r%u = imm %s", I.Dest, I.Imm.str().c_str());
  case IROp::Mov:
    return formatString("r%u = r%u", I.Dest, I.A);
  case IROp::Binary:
    return formatString("r%u = %s r%u, r%u", I.Dest,
                        std::string(getOpcodeInfo(I.ScalarOp).Mnemonic)
                            .c_str(),
                        I.A, I.B);
  case IROp::Unary:
    return formatString("r%u = %s r%u", I.Dest,
                        std::string(getOpcodeInfo(I.ScalarOp).Mnemonic)
                            .c_str(),
                        I.A);
  case IROp::Call: {
    std::string Args;
    for (size_t K = 0; K != I.Args.size(); ++K)
      Args += formatString("%sr%u", K ? ", " : "", I.Args[K]);
    return formatString("r%u = call f%u(%s)", I.Dest, I.Callee, Args.c_str());
  }
  case IROp::NewArr:
    return formatString("r%u = newarr r%u", I.Dest, I.A);
  case IROp::HLoad:
    return formatString("r%u = hload r%u", I.Dest, I.A);
  case IROp::HStore:
    return formatString("hstore r%u, r%u", I.A, I.B);
  case IROp::Jump:
    return formatString("jump b%u", I.Target);
  case IROp::CondJump:
    return formatString("condjump r%u, b%u, b%u", I.A, I.Target, I.Target2);
  case IROp::Ret:
    return formatString("ret r%u", I.A);
  }
  return "<?>";
}

} // namespace

std::string IRFunction::print() const {
  std::string Out = formatString("ir %s params=%u locals=%u regs=%u\n",
                                 Name.c_str(), NumParams, NumLocals, NumRegs);
  for (BlockId B = 0; B != Blocks.size(); ++B) {
    Out += formatString("b%u:\n", B);
    for (const IRInstr &I : Blocks[B].Instrs)
      Out += "  " + printInstr(I) + "\n";
  }
  return Out;
}

std::string IRFunction::validate() const {
  if (Blocks.empty())
    return "function has no blocks";
  for (BlockId B = 0; B != Blocks.size(); ++B) {
    const IRBlock &Block = Blocks[B];
    if (Block.Instrs.empty())
      return formatString("block b%u is empty", B);
    for (size_t K = 0; K != Block.Instrs.size(); ++K) {
      const IRInstr &I = Block.Instrs[K];
      bool IsLast = K + 1 == Block.Instrs.size();
      if (I.isTerminator() != IsLast)
        return formatString("block b%u: terminator placement at %zu", B, K);
      std::vector<Reg> Uses;
      I.collectUses(Uses);
      if (I.hasDest())
        Uses.push_back(I.Dest);
      for (Reg R : Uses)
        if (R >= NumRegs)
          return formatString("block b%u: register r%u out of range", B, R);
      if (I.Op == IROp::Jump || I.Op == IROp::CondJump) {
        if (I.Target >= Blocks.size())
          return formatString("block b%u: jump target out of range", B);
        if (I.Op == IROp::CondJump && I.Target2 >= Blocks.size())
          return formatString("block b%u: false target out of range", B);
      }
    }
  }
  return std::string();
}
