//===- vm/jit/GlobalPasses.cpp - DCE and CFG simplification ---------------==//

#include "vm/jit/Passes.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace evm;
using namespace evm::vm;
using namespace evm::vm::jit;

//===----------------------------------------------------------------------===//
// Dead-code elimination
//===----------------------------------------------------------------------===//

namespace {

/// One backward liveness solve; returns per-block live-out register sets.
std::vector<std::set<Reg>> solveLiveness(const IRFunction &F) {
  const size_t N = F.Blocks.size();
  std::vector<std::set<Reg>> LiveIn(N), LiveOut(N);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t BI = N; BI-- > 0;) {
      const IRBlock &Block = F.Blocks[BI];
      std::set<Reg> Out;
      for (BlockId S : Block.successors())
        Out.insert(LiveIn[S].begin(), LiveIn[S].end());
      std::set<Reg> Live = Out;
      for (size_t K = Block.Instrs.size(); K-- > 0;) {
        const IRInstr &I = Block.Instrs[K];
        if (I.hasDest())
          Live.erase(I.Dest);
        std::vector<Reg> Uses;
        I.collectUses(Uses);
        Live.insert(Uses.begin(), Uses.end());
      }
      if (Out != LiveOut[BI]) {
        LiveOut[BI] = std::move(Out);
        Changed = true;
      }
      if (Live != LiveIn[BI]) {
        LiveIn[BI] = std::move(Live);
        Changed = true;
      }
    }
  }
  return LiveOut;
}

} // namespace

bool jit::eliminateDeadCode(IRFunction &F) {
  bool ChangedAny = false;
  // Removal can make more instructions dead; iterate to a fixpoint.
  while (true) {
    std::vector<std::set<Reg>> LiveOut = solveLiveness(F);
    bool Changed = false;
    for (size_t BI = 0; BI != F.Blocks.size(); ++BI) {
      IRBlock &Block = F.Blocks[BI];
      std::set<Reg> Live = LiveOut[BI];
      std::vector<bool> Dead(Block.Instrs.size(), false);
      for (size_t K = Block.Instrs.size(); K-- > 0;) {
        const IRInstr &I = Block.Instrs[K];
        if (I.hasDest() && !Live.count(I.Dest) && I.isRemovableIfDead()) {
          Dead[K] = true;
          Changed = true;
          continue;
        }
        if (I.hasDest())
          Live.erase(I.Dest);
        std::vector<Reg> Uses;
        I.collectUses(Uses);
        Live.insert(Uses.begin(), Uses.end());
      }
      if (!Changed)
        continue;
      std::vector<IRInstr> Kept;
      Kept.reserve(Block.Instrs.size());
      for (size_t K = 0; K != Block.Instrs.size(); ++K)
        if (!Dead[K])
          Kept.push_back(std::move(Block.Instrs[K]));
      Block.Instrs = std::move(Kept);
    }
    if (!Changed)
      break;
    ChangedAny = true;
  }
  return ChangedAny;
}

//===----------------------------------------------------------------------===//
// CFG simplification
//===----------------------------------------------------------------------===//

namespace {

/// Retargets every edge into \p From to point at \p To.
void retargetEdges(IRFunction &F, BlockId From, BlockId To) {
  for (IRBlock &Block : F.Blocks) {
    IRInstr &T = Block.Instrs.back();
    if (T.Op == IROp::Jump && T.Target == From)
      T.Target = To;
    if (T.Op == IROp::CondJump) {
      if (T.Target == From)
        T.Target = To;
      if (T.Target2 == From)
        T.Target2 = To;
    }
  }
}

/// Removes blocks unreachable from the entry, compacting block ids.
bool dropUnreachable(IRFunction &F) {
  std::vector<bool> Reached(F.Blocks.size(), false);
  std::vector<BlockId> Worklist = {0};
  Reached[0] = true;
  while (!Worklist.empty()) {
    BlockId B = Worklist.back();
    Worklist.pop_back();
    for (BlockId S : F.Blocks[B].successors())
      if (!Reached[S]) {
        Reached[S] = true;
        Worklist.push_back(S);
      }
  }
  if (std::all_of(Reached.begin(), Reached.end(), [](bool R) { return R; }))
    return false;

  std::vector<BlockId> NewId(F.Blocks.size(), 0);
  std::vector<IRBlock> Kept;
  for (BlockId B = 0; B != F.Blocks.size(); ++B) {
    if (!Reached[B])
      continue;
    NewId[B] = static_cast<BlockId>(Kept.size());
    Kept.push_back(std::move(F.Blocks[B]));
  }
  F.Blocks = std::move(Kept);
  for (IRBlock &Block : F.Blocks) {
    IRInstr &T = Block.Instrs.back();
    if (T.Op == IROp::Jump)
      T.Target = NewId[T.Target];
    if (T.Op == IROp::CondJump) {
      T.Target = NewId[T.Target];
      T.Target2 = NewId[T.Target2];
    }
  }
  return true;
}

} // namespace

bool jit::simplifyCFG(IRFunction &F) {
  bool ChangedAny = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;

    // CondJump with identical arms is just a Jump.
    for (IRBlock &Block : F.Blocks) {
      IRInstr &T = Block.Instrs.back();
      if (T.Op == IROp::CondJump && T.Target == T.Target2) {
        T.Op = IROp::Jump;
        T.A = 0;
        T.Target2 = 0;
        Changed = true;
      }
    }

    // Thread edges through blocks that are a bare `jump T` (skip self-loops).
    for (BlockId B = 0; B != F.Blocks.size(); ++B) {
      IRBlock &Block = F.Blocks[B];
      if (Block.Instrs.size() != 1 || Block.Instrs[0].Op != IROp::Jump)
        continue;
      BlockId Target = Block.Instrs[0].Target;
      if (Target == B)
        continue;
      bool HadEdge = false;
      for (IRBlock &Other : F.Blocks) {
        if (&Other == &Block)
          continue;
        IRInstr &T = Other.Instrs.back();
        if (T.Op == IROp::Jump && T.Target == B) {
          T.Target = Target;
          HadEdge = true;
        } else if (T.Op == IROp::CondJump &&
                   (T.Target == B || T.Target2 == B)) {
          if (T.Target == B)
            T.Target = Target;
          if (T.Target2 == B)
            T.Target2 = Target;
          HadEdge = true;
        }
      }
      if (HadEdge)
        Changed = true;
    }

    // Merge straight-line pairs: B ends `jump S`, S's only predecessor is B,
    // and S is not the entry.
    auto Preds = F.predecessors();
    for (BlockId B = 0; B != F.Blocks.size(); ++B) {
      IRBlock &Block = F.Blocks[B];
      IRInstr &T = Block.Instrs.back();
      if (T.Op != IROp::Jump)
        continue;
      BlockId S = T.Target;
      if (S == 0 || S == B || Preds[S].size() != 1)
        continue;
      // Splice S into B.
      Block.Instrs.pop_back();
      for (IRInstr &I : F.Blocks[S].Instrs)
        Block.Instrs.push_back(std::move(I));
      // Leave S with a self-loop stub; dropUnreachable will collect it.
      F.Blocks[S].Instrs.clear();
      IRInstr SelfJump;
      SelfJump.Op = IROp::Jump;
      SelfJump.Target = S;
      F.Blocks[S].Instrs.push_back(SelfJump);
      retargetEdges(F, S, S); // no-op safeguard; S had one pred (B)
      Changed = true;
      Preds = F.predecessors();
    }

    if (dropUnreachable(F))
      Changed = true;
    if (Changed)
      ChangedAny = true;
  }
  assert(F.validate().empty() && "simplifyCFG produced invalid IR");
  return ChangedAny;
}
