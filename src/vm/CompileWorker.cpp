//===- vm/CompileWorker.cpp -----------------------------------------------==//

#include "vm/CompileWorker.h"

#include <algorithm>
#include <cassert>

using namespace evm;
using namespace evm::vm;

CompileWorkerPool::CompileWorkerPool(const bc::Module &M,
                                     const TimingModel &TM)
    : M(M), Capacity(std::max<uint64_t>(1, TM.CompileQueueCapacity)),
      QueueDelay(TM.CompileQueueDelayCycles) {
  unsigned N = std::max<unsigned>(1, static_cast<unsigned>(TM.NumCompileWorkers));
  WorkerFreeCycle.assign(N, 0);
  Threads.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Threads.emplace_back([this] { workerMain(); });
}

CompileWorkerPool::~CompileWorkerPool() {
  Queue.shutdown();
  for (std::thread &T : Threads)
    T.join();
}

void CompileWorkerPool::workerMain() {
  while (std::optional<CompileRequest> R = Queue.pop()) {
    CompileResult Result;
    Result.Request = *R;
    Result.Code = std::make_shared<jit::CompiledFunction>(
        jit::compileAtLevel(M, R->Method, R->Level));
    Queue.postResult(std::move(Result));
  }
}

bool CompileWorkerPool::hasPending(bc::MethodId Id, OptLevel L) const {
  for (const CompileRequest &R : InFlight)
    if (R.Method == Id && levelIndex(R.Level) >= levelIndex(L))
      return true;
  return false;
}

bool CompileWorkerPool::request(bc::MethodId Id, OptLevel L,
                                uint64_t NowCycles, uint64_t CostCycles) {
  bool Tracing = Tracer && Tracer->enabled();
  if (hasPending(Id, L)) {
    // Coalesce: an equal-or-better compile is in flight.
    if (Tracing) {
      TraceEvent E;
      E.Kind = TraceEventKind::CompileCoalesce;
      E.Cycle = NowCycles;
      E.Method = Id;
      E.Level = static_cast<int8_t>(L);
      for (const CompileRequest &R : InFlight)
        if (R.Method == Id && levelIndex(R.Level) >= levelIndex(L)) {
          E.A = R.SeqNo;
          E.B = static_cast<uint64_t>(levelIndex(R.Level));
          break;
        }
      Tracer->record(E);
    }
    return false;
  }
  // The capacity bound is checked against the *virtual* in-flight set (an
  // execution-thread quantity), never against host-queue occupancy: whether
  // a request is dropped must not depend on how fast the real worker
  // threads happen to drain the queue.
  if (InFlight.size() >= Capacity) {
    ++DroppedRequests;
    if (Tracing) {
      TraceEvent E;
      E.Kind = TraceEventKind::CompileDrop;
      E.Cycle = NowCycles;
      E.Method = Id;
      E.Level = static_cast<int8_t>(L);
      E.A = InFlight.size();
      Tracer->record(E);
    }
    return false;
  }

  // Deterministic virtual scheduling: earliest-free worker, lowest index on
  // ties, FIFO within a worker.
  unsigned W = 0;
  for (unsigned I = 1; I != WorkerFreeCycle.size(); ++I)
    if (WorkerFreeCycle[I] < WorkerFreeCycle[W])
      W = I;

  CompileRequest R;
  R.Method = Id;
  R.Level = L;
  R.SeqNo = NextSeqNo;
  R.RequestCycle = NowCycles;
  R.CostCycles = CostCycles;
  R.Worker = W;
  R.StartCycle = std::max(NowCycles + QueueDelay, WorkerFreeCycle[W]);
  R.ReadyAtCycle = R.StartCycle + CostCycles;

  Queue.push(R);
  ++NextSeqNo;
  WorkerFreeCycle[W] = R.ReadyAtCycle;
  OverlappedCycles += CostCycles;
  InFlight.push_back(R);

  if (Tracing) {
    // All three pipeline stages are emitted here, on the execution thread:
    // the virtual scheduler already fixed the start/ready cycles, so the
    // future-stamped events are exact and no worker-side recording (with
    // its host-race ordering) is needed.
    TraceEvent E;
    E.Method = Id;
    E.Level = static_cast<int8_t>(L);
    E.A = R.SeqNo;
    E.Kind = TraceEventKind::CompileEnqueue;
    E.Cycle = NowCycles;
    E.B = CostCycles;
    E.C = W;
    Tracer->record(E);
    E.Kind = TraceEventKind::CompileStart;
    E.Cycle = R.StartCycle;
    E.C = 0;
    E.Tid = static_cast<uint8_t>(1 + W);
    Tracer->record(E);
    E.Kind = TraceEventKind::CompileReady;
    E.Cycle = R.ReadyAtCycle;
    E.B = 0;
    Tracer->record(E);
  }
  return true;
}

std::vector<CompileResult>
CompileWorkerPool::takeReady(uint64_t NowCycles) {
  std::vector<CompileResult> Ready;
  if (InFlight.empty())
    return Ready;
  // Collect the requests whose virtual ready time has arrived...
  std::vector<CompileRequest> Due;
  for (size_t I = 0; I != InFlight.size();) {
    if (InFlight[I].ReadyAtCycle <= NowCycles) {
      Due.push_back(InFlight[I]);
      InFlight.erase(InFlight.begin() + static_cast<ptrdiff_t>(I));
    } else {
      ++I;
    }
  }
  // ...in deterministic install order, then block on each host compile.
  std::sort(Due.begin(), Due.end(),
            [](const CompileRequest &A, const CompileRequest &B) {
              return A.ReadyAtCycle != B.ReadyAtCycle
                         ? A.ReadyAtCycle < B.ReadyAtCycle
                         : A.SeqNo < B.SeqNo;
            });
  Ready.reserve(Due.size());
  for (const CompileRequest &R : Due)
    Ready.push_back(Queue.takeResult(R.SeqNo));
  return Ready;
}

uint64_t CompileWorkerPool::backlogCycles(uint64_t NowCycles) const {
  uint64_t Earliest = WorkerFreeCycle[0];
  for (uint64_t Free : WorkerFreeCycle)
    Earliest = std::min(Earliest, Free);
  return Earliest > NowCycles ? Earliest - NowCycles : 0;
}

void CompileWorkerPool::reset() {
  Queue.drainAndDiscard();
  InFlight.clear();
  std::fill(WorkerFreeCycle.begin(), WorkerFreeCycle.end(), 0);
  OverlappedCycles = 0;
  DroppedRequests = 0;
}
