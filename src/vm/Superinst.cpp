//===- vm/Superinst.cpp ---------------------------------------------------===//

#include "vm/Superinst.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace evm;
using namespace evm::vm;
using bc::Instr;
using bc::Opcode;

const std::array<OpcodePair, NumSuperinstPairs> &
evm::vm::supportedSuperinstPairs() {
  static const std::array<OpcodePair, NumSuperinstPairs> Pairs = {{
#define EVM_SUPERINST_PAIR_INIT(A, B) {Opcode::A, Opcode::B},
      EVM_SUPERINST_PAIRS(EVM_SUPERINST_PAIR_INIT)
#undef EVM_SUPERINST_PAIR_INIT
  }};
  return Pairs;
}

int evm::vm::supportedPairIndex(Opcode A, Opcode B) {
  // Dense lookup built once; NumOpcodes^2 int16s (~3.5 KiB).
  static const auto Table = [] {
    std::array<int16_t, bc::NumOpcodes * bc::NumOpcodes> T;
    T.fill(-1);
    const auto &Pairs = supportedSuperinstPairs();
    for (size_t I = 0; I != Pairs.size(); ++I)
      T[static_cast<size_t>(Pairs[I].First) * bc::NumOpcodes +
        static_cast<size_t>(Pairs[I].Second)] = static_cast<int16_t>(I);
    return T;
  }();
  return Table[static_cast<size_t>(A) * bc::NumOpcodes +
               static_cast<size_t>(B)];
}

std::string evm::vm::superinstPairName(size_t Index) {
  assert(Index < NumSuperinstPairs && "pair index out of range");
  const OpcodePair &P = supportedSuperinstPairs()[Index];
  std::string Name(bc::getOpcodeInfo(P.First).Mnemonic);
  Name += '+';
  Name += bc::getOpcodeInfo(P.Second).Mnemonic;
  return Name;
}

bool evm::vm::isFusableHead(Opcode Op) {
  const bc::OpcodeInfo &Info = bc::getOpcodeInfo(Op);
  return !Info.IsBranch && !Info.IsTerminator && Op != Opcode::Call;
}

bool evm::vm::isFusableTail(Opcode Op) { return Op != Opcode::Call; }

uint64_t SuperinstTable::enabledMask() const {
  uint64_t Mask = 0;
  for (const OpcodePair &P : Pairs) {
    int Idx = supportedPairIndex(P.First, P.Second);
    assert(Idx >= 0 && "table contains an unsupported pair");
    Mask |= uint64_t(1) << Idx;
  }
  return Mask;
}

SuperinstTable evm::vm::defaultSuperinstTable() {
  SuperinstTable T;
  const auto &Pairs = supportedSuperinstPairs();
  T.Pairs.assign(Pairs.begin(), Pairs.end());
  return T;
}

uint64_t evm::vm::interpChargeCycles(const TimingModel &TM, Opcode Op) {
  return TM.InterpDispatchCycles + scalarOpCost(Op);
}

namespace {

/// Pcs that some branch in \p Code jumps to; a pair's second instruction
/// must not be one (control would land mid-pair).
std::vector<bool> branchTargets(const std::vector<Instr> &Code) {
  std::vector<bool> Target(Code.size(), false);
  for (const Instr &I : Code)
    if (bc::getOpcodeInfo(I.Op).IsBranch) {
      assert(static_cast<size_t>(I.Operand) < Code.size() &&
             "branch target out of range (verifier?)");
      Target[static_cast<size_t>(I.Operand)] = true;
    }
  return Target;
}

bool isBranchOpcode(Opcode Op) { return bc::getOpcodeInfo(Op).IsBranch; }

} // namespace

DecodedFunction evm::vm::decodeFunction(const bc::Function &F,
                                        const TimingModel &TM,
                                        uint64_t EnabledMask) {
  const std::vector<Instr> &Code = F.Code;
  std::vector<bool> Target = branchTargets(Code);

  DecodedFunction D;
  D.Code.reserve(Code.size());
  // Original pc -> decoded index, for branch remapping.  A fused second
  // instruction is never a branch target, so mapping both constituent pcs
  // to the pair's slot is safe (only the head's entry is ever consulted).
  std::vector<uint32_t> Pc2D(Code.size(), 0);

  for (size_t Pc = 0; Pc != Code.size();) {
    DecodedInstr DI;
    DI.OrigPc = static_cast<uint32_t>(Pc);
    DI.Operand = Code[Pc].Operand;
    DI.Charge = interpChargeCycles(TM, Code[Pc].Op);
    Pc2D[Pc] = static_cast<uint32_t>(D.Code.size());

    int PairIdx = -1;
    if (Pc + 1 < Code.size() && !Target[Pc + 1] &&
        isFusableHead(Code[Pc].Op) && isFusableTail(Code[Pc + 1].Op))
      PairIdx = supportedPairIndex(Code[Pc].Op, Code[Pc + 1].Op);
    if (PairIdx >= 0 && (EnabledMask & (uint64_t(1) << PairIdx))) {
      DI.Handler = static_cast<uint16_t>(bc::NumOpcodes + PairIdx);
      DI.Operand2 = Code[Pc + 1].Operand;
      DI.Charge2 = interpChargeCycles(TM, Code[Pc + 1].Op);
      Pc2D[Pc + 1] = static_cast<uint32_t>(D.Code.size());
      ++D.FusedSites;
      Pc += 2;
    } else {
      DI.Handler = static_cast<uint16_t>(Code[Pc].Op);
      Pc += 1;
    }
    D.Code.push_back(DI);
  }

  // Remap branch operands (original pc -> decoded index).  Only a fused
  // *second* can be a branch — heads are never branches.
  for (DecodedInstr &DI : D.Code) {
    if (DI.Handler < bc::NumOpcodes) {
      if (isBranchOpcode(static_cast<Opcode>(DI.Handler)))
        DI.Operand = Pc2D[static_cast<size_t>(DI.Operand)];
    } else {
      const OpcodePair &P =
          supportedSuperinstPairs()[DI.Handler - bc::NumOpcodes];
      if (isBranchOpcode(P.Second))
        DI.Operand2 = Pc2D[static_cast<size_t>(DI.Operand2)];
    }
  }
  return D;
}

std::vector<Instr> evm::vm::defuseFunction(const DecodedFunction &D) {
  std::vector<Instr> Code;
  for (const DecodedInstr &DI : D.Code) {
    auto origTarget = [&](int64_t DecodedIdx) {
      assert(static_cast<size_t>(DecodedIdx) < D.Code.size() &&
             "decoded branch target out of range");
      return static_cast<int64_t>(D.Code[static_cast<size_t>(DecodedIdx)]
                                      .OrigPc);
    };
    if (DI.Handler < bc::NumOpcodes) {
      Opcode Op = static_cast<Opcode>(DI.Handler);
      Code.push_back(
          Instr{Op, isBranchOpcode(Op) ? origTarget(DI.Operand) : DI.Operand});
    } else {
      const OpcodePair &P =
          supportedSuperinstPairs()[DI.Handler - bc::NumOpcodes];
      Code.push_back(Instr{P.First, DI.Operand});
      Code.push_back(Instr{P.Second, isBranchOpcode(P.Second)
                                         ? origTarget(DI.Operand2)
                                         : DI.Operand2});
    }
  }
  return Code;
}

std::vector<MinedPair>
evm::vm::mineAdjacentPairs(const bc::Module &M,
                           const std::vector<uint64_t> &MethodWeights) {
  // (First, Second) -> weighted count; std::map keys give the deterministic
  // opcode-order tiebreak for free.
  std::map<std::pair<uint8_t, uint8_t>, uint64_t> Counts;
  for (size_t Id = 0; Id != M.numFunctions(); ++Id) {
    uint64_t W = Id < MethodWeights.size() ? MethodWeights[Id] : 1;
    if (!W)
      continue;
    const std::vector<Instr> &Code =
        M.function(static_cast<bc::MethodId>(Id)).Code;
    std::vector<bool> Target = branchTargets(Code);
    for (size_t Pc = 0; Pc + 1 < Code.size(); ++Pc)
      if (!Target[Pc + 1] && isFusableHead(Code[Pc].Op) &&
          isFusableTail(Code[Pc + 1].Op))
        Counts[{static_cast<uint8_t>(Code[Pc].Op),
                static_cast<uint8_t>(Code[Pc + 1].Op)}] += W;
  }
  std::vector<MinedPair> Mined;
  Mined.reserve(Counts.size());
  for (const auto &[Key, Count] : Counts)
    Mined.push_back(MinedPair{{static_cast<Opcode>(Key.first),
                               static_cast<Opcode>(Key.second)},
                              Count});
  std::stable_sort(Mined.begin(), Mined.end(),
                   [](const MinedPair &A, const MinedPair &B) {
                     return A.Count > B.Count;
                   });
  return Mined;
}

SuperinstTable
evm::vm::mineSuperinstTable(const bc::Module &M,
                            const std::vector<uint64_t> &MethodWeights,
                            size_t TopN) {
  SuperinstTable T;
  for (const MinedPair &P : mineAdjacentPairs(M, MethodWeights)) {
    if (T.Pairs.size() >= TopN)
      break;
    if (supportedPairIndex(P.Pair.First, P.Pair.Second) >= 0)
      T.Pairs.push_back(P.Pair);
  }
  return T;
}
