//===- vm/Heap.h - Flat bump-allocated value heap --------------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM heap: a flat array of Values with bump allocation (NewArr) and
/// bounds-checked loads/stores.  Workloads use it for their data arrays
/// (compression buffers, scene grids, particle tables).  There is no GC:
/// a run's allocations live for the run, matching the arena-style lifetime
/// of the paper's benchmark kernels.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_HEAP_H
#define EVM_VM_HEAP_H

#include "bytecode/Value.h"
#include "vm/Eval.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace evm {
namespace vm {

/// A flat heap of Values addressed by int64 cell index.
class Heap {
public:
  explicit Heap(size_t MaxCells = 1u << 22) : MaxCells(MaxCells) {}

  /// Allocates \p Count zero-initialized cells; returns the base address or
  /// nullopt (setting \p Trap) when the heap limit would be exceeded.
  std::optional<int64_t> alloc(int64_t Count, TrapKind &Trap) {
    if (Count < 0 ||
        Cells.size() + static_cast<size_t>(Count) > MaxCells) {
      Trap = TrapKind::HeapExhausted;
      return std::nullopt;
    }
    int64_t Base = static_cast<int64_t>(Cells.size());
    Cells.resize(Cells.size() + static_cast<size_t>(Count));
    return Base;
  }

  std::optional<bc::Value> load(int64_t Addr, TrapKind &Trap) const {
    if (Addr < 0 || static_cast<size_t>(Addr) >= Cells.size()) {
      Trap = TrapKind::HeapOutOfBounds;
      return std::nullopt;
    }
    return Cells[static_cast<size_t>(Addr)];
  }

  bool store(int64_t Addr, const bc::Value &V, TrapKind &Trap) {
    if (Addr < 0 || static_cast<size_t>(Addr) >= Cells.size()) {
      Trap = TrapKind::HeapOutOfBounds;
      return false;
    }
    Cells[static_cast<size_t>(Addr)] = V;
    return true;
  }

  size_t size() const { return Cells.size(); }

  /// Drops all allocations (between runs).
  void reset() { Cells.clear(); }

private:
  size_t MaxCells;
  std::vector<bc::Value> Cells;
};

} // namespace vm
} // namespace evm

#endif // EVM_VM_HEAP_H
