//===- vm/AOS.h - The reactive adaptive optimization system ---------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AdaptivePolicy: the paper's "Default" scenario.  At every profiler sample
/// it assumes the method will run for as long as it already has (Jikes'
/// past-predicts-future heuristic) and consults the cost-benefit model for a
/// profitable recompilation.  This is the purely reactive baseline whose
/// delay and partial knowledge the evolvable VM removes.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_AOS_H
#define EVM_VM_AOS_H

#include "support/Profiler.h"
#include "support/Trace.h"
#include "vm/CostBenefit.h"
#include "vm/Policy.h"

namespace evm {
namespace vm {

/// The default reactive policy (sampling + cost-benefit model).  When given
/// a recorder it emits a costbenefit.eval event per decision, carrying the
/// estimates that drove it.
class AdaptivePolicy : public CompilationPolicy {
public:
  explicit AdaptivePolicy(const TimingModel &TM,
                          TraceRecorder *Tracer = nullptr)
      : TM(TM), Tracer(Tracer) {}

  std::optional<OptLevel>
  onSample(const MethodRuntimeInfo &Info) override {
    // Estimated remaining execution: as many cycles as observed so far.
    // With a background pipeline the engine reports the current worker
    // backlog so the model prices queue delay instead of a stall.
    uint64_t FutureCycles = Info.Samples * TM.SampleIntervalCycles;
    // Free on the virtual clock (the model evaluation rides the sample);
    // the phase frame nests under the engine's aos/sample so evaluation
    // counts show up in the tree (a triggered compile is charged by the
    // engine under aos/sample itself, after this returns).
    PROF_SCOPE("costbenefit");
    RecompileEval Eval;
    std::optional<OptLevel> Chosen = chooseRecompileLevel(
        TM, Info.Level, FutureCycles, Info.BytecodeSize,
        Info.CompileBacklogCycles, &Eval);
    if (Tracer && Tracer->enabled()) {
      TraceEvent E;
      E.Kind = TraceEventKind::CostBenefitEval;
      E.Cycle = Info.NowCycles;
      E.Method = Info.Id;
      E.Level = Chosen ? static_cast<int8_t>(*Chosen) : kTraceNoLevel;
      E.A = FutureCycles;
      E.B = Info.CompileBacklogCycles;
      E.C = static_cast<uint64_t>(levelIndex(Info.Level));
      E.X = Eval.BestCost;
      Tracer->record(E);
    }
    return Chosen;
  }

private:
  TimingModel TM;
  TraceRecorder *Tracer;
};

} // namespace vm
} // namespace evm

#endif // EVM_VM_AOS_H
