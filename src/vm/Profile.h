//===- vm/Profile.h - Run profiles and results -----------------------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What one execution produces: per-method sample counts (the paper's
/// profile p), compilation events, and cycle totals.  The model builder
/// turns these into posterior ideal strategies; the harness turns them into
/// the paper's figures.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_PROFILE_H
#define EVM_VM_PROFILE_H

#include "bytecode/Module.h"
#include "bytecode/Value.h"
#include "support/Metrics.h"
#include "support/Profiler.h"
#include "vm/Timing.h"

#include <cstdint>
#include <vector>

namespace evm {
namespace vm {

/// One (re)compilation performed during a run.  Synchronous compiles have
/// AtCycle == RequestedAtCycle + CostCycles and stall the application for
/// the whole cost; background compiles overlap with execution and AtCycle
/// is the (deterministic) virtual cycle the code became installable.
struct CompileEvent {
  bc::MethodId Method = 0;
  OptLevel Level = OptLevel::Baseline;
  uint64_t AtCycle = 0;
  uint64_t CostCycles = 0;
  uint64_t RequestedAtCycle = 0;
  bool Background = false;
};

/// Per-method runtime statistics for one run.
struct MethodStats {
  uint64_t Samples = 0;     ///< profiler hits (the paper's T_m proxy)
  uint64_t Invocations = 0; ///< times the method was entered
  int NumCompiles = 0;      ///< baseline + recompilations
  OptLevel FinalLevel = OptLevel::Baseline;
  /// Execution cycles attributed to the method while it ran at each level
  /// (indexed by levelIndex).  Used to normalize profiles from optimized
  /// runs back to baseline-equivalent time so the posterior ideal strategy
  /// is stable across scenarios.
  uint64_t CyclesByLevel[NumOptLevels] = {0, 0, 0, 0};

  /// Estimated cycles this method would have taken at Baseline, given the
  /// model's per-level speed estimates.
  double baselineEquivalentCycles(const TimingModel &TM) const {
    double Total = 0;
    for (int I = 0; I != NumOptLevels; ++I)
      Total += static_cast<double>(CyclesByLevel[I]) *
               TM.expectedSpeedup(levelFromIndex(I));
    return Total;
  }
};

/// The outcome of one complete execution.
///
/// Accounting lives in the metrics snapshot (engine.* counters, plus
/// evolve.* entries added by the evolvable VM); the former ad-hoc fields
/// survive as thin accessors over it.
struct RunResult {
  bc::Value ReturnValue;
  uint64_t Cycles = 0; ///< total virtual time, including stalls
  /// Structured accounting: every engine.* counter/gauge/histogram the run
  /// produced, name-sorted, with a stable JSON rendering.
  MetricsSnapshot Metrics;
  /// Phase attribution of every charged cycle (see support/Profiler.h);
  /// empty unless a PhaseProfiler was installed on the execution thread
  /// during run().  Cumulative across run()s of a persistent engine.
  PhaseTreeSnapshot Phases;
  std::vector<MethodStats> PerMethod;
  std::vector<CompileEvent> Compiles;

  /// Time spent inside the compilers (stalled + overlapped).
  uint64_t compileCycles() const {
    return stallCompileCycles() + overlappedCompileCycles();
  }
  /// Compile cycles charged to the application clock (baseline compiles
  /// plus, in synchronous mode, every optimizing compile).  Always a
  /// component of Cycles.
  uint64_t stallCompileCycles() const {
    return Metrics.counter("engine.cycles.stall_compile");
  }
  /// Compile cycles spent on background worker timelines, overlapped with
  /// execution; never part of Cycles.  Zero when NumCompileWorkers == 0.
  uint64_t overlappedCompileCycles() const {
    return Metrics.counter("engine.cycles.overlapped_compile");
  }
  /// Background requests dropped because the bounded queue was full.
  uint64_t droppedCompiles() const {
    return Metrics.counter("engine.compiles.dropped");
  }
  /// Cycles charged by the evolvable-VM machinery.
  uint64_t overheadCycles() const {
    return Metrics.counter("engine.cycles.overhead");
  }

  /// Total profiler samples across methods.
  uint64_t totalSamples() const {
    uint64_t Total = 0;
    for (const MethodStats &S : PerMethod)
      Total += S.Samples;
    return Total;
  }
};

} // namespace vm
} // namespace evm

#endif // EVM_VM_PROFILE_H
