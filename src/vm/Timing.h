//===- vm/Timing.h - Optimization levels and the virtual clock model -----===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OptLevel (the Jikes-style -1/0/1/2 ladder the paper predicts over) and
/// TimingModel (the virtual-clock cost constants).  The clock replaces the
/// paper's wall-clock Xeon measurements: interpretation, compiled dispatch,
/// and compilation all charge cycles, so the reactive optimizer's
/// delayed-optimization pathology and the proactive optimizer's benefits
/// (avoided recompilations, early efficient code) both emerge from the same
/// arithmetic that drives Jikes' cost-benefit model.
///
/// Costs are op-dependent (a sin() costs more than an add), so the JIT's
/// transformations have genuine, measurable effects: LICM that hoists a
/// sin() saves 14 cycles per iteration; strength-reducing mul to shl saves
/// the mul/alu difference; DCE and CSE shrink the dynamic op count.
///
/// The expectedSpeedup table plays the role of Jikes' offline-measured
/// "compiler DNA": the adaptive system, the posterior ideal-strategy
/// computation, and the Rep repository all consult the *same* estimates,
/// exactly as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_TIMING_H
#define EVM_VM_TIMING_H

#include "bytecode/Opcode.h"

#include <cassert>
#include <cstdint>

namespace evm {
namespace vm {

/// A method's compilation level.  Baseline (-1) is the non-optimizing tier
/// every method starts in; O0-O2 are optimizing-JIT pipelines of increasing
/// aggressiveness (and compile cost).
enum class OptLevel : int8_t {
  Baseline = -1,
  O0 = 0,
  O1 = 1,
  O2 = 2,
};

/// Number of levels, for table sizing.
constexpr int NumOptLevels = 4;

/// Maps a level to a dense index in [0, NumOptLevels).
constexpr int levelIndex(OptLevel L) { return static_cast<int>(L) + 1; }

/// Inverse of levelIndex.
constexpr OptLevel levelFromIndex(int Index) {
  assert(Index >= 0 && Index < NumOptLevels && "level index out of range");
  return static_cast<OptLevel>(Index - 1);
}

/// Human-readable level name ("-1", "0", "1", "2").
const char *levelName(OptLevel L);

/// Intrinsic execution cost of one scalar operation, in cycles, shared by
/// all tiers (the tiers differ in dispatch overhead and dynamic op counts).
uint64_t scalarOpCost(bc::Opcode Op);

/// Virtual-clock cost constants.  All durations are in cycles; reported
/// "seconds" divide by CyclesPerSecond.
struct TimingModel {
  /// Dispatch overhead per interpreted bytecode (fetch/decode/stack traffic).
  uint64_t InterpDispatchCycles = 7;
  /// Dispatch overhead per executed IR op in compiled code.
  uint64_t CompiledDispatchCycles = 1;
  /// Call/return overhead charged on method entry, per execution tier.
  uint64_t InterpCallOverhead = 40;
  uint64_t CompiledCallOverhead = 12;
  /// Compile cost per bytecode of the method, per level.  Ratios follow
  /// Jikes' compiler DNA: the baseline compiler is orders of magnitude
  /// faster than the optimizing tiers, which is precisely why reactive
  /// recompilation decisions are expensive to get wrong.
  uint64_t CompileCyclesPerBytecode[4] = {3, 300, 1500, 6000};
  /// Fixed per-compilation cost (pipeline setup).
  uint64_t CompileFixedCycles[4] = {50, 2000, 8000, 30000};
  /// Sampling interval of the runtime profiler (the paper's "samples").
  uint64_t SampleIntervalCycles = 50000;
  /// Background compilation pipeline.  0 (the default) compiles
  /// synchronously on the execution thread, stalling the application for
  /// the full compile cost — the seed behavior, which keeps every existing
  /// figure valid.  >= 1 models Jikes RVM's dedicated compilation threads:
  /// optimizing compiles run on per-worker virtual timelines and the
  /// application keeps executing old code until the new code is
  /// installable at
  ///   max(request_cycle + CompileQueueDelayCycles, worker_free_cycle)
  ///     + compile_cycles.
  /// Baseline compiles always stay on the execution thread (code cannot
  /// run before it exists).
  uint64_t NumCompileWorkers = 0;
  /// Fixed virtual handoff latency from the execution thread to a compile
  /// worker (enqueue, wakeup, plan setup).
  uint64_t CompileQueueDelayCycles = 200;
  /// Bound on in-flight (requested, not yet installed) background
  /// compiles; requests beyond it are dropped deterministically and
  /// counted in RunResult::DroppedCompiles.
  uint64_t CompileQueueCapacity = 32;
  /// Converts cycles to reported seconds (a 10 MHz virtual machine: chosen
  /// so workload run times land in the paper's 1-26 s range).
  double CyclesPerSecond = 10.0e6;

  /// Estimated steady-state speed of level \p L relative to Baseline; the
  /// analogue of Jikes' offline-measured DNA, used by all cost-benefit
  /// consumers.  Calibrated against bench_jit_levels.
  double expectedSpeedup(OptLevel L) const {
    // Geometric means measured by bench_jit_levels over the 11 workloads.
    switch (L) {
    case OptLevel::Baseline:
      return 1.0;
    case OptLevel::O0:
      return 3.3;
    case OptLevel::O1:
      return 4.9;
    case OptLevel::O2:
      return 6.0;
    }
    assert(false && "invalid level");
    return 1.0;
  }

  /// Cycles to compile a method of \p BytecodeSize at level \p L.
  uint64_t compileCost(OptLevel L, size_t BytecodeSize) const {
    int I = levelIndex(L);
    return CompileFixedCycles[I] +
           CompileCyclesPerBytecode[I] * static_cast<uint64_t>(BytecodeSize);
  }

  /// Converts a cycle count to seconds under this model.
  double toSeconds(uint64_t Cycles) const {
    return static_cast<double>(Cycles) / CyclesPerSecond;
  }
};

} // namespace vm
} // namespace evm

#endif // EVM_VM_TIMING_H
