//===- vm/Engine.cpp ------------------------------------------------------==//

#include "vm/Engine.h"

#include "vm/Eval.h"

#include <cassert>
#include <cstring>

using namespace evm;
using namespace evm::vm;
using bc::Instr;
using bc::MethodId;
using bc::Opcode;
using bc::Value;

CompilationPolicy::~CompilationPolicy() = default;

namespace {

/// Execution cost of one IR instruction (dispatch excluded).
uint64_t irInstrCost(const jit::IRInstr &I) {
  switch (I.Op) {
  case jit::IROp::Binary:
  case jit::IROp::Unary:
    return scalarOpCost(I.ScalarOp);
  case jit::IROp::NewArr:
    return scalarOpCost(Opcode::NewArr);
  case jit::IROp::HLoad:
    return scalarOpCost(Opcode::HLoad);
  case jit::IROp::HStore:
    return scalarOpCost(Opcode::HStore);
  case jit::IROp::Call:
    return 4;
  default:
    return 1; // MovImm/Mov/Jump/CondJump/Ret
  }
}

/// Phase-frame names per optimizing level (stable string literals).
const char *jitExecPhase(OptLevel L) {
  switch (L) {
  case OptLevel::O0:
    return "jit:o0";
  case OptLevel::O1:
    return "jit:o1";
  default:
    return "jit:o2";
  }
}

const char *compilePhase(OptLevel L) {
  switch (L) {
  case OptLevel::O0:
    return "jit/compile/o0";
  case OptLevel::O1:
    return "jit/compile/o1";
  default:
    return "jit/compile/o2";
  }
}

/// Background-lane frame (under the "background" root).
const char *backgroundCompilePhase(OptLevel L) {
  switch (L) {
  case OptLevel::O0:
    return "compile/o0";
  case OptLevel::O1:
    return "compile/o1";
  default:
    return "compile/o2";
  }
}

/// Splits a compile-cost lump already attributed to the *current* scope
/// (the jit/compile/oN node) across the pipeline's passes, proportional to
/// recorded pass work.  Integer shares; the rounding remainder stays on
/// the compile node itself.
void splitPassCycles(PhaseProfiler &P, const jit::CompiledFunction &Code,
                     uint64_t Cost) {
  uint64_t TotalWork = 0;
  for (const jit::PassWork &PW : Code.Passes)
    TotalWork += PW.Work;
  if (!TotalWork)
    return;
  for (const jit::PassWork &PW : Code.Passes)
    P.splitToChild(PW.Name, Cost * PW.Work / TotalWork, PW.Runs);
}

} // namespace

ExecutionEngine::ExecutionEngine(const bc::Module &M, const TimingModel &TM,
                                 CompilationPolicy *Policy)
    : M(M), TM(TM), Policy(Policy), DispMode(processDispatchMode()),
      FusionTable(defaultSuperinstTable()) {
  decodeAll();
}

void ExecutionEngine::setDispatchMode(DispatchMode Mode,
                                      const SuperinstTable *Table) {
  DispMode = Mode;
  if (Table)
    FusionTable = *Table;
  decodeAll();
}

void ExecutionEngine::decodeAll() {
  Decoded.clear();
  if (DispMode == DispatchMode::Switch)
    return; // the reference interpreter reads bytecode directly
  uint64_t Mask =
      DispMode == DispatchMode::Fused ? FusionTable.enabledMask() : 0;
  Decoded.reserve(M.numFunctions());
  for (size_t Id = 0; Id != M.numFunctions(); ++Id)
    Decoded.push_back(
        decodeFunction(M.function(static_cast<MethodId>(Id)), TM, Mask));
}

void ExecutionEngine::setTracer(TraceRecorder *T) {
  Tracer = T;
  if (Workers)
    Workers->setTracer(T);
}

OptLevel ExecutionEngine::methodLevel(MethodId Id) const {
  assert(Id < Methods.size() && "method id out of range (before run?)");
  return Methods[Id].Level;
}

void ExecutionEngine::setCodeOverride(
    MethodId Id, std::shared_ptr<const jit::CompiledFunction> Code) {
  assert(Id < M.numFunctions() && "method id out of range");
  if (CodeOverrides.size() < M.numFunctions())
    CodeOverrides.resize(M.numFunctions());
  CodeOverrides[Id] = std::move(Code);
}

void ExecutionEngine::setTrap(TrapKind Kind, MethodId Method,
                              size_t Location) {
  // First trap wins; later ones are consequences of unwinding.
  if (PendingTrap == TrapKind::None) {
    PendingTrap = Kind;
    TrapMethod = Method;
    TrapLocation = Location;
  }
}

void ExecutionEngine::charge(uint64_t N) {
  Cycles += N;
  if (Prof)
    Prof->charge(N);
  if (Cycles > MaxCycles)
    setTrap(TrapKind::FuelExhausted, CallStack.empty() ? 0 : CallStack.back(),
            0);
  if (!CallStack.empty()) {
    MethodState &State = Methods[CallStack.back()];
    State.Stats.CyclesByLevel[levelIndex(State.Level)] += N;
  }
  while (Cycles >= NextSampleAt) {
    NextSampleAt += TM.SampleIntervalCycles;
    sampleTick();
  }
}

void ExecutionEngine::sampleTick() {
  if (CallStack.empty())
    return; // time outside any method (compiler setup, VM machinery)
  // The sample itself is free (the paper's profiler rides the timer
  // interrupt); any synchronous recompilation the policy triggers charges
  // under this frame, which is exactly the "AOS decided here" attribution.
  PROF_SCOPE("aos/sample");
  MethodId Current = CallStack.back();
  MethodState &State = Methods[Current];
  ++State.Stats.Samples;

  if (Tracer && Tracer->enabled()) {
    TraceEvent E;
    E.Kind = TraceEventKind::ProfileSample;
    E.Cycle = Cycles;
    E.Method = Current;
    E.Level = static_cast<int8_t>(State.Level);
    E.A = State.Stats.Samples;
    Tracer->record(E);
  }

  if (!Policy || InSamplingHook)
    return;
  InSamplingHook = true;
  MethodRuntimeInfo Info;
  Info.Id = Current;
  Info.Samples = State.Stats.Samples;
  Info.Invocations = State.Stats.Invocations;
  Info.Level = State.Level;
  Info.BytecodeSize = M.function(Current).Code.size();
  Info.CompileBacklogCycles = Workers ? Workers->backlogCycles(Cycles) : 0;
  Info.NowCycles = Cycles;
  if (std::optional<OptLevel> L = Policy->onSample(Info))
    installLevel(Current, *L);
  InSamplingHook = false;
}

void ExecutionEngine::installLevel(MethodId Id, OptLevel L) {
  MethodState &State = Methods[Id];
  if (levelIndex(L) <= levelIndex(State.Level))
    return;
  assert(L != OptLevel::Baseline && "cannot install baseline");

  uint64_t Cost = TM.compileCost(L, M.function(Id).Code.size());

  if (Workers) {
    // Background pipeline: hand the compile to a worker and keep running
    // the old code.  The pool's deterministic scheduler (which models the
    // queue handoff delay and per-worker timelines) decides when the code
    // becomes installable.
    Workers->request(Id, L, Cycles, Cost);
    return;
  }

  CompileCycles += Cost;
  // Compile before charging so the pass-work breakdown exists when the
  // cost lump is attributed; compileAtLevel is pure, so the reorder is
  // unobservable outside the profiler.
  auto Code = std::make_shared<jit::CompiledFunction>(
      jit::compileAtLevel(M, Id, L));
  {
    ScopedPhase CompileScope(compilePhase(L));
    charge(Cost);
    if (Prof)
      splitPassCycles(*Prof, *Code, Cost);
  }
  OptLevel OldLevel = State.Level;
  State.Code = std::move(Code);
  State.Level = L;
  State.Stats.FinalLevel = L;
  ++State.Stats.NumCompiles;
  Compiles.push_back(
      CompileEvent{Id, L, Cycles, Cost, Cycles - Cost, /*Background=*/false});
  if (Tracer && Tracer->enabled()) {
    TraceEvent E;
    E.Cycle = Cycles;
    E.Method = Id;
    E.Level = static_cast<int8_t>(L);
    E.Kind = TraceEventKind::CompileInstall;
    E.B = Cost;
    Tracer->record(E);
    E.Kind = TraceEventKind::LevelTransition;
    E.A = static_cast<uint64_t>(levelIndex(OldLevel));
    E.B = static_cast<uint64_t>(State.Stats.NumCompiles);
    Tracer->record(E);
  }
}

void ExecutionEngine::drainReadyCompiles() {
  if (!Workers)
    return;
  for (CompileResult &R : Workers->takeReady(Cycles)) {
    // Attribute the worker's (overlapped) compile cycles to the background
    // lane, split across passes — for every finished result, including ones
    // superseded by a higher level: the worker spent the cycles either way.
    if (Prof && R.Code) {
      const char *Lane = backgroundCompilePhase(R.Request.Level);
      uint64_t Cost = R.Request.CostCycles;
      uint64_t TotalWork = 0, Attributed = 0;
      for (const jit::PassWork &PW : R.Code->Passes)
        TotalWork += PW.Work;
      if (TotalWork) {
        for (const jit::PassWork &PW : R.Code->Passes) {
          uint64_t Share = Cost * PW.Work / TotalWork;
          Prof->chargeAt({"background", Lane, PW.Name}, Share, PW.Runs);
          Attributed += Share;
        }
      }
      Prof->chargeAt({"background", Lane}, Cost - Attributed, 1);
    }
    MethodState &State = Methods[R.Request.Method];
    // A lower-or-equal-level result can arrive after a higher one was
    // already installed (two requests racing in virtual time); keep the
    // ladder monotone, as the synchronous path does.
    if (levelIndex(R.Request.Level) <= levelIndex(State.Level))
      continue;
    OptLevel OldLevel = State.Level;
    State.Code = std::move(R.Code);
    State.Level = R.Request.Level;
    State.Stats.FinalLevel = R.Request.Level;
    ++State.Stats.NumCompiles;
    Compiles.push_back(CompileEvent{R.Request.Method, R.Request.Level,
                                    R.Request.ReadyAtCycle,
                                    R.Request.CostCycles,
                                    R.Request.RequestCycle,
                                    /*Background=*/true});
    if (Tracer && Tracer->enabled()) {
      // Installed at the current invocation boundary, not the ready cycle:
      // the code existed since ReadyAtCycle but lands at the next invoke.
      TraceEvent E;
      E.Cycle = Cycles;
      E.Method = R.Request.Method;
      E.Level = static_cast<int8_t>(R.Request.Level);
      E.Kind = TraceEventKind::CompileInstall;
      E.A = R.Request.SeqNo;
      E.B = R.Request.CostCycles;
      E.C = 1;
      Tracer->record(E);
      E.Kind = TraceEventKind::LevelTransition;
      E.A = static_cast<uint64_t>(levelIndex(OldLevel));
      E.B = static_cast<uint64_t>(State.Stats.NumCompiles);
      E.C = 0;
      Tracer->record(E);
    }
  }
}

void ExecutionEngine::ensureBaseline(MethodId Id) {
  MethodState &State = Methods[Id];
  if (State.BaselineCompiled)
    return;
  State.BaselineCompiled = true;
  uint64_t Cost =
      TM.compileCost(OptLevel::Baseline, M.function(Id).Code.size());
  CompileCycles += Cost;
  {
    PROF_SCOPE("jit/compile/baseline");
    charge(Cost);
  }
  ++State.Stats.NumCompiles;
  Compiles.push_back(CompileEvent{Id, OptLevel::Baseline, Cycles, Cost,
                                  Cycles - Cost, /*Background=*/false});
  if (Tracer && Tracer->enabled()) {
    TraceEvent E;
    E.Kind = TraceEventKind::CompileInstall;
    E.Cycle = Cycles;
    E.Method = Id;
    E.Level = static_cast<int8_t>(OptLevel::Baseline);
    E.B = Cost;
    Tracer->record(E);
  }

  // The paper's Evolve scheme issues a recompilation event right after the
  // first-time (baseline) compilation.  With a background pipeline this is
  // where the predicted level is enqueued — the method starts interpreting
  // immediately while the optimizing compile runs on a worker.
  if (Policy) {
    MethodRuntimeInfo Info;
    Info.Id = Id;
    Info.Samples = 0;
    Info.Invocations = 0;
    Info.Level = OptLevel::Baseline;
    Info.BytecodeSize = M.function(Id).Code.size();
    Info.CompileBacklogCycles = Workers ? Workers->backlogCycles(Cycles) : 0;
    Info.NowCycles = Cycles;
    if (std::optional<OptLevel> L = Policy->onFirstInvocation(Info))
      installLevel(Id, *L);
  }
}

void ExecutionEngine::chargeOverhead(uint64_t N) {
  OverheadCycles += N;
  charge(N);
}

std::optional<Value> ExecutionEngine::invoke(MethodId Id,
                                             const std::vector<Value> &Args,
                                             int Depth) {
  if (Depth > MaxCallDepth) {
    setTrap(TrapKind::CallDepthExceeded, Id, 0);
    return std::nullopt;
  }
  // One phase frame per guest method, named after it, so profiles read as
  // call trees; a first-encounter baseline compile of the callee lands
  // under the callee's own frame.
  ScopedPhase MethodScope(M.function(Id).Name);
  ensureBaseline(Id);
  // Invocation boundaries are where finished background compiles land (no
  // on-stack replacement: the frame below keeps its old code).
  drainReadyCompiles();
  if (PendingTrap != TrapKind::None)
    return std::nullopt;

  MethodState &State = Methods[Id];
  ++State.Stats.Invocations;
  ++Invocations;
  if (Tracer && Tracer->enabled()) {
    TraceEvent E;
    E.Kind = TraceEventKind::MethodInvoke;
    E.Cycle = Cycles;
    E.Method = Id;
    E.Level = static_cast<int8_t>(State.Level);
    E.A = State.Stats.Invocations;
    E.B = static_cast<uint64_t>(Depth);
    Tracer->record(E);
  }
  CallStack.push_back(Id);

  std::optional<Value> Result;
  if (State.Level == OptLevel::Baseline) {
    Result = interpret(Id, Args, Depth);
  } else {
    // Hold a reference so a mid-execution recompilation cannot free the
    // code this frame is running.
    std::shared_ptr<const jit::CompiledFunction> Code = State.Code;
    Result = executeCompiled(Id, *Code, Args, Depth);
  }

  CallStack.pop_back();
  return Result;
}

std::optional<Value>
ExecutionEngine::interpret(MethodId Id, const std::vector<Value> &Args,
                           int Depth) {
  if (DispMode == DispatchMode::Switch)
    return interpretSwitch(Id, Args, Depth);
  return interpretDecoded(Id, Args, Depth);
}

std::optional<Value>
ExecutionEngine::interpretSwitch(MethodId Id, const std::vector<Value> &Args,
                                 int Depth) {
  const bc::Function &F = M.function(Id);
  assert(Args.size() == F.NumParams && "arity mismatch");

  PROF_SCOPE("interp");
  charge(TM.InterpCallOverhead);
  std::vector<Value> Locals(F.NumLocals, Value::makeInt(0));
  for (size_t K = 0; K != Args.size(); ++K)
    Locals[K] = Args[K];
  std::vector<Value> Stack;
  Stack.reserve(16);

  size_t Pc = 0;
  while (true) {
    if (PendingTrap != TrapKind::None)
      return std::nullopt;
    assert(Pc < F.Code.size() && "pc out of range (verifier?)");
    const Instr &I = F.Code[Pc];
    charge(TM.InterpDispatchCycles + scalarOpCost(I.Op));
    ++DStats.Instrs; // host-side counter; never in RunResult

    switch (I.Op) {
    case Opcode::ConstInt:
      Stack.push_back(Value::makeInt(I.Operand));
      ++Pc;
      break;
    case Opcode::ConstFloat:
      Stack.push_back(Value::makeFloat(I.floatOperand()));
      ++Pc;
      break;
    case Opcode::Pop:
      Stack.pop_back();
      ++Pc;
      break;
    case Opcode::Dup:
      Stack.push_back(Stack.back());
      ++Pc;
      break;
    case Opcode::Swap:
      std::swap(Stack[Stack.size() - 1], Stack[Stack.size() - 2]);
      ++Pc;
      break;
    case Opcode::LoadLocal:
      Stack.push_back(Locals[static_cast<size_t>(I.Operand)]);
      ++Pc;
      break;
    case Opcode::StoreLocal:
      Locals[static_cast<size_t>(I.Operand)] = Stack.back();
      Stack.pop_back();
      ++Pc;
      break;
    case Opcode::Br:
      Pc = static_cast<size_t>(I.Operand);
      break;
    case Opcode::BrTrue:
    case Opcode::BrFalse: {
      bool Truthy = Stack.back().isTruthy();
      Stack.pop_back();
      if (Truthy == (I.Op == Opcode::BrTrue))
        Pc = static_cast<size_t>(I.Operand);
      else
        ++Pc;
      break;
    }
    case Opcode::Call: {
      MethodId Callee = static_cast<MethodId>(I.Operand);
      uint32_t Arity = M.function(Callee).NumParams;
      std::vector<Value> CallArgs(Stack.end() - Arity, Stack.end());
      Stack.resize(Stack.size() - Arity);
      std::optional<Value> R = invoke(Callee, CallArgs, Depth + 1);
      if (!R)
        return std::nullopt;
      Stack.push_back(*R);
      ++Pc;
      break;
    }
    case Opcode::Ret: {
      Value Result = Stack.back();
      return Result;
    }
    case Opcode::NewArr: {
      TrapKind Trap = TrapKind::None;
      int64_t Count = Stack.back().isInt()
                          ? Stack.back().asInt()
                          : static_cast<int64_t>(Stack.back().toDouble());
      Stack.pop_back();
      auto Base = TheHeap.alloc(Count, Trap);
      if (!Base) {
        setTrap(Trap, Id, Pc);
        return std::nullopt;
      }
      Stack.push_back(Value::makeInt(*Base));
      ++Pc;
      break;
    }
    case Opcode::HLoad: {
      TrapKind Trap = TrapKind::None;
      int64_t Addr = Stack.back().isInt()
                         ? Stack.back().asInt()
                         : static_cast<int64_t>(Stack.back().toDouble());
      Stack.pop_back();
      auto Loaded = TheHeap.load(Addr, Trap);
      if (!Loaded) {
        setTrap(Trap, Id, Pc);
        return std::nullopt;
      }
      Stack.push_back(*Loaded);
      ++Pc;
      break;
    }
    case Opcode::HStore: {
      TrapKind Trap = TrapKind::None;
      Value V = Stack.back();
      Stack.pop_back();
      int64_t Addr = Stack.back().isInt()
                         ? Stack.back().asInt()
                         : static_cast<int64_t>(Stack.back().toDouble());
      Stack.pop_back();
      if (!TheHeap.store(Addr, V, Trap)) {
        setTrap(Trap, Id, Pc);
        return std::nullopt;
      }
      ++Pc;
      break;
    }
    case Opcode::Nop:
      ++Pc;
      break;
    default: {
      TrapKind Trap = TrapKind::None;
      if (isBinaryOp(I.Op)) {
        Value B = Stack.back();
        Stack.pop_back();
        Value A = Stack.back();
        Stack.pop_back();
        auto R = evalBinary(I.Op, A, B, Trap);
        if (!R) {
          setTrap(Trap, Id, Pc);
          return std::nullopt;
        }
        Stack.push_back(*R);
      } else {
        assert(isUnaryOp(I.Op) && "unhandled opcode in interpreter");
        Value A = Stack.back();
        Stack.pop_back();
        auto R = evalUnary(I.Op, A, Trap);
        if (!R) {
          setTrap(Trap, Id, Pc);
          return std::nullopt;
        }
        Stack.push_back(*R);
      }
      ++Pc;
      break;
    }
    }
  }
}

//===----------------------------------------------------------------------===//
// The decoded interpreter (Threaded/Fused modes)
//
// One handler per opcode plus one per compiled-in superinstruction pair,
// jumped to by computed goto (EVM_USE_CGOTO) or a dense switch.  The
// identity discipline: every handler replays interpretSwitch's exact
// observable sequence — pending-trap check, charge(dispatch + op cost),
// instruction body — so the virtual clock, sample ticks, trace timestamps
// and policy inputs are bit-identical in all modes.  Fused handlers charge
// their two constituents *separately* with a pending-trap check between
// (a single summed charge would move profiler sample ticks to a different
// cycle and could change policy decisions).
//===----------------------------------------------------------------------===//

#if EVM_THREADED_DISPATCH && (defined(__GNUC__) || defined(__clang__))
#define EVM_USE_CGOTO 1
#else
#define EVM_USE_CGOTO 0
#endif

namespace {

/// Decoded handler ids of the fused pairs, in supported-candidate order:
/// `bc::NumOpcodes + HPE_A_B` is the pair's DecodedInstr::Handler, and
/// HPE_A_B indexes DispatchStats::PairExecs.
enum : uint16_t {
#define EVM_PAIR_ENUMERATOR(A, B) HPE_##A##_##B,
  EVM_SUPERINST_PAIRS(EVM_PAIR_ENUMERATOR)
#undef EVM_PAIR_ENUMERATOR
};

/// ConstFloat payload (same bit-cast as bc::Instr::floatOperand).
double floatFromOperand(int64_t Operand) {
  double D;
  static_assert(sizeof(D) == sizeof(Operand));
  std::memcpy(&D, &Operand, sizeof(D));
  return D;
}

} // namespace

/// Every opcode, in bc::Opcode enum order (the handler table is indexed by
/// opcode value).
#define EVM_FOR_EACH_OPCODE(X)                                                 \
  X(ConstInt) X(ConstFloat) X(Pop) X(Dup) X(Swap) X(LoadLocal) X(StoreLocal)   \
  X(Add) X(Sub) X(Mul) X(Div) X(Mod) X(Neg) X(And) X(Or) X(Xor) X(Shl)         \
  X(Shr) X(Not) X(Eq) X(Ne) X(Lt) X(Le) X(Gt) X(Ge) X(I2F) X(F2I) X(Sqrt)      \
  X(Sin) X(Cos) X(Floor) X(Abs) X(Min) X(Max) X(Br) X(BrTrue) X(BrFalse)       \
  X(Call) X(Ret) X(NewArr) X(HLoad) X(HStore) X(Nop)

namespace {
#define EVM_COUNT_ONE(NAME) +1
static_assert(0 EVM_FOR_EACH_OPCODE(EVM_COUNT_ONE) == bc::NumOpcodes,
              "EVM_FOR_EACH_OPCODE out of sync with bc::Opcode");
#undef EVM_COUNT_ONE
} // namespace

// EVM_HEAD_<op>(OPND, PC): the instruction body exactly as interpretSwitch
// executes it — stack effect plus trap handling — with no pc/IP movement,
// so it serves both as a single handler's body and as the first half of a
// fused pair.  Bodies `return std::nullopt` on traps, like the switch.

#define EVM_HEAD_ConstInt(OPND, PC) Stack.push_back(Value::makeInt(OPND));
#define EVM_HEAD_ConstFloat(OPND, PC)                                          \
  Stack.push_back(Value::makeFloat(floatFromOperand(OPND)));
#define EVM_HEAD_Pop(OPND, PC) Stack.pop_back();
#define EVM_HEAD_Dup(OPND, PC) Stack.push_back(Stack.back());
#define EVM_HEAD_Swap(OPND, PC)                                                \
  std::swap(Stack[Stack.size() - 1], Stack[Stack.size() - 2]);
#define EVM_HEAD_LoadLocal(OPND, PC)                                           \
  Stack.push_back(Locals[static_cast<size_t>(OPND)]);
#define EVM_HEAD_StoreLocal(OPND, PC)                                          \
  Locals[static_cast<size_t>(OPND)] = Stack.back();                            \
  Stack.pop_back();
#define EVM_HEAD_Nop(OPND, PC)

#define EVM_BINOP_BODY(OPC, PC)                                                \
  {                                                                            \
    TrapKind Trap = TrapKind::None;                                            \
    Value Rhs = Stack.back();                                                  \
    Stack.pop_back();                                                          \
    Value Lhs = Stack.back();                                                  \
    Stack.pop_back();                                                          \
    auto R = evalBinary(OPC, Lhs, Rhs, Trap);                                  \
    if (!R) {                                                                  \
      setTrap(Trap, Id, PC);                                                   \
      return std::nullopt;                                                     \
    }                                                                          \
    Stack.push_back(*R);                                                       \
  }
#define EVM_UNOP_BODY(OPC, PC)                                                 \
  {                                                                            \
    TrapKind Trap = TrapKind::None;                                            \
    Value Arg = Stack.back();                                                  \
    Stack.pop_back();                                                          \
    auto R = evalUnary(OPC, Arg, Trap);                                        \
    if (!R) {                                                                  \
      setTrap(Trap, Id, PC);                                                   \
      return std::nullopt;                                                     \
    }                                                                          \
    Stack.push_back(*R);                                                       \
  }

#define EVM_HEAD_Add(OPND, PC) EVM_BINOP_BODY(Opcode::Add, PC)
#define EVM_HEAD_Sub(OPND, PC) EVM_BINOP_BODY(Opcode::Sub, PC)
#define EVM_HEAD_Mul(OPND, PC) EVM_BINOP_BODY(Opcode::Mul, PC)
#define EVM_HEAD_Div(OPND, PC) EVM_BINOP_BODY(Opcode::Div, PC)
#define EVM_HEAD_Mod(OPND, PC) EVM_BINOP_BODY(Opcode::Mod, PC)
#define EVM_HEAD_And(OPND, PC) EVM_BINOP_BODY(Opcode::And, PC)
#define EVM_HEAD_Or(OPND, PC) EVM_BINOP_BODY(Opcode::Or, PC)
#define EVM_HEAD_Xor(OPND, PC) EVM_BINOP_BODY(Opcode::Xor, PC)
#define EVM_HEAD_Shl(OPND, PC) EVM_BINOP_BODY(Opcode::Shl, PC)
#define EVM_HEAD_Shr(OPND, PC) EVM_BINOP_BODY(Opcode::Shr, PC)
#define EVM_HEAD_Eq(OPND, PC) EVM_BINOP_BODY(Opcode::Eq, PC)
#define EVM_HEAD_Ne(OPND, PC) EVM_BINOP_BODY(Opcode::Ne, PC)
#define EVM_HEAD_Lt(OPND, PC) EVM_BINOP_BODY(Opcode::Lt, PC)
#define EVM_HEAD_Le(OPND, PC) EVM_BINOP_BODY(Opcode::Le, PC)
#define EVM_HEAD_Gt(OPND, PC) EVM_BINOP_BODY(Opcode::Gt, PC)
#define EVM_HEAD_Ge(OPND, PC) EVM_BINOP_BODY(Opcode::Ge, PC)
#define EVM_HEAD_Min(OPND, PC) EVM_BINOP_BODY(Opcode::Min, PC)
#define EVM_HEAD_Max(OPND, PC) EVM_BINOP_BODY(Opcode::Max, PC)
#define EVM_HEAD_Neg(OPND, PC) EVM_UNOP_BODY(Opcode::Neg, PC)
#define EVM_HEAD_Not(OPND, PC) EVM_UNOP_BODY(Opcode::Not, PC)
#define EVM_HEAD_I2F(OPND, PC) EVM_UNOP_BODY(Opcode::I2F, PC)
#define EVM_HEAD_F2I(OPND, PC) EVM_UNOP_BODY(Opcode::F2I, PC)
#define EVM_HEAD_Sqrt(OPND, PC) EVM_UNOP_BODY(Opcode::Sqrt, PC)
#define EVM_HEAD_Sin(OPND, PC) EVM_UNOP_BODY(Opcode::Sin, PC)
#define EVM_HEAD_Cos(OPND, PC) EVM_UNOP_BODY(Opcode::Cos, PC)
#define EVM_HEAD_Floor(OPND, PC) EVM_UNOP_BODY(Opcode::Floor, PC)
#define EVM_HEAD_Abs(OPND, PC) EVM_UNOP_BODY(Opcode::Abs, PC)

#define EVM_HEAD_NewArr(OPND, PC)                                              \
  {                                                                            \
    TrapKind Trap = TrapKind::None;                                            \
    int64_t Count = Stack.back().isInt()                                       \
                        ? Stack.back().asInt()                                 \
                        : static_cast<int64_t>(Stack.back().toDouble());       \
    Stack.pop_back();                                                          \
    auto AllocBase = TheHeap.alloc(Count, Trap);                               \
    if (!AllocBase) {                                                          \
      setTrap(Trap, Id, PC);                                                   \
      return std::nullopt;                                                     \
    }                                                                          \
    Stack.push_back(Value::makeInt(*AllocBase));                               \
  }
#define EVM_HEAD_HLoad(OPND, PC)                                               \
  {                                                                            \
    TrapKind Trap = TrapKind::None;                                            \
    int64_t Addr = Stack.back().isInt()                                        \
                       ? Stack.back().asInt()                                  \
                       : static_cast<int64_t>(Stack.back().toDouble());        \
    Stack.pop_back();                                                          \
    auto Loaded = TheHeap.load(Addr, Trap);                                    \
    if (!Loaded) {                                                             \
      setTrap(Trap, Id, PC);                                                   \
      return std::nullopt;                                                     \
    }                                                                          \
    Stack.push_back(*Loaded);                                                  \
  }
#define EVM_HEAD_HStore(OPND, PC)                                              \
  {                                                                            \
    TrapKind Trap = TrapKind::None;                                            \
    Value V = Stack.back();                                                    \
    Stack.pop_back();                                                          \
    int64_t Addr = Stack.back().isInt()                                        \
                       ? Stack.back().asInt()                                  \
                       : static_cast<int64_t>(Stack.back().toDouble());        \
    Stack.pop_back();                                                          \
    if (!TheHeap.store(Addr, V, Trap)) {                                       \
      setTrap(Trap, Id, PC);                                                   \
      return std::nullopt;                                                     \
    }                                                                          \
  }
#define EVM_HEAD_Call(OPND, PC)                                                \
  {                                                                            \
    MethodId Callee = static_cast<MethodId>(OPND);                             \
    uint32_t Arity = M.function(Callee).NumParams;                             \
    std::vector<Value> CallArgs(Stack.end() - Arity, Stack.end());             \
    Stack.resize(Stack.size() - Arity);                                        \
    std::optional<Value> R = invoke(Callee, CallArgs, Depth + 1);              \
    if (!R)                                                                    \
      return std::nullopt;                                                     \
    Stack.push_back(*R);                                                       \
  }

// EVM_TAIL_<op>(OPND, PC): body plus IP movement — a full handler payload,
// also the second half of a fused pair (the pair occupies one decoded
// slot, so a tail's fall-through `++IP` lands after the whole pair).
// Branch operands are decoded indices (see decodeFunction).

#define EVM_TAIL_Br(OPND, PC) IP = Base + static_cast<size_t>(OPND);
#define EVM_TAIL_BrTrue(OPND, PC)                                              \
  {                                                                            \
    bool Truthy = Stack.back().isTruthy();                                     \
    Stack.pop_back();                                                          \
    IP = Truthy ? Base + static_cast<size_t>(OPND) : IP + 1;                   \
  }
#define EVM_TAIL_BrFalse(OPND, PC)                                             \
  {                                                                            \
    bool Truthy = Stack.back().isTruthy();                                     \
    Stack.pop_back();                                                          \
    IP = Truthy ? IP + 1 : Base + static_cast<size_t>(OPND);                   \
  }
#define EVM_TAIL_Ret(OPND, PC) return Stack.back();

#define EVM_TAIL_ConstInt(OPND, PC) {EVM_HEAD_ConstInt(OPND, PC)} ++IP;
#define EVM_TAIL_ConstFloat(OPND, PC) {EVM_HEAD_ConstFloat(OPND, PC)} ++IP;
#define EVM_TAIL_Pop(OPND, PC) {EVM_HEAD_Pop(OPND, PC)} ++IP;
#define EVM_TAIL_Dup(OPND, PC) {EVM_HEAD_Dup(OPND, PC)} ++IP;
#define EVM_TAIL_Swap(OPND, PC) {EVM_HEAD_Swap(OPND, PC)} ++IP;
#define EVM_TAIL_LoadLocal(OPND, PC) {EVM_HEAD_LoadLocal(OPND, PC)} ++IP;
#define EVM_TAIL_StoreLocal(OPND, PC) {EVM_HEAD_StoreLocal(OPND, PC)} ++IP;
#define EVM_TAIL_Nop(OPND, PC) {EVM_HEAD_Nop(OPND, PC)} ++IP;
#define EVM_TAIL_Add(OPND, PC) {EVM_HEAD_Add(OPND, PC)} ++IP;
#define EVM_TAIL_Sub(OPND, PC) {EVM_HEAD_Sub(OPND, PC)} ++IP;
#define EVM_TAIL_Mul(OPND, PC) {EVM_HEAD_Mul(OPND, PC)} ++IP;
#define EVM_TAIL_Div(OPND, PC) {EVM_HEAD_Div(OPND, PC)} ++IP;
#define EVM_TAIL_Mod(OPND, PC) {EVM_HEAD_Mod(OPND, PC)} ++IP;
#define EVM_TAIL_And(OPND, PC) {EVM_HEAD_And(OPND, PC)} ++IP;
#define EVM_TAIL_Or(OPND, PC) {EVM_HEAD_Or(OPND, PC)} ++IP;
#define EVM_TAIL_Xor(OPND, PC) {EVM_HEAD_Xor(OPND, PC)} ++IP;
#define EVM_TAIL_Shl(OPND, PC) {EVM_HEAD_Shl(OPND, PC)} ++IP;
#define EVM_TAIL_Shr(OPND, PC) {EVM_HEAD_Shr(OPND, PC)} ++IP;
#define EVM_TAIL_Eq(OPND, PC) {EVM_HEAD_Eq(OPND, PC)} ++IP;
#define EVM_TAIL_Ne(OPND, PC) {EVM_HEAD_Ne(OPND, PC)} ++IP;
#define EVM_TAIL_Lt(OPND, PC) {EVM_HEAD_Lt(OPND, PC)} ++IP;
#define EVM_TAIL_Le(OPND, PC) {EVM_HEAD_Le(OPND, PC)} ++IP;
#define EVM_TAIL_Gt(OPND, PC) {EVM_HEAD_Gt(OPND, PC)} ++IP;
#define EVM_TAIL_Ge(OPND, PC) {EVM_HEAD_Ge(OPND, PC)} ++IP;
#define EVM_TAIL_Min(OPND, PC) {EVM_HEAD_Min(OPND, PC)} ++IP;
#define EVM_TAIL_Max(OPND, PC) {EVM_HEAD_Max(OPND, PC)} ++IP;
#define EVM_TAIL_Neg(OPND, PC) {EVM_HEAD_Neg(OPND, PC)} ++IP;
#define EVM_TAIL_Not(OPND, PC) {EVM_HEAD_Not(OPND, PC)} ++IP;
#define EVM_TAIL_I2F(OPND, PC) {EVM_HEAD_I2F(OPND, PC)} ++IP;
#define EVM_TAIL_F2I(OPND, PC) {EVM_HEAD_F2I(OPND, PC)} ++IP;
#define EVM_TAIL_Sqrt(OPND, PC) {EVM_HEAD_Sqrt(OPND, PC)} ++IP;
#define EVM_TAIL_Sin(OPND, PC) {EVM_HEAD_Sin(OPND, PC)} ++IP;
#define EVM_TAIL_Cos(OPND, PC) {EVM_HEAD_Cos(OPND, PC)} ++IP;
#define EVM_TAIL_Floor(OPND, PC) {EVM_HEAD_Floor(OPND, PC)} ++IP;
#define EVM_TAIL_Abs(OPND, PC) {EVM_HEAD_Abs(OPND, PC)} ++IP;
#define EVM_TAIL_NewArr(OPND, PC) {EVM_HEAD_NewArr(OPND, PC)} ++IP;
#define EVM_TAIL_HLoad(OPND, PC) {EVM_HEAD_HLoad(OPND, PC)} ++IP;
#define EVM_TAIL_HStore(OPND, PC) {EVM_HEAD_HStore(OPND, PC)} ++IP;
#define EVM_TAIL_Call(OPND, PC) {EVM_HEAD_Call(OPND, PC)} ++IP;

// One handler per opcode: pending-trap check (folded into EVM_NEXT),
// charge, body, advance — the switch loop's sequence verbatim.
#define EVM_SINGLE_HANDLER(NAME)                                               \
  EVM_CASE(NAME) {                                                             \
    const DecodedInstr &DI = *IP;                                              \
    charge(DI.Charge);                                                         \
    ++DStats.Instrs;                                                           \
    EVM_TAIL_##NAME(DI.Operand, DI.OrigPc)                                     \
    EVM_NEXT;                                                                  \
  }

// One handler per fused pair.  The constituents charge separately with a
// pending-trap check between them — the exact switch-mode sequence for the
// two instructions — so fusion is invisible to every virtual observable.
#define EVM_FUSED_HANDLER(A, B)                                                \
  EVM_PAIR_CASE(A, B) {                                                        \
    const DecodedInstr &DI = *IP;                                              \
    charge(DI.Charge);                                                         \
    ++DStats.Instrs;                                                           \
    {EVM_HEAD_##A(DI.Operand, DI.OrigPc)}                                      \
    if (PendingTrap != TrapKind::None)                                         \
      return std::nullopt;                                                     \
    charge(DI.Charge2);                                                        \
    ++DStats.Instrs;                                                           \
    ++DStats.FusedExecs;                                                       \
    ++DStats.PairExecs[HPE_##A##_##B];                                         \
    EVM_TAIL_##B(DI.Operand2, DI.OrigPc + 1)                                   \
    EVM_NEXT;                                                                  \
  }

std::optional<Value>
ExecutionEngine::interpretDecoded(MethodId Id, const std::vector<Value> &Args,
                                  int Depth) {
  const bc::Function &F = M.function(Id);
  assert(Args.size() == F.NumParams && "arity mismatch");
  assert(Id < Decoded.size() && "module not decoded (Switch mode?)");
  const DecodedFunction &DF = Decoded[Id];

  PROF_SCOPE("interp");
  charge(TM.InterpCallOverhead);
  std::vector<Value> Locals(F.NumLocals, Value::makeInt(0));
  for (size_t K = 0; K != Args.size(); ++K)
    Locals[K] = Args[K];
  std::vector<Value> Stack;
  Stack.reserve(16);

  const DecodedInstr *const Base = DF.Code.data();
  const DecodedInstr *IP = Base;

#if EVM_USE_CGOTO
  static const void *const Handlers[] = {
#define EVM_LABEL_ADDR(NAME) &&H_##NAME,
      EVM_FOR_EACH_OPCODE(EVM_LABEL_ADDR)
#undef EVM_LABEL_ADDR
#define EVM_PAIR_LABEL_ADDR(A, B) &&H_##A##_##B,
      EVM_SUPERINST_PAIRS(EVM_PAIR_LABEL_ADDR)
#undef EVM_PAIR_LABEL_ADDR
  };
  static_assert(sizeof(Handlers) / sizeof(Handlers[0]) ==
                    bc::NumOpcodes + NumSuperinstPairs,
                "handler table out of sync");

#define EVM_CASE(NAME) H_##NAME:
#define EVM_PAIR_CASE(A, B) H_##A##_##B:
#define EVM_NEXT                                                               \
  do {                                                                         \
    if (PendingTrap != TrapKind::None)                                         \
      return std::nullopt;                                                     \
    goto *Handlers[IP->Handler];                                               \
  } while (0)

  EVM_NEXT;
  EVM_FOR_EACH_OPCODE(EVM_SINGLE_HANDLER)
  EVM_SUPERINST_PAIRS(EVM_FUSED_HANDLER)

#else // !EVM_USE_CGOTO: same decoded stream through a dense switch

#define EVM_CASE(NAME) case static_cast<uint16_t>(Opcode::NAME):
#define EVM_PAIR_CASE(A, B)                                                    \
  case static_cast<uint16_t>(bc::NumOpcodes + HPE_##A##_##B):
#define EVM_NEXT break

  while (true) {
    if (PendingTrap != TrapKind::None)
      return std::nullopt;
    switch (IP->Handler) {
      EVM_FOR_EACH_OPCODE(EVM_SINGLE_HANDLER)
      EVM_SUPERINST_PAIRS(EVM_FUSED_HANDLER)
    default:
      assert(false && "unknown decoded handler");
      return std::nullopt;
    }
  }
#endif
}

#undef EVM_CASE
#undef EVM_PAIR_CASE
#undef EVM_NEXT
#undef EVM_SINGLE_HANDLER
#undef EVM_FUSED_HANDLER

std::optional<Value> ExecutionEngine::executeCompiled(
    MethodId Id, const jit::CompiledFunction &Code,
    const std::vector<Value> &Args, int Depth) {
  const jit::IRFunction &F = Code.IR;
  assert(Args.size() == F.NumParams && "arity mismatch");

  ScopedPhase TierScope(jitExecPhase(Code.Level));
  charge(TM.CompiledCallOverhead);
  std::vector<Value> Regs(F.NumRegs, Value::makeInt(0));
  for (size_t K = 0; K != Args.size(); ++K)
    Regs[K] = Args[K];

  jit::BlockId Block = 0;
  size_t K = 0;
  while (true) {
    if (PendingTrap != TrapKind::None)
      return std::nullopt;
    const jit::IRInstr &I = F.Blocks[Block].Instrs[K];
    charge(TM.CompiledDispatchCycles + irInstrCost(I));

    switch (I.Op) {
    case jit::IROp::MovImm:
      Regs[I.Dest] = I.Imm;
      ++K;
      break;
    case jit::IROp::Mov:
      Regs[I.Dest] = Regs[I.A];
      ++K;
      break;
    case jit::IROp::Binary: {
      TrapKind Trap = TrapKind::None;
      auto R = evalBinary(I.ScalarOp, Regs[I.A], Regs[I.B], Trap);
      if (!R) {
        setTrap(Trap, Id, Block);
        return std::nullopt;
      }
      Regs[I.Dest] = *R;
      ++K;
      break;
    }
    case jit::IROp::Unary: {
      TrapKind Trap = TrapKind::None;
      auto R = evalUnary(I.ScalarOp, Regs[I.A], Trap);
      if (!R) {
        setTrap(Trap, Id, Block);
        return std::nullopt;
      }
      Regs[I.Dest] = *R;
      ++K;
      break;
    }
    case jit::IROp::Call: {
      std::vector<Value> CallArgs;
      CallArgs.reserve(I.Args.size());
      for (jit::Reg R : I.Args)
        CallArgs.push_back(Regs[R]);
      std::optional<Value> R = invoke(I.Callee, CallArgs, Depth + 1);
      if (!R)
        return std::nullopt;
      Regs[I.Dest] = *R;
      ++K;
      break;
    }
    case jit::IROp::NewArr: {
      TrapKind Trap = TrapKind::None;
      int64_t Count = Regs[I.A].isInt()
                          ? Regs[I.A].asInt()
                          : static_cast<int64_t>(Regs[I.A].toDouble());
      auto Base = TheHeap.alloc(Count, Trap);
      if (!Base) {
        setTrap(Trap, Id, Block);
        return std::nullopt;
      }
      Regs[I.Dest] = Value::makeInt(*Base);
      ++K;
      break;
    }
    case jit::IROp::HLoad: {
      TrapKind Trap = TrapKind::None;
      int64_t Addr = Regs[I.A].isInt()
                         ? Regs[I.A].asInt()
                         : static_cast<int64_t>(Regs[I.A].toDouble());
      auto Loaded = TheHeap.load(Addr, Trap);
      if (!Loaded) {
        setTrap(Trap, Id, Block);
        return std::nullopt;
      }
      Regs[I.Dest] = *Loaded;
      ++K;
      break;
    }
    case jit::IROp::HStore: {
      TrapKind Trap = TrapKind::None;
      int64_t Addr = Regs[I.A].isInt()
                         ? Regs[I.A].asInt()
                         : static_cast<int64_t>(Regs[I.A].toDouble());
      if (!TheHeap.store(Addr, Regs[I.B], Trap)) {
        setTrap(Trap, Id, Block);
        return std::nullopt;
      }
      ++K;
      break;
    }
    case jit::IROp::Jump:
      Block = I.Target;
      K = 0;
      break;
    case jit::IROp::CondJump:
      Block = Regs[I.A].isTruthy() ? I.Target : I.Target2;
      K = 0;
      break;
    case jit::IROp::Ret:
      return Regs[I.A];
    }
  }
}

ErrorOr<RunResult> ExecutionEngine::run(const std::vector<Value> &Args,
                                        uint64_t MaxCyclesIn,
                                        uint64_t PreRunOverheadCycles,
                                        uint64_t SamplePhaseCycles) {
  // Reset per-run state so one engine can model repeated launches.
  TheHeap.reset();
  Methods.assign(M.numFunctions(), MethodState());
  for (size_t Id = 0; Id != CodeOverrides.size(); ++Id) {
    if (!CodeOverrides[Id])
      continue;
    MethodState &State = Methods[Id];
    State.Code = CodeOverrides[Id];
    State.Level = CodeOverrides[Id]->Level;
    State.BaselineCompiled = true; // pinned code needs no baseline compile
    State.Stats.FinalLevel = State.Level;
  }
  CallStack.clear();
  Cycles = 0;
  CompileCycles = 0;
  OverheadCycles = 0;
  Invocations = 0;
  Compiles.clear();
  if (TM.NumCompileWorkers > 0 && !Workers) {
    Workers = std::make_unique<CompileWorkerPool>(M, TM);
    Workers->setTracer(Tracer);
  }
  if (Workers)
    Workers->reset(); // drain in-flight compiles, rewind virtual timelines
  NextSampleAt = TM.SampleIntervalCycles / 2 +
                 SamplePhaseCycles % std::max<uint64_t>(
                                         1, TM.SampleIntervalCycles);
  MaxCycles = MaxCyclesIn;
  PendingTrap = TrapKind::None;
  InSamplingHook = false;
  Prof = PhaseProfiler::current();
  // Everything charged to this run's clock lands under the "run" root; the
  // profiler accumulates across run()s of a persistent engine, so
  // totalUnder("run") tracks the sum of RunResult::Cycles.
  ScopedPhase RunScope("run");

  ++RunOrdinal;
  if (Tracer && Tracer->enabled()) {
    TraceEvent E;
    E.Kind = TraceEventKind::RunBegin;
    E.Cycle = 0;
    E.A = RunOrdinal;
    E.B = PreRunOverheadCycles;
    Tracer->record(E);
  }

  if (PreRunOverheadCycles) {
    // The evolvable VM refines this lump into xicl/ml shares post-run via
    // PhaseProfiler::attributeChild.
    PROF_SCOPE("overhead");
    chargeOverhead(PreRunOverheadCycles);
  }

  auto MainId = M.findFunction("main");
  if (!MainId)
    return makeError("module has no 'main' function");
  if (Args.size() != M.function(*MainId).NumParams)
    return makeError("main expects %u arguments, got %zu",
                     M.function(*MainId).NumParams, Args.size());

  std::optional<Value> Result = invoke(*MainId, Args, 0);
  if (!Result)
    return makeError("trap in method '%s' (%s)",
                     M.function(TrapMethod).Name.c_str(),
                     trapKindName(PendingTrap));

  RunResult Run;
  Run.ReturnValue = *Result;
  Run.Cycles = Cycles;
  Run.PerMethod.reserve(Methods.size());
  for (const MethodState &State : Methods)
    Run.PerMethod.push_back(State.Stats);
  Run.Compiles = Compiles;

  // Fold the run's accounting into the structured metrics snapshot.  Hot
  // counters accumulate in plain members during the run; only this one fold
  // per run touches the string-keyed registry.
  MetricsRegistry Reg;
  Reg.add("engine.cycles.total", Cycles);
  Reg.add("engine.cycles.stall_compile", CompileCycles);
  Reg.add("engine.cycles.overlapped_compile",
          Workers ? Workers->overlappedCycles() : 0);
  Reg.add("engine.cycles.overhead", OverheadCycles);
  Reg.add("engine.compiles.dropped", Workers ? Workers->droppedRequests() : 0);
  Reg.add("engine.compiles.total", Compiles.size());
  Reg.add("engine.invocations.total", Invocations);
  Reg.add("engine.samples.total", Run.totalSamples());
  for (const CompileEvent &CE : Compiles) {
    if (CE.Background) {
      Reg.add("engine.compiles.background");
      Reg.observe("engine.compile.install_delay_cycles",
                  static_cast<double>(CE.AtCycle - CE.RequestedAtCycle));
    }
    if (CE.Level != OptLevel::Baseline) {
      Reg.add("engine.compiles.optimizing");
      Reg.observe("engine.compile.cost_cycles",
                  static_cast<double>(CE.CostCycles));
    }
  }
  Run.Metrics = Reg.snapshot();
  if (Prof)
    Run.Phases = Prof->snapshot();

  if (Tracer && Tracer->enabled()) {
    TraceEvent E;
    E.Kind = TraceEventKind::RunEnd;
    E.Cycle = Cycles;
    E.A = RunOrdinal;
    E.B = Run.totalSamples();
    E.C = CompileCycles;
    Tracer->record(E);
  }
  return Run;
}
