//===- vm/Aos.h - The reactive adaptive optimization system ---------------==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AdaptivePolicy: the paper's "Default" scenario.  At every profiler sample
/// it assumes the method will run for as long as it already has (Jikes'
/// past-predicts-future heuristic) and consults the cost-benefit model for a
/// profitable recompilation.  This is the purely reactive baseline whose
/// delay and partial knowledge the evolvable VM removes.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_AOS_H
#define EVM_VM_AOS_H

#include "vm/CostBenefit.h"
#include "vm/Policy.h"

namespace evm {
namespace vm {

/// The default reactive policy (sampling + cost-benefit model).
class AdaptivePolicy : public CompilationPolicy {
public:
  explicit AdaptivePolicy(const TimingModel &TM) : TM(TM) {}

  std::optional<OptLevel>
  onSample(const MethodRuntimeInfo &Info) override {
    // Estimated remaining execution: as many cycles as observed so far.
    // With a background pipeline the engine reports the current worker
    // backlog so the model prices queue delay instead of a stall.
    uint64_t FutureCycles = Info.Samples * TM.SampleIntervalCycles;
    return chooseRecompileLevel(TM, Info.Level, FutureCycles,
                                Info.BytecodeSize,
                                Info.CompileBacklogCycles);
  }

private:
  TimingModel TM;
};

} // namespace vm
} // namespace evm

#endif // EVM_VM_AOS_H
