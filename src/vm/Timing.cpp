//===- vm/Timing.cpp ------------------------------------------------------==//

#include "vm/Timing.h"

using namespace evm;
using namespace evm::vm;
using bc::Opcode;

const char *vm::levelName(OptLevel L) {
  switch (L) {
  case OptLevel::Baseline:
    return "-1";
  case OptLevel::O0:
    return "0";
  case OptLevel::O1:
    return "1";
  case OptLevel::O2:
    return "2";
  }
  return "?";
}

uint64_t vm::scalarOpCost(Opcode Op) {
  switch (Op) {
  case Opcode::Mul:
    return 4;
  case Opcode::Div:
  case Opcode::Mod:
    return 12;
  case Opcode::Sqrt:
  case Opcode::Sin:
  case Opcode::Cos:
    return 14;
  case Opcode::NewArr:
    return 20;
  case Opcode::HLoad:
  case Opcode::HStore:
    return 3;
  default:
    return 1; // adds, compares, moves, logic, conversions
  }
}
