//===- vm/Dispatch.h - Interpreter dispatch-mode selection ----------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Selects how ExecutionEngine::interpret walks bytecode.  All three modes
/// issue the identical sequence of virtual-clock charge() calls, so every
/// virtual observable — RunResult bytes, traces, profiles, policy
/// decisions — is bit-identical across modes; only host wall-clock differs
/// (pinned by tests/test_dispatch.cpp and the differential fuzzer's
/// dispatch axis):
///
///   Switch    the original one-switch-per-instruction loop, kept verbatim
///             as the semantic reference.
///   Threaded  a predecoded instruction stream (per-instruction charges and
///             branch targets resolved at decode time) driven by
///             computed-goto threading where the compiler supports GNU
///             label-values, and by a dense switch over decoded handlers
///             otherwise (the `EVM_THREADED_DISPATCH=OFF` fallback build).
///   Fused     Threaded plus superinstruction fusion: hot adjacent opcode
///             pairs (vm/Superinst.h) execute as one combined handler that
///             charges each constituent separately.
///
/// The mode is process-wide: engines are constructed deep inside scenarios,
/// fleets and the serving daemon, so a global (env `EVM_DISPATCH`, or
/// `setProcessDispatchMode`, e.g. from evm_cli --dispatch=MODE) reaches
/// every engine without threading a parameter through each layer.  Engines
/// read it once at construction.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_DISPATCH_H
#define EVM_VM_DISPATCH_H

#include <optional>
#include <string_view>

/// Compile-time gate (cmake -DEVM_THREADED_DISPATCH=OFF): with it off, the
/// Threaded/Fused modes run the decoded stream through a portable switch
/// instead of computed goto.  Decoding, fusion, and all virtual-clock
/// behavior are unchanged — only the jump strategy differs.
#ifndef EVM_THREADED_DISPATCH
#define EVM_THREADED_DISPATCH 1
#endif

namespace evm {
namespace vm {

enum class DispatchMode : uint8_t {
  Switch,   ///< reference interpreter, undecoded
  Threaded, ///< decoded stream, no fusion
  Fused,    ///< decoded stream with superinstruction fusion (default)
};

/// Stable wire name ("switch" | "threaded" | "fused").
const char *dispatchModeName(DispatchMode Mode);

/// Inverse of dispatchModeName; nullopt for unknown names.
std::optional<DispatchMode> parseDispatchMode(std::string_view Name);

/// True when the build uses computed-goto threading for the decoded modes
/// (EVM_THREADED_DISPATCH=ON and the compiler supports label-values).
bool threadedDispatchCompiledIn();

/// The process-wide mode new engines adopt.  First read consults the
/// EVM_DISPATCH environment variable ("switch" | "threaded" | "fused";
/// unset or unknown values mean Fused — safe because fusion is pinned
/// cycle-identical).
DispatchMode processDispatchMode();

/// Overrides the process-wide mode for engines constructed afterwards.
void setProcessDispatchMode(DispatchMode Mode);

} // namespace vm
} // namespace evm

#endif // EVM_VM_DISPATCH_H
