//===- vm/CostBenefit.h - Jikes-style recompilation economics ------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cost-benefit arithmetic shared by all three strategies the paper
/// compares: the reactive adaptive system queries it at sample time with
/// past-predicts-future estimates; the posterior ideal-strategy computation
/// queries it with the full-run profile; the Rep repository queries it with
/// history-averaged profiles.  Keeping one implementation mirrors the paper,
/// where all consumers use "the default cost-benefit model in Jikes RVM".
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_COSTBENEFIT_H
#define EVM_VM_COSTBENEFIT_H

#include "vm/Timing.h"

#include <cstdint>
#include <optional>

namespace evm {
namespace vm {

/// The numbers behind one chooseRecompileLevel decision, for tracing: the
/// estimated bills the model compared.
struct RecompileEval {
  double StayCost = 0; ///< estimated cycles if the method stays put
  double BestCost = 0; ///< estimated total for the chosen level (== StayCost
                       ///< when no level beat staying)
};

/// Sample-time decision: given a method running at \p Current with an
/// estimated \p FutureCycles of remaining execution (Jikes' assumption:
/// it will run as long as it already has), returns the level whose
/// recompile-cost-plus-faster-execution beats staying put, or nullopt.
///
/// The pricing depends on the compilation pipeline:
///   * Synchronous (TM.NumCompileWorkers == 0): the compile stalls the
///     application, so the full compile cost is added to the bill.
///   * Background (>= 1): compilation overlaps with execution; the bill is
///     instead the *delay* — queue handoff (TM.CompileQueueDelayCycles),
///     the current worker backlog (\p QueueBacklogCycles), and the compile
///     itself — during which the method keeps running at \p Current speed.
///
/// When \p Eval is non-null it receives the compared estimates (for the
/// costbenefit.eval trace event).
std::optional<OptLevel> chooseRecompileLevel(const TimingModel &TM,
                                             OptLevel Current,
                                             uint64_t FutureCycles,
                                             size_t BytecodeSize,
                                             uint64_t QueueBacklogCycles = 0,
                                             RecompileEval *Eval = nullptr);

/// Posterior decision: given a method's whole-run baseline-equivalent
/// execution cycles, the level that minimizes total cost (compile time plus
/// execution time) had it been chosen right after baseline compilation.
/// This is the paper's "ideal strategy" for one method.
OptLevel idealLevelForMethod(const TimingModel &TM,
                             double BaselineEquivalentCycles,
                             size_t BytecodeSize);

} // namespace vm
} // namespace evm

#endif // EVM_VM_COSTBENEFIT_H
