//===- vm/Dispatch.cpp ----------------------------------------------------===//

#include "vm/Dispatch.h"

#include <atomic>
#include <cstdlib>

using namespace evm;
using namespace evm::vm;

const char *evm::vm::dispatchModeName(DispatchMode Mode) {
  switch (Mode) {
  case DispatchMode::Switch:
    return "switch";
  case DispatchMode::Threaded:
    return "threaded";
  case DispatchMode::Fused:
    return "fused";
  }
  return "fused";
}

std::optional<DispatchMode> evm::vm::parseDispatchMode(std::string_view Name) {
  if (Name == "switch")
    return DispatchMode::Switch;
  if (Name == "threaded")
    return DispatchMode::Threaded;
  if (Name == "fused")
    return DispatchMode::Fused;
  return std::nullopt;
}

bool evm::vm::threadedDispatchCompiledIn() {
#if EVM_THREADED_DISPATCH && (defined(__GNUC__) || defined(__clang__))
  return true;
#else
  return false;
#endif
}

namespace {

DispatchMode initialMode() {
  if (const char *Env = std::getenv("EVM_DISPATCH"))
    if (std::optional<DispatchMode> M = parseDispatchMode(Env))
      return *M;
  return DispatchMode::Fused;
}

std::atomic<DispatchMode> &processMode() {
  static std::atomic<DispatchMode> Mode{initialMode()};
  return Mode;
}

} // namespace

DispatchMode evm::vm::processDispatchMode() {
  return processMode().load(std::memory_order_relaxed);
}

void evm::vm::setProcessDispatchMode(DispatchMode Mode) {
  processMode().store(Mode, std::memory_order_relaxed);
}
