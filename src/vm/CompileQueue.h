//===- vm/CompileQueue.h - Bounded MPSC compile-request queue -------------===//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The handoff structure between the execution thread and the background
/// compile workers: a multi-producer/single-consumer request queue plus a
/// completed-result mailbox keyed by request sequence number.
///
/// Only *host-thread* scheduling flows through this class.  All virtual-clock
/// accounting (which virtual worker takes a request, when the code becomes
/// installable) is computed deterministically on the execution thread by
/// CompileWorkerPool before the request is pushed, so run results are
/// bit-identical regardless of how the OS schedules the real threads.  For
/// the same reason the host queue is unbounded: the pipeline's capacity
/// bound is enforced by CompileWorkerPool against its *virtual* in-flight
/// set, never against host occupancy (which real-thread progress decides).
///
//===----------------------------------------------------------------------===//

#ifndef EVM_VM_COMPILEQUEUE_H
#define EVM_VM_COMPILEQUEUE_H

#include "bytecode/Module.h"
#include "vm/Timing.h"
#include "vm/jit/Compiler.h"

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

namespace evm {
namespace vm {

/// One background compilation request.  The virtual-timeline fields are
/// filled in by CompileWorkerPool at enqueue time, on the execution thread.
struct CompileRequest {
  bc::MethodId Method = 0;
  OptLevel Level = OptLevel::O0;
  uint64_t SeqNo = 0;        ///< enqueue order; deterministic install tiebreak
  uint64_t RequestCycle = 0; ///< virtual cycle the request was issued
  uint64_t StartCycle = 0;   ///< virtual cycle the assigned worker begins
  uint64_t ReadyAtCycle = 0; ///< virtual cycle the code becomes installable
  uint64_t CostCycles = 0;   ///< modeled compile cost (worker-timeline time)
  unsigned Worker = 0;       ///< virtual worker index
};

/// A finished background compilation: the request plus the compiled code.
struct CompileResult {
  CompileRequest Request;
  std::shared_ptr<const jit::CompiledFunction> Code;
};

/// MPSC queue of compile requests, with a mailbox for finished results.
/// Producers are execution threads (push), consumers of work are the
/// pool's worker threads (pop), and the single result consumer is the
/// execution thread (takeResult).
class CompileQueue {
public:
  CompileQueue() = default;

  /// Enqueues a request.  Never fails: admission control happens in
  /// CompileWorkerPool::request against deterministic virtual state.
  void push(CompileRequest R);

  /// Blocks until a request is available or shutdown() is called; nullopt
  /// means the worker should exit.
  std::optional<CompileRequest> pop();

  /// Posts a finished compilation to the mailbox (worker threads).
  void postResult(CompileResult R);

  /// Blocks until the result for \p SeqNo is in the mailbox, removes it,
  /// and returns it.  Called only from the execution thread.
  CompileResult takeResult(uint64_t SeqNo);

  /// Blocks until every request pushed so far has been compiled and
  /// posted, then discards all mailbox entries.  Used between runs.
  void drainAndDiscard();

  /// Wakes all workers and makes pop() return nullopt from now on.
  void shutdown();

private:
  mutable std::mutex Mutex;
  std::condition_variable WorkAvailable;  ///< signaled on push/shutdown
  std::condition_variable ResultPosted;   ///< signaled on postResult
  std::deque<CompileRequest> Requests;
  std::deque<CompileResult> Results;
  uint64_t PushedCount = 0;   ///< requests ever pushed
  uint64_t FinishedCount = 0; ///< results ever posted
  bool ShuttingDown = false;
};

} // namespace vm
} // namespace evm

#endif // EVM_VM_COMPILEQUEUE_H
