//===- vm/CompileQueue.cpp ------------------------------------------------==//

#include "vm/CompileQueue.h"

#include <algorithm>

using namespace evm;
using namespace evm::vm;

void CompileQueue::push(CompileRequest R) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Requests.push_back(std::move(R));
    ++PushedCount;
  }
  WorkAvailable.notify_one();
}

std::optional<CompileRequest> CompileQueue::pop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  WorkAvailable.wait(Lock,
                     [this] { return ShuttingDown || !Requests.empty(); });
  if (Requests.empty())
    return std::nullopt; // shutdown with no work left
  CompileRequest R = std::move(Requests.front());
  Requests.pop_front();
  return R;
}

void CompileQueue::postResult(CompileResult R) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Results.push_back(std::move(R));
    ++FinishedCount;
  }
  ResultPosted.notify_all();
}

CompileResult CompileQueue::takeResult(uint64_t SeqNo) {
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    auto It = std::find_if(Results.begin(), Results.end(),
                           [SeqNo](const CompileResult &R) {
                             return R.Request.SeqNo == SeqNo;
                           });
    if (It != Results.end()) {
      CompileResult R = std::move(*It);
      Results.erase(It);
      return R;
    }
    ResultPosted.wait(Lock);
  }
}

void CompileQueue::drainAndDiscard() {
  std::unique_lock<std::mutex> Lock(Mutex);
  ResultPosted.wait(Lock, [this] { return FinishedCount == PushedCount; });
  Results.clear();
}

void CompileQueue::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
}
