//===- tests/test_workloads.cpp - Benchmark analogue validation -----------==//
//
// Every workload must verify, run trap-free on all of its inputs (spot
// checked), scale its run time with its size feature, and shift its hot-
// method mix with its mode options — the properties the paper's learning
// pipeline depends on.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "bytecode/Verifier.h"
#include "vm/AOS.h"
#include "vm/Engine.h"
#include "xicl/Spec.h"
#include "xicl/Translator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

using namespace evm;
using namespace evm::wl;

namespace {

constexpr uint64_t Seed = 20090301;

vm::RunResult runInput(const Workload &W, const InputCase &Input) {
  vm::TimingModel TM;
  vm::AdaptivePolicy Policy(TM);
  vm::ExecutionEngine Engine(W.Module, TM, &Policy);
  auto R = Engine.run(Input.VmArgs, 60ULL << 30);
  EXPECT_TRUE(static_cast<bool>(R)) << W.Name << ": "
                                    << (R ? "" : R.getError().message());
  return R ? R.takeValue() : vm::RunResult();
}

} // namespace

class WorkloadSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSuite, ModuleVerifies) {
  Workload W = buildWorkload(GetParam(), Seed);
  EXPECT_TRUE(bc::verifyModule(W.Module).message().empty())
      << bc::verifyModule(W.Module).message();
  EXPECT_GE(W.Module.numFunctions(), 3u);
}

TEST_P(WorkloadSuite, InputSetNonEmptyAndDeterministic) {
  Workload A = buildWorkload(GetParam(), Seed);
  Workload B = buildWorkload(GetParam(), Seed);
  ASSERT_FALSE(A.Inputs.empty());
  ASSERT_EQ(A.Inputs.size(), B.Inputs.size());
  for (size_t I = 0; I != A.Inputs.size(); ++I)
    EXPECT_EQ(A.Inputs[I].CommandLine, B.Inputs[I].CommandLine);
}

TEST_P(WorkloadSuite, SpecParsesAndTranslatesEveryInput) {
  Workload W = buildWorkload(GetParam(), Seed);
  auto Spec = xicl::parseSpec(W.XiclSpec);
  ASSERT_TRUE(static_cast<bool>(Spec)) << Spec.getError().message();
  xicl::XFMethodRegistry Registry;
  W.registerMethods(Registry);
  xicl::FileStore Files;
  W.populateFileStore(Files);
  xicl::XICLTranslator T(Spec.takeValue(), &Registry, &Files);
  for (const InputCase &Input : W.Inputs) {
    auto FV = T.buildFVector(Input.CommandLine);
    ASSERT_TRUE(static_cast<bool>(FV))
        << Input.CommandLine << ": " << FV.getError().message();
    EXPECT_GT(FV->size(), 0u);
  }
}

TEST_P(WorkloadSuite, RunsTrapFreeOnSampledInputs) {
  Workload W = buildWorkload(GetParam(), Seed);
  // First, middle, last input (full sweeps live in the benches).
  for (size_t I : {size_t{0}, W.Inputs.size() / 2, W.Inputs.size() - 1}) {
    vm::RunResult R = runInput(W, W.Inputs[I]);
    EXPECT_GT(R.Cycles, 0u) << W.Name << " input " << I;
  }
}

TEST_P(WorkloadSuite, DeterministicAcrossEngines) {
  Workload W = buildWorkload(GetParam(), Seed);
  vm::RunResult R1 = runInput(W, W.Inputs[0]);
  vm::RunResult R2 = runInput(W, W.Inputs[0]);
  EXPECT_TRUE(R1.ReturnValue.equals(R2.ReturnValue));
  EXPECT_EQ(R1.Cycles, R2.Cycles);
}

TEST_P(WorkloadSuite, HotMethodsAreReinvoked) {
  // Recompilation only pays off for methods invoked repeatedly; every
  // workload must have at least one method with many invocations.
  Workload W = buildWorkload(GetParam(), Seed);
  vm::RunResult R = runInput(W, W.Inputs[W.Inputs.size() / 2]);
  uint64_t MaxInvocations = 0;
  for (const vm::MethodStats &S : R.PerMethod)
    MaxInvocations = std::max(MaxInvocations, S.Invocations);
  EXPECT_GE(MaxInvocations, 10u) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSuite,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &Info) { return Info.param; });

//===----------------------------------------------------------------------===//
// Registry-level checks
//===----------------------------------------------------------------------===//

TEST(WorkloadRegistryTest, ElevenPaperBenchmarks) {
  EXPECT_EQ(workloadNames().size(), 11u);
  auto All = buildAllWorkloads(Seed);
  EXPECT_EQ(All.size(), 11u);
  EXPECT_EQ(All[0].Name, "Compress");
  EXPECT_EQ(All[10].Name, "RayTracer");
}

TEST(WorkloadRegistryTest, TableISuitesAndInputCounts) {
  auto All = buildAllWorkloads(Seed);
  std::map<std::string, std::string> Suites;
  std::map<std::string, size_t> Counts;
  for (const Workload &W : All) {
    Suites[W.Name] = W.Suite;
    Counts[W.Name] = W.Inputs.size();
  }
  EXPECT_EQ(Suites["Compress"], "jvm98");
  EXPECT_EQ(Suites["Antlr"], "dacapo");
  EXPECT_EQ(Suites["MolDyn"], "grande");
  // Table I input-set sizes.
  EXPECT_EQ(Counts["Compress"], 76u);
  EXPECT_EQ(Counts["Db"], 60u);
  EXPECT_EQ(Counts["Mtrt"], 92u);
  EXPECT_EQ(Counts["Search"], 6u);
}

//===----------------------------------------------------------------------===//
// Input sensitivity of specific workloads
//===----------------------------------------------------------------------===//

TEST(WorkloadSensitivityTest, CompressTimeScalesWithFileSize) {
  Workload W = buildWorkload("Compress", Seed);
  // Find a small and a large input by declared file size.
  size_t Small = 0, Large = 0;
  for (size_t I = 0; I != W.Inputs.size(); ++I) {
    if (W.Inputs[I].VmArgs[0].asInt() < W.Inputs[Small].VmArgs[0].asInt())
      Small = I;
    if (W.Inputs[I].VmArgs[0].asInt() > W.Inputs[Large].VmArgs[0].asInt())
      Large = I;
  }
  uint64_t SmallCycles = runInput(W, W.Inputs[Small]).Cycles;
  uint64_t LargeCycles = runInput(W, W.Inputs[Large]).Cycles;
  EXPECT_GT(LargeCycles, SmallCycles * 5);
}

TEST(WorkloadSensitivityTest, MtrtModeSelectsHotMethods) {
  Workload W = buildWorkload("Mtrt", Seed);
  auto AaId = W.Module.findFunction("samplePixel");
  auto ReflectId = W.Module.findFunction("reflect");
  ASSERT_TRUE(AaId.has_value());
  ASSERT_TRUE(ReflectId.has_value());

  // depth=1, aa=0: neither extra kernel runs.
  InputCase Plain;
  Plain.VmArgs = {bc::Value::makeInt(80), bc::Value::makeInt(80),
                  bc::Value::makeInt(1), bc::Value::makeInt(0),
                  bc::Value::makeInt(8)};
  // depth=3, aa=2: both run per pixel.
  InputCase Fancy = Plain;
  Fancy.VmArgs[2] = bc::Value::makeInt(3);
  Fancy.VmArgs[3] = bc::Value::makeInt(2);

  vm::RunResult RPlain = runInput(W, Plain);
  vm::RunResult RFancy = runInput(W, Fancy);
  EXPECT_EQ(RPlain.PerMethod[*AaId].Invocations, 0u);
  EXPECT_EQ(RPlain.PerMethod[*ReflectId].Invocations, 0u);
  EXPECT_GT(RFancy.PerMethod[*AaId].Invocations, 1000u);
  EXPECT_GT(RFancy.PerMethod[*ReflectId].Invocations, 1000u);
}

TEST(WorkloadSensitivityTest, BloatOperationSelectsKernel) {
  Workload W = buildWorkload("Bloat", Seed);
  auto OptId = W.Module.findFunction("optimizeMethod");
  auto InlineId = W.Module.findFunction("inlineExpand");
  ASSERT_TRUE(OptId.has_value());
  ASSERT_TRUE(InlineId.has_value());
  InputCase OpOpt;
  OpOpt.VmArgs = {bc::Value::makeInt(3000), bc::Value::makeInt(0)};
  InputCase OpInline;
  OpInline.VmArgs = {bc::Value::makeInt(3000), bc::Value::makeInt(1)};
  vm::RunResult ROpt = runInput(W, OpOpt);
  vm::RunResult RInline = runInput(W, OpInline);
  EXPECT_GT(ROpt.PerMethod[*OptId].Invocations, 0u);
  EXPECT_EQ(ROpt.PerMethod[*InlineId].Invocations, 0u);
  EXPECT_EQ(RInline.PerMethod[*OptId].Invocations, 0u);
  EXPECT_GT(RInline.PerMethod[*InlineId].Invocations, 0u);
}

TEST(WorkloadSensitivityTest, RunTimesSpanPaperRange) {
  // Across all workloads, default run times should span roughly the
  // paper's 1-26 s (we accept a generous 0.05-40 s envelope).
  vm::TimingModel TM;
  double MinSec = 1e30, MaxSec = 0;
  for (const std::string &Name : workloadNames()) {
    Workload W = buildWorkload(Name, Seed);
    vm::RunResult R = runInput(W, W.Inputs[W.Inputs.size() / 2]);
    double Sec = TM.toSeconds(R.Cycles);
    MinSec = std::min(MinSec, Sec);
    MaxSec = std::max(MaxSec, Sec);
  }
  EXPECT_GT(MaxSec, 0.5);
  EXPECT_LT(MaxSec, 60.0);
  EXPECT_GT(MinSec, 0.005);
}

//===----------------------------------------------------------------------===//
// The route example
//===----------------------------------------------------------------------===//

TEST(RouteExampleTest, BuildsVerifiesAndRuns) {
  Workload W = buildRouteExample(Seed, 10);
  EXPECT_TRUE(bc::verifyModule(W.Module).message().empty());
  EXPECT_EQ(W.Inputs.size(), 10u);
  vm::RunResult R = runInput(W, W.Inputs[0]);
  EXPECT_GT(R.Cycles, 0u);
}

TEST(RouteExampleTest, SpecMatchesPaperFigure2) {
  Workload W = buildRouteExample(Seed, 4);
  auto Spec = xicl::parseSpec(W.XiclSpec);
  ASSERT_TRUE(static_cast<bool>(Spec));
  ASSERT_EQ(Spec->Options.size(), 2u);
  EXPECT_EQ(Spec->Options[0].primaryName(), "-n");
  EXPECT_TRUE(Spec->Options[1].matches("--echo"));
  ASSERT_EQ(Spec->Operands.size(), 1u);
  EXPECT_EQ(Spec->Operands[0].PosEnd, -1);
  EXPECT_EQ(Spec->Operands[0].Attrs[0], "mnodes");
  EXPECT_EQ(Spec->Operands[0].Attrs[1], "medges");
}
