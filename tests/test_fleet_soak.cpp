//===- tests/test_fleet_soak.cpp - Fleet soak with checkpoint kills -------==//
//
// The FULL-label stress lane: a 64-tenant fleet checkpointing after every
// run (--merge-every 1) while a fault hook keeps cutting checkpoints short
// at pseudo-random record boundaries — the power-cut-during-save scenario
// at fleet scale.  The contract under test: no interrupted checkpoint ever
// turns a later warm start into a failure; once the faults stop, one clean
// launch leaves every shard and global store loading damage-free.
//
// Run selectively with `ctest -L FULL` (or exclude with -LE FULL in quick
// lanes); it is sized to stay tolerable inside the default suite too.
//
//===----------------------------------------------------------------------===//

#include "harness/Fleet.h"

#include "store/KnowledgeStore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>

#include <dirent.h>
#include <sys/stat.h>

using namespace evm;
using namespace evm::harness;

namespace {

constexpr size_t NumTenants = 64;

std::string soakDir() {
  std::string Dir = ::testing::TempDir() + "evm_fleet_soak";
  if (DIR *D = opendir(Dir.c_str())) {
    while (const dirent *E = readdir(D)) {
      std::string File = E->d_name;
      if (File != "." && File != "..")
        std::remove((Dir + "/" + File).c_str());
    }
    closedir(D);
  }
  mkdir(Dir.c_str(), 0777);
  return Dir;
}

FleetConfig soakFleet(const std::string &Dir) {
  FleetConfig FC;
  FC.NumTenants = NumTenants;
  FC.NumThreads = 4;
  FC.RunsPerTenant = 2;
  FC.MergeEvery = 1; // checkpoint after every run — maximum save traffic
  FC.Seed = 20090301;
  FC.ShardDir = Dir;
  FC.CapturePhases = false;
  return FC;
}

// The fault schedule.  A function pointer cannot capture state, so the
// kill decision lives in file-static atomics: every save increments the
// counter, and an LCG on it decides whether (and where) to cut.  The
// cross-thread counter order is nondeterministic — deliberately so; the
// invariant under test (recovery) must hold for *any* kill schedule.
std::atomic<uint64_t> SaveCounter{0};

int chaoticKillHook(const std::string &) {
  uint64_t N = SaveCounter.fetch_add(1) + 1;
  uint64_t H = N * 6364136223846793005ULL + 1442695040888963407ULL;
  if ((H >> 33) % 3 != 0)
    return -1; // two thirds of checkpoints land intact
  return static_cast<int>((H >> 40) % 24); // cut within the first records
}

} // namespace

TEST(FleetSoakTest, InterruptedCheckpointsAlwaysWarmStartCleanly) {
  std::string Dir = soakDir();
  FleetConfig FC = soakFleet(Dir);

  // Two fleet launches under fire.  Every tenant loads whatever survived
  // of its shard and the global store before each launch; a hard failure
  // anywhere (trap, I/O abort, gtest assertion inside the runner) fails
  // the test.
  store::setSaveKillHook(chaoticKillHook);
  for (int Launch = 0; Launch != 2; ++Launch) {
    FleetResult R = FleetRunner(FC).run();
    ASSERT_EQ(R.Tenants.size(), NumTenants) << "launch " << Launch;
    ASSERT_EQ(R.TotalRuns, NumTenants * FC.RunsPerTenant)
        << "launch " << Launch;
    for (const TenantResult &T : R.Tenants)
      EXPECT_EQ(T.Result.Runs.size(), FC.RunsPerTenant)
          << "launch " << Launch << " tenant " << T.TenantId;
  }
  EXPECT_GT(SaveCounter.load(), NumTenants * 2u) << "hook never fired?";

  // Whatever the kill schedule left behind must load without a hard error
  // right now (damage is fine — that is what recovery means).
  for (size_t I = 0; I != NumTenants; ++I) {
    store::KnowledgeStore KS;
    store::StoreReadStats Stats;
    EXPECT_NE(store::loadStoreFile(FleetRunner::shardPath(Dir, I), KS, Stats),
              store::LoadStatus::IoError)
        << "shard " << I;
  }

  // Faults off: one clean launch re-seeds every shard and rewrites the
  // global store; after it, every file in the directory is pristine.
  store::setSaveKillHook(nullptr);
  FleetResult Clean = FleetRunner(FC).run();
  EXPECT_EQ(Clean.ShardsMerged, NumTenants);
  for (size_t I = 0; I != NumTenants; ++I) {
    store::KnowledgeStore KS;
    store::StoreReadStats Stats;
    ASSERT_EQ(store::loadStoreFile(FleetRunner::shardPath(Dir, I), KS, Stats),
              store::LoadStatus::Loaded)
        << "shard " << I;
    EXPECT_TRUE(Stats.clean()) << "shard " << I;
  }
  store::KnowledgeStore Global;
  store::StoreReadStats GStats;
  ASSERT_EQ(store::loadStoreFile(FleetRunner::globalStorePath(Dir, "Route"),
                                 Global, GStats),
            store::LoadStatus::Loaded);
  EXPECT_TRUE(GStats.clean());
  EXPECT_GT(Global.Runs.size(), 0u);
}
