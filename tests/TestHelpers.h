//===- tests/TestHelpers.h - Shared fixtures for the test suite -----------==//

#ifndef EVM_TESTS_TESTHELPERS_H
#define EVM_TESTS_TESTHELPERS_H

#include "bytecode/Assembler.h"
#include "bytecode/Module.h"
#include "vm/Engine.h"

#include <gtest/gtest.h>

namespace evm {
namespace test {

/// Assembles \p Source, failing the test on a diagnostic.
inline bc::Module assemble(std::string_view Source) {
  auto M = bc::assembleModule(Source);
  EXPECT_TRUE(static_cast<bool>(M))
      << (M ? "" : M.getError().message());
  return M ? M.takeValue() : bc::Module();
}

/// Runs main(Args) without any recompilation policy; fails on traps.
inline bc::Value runProgram(const bc::Module &M,
                            std::vector<bc::Value> Args = {},
                            uint64_t MaxCycles = 500000000ULL) {
  vm::TimingModel TM;
  vm::ExecutionEngine Engine(M, TM, nullptr);
  auto R = Engine.run(Args, MaxCycles);
  EXPECT_TRUE(static_cast<bool>(R)) << (R ? "" : R.getError().message());
  return R ? R->ReturnValue : bc::Value();
}

/// Small corpus of semantically interesting programs used by the JIT
/// property suite: loops, calls, conditionals, heap traffic, floats,
/// recursion.  Each takes one integer parameter.
inline const std::vector<std::pair<const char *, const char *>> &
programCorpus() {
  static const std::vector<std::pair<const char *, const char *>> Corpus = {
      {"sum_loop", R"(
func main(1) locals 3
  const_i 0
  store_local 1
  const_i 0
  store_local 2
loop:
  load_local 2
  load_local 0
  lt
  br_false done
  load_local 1
  load_local 2
  add
  store_local 1
  load_local 2
  const_i 1
  add
  store_local 2
  br loop
done:
  load_local 1
  ret
end
)"},
      {"fib_recursive", R"(
func main(1) locals 1
  load_local 0
  call fib
  ret
end
func fib(1) locals 1
  load_local 0
  const_i 2
  lt
  br_false rec
  load_local 0
  ret
rec:
  load_local 0
  const_i 1
  sub
  call fib
  load_local 0
  const_i 2
  sub
  call fib
  add
  ret
end
)"},
      {"heap_fill_sum", R"(
func main(1) locals 4
  load_local 0
  newarr
  store_local 1
  const_i 0
  store_local 2
fill:
  load_local 2
  load_local 0
  lt
  br_false sum_init
  load_local 1
  load_local 2
  add
  load_local 2
  load_local 2
  mul
  hstore
  load_local 2
  const_i 1
  add
  store_local 2
  br fill
sum_init:
  const_i 0
  store_local 2
  const_i 0
  store_local 3
sum:
  load_local 2
  load_local 0
  lt
  br_false done
  load_local 3
  load_local 1
  load_local 2
  add
  hload
  add
  store_local 3
  load_local 2
  const_i 1
  add
  store_local 2
  br sum
done:
  load_local 3
  ret
end
)"},
      {"float_math", R"(
func main(1) locals 3
  const_i 0
  store_local 2
  const_f 0.0
  store_local 1
loop:
  load_local 2
  load_local 0
  lt
  br_false done
  load_local 1
  load_local 2
  const_f 0.1
  mul
  sin
  load_local 2
  const_i 1
  add
  sqrt
  mul
  add
  store_local 1
  load_local 2
  const_i 1
  add
  store_local 2
  br loop
done:
  load_local 1
  const_f 1000.0
  mul
  f2i
  ret
end
)"},
      {"branchy_mix", R"(
func main(1) locals 3
  const_i 0
  store_local 1
  const_i 0
  store_local 2
loop:
  load_local 2
  load_local 0
  lt
  br_false done
  load_local 2
  const_i 3
  mod
  br_true odd
  load_local 1
  load_local 2
  const_i 2
  mul
  add
  store_local 1
  br next
odd:
  load_local 1
  load_local 2
  const_i 7
  and
  sub
  store_local 1
next:
  load_local 2
  const_i 1
  add
  store_local 2
  br loop
done:
  load_local 1
  ret
end
)"},
      {"helper_calls", R"(
func main(1) locals 3
  const_i 0
  store_local 1
  const_i 0
  store_local 2
loop:
  load_local 2
  load_local 0
  lt
  br_false done
  load_local 1
  load_local 2
  call square_plus_one
  add
  store_local 1
  load_local 2
  const_i 1
  add
  store_local 2
  br loop
done:
  load_local 1
  ret
end
func square_plus_one(1) locals 1
  load_local 0
  load_local 0
  mul
  const_i 1
  add
  ret
end
)"},
      // Chunked driver: main is invoked once (so it stays at baseline — the
      // VM has no on-stack replacement) but the hot loop lives in a method
      // invoked once per chunk, the shape real workloads have.
      {"chunked_work", R"(
func main(1) locals 3
  const_i 0
  store_local 1
  const_i 0
  store_local 2
loop:
  load_local 2
  load_local 0
  lt
  br_false done
  load_local 1
  load_local 2
  call work
  add
  store_local 1
  load_local 2
  const_i 1
  add
  store_local 2
  br loop
done:
  load_local 1
  ret
end
func work(1) locals 4
  const_i 0
  store_local 1
  const_f 0.0
  store_local 2
inner:
  load_local 1
  const_i 200
  lt
  br_false out
  load_local 2
  load_local 0
  const_f 0.01
  mul
  sin
  load_local 1
  const_i 1
  add
  sqrt
  mul
  add
  store_local 2
  load_local 1
  const_i 1
  add
  store_local 1
  br inner
out:
  load_local 2
  const_f 100.0
  mul
  f2i
  ret
end
)"},
  };
  return Corpus;
}

} // namespace test
} // namespace evm

#endif // EVM_TESTS_TESTHELPERS_H
