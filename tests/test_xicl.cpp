//===- tests/test_xicl.cpp - XICL spec, translator, extensibility ---------==//

#include "xicl/RuntimeChannel.h"
#include "xicl/Spec.h"
#include "xicl/Translator.h"
#include "xicl/XFMethod.h"

#include <gtest/gtest.h>

using namespace evm;
using namespace evm::xicl;

namespace {

/// The paper's Fig. 2(b) specification.
const char *RouteSpec =
    "option {name=-n; type=num; attr=val; default=1; has_arg=y}\n"
    "option {name=-e:--echo; type=bin; attr=val; default=0; has_arg=n}\n"
    "operand {position=1:$; type=file; attr=mnodes:medges}\n";

/// Registry with the route example's mNodes/mEdges extractors installed.
XFMethodRegistry routeRegistry() {
  XFMethodRegistry Registry;
  auto FileAttr = [](const char *Attr) {
    return [Attr](const std::string &Raw, const ExtractionContext &Ctx) {
      std::vector<Feature> Out;
      double V = 0;
      if (Ctx.Files) {
        if (auto Info = Ctx.Files->lookup(Raw)) {
          auto It = Info->Attributes.find(Attr);
          if (It != Info->Attributes.end())
            V = It->second;
        }
      }
      Out.push_back(Feature::numeric(
          Ctx.FeatureNamePrefix + ".m" + Attr, V));
      return Out;
    };
  };
  Registry.registerMethod("mnodes", FileAttr("nodes"));
  Registry.registerMethod("medges", FileAttr("edges"));
  return Registry;
}

FileStore routeFiles() {
  FileStore Files;
  FileInfo G;
  G.SizeBytes = 12000;
  G.Lines = 1000;
  G.Attributes["nodes"] = 100;
  G.Attributes["edges"] = 1000;
  Files.registerFile("graph", G);
  return Files;
}

} // namespace

//===----------------------------------------------------------------------===//
// Spec parser
//===----------------------------------------------------------------------===//

TEST(SpecParserTest, ParsesPaperExample) {
  auto S = parseSpec(RouteSpec);
  ASSERT_TRUE(static_cast<bool>(S));
  ASSERT_EQ(S->Options.size(), 2u);
  ASSERT_EQ(S->Operands.size(), 1u);
  EXPECT_EQ(S->Options[0].primaryName(), "-n");
  EXPECT_EQ(S->Options[0].Type, ComponentType::Num);
  EXPECT_TRUE(S->Options[0].HasArg);
  EXPECT_EQ(S->Options[0].Default, "1");
  EXPECT_EQ(S->Options[1].Names.size(), 2u);
  EXPECT_TRUE(S->Options[1].matches("--echo"));
  EXPECT_TRUE(S->Options[1].matches("-e"));
  EXPECT_EQ(S->Operands[0].PosStart, 1);
  EXPECT_EQ(S->Operands[0].PosEnd, -1); // '$'
  EXPECT_EQ(S->Operands[0].Attrs.size(), 2u);
  EXPECT_EQ(S->numDeclaredAttrs(), 4u);
}

TEST(SpecParserTest, MultiLineConstruct) {
  auto S = parseSpec("option {name=-x;\n  type=num;\n  attr=val;\n"
                     "  has_arg=y}\n");
  ASSERT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S->Options[0].primaryName(), "-x");
}

TEST(SpecParserTest, CommentsIgnored) {
  auto S = parseSpec("# the whole app\n"
                     "option {name=-a; type=bin; attr=val} # trailing\n");
  ASSERT_TRUE(static_cast<bool>(S));
}

TEST(SpecParserTest, SinglePositionOperand) {
  auto S = parseSpec("operand {position=2; type=str; attr=len}\n");
  ASSERT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S->Operands[0].PosStart, 2);
  EXPECT_EQ(S->Operands[0].PosEnd, 2);
  EXPECT_TRUE(S->Operands[0].coversPosition(2));
  EXPECT_FALSE(S->Operands[0].coversPosition(1));
}

TEST(SpecParserTest, ComponentTypes) {
  EXPECT_EQ(*parseComponentType("num"), ComponentType::Num);
  EXPECT_EQ(*parseComponentType("bin"), ComponentType::Bin);
  EXPECT_EQ(*parseComponentType("str"), ComponentType::Str);
  EXPECT_EQ(*parseComponentType("file"), ComponentType::File);
  EXPECT_FALSE(parseComponentType("blob").has_value());
}

namespace {

std::string specErrorOf(const char *Source) {
  auto S = parseSpec(Source);
  EXPECT_FALSE(static_cast<bool>(S));
  return S ? std::string() : S.getError().message();
}

} // namespace

TEST(SpecParserDiagnostics, MissingName) {
  EXPECT_NE(specErrorOf("option {type=num; attr=val}\n").find("name"),
            std::string::npos);
}

TEST(SpecParserDiagnostics, UnknownType) {
  EXPECT_NE(specErrorOf("option {name=-x; type=zzz; attr=val}\n")
                .find("unknown type"),
            std::string::npos);
}

TEST(SpecParserDiagnostics, UnknownField) {
  EXPECT_NE(specErrorOf("option {name=-x; type=num; attr=val; color=red}\n")
                .find("unknown option field"),
            std::string::npos);
}

TEST(SpecParserDiagnostics, BadHasArg) {
  EXPECT_NE(
      specErrorOf("option {name=-x; type=num; attr=val; has_arg=maybe}\n")
          .find("has_arg"),
      std::string::npos);
}

TEST(SpecParserDiagnostics, MissingPosition) {
  EXPECT_NE(specErrorOf("operand {type=file; attr=fsize}\n")
                .find("position"),
            std::string::npos);
}

TEST(SpecParserDiagnostics, NoAttrs) {
  EXPECT_NE(specErrorOf("option {name=-x; type=num}\n").find("attributes"),
            std::string::npos);
}

TEST(SpecParserDiagnostics, EmptySpec) {
  EXPECT_NE(specErrorOf("# nothing here\n").find("no constructs"),
            std::string::npos);
}

TEST(SpecParserDiagnostics, UnterminatedConstruct) {
  EXPECT_NE(specErrorOf("option {name=-x; type=num; attr=val\n")
                .find("unterminated"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Translator: the paper's running example
//===----------------------------------------------------------------------===//

TEST(TranslatorTest, PaperExampleVector) {
  // "route -n 3 graph" with a 100-node/1000-edge graph must produce the
  // vector (3, 0, 100, 1000) — paper Sec. III-A1 (plus the range-operand
  // count feature our aggregation adds).
  auto S = parseSpec(RouteSpec);
  ASSERT_TRUE(static_cast<bool>(S));
  XFMethodRegistry Registry = routeRegistry();
  FileStore Files = routeFiles();
  XICLTranslator T(S.takeValue(), &Registry, &Files);

  auto FV = T.buildFVector("route -n 3 graph");
  ASSERT_TRUE(static_cast<bool>(FV));
  int N = FV->indexOf("-n.val");
  int E = FV->indexOf("-e.val");
  int Nodes = FV->indexOf("operands1_$.mnodes");
  int Edges = FV->indexOf("operands1_$.medges");
  ASSERT_GE(N, 0);
  ASSERT_GE(E, 0);
  ASSERT_GE(Nodes, 0);
  ASSERT_GE(Edges, 0);
  EXPECT_DOUBLE_EQ((*FV)[static_cast<size_t>(N)].Num, 3);
  EXPECT_DOUBLE_EQ((*FV)[static_cast<size_t>(E)].Num, 0); // default
  EXPECT_DOUBLE_EQ((*FV)[static_cast<size_t>(Nodes)].Num, 100);
  EXPECT_DOUBLE_EQ((*FV)[static_cast<size_t>(Edges)].Num, 1000);
}

TEST(TranslatorTest, FlagPresenceSetsOne) {
  auto S = parseSpec(RouteSpec);
  XFMethodRegistry Registry = routeRegistry();
  FileStore Files = routeFiles();
  XICLTranslator T(S.takeValue(), &Registry, &Files);
  auto FV = T.buildFVector("route --echo graph");
  ASSERT_TRUE(static_cast<bool>(FV));
  EXPECT_DOUBLE_EQ(
      (*FV)[static_cast<size_t>(FV->indexOf("-e.val"))].Num, 1);
}

TEST(TranslatorTest, AliasesShareTheOption) {
  auto S = parseSpec(RouteSpec);
  XFMethodRegistry Registry = routeRegistry();
  FileStore Files = routeFiles();
  XICLTranslator T(S.takeValue(), &Registry, &Files);
  auto A = T.buildFVector("route -e graph");
  auto B = T.buildFVector("route --echo graph");
  ASSERT_TRUE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));
  EXPECT_EQ(A->str(), B->str());
}

TEST(TranslatorTest, MultipleOperandsAggregate) {
  auto S = parseSpec(RouteSpec);
  XFMethodRegistry Registry = routeRegistry();
  FileStore Files = routeFiles();
  FileInfo G2;
  G2.Attributes["nodes"] = 50;
  G2.Attributes["edges"] = 200;
  Files.registerFile("graph2", G2);
  XICLTranslator T(S.takeValue(), &Registry, &Files);
  auto FV = T.buildFVector("route graph graph2");
  ASSERT_TRUE(static_cast<bool>(FV));
  EXPECT_DOUBLE_EQ(
      (*FV)[static_cast<size_t>(FV->indexOf("operands1_$.count"))].Num, 2);
  EXPECT_DOUBLE_EQ(
      (*FV)[static_cast<size_t>(FV->indexOf("operands1_$.mnodes"))].Num,
      150); // summed
}

TEST(TranslatorTest, StableSchemaAcrossInputs) {
  auto S = parseSpec(RouteSpec);
  XFMethodRegistry Registry = routeRegistry();
  FileStore Files = routeFiles();
  XICLTranslator T(S.takeValue(), &Registry, &Files);
  auto A = T.buildFVector("route graph");
  auto B = T.buildFVector("route -n 9 -e graph graph");
  ASSERT_TRUE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));
  ASSERT_EQ(A->size(), B->size());
  for (size_t I = 0; I != A->size(); ++I)
    EXPECT_EQ((*A)[I].Name, (*B)[I].Name);
  // And schemaFeatureNames agrees.
  auto Names = T.schemaFeatureNames();
  ASSERT_EQ(Names.size(), A->size());
  for (size_t I = 0; I != Names.size(); ++I)
    EXPECT_EQ(Names[I], (*A)[I].Name);
}

TEST(TranslatorTest, UnknownOptionReported) {
  auto S = parseSpec(RouteSpec);
  XFMethodRegistry Registry = routeRegistry();
  XICLTranslator T(S.takeValue(), &Registry, nullptr);
  auto FV = T.buildFVector("route -z graph");
  ASSERT_FALSE(static_cast<bool>(FV));
  EXPECT_NE(FV.getError().message().find("unknown option"),
            std::string::npos);
}

TEST(TranslatorTest, MissingArgumentReported) {
  auto S = parseSpec(RouteSpec);
  XFMethodRegistry Registry = routeRegistry();
  XICLTranslator T(S.takeValue(), &Registry, nullptr);
  auto FV = T.buildFVector("route -n");
  ASSERT_FALSE(static_cast<bool>(FV));
  EXPECT_NE(FV.getError().message().find("requires an argument"),
            std::string::npos);
}

TEST(TranslatorTest, UnresolvedMethodReported) {
  auto S = parseSpec("operand {position=1; type=file; attr=mfoo}\n");
  XFMethodRegistry Registry; // mfoo not registered
  XICLTranslator T(S.takeValue(), &Registry, nullptr);
  auto FV = T.buildFVector("app x");
  ASSERT_FALSE(static_cast<bool>(FV));
  EXPECT_NE(FV.getError().message().find("mfoo"), std::string::npos);
}

TEST(TranslatorTest, NegativeNumbersAreOperands) {
  auto S = parseSpec("operand {position=1; type=num; attr=val}\n");
  XFMethodRegistry Registry;
  XICLTranslator T(S.takeValue(), &Registry, nullptr);
  auto FV = T.buildFVector("app -42");
  ASSERT_TRUE(static_cast<bool>(FV));
  EXPECT_DOUBLE_EQ((*FV)[0].Num, -42);
}

TEST(TranslatorTest, PredefinedLenAndFileAttrs) {
  auto S = parseSpec("operand {position=1; type=str; attr=len}\n"
                     "operand {position=2; type=file; attr=fsize:flines}\n");
  XFMethodRegistry Registry;
  FileStore Files;
  FileInfo Doc;
  Doc.SizeBytes = 2048;
  Doc.Lines = 99;
  Files.registerFile("doc.xml", Doc);
  XICLTranslator T(S.takeValue(), &Registry, &Files);
  auto FV = T.buildFVector("app hello doc.xml");
  ASSERT_TRUE(static_cast<bool>(FV));
  EXPECT_DOUBLE_EQ((*FV)[static_cast<size_t>(FV->indexOf("operand1.len"))]
                       .Num,
                   5);
  EXPECT_DOUBLE_EQ(
      (*FV)[static_cast<size_t>(FV->indexOf("operand2.fsize"))].Num, 2048);
  EXPECT_DOUBLE_EQ(
      (*FV)[static_cast<size_t>(FV->indexOf("operand2.flines"))].Num, 99);
}

TEST(TranslatorTest, CategoricalStrOption) {
  auto S = parseSpec(
      "option {name=-o; type=str; attr=val; default=java; has_arg=y}\n");
  XFMethodRegistry Registry;
  XICLTranslator T(S.takeValue(), &Registry, nullptr);
  auto FV = T.buildFVector("antlr -o cpp");
  ASSERT_TRUE(static_cast<bool>(FV));
  EXPECT_FALSE((*FV)[0].isNumeric());
  EXPECT_EQ((*FV)[0].Cat, "cpp");
  auto FV2 = T.buildFVector("antlr");
  EXPECT_EQ((*FV2)[0].Cat, "java"); // default applies
}

TEST(TranslatorTest, StatsAccumulateWork) {
  auto S = parseSpec(RouteSpec);
  XFMethodRegistry Registry = routeRegistry();
  FileStore Files = routeFiles();
  XICLTranslator T(S.takeValue(), &Registry, &Files);
  auto FV = T.buildFVector("route -n 3 graph");
  ASSERT_TRUE(static_cast<bool>(FV));
  EXPECT_GT(T.lastStats().TokensScanned, 0u);
  EXPECT_GT(T.lastStats().FeaturesExtracted, 0u);
  EXPECT_GT(T.lastStats().FileLookups, 0u);
  EXPECT_GT(T.lastStats().toCycles(), 0u);
}

//===----------------------------------------------------------------------===//
// XFMethod registry
//===----------------------------------------------------------------------===//

TEST(XFMethodTest, PredefinedInstalled) {
  XFMethodRegistry Registry;
  EXPECT_NE(Registry.getMethod("val"), nullptr);
  EXPECT_NE(Registry.getMethod("len"), nullptr);
  EXPECT_NE(Registry.getMethod("fsize"), nullptr);
  EXPECT_NE(Registry.getMethod("flines"), nullptr);
  EXPECT_EQ(Registry.getMethod("mcustom"), nullptr);
}

TEST(XFMethodTest, PredefinedNamePredicate) {
  EXPECT_TRUE(XFMethodRegistry::isPredefined("val"));
  EXPECT_FALSE(XFMethodRegistry::isPredefined("mnodes"));
}

TEST(XFMethodTest, ProgrammerDefinedOverride) {
  XFMethodRegistry Registry;
  Registry.registerMethod(
      "mfoo", [](const std::string &Raw, const ExtractionContext &Ctx) {
        std::vector<Feature> Out;
        Out.push_back(Feature::numeric(Ctx.FeatureNamePrefix + ".mfoo",
                                       static_cast<double>(Raw.size() * 2)));
        return Out;
      });
  const XFMethod *M = Registry.getMethod("mfoo");
  ASSERT_NE(M, nullptr);
  ExtractionContext Ctx;
  Ctx.FeatureNamePrefix = "operand1";
  auto Features = (*M)("abc", Ctx);
  ASSERT_EQ(Features.size(), 1u);
  EXPECT_DOUBLE_EQ(Features[0].Num, 6);
}

//===----------------------------------------------------------------------===//
// Runtime channel (updateV / done)
//===----------------------------------------------------------------------===//

TEST(FeatureChannelTest, UpdateVReplacesOrAppends) {
  FeatureChannel Channel;
  Channel.updateV("mstage", Feature::numeric("", 1));
  EXPECT_EQ(Channel.vector().size(), 1u);
  Channel.updateV("mstage", Feature::numeric("", 2));
  EXPECT_EQ(Channel.vector().size(), 1u);
  EXPECT_DOUBLE_EQ(Channel.vector()[0].Num, 2);
  EXPECT_EQ(Channel.numUpdates(), 2);
}

TEST(FeatureChannelTest, DoneFiresCallbackWithSnapshot) {
  FeatureChannel Channel;
  int Calls = 0;
  double Seen = 0;
  Channel.setDoneCallback([&](const FeatureVector &FV) {
    ++Calls;
    Seen = FV.Features.empty() ? -1 : FV.Features[0].Num;
  });
  Channel.updateV("mlen", Feature::numeric("", 7));
  Channel.done();
  EXPECT_EQ(Calls, 1);
  EXPECT_DOUBLE_EQ(Seen, 7);
  // Interactive points re-trigger prediction.
  Channel.updateV("mlen", Feature::numeric("", 9));
  Channel.done();
  EXPECT_EQ(Calls, 2);
  EXPECT_DOUBLE_EQ(Seen, 9);
  EXPECT_EQ(Channel.numDoneCalls(), 2);
}

TEST(FeatureChannelTest, DoneWithoutCallbackIsSafe) {
  FeatureChannel Channel;
  Channel.done();
  EXPECT_EQ(Channel.numDoneCalls(), 1);
}

TEST(FeatureVectorTest, StrRendering) {
  FeatureVector FV;
  FV.append(Feature::numeric("a", 2));
  FV.append(Feature::categorical("b", "xyz"));
  EXPECT_EQ(FV.str(), "a=2, b=xyz");
}

//===----------------------------------------------------------------------===//
// FileStore
//===----------------------------------------------------------------------===//

TEST(FileStoreTest, LookupMissReturnsNullopt) {
  FileStore Files;
  EXPECT_FALSE(Files.lookup("absent").has_value());
  EXPECT_EQ(Files.size(), 0u);
}

TEST(FileStoreTest, RegisterAndLookup) {
  FileStore Files = routeFiles();
  auto Info = Files.lookup("graph");
  ASSERT_TRUE(Info.has_value());
  EXPECT_DOUBLE_EQ(Info->SizeBytes, 12000);
  EXPECT_DOUBLE_EQ(Info->Lines, 1000);
  EXPECT_DOUBLE_EQ(Info->Attributes.at("nodes"), 100);
  EXPECT_EQ(Files.size(), 1u);
}

TEST(FileStoreTest, ReRegisterOverwrites) {
  FileStore Files = routeFiles();
  FileInfo Smaller;
  Smaller.SizeBytes = 5;
  Smaller.Attributes["nodes"] = 2;
  Files.registerFile("graph", Smaller);
  EXPECT_EQ(Files.size(), 1u);
  auto Info = Files.lookup("graph");
  ASSERT_TRUE(Info.has_value());
  EXPECT_DOUBLE_EQ(Info->SizeBytes, 5);
  EXPECT_DOUBLE_EQ(Info->Attributes.at("nodes"), 2);
  EXPECT_EQ(Info->Attributes.count("edges"), 0u);
}

TEST(FileStoreTest, ClearEmptiesTheStore) {
  FileStore Files = routeFiles();
  Files.registerFile("other", FileInfo());
  EXPECT_EQ(Files.size(), 2u);
  Files.clear();
  EXPECT_EQ(Files.size(), 0u);
  EXPECT_FALSE(Files.lookup("graph").has_value());
}
