//===- tests/test_server.cpp - The online prediction service --------------===//
//
// The serving subsystem's contract:
//
//   * the determinism pin: a serial single-client request stream over the
//     socket is byte-identical to rendering the equivalent batch-mode run
//     records, and its per-run cycles match runEvolveLaunches exactly —
//     promoting the VM from batch launches to a daemon changes nothing
//     about what it computes;
//   * admission control: bounded queues answer overload with explicit
//     rejections (never by stalling the socket), per-client caps reject
//     pipelined floods, a serial stream is never rejected;
//   * graceful drain: every admitted request is answered, the final
//     checkpoint folds into a loadable, clean global store;
//   * the RequestBatcher's flush triggers (size, deadline, drain);
//   * the wire protocol's parse/render round trip.
//
//===----------------------------------------------------------------------===//

#include "harness/Fleet.h"
#include "harness/Scenario.h"
#include "server/PredictionServer.h"
#include "store/Json.h"
#include "store/StoreFile.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace evm;
using namespace evm::server;

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "evm_server_" + Name;
}

/// A minimal blocking test client over the daemon socket.
class TestClient {
public:
  explicit TestClient(const std::string &SocketPath) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(Fd, 0);
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    EXPECT_LT(SocketPath.size(), sizeof(Addr.sun_path));
    std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size());
    EXPECT_EQ(
        ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)), 0)
        << std::strerror(errno);
  }
  ~TestClient() {
    if (Fd >= 0)
      ::close(Fd);
  }

  bool send(const std::string &Payload) { return writeFrame(Fd, Payload); }

  std::string recv() {
    std::string Payload, Err;
    FrameStatus S = readFrame(Fd, Payload, Err);
    EXPECT_EQ(S, FrameStatus::Ok) << Err;
    return Payload;
  }

  /// Serial request/response.
  std::string roundTrip(const std::string &Payload) {
    EXPECT_TRUE(send(Payload));
    return recv();
  }

private:
  int Fd = -1;
};

std::string statusOf(const std::string &Response) {
  auto Doc = store::JsonValue::parse(Response);
  if (!Doc || !Doc->isObject())
    return "<unparseable>";
  const store::JsonValue *F = Doc->field("status");
  return F ? F->str() : "<missing>";
}

uint64_t u64Of(const std::string &Response, const char *Name) {
  auto Doc = store::JsonValue::parse(Response);
  if (!Doc || !Doc->isObject())
    return 0;
  const store::JsonValue *F = Doc->field(Name);
  return F ? F->asU64() : 0;
}

ServerConfig baseConfig(const std::string &Tag) {
  ServerConfig C;
  C.SocketPath = tempPath(Tag + ".sock");
  ::unlink(C.SocketPath.c_str());
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// The determinism pin
//===----------------------------------------------------------------------===//

TEST(PredictionServerTest, SerialStreamMatchesBatchByteForByte) {
  const uint64_t Seed = 1;
  const std::vector<size_t> Order = {0, 1, 2, 3, 0, 1, 2, 3, 1, 0, 3, 2};

  // The batch side: the exact lane recipe, run locally.
  wl::Workload W = harness::buildFleetWorkload("route", Seed);
  harness::ExperimentConfig Exp;
  std::vector<std::string> Expected;
  {
    xicl::XFMethodRegistry Registry;
    W.registerMethods(Registry);
    xicl::FileStore Files;
    W.populateFileStore(Files);
    evolve::EvolvableVM VM(W.Module, W.XiclSpec, &Registry, &Files,
                           harness::makeEvolveConfig(Exp));
    // The lane warm-starts from the gateway snapshot (empty here — a cold
    // start by contract); mirror that so store.* metrics agree too.
    store::KnowledgeStore Empty;
    VM.warmStart(Empty);
    uint64_t Id = 1, Run = 0;
    for (size_t Input : Order) {
      auto Rec =
          VM.runOnce(W.Inputs[Input].CommandLine, W.Inputs[Input].VmArgs);
      ASSERT_TRUE(static_cast<bool>(Rec)) << Rec.getError().message();
      Expected.push_back(renderRunResponse(Id++, "route", ++Run, *Rec));
    }
  }

  // The scenario harness side: per-run cycles from runEvolveLaunches over
  // the same order (one launch, cold store) must agree too.
  std::string StorePath = tempPath("pin.store");
  ::unlink(StorePath.c_str());
  harness::ScenarioRunner Runner(W, Exp);
  harness::ScenarioResult Batch = Runner.runEvolveLaunches(Order, 1, StorePath);
  ASSERT_EQ(Batch.Runs.size(), Order.size());
  ::unlink(StorePath.c_str());

  // The served side: one serial client.
  ServerConfig C = baseConfig("pin");
  C.Seed = Seed;
  C.Experiment = Exp;
  C.BatchSize = 3; // batching knobs must not affect a serial stream
  C.BatchDeadlineMicros = 200;
  PredictionServer Server(C);
  ASSERT_TRUE(Server.start()) << Server.error();
  {
    TestClient Client(C.SocketPath);
    for (size_t I = 0; I != Order.size(); ++I) {
      std::string Response = Client.roundTrip(renderRunInputRequest(
          I + 1, "route", static_cast<uint64_t>(Order[I])));
      EXPECT_EQ(Response, Expected[I]) << "request " << I;
      EXPECT_EQ(u64Of(Response, "cycles"), Batch.Runs[I].Cycles)
          << "request " << I;
    }
  }
  EXPECT_EQ(Server.drainAndWait(), 0);

  // Sanity on the serving metrics: every request ran, nothing rejected.
  MetricsSnapshot M = Server.metricsSnapshot();
  std::string Json = M.renderJson();
  EXPECT_NE(Json.find("\"server.responses.ok\""), std::string::npos);
  EXPECT_EQ(Json.find("\"server.rejected."), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Admission control
//===----------------------------------------------------------------------===//

TEST(PredictionServerTest, PipelinedFloodGetsExplicitRejections) {
  ServerConfig C = baseConfig("flood");
  C.MaxQueue = 2;
  C.MaxInflightPerClient = 1;
  C.BatchDeadlineMicros = 50000; // hold batches so the flood piles up
  C.BatchSize = 64;
  C.CaptureDecisions = true;
  PredictionServer Server(C);
  ASSERT_TRUE(Server.start()) << Server.error();

  size_t NumOk = 0, NumRejected = 0;
  {
    TestClient Client(C.SocketPath);
    const size_t N = 8;
    // Pipeline: send everything before reading anything.  With a
    // per-client cap of 1, most must come back "rejected".
    for (size_t I = 0; I != N; ++I)
      ASSERT_TRUE(Client.send(renderRunInputRequest(I + 1, "route", 0)));
    for (size_t I = 0; I != N; ++I) {
      std::string Status = statusOf(Client.recv());
      if (Status == "ok")
        ++NumOk;
      else if (Status == "rejected")
        ++NumRejected;
    }
  }
  EXPECT_GE(NumOk, 1u);
  EXPECT_GE(NumRejected, 1u);
  EXPECT_EQ(NumOk + NumRejected, 8u);
  EXPECT_EQ(Server.drainAndWait(), 0);

  // Rejections leave ledger records with the `rejected` verdict and the
  // reason in Guard — evm-explain's drop-rate source.
  size_t LedgerRejected = 0;
  for (const DecisionRecord &R : Server.decisions())
    if (R.Rejected) {
      ++LedgerRejected;
      EXPECT_EQ(R.App, "route");
      EXPECT_FALSE(R.Guard.empty());
    }
  EXPECT_EQ(LedgerRejected, NumRejected);
}

TEST(PredictionServerTest, UnknownAppIsAnErrorNotADrop) {
  ServerConfig C = baseConfig("unknown");
  PredictionServer Server(C);
  ASSERT_TRUE(Server.start()) << Server.error();
  {
    TestClient Client(C.SocketPath);
    EXPECT_EQ(statusOf(Client.roundTrip(
                  renderRunInputRequest(1, "no_such_workload", 0))),
              "error");
    EXPECT_EQ(statusOf(Client.roundTrip(renderPingRequest(2))), "ok");
  }
  EXPECT_EQ(Server.drainAndWait(), 0);
}

TEST(PredictionServerTest, PingAndStatsAnswerWithoutRunning) {
  ServerConfig C = baseConfig("ping");
  PredictionServer Server(C);
  ASSERT_TRUE(Server.start()) << Server.error();
  {
    TestClient Client(C.SocketPath);
    std::string Pong = Client.roundTrip(renderPingRequest(7));
    EXPECT_EQ(statusOf(Pong), "ok");
    EXPECT_EQ(u64Of(Pong, "id"), 7u);
    EXPECT_EQ(u64Of(Pong, "pong"), 1u);
    std::string Stats = Client.roundTrip(renderStatsRequest(8));
    EXPECT_EQ(statusOf(Stats), "ok");
    EXPECT_NE(Stats.find("server.requests.ping"), std::string::npos);
  }
  EXPECT_EQ(Server.drainAndWait(), 0);
}

//===----------------------------------------------------------------------===//
// Graceful drain
//===----------------------------------------------------------------------===//

TEST(PredictionServerTest, DrainAnswersEveryAdmittedRequest) {
  std::string StoreDir = tempPath("drain_stores");
  ::system(("rm -rf " + StoreDir).c_str());

  ServerConfig C = baseConfig("drain");
  C.StoreDir = StoreDir;
  C.BatchDeadlineMicros = 20000; // likely still queued when drain begins
  C.BatchSize = 64;
  C.MaxInflightPerClient = 64;
  PredictionServer Server(C);
  ASSERT_TRUE(Server.start()) << Server.error();

  const size_t N = 6;
  size_t NumOk = 0;
  {
    TestClient Client(C.SocketPath);
    for (size_t I = 0; I != N; ++I)
      ASSERT_TRUE(
          Client.send(renderRunInputRequest(I + 1, "route", I % 4)));
    // Wait until all N requests are admitted (they sit in the batcher —
    // its deadline is far away), then drain: every admitted request must
    // still be answered "ok".
    for (int Spin = 0; Spin != 1000; ++Spin) {
      if (Server.metricsSnapshot().counter("server.requests.run") >= N)
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GE(Server.metricsSnapshot().counter("server.requests.run"), N);
    Server.requestDrain();
    EXPECT_EQ(Server.drainAndWait(), 0);
    for (size_t I = 0; I != N; ++I)
      if (statusOf(Client.recv()) == "ok")
        ++NumOk;
  }
  EXPECT_EQ(NumOk, N);

  // The final fold's global store is loadable and clean.
  store::KnowledgeStore KS;
  store::StoreReadStats Stats;
  ASSERT_EQ(store::loadStoreFile(StoreDir + "/global-route.store", KS, Stats),
            store::LoadStatus::Loaded);
  EXPECT_TRUE(Stats.clean());
  EXPECT_FALSE(KS.empty());
  EXPECT_EQ(KS.Header.App, "route");
}

TEST(PredictionServerTest, RequestsAfterDrainAreRejectedAsDraining) {
  ServerConfig C = baseConfig("late");
  C.CaptureDecisions = true;
  PredictionServer Server(C);
  ASSERT_TRUE(Server.start()) << Server.error();
  TestClient Client(C.SocketPath);
  // Prove the connection works, then drain and send another request on
  // the still-open connection: it must get an explicit "draining".
  EXPECT_EQ(statusOf(Client.roundTrip(renderPingRequest(1))), "ok");
  Server.requestDrain();
  std::string Response =
      Client.roundTrip(renderRunInputRequest(2, "route", 0));
  EXPECT_EQ(statusOf(Response), "rejected");
  EXPECT_NE(Response.find("draining"), std::string::npos);
  EXPECT_EQ(Server.drainAndWait(), 0);
}

//===----------------------------------------------------------------------===//
// RequestBatcher
//===----------------------------------------------------------------------===//

namespace {

BatchItem makeItem(uint64_t Id) {
  BatchItem Item;
  Item.Id = Id;
  Item.Req.App = "route";
  Item.Req.HasInput = true;
  Item.Req.Input = 0;
  Item.Enqueued = std::chrono::steady_clock::now();
  return Item;
}

} // namespace

TEST(RequestBatcherTest, FlushesOnBatchSize) {
  std::mutex M;
  std::condition_variable CV;
  std::vector<std::pair<size_t, RequestBatcher::FlushReason>> Flushes;
  RequestBatcher B(
      {/*BatchSize=*/3, /*DeadlineMicros=*/60 * 1000 * 1000},
      [&](std::vector<BatchItem> Items, RequestBatcher::FlushReason R) {
        std::lock_guard<std::mutex> L(M);
        Flushes.emplace_back(Items.size(), R);
        CV.notify_all();
      });
  for (uint64_t I = 0; I != 3; ++I)
    ASSERT_TRUE(B.submit(makeItem(I)));
  {
    std::unique_lock<std::mutex> L(M);
    ASSERT_TRUE(CV.wait_for(L, std::chrono::seconds(30),
                            [&] { return !Flushes.empty(); }));
    EXPECT_EQ(Flushes[0].first, 3u);
    EXPECT_EQ(Flushes[0].second, RequestBatcher::FlushReason::Size);
  }
  EXPECT_EQ(B.sizeFlushes(), 1u);
  B.drain();
  EXPECT_FALSE(B.submit(makeItem(9))); // post-drain submits are refused
}

TEST(RequestBatcherTest, FlushesOnDeadlineForShortBatches) {
  std::mutex M;
  std::condition_variable CV;
  size_t FlushedItems = 0;
  RequestBatcher B(
      {/*BatchSize=*/100, /*DeadlineMicros=*/2000},
      [&](std::vector<BatchItem> Items, RequestBatcher::FlushReason R) {
        std::lock_guard<std::mutex> L(M);
        FlushedItems += Items.size();
        EXPECT_EQ(R, RequestBatcher::FlushReason::Deadline);
        CV.notify_all();
      });
  ASSERT_TRUE(B.submit(makeItem(1)));
  std::unique_lock<std::mutex> L(M);
  ASSERT_TRUE(CV.wait_for(L, std::chrono::seconds(30),
                          [&] { return FlushedItems == 1; }));
  EXPECT_GE(B.deadlineFlushes(), 1u);
}

TEST(RequestBatcherTest, DrainFlushesEverythingPending) {
  size_t Flushed = 0;
  {
    RequestBatcher B(
        {/*BatchSize=*/100, /*DeadlineMicros=*/60 * 1000 * 1000},
        [&](std::vector<BatchItem> Items, RequestBatcher::FlushReason) {
          Flushed += Items.size();
        });
    for (uint64_t I = 0; I != 5; ++I)
      ASSERT_TRUE(B.submit(makeItem(I)));
    B.drain(); // must hand all 5 to the callback before returning
    EXPECT_EQ(Flushed, 5u);
  }
  EXPECT_EQ(Flushed, 5u);
}

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, RunRequestRoundTripsBothForms) {
  std::string Err;
  auto Indexed = parseRequest(renderRunInputRequest(42, "route:3", 7), Err);
  ASSERT_TRUE(Indexed.has_value()) << Err;
  EXPECT_EQ(Indexed->TheOp, Request::Op::Run);
  EXPECT_EQ(Indexed->Id, 42u);
  EXPECT_EQ(Indexed->Run.App, "route:3");
  ASSERT_TRUE(Indexed->Run.HasInput);
  EXPECT_EQ(Indexed->Run.Input, 7u);

  // Raw cmdline form: arg spelling decides int vs float, exactly like
  // evm_cli's RUNS.txt grammar — including float zero.
  std::vector<bc::Value> Args = {bc::Value::makeInt(3),
                                 bc::Value::makeFloat(0.0),
                                 bc::Value::makeFloat(2.5)};
  auto Raw = parseRequest(
      renderRunRawRequest(43, "route", "prog -n 3 \"x y\"", Args), Err);
  ASSERT_TRUE(Raw.has_value()) << Err;
  ASSERT_FALSE(Raw->Run.HasInput);
  EXPECT_EQ(Raw->Run.CommandLine, "prog -n 3 \"x y\"");
  ASSERT_EQ(Raw->Run.Args.size(), 3u);
  EXPECT_TRUE(Raw->Run.Args[0].isInt());
  EXPECT_EQ(Raw->Run.Args[0].asInt(), 3);
  EXPECT_TRUE(Raw->Run.Args[1].isFloat());
  EXPECT_TRUE(Raw->Run.Args[2].isFloat());
  EXPECT_DOUBLE_EQ(Raw->Run.Args[2].asFloat(), 2.5);
}

TEST(ProtocolTest, MalformedRequestsAreRejectedWithReasons) {
  std::string Err;
  EXPECT_FALSE(parseRequest("not json", Err).has_value());
  EXPECT_FALSE(parseRequest("{}", Err).has_value());
  EXPECT_FALSE(parseRequest("{\"op\":\"run\",\"id\":1}", Err).has_value())
      << "run without app must not parse";
  EXPECT_FALSE(
      parseRequest("{\"op\":\"frobnicate\",\"id\":1}", Err).has_value());
  EXPECT_FALSE(Err.empty());
}

TEST(ProtocolTest, FramesSurviveASocketPair) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  std::string Payload(100000, 'x'); // bigger than any single read
  Payload += "tail";
  ASSERT_TRUE(writeFrame(Fds[0], Payload));
  std::string Got, Err;
  ASSERT_EQ(readFrame(Fds[1], Got, Err), FrameStatus::Ok) << Err;
  EXPECT_EQ(Got, Payload);

  // Clean EOF when the peer closes between frames.
  ::close(Fds[0]);
  EXPECT_EQ(readFrame(Fds[1], Got, Err), FrameStatus::Eof);
  ::close(Fds[1]);

  // An oversized length prefix is a protocol error, not an allocation.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  unsigned char Huge[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::write(Fds[0], Huge, 4), 4);
  EXPECT_EQ(readFrame(Fds[1], Got, Err), FrameStatus::Error);
  ::close(Fds[0]);
  ::close(Fds[1]);
}
