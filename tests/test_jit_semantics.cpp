//===- tests/test_jit_semantics.cpp - Cross-tier equivalence properties ---==//
//
// The JIT's central correctness property: for every program in the corpus,
// every optimization level, and a sweep of inputs, compiled execution
// produces exactly the value the interpreter produces.  Parameterized over
// (program, level, input).
//
//===----------------------------------------------------------------------===//

#include "vm/Engine.h"
#include "vm/Policy.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace evm;
using namespace evm::vm;
using evm::test::assemble;

namespace {

/// Policy that forces every method to one level at first invocation.
class ForceLevelPolicy : public CompilationPolicy {
public:
  explicit ForceLevelPolicy(OptLevel L) : Level(L) {}
  std::optional<OptLevel>
  onFirstInvocation(const MethodRuntimeInfo &) override {
    if (Level == OptLevel::Baseline)
      return std::nullopt;
    return Level;
  }

private:
  OptLevel Level;
};

/// Runs the program with every method pinned at \p L.
ErrorOr<RunResult> runAtLevel(const bc::Module &M, OptLevel L,
                              int64_t Input) {
  TimingModel TM;
  ForceLevelPolicy Policy(L);
  ExecutionEngine Engine(M, TM, &Policy);
  return Engine.run({bc::Value::makeInt(Input)}, 2000000000ULL);
}

struct Case {
  size_t ProgramIndex;
  int LevelIndex; // 1..3 -> O0..O2
  int64_t Input;
};

class JitEquivalence : public ::testing::TestWithParam<Case> {};

} // namespace

TEST_P(JitEquivalence, CompiledMatchesInterpreter) {
  const Case &C = GetParam();
  const auto &[Name, Source] = test::programCorpus()[C.ProgramIndex];
  SCOPED_TRACE(Name);
  bc::Module M = assemble(Source);

  auto Interp = runAtLevel(M, OptLevel::Baseline, C.Input);
  auto Compiled = runAtLevel(M, levelFromIndex(C.LevelIndex), C.Input);
  ASSERT_TRUE(static_cast<bool>(Interp)) << Interp.getError().message();
  ASSERT_TRUE(static_cast<bool>(Compiled)) << Compiled.getError().message();
  EXPECT_TRUE(Interp->ReturnValue.equals(Compiled->ReturnValue))
      << "interp=" << Interp->ReturnValue.str()
      << " compiled=" << Compiled->ReturnValue.str();
}

namespace {

std::vector<Case> makeCases() {
  std::vector<Case> Cases;
  const int64_t Inputs[] = {0, 1, 2, 7, 13, 22};
  for (size_t P = 0; P != test::programCorpus().size(); ++P)
    for (int L = 1; L <= 3; ++L)
      for (int64_t In : Inputs)
        Cases.push_back(Case{P, L, In});
  return Cases;
}

std::string caseName(const ::testing::TestParamInfo<Case> &Info) {
  const Case &C = Info.param;
  return std::string(test::programCorpus()[C.ProgramIndex].first) + "_O" +
         std::to_string(C.LevelIndex - 1) + "_in" +
         std::to_string(C.Input);
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Corpus, JitEquivalence,
                         ::testing::ValuesIn(makeCases()), caseName);

//===----------------------------------------------------------------------===//
// Performance-order property: higher levels execute fewer-or-equal cycles
// at steady state (compile cost excluded via long runs).
//===----------------------------------------------------------------------===//

TEST(JitPerformance, LevelsAreFasterThanBaseline) {
  // The float-heavy kernel benefits most; check the cycle ordering
  // baseline > O0 >= O1 >= O2 (with generous slack for O1/O2 compile cost).
  bc::Module M = assemble(test::programCorpus()[3].second); // float_math
  const int64_t N = 30000;
  // Compare steady-state execution (compile cost excluded): higher levels
  // must run the same work in fewer cycles.
  uint64_t Cycles[4];
  for (int L = 0; L != 4; ++L) {
    auto R = runAtLevel(M, levelFromIndex(L), N);
    ASSERT_TRUE(static_cast<bool>(R));
    Cycles[L] = R->Cycles - R->compileCycles();
  }
  EXPECT_GT(Cycles[0], Cycles[1]);
  EXPECT_GT(Cycles[1], Cycles[2]);
  EXPECT_GE(Cycles[2], Cycles[3]);
  // Baseline should be at least 2x slower than O0 on dispatch-heavy code.
  EXPECT_GT(static_cast<double>(Cycles[0]) / Cycles[1], 1.6);
}

TEST(JitPerformance, TrapsAgreeAcrossTiers) {
  // A program that traps (div by zero on input 0) must trap in every tier.
  bc::Module M = assemble("func main(1)\n  const_i 100\n  load_local 0\n"
                          "  div\n  ret\nend\n");
  for (int L = 0; L != 4; ++L) {
    auto R = runAtLevel(M, levelFromIndex(L), 0);
    EXPECT_FALSE(static_cast<bool>(R)) << "level " << L - 1;
    if (!R)
      EXPECT_NE(R.getError().message().find("division by zero"),
                std::string::npos);
  }
  // And succeed identically on a non-trapping input.
  for (int L = 0; L != 4; ++L) {
    auto R = runAtLevel(M, levelFromIndex(L), 4);
    ASSERT_TRUE(static_cast<bool>(R));
    EXPECT_EQ(R->ReturnValue.asInt(), 25);
  }
}

TEST(JitPerformance, MixedTiersInteroperate) {
  // main at O2 calling a baseline helper and vice versa produce the same
  // result: pin only the *even* methods.
  bc::Module M = assemble(test::programCorpus()[5].second); // helper_calls
  class EvenOnly : public CompilationPolicy {
  public:
    std::optional<OptLevel>
    onFirstInvocation(const MethodRuntimeInfo &Info) override {
      if (Info.Id % 2 == 0)
        return OptLevel::O2;
      return std::nullopt;
    }
  };
  TimingModel TM;
  EvenOnly Policy;
  ExecutionEngine Engine(M, TM, &Policy);
  auto R = Engine.run({bc::Value::makeInt(9)}, 2000000000ULL);
  ASSERT_TRUE(static_cast<bool>(R));
  auto Want = runAtLevel(M, OptLevel::Baseline, 9);
  EXPECT_TRUE(R->ReturnValue.equals(Want->ReturnValue));
}
