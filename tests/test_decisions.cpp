//===- tests/test_decisions.cpp - Decision-ledger invariants --------------==//
//
// Pins the ledger's core contracts:
//   * observation only — attaching an enabled ledger leaves every
//     RunMetrics field (cycles included) byte-identical to the unledgered
//     run, and a disabled ledger records nothing;
//   * the JSONL wire format round-trips byte-identically through
//     LedgerReader on real scenario records;
//   * the ring keeps the newest MaxRecords and counts what it sheds;
//   * a captured tree path terminates in the leaf predict() returned;
//   * run records agree field-for-field with the harness's own RunMetrics
//     and carry the backfilled baseline cycles;
//   * the fleet's folded ledger is byte-identical across thread counts.
//
//===----------------------------------------------------------------------===//

#include "harness/Fleet.h"
#include "harness/Scenario.h"
#include "ml/ClassificationTree.h"
#include "support/DecisionLedger.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace evm;
using namespace evm::harness;

namespace {

constexpr uint64_t Seed = 20090301;

ExperimentConfig config() {
  ExperimentConfig C;
  C.Seed = Seed;
  return C;
}

/// Runs the Evolve scenario over \p NumRuns inputs, recording into
/// \p Ledger when given.
ScenarioResult runEvolveWith(DecisionLedger *Ledger, size_t NumRuns) {
  wl::Workload W = wl::buildRouteExample(Seed, 20);
  ScenarioRunner Runner(W, config());
  if (Ledger)
    Runner.setLedger(Ledger);
  return Runner.runEvolve(Runner.makeInputOrder(1, NumRuns));
}

void expectSameMetrics(const ScenarioResult &A, const ScenarioResult &B) {
  ASSERT_EQ(A.Runs.size(), B.Runs.size());
  for (size_t I = 0; I != A.Runs.size(); ++I) {
    EXPECT_EQ(A.Runs[I].InputIndex, B.Runs[I].InputIndex) << "run " << I;
    EXPECT_EQ(A.Runs[I].Cycles, B.Runs[I].Cycles) << "run " << I;
    EXPECT_EQ(A.Runs[I].OverheadCycles, B.Runs[I].OverheadCycles)
        << "run " << I;
    EXPECT_EQ(A.Runs[I].Compiles, B.Runs[I].Compiles) << "run " << I;
    EXPECT_EQ(A.Runs[I].UsedPrediction, B.Runs[I].UsedPrediction)
        << "run " << I;
    EXPECT_EQ(A.Runs[I].HadPrediction, B.Runs[I].HadPrediction)
        << "run " << I;
    // Bitwise double equality: observation must not perturb arithmetic.
    EXPECT_EQ(A.Runs[I].SpeedupVsDefault, B.Runs[I].SpeedupVsDefault)
        << "run " << I;
    EXPECT_EQ(A.Runs[I].Confidence, B.Runs[I].Confidence) << "run " << I;
    EXPECT_EQ(A.Runs[I].Accuracy, B.Runs[I].Accuracy) << "run " << I;
  }
  EXPECT_EQ(A.FinalConfidence, B.FinalConfidence);
  EXPECT_EQ(A.MeanConfidence, B.MeanConfidence);
}

} // namespace

TEST(DecisionLedgerTest, EnabledLedgerIsObservationOnly) {
  // The identity pin for the whole feature: ledger on vs ledger off must
  // be cycle- and RunMetrics-identical — recording never charges the
  // virtual clock and never changes a decision.
  ScenarioResult Bare = runEvolveWith(nullptr, 30);
  DecisionLedger Ledger;
  Ledger.setEnabled(true);
  ScenarioResult Observed = runEvolveWith(&Ledger, 30);
  expectSameMetrics(Bare, Observed);
  if (Ledger.enabled()) // false when built with EVM_DECISIONS=0
    EXPECT_EQ(Ledger.size(), Bare.Runs.size());
}

TEST(DecisionLedgerTest, DisabledLedgerRecordsNothing) {
  DecisionLedger Ledger; // attached but never setEnabled(true)
  ScenarioResult Bare = runEvolveWith(nullptr, 12);
  ScenarioResult Observed = runEvolveWith(&Ledger, 12);
  expectSameMetrics(Bare, Observed);
  EXPECT_EQ(Ledger.size(), 0u);
  EXPECT_EQ(Ledger.droppedRecords(), 0u);
}

TEST(DecisionLedgerTest, JsonlRoundTripsByteIdentical) {
  DecisionLedger Ledger;
  Ledger.setEnabled(true);
  runEvolveWith(&Ledger, 30);
  if (!Ledger.enabled())
    GTEST_SKIP() << "built with EVM_DECISIONS=0";
  LedgerProvenance Prov;
  Prov.GitSha = "0123abcd";
  Prov.Compiler = "GNU";
  Prov.CompilerVersion = "12.2.0";
  Prov.BuildType = "Release";
  std::string Text = renderJsonlDecisions(Ledger.exportOrder(), &Prov);
  LedgerReader Reader;
  Reader.addText(Text);
  EXPECT_EQ(Reader.badLines(), 0u);
  ASSERT_TRUE(Reader.hasProvenance());
  EXPECT_EQ(Reader.provenance().GitSha, "0123abcd");
  EXPECT_EQ(renderJsonlDecisions(Reader.records(), &Prov), Text);
}

TEST(DecisionLedgerTest, RingKeepsNewestAndCountsShed) {
  DecisionLedger Ring(4);
  Ring.setEnabled(true);
  if (!Ring.enabled())
    GTEST_SKIP() << "built with EVM_DECISIONS=0";
  for (uint64_t I = 1; I <= 10; ++I) {
    DecisionRecord R;
    R.App = "ring";
    R.Run = I;
    Ring.record(std::move(R));
  }
  EXPECT_EQ(Ring.size(), 4u);
  EXPECT_EQ(Ring.droppedRecords(), 6u);
  std::vector<DecisionRecord> Kept = Ring.exportOrder();
  ASSERT_EQ(Kept.size(), 4u);
  for (size_t I = 0; I != 4; ++I)
    EXPECT_EQ(Kept[I].Run, 7 + I); // oldest-first export of runs 7..10
  Ring.clear();
  EXPECT_EQ(Ring.size(), 0u);
  EXPECT_EQ(Ring.droppedRecords(), 0u);
}

TEST(DecisionLedgerTest, TreePathEndsInPredictedLeaf) {
  // Fig. 6-shaped data: label 1 iff X0 > 5 and X1 > 5.
  ml::Dataset D;
  auto FV2 = [](double X, double Y) {
    xicl::FeatureVector FV;
    FV.append(xicl::Feature::numeric("x", X));
    FV.append(xicl::Feature::numeric("y", Y));
    return FV;
  };
  for (int X = 0; X != 10; ++X)
    for (int Y = 0; Y != 10; ++Y)
      D.addExample(FV2(X, Y), X > 5 && Y > 5 ? 1 : 0);
  ml::ClassificationTree Tree = ml::ClassificationTree::build(D);
  for (int X : {0, 3, 7, 9})
    for (int Y : {0, 3, 7, 9}) {
      ml::TreePath Path;
      int Label = Tree.predict(D.encode(FV2(X, Y)), &Path);
      EXPECT_EQ(Path.Leaf, Label) << X << "," << Y;
      // The rendered walk terminates in its leaf label.
      std::string Text = Path.str();
      std::string Tail = "L" + std::to_string(Label);
      ASSERT_GE(Text.size(), Tail.size());
      EXPECT_EQ(Text.substr(Text.size() - Tail.size()), Tail);
      // Deep points take at least two splits to reach the corner leaf.
      if (X > 5 && Y > 5)
        EXPECT_GE(Path.Steps.size(), 2u);
    }
}

TEST(DecisionLedgerTest, RecordsAgreeWithRunMetrics) {
  DecisionLedger Ledger;
  Ledger.setEnabled(true);
  ScenarioResult R = runEvolveWith(&Ledger, 30);
  if (!Ledger.enabled())
    GTEST_SKIP() << "built with EVM_DECISIONS=0";
  std::vector<DecisionRecord> Records = Ledger.exportOrder();
  ASSERT_EQ(Records.size(), R.Runs.size());
  bool SawPrediction = false;
  for (size_t I = 0; I != Records.size(); ++I) {
    const DecisionRecord &D = Records[I];
    const RunMetrics &M = R.Runs[I];
    EXPECT_EQ(D.Run, I + 1) << "1-based run ordinal";
    EXPECT_EQ(D.Tenant, -1) << "no tenant outside fleet mode";
    EXPECT_EQ(D.Had, M.HadPrediction) << "run " << I;
    EXPECT_EQ(D.Used, M.UsedPrediction) << "run " << I;
    EXPECT_EQ(D.Cycles, M.Cycles) << "run " << I;
    EXPECT_EQ(D.Accuracy, M.Accuracy) << "run " << I;
    EXPECT_EQ(D.ConfAfter, M.Confidence) << "run " << I;
    EXPECT_EQ(D.Guard, "decayed");
    // The harness backfills the paired default-optimizer cycle count.
    EXPECT_GT(D.BaselineCycles, 0u) << "run " << I;
    EXPECT_EQ(D.Methods.empty(), !D.Had) << "run " << I;
    if (D.Had) {
      SawPrediction = true;
      for (const MethodDecision &MD : D.Methods) {
        EXPECT_EQ(MD.Agree, MD.Pred == MD.Ideal);
        EXPECT_GE(MD.Pred, 0);
        EXPECT_LT(MD.Pred, 4);
        EXPECT_EQ(MD.Path.empty(), MD.Constant);
      }
    }
  }
  EXPECT_TRUE(SawPrediction) << "30 runs should reach prediction";
}

TEST(DecisionLedgerTest, FleetFoldIsThreadInvariant) {
  // Per-tenant ledgers folded in tenant-ID order: the JSONL stream is
  // byte-identical for any --threads, exactly like the aggregate JSON.
  std::string Baseline;
  std::string BaselineJson;
  for (size_t T : {1, 2, 4}) {
    FleetConfig FC;
    FC.NumTenants = 4;
    FC.NumThreads = T;
    FC.RunsPerTenant = 6;
    FC.Seed = Seed;
    FC.CapturePhases = false;
    FC.CaptureDecisions = true;
    FleetRunner Runner(FC);
    FleetResult R = Runner.run();
    std::string Jsonl = renderJsonlDecisions(R.Decisions);
    std::string Json = R.renderJson();
    DecisionLedger Probe;
    Probe.setEnabled(true);
    if (!Probe.enabled()) {
      EXPECT_TRUE(R.Decisions.empty());
      continue; // EVM_DECISIONS=0: nothing to fold, aggregate still works
    }
    EXPECT_FALSE(R.Decisions.empty());
    // Tenant ids stamped and nondecreasing across the fold.
    int64_t LastTenant = -1;
    for (const DecisionRecord &D : R.Decisions) {
      EXPECT_GE(D.Tenant, 0);
      EXPECT_GE(D.Tenant, LastTenant);
      LastTenant = D.Tenant;
    }
    if (Baseline.empty()) {
      Baseline = Jsonl;
      BaselineJson = Json;
      continue;
    }
    EXPECT_EQ(Jsonl, Baseline) << "threads=" << T;
    EXPECT_EQ(Json, BaselineJson) << "threads=" << T;
  }
}
