//===- tests/test_store_cli.cpp - evm_cli --store flags end to end --------==//
//
// Drives the real evm_cli binary (path injected as EVM_CLI_PATH by CMake)
// through its knowledge-store options, pinning the documented exit codes:
// 0 success, 2 usage error, 3 file I/O error.  The built-in demo scenario
// keeps the test self-contained — no program files needed.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/wait.h>

namespace {

/// Runs evm_cli with \p Args (built-in demo mode), returning its exit code.
int runCli(const std::string &Args) {
  std::string Cmd =
      std::string(EVM_CLI_PATH) + " " + Args + " >/dev/null 2>&1";
  int Rc = std::system(Cmd.c_str());
  return WIFEXITED(Rc) ? WEXITSTATUS(Rc) : -1;
}

std::string tmpStore(const char *Name) {
  return ::testing::TempDir() + "evm_cli_test_" + Name;
}

bool fileExists(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (F)
    std::fclose(F);
  return F != nullptr;
}

} // namespace

TEST(StoreCliTest, ColdThenWarmRunSucceedAndPersist) {
  std::string Path = tmpStore("roundtrip.store");
  std::remove(Path.c_str());
  EXPECT_EQ(runCli("--store=" + Path), 0); // cold start, creates the store
  EXPECT_TRUE(fileExists(Path));
  EXPECT_EQ(runCli("--store=" + Path), 0); // warm start, rewrites it
  EXPECT_TRUE(fileExists(Path));
  std::remove(Path.c_str());
}

TEST(StoreCliTest, ReadonlyNeverWrites) {
  std::string Path = tmpStore("readonly.store");
  std::remove(Path.c_str());
  EXPECT_EQ(runCli("--store=" + Path + " --store-readonly"), 0);
  EXPECT_FALSE(fileExists(Path)); // cold start, nothing saved
}

TEST(StoreCliTest, ResetStartsCold) {
  std::string Path = tmpStore("reset.store");
  std::remove(Path.c_str());
  ASSERT_EQ(runCli("--store=" + Path), 0);
  ASSERT_TRUE(fileExists(Path));
  EXPECT_EQ(runCli("--store=" + Path + " --store-reset"), 0);
  EXPECT_TRUE(fileExists(Path)); // recreated by the post-run checkpoint
  std::remove(Path.c_str());
}

TEST(StoreCliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(runCli("--store-readonly"), 2); // needs --store
  EXPECT_EQ(runCli("--store-reset"), 2);
  std::string Path = tmpStore("conflict.store");
  EXPECT_EQ(runCli("--store=" + Path + " --store-readonly --store-reset"), 2);
  EXPECT_FALSE(fileExists(Path));
}

TEST(StoreCliTest, UnreadableStoreExitsThree) {
  // A directory opens but cannot be read as a file -> I/O error, not a
  // cold start (silently losing a store the user pointed at is worse than
  // failing loudly).
  EXPECT_EQ(runCli("--store=" + ::testing::TempDir()), 3);
}

TEST(StoreCliTest, UnwritableStoreExitsThree) {
  // Load finds nothing (cold start), but the final checkpoint cannot be
  // written.
  EXPECT_EQ(runCli("--store=/nonexistent-dir/evm_cli_test.store"), 3);
}
