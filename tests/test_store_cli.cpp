//===- tests/test_store_cli.cpp - evm_cli --store flags end to end --------==//
//
// Drives the real evm_cli binary (path injected as EVM_CLI_PATH by CMake)
// through its knowledge-store options, pinning the documented exit codes:
// 0 success, 2 usage error, 3 file I/O error.  The built-in demo scenario
// keeps the test self-contained — no program files needed.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include <sys/wait.h>

namespace {

/// Runs evm_cli with \p Args (built-in demo mode), returning its exit code.
int runCli(const std::string &Args) {
  std::string Cmd =
      std::string(EVM_CLI_PATH) + " " + Args + " >/dev/null 2>&1";
  int Rc = std::system(Cmd.c_str());
  return WIFEXITED(Rc) ? WEXITSTATUS(Rc) : -1;
}

std::string tmpStore(const char *Name) {
  return ::testing::TempDir() + "evm_cli_test_" + Name;
}

bool fileExists(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (F)
    std::fclose(F);
  return F != nullptr;
}

} // namespace

TEST(StoreCliTest, ColdThenWarmRunSucceedAndPersist) {
  std::string Path = tmpStore("roundtrip.store");
  std::remove(Path.c_str());
  EXPECT_EQ(runCli("--store=" + Path), 0); // cold start, creates the store
  EXPECT_TRUE(fileExists(Path));
  EXPECT_EQ(runCli("--store=" + Path), 0); // warm start, rewrites it
  EXPECT_TRUE(fileExists(Path));
  std::remove(Path.c_str());
}

TEST(StoreCliTest, ReadonlyNeverWrites) {
  std::string Path = tmpStore("readonly.store");
  std::remove(Path.c_str());
  EXPECT_EQ(runCli("--store=" + Path + " --store-readonly"), 0);
  EXPECT_FALSE(fileExists(Path)); // cold start, nothing saved
}

TEST(StoreCliTest, ResetStartsCold) {
  std::string Path = tmpStore("reset.store");
  std::remove(Path.c_str());
  ASSERT_EQ(runCli("--store=" + Path), 0);
  ASSERT_TRUE(fileExists(Path));
  EXPECT_EQ(runCli("--store=" + Path + " --store-reset"), 0);
  EXPECT_TRUE(fileExists(Path)); // recreated by the post-run checkpoint
  std::remove(Path.c_str());
}

TEST(StoreCliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(runCli("--store-readonly"), 2); // needs --store
  EXPECT_EQ(runCli("--store-reset"), 2);
  std::string Path = tmpStore("conflict.store");
  EXPECT_EQ(runCli("--store=" + Path + " --store-readonly --store-reset"), 2);
  EXPECT_FALSE(fileExists(Path));
}

TEST(StoreCliTest, UnreadableStoreExitsThree) {
  // A directory opens but cannot be read as a file -> I/O error, not a
  // cold start (silently losing a store the user pointed at is worse than
  // failing loudly).
  EXPECT_EQ(runCli("--store=" + ::testing::TempDir()), 3);
}

TEST(StoreCliTest, UnwritableStoreExitsThree) {
  // Load finds nothing (cold start), but the final checkpoint cannot be
  // written.
  EXPECT_EQ(runCli("--store=/nonexistent-dir/evm_cli_test.store"), 3);
}

//===----------------------------------------------------------------------===//
// Fleet-mode flags (the fleet itself is covered in test_fleet.cpp; here we
// pin the CLI contract: exit codes, flag forms, and JSON-only stdout).
//===----------------------------------------------------------------------===//

TEST(FleetCliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(runCli("--fleet=0"), 2);             // needs >= 1 tenant
  EXPECT_EQ(runCli("--fleet"), 2);               // missing value
  EXPECT_EQ(runCli("--fleet=2 --threads=0"), 2); // needs >= 1 thread
  EXPECT_EQ(runCli("--threads=2"), 2);           // fleet options need --fleet
  EXPECT_EQ(runCli("--fleet=2 --fleet-workloads=nosuch"), 2);
  EXPECT_EQ(runCli("--fleet=2 --store=" + tmpStore("fleet.store")), 2);
}

TEST(FleetCliTest, BothFlagFormsWorkAndAgree) {
  // `--opt=V` and `--opt V` are the same flag; identical fleets must emit
  // identical aggregate JSON on stdout.
  std::string OutA = tmpStore("fleet_eq.json");
  std::string OutB = tmpStore("fleet_sp.json");
  ASSERT_EQ(runCli("--fleet=2 --fleet-runs=2 --fleet-out=" + OutA), 0);
  ASSERT_EQ(runCli("--fleet 2 --fleet-runs 2 --fleet-out " + OutB), 0);
  std::ifstream A(OutA), B(OutB);
  std::string TextA((std::istreambuf_iterator<char>(A)),
                    std::istreambuf_iterator<char>());
  std::string TextB((std::istreambuf_iterator<char>(B)),
                    std::istreambuf_iterator<char>());
  EXPECT_FALSE(TextA.empty());
  EXPECT_EQ(TextA, TextB);
  std::remove(OutA.c_str());
  std::remove(OutB.c_str());
}

TEST(FleetCliTest, UnwritableShardDirExitsThree) {
  EXPECT_EQ(runCli("--fleet=1 --fleet-runs=1 "
                   "--shard-dir=/nonexistent-dir/shards"),
            3);
}
