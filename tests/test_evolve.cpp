//===- tests/test_evolve.cpp - Strategies, models, the evolvable VM -------==//

#include "evolve/EvolvableVM.h"
#include "evolve/EvolvePolicy.h"
#include "evolve/ModelBuilder.h"
#include "evolve/Repository.h"
#include "evolve/Strategy.h"

#include "TestHelpers.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace evm;
using namespace evm::evolve;
using vm::MethodStats;
using vm::OptLevel;
using vm::TimingModel;
using xicl::Feature;
using xicl::FeatureVector;

namespace {

MethodStats statsWithSamples(uint64_t Samples, const TimingModel &TM,
                             OptLevel RanAt = OptLevel::Baseline) {
  MethodStats S;
  S.Samples = Samples;
  S.CyclesByLevel[vm::levelIndex(RanAt)] = Samples * TM.SampleIntervalCycles;
  return S;
}

FeatureVector fvOf(double Size) {
  FeatureVector FV;
  FV.append(Feature::numeric("size", Size));
  return FV;
}

} // namespace

//===----------------------------------------------------------------------===//
// Strategy and accuracy metric
//===----------------------------------------------------------------------===//

TEST(StrategyTest, LevelForOutOfRangeIsBaseline) {
  MethodLevelStrategy S;
  S.Levels = {OptLevel::O2};
  EXPECT_EQ(S.levelFor(0), OptLevel::O2);
  EXPECT_EQ(S.levelFor(9), OptLevel::Baseline);
}

TEST(StrategyTest, AccuracyIsTimeWeighted) {
  // Paper formula: sum of T_m over correct methods / total.
  TimingModel TM;
  MethodLevelStrategy Pred, Ideal;
  Pred.Levels = {OptLevel::O2, OptLevel::O0, OptLevel::Baseline};
  Ideal.Levels = {OptLevel::O2, OptLevel::O1, OptLevel::Baseline};
  std::vector<MethodStats> Profile = {statsWithSamples(90, TM),
                                      statsWithSamples(10, TM),
                                      statsWithSamples(0, TM)};
  // Correct on m0 (90 samples) and m2 (0 samples); wrong on m1 (10).
  EXPECT_DOUBLE_EQ(predictionAccuracy(Pred, Ideal, Profile), 0.9);
}

TEST(StrategyTest, EmptyProfileScoresOne) {
  MethodLevelStrategy Pred, Ideal;
  Pred.Levels = {OptLevel::O0};
  Ideal.Levels = {OptLevel::O2};
  std::vector<MethodStats> Profile = {MethodStats()};
  EXPECT_DOUBLE_EQ(predictionAccuracy(Pred, Ideal, Profile), 1.0);
}

TEST(StrategyTest, IdealStrategyFromProfile) {
  TimingModel TM;
  std::vector<MethodStats> Profile = {
      statsWithSamples(0, TM),    // never ran -> Baseline
      statsWithSamples(2, TM),    // brief -> low tier
      statsWithSamples(2000, TM), // hot -> O2
  };
  std::vector<size_t> Sizes = {50, 50, 50};
  MethodLevelStrategy Ideal = idealStrategyFromProfile(TM, Profile, Sizes);
  EXPECT_EQ(Ideal.Levels[0], OptLevel::Baseline);
  EXPECT_NE(Ideal.Levels[1], OptLevel::Baseline);
  EXPECT_EQ(Ideal.Levels[2], OptLevel::O2);
  EXPECT_LE(vm::levelIndex(Ideal.Levels[1]), vm::levelIndex(Ideal.Levels[2]));
}

TEST(StrategyTest, StrRendering) {
  MethodLevelStrategy S;
  S.Levels = {OptLevel::Baseline, OptLevel::O2};
  EXPECT_EQ(S.str(), "m0:-1 m1:2");
}

//===----------------------------------------------------------------------===//
// EvolvePolicy
//===----------------------------------------------------------------------===//

TEST(EvolvePolicyTest, AppliesRightAfterBaseline) {
  MethodLevelStrategy S;
  S.Levels = {OptLevel::O1, OptLevel::Baseline};
  EvolvePolicy P(S);
  vm::MethodRuntimeInfo Info;
  Info.Id = 0;
  EXPECT_EQ(*P.onFirstInvocation(Info), OptLevel::O1);
  Info.Id = 1;
  EXPECT_FALSE(P.onFirstInvocation(Info).has_value());
  // No reactive decisions at sample time.
  EXPECT_FALSE(P.onSample(Info).has_value());
}

//===----------------------------------------------------------------------===//
// ModelBuilder
//===----------------------------------------------------------------------===//

TEST(ModelBuilderTest, NoPredictionBeforeRebuild) {
  ModelBuilder MB(2);
  EXPECT_FALSE(MB.predict(fvOf(1)).has_value());
}

TEST(ModelBuilderTest, LearnsSizeThresholdPerMethod) {
  ModelBuilder MB(2);
  // Method 0: O2 when size >= 50; method 1: always baseline.
  for (int I = 0; I != 30; ++I) {
    double Size = I * 4;
    MethodLevelStrategy Ideal;
    Ideal.Levels = {Size >= 50 ? OptLevel::O2 : OptLevel::O0,
                    OptLevel::Baseline};
    MB.addRun(fvOf(Size), Ideal);
  }
  MB.rebuild();
  auto Small = MB.predict(fvOf(10));
  auto Big = MB.predict(fvOf(110));
  ASSERT_TRUE(Small.has_value());
  ASSERT_TRUE(Big.has_value());
  EXPECT_EQ(Small->Levels[0], OptLevel::O0);
  EXPECT_EQ(Big->Levels[0], OptLevel::O2);
  EXPECT_EQ(Small->Levels[1], OptLevel::Baseline);
  EXPECT_EQ(Big->Levels[1], OptLevel::Baseline);
}

TEST(ModelBuilderTest, ConstantMethodsUseConstantModel) {
  ModelBuilder MB(1);
  for (int I = 0; I != 5; ++I) {
    MethodLevelStrategy Ideal;
    Ideal.Levels = {OptLevel::O1};
    MB.addRun(fvOf(I), Ideal);
  }
  MB.rebuild();
  PredictionStats Stats;
  auto P = MB.predict(fvOf(99), &Stats);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Levels[0], OptLevel::O1);
  EXPECT_EQ(Stats.Trees, 0u); // constant predictor, no tree walk
}

TEST(ModelBuilderTest, UsedFeatureNamesReflectTrees) {
  ModelBuilder MB(1);
  for (int I = 0; I != 30; ++I) {
    FeatureVector FV = fvOf(I * 3);
    FV.append(Feature::numeric("-q.val", 0)); // constant noise feature
    MethodLevelStrategy Ideal;
    Ideal.Levels = {I * 3 >= 40 ? OptLevel::O2 : OptLevel::O0};
    MB.addRun(FV, Ideal);
  }
  MB.rebuild();
  auto Used = MB.usedFeatureNames();
  EXPECT_TRUE(Used.count("size"));
  EXPECT_FALSE(Used.count("-q.val"));
  EXPECT_EQ(MB.numRawFeatures(), 2u);
}

TEST(ModelBuilderTest, PredictionStatsMeterWork) {
  ModelBuilder MB(1);
  for (int I = 0; I != 30; ++I) {
    MethodLevelStrategy Ideal;
    Ideal.Levels = {I % 2 ? OptLevel::O0 : OptLevel::O2};
    MB.addRun(fvOf(I), Ideal);
  }
  MB.rebuild();
  PredictionStats Stats;
  MB.predict(fvOf(3), &Stats);
  EXPECT_EQ(Stats.Trees, 1u);
  EXPECT_GT(Stats.TreeNodesVisited, 0u);
  EXPECT_GT(Stats.toCycles(), 0u);
}

//===----------------------------------------------------------------------===//
// Repository (Rep baseline)
//===----------------------------------------------------------------------===//

TEST(RepositoryTest, EmptyRepositoryYieldsEmptyStrategy) {
  TimingModel TM;
  ProfileRepository Repo(TM);
  EXPECT_TRUE(Repo.deriveStrategy({100, 100}).empty());
}

TEST(RepositoryTest, HotMethodGetsEarlyHighTrigger) {
  TimingModel TM;
  ProfileRepository Repo(TM);
  for (int Run = 0; Run != 5; ++Run) {
    std::vector<MethodStats> Profile = {statsWithSamples(500, TM),
                                        statsWithSamples(0, TM)};
    Repo.addRun(Profile);
  }
  RepStrategy S = Repo.deriveStrategy({80, 80});
  ASSERT_EQ(S.PerMethod.size(), 2u);
  ASSERT_EQ(S.PerMethod[0].size(), 1u);
  EXPECT_EQ(S.PerMethod[0][0].Level, OptLevel::O2);
  EXPECT_LE(S.PerMethod[0][0].SampleCount, 8u); // fires early
  EXPECT_TRUE(S.PerMethod[1].empty()); // cold method: no trigger
}

TEST(RepositoryTest, ShortMethodsGetNoTrigger) {
  TimingModel TM;
  ProfileRepository Repo(TM);
  std::vector<MethodStats> Profile = {statsWithSamples(1, TM)};
  Repo.addRun(Profile);
  RepStrategy S = Repo.deriveStrategy({3000});
  // One sample of a huge method never pays for optimized compilation.
  EXPECT_TRUE(S.PerMethod[0].empty());
}

TEST(RepositoryTest, MixedHistoryAverages) {
  TimingModel TM;
  ProfileRepository Repo(TM);
  // Method hot in half the runs, idle in the others.
  for (int Run = 0; Run != 10; ++Run) {
    std::vector<MethodStats> Profile = {
        statsWithSamples(Run % 2 ? 400 : 0, TM)};
    Repo.addRun(Profile);
  }
  RepStrategy S = Repo.deriveStrategy({80});
  ASSERT_FALSE(S.PerMethod[0].empty());
  // The trigger guards against the idle runs: it cannot be k=0, and the
  // chosen level reflects the average benefit.
  EXPECT_GE(S.PerMethod[0][0].SampleCount, 1u);
}

TEST(RepPolicyTest, FiresExactlyAtTriggerCount) {
  RepStrategy S;
  S.PerMethod = {{RepTrigger{3, OptLevel::O1}}};
  RepPolicy P(S);
  vm::MethodRuntimeInfo Info;
  Info.Id = 0;
  Info.Level = OptLevel::Baseline;
  Info.Samples = 2;
  EXPECT_FALSE(P.onSample(Info).has_value());
  Info.Samples = 3;
  EXPECT_EQ(*P.onSample(Info), OptLevel::O1);
  Info.Samples = 4;
  EXPECT_FALSE(P.onSample(Info).has_value());
}

TEST(RepPolicyTest, CompilationBoundRespected) {
  RepStrategy S;
  S.PerMethod = {{RepTrigger{1, OptLevel::O0}}};
  RepPolicy P(S, /*CompilationBound=*/0);
  vm::MethodRuntimeInfo Info;
  Info.Id = 0;
  Info.Samples = 1;
  EXPECT_FALSE(P.onSample(Info).has_value());
}

TEST(RepPolicyTest, NeverDowngrades) {
  RepStrategy S;
  S.PerMethod = {{RepTrigger{1, OptLevel::O0}}};
  RepPolicy P(S);
  vm::MethodRuntimeInfo Info;
  Info.Id = 0;
  Info.Samples = 1;
  Info.Level = OptLevel::O2;
  EXPECT_FALSE(P.onSample(Info).has_value());
}

//===----------------------------------------------------------------------===//
// EvolvableVM end-to-end (Fig. 7 loop)
//===----------------------------------------------------------------------===//

namespace {

/// A micro-application for end-to-end learning: main(chunks) drives a hot
/// chunk method; the input (chunk count) arrives via a numeric operand.
struct MicroApp {
  bc::Module Module;
  xicl::XFMethodRegistry Registry;
  xicl::FileStore Files;
  EvolveConfig Config;

  MicroApp() {
    Module = test::assemble(test::programCorpus()[6].second); // chunked_work
    Config.MaxCyclesPerRun = 1ULL << 42;
  }

  EvolvableVM makeVM() {
    return EvolvableVM(Module,
                       "operand {position=1; type=num; attr=val}\n",
                       &Registry, &Files, Config);
  }

  static std::string cmdline(int64_t Chunks) {
    return "micro " + std::to_string(Chunks);
  }
  static std::vector<bc::Value> args(int64_t Chunks) {
    return {bc::Value::makeInt(Chunks)};
  }
};

} // namespace

TEST(EvolvableVMTest, ConfidenceRampsAndPredictionStarts) {
  MicroApp App;
  EvolvableVM VM = App.makeVM();
  bool SawGuardedRun = false, SawPredictedRun = false;
  double LastConf = 0;
  Rng R(11);
  for (int Run = 0; Run != 12; ++Run) {
    int64_t Chunks = R.nextInt(200, 1200);
    auto Rec = VM.runOnce(MicroApp::cmdline(Chunks), MicroApp::args(Chunks));
    ASSERT_TRUE(static_cast<bool>(Rec)) << Rec.getError().message();
    if (!Rec->UsedPrediction)
      SawGuardedRun = true;
    else
      SawPredictedRun = true;
    LastConf = Rec->ConfidenceAfter;
  }
  EXPECT_TRUE(SawGuardedRun);   // early runs fall back to the default
  EXPECT_TRUE(SawPredictedRun); // later runs predict proactively
  EXPECT_GT(LastConf, 0.7);
  EXPECT_EQ(VM.numRuns(), 12u);
}

TEST(EvolvableVMTest, PredictedRunsBeatDefaultOnRepeatInput) {
  MicroApp App;
  EvolvableVM VM = App.makeVM();
  // Warm up on one input until prediction engages, then compare.
  uint64_t FirstCycles = 0, LastCycles = 0;
  for (int Run = 0; Run != 8; ++Run) {
    auto Rec = VM.runOnce(MicroApp::cmdline(900), MicroApp::args(900));
    ASSERT_TRUE(static_cast<bool>(Rec));
    if (Run == 0)
      FirstCycles = Rec->Result.Cycles;
    LastCycles = Rec->Result.Cycles;
  }
  EXPECT_LT(LastCycles, FirstCycles);
}

TEST(EvolvableVMTest, SpecErrorFallsBackToDefault) {
  MicroApp App;
  EvolvableVM VM(App.Module, "option {bogus}\n", &App.Registry, &App.Files,
                 App.Config);
  EXPECT_FALSE(VM.specError().empty());
  auto Rec = VM.runOnce(MicroApp::cmdline(300), MicroApp::args(300));
  ASSERT_TRUE(static_cast<bool>(Rec));
  EXPECT_FALSE(Rec->UsedPrediction);
  EXPECT_FALSE(Rec->HadPrediction);
  EXPECT_DOUBLE_EQ(Rec->ConfidenceAfter, 0.0);
}

TEST(EvolvableVMTest, AccuracyReportedAgainstPosteriorIdeal) {
  MicroApp App;
  EvolvableVM VM = App.makeVM();
  VM.runOnce(MicroApp::cmdline(600), MicroApp::args(600));
  auto Rec = VM.runOnce(MicroApp::cmdline(600), MicroApp::args(600));
  ASSERT_TRUE(static_cast<bool>(Rec));
  EXPECT_TRUE(Rec->HadPrediction);
  EXPECT_GE(Rec->Accuracy, 0.0);
  EXPECT_LE(Rec->Accuracy, 1.0);
  // The posterior ideal marks the hot chunk method above baseline.
  EXPECT_NE(Rec->Ideal.Levels[1], OptLevel::Baseline);
}

TEST(EvolvableVMTest, ExtractionThrottleBoundsOverhead) {
  MicroApp App;
  App.Config.ExtractionCycleBound = 10;
  EvolvableVM VM = App.makeVM();
  auto Rec = VM.runOnce(MicroApp::cmdline(300), MicroApp::args(300));
  ASSERT_TRUE(static_cast<bool>(Rec));
  EXPECT_LE(Rec->ExtractionCycles, 10u);
  EXPECT_FALSE(Rec->UsedPrediction); // throttled runs use the default path
}

TEST(EvolvableVMTest, BadCommandLineSurfacesError) {
  MicroApp App;
  EvolvableVM VM(App.Module,
                 "option {name=-x; type=num; attr=val; has_arg=y}\n",
                 &App.Registry, &App.Files, App.Config);
  auto Rec = VM.runOnce("micro -zzz", MicroApp::args(10));
  EXPECT_FALSE(static_cast<bool>(Rec));
}

//===----------------------------------------------------------------------===//
// Guard modes (decayed accuracy vs cross-validation vs none)
//===----------------------------------------------------------------------===//

TEST(GuardModeTest, CrossValidationGuardOpensAfterLearning) {
  MicroApp App;
  App.Config.Guard = GuardMode::CrossValidation;
  EvolvableVM VM = App.makeVM();
  bool SawPrediction = false;
  Rng R(3);
  for (int Run = 0; Run != 12; ++Run) {
    int64_t Chunks = R.nextInt(200, 1200);
    auto Rec = VM.runOnce(MicroApp::cmdline(Chunks), MicroApp::args(Chunks));
    ASSERT_TRUE(static_cast<bool>(Rec));
    SawPrediction |= Rec->UsedPrediction;
    EXPECT_GE(Rec->CvConfidence, 0.0);
    EXPECT_LE(Rec->CvConfidence, 1.0);
  }
  EXPECT_TRUE(SawPrediction);
  EXPECT_GT(VM.cvConfidence(), 0.7);
}

TEST(GuardModeTest, AlwaysModePredictsFromSecondRun) {
  MicroApp App;
  App.Config.Guard = GuardMode::Always;
  EvolvableVM VM = App.makeVM();
  auto First = VM.runOnce(MicroApp::cmdline(400), MicroApp::args(400));
  ASSERT_TRUE(static_cast<bool>(First));
  EXPECT_FALSE(First->UsedPrediction); // no model exists yet
  auto Second = VM.runOnce(MicroApp::cmdline(500), MicroApp::args(500));
  ASSERT_TRUE(static_cast<bool>(Second));
  EXPECT_TRUE(Second->UsedPrediction); // unguarded: predicts immediately
}

TEST(GuardModeTest, CvAccuracyHighOnLearnableTask) {
  ModelBuilder MB(1);
  for (int I = 0; I != 40; ++I) {
    FeatureVector FV = fvOf(I * 10);
    MethodLevelStrategy Ideal;
    Ideal.Levels = {I * 10 >= 200 ? OptLevel::O2 : OptLevel::O0};
    MB.addRun(FV, Ideal);
  }
  MB.rebuild();
  Rng R(5);
  EXPECT_GT(MB.crossValidatedAccuracy(5, R), 0.85);
}

TEST(GuardModeTest, CvAccuracyLowOnRandomTask) {
  ModelBuilder MB(1);
  Rng Noise(9);
  for (int I = 0; I != 40; ++I) {
    FeatureVector FV = fvOf(Noise.nextDouble(0, 100));
    MethodLevelStrategy Ideal;
    Ideal.Levels = {Noise.nextBool(0.5) ? OptLevel::O2 : OptLevel::O0};
    MB.addRun(FV, Ideal);
  }
  MB.rebuild();
  Rng R(5);
  EXPECT_LT(MB.crossValidatedAccuracy(5, R), 0.8);
}

TEST(GuardModeTest, CvAccuracyNeedsTwoRuns) {
  ModelBuilder MB(1);
  Rng R(5);
  EXPECT_DOUBLE_EQ(MB.crossValidatedAccuracy(5, R), 0.0);
  MethodLevelStrategy Ideal;
  Ideal.Levels = {OptLevel::O0};
  MB.addRun(fvOf(1), Ideal);
  EXPECT_DOUBLE_EQ(MB.crossValidatedAccuracy(5, R), 0.0);
}

TEST(SafetyNetTest, DisabledNetKeepsPurePredictionSemantics) {
  MicroApp App;
  App.Config.ReactiveSafetyNet = false;
  EvolvableVM VM = App.makeVM();
  for (int Run = 0; Run != 6; ++Run) {
    auto Rec = VM.runOnce(MicroApp::cmdline(700), MicroApp::args(700));
    ASSERT_TRUE(static_cast<bool>(Rec));
  }
  // Still learns and predicts; semantics unchanged.
  EXPECT_GT(VM.confidence(), 0.7);
}
