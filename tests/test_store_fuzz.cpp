//===- tests/test_store_fuzz.cpp - Loader robustness under corruption -----==//
//
// Exhaustive small-scale fuzzing of the knowledge-store loader: every
// single-bit flip and every truncation of a valid store must decode
// without crashing, and whatever survives must warm-start a VM whose
// execution semantics are untouched (damage only ever degrades toward
// cold start).  Run the suite with -DEVM_SANITIZE=address or =undefined
// to turn these passes into memory-safety checks as well.
//
//===----------------------------------------------------------------------===//

#include "store/KnowledgeStore.h"

#include "evolve/EvolvableVM.h"
#include "ml/Dataset.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <string>

using namespace evm;
using namespace evm::store;
using xicl::Feature;
using xicl::FeatureVector;

namespace {

/// A populated store document rendered to text (every section present).
std::string sampleStoreText() {
  KnowledgeStore KS;
  KS.Header.Generation = 2;
  KS.Header.App = "fuzz";
  KS.HasConfidence = true;
  KS.Confidence = 0.875;
  KS.CvConfidence = 0.5;
  KS.RunsSeen = 6;
  for (int I = 0; I != 6; ++I) {
    FeatureVector FV;
    FV.append(Feature::numeric("-n.val", I * 1.25));
    FV.append(Feature::categorical("mode", I % 2 ? "big" : "small"));
    KS.Runs.push_back({FV, {I % 3, (I + 1) % 3}});
  }
  StoredMethodModel M0;
  M0.Constant = false;
  M0.Tree = "N0:2.5(L0)(L2)";
  M0.Gen = 2;
  StoredMethodModel M1;
  M1.Constant = true;
  M1.ConstantLabel = 1;
  M1.Gen = 1;
  KS.Models = {M0, M1};
  KS.RepRuns = {{5, 100}, {6, 99}};
  return KS.serialize();
}

/// The chunked_work micro-application from test_evolve, enough to host a
/// warm start.
struct MicroApp {
  bc::Module Module;
  xicl::XFMethodRegistry Registry;
  xicl::FileStore Files;
  evolve::EvolveConfig Config;

  MicroApp() {
    Module = test::assemble(test::programCorpus()[6].second);
    Config.MaxCyclesPerRun = 1ULL << 42;
  }

  evolve::EvolvableVM makeVM() {
    return evolve::EvolvableVM(Module,
                               "operand {position=1; type=num; attr=val}\n",
                               &Registry, &Files, Config);
  }
};

} // namespace

TEST(StoreFuzzTest, EveryBitFlipDecodesWithoutCrashing) {
  const std::string Valid = sampleStoreText();
  for (size_t I = 0; I != Valid.size(); ++I) {
    std::string Mutated = Valid;
    Mutated[I] = static_cast<char>(Mutated[I] ^ (1u << (I % 8)));
    StoreReadStats Stats;
    KnowledgeStore KS = KnowledgeStore::deserialize(Mutated, Stats);
    // Whatever survived must itself re-serialize and re-parse cleanly —
    // a recovered store is never a corrupt store.
    StoreReadStats Again;
    KnowledgeStore Back = KnowledgeStore::deserialize(KS.serialize(), Again);
    EXPECT_TRUE(Again.clean()) << "flip at byte " << I;
    EXPECT_EQ(Back.Runs.size(), KS.Runs.size());
  }
}

TEST(StoreFuzzTest, EveryTruncationDecodesWithoutCrashing) {
  const std::string Valid = sampleStoreText();
  for (size_t Len = 0; Len <= Valid.size(); ++Len) {
    std::string Cut = Valid.substr(0, Len);
    StoreReadStats Stats;
    KnowledgeStore KS = KnowledgeStore::deserialize(Cut, Stats);
    if (Len < Valid.size()) {
      EXPECT_FALSE(Stats.clean()) << "truncation at " << Len;
    }
    StoreReadStats Again;
    KnowledgeStore::deserialize(KS.serialize(), Again);
    EXPECT_TRUE(Again.clean()) << "truncation at " << Len;
  }
}

TEST(StoreFuzzTest, GarbageInputsYieldEmptyStores) {
  const char *Garbage[] = {
      "",
      "\n",
      "not json at all\n",
      "{\"magic\":\"wrong\"}\n",
      "{\"magic\":\"evmstore\"}",                // no newline, no version
      "{\"section\":\"runs\",\"lines\":2,\"crc\":0}\n{}\n{}\n",
      "\x00\x01\x02\xff\xfe",
  };
  for (const char *Text : Garbage) {
    StoreReadStats Stats;
    KnowledgeStore KS = KnowledgeStore::deserialize(Text, Stats);
    EXPECT_TRUE(KS.empty()) << "input: " << Text;
    EXPECT_FALSE(Stats.HeaderValid) << "input: " << Text;
  }
}

TEST(StoreFuzzTest, CorruptLoadCountsAndFallsBackToColdStart) {
  MicroApp App;

  // Baseline: a cold VM's first-run behaviour.
  evolve::EvolvableVM Cold = App.makeVM();
  auto ColdRec = Cold.runOnce("micro 600", {bc::Value::makeInt(600)});
  ASSERT_TRUE(static_cast<bool>(ColdRec));

  // Corrupt one payload byte inside a section (past the header line).
  std::string Text = sampleStoreText();
  size_t Payload = Text.find("\"conf\"");
  ASSERT_NE(Payload, std::string::npos);
  Text[Payload + 2] ^= 0x20;
  StoreReadStats Stats;
  KnowledgeStore Damaged = KnowledgeStore::deserialize(Text, Stats);
  EXPECT_FALSE(Stats.clean());

  evolve::EvolvableVM Warm = App.makeVM();
  Warm.warmStart(Damaged, &Stats);
  EXPECT_EQ(Warm.storeStats().Loads, 1u);
  EXPECT_EQ(Warm.storeStats().Corrupt, 1u); // the store.corrupt metric
  EXPECT_GT(Warm.storeStats().SectionsDropped, 0u);

  // Execution semantics are unchanged by damaged knowledge: the labels in
  // the fuzz store target a different module, so the rows are skipped and
  // the first run is cycle-identical to the cold VM's.
  auto WarmRec = Warm.runOnce("micro 600", {bc::Value::makeInt(600)});
  ASSERT_TRUE(static_cast<bool>(WarmRec));
  EXPECT_EQ(WarmRec->Result.Cycles, ColdRec->Result.Cycles);

  // The recovery shows up in the run's metrics snapshot by name.
  EXPECT_EQ(WarmRec->Result.Metrics.counter("store.corrupt"), 1u);
  EXPECT_EQ(WarmRec->Result.Metrics.counter("store.loads"), 1u);
  EXPECT_GT(WarmRec->Result.Metrics.counter("store.sections.dropped"), 0u);
  EXPECT_EQ(ColdRec->Result.Metrics.counter("store.corrupt"), 0u);
}

TEST(StoreFuzzTest, HostileFieldValuesAreClamped) {
  // NaN confidence, out-of-range labels, and absurd method indices must
  // neither crash nor poison the VM.
  std::string Hostile =
      "{\"magic\":\"evmstore\",\"version\":1,\"generation\":1,"
      "\"app\":\"x\"}\n"
      "{\"magic\":\"evmstore.end\",\"sections\":0}\n";
  KnowledgeStore KS;
  StoreReadStats Stats;
  KS = KnowledgeStore::deserialize(Hostile, Stats);
  EXPECT_TRUE(Stats.clean());

  KS.HasConfidence = true;
  KS.Confidence = std::numeric_limits<double>::quiet_NaN();
  KS.CvConfidence = -5;
  KS.RunsSeen = 1;
  FeatureVector FV;
  FV.append(Feature::numeric("-n.val", 1));
  KS.Runs.push_back({FV, {999, -999}});

  MicroApp App;
  evolve::EvolvableVM VM = App.makeVM();
  evolve::WarmStartResult R = VM.warmStart(KS, &Stats);
  EXPECT_TRUE(R.Applied);
  double C = VM.confidence();
  EXPECT_GE(C, 0.0);
  EXPECT_LE(C, 1.0);
  auto Rec = VM.runOnce("micro 500", {bc::Value::makeInt(500)});
  EXPECT_TRUE(static_cast<bool>(Rec));
}
