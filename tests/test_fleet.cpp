//===- tests/test_fleet.cpp - Fleet determinism invariants ----------------==//
//
// The fleet's core contract: thread count is invisible in the results.
// These tests pin (a) byte-identical aggregate JSON for T in {1,2,4,8},
// (b) byte-identical persisted global stores across T, (c) tenant
// equivalence with the serial ScenarioRunner path, and (d) shard-merge
// permutation invariance (the generation-striping guarantee).
//
//===----------------------------------------------------------------------===//

#include "harness/Fleet.h"

#include "store/KnowledgeStore.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include <dirent.h>
#include <sys/stat.h>

using namespace evm;
using namespace evm::harness;

namespace {

constexpr uint64_t Seed = 20090301;

/// A fresh per-test shard directory under the gtest temp root.
std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "evm_fleet_" + Name;
  // Clear leftovers from a previous run of the same test.
  if (DIR *D = opendir(Dir.c_str())) {
    while (const dirent *E = readdir(D)) {
      std::string File = E->d_name;
      if (File != "." && File != "..")
        std::remove((Dir + "/" + File).c_str());
    }
    closedir(D);
  }
  mkdir(Dir.c_str(), 0777);
  return Dir;
}

std::string slurp(const std::string &Path) {
  std::string Out;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Out;
  char Buf[64 << 10];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return Out;
}

FleetConfig smallFleet(size_t Threads, const std::string &ShardDir) {
  FleetConfig FC;
  FC.NumTenants = 4;
  FC.NumThreads = Threads;
  FC.RunsPerTenant = 5;
  FC.Seed = Seed;
  FC.ShardDir = ShardDir;
  FC.MergeEvery = 2;
  FC.CapturePhases = false; // not under test here; saves a little time
  return FC;
}

store::KnowledgeStore load(const std::string &Path) {
  store::KnowledgeStore KS;
  store::StoreReadStats Stats;
  EXPECT_EQ(store::loadStoreFile(Path, KS, Stats), store::LoadStatus::Loaded);
  EXPECT_TRUE(Stats.clean());
  return KS;
}

} // namespace

TEST(FleetTest, AggregateJsonByteIdenticalAcrossThreadCounts) {
  // Sharded fleets: each thread count gets its own fresh directory so the
  // comparison is launch-vs-launch, not launch-vs-warm-start.
  std::string Baseline;
  std::string BaselineStore;
  for (size_t T : {1, 2, 4, 8}) {
    std::string Dir = freshDir("identity_t" + std::to_string(T));
    FleetRunner Runner(smallFleet(T, Dir));
    std::string Json = Runner.run().renderJson();
    std::string Global =
        slurp(FleetRunner::globalStorePath(Dir, "Route"));
    EXPECT_FALSE(Global.empty());
    if (Baseline.empty()) {
      Baseline = Json;
      BaselineStore = Global;
      continue;
    }
    // Byte identity, not structural equality: the JSON is the contract.
    EXPECT_EQ(Json, Baseline) << "threads=" << T;
    EXPECT_EQ(Global, BaselineStore) << "threads=" << T;
  }
}

TEST(FleetTest, StorelessFleetMatchesSerialScenarioRunner) {
  // Without a shard dir a tenant is exactly ScenarioRunner::runEvolve over
  // its own deterministic order — the fleet adds no hidden coupling.
  FleetConfig FC = smallFleet(2, "");
  FleetRunner Runner(FC);
  FleetResult R = Runner.run();
  ASSERT_EQ(R.Tenants.size(), FC.NumTenants);

  for (size_t I = 0; I != FC.NumTenants; ++I) {
    wl::Workload W = wl::buildRouteExample(FC.Seed, 24);
    ExperimentConfig EC = FC.Experiment;
    EC.Seed = FC.Seed;
    ScenarioRunner Serial(W, EC);
    ScenarioResult Expect =
        Serial.runEvolve(Serial.makeInputOrder(I + 1, FC.RunsPerTenant));

    const TenantResult &T = R.Tenants[I];
    EXPECT_EQ(T.TenantId, I);
    EXPECT_EQ(T.Launches, 0u); // storeless: no checkpoints
    ASSERT_EQ(T.Result.Runs.size(), Expect.Runs.size());
    for (size_t J = 0; J != Expect.Runs.size(); ++J) {
      EXPECT_EQ(T.Result.Runs[J].InputIndex, Expect.Runs[J].InputIndex);
      EXPECT_EQ(T.Result.Runs[J].Cycles, Expect.Runs[J].Cycles);
      EXPECT_EQ(T.Result.Runs[J].UsedPrediction,
                Expect.Runs[J].UsedPrediction);
    }
    EXPECT_DOUBLE_EQ(T.Result.FinalConfidence, Expect.FinalConfidence);
    EXPECT_DOUBLE_EQ(T.Result.MeanAccuracy, Expect.MeanAccuracy);
  }
}

TEST(FleetTest, TenantInputStreamsAreDistinct) {
  FleetConfig FC = smallFleet(1, "");
  FC.RunsPerTenant = 8;
  FleetResult R = FleetRunner(FC).run();
  // Different order sub-seeds per tenant: at least one pair of tenants
  // must see different input sequences (all-equal would mean the fleet is
  // replaying one user four times).
  bool AnyDiffer = false;
  for (size_t I = 1; I != R.Tenants.size() && !AnyDiffer; ++I)
    for (size_t J = 0; J != FC.RunsPerTenant && !AnyDiffer; ++J)
      AnyDiffer = R.Tenants[I].Result.Runs[J].InputIndex !=
                  R.Tenants[0].Result.Runs[J].InputIndex;
  EXPECT_TRUE(AnyDiffer);
}

TEST(FleetTest, ShardGenerationsAreStriped) {
  std::string Dir = freshDir("striping");
  FleetConfig FC = smallFleet(2, Dir);
  FleetResult R = FleetRunner(FC).run();
  EXPECT_EQ(R.ShardsMerged, FC.NumTenants);
  EXPECT_EQ(R.GlobalStores, 1u);

  // Every shard's generation lives in its own tenant stripe, so no two
  // shards can tie under the newest-wins merge.
  std::vector<uint64_t> Stripes;
  for (size_t I = 0; I != FC.NumTenants; ++I) {
    store::KnowledgeStore KS = load(FleetRunner::shardPath(Dir, I));
    uint64_t Stripe = KS.Header.Generation / FleetRunner::GenerationStride;
    EXPECT_EQ(Stripe, I + 1) << "shard " << I;
    Stripes.push_back(Stripe);
  }
  std::sort(Stripes.begin(), Stripes.end());
  EXPECT_TRUE(std::adjacent_find(Stripes.begin(), Stripes.end()) ==
              Stripes.end());
}

TEST(FleetTest, ShardMergeIsPermutationInvariant) {
  std::string Dir = freshDir("permute");
  FleetConfig FC = smallFleet(2, Dir);
  FleetRunner(FC).run();

  std::vector<store::KnowledgeStore> Shards;
  for (size_t I = 0; I != FC.NumTenants; ++I)
    Shards.push_back(load(FleetRunner::shardPath(Dir, I)));

  auto foldOrder = [&](const std::vector<size_t> &Order) {
    store::KnowledgeStore Acc;
    for (size_t I : Order)
      Acc = store::mergeStores(Acc, Shards[I]);
    return Acc.serialize();
  };

  std::string Canonical = foldOrder({0, 1, 2, 3});
  std::vector<size_t> Order = {0, 1, 2, 3};
  // All 24 permutations of 4 shards fold to the same bytes.
  while (std::next_permutation(Order.begin(), Order.end()))
    ASSERT_EQ(foldOrder(Order), Canonical)
        << Order[0] << Order[1] << Order[2] << Order[3];
}

TEST(FleetTest, SecondLaunchWarmStartsFromGlobalStore) {
  std::string Dir = freshDir("warmstart");
  FleetConfig FC = smallFleet(2, Dir);
  FleetResult First = FleetRunner(FC).run();
  store::KnowledgeStore Global1 =
      load(FleetRunner::globalStorePath(Dir, "Route"));
  EXPECT_GT(Global1.Runs.size(), 0u);

  // Same fleet again over the same directory: tenants warm-start from the
  // folded global knowledge, so early confidence can only improve and the
  // global store keeps growing generations.
  FleetResult Second = FleetRunner(FC).run();
  store::KnowledgeStore Global2 =
      load(FleetRunner::globalStorePath(Dir, "Route"));
  EXPECT_GT(Global2.Header.Generation, Global1.Header.Generation);
  double First0 = First.Tenants[0].Result.Runs[0].Confidence;
  double Second0 = Second.Tenants[0].Result.Runs[0].Confidence;
  EXPECT_GE(Second0, First0);
}
