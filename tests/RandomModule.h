//===- tests/RandomModule.h - Test shim over workloads/RandomProgram.h ----==//
//
// Part of the EVM project (CGO 2009 evolvable-VM reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin compatibility shim: the seeded random-module generator used by the
/// differential fuzzer and the pass property suites now lives in
/// src/workloads/RandomProgram.h (the open-world workload generator builds
/// on the same statement machinery).  Tests keep their historical
/// evm::test::generateRandomModule spelling through these aliases and never
/// reach into src internals directly.
///
//===----------------------------------------------------------------------===//

#ifndef EVM_TESTS_RANDOMMODULE_H
#define EVM_TESTS_RANDOMMODULE_H

#include "workloads/RandomProgram.h"

namespace evm {
namespace test {

using RandomModuleOptions = wl::RandomProgramOptions;

inline ErrorOr<bc::Module>
generateRandomModule(uint64_t Seed,
                     const RandomModuleOptions &O = RandomModuleOptions()) {
  return wl::generateRandomProgram(Seed, O);
}

} // namespace test
} // namespace evm

#endif // EVM_TESTS_RANDOMMODULE_H
