//===- tests/test_integration.cpp - Cross-module end-to-end behaviour -----==//
//
// The paper's headline claims, verified on small configurations:
//   * the evolvable VM learns across runs and overtakes the default,
//   * the discriminative guard suppresses immature/misleading predictions,
//   * input-specific prediction adapts where a single average strategy
//     cannot,
//   * interactive updateV/done retriggers prediction.
//
//===----------------------------------------------------------------------===//

#include "evolve/EvolvableVM.h"
#include "harness/Scenario.h"
#include "ml/Confidence.h"
#include "support/Statistics.h"
#include "xicl/RuntimeChannel.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace evm;

namespace {

constexpr uint64_t Seed = 77;

} // namespace

TEST(IntegrationTest, EvolveBeatsRepBeatsDefaultOnRoute) {
  wl::Workload W = wl::buildRouteExample(Seed, 30);
  harness::ExperimentConfig C;
  C.Seed = Seed;
  harness::ScenarioRunner Runner(W, C);
  auto Order = Runner.makeInputOrder(3, 30);
  harness::ScenarioResult Ev = Runner.runEvolve(Order);
  harness::ScenarioResult Rp = Runner.runRep(Order);

  // Post-warmup medians (drop the first third).
  auto Tail = [](const harness::ScenarioResult &R) {
    std::vector<double> S;
    for (size_t I = R.Runs.size() / 3; I != R.Runs.size(); ++I)
      S.push_back(R.Runs[I].SpeedupVsDefault);
    return median(S);
  };
  double EvMedian = Tail(Ev), RpMedian = Tail(Rp);
  EXPECT_GT(EvMedian, 1.0);
  EXPECT_GE(RpMedian, 0.98);
  EXPECT_GT(EvMedian, RpMedian - 0.02); // Evolve at least matches Rep
}

TEST(IntegrationTest, GuardPreventsEarlySlowdowns) {
  // During the warmup (no prediction), Evolve must track the default
  // closely: the guard forbids immature predictions from hurting.
  wl::Workload W = wl::buildWorkload("RayTracer", Seed);
  harness::ExperimentConfig C;
  C.Seed = Seed;
  harness::ScenarioRunner Runner(W, C);
  auto Order = Runner.makeInputOrder(1, 12);
  harness::ScenarioResult Ev = Runner.runEvolve(Order);
  for (const harness::RunMetrics &M : Ev.Runs) {
    if (M.UsedPrediction)
      continue;
    EXPECT_GT(M.SpeedupVsDefault, 0.97)
        << "guarded run fell behind the default";
  }
}

TEST(IntegrationTest, HighThresholdIsMoreConservative) {
  wl::Workload W = wl::buildRouteExample(Seed, 20);
  auto CountPredicted = [&](double Threshold) {
    harness::ExperimentConfig C;
    C.Seed = Seed;
    C.ConfidenceThreshold = Threshold;
    harness::ScenarioRunner Runner(W, C);
    auto Order = Runner.makeInputOrder(1, 16);
    harness::ScenarioResult Ev = Runner.runEvolve(Order);
    size_t N = 0;
    for (const harness::RunMetrics &M : Ev.Runs)
      N += M.UsedPrediction ? 1 : 0;
    return N;
  };
  EXPECT_GE(CountPredicted(0.5), CountPredicted(0.9));
}

TEST(IntegrationTest, InteractiveChannelRetriggersPrediction) {
  // Model the paper's interactive-application flow: the app passes new
  // feature values at an interactive point, done() re-predicts.
  xicl::FeatureChannel Channel;
  ml::ConfidenceTracker Conf(0.7, 0.7);
  Conf.update(1.0);
  Conf.update(1.0); // confident

  int Predictions = 0;
  Channel.setDoneCallback([&](const xicl::FeatureVector &FV) {
    if (Conf.confident() && FV.indexOf("mquery.len") >= 0)
      ++Predictions;
  });

  Channel.updateV("mquery.len", xicl::Feature::numeric("", 12));
  Channel.done(); // first interactive point
  Channel.updateV("mquery.len", xicl::Feature::numeric("", 90));
  Channel.done(); // second interactive point
  EXPECT_EQ(Predictions, 2);
}

TEST(IntegrationTest, ModelsAreInputSpecificNotAveraged) {
  // Train the evolvable VM on two very different route inputs; its
  // predictions must differ per input (the paper's core contrast to Rep).
  wl::Workload W = wl::buildRouteExample(Seed, 2);
  // Make the two inputs extreme.
  W.Inputs[0].VmArgs = {bc::Value::makeInt(100), bc::Value::makeInt(300),
                        bc::Value::makeInt(1), bc::Value::makeInt(0)};
  W.Inputs[0].CommandLine = "route tiny";
  W.Inputs[0].Files = {{"tiny", [] {
                          xicl::FileInfo I;
                          I.Attributes["nodes"] = 100;
                          I.Attributes["edges"] = 300;
                          return I;
                        }()}};
  W.Inputs[1].VmArgs = {bc::Value::makeInt(4000), bc::Value::makeInt(20000),
                        bc::Value::makeInt(4), bc::Value::makeInt(0)};
  W.Inputs[1].CommandLine = "route -n 4 huge";
  W.Inputs[1].Files = {{"huge", [] {
                          xicl::FileInfo I;
                          I.Attributes["nodes"] = 4000;
                          I.Attributes["edges"] = 20000;
                          return I;
                        }()}};

  xicl::XFMethodRegistry Registry;
  W.registerMethods(Registry);
  xicl::FileStore Files;
  W.populateFileStore(Files);
  evolve::EvolveConfig EC;
  evolve::EvolvableVM VM(W.Module, W.XiclSpec, &Registry, &Files, EC);

  // Alternate the inputs for a while.
  for (int Run = 0; Run != 10; ++Run) {
    const wl::InputCase &In = W.Inputs[Run % 2];
    auto Rec = VM.runOnce(In.CommandLine, In.VmArgs);
    ASSERT_TRUE(static_cast<bool>(Rec)) << Rec.getError().message();
  }
  // Compare the model's strategies for the two inputs.
  xicl::XICLTranslator T(
      xicl::parseSpec(W.XiclSpec).takeValue(), &Registry, &Files);
  auto FVTiny = T.buildFVector(W.Inputs[0].CommandLine);
  auto FVHuge = T.buildFVector(W.Inputs[1].CommandLine);
  ASSERT_TRUE(static_cast<bool>(FVTiny));
  ASSERT_TRUE(static_cast<bool>(FVHuge));
  auto STiny = VM.model().predict(*FVTiny);
  auto SHuge = VM.model().predict(*FVHuge);
  ASSERT_TRUE(STiny.has_value());
  ASSERT_TRUE(SHuge.has_value());
  EXPECT_FALSE(*STiny == *SHuge)
      << "input-specific models collapsed to one strategy";
  // The huge input asks for at least as much optimization everywhere.
  int HigherSomewhere = 0;
  for (size_t M = 0; M != STiny->Levels.size(); ++M)
    if (vm::levelIndex(SHuge->Levels[M]) > vm::levelIndex(STiny->Levels[M]))
      ++HigherSomewhere;
  EXPECT_GT(HigherSomewhere, 0);
}

TEST(IntegrationTest, Fig7LoopMatchesPseudoCode) {
  // Trace the algorithm state across runs: conf starts 0; after each run
  // with a model, conf' = 0.3*conf + 0.7*acc.
  wl::Workload W = wl::buildRouteExample(Seed, 6);
  xicl::XFMethodRegistry Registry;
  W.registerMethods(Registry);
  xicl::FileStore Files;
  W.populateFileStore(Files);
  evolve::EvolveConfig EC;
  evolve::EvolvableVM VM(W.Module, W.XiclSpec, &Registry, &Files, EC);

  double Conf = 0;
  for (int Run = 0; Run != 6; ++Run) {
    const wl::InputCase &In = W.Inputs[Run % W.Inputs.size()];
    auto Rec = VM.runOnce(In.CommandLine, In.VmArgs);
    ASSERT_TRUE(static_cast<bool>(Rec));
    EXPECT_DOUBLE_EQ(Rec->ConfidenceBefore, Conf);
    if (Rec->HadPrediction)
      Conf = 0.3 * Conf + 0.7 * Rec->Accuracy;
    EXPECT_NEAR(Rec->ConfidenceAfter, Conf, 1e-12);
  }
}
