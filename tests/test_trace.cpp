//===- tests/test_trace.cpp - Tracing determinism and schema tests --------==//
//
// The tracing acceptance battery:
//
//   * two identical traced scenario replays (background workers on) produce
//     byte-identical JSONL traces and metrics snapshots;
//   * attaching an enabled recorder never changes virtual cycle counts
//     (recording is free on the modeled machine, so the tracing-disabled
//     and EVM_TRACING=OFF builds are cycle-identical by construction);
//   * the JSONL schema round-trips through parseJsonlTraceLine and only
//     contains known event kinds;
//   * the Chrome exporter emits the metadata and span events Perfetto
//     needs;
//   * the evm-trace reports (support/TraceAnalysis.h) render the expected
//     sections from a real trace.
//
//===----------------------------------------------------------------------===//

#include "harness/Scenario.h"
#include "support/TraceAnalysis.h"
#include "support/Trace.h"
#include "vm/AOS.h"
#include "vm/Engine.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <thread>

using namespace evm;

namespace {

constexpr uint64_t Seed = 20090301;

TraceMeta metaFor(const bc::Module &M) {
  TraceMeta Meta;
  Meta.MethodNames.resize(M.numFunctions());
  for (uint32_t F = 0; F != M.numFunctions(); ++F)
    Meta.MethodNames[F] = M.function(static_cast<bc::MethodId>(F)).Name;
  return Meta;
}

/// One full traced Evolve replay (workers on); returns the JSONL trace and
/// the last run's metrics JSON.
void runTracedScenario(std::string &JsonlOut, std::string &MetricsOut) {
  wl::Workload W = wl::buildWorkload("Mtrt", Seed);
  harness::ExperimentConfig C;
  C.Seed = Seed;
  C.Timing.NumCompileWorkers = 2;
  harness::ScenarioRunner Runner(W, C);
  TraceRecorder Tracer;
  Tracer.setEnabled(true);
  Runner.setTracer(&Tracer);
  std::vector<size_t> Order = Runner.makeInputOrder(1, 8);
  harness::ScenarioResult Evolve = Runner.runEvolve(Order);
  ASSERT_EQ(Evolve.Runs.size(), Order.size());
  JsonlOut = renderJsonlTrace(Tracer.exportOrder(), metaFor(W.Module));
  MetricsOut.clear();
  // Metrics determinism rides on the scenario's per-run numbers.
  for (const harness::RunMetrics &M : Evolve.Runs)
    MetricsOut += std::to_string(M.Cycles) + "," +
                  std::to_string(M.OverheadCycles) + "," +
                  std::to_string(M.Compiles) + ";";
}

} // namespace

TEST(Trace, IdenticalRunsProduceByteIdenticalTraces) {
  std::string JsonlA, MetricsA, JsonlB, MetricsB;
  runTracedScenario(JsonlA, MetricsA);
  runTracedScenario(JsonlB, MetricsB);
  ASSERT_FALSE(JsonlA.empty());
  EXPECT_EQ(JsonlA, JsonlB);
  EXPECT_EQ(MetricsA, MetricsB);
}

TEST(Trace, TracingNeverChangesVirtualTime) {
  // An enabled recorder must be invisible to the modeled machine.  With
  // EVM_TRACING=OFF every record site is dead code on exactly the path the
  // disabled-at-runtime branch takes, so this equality also pins the
  // compiled-out build's cycle counts.
  wl::Workload W = wl::buildWorkload("Compress", Seed);
  const wl::InputCase &Input = W.Inputs[W.Inputs.size() / 2];
  auto runMaybeTraced = [&](TraceRecorder *Tracer) {
    vm::TimingModel TM;
    TM.NumCompileWorkers = 2;
    vm::AdaptivePolicy Policy(TM, Tracer);
    vm::ExecutionEngine Engine(W.Module, TM, &Policy);
    Engine.setTracer(Tracer);
    auto R = Engine.run(Input.VmArgs);
    EXPECT_TRUE(static_cast<bool>(R));
    return R ? R->Cycles : 0;
  };
  TraceRecorder Enabled, Disabled;
  Enabled.setEnabled(true);
  uint64_t PlainCycles = runMaybeTraced(nullptr);
  uint64_t DisabledCycles = runMaybeTraced(&Disabled);
  uint64_t EnabledCycles = runMaybeTraced(&Enabled);
  EXPECT_EQ(PlainCycles, DisabledCycles);
  EXPECT_EQ(PlainCycles, EnabledCycles);
  EXPECT_EQ(Disabled.size(), 0u);
#if EVM_TRACING
  EXPECT_GT(Enabled.size(), 0u);
#else
  EXPECT_EQ(Enabled.size(), 0u);
#endif
}

TEST(Trace, EventKindNamesRoundTrip) {
  for (int K = 0; K != NumTraceEventKinds; ++K) {
    TraceEventKind Kind = static_cast<TraceEventKind>(K);
    const char *Name = traceEventKindName(Kind);
    ASSERT_NE(Name, nullptr);
    auto Back = traceEventKindFromName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, Kind) << Name;
  }
  EXPECT_FALSE(traceEventKindFromName("not.an.event").has_value());
}

TEST(Trace, JsonlSchemaRoundTrips) {
  std::string Jsonl, Metrics;
  runTracedScenario(Jsonl, Metrics);

  // Parse every line back and re-render: a lossless round-trip proves the
  // schema carries the full event payload.
  std::vector<TraceEvent> Parsed;
  TraceMeta Meta;
  size_t Start = 0;
  while (Start < Jsonl.size()) {
    size_t End = Jsonl.find('\n', Start);
    ASSERT_NE(End, std::string::npos);
    std::string Line = Jsonl.substr(Start, End - Start);
    Start = End + 1;
    TraceEvent E;
    std::string Name;
    ASSERT_TRUE(parseJsonlTraceLine(Line, E, &Name)) << Line;
    if (E.Method >= Meta.MethodNames.size())
      Meta.MethodNames.resize(E.Method + 1);
    Meta.MethodNames[E.Method] = Name;
    Parsed.push_back(E);
  }
  ASSERT_FALSE(Parsed.empty());
  EXPECT_EQ(renderJsonlTrace(Parsed, Meta), Jsonl);

  // Malformed lines are rejected, not misparsed.
  TraceEvent E;
  EXPECT_FALSE(parseJsonlTraceLine("", E));
  EXPECT_FALSE(parseJsonlTraceLine("{\"cycle\":1}", E));
  EXPECT_FALSE(parseJsonlTraceLine(
      "{\"cycle\":1,\"kind\":\"bogus.kind\",\"method\":0,\"name\":\"m\","
      "\"level\":0,\"tid\":0,\"a\":0,\"b\":0,\"c\":0,\"x\":0}",
      E));
}

TEST(Trace, ChromeExportCarriesPerfettoStructure) {
  std::string Jsonl, Metrics;
  runTracedScenario(Jsonl, Metrics);

  wl::Workload W = wl::buildWorkload("Mtrt", Seed);
  harness::ExperimentConfig C;
  C.Seed = Seed;
  C.Timing.NumCompileWorkers = 2;
  harness::ScenarioRunner Runner(W, C);
  TraceRecorder Tracer;
  Tracer.setEnabled(true);
  Runner.setTracer(&Tracer);
  Runner.runEvolve(Runner.makeInputOrder(1, 4));

  std::string Chrome =
      renderChromeTrace(Tracer.exportOrder(), metaFor(W.Module));
  // Top-level object with the trace_event array.
  EXPECT_EQ(Chrome.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", 0),
            0u);
  EXPECT_EQ(Chrome.substr(Chrome.size() - 3), "]}\n");
  // Thread metadata for the execution thread and both workers.
  EXPECT_NE(Chrome.find("\"process_name\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"execution\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"compile-worker 0\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"compile-worker 1\""), std::string::npos);
  // Compile spans on worker timelines plus decision instants.
  EXPECT_NE(Chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"compile.enqueue\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"costbenefit.eval\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"evolve.predict\""), std::string::npos);
}

TEST(Trace, AnalysisReportsRenderFromRealTrace) {
  std::string Jsonl, Metrics;
  runTracedScenario(Jsonl, Metrics);

  auto Parsed = parseJsonlTrace(Jsonl);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.getError().message();
  // 8 Evolve runs plus the traced default-baseline measurement runs the
  // scenario runner performs for each distinct input.
  EXPECT_GE(Parsed->Runs.size(), 8u);
  EXPECT_FALSE(Parsed->MethodNames.empty());

  std::string Timeline = renderTierTimeline(*Parsed);
  EXPECT_NE(Timeline.find("tier timeline"), std::string::npos);
  EXPECT_NE(Timeline.find("run 1:"), std::string::npos);
  EXPECT_NE(Timeline.find("BASE@0"), std::string::npos);

  std::string Compiles = renderCompileAccounting(*Parsed);
  EXPECT_NE(Compiles.find("Compile-pipeline accounting"), std::string::npos);
  EXPECT_NE(Compiles.find("total:"), std::string::npos);
  // Workers were on, so some compile cost must overlap execution.
  EXPECT_EQ(Compiles.find("total: 0 installs"), std::string::npos);

  std::string Evolve = renderEvolveDiff(*Parsed);
  EXPECT_NE(Evolve.find("Evolve vs. reactive"), std::string::npos);
  EXPECT_NE(Evolve.find("reactive"), std::string::npos);

  // Garbage input fails with a line number instead of misparsing.
  auto Bad = parseJsonlTrace("{\"cycle\":1}\n");
  EXPECT_FALSE(static_cast<bool>(Bad));
}

TEST(TraceAnalysis, EmptyTraceParsesAndRendersHeaders) {
  // An empty file (or one of only blank lines) is a valid, empty trace;
  // every report degrades to its header plus empty totals.
  for (const char *Text : {"", "\n\n\n"}) {
    auto Parsed = parseJsonlTrace(Text);
    ASSERT_TRUE(static_cast<bool>(Parsed)) << '"' << Text << '"';
    EXPECT_TRUE(Parsed->Events.empty());
    EXPECT_TRUE(Parsed->Runs.empty());
    EXPECT_NE(renderTierTimeline(*Parsed).find("tier timeline"),
              std::string::npos);
    std::string Compiles = renderCompileAccounting(*Parsed);
    EXPECT_NE(Compiles.find("Compile-pipeline accounting"),
              std::string::npos);
    EXPECT_NE(Compiles.find("total: 0 installs"), std::string::npos);
    EXPECT_NE(renderEvolveDiff(*Parsed).find("Evolve"), std::string::npos);
  }
}

TEST(TraceAnalysis, ZeroCompileEventsDegradeGracefully) {
  // Strip every compile.* event from a real trace: the accounting report
  // must show empty pipelines, not crash or misattribute.
  std::string Jsonl, Metrics;
  runTracedScenario(Jsonl, Metrics);
  auto Parsed = parseJsonlTrace(Jsonl);
  ASSERT_TRUE(static_cast<bool>(Parsed));

  std::vector<TraceEvent> Kept;
  for (const TraceEvent &E : Parsed->Events) {
    switch (E.Kind) {
    case TraceEventKind::CompileEnqueue:
    case TraceEventKind::CompileStart:
    case TraceEventKind::CompileReady:
    case TraceEventKind::CompileInstall:
    case TraceEventKind::CompileDrop:
    case TraceEventKind::CompileCoalesce:
      continue;
    default:
      Kept.push_back(E);
    }
  }
  ASSERT_LT(Kept.size(), Parsed->Events.size());

  // Round-trip the stripped events through the JSONL text path so the
  // run re-segmentation logic sees them too.
  TraceMeta Meta;
  for (const auto &[Method, Name] : Parsed->MethodNames) {
    if (Method >= Meta.MethodNames.size())
      Meta.MethodNames.resize(Method + 1);
    Meta.MethodNames[Method] = Name;
  }
  auto Reparsed = parseJsonlTrace(renderJsonlTrace(Kept, Meta));
  ASSERT_TRUE(static_cast<bool>(Reparsed));
  EXPECT_EQ(Reparsed->Runs.size(), Parsed->Runs.size());

  std::string Compiles = renderCompileAccounting(*Reparsed);
  EXPECT_NE(Compiles.find("total: 0 installs, 0 stall cycles"),
            std::string::npos);
  // The other reports still render from the remaining events.
  EXPECT_NE(renderTierTimeline(*Reparsed).find("tier timeline"),
            std::string::npos);
  EXPECT_NE(renderEvolveDiff(*Reparsed).find("Evolve"), std::string::npos);
}

TEST(TraceAnalysis, TruncatedJsonlFailsWithLineNumber) {
  std::string Jsonl, Metrics;
  runTracedScenario(Jsonl, Metrics);
  // Cut mid-way through the third line: the parser must reject the
  // partial object and name the line, not silently drop the tail.
  size_t FirstNl = Jsonl.find('\n');
  ASSERT_NE(FirstNl, std::string::npos);
  size_t SecondNl = Jsonl.find('\n', FirstNl + 1);
  ASSERT_NE(SecondNl, std::string::npos);
  std::string Truncated = Jsonl.substr(0, SecondNl + 1 + 10);
  ASSERT_NE(Truncated.back(), '\n');
  auto Bad = parseJsonlTrace(Truncated);
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_NE(Bad.getError().message().find("malformed trace event at line 3"),
            std::string::npos)
      << Bad.getError().message();
}

TEST(Trace, ConcurrentRecordersLoseNoEvents) {
  // Fleet tenants may share a recorder in future layers; the append mutex
  // must make that merely nondeterministic in order, never lossy.  Runs
  // under the TSan lane too.
  TraceRecorder Rec;
  Rec.setEnabled(true);
  if (!Rec.enabled())
    GTEST_SKIP() << "built with EVM_TRACING=0";
  constexpr int Threads = 4, PerThread = 5000;
  std::vector<std::thread> Pool;
  for (int T = 0; T != Threads; ++T)
    Pool.emplace_back([&Rec, T] {
      for (int I = 0; I != PerThread; ++I) {
        TraceEvent E;
        E.Kind = TraceEventKind::FleetTenant;
        E.A = static_cast<uint64_t>(T);
        E.B = static_cast<uint64_t>(I);
        Rec.record(E);
      }
    });
  for (std::thread &T : Pool)
    T.join();

  EXPECT_EQ(Rec.size(), size_t(Threads) * PerThread);
  EXPECT_EQ(Rec.droppedEvents(), 0u);
  // Every (thread, seq) pair landed exactly once.
  std::vector<int> Seen(Threads, 0);
  for (const TraceEvent &E : Rec.exportOrder())
    if (E.Kind == TraceEventKind::FleetTenant)
      ++Seen[E.A];
  for (int T = 0; T != Threads; ++T)
    EXPECT_EQ(Seen[T], PerThread) << "thread " << T;
}

TEST(Trace, FleetEventKindsHaveWireNames) {
  EXPECT_STREQ(traceEventKindName(TraceEventKind::FleetTenant),
               "fleet.tenant");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::FleetMerge), "fleet.merge");
  EXPECT_EQ(traceEventKindFromName("fleet.tenant"),
            TraceEventKind::FleetTenant);
  EXPECT_EQ(traceEventKindFromName("fleet.merge"),
            TraceEventKind::FleetMerge);
}
